package mpmb

import (
	"github.com/uncertain-graphs/mpmb/internal/dataset"
)

// DatasetConfig controls synthetic dataset generation.
type DatasetConfig = dataset.Config

// Dataset is a generated uncertain bipartite network with provenance.
type Dataset = dataset.Dataset

// DatasetNames lists the four synthetic analogues of the paper's Table
// III datasets, in paper order: "abide", "movielens", "jester",
// "protein".
var DatasetNames = dataset.Names

// GenerateDataset builds the named synthetic dataset. The four names
// mirror the paper's evaluation datasets; see the package documentation
// of internal/dataset (summarized in DESIGN.md §4) for what each one
// preserves of the original:
//
//   - "abide": dense 58×58 brain-connectivity analogue; weights are ROI
//     distances, probabilities are correlations.
//   - "movielens": 610×9,724 rating graph, Zipf item popularity,
//     half-point ratings, reliability probabilities.
//   - "jester": 100 jokes × many users, dense per-user activity,
//     quantized ratings with heavy weight ties.
//   - "protein": power-law interaction network bipartitioned like the
//     paper's STRING preprocessing, probabilities ~ Normal(0.5, 0.2).
func GenerateDataset(name string, cfg DatasetConfig) (*Dataset, error) {
	return dataset.ByName(name, cfg)
}

// GenerateAllDatasets builds all four synthetic datasets in paper order.
func GenerateAllDatasets(cfg DatasetConfig) []*Dataset {
	return dataset.All(cfg)
}

// SyntheticConfig parameterizes GenerateSynthetic: partition sizes, edge
// count, Zipf degree skew, and weight/probability distributions.
type SyntheticConfig = dataset.SyntheticConfig

// Weight and probability distribution selectors for SyntheticConfig.
const (
	WeightUniform  = dataset.WeightUniform
	WeightHalfStep = dataset.WeightHalfStep
	WeightNormal   = dataset.WeightNormal
	ProbUniform    = dataset.ProbUniform
	ProbNormal     = dataset.ProbNormal
	ProbFixed      = dataset.ProbFixed
)

// GenerateSynthetic builds a fully parameterized uncertain bipartite
// network for custom experiments; the four named datasets are curated
// presets of the same ingredients.
func GenerateSynthetic(cfg SyntheticConfig) (*Dataset, error) {
	return dataset.Synthetic(cfg)
}

// WeightDistName converts a distribution name ("uniform", "halfstep",
// "normal") for SyntheticConfig.Weights; GenerateSynthetic validates it.
func WeightDistName(name string) dataset.WeightDist { return dataset.WeightDist(name) }

// ProbDistName converts a distribution name ("uniform", "normal",
// "fixed") for SyntheticConfig.Probs; GenerateSynthetic validates it.
func ProbDistName(name string) dataset.ProbDist { return dataset.ProbDist(name) }
