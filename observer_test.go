package mpmb

import (
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// observerGraph is a synthetic graph big enough that the OLS phases do
// real work but small enough for the race detector.
func observerGraph(t testing.TB) *Graph {
	t.Helper()
	d, err := GenerateSynthetic(SyntheticConfig{
		Seed: 11, NumL: 30, NumR: 30, NumEdges: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d.G
}

// TestObserverSequentialParallelCountersMatch is the seq-vs-parallel
// conformance check of the telemetry layer: an instrumented OLS run with
// workers=8 must report the same terminal counter totals as the
// sequential run — chunked flushing changes when counters move, never
// where they end up — and the Result itself must stay bit-identical.
func TestObserverSequentialParallelCountersMatch(t *testing.T) {
	g := observerGraph(t)
	run := func(workers int) (*Result, Metrics) {
		obs := NewObserver(ObserverConfig{})
		defer obs.Close()
		res, err := Search(g, Options{
			Method: MethodOLS, Trials: 4000, PrepTrials: 60, Seed: 5,
			Workers: workers, Observer: obs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, obs.Metrics()
	}
	seqRes, seq := run(0)
	parRes, par := run(8)

	if len(seqRes.Estimates) != len(parRes.Estimates) {
		t.Fatalf("estimate counts differ: %d vs %d", len(seqRes.Estimates), len(parRes.Estimates))
	}
	for i := range seqRes.Estimates {
		a, b := seqRes.Estimates[i], parRes.Estimates[i]
		if a.B != b.B || a.P != b.P || a.Weight != b.Weight {
			t.Fatalf("estimate %d differs: %+v vs %+v", i, a, b)
		}
	}

	// The latency histogram and worker gauge legitimately differ; every
	// work counter must not.
	type totals struct {
		trials, hits, prep, es, ep, cs, cp, cands int64
	}
	tot := func(m Metrics) totals {
		return totals{m.Trials, m.TrialHits, m.PrepTrials, m.EdgesScanned, m.EdgesPruned, m.CandScanned, m.CandPruned, m.Candidates}
	}
	if ts, tp := tot(seq), tot(par); ts != tp {
		t.Errorf("counter totals differ:\n  seq %+v\n  par %+v", ts, tp)
	}
	if seq.LeaderP != par.LeaderP {
		t.Errorf("leader gauge differs: %v vs %v", seq.LeaderP, par.LeaderP)
	}
	if par.Workers != 8 {
		t.Errorf("Workers gauge = %d, want 8", par.Workers)
	}
}

// TestObserverMetricsMatchResult pins the acceptance contract: the
// terminal snapshot's trial counters and leader gauges are exact
// functions of the finished Result, not approximations.
func TestObserverMetricsMatchResult(t *testing.T) {
	g := observerGraph(t)
	obs := NewObserver(ObserverConfig{})
	defer obs.Close()
	opt := Options{Method: MethodOLS, Trials: 3000, PrepTrials: 50, Seed: 3, Workers: 8, Observer: obs}
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.Metrics()
	if m.Trials != int64(opt.Trials) {
		t.Errorf("Metrics.Trials = %d, want %d", m.Trials, opt.Trials)
	}
	if m.PrepTrials != int64(opt.PrepTrials) {
		t.Errorf("Metrics.PrepTrials = %d, want %d", m.PrepTrials, opt.PrepTrials)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no best estimate")
	}
	if m.LeaderP != best.P {
		t.Errorf("LeaderP = %v, want the final best estimate %v", m.LeaderP, best.P)
	}
	if m.LeaderHalfWidth <= 0 || m.LeaderHalfWidth >= 1 {
		t.Errorf("LeaderHalfWidth = %v, want a half-width in (0,1)", m.LeaderHalfWidth)
	}
	if m.CandScanned+m.CandPruned != int64(opt.Trials)*m.Candidates {
		t.Errorf("candidate scan split %d+%d does not cover trials×candidates = %d×%d",
			m.CandScanned, m.CandPruned, opt.Trials, m.Candidates)
	}
	if res.Metrics == nil {
		t.Fatal("Result.Metrics not stamped despite an attached observer")
	}
	if res.Metrics.Trials != m.Trials || res.Metrics.LeaderP != m.LeaderP {
		t.Errorf("Result.Metrics diverges from the observer snapshot")
	}
}

// TestObserverEventStream checks the typed events arrive with sensible
// payloads and that trial-done batch sizes add up to the trial target.
func TestObserverEventStream(t *testing.T) {
	g := observerGraph(t)
	var trialN, estimates, promotions atomic.Int64
	obs := NewObserver(ObserverConfig{OnEvent: func(e Event) {
		switch e.Kind {
		case EventTrialDone:
			trialN.Add(e.N)
		case EventEstimateUpdated:
			estimates.Add(1)
		case EventCandidatePromoted:
			promotions.Add(1)
		}
	}})
	opt := Options{Method: MethodOLS, Trials: 2000, PrepTrials: 40, Seed: 9, Observer: obs}
	if _, err := Search(g, opt); err != nil {
		t.Fatal(err)
	}
	obs.Close() // drain before asserting
	m := obs.Metrics()
	if m.EventsDropped > 0 {
		t.Fatalf("%d events dropped with a fast observer", m.EventsDropped)
	}
	if got, want := trialN.Load(), int64(opt.Trials+opt.PrepTrials); got != want {
		t.Errorf("trial_done batch sizes sum to %d, want %d", got, want)
	}
	if estimates.Load() == 0 {
		t.Error("no estimate_updated events")
	}
	if got := promotions.Load(); got != m.Candidates {
		t.Errorf("candidate_promoted events = %d, want Metrics.Candidates = %d", got, m.Candidates)
	}
}

// TestObserverSlowCallbackDropsNotStalls pins the back-pressure
// contract: a stuck observer costs events (counted), never wall-clock.
func TestObserverSlowCallbackDropsNotStalls(t *testing.T) {
	g := observerGraph(t)
	block := make(chan struct{})
	var first atomic.Bool
	obs := NewObserver(ObserverConfig{
		EventBuffer: 1,
		OnEvent: func(Event) {
			if first.CompareAndSwap(false, true) {
				<-block // wedge the drain goroutine on the first event
			}
		},
	})
	start := time.Now()
	_, err := Search(g, Options{Method: MethodOS, Trials: 20000, Seed: 2, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	close(block)
	obs.Close()
	if m := obs.Metrics(); m.EventsDropped == 0 {
		t.Error("expected dropped events with a wedged observer")
	} else if m.Trials != 20000 {
		t.Errorf("sampling did not finish: trials=%d", m.Trials)
	}
	// Generous bound: the run must not have waited on the callback.
	if elapsed > 30*time.Second {
		t.Errorf("search took %v; observer back-pressure stalled sampling", elapsed)
	}
}

// TestNilObserverLeavesResultUntouched: no observer, no Metrics field,
// and bit-identical estimates to an observed run.
func TestNilObserverLeavesResultUntouched(t *testing.T) {
	g := observerGraph(t)
	opt := Options{Method: MethodOLS, Trials: 1500, PrepTrials: 40, Seed: 4}
	plain, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Error("Result.Metrics set without an observer")
	}
	obs := NewObserver(ObserverConfig{})
	defer obs.Close()
	opt.Observer = obs
	observed, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Estimates {
		if plain.Estimates[i].P != observed.Estimates[i].P {
			t.Fatalf("observation changed estimate %d: %v vs %v", i, plain.Estimates[i].P, observed.Estimates[i].P)
		}
	}
}

// TestSearcherObserver: the Searcher instruments the preparing phase
// only when it actually runs (cache miss), and the sampling phase every
// time.
func TestSearcherObserver(t *testing.T) {
	g := observerGraph(t)
	s := NewSearcher(g)
	opt := Options{Method: MethodOLS, Trials: 1000, PrepTrials: 30, Seed: 6}

	obs1 := NewObserver(ObserverConfig{})
	defer obs1.Close()
	opt.Observer = obs1
	if _, err := s.Search(opt); err != nil {
		t.Fatal(err)
	}
	if m := obs1.Metrics(); m.PrepTrials != 30 {
		t.Errorf("first query PrepTrials = %d, want 30 (cache miss runs prep)", m.PrepTrials)
	}

	obs2 := NewObserver(ObserverConfig{})
	defer obs2.Close()
	opt.Observer = obs2
	res, err := s.Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	m := obs2.Metrics()
	if m.PrepTrials != 0 {
		t.Errorf("cached query PrepTrials = %d, want 0 (prep reused, not re-run)", m.PrepTrials)
	}
	if m.Trials != 1000 {
		t.Errorf("cached query Trials = %d, want 1000", m.Trials)
	}
	if res.Metrics == nil {
		t.Error("Searcher did not stamp Result.Metrics")
	}
}

// TestOptionErrorFields pins the typed validation errors: errors.As
// recovers the struct and the Field matches the offending option.
func TestOptionErrorFields(t *testing.T) {
	cases := []struct {
		name  string
		opt   Options
		field string
	}{
		{"negative trials", Options{Trials: -1}, "Trials"},
		{"negative prep", Options{Trials: 10, PrepTrials: -1}, "PrepTrials"},
		{"mu range", Options{Trials: 10, PrepTrials: 5, Mu: 1.5}, "Mu"},
		{"mu nan", Options{Trials: 10, PrepTrials: 5, Mu: math.NaN()}, "Mu"},
		{"workers", Options{Trials: 10, PrepTrials: 5, Workers: -2}, "Workers"},
		{"unknown method", Options{Method: "bogus", Trials: 10}, "Method"},
		{"zero trials", Options{Method: MethodOS}, "Trials"},
		{"zero prep", Options{Method: MethodOLS, Trials: 10}, "PrepTrials"},
		{"epsilon on kl", Options{Method: MethodOLSKL, Trials: 10, PrepTrials: 5, Epsilon: 0.1}, "Epsilon"},
		{"audit on os", Options{Method: MethodOS, Trials: 10, AuditEvery: 5}, "AuditEvery"},
		{"workers on exact", Options{Method: MethodExact, Workers: 2}, "Workers"},
		{"adaptive exact", Options{Method: MethodExact, Epsilon: 0.1}, "Epsilon"},
		{"negative stall", Options{Trials: 10, PrepTrials: 5, StallTimeout: -time.Second}, "StallTimeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opt.Validate()
			if err == nil {
				t.Fatal("Validate accepted invalid options")
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not a *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Errorf("Field = %q, want %q (err: %v)", oe.Field, tc.field, err)
			}
			if !strings.Contains(err.Error(), "Options."+tc.field) {
				t.Errorf("message %q does not name Options.%s", err.Error(), tc.field)
			}
		})
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("DefaultOptions does not validate: %v", err)
	}
	// The search entry points return the same typed error.
	g := figure1(t)
	_, err := Search(g, Options{Trials: -3})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Field != "Trials" {
		t.Errorf("Search error %v does not carry the OptionError", err)
	}
}
