package mpmb

import "fmt"

// Method selects an MPMB algorithm for Search.
type Method string

// The available search methods.
const (
	// MethodExact enumerates all possible worlds (≤ 24 edges).
	MethodExact Method = "exact"
	// MethodMCVP is the Monte-Carlo + vertex-priority baseline.
	MethodMCVP Method = "mc-vp"
	// MethodOS is Ordering Sampling.
	MethodOS Method = "os"
	// MethodOLSKL is Ordering-Listing Sampling with Karp-Luby estimation.
	MethodOLSKL Method = "ols-kl"
	// MethodOLS is Ordering-Listing Sampling with the optimized
	// estimator — the paper's best configuration and the default.
	MethodOLS Method = "ols"
)

// Methods lists every valid Method value.
var Methods = []Method{MethodExact, MethodMCVP, MethodOS, MethodOLSKL, MethodOLS}

// Options configures a search. DefaultOptions matches the paper's
// experimental setup.
type Options struct {
	// Method picks the algorithm for Search (ignored by the SearchXXX
	// functions, which are explicit). Empty means MethodOLS.
	Method Method
	// Trials is the sampling trial count N: the number of sampled worlds
	// for MC-VP and OS, N_op for OLS, and the Equation 8 base for OLS-KL.
	Trials int
	// PrepTrials is the OLS preparing-phase trial count N_os.
	PrepTrials int
	// Seed fixes all randomness; identical options give identical results.
	Seed uint64
	// Mu is the target probability used to size Karp-Luby trial counts
	// via Equation 8 (OLS-KL only). 0 disables dynamic sizing: every
	// candidate then runs exactly Trials trials.
	Mu float64
	// Workers distributes the sampling trials over that many goroutines
	// (os, ols, ols-kl only; 0 keeps the run sequential). Results are
	// bit-identical to the sequential run with the same options — each
	// trial's random stream derives from (Seed, trial index), so only
	// wall-clock time changes. Exact and mc-vp reject Workers > 0.
	Workers int
	// Resume continues a cancelled run from the Checkpoint attached to its
	// partial Result (see SearchContext). The options must match the
	// checkpointed run; the finished result is bit-identical to an
	// uninterrupted one. Supported by mc-vp, os, ols and ols-kl.
	Resume *Checkpoint
}

// DefaultOptions returns the paper's Section VIII-B defaults: 2×10⁴
// sampling trials (the Theorem IV.1 bound for μ=0.05, ε=δ=0.1) and 100
// preparing trials.
func DefaultOptions() Options {
	return Options{
		Method:     MethodOLS,
		Trials:     20000,
		PrepTrials: 100,
		Mu:         0.05,
	}
}

// validateFor checks the options against the method that will actually
// run — the Search dispatcher passes o.Method, while the explicit
// SearchXXX functions pass their own method so o.Method is ignored.
func (o Options) validateFor(m Method) error {
	if o.Trials < 0 || o.PrepTrials < 0 {
		return fmt.Errorf("mpmb: negative trial counts (Trials=%d, PrepTrials=%d)", o.Trials, o.PrepTrials)
	}
	if o.Mu < 0 || o.Mu > 1 {
		return fmt.Errorf("mpmb: Mu=%v outside [0,1]", o.Mu)
	}
	if o.Workers < 0 {
		return fmt.Errorf("mpmb: negative Workers (%d)", o.Workers)
	}
	switch m {
	case MethodExact, MethodMCVP:
		if o.Workers > 0 {
			return fmt.Errorf("mpmb: method %q does not support parallel execution (Workers=%d); use os, ols or ols-kl", m, o.Workers)
		}
	}
	if m == MethodExact {
		if o.Resume != nil {
			return fmt.Errorf("mpmb: the exact method cannot resume from a checkpoint; re-run the enumeration")
		}
		return nil // trial counts unused
	}
	if o.Trials == 0 {
		return fmt.Errorf("mpmb: Trials must be positive (use DefaultOptions for the paper setup)")
	}
	switch m {
	case MethodOLS, MethodOLSKL, Method(""):
		if o.PrepTrials == 0 {
			return fmt.Errorf("mpmb: OLS methods need PrepTrials > 0")
		}
	}
	return nil
}
