package mpmb

import (
	"fmt"
	"math"
	"time"
)

// Method selects an MPMB algorithm for Search.
type Method string

// The available search methods.
const (
	// MethodExact enumerates all possible worlds (≤ 24 edges).
	MethodExact Method = "exact"
	// MethodMCVP is the Monte-Carlo + vertex-priority baseline.
	MethodMCVP Method = "mc-vp"
	// MethodOS is Ordering Sampling.
	MethodOS Method = "os"
	// MethodOLSKL is Ordering-Listing Sampling with Karp-Luby estimation.
	MethodOLSKL Method = "ols-kl"
	// MethodOLS is Ordering-Listing Sampling with the optimized
	// estimator — the paper's best configuration and the default.
	MethodOLS Method = "ols"
)

// Methods lists every valid Method value.
var Methods = []Method{MethodExact, MethodMCVP, MethodOS, MethodOLSKL, MethodOLS}

// Options configures a search. DefaultOptions matches the paper's
// experimental setup.
type Options struct {
	// Method picks the algorithm for Search (ignored by the SearchXXX
	// functions, which are explicit). Empty means MethodOLS.
	Method Method
	// Trials is the sampling trial count N: the number of sampled worlds
	// for MC-VP and OS, N_op for OLS, and the Equation 8 base for OLS-KL.
	Trials int
	// PrepTrials is the OLS preparing-phase trial count N_os.
	PrepTrials int
	// Seed fixes all randomness; identical options give identical results.
	Seed uint64
	// Mu is the target probability used to size Karp-Luby trial counts
	// via Equation 8 (OLS-KL only). 0 disables dynamic sizing: every
	// candidate then runs exactly Trials trials.
	Mu float64
	// Workers distributes the sampling trials over that many goroutines
	// (os, ols, ols-kl only; 0 keeps the run sequential). Results are
	// bit-identical to the sequential run with the same options — each
	// trial's random stream derives from (Seed, trial index), so only
	// wall-clock time changes. Exact and mc-vp reject Workers > 0.
	Workers int
	// Resume continues a cancelled run from the Checkpoint attached to its
	// partial Result (see SearchContext). The options must match the
	// checkpointed run; the finished result is bit-identical to an
	// uninterrupted one. Supported by mc-vp, os, ols and ols-kl.
	Resume *Checkpoint

	// The adaptive options below route the run through the supervisor
	// (see Result.Adaptive): setting any of AuditEvery, Epsilon, Deadline
	// or StallTimeout turns a plain search into a self-healing adaptive
	// run. None of them apply to the exact method.

	// AuditEvery interleaves one full Ordering Sampling audit trial after
	// every AuditEvery OLS sampling trials (and tops the schedule up before
	// declaring the run complete). An audit that finds a maximum butterfly
	// outside the candidate set heals the run: the preparing phase re-runs
	// with a doubled trial target and sampling restarts over the wider
	// candidate list. OLS methods only; 0 disables audits.
	AuditEvery int
	// MaxEscalations bounds audit-triggered escalations; when one more
	// would be needed the run falls down the degradation ladder to OS
	// instead (recorded in Result.Adaptive.Transitions). 0 means the
	// supervisor default (2).
	MaxEscalations int
	// Epsilon > 0 stops the run early once the leader estimate's
	// normal-approximation half-width (at 99% confidence) drops to Epsilon
	// or below — accuracy-aware stopping. Proportion methods only (mc-vp,
	// os, ols).
	Epsilon float64
	// Deadline, when non-zero, stops the run at the first trial boundary
	// at or past it, returning the partial-but-honest prefix with
	// Result.Adaptive.StopReason == StopDeadline.
	Deadline time.Time
	// StallTimeout > 0 arms a watchdog: if the run goes that long without
	// making progress, the search returns a *StallError (errors.Is
	// ErrStalled) instead of hanging.
	StallTimeout time.Duration
}

// adaptive reports whether any option routes the run through the
// supervisor. MaxEscalations alone does not: it only modifies AuditEvery.
func (o Options) adaptive() bool {
	return o.AuditEvery > 0 || o.Epsilon > 0 || !o.Deadline.IsZero() || o.StallTimeout > 0
}

// DefaultOptions returns the paper's Section VIII-B defaults: 2×10⁴
// sampling trials (the Theorem IV.1 bound for μ=0.05, ε=δ=0.1) and 100
// preparing trials.
func DefaultOptions() Options {
	return Options{
		Method:     MethodOLS,
		Trials:     20000,
		PrepTrials: 100,
		Mu:         0.05,
	}
}

// validateFor checks the options against the method that will actually
// run — the Search dispatcher passes o.Method, while the explicit
// SearchXXX functions pass their own method so o.Method is ignored.
func (o Options) validateFor(m Method) error {
	if o.Trials < 0 || o.PrepTrials < 0 {
		return fmt.Errorf("mpmb: negative trial counts (Trials=%d, PrepTrials=%d)", o.Trials, o.PrepTrials)
	}
	if o.Mu < 0 || o.Mu > 1 {
		return fmt.Errorf("mpmb: Mu=%v outside [0,1]", o.Mu)
	}
	if o.Workers < 0 {
		return fmt.Errorf("mpmb: negative Workers (%d)", o.Workers)
	}
	if o.AuditEvery < 0 || o.MaxEscalations < 0 {
		return fmt.Errorf("mpmb: negative audit options (AuditEvery=%d, MaxEscalations=%d)", o.AuditEvery, o.MaxEscalations)
	}
	if math.IsNaN(o.Epsilon) || o.Epsilon < 0 {
		return fmt.Errorf("mpmb: Epsilon=%v must be >= 0", o.Epsilon)
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("mpmb: negative StallTimeout (%v)", o.StallTimeout)
	}
	if m == MethodExact && o.adaptive() {
		return fmt.Errorf("mpmb: adaptive options (AuditEvery/Epsilon/Deadline/StallTimeout) do not apply to the exact method")
	}
	if o.AuditEvery > 0 {
		switch m {
		case MethodOLS, MethodOLSKL, Method(""):
		default:
			return fmt.Errorf("mpmb: AuditEvery only applies to the OLS methods (method %q has no candidate truncation to audit)", m)
		}
	}
	if o.Epsilon > 0 && m == MethodOLSKL {
		return fmt.Errorf("mpmb: the Epsilon stopping rule needs per-trial proportions; ols-kl estimates are Karp-Luby transforms (use ols, os or mc-vp)")
	}
	switch m {
	case MethodExact, MethodMCVP:
		if o.Workers > 0 {
			return fmt.Errorf("mpmb: method %q does not support parallel execution (Workers=%d); use os, ols or ols-kl", m, o.Workers)
		}
	}
	if m == MethodExact {
		if o.Resume != nil {
			return fmt.Errorf("mpmb: the exact method cannot resume from a checkpoint; re-run the enumeration")
		}
		return nil // trial counts unused
	}
	if o.Trials == 0 {
		return fmt.Errorf("mpmb: Trials must be positive (use DefaultOptions for the paper setup)")
	}
	switch m {
	case MethodOLS, MethodOLSKL, Method(""):
		if o.PrepTrials == 0 {
			return fmt.Errorf("mpmb: OLS methods need PrepTrials > 0")
		}
	}
	return nil
}
