package mpmb

import (
	"fmt"
	"math"
	"time"
)

// Method selects an MPMB algorithm for Search.
type Method string

// The available search methods.
const (
	// MethodExact enumerates all possible worlds (≤ 24 edges).
	MethodExact Method = "exact"
	// MethodMCVP is the Monte-Carlo + vertex-priority baseline.
	MethodMCVP Method = "mc-vp"
	// MethodOS is Ordering Sampling.
	MethodOS Method = "os"
	// MethodOLSKL is Ordering-Listing Sampling with Karp-Luby estimation.
	MethodOLSKL Method = "ols-kl"
	// MethodOLS is Ordering-Listing Sampling with the optimized
	// estimator — the paper's best configuration and the default.
	MethodOLS Method = "ols"
)

// Methods lists every valid Method value.
var Methods = []Method{MethodExact, MethodMCVP, MethodOS, MethodOLSKL, MethodOLS}

// Options configures a search. DefaultOptions matches the paper's
// experimental setup.
type Options struct {
	// Method picks the algorithm for Search (ignored by the SearchXXX
	// functions, which are explicit). Empty means MethodOLS.
	Method Method
	// Trials is the sampling trial count N: the number of sampled worlds
	// for MC-VP and OS, N_op for OLS, and the Equation 8 base for OLS-KL.
	Trials int
	// PrepTrials is the OLS preparing-phase trial count N_os.
	PrepTrials int
	// Seed fixes all randomness; identical options give identical results.
	Seed uint64
	// Mu is the target probability used to size Karp-Luby trial counts
	// via Equation 8 (OLS-KL only). 0 disables dynamic sizing: every
	// candidate then runs exactly Trials trials.
	Mu float64
	// Workers distributes the sampling trials over that many goroutines
	// (os, ols, ols-kl only; 0 keeps the run sequential). Results are
	// bit-identical to the sequential run with the same options — each
	// trial's random stream derives from (Seed, trial index), so only
	// wall-clock time changes. Exact and mc-vp reject Workers > 0.
	Workers int
	// Resume continues a cancelled run from the Checkpoint attached to its
	// partial Result (see SearchContext). The options must match the
	// checkpointed run; the finished result is bit-identical to an
	// uninterrupted one. Supported by mc-vp, os, ols and ols-kl.
	Resume *Checkpoint
	// Observer, if non-nil, instruments the run: counters, gauges and the
	// trial-latency histogram accumulate into it (snapshot any time via
	// Observer.Metrics, or at run end via Result.Metrics) and typed
	// events stream to its OnEvent callback. Nil disables telemetry at
	// zero cost. Observation never perturbs the result: the same options
	// with and without an Observer return bit-identical estimates.
	Observer *Observer
	// Executor, if non-nil, hands the sampling phase's trial units to an
	// explicit execution backend instead of the in-process worker pool —
	// typically a distributed fan-out (a dist coordinator's executor, as
	// wired by mpmb-search -dist-listen and mpmb-serve -dist). Because
	// every trial unit's random stream derives from (Seed, unit index),
	// any conforming executor returns a Result bit-identical to the
	// sequential run with the same options. Supported by os, ols and
	// ols-kl, without adaptive options; exact and mc-vp reject it.
	Executor Executor

	// The adaptive options below route the run through the supervisor
	// (see Result.Adaptive): setting any of AuditEvery, Epsilon, Deadline
	// or StallTimeout turns a plain search into a self-healing adaptive
	// run. None of them apply to the exact method.

	// AuditEvery interleaves one full Ordering Sampling audit trial after
	// every AuditEvery OLS sampling trials (and tops the schedule up before
	// declaring the run complete). An audit that finds a maximum butterfly
	// outside the candidate set heals the run: the preparing phase re-runs
	// with a doubled trial target and sampling restarts over the wider
	// candidate list. OLS methods only; 0 disables audits.
	AuditEvery int
	// MaxEscalations bounds audit-triggered escalations; when one more
	// would be needed the run falls down the degradation ladder to OS
	// instead (recorded in Result.Adaptive.Transitions). 0 means the
	// supervisor default (2).
	MaxEscalations int
	// Epsilon > 0 stops the run early once the leader estimate's
	// normal-approximation half-width (at 99% confidence) drops to Epsilon
	// or below — accuracy-aware stopping. Proportion methods only (mc-vp,
	// os, ols).
	Epsilon float64
	// Deadline, when non-zero, stops the run at the first trial boundary
	// at or past it, returning the partial-but-honest prefix with
	// Result.Adaptive.StopReason == StopDeadline.
	Deadline time.Time
	// StallTimeout > 0 arms a watchdog: if the run goes that long without
	// making progress, the search returns a *StallError (errors.Is
	// ErrStalled) instead of hanging.
	StallTimeout time.Duration

	// Query selects a query variant — vertex- or edge-anchored search,
	// per-community top-k, adaptive prep sizing. Nil (or the zero Query)
	// is the default global MPMB query. See the Query type for the
	// variant semantics and the option combinations each supports.
	Query *Query
}

// adaptive reports whether any option routes the run through the
// supervisor. MaxEscalations alone does not: it only modifies AuditEvery.
func (o Options) adaptive() bool {
	return o.AuditEvery > 0 || o.Epsilon > 0 || !o.Deadline.IsZero() || o.StallTimeout > 0
}

// DefaultOptions returns the paper's Section VIII-B defaults: 2×10⁴
// sampling trials (the Theorem IV.1 bound for μ=0.05, ε=δ=0.1) and 100
// preparing trials.
func DefaultOptions() Options {
	return Options{
		Method:     MethodOLS,
		Trials:     20000,
		PrepTrials: 100,
		Mu:         0.05,
	}
}

// OptionError reports which Options field made a search configuration
// invalid. Every entry point (Search, SearchContext, the Searcher, the
// deprecated SearchXXX facades, and Options.Validate) returns one for a
// bad configuration; match with errors.As to recover the field name —
// the CLIs use it to point at the offending flag.
type OptionError struct {
	// Field is the Options field name, e.g. "Trials" or "Epsilon".
	Field string
	// Value is the rejected value.
	Value any
	// Reason explains the constraint the value violated.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("mpmb: invalid Options.%s = %v: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the options as Search would see them (an empty Method
// means MethodOLS). It returns nil or a *OptionError naming the
// offending field. Every search entry point performs this validation
// itself; Validate is for callers that want to fail fast — flag
// parsing, config loading — before paying for a graph.
func (o Options) Validate() error {
	m := o.Method
	if m == "" {
		m = MethodOLS
	}
	return o.validateFor(m)
}

// validateFor checks the options against the method that will actually
// run — the Search dispatcher passes o.Method, while the explicit
// SearchXXX functions pass their own method so o.Method is ignored.
func (o Options) validateFor(m Method) error {
	switch m {
	case MethodExact, MethodMCVP, MethodOS, MethodOLS, MethodOLSKL, Method(""):
	default:
		return &OptionError{Field: "Method", Value: m, Reason: "unknown method"}
	}
	if o.Trials < 0 {
		return &OptionError{Field: "Trials", Value: o.Trials, Reason: "trial count cannot be negative"}
	}
	if o.PrepTrials < 0 {
		return &OptionError{Field: "PrepTrials", Value: o.PrepTrials, Reason: "trial count cannot be negative"}
	}
	if o.Mu < 0 || o.Mu > 1 || math.IsNaN(o.Mu) {
		return &OptionError{Field: "Mu", Value: o.Mu, Reason: "outside [0,1]"}
	}
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Value: o.Workers, Reason: "worker count cannot be negative"}
	}
	if o.AuditEvery < 0 {
		return &OptionError{Field: "AuditEvery", Value: o.AuditEvery, Reason: "audit interval cannot be negative"}
	}
	if o.MaxEscalations < 0 {
		return &OptionError{Field: "MaxEscalations", Value: o.MaxEscalations, Reason: "escalation budget cannot be negative"}
	}
	if math.IsNaN(o.Epsilon) || o.Epsilon < 0 {
		return &OptionError{Field: "Epsilon", Value: o.Epsilon, Reason: "must be >= 0"}
	}
	if o.StallTimeout < 0 {
		return &OptionError{Field: "StallTimeout", Value: o.StallTimeout, Reason: "timeout cannot be negative"}
	}
	if m == MethodExact && o.adaptive() {
		f, v := o.adaptiveField()
		return &OptionError{Field: f, Value: v, Reason: "adaptive options (AuditEvery/Epsilon/Deadline/StallTimeout) do not apply to the exact method"}
	}
	if o.AuditEvery > 0 {
		switch m {
		case MethodOLS, MethodOLSKL, Method(""):
		default:
			return &OptionError{Field: "AuditEvery", Value: o.AuditEvery, Reason: fmt.Sprintf("only applies to the OLS methods (method %q has no candidate truncation to audit)", m)}
		}
	}
	if o.Epsilon > 0 && m == MethodOLSKL {
		return &OptionError{Field: "Epsilon", Value: o.Epsilon, Reason: "the stopping rule needs per-trial proportions; ols-kl estimates are Karp-Luby transforms (use ols, os or mc-vp)"}
	}
	switch m {
	case MethodExact, MethodMCVP:
		if o.Workers > 0 {
			return &OptionError{Field: "Workers", Value: o.Workers, Reason: fmt.Sprintf("method %q does not support parallel execution; use os, ols or ols-kl", m)}
		}
		if o.Executor != nil {
			return &OptionError{Field: "Executor", Value: o.Executor, Reason: fmt.Sprintf("method %q does not support executor fan-out; use os, ols or ols-kl", m)}
		}
	}
	if o.Executor != nil && o.adaptive() {
		f, v := o.adaptiveField()
		return &OptionError{Field: f, Value: v, Reason: "adaptive supervision reshapes the trial schedule mid-run and cannot ride an explicit Executor; drop the adaptive options or the Executor"}
	}
	if o.Query != nil {
		if err := o.Query.validate(o, m); err != nil {
			return err
		}
	}
	if m == MethodExact {
		if o.Resume != nil {
			return &OptionError{Field: "Resume", Value: o.Resume, Reason: "the exact method cannot resume from a checkpoint; re-run the enumeration"}
		}
		return nil // trial counts unused
	}
	if o.Trials == 0 {
		return &OptionError{Field: "Trials", Value: o.Trials, Reason: "must be positive (use DefaultOptions for the paper setup)"}
	}
	switch m {
	case MethodOLS, MethodOLSKL, Method(""):
		if o.PrepTrials == 0 {
			return &OptionError{Field: "PrepTrials", Value: o.PrepTrials, Reason: "OLS methods need PrepTrials > 0"}
		}
	}
	return nil
}

// adaptiveField names the first set adaptive option, for error
// attribution when the combination (not one value) is invalid.
func (o Options) adaptiveField() (string, any) {
	switch {
	case o.AuditEvery > 0:
		return "AuditEvery", o.AuditEvery
	case o.Epsilon > 0:
		return "Epsilon", o.Epsilon
	case !o.Deadline.IsZero():
		return "Deadline", o.Deadline
	default:
		return "StallTimeout", o.StallTimeout
	}
}
