package mpmb

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

func vptr(v VertexID) *VertexID { return &v }

type stubExecutor struct{}

func (stubExecutor) ExecuteTrials(job *core.ExecJob) (*core.ExecResult, error) {
	return nil, errors.New("stub executor")
}

// pendantPublic builds a graph whose L0 (and R0) touch only the pendant
// edge (0,0): every anchor on them has zero butterfly support, while the
// {L1,L2}×{R1,R2} block holds a real butterfly.
func pendantPublic(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	b.MustAddEdge(0, 0, 5, 0.9)
	b.MustAddEdge(1, 1, 2, 0.5)
	b.MustAddEdge(1, 2, 3, 0.6)
	b.MustAddEdge(2, 1, 1, 0.7)
	b.MustAddEdge(2, 2, 2, 0.8)
	return b.Build()
}

// twoBlocks builds two disjoint complete 2×2 blocks: community 0 on
// {L0,L1}×{R0,R1}, community 1 on {L2,L3}×{R2,R3}.
func twoBlocks(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 3, 0.6)
	b.MustAddEdge(1, 0, 1, 0.7)
	b.MustAddEdge(1, 1, 2, 0.8)
	b.MustAddEdge(2, 2, 4, 0.4)
	b.MustAddEdge(2, 3, 1, 0.9)
	b.MustAddEdge(3, 2, 2, 0.5)
	b.MustAddEdge(3, 3, 3, 0.6)
	return b.Build()
}

func blockLabels() *Communities {
	return &Communities{L: []int{0, 0, 1, 1}, R: []int{0, 0, 1, 1}}
}

func TestQueryValidation(t *testing.T) {
	base := func() Options {
		o := DefaultOptions()
		o.Trials = 100
		return o
	}
	cases := []struct {
		name  string
		mut   func(*Options)
		field string
	}{
		{"two anchors", func(o *Options) {
			o.Query = &Query{AnchorL: vptr(0), AnchorR: vptr(0)}
		}, "Query"},
		{"anchor plus community", func(o *Options) {
			o.Query = &Query{AnchorL: vptr(0), Community: blockLabels()}
		}, "Query.Community"},
		{"empty community labels", func(o *Options) {
			o.Query = &Query{Community: &Communities{}}
		}, "Query.Community"},
		{"negative topk", func(o *Options) {
			o.Query = &Query{Community: &Communities{L: []int{0}, R: []int{0}, TopK: -1}}
		}, "Query.Community"},
		{"anchored mc-vp", func(o *Options) {
			o.Method = MethodMCVP
			o.Query = &Query{AnchorL: vptr(0)}
		}, "Query.AnchorL"},
		{"anchored resume", func(o *Options) {
			o.Query = &Query{AnchorR: vptr(0)}
			o.Resume = &Checkpoint{}
		}, "Resume"},
		{"community executor", func(o *Options) {
			o.Query = &Query{Community: blockLabels()}
			o.Executor = stubExecutor{}
		}, "Executor"},
		{"anchored supervisor", func(o *Options) {
			o.Query = &Query{AnchorL: vptr(0)}
			o.AuditEvery = 100
		}, "AuditEvery"},
		{"community epsilon", func(o *Options) {
			o.Query = &Query{Community: blockLabels()}
			o.Epsilon = 0.01
		}, "Epsilon"},
		{"adaptive prep on os", func(o *Options) {
			o.Method = MethodOS
			o.Query = &Query{AdaptivePrep: true}
		}, "Query.AdaptivePrep"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mut(&o)
			err := o.Validate()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Validate() = %v, want *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("Field = %q, want %q (%v)", oe.Field, tc.field, err)
			}
		})
	}
	// The zero Query is the global query and must stay valid.
	o := base()
	o.Query = &Query{}
	if err := o.Validate(); err != nil {
		t.Fatalf("zero Query rejected: %v", err)
	}
}

func TestQueryRangeErrors(t *testing.T) {
	g := figure1(t)
	pend := pendantPublic(t)
	opt := DefaultOptions()
	opt.Trials = 100
	for _, tc := range []struct {
		name  string
		g     *Graph
		q     *Query
		field string
	}{
		{"left out of range", g, &Query{AnchorL: vptr(9)}, "Query.AnchorL"},
		{"right out of range", g, &Query{AnchorR: vptr(9)}, "Query.AnchorR"},
		{"edge endpoint out of range", g, &Query{AnchorEdge: &EdgeAnchor{U: 9, V: 0}}, "Query.AnchorEdge"},
		{"not a backbone edge", pend, &Query{AnchorEdge: &EdgeAnchor{U: 0, V: 1}}, "Query.AnchorEdge"},
		{"label length mismatch", g, &Query{Community: &Communities{L: []int{0}, R: []int{0, 0, 0}}}, "Query.Community"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := opt
			opt.Query = tc.q
			_, err := Search(tc.g, opt)
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("Search = %v, want *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("Field = %q, want %q (%v)", oe.Field, tc.field, err)
			}
		})
	}
}

// anchorIn reports whether the query's anchor is contained in b.
func anchorIn(b Butterfly, q *Query) bool {
	switch {
	case q.AnchorL != nil:
		return b.U1 == *q.AnchorL || b.U2 == *q.AnchorL
	case q.AnchorR != nil:
		return b.V1 == *q.AnchorR || b.V2 == *q.AnchorR
	default:
		e := q.AnchorEdge
		return (b.U1 == e.U || b.U2 == e.U) && (b.V1 == e.V || b.V2 == e.V)
	}
}

func TestAnchoredSearchMatchesExact(t *testing.T) {
	g := figure1(t)
	queries := []*Query{
		{AnchorL: vptr(0)},
		{AnchorL: vptr(1)},
		{AnchorR: vptr(0)},
		{AnchorR: vptr(2)},
		{AnchorEdge: &EdgeAnchor{U: 0, V: 1}},
		{AnchorEdge: &EdgeAnchor{U: 1, V: 2}},
	}
	for _, q := range queries {
		exactOpt := DefaultOptions()
		exactOpt.Method = MethodExact
		exactOpt.Query = q
		exact, err := Search(g, exactOpt)
		if err != nil {
			t.Fatalf("%+v exact: %v", q, err)
		}
		if len(exact.Estimates) == 0 {
			t.Fatalf("%+v: empty exact result on figure1", q)
		}
		for _, e := range exact.Estimates {
			if !anchorIn(e.B, q) {
				t.Fatalf("%+v: estimate %+v escapes the anchor", q, e.B)
			}
		}
		exactBest, _ := exact.Best()
		for _, m := range []Method{MethodOS, MethodOLS, MethodOLSKL} {
			opt := DefaultOptions()
			opt.Method = m
			opt.Trials = 6000
			opt.Mu = 0.05
			opt.Query = q
			res, err := Search(g, opt)
			if err != nil {
				t.Fatalf("%+v %s: %v", q, m, err)
			}
			best, ok := res.Best()
			if !ok {
				t.Fatalf("%+v %s: empty result", q, m)
			}
			got, ok := res.Lookup(exactBest.B)
			if !ok {
				t.Fatalf("%+v %s: exact best %+v missing", q, m, exactBest.B)
			}
			if math.Abs(got.P-exactBest.P) > 0.05 {
				t.Errorf("%+v %s: P(best)=%v, exact %v", q, m, got.P, exactBest.P)
			}
			for _, e := range res.Estimates {
				if !anchorIn(e.B, q) {
					t.Fatalf("%+v %s: estimate %+v escapes the anchor", q, m, e.B)
				}
			}
			_ = best
		}
	}
}

func TestAnchoredZeroSupport(t *testing.T) {
	g := pendantPublic(t)
	for _, q := range []*Query{
		{AnchorL: vptr(0)},
		{AnchorR: vptr(0)},
		{AnchorEdge: &EdgeAnchor{U: 0, V: 0}},
	} {
		for _, m := range []Method{MethodExact, MethodOS, MethodOLS} {
			opt := DefaultOptions()
			opt.Method = m
			opt.Trials = 200
			opt.Query = q
			res, err := Search(g, opt)
			if err != nil {
				t.Fatalf("%+v %s: %v", q, m, err)
			}
			if len(res.Estimates) != 0 {
				t.Fatalf("%+v %s: zero-support anchor returned %d estimates", q, m, len(res.Estimates))
			}
			if _, ok := res.Best(); ok {
				t.Fatalf("%+v %s: Best() on a zero-support anchor", q, m)
			}
		}
	}
}

func TestCommunityQuery(t *testing.T) {
	g := twoBlocks(t)
	// Per-community exact references, computed on the whole graph: the
	// blocks are disjoint, so the global exact restricted to a block is
	// that community's exact answer.
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	bestPer := map[int]Estimate{}
	for _, e := range exact.Estimates {
		c := 0
		if e.B.U1 >= 2 {
			c = 1
		}
		if cur, ok := bestPer[c]; !ok || e.P > cur.P {
			bestPer[c] = e
		}
	}

	opt := DefaultOptions()
	opt.Trials = 6000
	opt.Query = &Query{Community: blockLabels()}
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != 2 {
		t.Fatalf("got %d community results, want 2", len(res.Communities))
	}
	if len(res.Estimates) != 2 {
		t.Fatalf("merged top-k has %d estimates, want 2 (TopK=0 → 1 per community)", len(res.Estimates))
	}
	for _, cr := range res.Communities {
		want, ok := bestPer[cr.Community]
		if !ok {
			t.Fatalf("unexpected community %d", cr.Community)
		}
		got, ok := cr.Result.Best()
		if !ok {
			t.Fatalf("community %d: empty result", cr.Community)
		}
		if got.B != want.B {
			t.Fatalf("community %d: best %+v, want %+v", cr.Community, got.B, want.B)
		}
		if math.Abs(got.P-want.P) > 0.05 {
			t.Errorf("community %d: P=%v, exact %v", cr.Community, got.P, want.P)
		}
	}

	// -1 exclusion: dropping L0 from community 0 removes its only
	// butterfly (a 2×2 block needs both left vertices).
	opt.Query = &Query{Community: &Communities{L: []int{-1, 0, 1, 1}, R: []int{0, 0, 1, 1}}}
	res, err = Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Communities {
		if cr.Community == 0 && len(cr.Result.Estimates) != 0 {
			t.Fatalf("community 0 should be butterfly-free after excluding L0: %+v", cr.Result.Estimates)
		}
	}

	// TopK widens the merged view.
	opt.Query = &Query{Community: &Communities{L: []int{0, 0, 1, 1}, R: []int{0, 0, 1, 1}, TopK: 5}}
	res, err = Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 2 {
		// Each disjoint 2×2 block holds exactly one butterfly.
		t.Fatalf("TopK=5 merged %d estimates, want 2", len(res.Estimates))
	}
}

func TestAdaptivePrepSizing(t *testing.T) {
	g := figure1(t)
	opt := DefaultOptions()
	opt.Trials = 3000
	opt.PrepTrials = 7 // must be overridden by the pre-pass
	opt.Query = &Query{AdaptivePrep: true}
	res, err := Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.PrepSizing == nil {
		t.Fatalf("no prep-sizing report: %+v", res.Adaptive)
	}
	s := res.Adaptive.PrepSizing
	if res.PrepTrials != s.PrepTrials {
		t.Fatalf("PrepTrials=%d, sized %d", res.PrepTrials, s.PrepTrials)
	}
	if res.PrepTrials == 7 {
		t.Fatal("sizing pre-pass did not override Options.PrepTrials")
	}
	if _, ok := res.Best(); !ok {
		t.Fatal("empty result")
	}

	// Composes with the supervisor: the sized budget seeds the audit loop.
	opt.AuditEvery = 500
	res, err = Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.PrepSizing == nil {
		t.Fatalf("supervised run lost the sizing report: %+v", res.Adaptive)
	}
	if res.Adaptive.Escalations != 0 {
		t.Fatalf("sized PrepTrials escalated %d times on figure1", res.Adaptive.Escalations)
	}

	// Composes with anchors and communities.
	opt = DefaultOptions()
	opt.Trials = 2000
	opt.Query = &Query{AnchorL: vptr(0), AdaptivePrep: true}
	res, err = Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive == nil || res.Adaptive.PrepSizing == nil {
		t.Fatal("anchored run has no sizing report")
	}

	opt.Query = &Query{Community: blockLabels(), AdaptivePrep: true}
	res, err = Search(twoBlocks(t), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Communities {
		if cr.Result.Adaptive == nil || cr.Result.Adaptive.PrepSizing == nil {
			t.Fatalf("community %d has no sizing report", cr.Community)
		}
	}
}

// TestSearcherQueryParity: the Searcher's query paths must return
// bit-identical results to the one-shot Search, on first use and on the
// cached second use.
func TestSearcherQueryParity(t *testing.T) {
	g := figure1(t)
	s := NewSearcher(g)
	opts := []Options{
		func() Options {
			o := DefaultOptions()
			o.Trials = 3000
			o.Query = &Query{AnchorL: vptr(0)}
			return o
		}(),
		func() Options {
			o := DefaultOptions()
			o.Trials = 3000
			o.Query = &Query{AnchorEdge: &EdgeAnchor{U: 1, V: 2}}
			return o
		}(),
		func() Options {
			o := DefaultOptions()
			o.Trials = 3000
			o.Query = &Query{AdaptivePrep: true}
			return o
		}(),
	}
	for _, opt := range opts {
		want, err := Search(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := s.Search(opt)
			if err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
			if len(got.Estimates) != len(want.Estimates) {
				t.Fatalf("pass %d: %d estimates, want %d", pass, len(got.Estimates), len(want.Estimates))
			}
			for i := range got.Estimates {
				if got.Estimates[i] != want.Estimates[i] {
					t.Fatalf("pass %d: estimate %d = %+v, want %+v", pass, i, got.Estimates[i], want.Estimates[i])
				}
			}
		}
	}

	// Community parity through the cached split.
	bg := twoBlocks(t)
	bs := NewSearcher(bg)
	opt := DefaultOptions()
	opt.Trials = 3000
	opt.Query = &Query{Community: blockLabels()}
	want, err := Search(bg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := bs.Search(opt)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if len(got.Communities) != len(want.Communities) {
			t.Fatalf("pass %d: %d communities, want %d", pass, len(got.Communities), len(want.Communities))
		}
		for i := range got.Communities {
			gb, _ := got.Communities[i].Result.Best()
			wb, _ := want.Communities[i].Result.Best()
			if gb != wb {
				t.Fatalf("pass %d community %d: best %+v, want %+v", pass, i, gb, wb)
			}
		}
	}
}

func TestAnchoredSearchContextCancel(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Trials = 5000
	opt.Query = &Query{AnchorL: vptr(0)}
	res, err := SearchContext(ctx, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("cancelled anchored search returned a complete result")
	}
	if res.Checkpoint != nil {
		t.Fatal("anchored partial results must not carry a checkpoint (Resume is rejected)")
	}
}
