package mpmb

import (
	"github.com/uncertain-graphs/mpmb/internal/core"
)

// StopReason classifies why a supervised (adaptive) run ended; see
// AdaptiveReport.StopReason.
type StopReason = core.StopReason

// The adaptive run stop reasons.
const (
	// StopCompleted: the full trial budget ran and every enabled audit
	// passed.
	StopCompleted = core.StopCompleted
	// StopEpsilon: the leader's half-width reached Options.Epsilon before
	// the trial budget ran out.
	StopEpsilon = core.StopEpsilon
	// StopDeadline: Options.Deadline expired; the Result is the
	// partial-but-honest prefix completed in time.
	StopDeadline = core.StopDeadline
	// StopCancelled: the context (or signal) cancelled the run.
	StopCancelled = core.StopCancelled
)

// AdaptiveReport is the supervisor's bookkeeping for an adaptive run,
// attached to Result.Adaptive whenever any of Options.AuditEvery,
// Epsilon, Deadline or StallTimeout is set: the stop reason, the achieved
// leader half-width, the audit and escalation counts, and every
// degradation-ladder transition.
type AdaptiveReport = core.AdaptiveReport

// Transition records one escalation or degradation-ladder event of an
// adaptive run (see AdaptiveReport.Transitions).
type Transition = core.Transition

// ErrStalled reports an adaptive run whose workers stopped making
// progress for longer than Options.StallTimeout. Match with errors.Is;
// the concrete *StallError carries the quiet duration.
var ErrStalled = core.ErrStalled

// StallError is the typed error behind ErrStalled.
type StallError = core.StallError

// ErrRetriesExhausted reports that every attempt of a retried checkpoint
// save or load failed; see CheckpointStore. Match with errors.Is; the
// concrete *RetryExhaustedError carries the attempt count and last cause.
var ErrRetriesExhausted = core.ErrRetriesExhausted

// RetryExhaustedError is the typed error behind ErrRetriesExhausted.
type RetryExhaustedError = core.RetryExhaustedError

// RetryPolicy shapes the exponential backoff (with deterministic jitter)
// between checkpoint I/O attempts of a CheckpointStore.
type RetryPolicy = core.RetryPolicy

// DefaultRetryPolicy returns the standard checkpoint retry budget:
// 4 attempts, 50 ms base delay, 2 s cap.
func DefaultRetryPolicy() RetryPolicy { return core.DefaultRetryPolicy() }

// CheckpointStore saves and loads checkpoints with retry on transient
// I/O failures, using the same atomic temp-file-then-rename protocol as
// SaveCheckpoint — a failing save never tears an existing checkpoint.
type CheckpointStore = core.CheckpointStore

// CheckpointFS is the filesystem seam a CheckpointStore writes through;
// inject an implementation via NewCheckpointStoreFS to wrap exotic (or,
// in tests, deliberately flaky) storage.
type CheckpointFS = core.CheckpointFS

// CheckpointFile is the writable scratch file CheckpointFS.CreateTemp
// returns.
type CheckpointFile = core.CheckpointFile

// NewCheckpointStore builds a retrying checkpoint store over the real
// filesystem.
func NewCheckpointStore(policy RetryPolicy) *CheckpointStore {
	return core.NewCheckpointStore(policy)
}

// NewCheckpointStoreFS is NewCheckpointStore with an injectable
// filesystem; fs nil means the real one.
func NewCheckpointStoreFS(policy RetryPolicy, fs CheckpointFS) *CheckpointStore {
	return core.NewCheckpointStoreFS(policy, fs)
}
