package apicheck

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the committed baseline from the current surface:
//
//	go test ./internal/apicheck/ -run TestRootAPISurface -update
var update = flag.Bool("update", false, "rewrite api/mpmb.txt from the current API surface")

const baselinePath = "../../api/mpmb.txt"

// TestRootAPISurface is the API-compatibility gate: the exported surface
// of the root mpmb package must match the committed baseline exactly.
// Removed or re-spelled lines are incompatible changes; additions are
// compatible but must be recorded (re-run with -update) so reviewers see
// every surface change in the diff.
func TestRootAPISurface(t *testing.T) {
	surface, err := Surface("../..")
	if err != nil {
		t.Fatalf("computing API surface: %v", err)
	}
	if len(surface) == 0 {
		t.Fatal("empty API surface — parser found no exported declarations")
	}
	if *update {
		if err := os.MkdirAll(filepath.Dir(baselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		const header = "# Exported API surface of package mpmb — the CI apidiff gate.\n" +
			"# Regenerate: go test ./internal/apicheck/ -run TestRootAPISurface -update\n"
		data := header + strings.Join(surface, "\n") + "\n"
		if err := os.WriteFile(baselinePath, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", baselinePath, len(surface))
		return
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("reading baseline (regenerate with -update): %v", err)
	}
	var baseline []string
	for _, l := range strings.Split(string(raw), "\n") {
		if l = strings.TrimSpace(l); l != "" && !strings.HasPrefix(l, "#") {
			baseline = append(baseline, l)
		}
	}
	removed, added := Diff(baseline, surface)
	for _, l := range removed {
		t.Errorf("INCOMPATIBLE: removed or changed: %s", l)
	}
	for _, l := range added {
		t.Errorf("new API (run `go test ./internal/apicheck/ -run TestRootAPISurface -update` to record): %s", l)
	}
}

// TestSurfaceRendering pins the renderer's own behaviour on a synthetic
// package, so baseline churn can be told apart from renderer changes.
func TestSurfaceRendering(t *testing.T) {
	dir := t.TempDir()
	src := `package fake

type Public struct {
	Exported   int
	unexported string
	Fn         func(int) error
}

type hidden struct{ X int }

type Alias = Public

type Num int

const DefaultNum Num = 3

var Registry map[string][]*Public

func New(n int, opts ...string) (*Public, error) { return nil, nil }

func (p *Public) Get(key string) int { return 0 }

func (h hidden) Method() {}

func internal() {}
`
	if err := os.WriteFile(filepath.Join(dir, "fake.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Surface(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"const DefaultNum Num",
		"func New(int, ...string) (*Public, error)",
		"method (*Public) Get(string) int",
		"type Alias = Public",
		"type Num int",
		"type Public struct { Exported int; Fn func(int) error }",
		"var Registry map[string][]*Public",
	}
	if len(got) != len(want) {
		t.Fatalf("surface lines = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestDiff pins the removed/added split.
func TestDiff(t *testing.T) {
	removed, added := Diff(
		[]string{"func A()", "func B() int"},
		[]string{"func B() int", "func C()"},
	)
	if len(removed) != 1 || removed[0] != "func A()" {
		t.Errorf("removed = %q", removed)
	}
	if len(added) != 1 || added[0] != "func C()" {
		t.Errorf("added = %q", added)
	}
}
