// Package apicheck renders a Go package's exported API surface as a
// sorted list of one-line declarations, so a committed baseline file can
// gate incompatible changes to the public mpmb package in CI. It uses
// only the standard library (go/parser, go/ast) — no external tooling.
//
// The rendering is deliberately textual and type-syntactic: a line
// changes exactly when a declaration's spelling changes, which is the
// granularity an API-compatibility gate needs. Lines look like:
//
//	func Search(*Graph, Options) (*Result, error)
//	method (*Observer) Metrics() Metrics
//	type Options struct { Method Method; Trials int; ... }
//	const MethodOLS Method
//	var Methods []Method
package apicheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// Surface parses the Go package in dir (test files excluded) and
// returns its exported declarations, one line each, sorted.
func Surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders one top-level declaration's exported surface.
func declLines(decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := typeString(d.Recv.List[0].Type)
			if !exportedBase(d.Recv.List[0].Type) {
				return nil
			}
			return []string{fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signature(d.Type))}
		}
		return []string{fmt.Sprintf("func %s%s", d.Name.Name, signature(d.Type))}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					out = append(out, typeLine(s))
				}
			case *ast.ValueSpec:
				kind := "var"
				if d.Tok == token.CONST {
					kind = "const"
				}
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					line := kind + " " + n.Name
					if s.Type != nil {
						line += " " + typeString(s.Type)
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// exportedBase reports whether a receiver type's base identifier is
// exported (methods on unexported types are not API surface).
func exportedBase(expr ast.Expr) bool {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr:
			expr = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return false
		}
	}
}

// typeLine renders one exported type declaration.
func typeLine(s *ast.TypeSpec) string {
	name := s.Name.Name
	if s.Assign.IsValid() {
		return fmt.Sprintf("type %s = %s", name, typeString(s.Type))
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		var fields []string
		for _, f := range t.Fields.List {
			ft := typeString(f.Type)
			if len(f.Names) == 0 {
				fields = append(fields, ft) // embedded
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					fields = append(fields, n.Name+" "+ft)
				}
			}
		}
		return fmt.Sprintf("type %s struct { %s }", name, strings.Join(fields, "; "))
	case *ast.InterfaceType:
		var methods []string
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				methods = append(methods, typeString(m.Type)) // embedded
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						methods = append(methods, n.Name+signature(ft))
					}
				}
			}
		}
		return fmt.Sprintf("type %s interface { %s }", name, strings.Join(methods, "; "))
	default:
		return fmt.Sprintf("type %s %s", name, typeString(s.Type))
	}
}

// signature renders a function type as "(T1, T2) (R1, R2)" — parameter
// names dropped, types only, so renames stay compatible.
func signature(ft *ast.FuncType) string {
	s := "(" + strings.Join(fieldTypes(ft.Params), ", ") + ")"
	res := fieldTypes(ft.Results)
	switch len(res) {
	case 0:
	case 1:
		s += " " + res[0]
	default:
		s += " (" + strings.Join(res, ", ") + ")"
	}
	return s
}

// fieldTypes expands a field list into one type string per declared
// name (or per anonymous field).
func fieldTypes(fl *ast.FieldList) []string {
	if fl == nil {
		return nil
	}
	var out []string
	for _, f := range fl.List {
		t := typeString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, t)
		}
	}
	return out
}

// typeString renders a type expression in source syntax.
func typeString(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.ArrayType:
		if t.Len == nil {
			return "[]" + typeString(t.Elt)
		}
		return "[" + exprString(t.Len) + "]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.ChanType:
		switch t.Dir {
		case ast.RECV:
			return "<-chan " + typeString(t.Value)
		case ast.SEND:
			return "chan<- " + typeString(t.Value)
		default:
			return "chan " + typeString(t.Value)
		}
	case *ast.FuncType:
		return "func" + signature(t)
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.InterfaceType:
		if len(t.Methods.List) == 0 {
			return "interface{}"
		}
		return "interface{...}"
	case *ast.StructType:
		if len(t.Fields.List) == 0 {
			return "struct{}"
		}
		return "struct{...}"
	case *ast.IndexExpr:
		return typeString(t.X) + "[" + typeString(t.Index) + "]"
	case *ast.ParenExpr:
		return "(" + typeString(t.X) + ")"
	default:
		return fmt.Sprintf("<%T>", expr)
	}
}

// exprString renders the few non-type expressions that appear inside
// types (array lengths).
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.BasicLit:
		return e.Value
	case *ast.Ident:
		return e.Name
	default:
		return fmt.Sprintf("<%T>", expr)
	}
}

// Diff compares a computed surface against a baseline and reports the
// incompatible (removed or changed) and new lines.
func Diff(baseline, surface []string) (removed, added []string) {
	have := make(map[string]bool, len(surface))
	for _, l := range surface {
		have[l] = true
	}
	want := make(map[string]bool, len(baseline))
	for _, l := range baseline {
		want[l] = true
		if !have[l] {
			removed = append(removed, l)
		}
	}
	for _, l := range surface {
		if !want[l] {
			added = append(added, l)
		}
	}
	return removed, added
}
