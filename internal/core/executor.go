package core

import (
	"fmt"
	"math"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// TrialExecutor is the seam between a parallel runner's bookkeeping
// (validation, resume, partial results, checkpoints) and the machinery
// that actually executes its independent trial units. The runners hand an
// executor a declarative ExecJob — "run units Start+1..Units of this
// kind" — and fold the returned additive payload into their resumed
// state.
//
// The contract every implementation must honour, because the runners'
// bit-identity guarantee rests on it:
//
//   - Prefix. The executed units are exactly Start+1..Done for the
//     returned Done (Done < Units only when job.Interrupt fired). No
//     unit is skipped, none is double-counted.
//   - Derivation. Unit i's random stream is derived from (job.Seed, i)
//     — randx.New(job.Seed).DeriveInto(i) — so WHERE and in WHAT ORDER
//     units run cannot change any result bit.
//   - Additivity. The payload is a sum (or disjoint write) over the
//     executed units; merging per-range payloads in prefix order equals
//     running the whole range in one place.
//
// LocalExecutor is the in-process worker pool behind Options.Workers;
// internal/dist provides the coordinator-backed distributed executor.
type TrialExecutor interface {
	// ExecuteTrials runs job's units Start+1..Units and returns the
	// completed prefix with its payload. An error means no usable
	// payload (e.g. a worker panic abandoned a chunk mid-flight).
	ExecuteTrials(job *ExecJob) (*ExecResult, error)
}

// ExecKind selects which trial body an executor runs.
type ExecKind uint8

const (
	// ExecOS runs Ordering Sampling world trials (Algorithm 2); the
	// payload is the per-butterfly maximum tally.
	ExecOS ExecKind = iota + 1
	// ExecOptimized runs shared sampling trials of the optimized
	// estimator (Algorithm 5); the payload is the per-candidate hit
	// count vector.
	ExecOptimized
	// ExecKarpLuby prices candidates with the Karp-Luby estimator
	// (Algorithm 4); the unit axis is the candidate index and the
	// payload is the per-candidate estimate + executed-trial pair.
	ExecKarpLuby
)

func (k ExecKind) String() string {
	switch k {
	case ExecOS:
		return "os"
	case ExecOptimized:
		return "optimized"
	case ExecKarpLuby:
		return "karp-luby"
	}
	return fmt.Sprintf("ExecKind(%d)", uint8(k))
}

// ExecSpec is the run-level identity of the job, carried for executors
// that ship work to other processes: everything a remote worker needs to
// rebuild the job state it cannot receive by pointer (the candidate set
// is re-derived from Seed + PrepTrials, the sampling phase's seed offset
// from Method). Local execution ignores it.
type ExecSpec struct {
	// Method is the run's method ("os", "ols", "ols-kl"). Empty means
	// the job was built by a core-level caller without run context;
	// distributed executors reject it.
	Method string
	// Seed is the RUN seed (ExecJob.Seed is the PHASE seed — for the
	// OLS sampling phase they differ by the deterministic offset).
	Seed uint64
	// Trials / PrepTrials / Mu mirror the run targets, for remote-side
	// rebuild validation and checkpoint compatibility.
	Trials     int
	PrepTrials int
	Mu         float64
}

// ExecJob is one executable range request. Fields are read-only to the
// executor; Graph and Cands are shared, immutable structures.
type ExecJob struct {
	// Kind picks the trial body; it decides which payload fields of the
	// ExecResult are populated.
	Kind ExecKind
	// Graph is the uncertain network the units sample.
	Graph *bigraph.Graph
	// Cands is the weight-sorted candidate set (ExecOptimized and
	// ExecKarpLuby only; nil for ExecOS).
	Cands *Candidates
	// Seed is the phase seed unit streams derive from.
	Seed uint64
	// Units is the total unit count of the run; Start the completed
	// prefix. The executor runs units Start+1..Units.
	Units int
	Start int
	// OS carries the Ordering Sampling kernel knobs for ExecOS (and the
	// preparing-phase knobs a remote worker must rebuild candidates
	// with). Only the pruning/ablation flags are meaningful here —
	// trial counts, seeds and hooks travel in the fields above.
	OS OSOptions
	// KL carries the Karp-Luby sizing knobs for ExecKarpLuby
	// (BaseTrials, Mu, MaxTrials). Hook fields must be nil.
	KL KLOptions
	// Interrupt, if non-nil, is polled during execution; when it
	// returns true the executor stops at a unit boundary and returns
	// the completed prefix. Must be safe for concurrent use.
	Interrupt func() bool
	// Probe receives the job's telemetry (nil-safe). Executors flush
	// exact counter deltas for completed units only, so the terminal
	// counters are a function of the done-prefix — identical across
	// local and distributed execution.
	Probe *telemetry.Probe
	// Workers is the parallelism hint for pool-style executors (0 =
	// executor default).
	Workers int
	// Spec is the run-level identity for remote execution (see
	// ExecSpec).
	Spec ExecSpec
}

// ExecResult is the additive payload of an executed range. Exactly one
// payload group is populated, matching the job's Kind; all are
// checkpoint-shaped, so a prefix payload converts directly into the
// runners' resume state.
type ExecResult struct {
	// Done is the completed prefix: units Start+1..Done were executed.
	Done int
	// Counts is the ExecOS payload: per-butterfly maximum tallies over
	// the executed units (order irrelevant; counts are additive).
	Counts []ButterflyCount
	// CandCounts is the ExecOptimized payload: a full-width
	// per-candidate hit vector summed over the executed units.
	CandCounts []int64
	// CandProbs / CandTrials are the ExecKarpLuby payload: full-width
	// vectors with entries Start..Done-1 filled (per-candidate writes
	// are disjoint, so ranges concatenate exactly).
	CandProbs  []float64
	CandTrials []int

	// acc is the in-process fast path for ExecOS: LocalExecutor hands
	// the merged worker accumulator over directly so the local runner
	// keeps today's allocation profile (no snapshot/rebuild round
	// trip). Remote executors populate Counts instead.
	acc *probAccumulator
}

// CountsSnapshot exports the ExecOS payload as canonical-order
// checkpoint entries regardless of which internal representation the
// executor used. Remote executors serialize this; merging the entries of
// several ranges (adding counts per butterfly) equals running the union
// of the ranges in one place.
func (r *ExecResult) CountsSnapshot() []ButterflyCount {
	if r.acc != nil {
		return r.acc.snapshot()
	}
	return r.Counts
}

// foldCounts merges an ExecOS payload into an accumulator.
func (r *ExecResult) foldCounts(a *probAccumulator) {
	if r.acc != nil {
		a.merge(r.acc)
		return
	}
	if len(r.Counts) > 0 {
		a.merge(accumulatorFromCounts(r.Counts))
	}
}

// LocalExecutor runs job ranges on an in-process worker pool — the
// chunked atomic-cursor dispatch that has always been behind the
// parallel runners, now behind the TrialExecutor seam. The zero value is
// ready to use (GOMAXPROCS workers).
type LocalExecutor struct {
	// Workers overrides the pool size (0 defers to the job's hint, then
	// GOMAXPROCS).
	Workers int
}

// workerCount resolves the pool size for a job: explicit executor
// setting, then the job hint, then GOMAXPROCS, clamped to the remaining
// units so short tails don't spin idle goroutines.
func (e *LocalExecutor) workerCount(job *ExecJob) int {
	w := e.Workers
	if w <= 0 {
		w = job.Workers
	}
	if w <= 0 {
		w = parDefaultWorkers()
	}
	if rem := job.Units - job.Start; w > rem {
		w = rem
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ExecuteTrials implements TrialExecutor.
func (e *LocalExecutor) ExecuteTrials(job *ExecJob) (*ExecResult, error) {
	if job.Start >= job.Units {
		return &ExecResult{Done: job.Units}, nil
	}
	switch job.Kind {
	case ExecOS:
		return e.runOS(job)
	case ExecOptimized:
		return e.runOptimized(job)
	case ExecKarpLuby:
		return e.runKarpLuby(job)
	}
	return nil, fmt.Errorf("core: LocalExecutor: unknown job kind %v", job.Kind)
}

// runOS executes Ordering Sampling world trials. Worker-local
// accumulators and kernels, merged at the end; no shared mutable state
// during the run (DeriveInto only reads the root stream). Each worker
// builds one flat kernel and reuses it for every trial of every chunk it
// claims, so the steady-state per-trial cost is the kernel scan alone —
// no per-trial closures, derives, or allocations.
func (e *LocalExecutor) runOS(job *ExecJob) (*ExecResult, error) {
	workers := e.workerCount(job)
	job.Probe.EnsureWorkers(workers)
	root := randx.New(job.Seed)
	accs := make([]*probAccumulator, workers)
	idxs := make([]*osIndex, workers)
	done, err := parLoop(job.Start, job.Units, workers, job.Interrupt, func(w int) func(int, int) {
		acc := newProbAccumulator()
		accs[w] = acc
		// Worker kernels come from the graph snapshot's pool: across runs
		// over the same graph the ~1MB per-kernel scratch is reused instead
		// of reallocated, which is what held the parallel path at ~40
		// allocs per trial.
		idx := acquireKernel(job.Graph, job.OS)
		idxs[w] = idx
		var sMB butterfly.MaxSet
		job.Probe.LabelWorker(w)
		meter := newTrialMeter(job.Probe, w, idx.snap.numEdges(), false)
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				scanned, fellBack := idx.runTrialSeeded(root, uint64(trial), &sMB)
				hit := !sMB.Empty()
				if hit {
					acc.addMaxSet(&sMB)
				}
				meter.observe(trial, scanned, fellBack, hit)
			}
			// Chunks are always fully executed, so flushing per chunk keeps
			// the registry's counters an exact function of the done-prefix —
			// identical totals to the sequential run over the same trials.
			meter.flush(hi)
		}
	})
	// parLoop has joined every worker goroutine, so the kernels are idle
	// and can rejoin the snapshot's pool (even on a worker panic).
	for _, idx := range idxs {
		if idx != nil {
			releaseKernel(idx)
		}
	}
	if err != nil {
		return nil, err
	}
	merged := newProbAccumulator()
	for _, a := range accs {
		if a != nil {
			merged.merge(a)
		}
	}
	return &ExecResult{Done: done, acc: merged}, nil
}

// runOptimized executes shared sampling trials of the optimized
// estimator. Each worker owns private lazy-sampling scratch and a
// private count vector, summed into one full-width vector at the end.
func (e *LocalExecutor) runOptimized(job *ExecJob) (*ExecResult, error) {
	workers := e.workerCount(job)
	job.Probe.EnsureWorkers(workers)
	c := job.Cands
	n := len(c.List)
	g := c.G
	numE := g.NumEdges()
	// One id-indexed threshold table, shared read-only by all workers.
	thresh := edgeThresholds(g)
	root := randx.New(job.Seed)
	countsPer := make([][]int64, workers)
	done, err := parLoop(job.Start, job.Units, workers, job.Interrupt, func(w int) func(int, int) {
		cw := make([]int64, n)
		countsPer[w] = cw
		stamp := make([]int32, numE)
		val := make([]bool, numE)
		var cur int32
		var rng randx.RNG
		job.Probe.LabelWorker(w)
		meter := newTrialMeter(job.Probe, w, n, true)
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				root.DeriveInto(uint64(trial), &rng)
				cur++
				wMax := math.Inf(-1)
				examined := n
				for k := 0; k < n; k++ {
					cand := &c.List[k]
					if cand.Weight < wMax {
						examined = k
						break
					}
					exists := true
					for _, id := range cand.Edges {
						if stamp[id] != cur {
							stamp[id] = cur
							val[id] = rng.BernoulliThresholded(thresh[id])
						}
						if !val[id] {
							exists = false
							break
						}
					}
					if exists {
						cw[k]++
						wMax = cand.Weight
					}
				}
				meter.observe(trial, examined, false, !math.IsInf(wMax, -1))
			}
			meter.flush(hi)
		}
	})
	if err != nil {
		return nil, err
	}
	counts := make([]int64, n)
	for _, cw := range countsPer {
		if cw == nil {
			continue
		}
		for i, cnt := range cw {
			counts[i] += cnt
		}
	}
	return &ExecResult{Done: done, CandCounts: counts}, nil
}

// runKarpLuby prices candidates Start..Units-1. parLoop's 1-based
// "trials" start+1..n map to candidate indices start..n-1; writes into
// the full-width vectors are per-index disjoint.
func (e *LocalExecutor) runKarpLuby(job *ExecJob) (*ExecResult, error) {
	workers := e.workerCount(job)
	job.Probe.EnsureWorkers(workers)
	c := job.Cands
	n := job.Units
	probs := make([]float64, n)
	trials := make([]int, n)
	numE := c.G.NumEdges()
	thresh := edgeThresholds(c.G) // shared read-only by all workers
	root := randx.New(job.Seed)
	done, err := parLoop(job.Start, n, workers, job.Interrupt, func(w int) func(int, int) {
		scratch := newKLScratch(numE, thresh)
		job.Probe.LabelWorker(w)
		lastT := time.Now()
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				i := trial - 1
				probs[i], trials[i] = klPrice(c, i, job.KL, root, scratch)
				probeKLCandidate(job.Probe, w, i, trials[i], &lastT)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return &ExecResult{Done: done, CandProbs: probs, CandTrials: trials}, nil
}
