package core

import (
	"fmt"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// CommunitySpec labels every vertex with a community. Labels are
// arbitrary nonnegative integers; a label of -1 excludes the vertex from
// every community. A butterfly belongs to community c exactly when all
// four of its vertices carry label c, so cross-community butterflies are
// outside the scope of a per-community query by definition.
type CommunitySpec struct {
	L []int // one label per left vertex
	R []int // one label per right vertex
}

// Validate checks the label slices against the graph's vertex counts.
func (sp CommunitySpec) Validate(g *bigraph.Graph) error {
	if len(sp.L) != g.NumL() {
		return fmt.Errorf("core: community spec has %d left labels, graph has %d left vertices", len(sp.L), g.NumL())
	}
	if len(sp.R) != g.NumR() {
		return fmt.Errorf("core: community spec has %d right labels, graph has %d right vertices", len(sp.R), g.NumR())
	}
	for i, c := range sp.L {
		if c < -1 {
			return fmt.Errorf("core: left vertex %d has invalid community label %d", i, c)
		}
	}
	for i, c := range sp.R {
		if c < -1 {
			return fmt.Errorf("core: right vertex %d has invalid community label %d", i, c)
		}
	}
	return nil
}

// CommunityGraph is one community's induced subgraph together with the
// keep slices that map its dense vertex ids back to the parent graph.
type CommunityGraph struct {
	ID    int
	G     *bigraph.Graph
	KeepL []bigraph.VertexID
	KeepR []bigraph.VertexID
}

// CommunitySubgraphs splits g by the spec into one induced subgraph per
// community label, in ascending label order. Labels appearing on only one
// side still produce a (butterfly-free) subgraph, so callers can report a
// deterministic entry for every requested community.
func CommunitySubgraphs(g *bigraph.Graph, sp CommunitySpec) ([]CommunityGraph, error) {
	if err := sp.Validate(g); err != nil {
		return nil, err
	}
	labels := map[int]struct{}{}
	for _, c := range sp.L {
		if c >= 0 {
			labels[c] = struct{}{}
		}
	}
	for _, c := range sp.R {
		if c >= 0 {
			labels[c] = struct{}{}
		}
	}
	ids := make([]int, 0, len(labels))
	for c := range labels {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	subs := make([]CommunityGraph, 0, len(ids))
	for _, c := range ids {
		var keepL, keepR []bigraph.VertexID
		for i, lc := range sp.L {
			if lc == c {
				keepL = append(keepL, bigraph.VertexID(i))
			}
		}
		for i, rc := range sp.R {
			if rc == c {
				keepR = append(keepR, bigraph.VertexID(i))
			}
		}
		sub, err := g.InducedSubgraph(keepL, keepR)
		if err != nil {
			return nil, fmt.Errorf("core: community %d subgraph: %w", c, err)
		}
		subs = append(subs, CommunityGraph{ID: c, G: sub, KeepL: keepL, KeepR: keepR})
	}
	return subs, nil
}

// RemapButterfly translates a butterfly on the community subgraph back to
// parent-graph vertex ids.
func (cg CommunityGraph) RemapButterfly(b butterfly.Butterfly) butterfly.Butterfly {
	return butterfly.New(cg.KeepL[b.U1], cg.KeepL[b.U2], cg.KeepR[b.V1], cg.KeepR[b.V2])
}

// RemapResult returns a copy of a subgraph result with every estimate
// translated to parent-graph vertex ids. Checkpoints are dropped (they
// are subgraph-relative and community runs are not resumable); the sort
// order is preserved because remapping never changes P or weight, only
// the canonical tie order among equal (P, weight) pairs.
func (cg CommunityGraph) RemapResult(res *Result) *Result {
	if res == nil {
		return nil
	}
	out := *res
	out.Checkpoint = nil
	out.Estimates = make([]Estimate, len(res.Estimates))
	for i, e := range res.Estimates {
		out.Estimates[i] = Estimate{B: cg.RemapButterfly(e.B), Weight: e.Weight, P: e.P}
	}
	sortEstimates(out.Estimates)
	return &out
}

// CommunityResult pairs one community label with its (parent-id-mapped)
// search result.
type CommunityResult struct {
	Community int     `json:"community"`
	Result    *Result `json:"result"`
}

// AssembleCommunityResult merges per-community results into one Result:
// Estimates concatenates each community's top-k (re-sorted into the
// canonical order), Communities keeps the full per-community results, and
// the run is partial when any community run was. parts must be in
// ascending community order (as produced by CommunitySubgraphs).
func AssembleCommunityResult(method string, trials, prepTrials, topK int, parts []CommunityResult) *Result {
	if topK <= 0 {
		topK = 1
	}
	res := &Result{
		Method:      method,
		Trials:      trials,
		PrepTrials:  prepTrials,
		TrialsDone:  trials,
		Communities: parts,
	}
	for _, p := range parts {
		if p.Result == nil {
			continue
		}
		res.Estimates = append(res.Estimates, p.Result.TopK(topK)...)
		if p.Result.Partial {
			res.Partial = true
			if p.Result.TrialsDone < res.TrialsDone {
				res.TrialsDone = p.Result.TrialsDone
			}
		}
	}
	sortEstimates(res.Estimates)
	return res
}
