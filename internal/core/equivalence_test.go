package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// Cross-runner equivalence: a parallel runner is an implementation
// detail, so seed for seed its FULL Result — method tag, trial
// bookkeeping, partial flag and every estimate, bit for bit and in
// canonical order — must match the sequential runner's. The existing
// parallel tests compare estimate values; these pin the whole struct,
// and in particular workers=1 (a degenerate pool, historically the
// easiest configuration to special-case apart).

// requireSameResult asserts full Result identity.
func requireSameResult(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if par.Method != seq.Method || par.Trials != seq.Trials ||
		par.PrepTrials != seq.PrepTrials || par.TrialsDone != seq.TrialsDone ||
		par.Partial != seq.Partial {
		t.Fatalf("%s: result headers differ:\nseq: %+v\npar: %+v", label, headerOf(seq), headerOf(par))
	}
	if !reflect.DeepEqual(par.Estimates, seq.Estimates) {
		t.Fatalf("%s: estimates differ:\nseq: %v\npar: %v", label, seq.Estimates, par.Estimates)
	}
}

func headerOf(r *Result) map[string]any {
	return map[string]any{
		"Method": r.Method, "Trials": r.Trials, "PrepTrials": r.PrepTrials,
		"TrialsDone": r.TrialsDone, "Partial": r.Partial,
	}
}

func TestOSParallelFullResultEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(r, 6, 6, 16)
		opt := OSOptions{Trials: 600, Seed: uint64(trial)*13 + 7}
		seq, err := OS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			par, err := OSParallel(g, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "os", seq, par)
		}
	}
}

func TestOLSParallelFullResultEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		g := randGraph(r, 6, 6, 16)
		for _, useKL := range []bool{false, true} {
			opt := OLSOptions{
				PrepTrials:  40,
				Trials:      400,
				Seed:        uint64(trial)*17 + 3,
				UseKarpLuby: useKL,
			}
			seq, err := OLS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				par, err := OLSParallel(g, opt, workers)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, seq.Method, seq, par)
			}
		}
	}
}

// TestEstimateKarpLubyParallelSingleWorker covers the workers=1 pool the
// broader KL equivalence test skips.
func TestEstimateKarpLubyParallelSingleWorker(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 3; trial++ {
		g := randDenseSmallGraph(r, 14)
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() == 0 {
			continue
		}
		opt := KLOptions{BaseTrials: 500, Seed: uint64(trial) + 11}
		seq, err := EstimateKarpLuby(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := EstimateKarpLubyParallel(cands, opt, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("workers=1 KL estimates differ:\nseq: %v\npar: %v", seq, par)
		}
	}
}
