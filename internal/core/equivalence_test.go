package core

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// Cross-runner equivalence: a parallel runner is an implementation
// detail, so seed for seed its FULL Result — method tag, trial
// bookkeeping, partial flag and every estimate, bit for bit and in
// canonical order — must match the sequential runner's. The existing
// parallel tests compare estimate values; these pin the whole struct,
// and in particular workers=1 (a degenerate pool, historically the
// easiest configuration to special-case apart).

// requireSameResult asserts full Result identity.
func requireSameResult(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if par.Method != seq.Method || par.Trials != seq.Trials ||
		par.PrepTrials != seq.PrepTrials || par.TrialsDone != seq.TrialsDone ||
		par.Partial != seq.Partial {
		t.Fatalf("%s: result headers differ:\nseq: %+v\npar: %+v", label, headerOf(seq), headerOf(par))
	}
	if !reflect.DeepEqual(par.Estimates, seq.Estimates) {
		t.Fatalf("%s: estimates differ:\nseq: %v\npar: %v", label, seq.Estimates, par.Estimates)
	}
}

func headerOf(r *Result) map[string]any {
	return map[string]any{
		"Method": r.Method, "Trials": r.Trials, "PrepTrials": r.PrepTrials,
		"TrialsDone": r.TrialsDone, "Partial": r.Partial,
	}
}

func TestOSParallelFullResultEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(r, 6, 6, 16)
		opt := OSOptions{Trials: 600, Seed: uint64(trial)*13 + 7}
		seq, err := OS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			par, err := OSParallel(g, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "os", seq, par)
		}
	}
}

func TestOLSParallelFullResultEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		g := randGraph(r, 6, 6, 16)
		for _, useKL := range []bool{false, true} {
			opt := OLSOptions{
				PrepTrials:  40,
				Trials:      400,
				Seed:        uint64(trial)*17 + 3,
				UseKarpLuby: useKL,
			}
			seq, err := OLS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				par, err := OLSParallel(g, opt, workers)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, seq.Method, seq, par)
			}
		}
	}
}

// Kernel-vs-seed equivalence: the flat-memory trial kernel (SoA edge
// snapshot, threshold Bernoulli, open-addressed angle tables, batched
// chunk dispatch) is a pure optimization, so seed for seed its FULL
// Result must be bit-identical to the frozen seed implementation in
// osref.go — sequentially, under the degenerate workers=1 pool, and
// under a contended workers=8 pool.

func TestKernelMatchesSeedOS(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 6; trial++ {
		g := randGraph(r, 7, 7, 20)
		opt := OSOptions{Trials: 500, Seed: uint64(trial)*29 + 5}
		ref, err := OSReference(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := OS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "os kernel vs seed (sequential)", ref, seq)
		for _, workers := range []int{1, 8} {
			par, err := OSParallel(g, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "os kernel vs seed (parallel)", ref, par)
		}
	}
}

func TestKernelMatchesSeedOSAblations(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(r, 6, 6, 18)
		for _, opt := range []OSOptions{
			{Trials: 300, Seed: uint64(trial) + 1, DisableEdgePrune: true},
			{Trials: 300, Seed: uint64(trial) + 1, DropA2: true},
			{Trials: 300, Seed: uint64(trial) + 1, KeepAllAngles: true},
		} {
			ref, err := OSReference(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := OS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "os ablation kernel vs seed", ref, seq)
		}
	}
}

func TestKernelMatchesSeedOLS(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		g := randGraph(r, 6, 6, 18)
		for _, useKL := range []bool{false, true} {
			opt := OLSOptions{
				PrepTrials:  30,
				Trials:      300,
				Seed:        uint64(trial)*19 + 2,
				UseKarpLuby: useKL,
			}
			ref, err := OLSReference(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := OLS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, ref.Method+" kernel vs seed (sequential)", ref, seq)
			for _, workers := range []int{1, 8} {
				par, err := OLSParallel(g, opt, workers)
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, ref.Method+" kernel vs seed (parallel)", ref, par)
			}
		}
	}
}

// TestKernelMatchesSeedAfterResume cuts a kernel run mid-flight, resumes
// it from the checkpoint, and requires the stitched Result to remain
// bit-identical to the seed implementation's uninterrupted run — the
// strongest form of the completed-prefix invariant surviving the batched
// chunk dispatch.
func TestKernelMatchesSeedAfterResume(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	g := randGraph(r, 7, 7, 20)

	t.Run("os", func(t *testing.T) {
		opt := OSOptions{Trials: 400, Seed: 9}
		ref, err := OSReference(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Cut the parallel run after ~the first few chunks; the interrupt
		// is polled concurrently, so count atomically.
		var polls atomic.Int64
		cut := opt
		cut.Interrupt = func() bool { return polls.Add(1) > 6 }
		part, err := OSParallel(g, cut, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.Checkpoint == nil {
			t.Skip("interrupt did not cut the run mid-flight on this machine")
		}
		res := opt
		res.Resume = part.Checkpoint
		for label, finish := range map[string]func() (*Result, error){
			"sequential": func() (*Result, error) { return OS(g, res) },
			"parallel":   func() (*Result, error) { return OSParallel(g, res, 4) },
		} {
			got, err := finish()
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "os resume "+label, ref, got)
		}
	})

	for _, useKL := range []bool{false, true} {
		opt := OLSOptions{PrepTrials: 30, Trials: 300, Seed: 9, UseKarpLuby: useKL}
		t.Run(opt.method(), func(t *testing.T) {
			ref, err := OLSReference(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(ref.Estimates) == 0 {
				t.Skip("graph produced no candidates")
			}
			// Let the preparing phase through, cut the sampling phase.
			var polls atomic.Int64
			cut := opt
			cut.Interrupt = func() bool { return polls.Add(1) > int64(opt.PrepTrials)+4 }
			part, err := OLSParallel(g, cut, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !part.Partial || part.Checkpoint == nil {
				t.Skip("interrupt did not cut the sampling phase mid-flight")
			}
			res := opt
			res.Resume = part.Checkpoint
			for label, finish := range map[string]func() (*Result, error){
				"sequential": func() (*Result, error) { return OLS(g, res) },
				"parallel":   func() (*Result, error) { return OLSParallel(g, res, 4) },
			} {
				got, err := finish()
				if err != nil {
					t.Fatal(err)
				}
				requireSameResult(t, opt.method()+" resume "+label, ref, got)
			}
		})
	}
}

// TestEstimateKarpLubyParallelSingleWorker covers the workers=1 pool the
// broader KL equivalence test skips.
func TestEstimateKarpLubyParallelSingleWorker(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 3; trial++ {
		g := randDenseSmallGraph(r, 14)
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() == 0 {
			continue
		}
		opt := KLOptions{BaseTrials: 500, Seed: uint64(trial) + 11}
		seq, err := EstimateKarpLuby(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := EstimateKarpLubyParallel(cands, opt, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("workers=1 KL estimates differ:\nseq: %v\npar: %v", seq, par)
		}
	}
}
