package core

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// edgeSnapshot is the struct-of-arrays view of a graph the flat OS trial
// kernel scans: one parallel slice per field, in descending-weight order
// (Algorithm 2 line 1), so a trial walks contiguous memory instead of
// chasing edge ids through the AoS edge table. The Bernoulli threshold of
// every edge is precomputed once per snapshot (randx.BernoulliThreshold),
// turning per-edge presence into a shift-and-compare against one raw
// generator word — with draw-for-draw identical semantics to
// randx.Bernoulli, so Results stay bit-identical to the seed
// implementation.
//
// The snapshot also carries the flat N̂_E layout: right vertex v's live
// already-processed edges occupy liveFlat[liveOff[v] : liveOff[v]+len],
// where the region capacity is deg(v) — the most live edges v can ever
// accumulate in one trial — so per-trial bookkeeping never allocates.
type edgeSnapshot struct {
	w      []float64          // edge weight, descending
	u      []bigraph.VertexID // left endpoint
	v      []bigraph.VertexID // right endpoint
	uv     []uint64           // uint64(u)<<32 | uint64(v): both endpoints in one load
	id     []bigraph.EdgeID   // original edge id (oracle path, butterflies)
	thresh []uint64           // randx.BernoulliThreshold of the edge's p

	wBar float64 // w(e1)+w(e2)+w(e3), the Section V-B prune budget

	liveOff []int32 // per right vertex offset into liveFlat, len numR+1

	// tok holds one fixed random 64-bit token per left vertex. The angle
	// table hashes an endpoint pair as tok[u1]^tok[u2] (Zobrist hashing):
	// two L1 loads and an XOR, symmetric in the pair so the kernel needs
	// no canonical ordering before hashing, and cheaper than running the
	// packed key through a multiply-based finalizer on every angle.
	tok []uint64
}

// liveEdge is one flat N̂_E entry: a live, already-processed edge incident
// to the region's right vertex. The weight and the left endpoint's Zobrist
// token ride along so angle formation (∠ = e_a ⊕ e_b) and the angle-table
// hash read everything from the same cache line instead of re-fetching the
// AoS edge record and the token array.
type liveEdge struct {
	to  bigraph.VertexID // left endpoint
	w   float64
	tok uint64 // snap.tok[to]
}

func newEdgeSnapshot(g *bigraph.Graph) *edgeSnapshot {
	sorted := g.EdgesByWeightDesc()
	n := len(sorted)
	s := &edgeSnapshot{
		w:       make([]float64, n),
		u:       make([]bigraph.VertexID, n),
		v:       make([]bigraph.VertexID, n),
		id:      make([]bigraph.EdgeID, n),
		thresh:  make([]uint64, n),
		wBar:    g.TopWeightSum(3),
		liveOff: make([]int32, g.NumR()+1),
	}
	s.uv = make([]uint64, n)
	for i, eid := range sorted {
		e := g.Edge(eid)
		s.w[i] = e.W
		s.u[i] = e.U
		s.v[i] = e.V
		s.uv[i] = uint64(e.U)<<32 | uint64(e.V)
		s.id[i] = eid
		s.thresh[i] = randx.BernoulliThreshold(e.P)
	}
	for v := 0; v < g.NumR(); v++ {
		s.liveOff[v+1] = s.liveOff[v] + int32(g.DegreeR(bigraph.VertexID(v)))
	}
	s.tok = make([]uint64, g.NumL())
	for u := range s.tok {
		sm := uint64(u) ^ 0x6a09e667f3bcc908 // fixed salt; any constant works
		s.tok[u] = randx.SplitMix64(&sm)
	}
	return s
}

// numEdges returns the snapshot length.
func (s *edgeSnapshot) numEdges() int { return len(s.id) }

// edgeThresholds precomputes the Bernoulli threshold of every backbone
// edge, indexed by edge id. The candidate estimators (Algorithms 4 and 5)
// sample edges by id rather than in weight order, so they share this
// id-indexed table instead of the weight-ordered snapshot.
func edgeThresholds(g *bigraph.Graph) []uint64 {
	th := make([]uint64, g.NumEdges())
	for i := range th {
		th[i] = randx.BernoulliThreshold(g.Edge(bigraph.EdgeID(i)).P)
	}
	return th
}
