package core

import (
	"math"
	"sync"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// rngBlock is the batch width of the kernel's block RNG generation: raw
// generator words are produced rngBlock snapshot positions at a time and
// turned into a presence bitmask by branch-free threshold subtraction
// (see runTrialRNG). 64 positions fit exactly one mask word, and a
// 64-word buffer stays comfortably on the stack.
const (
	rngBlock      = 64
	rngBlockShift = 6
)

// calibrationTrials is K, the number of reserved trials the snapshot
// build runs to place the truncated edge-prefix boundary. The boundary
// is the maximum prune point those K trials observed (plus margin); by
// exchangeability a fresh trial's prune point exceeds the maximum of K
// i.i.d. calibration trials with probability at most 1/(K+1), so the
// prefix-sufficiency check trips into the full-scan fallback on at most
// ~1.5% of trials even before the margin. See docs/ALGORITHMS.md,
// "Performance engineering v2".
const calibrationTrials = 64

// calibrationSalt seeds the calibration stream family together with the
// graph checksum, keeping the prefix boundary a pure function of the
// graph — never of a run's seed — so one calibrated snapshot serves
// every run over the same graph.
const calibrationSalt = 0x5ca1ab1e0ddba11d

// edgeSnapshot is the struct-of-arrays view of a graph the flat OS trial
// kernel scans: one parallel slice per field, in descending-weight order
// (Algorithm 2 line 1), so a trial walks contiguous memory instead of
// chasing edge ids through the AoS edge table. The Bernoulli threshold of
// every edge is precomputed once per snapshot (randx.BernoulliThreshold),
// turning per-edge presence into a shift-and-compare against one raw
// generator word — with draw-for-draw identical semantics to
// randx.Bernoulli, so Results stay bit-identical to the seed
// implementation.
//
// The snapshot also carries the flat N̂_E layout: right vertex v's live
// already-processed edges occupy liveFlat[liveOff[v] : liveOff[v]+len],
// where the region capacity is deg(v) — the most live edges v can ever
// accumulate in one trial — so per-trial bookkeeping never allocates.
//
// Since PR 9 the snapshot is immutable after snapshotFor returns and is
// shared by every kernel over the same graph (see snapshotFor): it
// additionally precomputes the batched-RNG draw schedule (admitTh,
// wordOf, ndraws), the per-edge butterfly support counts and the
// support-sharpened prune budgets (wBarS, wBar2S), and the calibrated
// truncated-prefix boundary (prefixLen).
type edgeSnapshot struct {
	w      []float64          // edge weight, descending
	prt    []bigraph.VertexID // pairing endpoint (outer side of the angle)
	ctr    []bigraph.VertexID // center endpoint (middle side, owns the live lists)
	pc     []uint64           // uint64(prt)<<32 | uint64(ctr): both endpoints in one load
	id     []bigraph.EdgeID   // original edge id (oracle path, butterflies)
	thresh []uint64           // randx.BernoulliThreshold of the edge's p

	wBar float64 // w(e1)+w(e2)+w(e3), the Section V-B prune budget

	// flip selects which side the angle middles live on. An angle is two
	// present edges sharing a middle vertex; a butterfly is two angles
	// sharing the same outer pair with distinct middles — the definition
	// is side-symmetric, so the kernel may center its live lists on
	// either side and produce the same butterfly set. The build centers
	// on the side with the smaller expected pair-work Σ d̄(x)² (d̄ = sum
	// of incident edge probabilities) — the wing-decomposition /
	// vertex-priority side-selection rule — which on skewed graphs cuts
	// the per-trial angle count by orders of magnitude. flip=false
	// centers on the right side (middles are right vertices, the seed
	// implementation's fixed choice); flip=true centers on the left.
	flip bool

	liveOff []int32 // per center vertex offset into liveFlat, len numCenter+1

	// tok holds one fixed random 64-bit token per pairing-side vertex.
	// The angle table hashes an endpoint pair as tok[a]^tok[b] (Zobrist
	// hashing): two L1 loads and an XOR, symmetric in the pair so the
	// kernel needs no canonical ordering before hashing, and cheaper than
	// running the packed key through a multiply-based finalizer on every
	// angle.
	tok []uint64

	// support is the exact number of backbone butterflies (4-cycles)
	// containing each snapshot position's edge, computed once at build in
	// the wing-decomposition style (per-edge support via wedge counts from
	// the cheaper side; cf. ParButterfly's wing ordering). An edge with
	// support 0 lies on no backbone butterfly, so no possible world can
	// materialize a butterfly through it: the kernel never admits it
	// (admitTh 0), though the edge still consumes its Bernoulli draw so
	// the word schedule of every later edge is unchanged. Counts saturate
	// at MaxInt32; only >0 matters to the kernel.
	support []int32

	// admitTh is the batched-admission threshold of each position,
	// normalized into [0, 2^53] so one branch-free comparison per edge
	// decides admission: a position is admitted iff word>>11 < admitTh.
	// p <= 0 and support-0 edges map to 0 (word>>11 < 0 is never true),
	// p >= 1 maps to 2^53 (word>>11 <= 2^53-1 < 2^53 is always true),
	// and p in (0, 1) keeps its BernoulliThreshold in [1, 2^53].
	admitTh []uint64

	// wordOf[i] is the index, within position i's rngBlock-wide block, of
	// the raw generator word position i compares against: the count of
	// draw-consuming (p in (0,1)) positions between the block start and i.
	// Deterministic positions point at the next undetermined position's
	// word (or one past the block's words — a garbage slot the kernel
	// provides); their admitTh sentinel decides regardless of the word's
	// value, so the read is harmless and the loop stays branch-free.
	wordOf []uint8

	// ndraws[b] is how many raw words block b consumes: the number of
	// p in (0,1) positions in [b*rngBlock, min((b+1)*rngBlock, n)).
	ndraws []uint8

	// wBarS / wBar2S are the support-sharpened prune budgets: the sum of
	// the three (resp. two) largest weights among support-positive edges.
	// Every edge of any butterfly is support-positive, so any butterfly
	// containing the edge at position i weighs at most w[i]+wBarS, and
	// any butterfly completing a given angle weighs at most the angle's
	// weight plus wBar2S — both bounds strict below the running w_max
	// certify that skipping the position/angle cannot change the Result.
	wBarS  float64
	wBar2S float64

	// barren reports that no edge has butterfly support: the backbone
	// contains no 4-cycle, so every trial's maximum set is empty and the
	// kernel returns immediately.
	barren bool

	// prefixLen is the calibrated truncated-prefix boundary m (a multiple
	// of rngBlock, or numEdges): the kernel scans only positions < m and
	// runs the deterministic sufficiency check w[m]+wBarS < w_max at the
	// boundary, falling back to the tail scan — counted in telemetry —
	// exactly when the check fails. Uncalibrated snapshots use the full
	// length, which disables the fallback path entirely.
	prefixLen int

	// kernels recycles osIndex instances built over this snapshot, so a
	// run (or a parallel worker) that needs a kernel for an already-seen
	// graph reuses the previous run's allocations instead of rebuilding
	// ~1MB of per-kernel scratch. Kernels are only ever pooled with their
	// own snapshot, so a pooled kernel always matches the graph.
	kernels sync.Pool
}

// liveEdge is one flat N̂_E entry: a live, already-processed edge incident
// to the region's center vertex. The weight and the pairing endpoint's
// Zobrist token ride along so angle formation (∠ = e_a ⊕ e_b) and the
// angle-table hash read everything from the same cache line instead of
// re-fetching the AoS edge record and the token array.
type liveEdge struct {
	to  bigraph.VertexID // pairing endpoint
	w   float64
	tok uint64 // snap.tok[to]
}

func newEdgeSnapshot(g *bigraph.Graph) *edgeSnapshot {
	sorted := g.EdgesByWeightDesc()
	n := len(sorted)
	s := &edgeSnapshot{
		w:      make([]float64, n),
		prt:    make([]bigraph.VertexID, n),
		ctr:    make([]bigraph.VertexID, n),
		id:     make([]bigraph.EdgeID, n),
		thresh: make([]uint64, n),
		wBar:   g.TopWeightSum(3),
	}
	// Side selection: center the live middle lists on the side with the
	// smaller expected pair-work Σ_x d̄(x)² — the number of angles a trial
	// forms is Σ over center vertices of C(present degree, 2).
	var workL, workR float64
	for u := 0; u < g.NumL(); u++ {
		d := g.ExpectedDegreeL(bigraph.VertexID(u))
		workL += d * d
	}
	for v := 0; v < g.NumR(); v++ {
		d := g.ExpectedDegreeR(bigraph.VertexID(v))
		workR += d * d
	}
	s.flip = workL < workR
	s.pc = make([]uint64, n)
	for i, eid := range sorted {
		e := g.Edge(eid)
		s.w[i] = e.W
		if s.flip {
			s.prt[i], s.ctr[i] = e.V, e.U
		} else {
			s.prt[i], s.ctr[i] = e.U, e.V
		}
		s.pc[i] = uint64(s.prt[i])<<32 | uint64(s.ctr[i])
		s.id[i] = eid
		s.thresh[i] = randx.BernoulliThreshold(e.P)
	}
	numCtr, numPrt := g.NumR(), g.NumL()
	if s.flip {
		numCtr, numPrt = g.NumL(), g.NumR()
	}
	s.liveOff = make([]int32, numCtr+1)
	for c := 0; c < numCtr; c++ {
		var deg int
		if s.flip {
			deg = g.DegreeL(bigraph.VertexID(c))
		} else {
			deg = g.DegreeR(bigraph.VertexID(c))
		}
		s.liveOff[c+1] = s.liveOff[c] + int32(deg)
	}
	s.tok = make([]uint64, numPrt)
	for u := range s.tok {
		sm := uint64(u) ^ 0x6a09e667f3bcc908 // fixed salt; any constant works
		s.tok[u] = randx.SplitMix64(&sm)
	}

	// Per-edge butterfly support, then the support-dependent kernel
	// tables: normalized admission thresholds, the block draw schedule,
	// and the sharpened prune budgets.
	sup := edgeSupport(g)
	s.support = make([]int32, n)
	s.admitTh = make([]uint64, n)
	s.wordOf = make([]uint8, n)
	s.ndraws = make([]uint8, (n+rngBlock-1)/rngBlock)
	var draws uint8 // draw-consuming positions so far in the current block
	for i := 0; i < n; i++ {
		if i&(rngBlock-1) == 0 {
			draws = 0
		}
		s.wordOf[i] = draws
		th := s.thresh[i]
		if th != randx.BernoulliNever && th != randx.BernoulliAlways {
			draws++
		}
		s.ndraws[i>>rngBlockShift] = draws
		supI := sup[s.id[i]]
		s.support[i] = supI
		switch {
		case supI == 0 || th == randx.BernoulliNever:
			s.admitTh[i] = 0
		case th == randx.BernoulliAlways:
			s.admitTh[i] = 1 << 53
		default:
			s.admitTh[i] = th
		}
	}
	// Top-3/top-2 support-positive weights: positions are already weight
	// descending, so the first three support-positive positions are the
	// maxima.
	var top [3]float64
	found := 0
	for i := 0; i < n && found < 3; i++ {
		if s.support[i] > 0 {
			top[found] = s.w[i]
			found++
		}
	}
	s.barren = found == 0
	s.wBarS = top[0] + top[1] + top[2]
	s.wBar2S = top[0] + top[1]
	s.prefixLen = n // uncalibrated: full scan, no fallback path
	return s
}

// numEdges returns the snapshot length.
func (s *edgeSnapshot) numEdges() int { return len(s.id) }

// edgeSupport counts, for every backbone edge, the backbone butterflies
// (4-cycles) containing it. The count is exact; values saturate at
// MaxInt32.
//
// The algorithm is the wedge-counting discipline of wing decomposition
// (ParButterfly): fix a center vertex u on one side; one pass over the
// neighborhoods of N(u) tallies cnt[u'] = |N(u) ∩ N(u')| for every
// same-side vertex u'; a second pass then charges each edge (u, v) with
// Σ_{u' ∈ N(v), u' ≠ u} (cnt[u'] − 1) — the number of butterflies
// {u, u', v, v'} through (u, v). Total work is Σ over the opposite
// side's degrees squared, so the center side is chosen to minimize it
// (the same side-selection rule wing decomposition uses).
func edgeSupport(g *bigraph.Graph) []int32 {
	sup := make([]int32, g.NumEdges())
	var sumL2, sumR2 int64
	for u := 0; u < g.NumL(); u++ {
		d := int64(g.DegreeL(bigraph.VertexID(u)))
		sumL2 += d * d
	}
	for v := 0; v < g.NumR(); v++ {
		d := int64(g.DegreeR(bigraph.VertexID(v)))
		sumR2 += d * d
	}
	if sumR2 <= sumL2 {
		// Left centers: inner loops walk right neighborhoods (cost Σ_R d²).
		cnt := make([]int32, g.NumL())
		for u := 0; u < g.NumL(); u++ {
			uid := bigraph.VertexID(u)
			for _, h := range g.NeighborsL(uid) {
				for _, h2 := range g.NeighborsR(h.To) {
					if h2.To != uid {
						cnt[h2.To]++
					}
				}
			}
			for _, h := range g.NeighborsL(uid) {
				var c int64
				for _, h2 := range g.NeighborsR(h.To) {
					if h2.To == uid {
						continue
					}
					c += int64(cnt[h2.To] - 1)
				}
				sup[h.E] = satInt32(c)
			}
			for _, h := range g.NeighborsL(uid) {
				for _, h2 := range g.NeighborsR(h.To) {
					cnt[h2.To] = 0
				}
			}
		}
		return sup
	}
	// Right centers: symmetric, inner loops walk left neighborhoods
	// (cost Σ_L d²).
	cnt := make([]int32, g.NumR())
	for v := 0; v < g.NumR(); v++ {
		vid := bigraph.VertexID(v)
		for _, h := range g.NeighborsR(vid) {
			for _, h2 := range g.NeighborsL(h.To) {
				if h2.To != vid {
					cnt[h2.To]++
				}
			}
		}
		for _, h := range g.NeighborsR(vid) {
			var c int64
			for _, h2 := range g.NeighborsL(h.To) {
				if h2.To == vid {
					continue
				}
				c += int64(cnt[h2.To] - 1)
			}
			sup[h.E] = satInt32(c)
		}
		for _, h := range g.NeighborsR(vid) {
			for _, h2 := range g.NeighborsL(h.To) {
				cnt[h2.To] = 0
			}
		}
	}
	return sup
}

func satInt32(v int64) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

// calibrate places the truncated-prefix boundary by running
// calibrationTrials reserved trials whose streams derive from the graph
// checksum (never a run seed), recording the maximum position the
// support-sharpened prune let any of them reach, and rounding that high
// -water mark — plus a 1/8 margin and one spare block — up to a block
// multiple. A fresh run trial then needs the tail beyond the boundary
// with probability at most 1/(K+1) (exchangeability of K+1 i.i.d.
// trials), before the margin; when it does, the kernel's sufficiency
// check fails closed into the exact full-scan continuation and the
// fallback is counted in telemetry.
func (s *edgeSnapshot) calibrate(g *bigraph.Graph) {
	n := s.numEdges()
	s.prefixLen = n
	if s.barren || n <= rngBlock {
		return
	}
	x := newOSIndexFromSnapshot(g, OSOptions{}, s)
	root := randx.New(uint64(g.Checksum())*0x9e3779b97f4a7c15 ^ calibrationSalt)
	var sMB butterfly.MaxSet
	maxStop := 0
	for t := 1; t <= calibrationTrials; t++ {
		stop, _ := x.runTrialSeeded(root, uint64(t), &sMB)
		if stop > maxStop {
			maxStop = stop
		}
	}
	m := maxStop + maxStop/8 + rngBlock
	m = (m + rngBlock - 1) &^ (rngBlock - 1)
	if m < n {
		s.prefixLen = m
	}
	s.kernels.Put(x) // the calibration kernel seeds the snapshot's pool
}

// snapCache memoizes calibrated snapshots per graph, keyed by graph
// identity (graphs are immutable). Capacity is small — the cache exists
// so repeated runs, parallel workers and pooled service jobs over the
// same few graphs stop rebuilding ~1MB of SoA tables plus the support
// counts per kernel — and old entries fall off the MRU tail, so at most
// snapCacheCap graphs are kept alive by it.
const snapCacheCap = 4

var snapCache struct {
	sync.Mutex
	entries []snapCacheEntry
}

type snapCacheEntry struct {
	g *bigraph.Graph
	s *edgeSnapshot
}

// snapshotFor returns the calibrated snapshot for g, building it on the
// first request. Building (support counting + calibration trials)
// happens outside the cache lock, so concurrent first requests for the
// same graph may build duplicates — each fully calibrated and
// interchangeable; one of them wins the cache slot.
func snapshotFor(g *bigraph.Graph) *edgeSnapshot {
	snapCache.Lock()
	for i := range snapCache.entries {
		if snapCache.entries[i].g == g {
			e := snapCache.entries[i]
			copy(snapCache.entries[1:i+1], snapCache.entries[:i])
			snapCache.entries[0] = e
			snapCache.Unlock()
			return e.s
		}
	}
	snapCache.Unlock()

	s := newEdgeSnapshot(g)
	s.calibrate(g)

	snapCache.Lock()
	defer snapCache.Unlock()
	for i := range snapCache.entries {
		if snapCache.entries[i].g == g {
			return snapCache.entries[i].s // lost the build race; use the winner
		}
	}
	snapCache.entries = append(snapCache.entries, snapCacheEntry{})
	copy(snapCache.entries[1:], snapCache.entries)
	snapCache.entries[0] = snapCacheEntry{g: g, s: s}
	if len(snapCache.entries) > snapCacheCap {
		snapCache.entries = snapCache.entries[:snapCacheCap]
	}
	return s
}

// edgeThresholds precomputes the Bernoulli threshold of every backbone
// edge, indexed by edge id. The candidate estimators (Algorithms 4 and 5)
// sample edges by id rather than in weight order, so they share this
// id-indexed table instead of the weight-ordered snapshot.
func edgeThresholds(g *bigraph.Graph) []uint64 {
	th := make([]uint64, g.NumEdges())
	for i := range th {
		th[i] = randx.BernoulliThreshold(g.Edge(bigraph.EdgeID(i)).P)
	}
	return th
}
