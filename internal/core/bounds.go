package core

import (
	"fmt"
	"math"
)

// MonteCarloTrials returns the trial-number lower bound of Theorem IV.1
// (Karp, Luby & Madras): to achieve (ε, δ)-approximation of a target
// probability μ — Pr(|μ̂ − μ| > εμ) ≤ δ — a Monte-Carlo estimator needs
//
//	N ≥ (1/μ) · (4 ln(2/δ) / ε²)
//
// trials. The same bound governs MC-VP (Theorem IV.1), OS (Lemma V.2) and
// the optimized OLS estimator (Lemma VI.4, N_op). The result is rounded up
// to the next integer.
func MonteCarloTrials(mu, eps, delta float64) (int, error) {
	if !(mu > 0 && mu <= 1) {
		return 0, fmt.Errorf("core: target probability mu=%v must be in (0,1]", mu)
	}
	if !(eps > 0) || !(delta > 0 && delta < 1) {
		return 0, fmt.Errorf("core: need eps>0 and 0<delta<1, got eps=%v delta=%v", eps, delta)
	}
	n := (1 / mu) * (4 * math.Log(2/delta) / (eps * eps))
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("core: required trial count %.3g overflows", n)
	}
	return int(math.Ceil(n)), nil
}

// KLOpRatio evaluates Equation 8, the ratio of trial numbers the Karp-Luby
// estimator and the paper's optimized estimator need for the same ε-δ
// guarantee on a butterfly B_i:
//
//	N_kl / N_op = Pr[E(B_i)] · S_i · (Pr[E(B_i)]/μ − 1)
//
// where prExist = Pr[E(B_i)] is the butterfly's existence probability,
// sI = S_i = Σ_{j≤L(i)} Pr[E(B_j\B_i)], and mu = μ = P(B_i) is the target
// probability being estimated. Fig. 6 plots this ratio over a grid of
// (μ, Pr[E(B_i)]) with S_i = 1; Fig. 10 plots it per candidate with
// μ = 0.1. Values can legitimately be < 1 (KL cheaper) or ≫ 1 (optimized
// cheaper once compared against 1/|C_MB| per Equation 9).
func KLOpRatio(prExist, sI, mu float64) float64 {
	if mu <= 0 || prExist <= 0 {
		return math.Inf(1)
	}
	r := prExist * sI * (prExist/mu - 1)
	if r < 0 {
		// μ > Pr[E(B_i)] cannot happen for a true P(B_i) (being maximum
		// implies existing) but can for a requested target; clamp to 0.
		return 0
	}
	return r
}

// KLTrials returns the Karp-Luby trial-number lower bound of Lemma VI.4
// for butterfly B_i:
//
//	N_kl ≥ Pr[E(B_i)] · S_i · (Pr[E(B_i)]/μ − 1) · (1/μ) · (4 ln(2/δ)/ε²)
//
// i.e. KLOpRatio × MonteCarloTrials. The result is rounded up, with a
// floor of 1 trial.
func KLTrials(prExist, sI, mu, eps, delta float64) (int, error) {
	base, err := MonteCarloTrials(mu, eps, delta)
	if err != nil {
		return 0, err
	}
	r := KLOpRatio(prExist, sI, mu)
	if math.IsInf(r, 1) {
		return 0, fmt.Errorf("core: KL trial bound diverges for prExist=%v mu=%v", prExist, mu)
	}
	n := math.Ceil(r * float64(base))
	if n < 1 {
		n = 1
	}
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("core: required KL trial count %.3g overflows", n)
	}
	return int(n), nil
}

// CandidateMissProb returns the probability that a butterfly with true
// probability p is absent from the candidate set after nPrep preparing
// trials: (1 − p)^nPrep (Lemma VI.1). The paper's example: p = 0.1,
// nPrep = 20 gives ≈ 0.12, i.e. the butterfly is found with ≈ 88%
// probability; with the default nPrep = 100 and p = 0.05 the miss
// probability is below 0.6%.
func CandidateMissProb(p float64, nPrep int) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0
	}
	return math.Pow(1-p, float64(nPrep))
}
