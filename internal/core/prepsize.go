package core

import (
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// Adaptive prep sizing: a sublinear pre-pass in the spirit of Luo et
// al.'s approximate butterfly counting (PAPERS.md). Instead of counting
// butterflies exactly (quadratic in neighbourhood sizes over the whole
// graph), we sample a handful of edges, take each sampled edge's expected
// per-edge butterfly support — the sum over its wedge pairs of the
// product of the three completing probabilities — and scale up. The
// estimated expected butterfly count B̂ then picks PrepTrials (how many
// preparing trials the OLS candidate union needs before the coverage
// audit would stop escalating) and the degradation-ladder entry point
// (graphs whose expected candidate population dwarfs the trial budget
// skip the listing phase and enter at OS).
const (
	// prepSizeSamples is the edge-sample budget of the pre-pass. Graphs
	// (or anchor neighbourhoods) with at most this many edges are measured
	// exhaustively, making B̂ exact in expectation.
	prepSizeSamples = 64
	// prepSizeNeighborCap bounds the wedge enumeration per sampled edge;
	// truncated neighbourhoods are scaled linearly.
	prepSizeNeighborCap = 128
	// prepSizeSalt decorrelates the pre-pass stream from the prep and
	// sampling streams derived from the same user seed.
	prepSizeSalt = 0x5eed512e0fabc0de
	// prepSizeMinTrials is the floor for graphs with any expected
	// butterfly mass: the paper's default preparing budget, which the PR 3
	// coverage audit certifies on the oracle corpus.
	prepSizeMinTrials = 100
	// prepSizeMaxTrials caps the sized budget.
	prepSizeMaxTrials = 800
	// prepSizeBarrenTrials is used when the exhaustive pre-pass proves the
	// expected butterfly count is zero: a token budget (the candidate set
	// will be empty whatever the count).
	prepSizeBarrenTrials = 16
	// prepSizeOSEntryCeiling is the B̂ above which the ladder enters at OS:
	// the candidate union would grow with the butterfly population, so the
	// listing phase stops paying for itself.
	prepSizeOSEntryCeiling = 1 << 20
)

// PrepSizing records the adaptive prep-sizing pre-pass of one query, for
// Result.Adaptive.
type PrepSizing struct {
	// SampledEdges is how many edges the pre-pass measured.
	SampledEdges int `json:"sampled_edges"`
	// Exhaustive is true when every eligible edge was measured, making
	// ExpectedButterflies exact rather than a sampled estimate.
	Exhaustive bool `json:"exhaustive,omitempty"`
	// ExpectedButterflies is B̂, the estimated expected number of
	// butterflies (restricted to the anchor when one is set).
	ExpectedButterflies float64 `json:"expected_butterflies"`
	// PrepTrials is the chosen preparing-phase budget.
	PrepTrials int `json:"prep_trials"`
	// EntryMethod is the chosen degradation-ladder entry point: "ols"
	// normally, "os" when B̂ exceeds the listing ceiling.
	EntryMethod string `json:"entry_method"`
}

// SizePrep runs the pre-pass on g (restricted to the anchor's incident
// edges when anchor is non-nil) and returns the sized preparing budget
// and ladder entry point. The result is deterministic in (g, anchor,
// seed).
func SizePrep(g *bigraph.Graph, anchor *Anchor, seed uint64) PrepSizing {
	pool := prepSizePool(g, anchor)
	s := PrepSizing{EntryMethod: "ols"}
	scale := 1.0
	if len(pool) <= prepSizeSamples {
		s.Exhaustive = true
		s.SampledEdges = len(pool)
	} else {
		rng := randx.New(seed ^ prepSizeSalt)
		sampled := make([]bigraph.EdgeID, prepSizeSamples)
		for i := range sampled {
			sampled[i] = pool[rng.Intn(len(pool))]
		}
		scale = float64(len(pool)) / float64(prepSizeSamples)
		pool = sampled
		s.SampledEdges = len(pool)
	}
	var sum float64
	for _, id := range pool {
		sum += edgeButterflyExpectation(g, id)
	}
	// Each butterfly holds 4 edges, 2 of them incident to a vertex anchor;
	// the anchored-edge pool is the single anchor edge, counted once.
	div := 4.0
	if anchor != nil {
		switch anchor.Kind {
		case AnchorLeft, AnchorRight:
			div = 2.0
		case AnchorEdge:
			div = 1.0
		}
	}
	s.ExpectedButterflies = sum * scale / div
	s.PrepTrials = sizePrepTrials(s.ExpectedButterflies, s.Exhaustive)
	if s.ExpectedButterflies > prepSizeOSEntryCeiling {
		s.EntryMethod = "os"
	}
	return s
}

// prepSizePool is the edge population the pre-pass samples from: all
// edges for a global query, the anchor's incident edges for a vertex
// anchor, the anchor edge itself for an edge anchor.
func prepSizePool(g *bigraph.Graph, anchor *Anchor) []bigraph.EdgeID {
	if anchor == nil || anchor.Kind == 0 {
		ids := make([]bigraph.EdgeID, g.NumEdges())
		for i := range ids {
			ids[i] = bigraph.EdgeID(i)
		}
		return ids
	}
	switch anchor.Kind {
	case AnchorLeft:
		halves := g.NeighborsL(anchor.U)
		ids := make([]bigraph.EdgeID, len(halves))
		for i, h := range halves {
			ids[i] = h.E
		}
		return ids
	case AnchorRight:
		halves := g.NeighborsR(anchor.V)
		ids := make([]bigraph.EdgeID, len(halves))
		for i, h := range halves {
			ids[i] = h.E
		}
		return ids
	case AnchorEdge:
		if id, ok := g.FindEdge(anchor.U, anchor.V); ok {
			return []bigraph.EdgeID{id}
		}
	}
	return nil
}

// edgeButterflyExpectation is the expected number of butterflies through
// edge id: p(e) times the sum over wedge pairs (u,v2),(u2,v) of
// p(u,v2)·p(u2,v)·p(u2,v2). Neighbourhoods beyond prepSizeNeighborCap are
// truncated and scaled linearly, keeping the per-edge cost bounded.
func edgeButterflyExpectation(g *bigraph.Graph, id bigraph.EdgeID) float64 {
	e := g.Edge(id)
	if e.P == 0 {
		return 0
	}
	nu := g.NeighborsL(e.U)
	nv := g.NeighborsR(e.V)
	scaleU, nu2 := truncHalves(nu)
	scaleV, nv2 := truncHalves(nv)
	var sum float64
	for _, h1 := range nu2 {
		v2 := h1.To
		if v2 == e.V {
			continue
		}
		p1 := g.Edge(h1.E).P
		if p1 == 0 {
			continue
		}
		for _, h2 := range nv2 {
			u2 := h2.To
			if u2 == e.U {
				continue
			}
			p2 := g.Edge(h2.E).P
			if p2 == 0 {
				continue
			}
			closing, ok := g.FindEdge(u2, v2)
			if !ok {
				continue
			}
			sum += p1 * p2 * g.Edge(closing).P
		}
	}
	return e.P * sum * scaleU * scaleV
}

func truncHalves(h []bigraph.Half) (float64, []bigraph.Half) {
	if len(h) <= prepSizeNeighborCap {
		return 1, h
	}
	return float64(len(h)) / float64(prepSizeNeighborCap), h[:prepSizeNeighborCap]
}

// sizePrepTrials maps B̂ to a preparing budget: the paper default for
// modest populations, growing logarithmically for dense graphs (more
// co-maximal candidates to cover), and a token budget when an exhaustive
// pre-pass proves the graph butterfly-free.
func sizePrepTrials(bhat float64, exhaustive bool) int {
	if bhat == 0 && exhaustive {
		return prepSizeBarrenTrials
	}
	n := prepSizeMinTrials * int(math.Ceil(math.Log2(2+bhat)/4))
	if n < prepSizeMinTrials {
		n = prepSizeMinTrials
	}
	if n > prepSizeMaxTrials {
		n = prepSizeMaxTrials
	}
	return n
}
