package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestMonteCarloTrialsPaperExample reproduces the worked example under
// Theorem IV.1: P(B)=0.01, ε=0.1, δ=0.01 needs around 2·10⁵ trials.
func TestMonteCarloTrialsPaperExample(t *testing.T) {
	n, err := MonteCarloTrials(0.01, 0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if n < 190000 || n > 220000 {
		t.Fatalf("N = %d, want ≈ 2·10⁵", n)
	}
}

// TestMonteCarloTrialsExperimentDefault reproduces the Section VIII-B
// default: μ=0.05, ε=δ=0.1 gives the paper's N = 2×10⁴ setting.
func TestMonteCarloTrialsExperimentDefault(t *testing.T) {
	n, err := MonteCarloTrials(0.05, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// (1/0.05)·(4·ln20/0.01) ≈ 23966; the paper rounds to 2×10⁴.
	if n < 20000 || n > 25000 {
		t.Fatalf("N = %d, want within [2×10⁴, 2.5×10⁴]", n)
	}
}

// TestMonteCarloTrialsValidation covers parameter validation.
func TestMonteCarloTrialsValidation(t *testing.T) {
	for _, tc := range []struct{ mu, eps, delta float64 }{
		{0, 0.1, 0.1},
		{-0.1, 0.1, 0.1},
		{1.5, 0.1, 0.1},
		{0.1, 0, 0.1},
		{0.1, 0.1, 0},
		{0.1, 0.1, 1},
	} {
		if _, err := MonteCarloTrials(tc.mu, tc.eps, tc.delta); err == nil {
			t.Errorf("MonteCarloTrials(%v,%v,%v) accepted invalid input", tc.mu, tc.eps, tc.delta)
		}
	}
}

// TestMonteCarloTrialsMonotone: more precision or rarer targets always
// demand at least as many trials.
func TestMonteCarloTrialsMonotone(t *testing.T) {
	check := func(a, b uint8) bool {
		mu1 := 0.01 + float64(a%100)/200 // (0, 0.51]
		mu2 := mu1 / 2
		n1, err1 := MonteCarloTrials(mu1, 0.1, 0.1)
		n2, err2 := MonteCarloTrials(mu2, 0.1, 0.1)
		if err1 != nil || err2 != nil {
			return false
		}
		return n2 >= n1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestKLOpRatioEquation8 checks Equation 8 at hand-computed points.
func TestKLOpRatioEquation8(t *testing.T) {
	// Pr[E]=0.5, S=1, μ=0.1 → 0.5·1·(0.5/0.1 − 1) = 0.5·4 = 2.
	if r := KLOpRatio(0.5, 1, 0.1); math.Abs(r-2) > 1e-12 {
		t.Fatalf("KLOpRatio(0.5,1,0.1) = %v, want 2", r)
	}
	// Pr[E]=μ → ratio 0 (the butterfly is maximum whenever it exists).
	if r := KLOpRatio(0.3, 5, 0.3); r != 0 {
		t.Fatalf("KLOpRatio(0.3,5,0.3) = %v, want 0", r)
	}
	// μ > Pr[E] clamps to 0 rather than going negative.
	if r := KLOpRatio(0.2, 1, 0.5); r != 0 {
		t.Fatalf("KLOpRatio(0.2,1,0.5) = %v, want 0", r)
	}
	// Degenerate targets diverge.
	if r := KLOpRatio(0.5, 1, 0); !math.IsInf(r, 1) {
		t.Fatalf("KLOpRatio with mu=0 = %v, want +Inf", r)
	}
	// Ratio scales linearly in S_i.
	if r1, r2 := KLOpRatio(0.5, 1, 0.1), KLOpRatio(0.5, 3, 0.1); math.Abs(r2-3*r1) > 1e-12 {
		t.Fatalf("ratio not linear in S_i: %v vs 3·%v", r2, r1)
	}
}

// TestKLTrials checks the combined Lemma VI.4 bound.
func TestKLTrials(t *testing.T) {
	base, err := MonteCarloTrials(0.1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := KLTrials(0.5, 1, 0.1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Ceil(2 * float64(base)))
	if n != want {
		t.Fatalf("KLTrials = %d, want %d", n, want)
	}
	// Floor of one trial even when the ratio is 0.
	n, err = KLTrials(0.1, 1, 0.1, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("KLTrials with zero ratio = %d, want 1", n)
	}
	if _, err := KLTrials(0.5, 1, 0, 0.1, 0.1); err == nil {
		t.Fatal("KLTrials accepted mu=0")
	}
}

// TestCandidateMissProb checks Lemma VI.1's worked numbers.
func TestCandidateMissProb(t *testing.T) {
	// Paper: P(B)=0.1 with 20 trials → found with ≈ 88% probability.
	miss := CandidateMissProb(0.1, 20)
	if math.Abs(miss-math.Pow(0.9, 20)) > 1e-12 {
		t.Fatalf("miss = %v, want 0.9^20", miss)
	}
	if found := 1 - miss; found < 0.85 || found > 0.92 {
		t.Fatalf("found probability %v, want ≈ 0.88", found)
	}
	// Defaults: P(B)=0.05, 100 trials → miss < 0.6%.
	if miss := CandidateMissProb(0.05, 100); miss > 0.006 {
		t.Fatalf("default miss probability %v, want < 0.006", miss)
	}
	if CandidateMissProb(0, 10) != 1 {
		t.Fatal("P=0 should always miss")
	}
	if CandidateMissProb(1, 10) != 0 {
		t.Fatal("P=1 should never miss")
	}
}

// TestTopKOrderingAndBounds exercises the Section VII top-k extension on
// the exact result of the running example.
func TestTopKOrderingAndBounds(t *testing.T) {
	g := figure1Graph()
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	all := res.TopK(10)
	if len(all) != 3 {
		t.Fatalf("TopK(10) returned %d, want all 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].P > all[i-1].P {
			t.Fatalf("TopK not sorted by P at %d", i)
		}
	}
	if got := res.TopK(2); len(got) != 2 || got[0] != all[0] || got[1] != all[1] {
		t.Fatalf("TopK(2) = %+v, want first two of %+v", got, all)
	}
	if got := res.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %+v, want empty", got)
	}
	if got := res.TopK(-1); len(got) != 0 {
		t.Fatalf("TopK(-1) = %+v, want empty", got)
	}
}
