package core

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// The flat kernel's contract is that a steady-state trial allocates
// nothing: all per-trial state (live-edge regions, angle table, entry
// pool, derived RNG, max set) is preallocated or amortized during warm-up
// and reused afterwards. These tests are the regression gate for that
// contract — a stray closure, map, or append in the hot path fails them
// immediately.

// TestOSTrialZeroAllocs warms the kernel over a fixed trial window (so
// the entry pool, max set, and angle table reach their high-water marks)
// and then requires exactly zero allocations per trial over the same
// window.
func TestOSTrialZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	g := randGraph(r, 10, 10, 40)
	idx := newOSIndex(g, OSOptions{})
	root := randx.New(123)
	var sMB butterfly.MaxSet

	const window = 256
	for trial := 1; trial <= window; trial++ {
		idx.runTrialSeeded(root, uint64(trial), &sMB)
	}

	trial := 0
	allocs := testing.AllocsPerRun(2*window, func() {
		trial = trial%window + 1
		idx.runTrialSeeded(root, uint64(trial), &sMB)
	})
	if allocs != 0 {
		t.Fatalf("OS kernel trial allocates %v times, want 0", allocs)
	}
}

// TestOSTrialZeroAllocsAblations repeats the gate under the pruning
// ablations, whose kernel paths differ.
func TestOSTrialZeroAllocsAblations(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	g := randGraph(r, 8, 8, 30)
	for _, opt := range []OSOptions{
		{DisableEdgePrune: true},
		{DropA2: true},
	} {
		idx := newOSIndex(g, opt)
		root := randx.New(55)
		var sMB butterfly.MaxSet
		const window = 128
		for trial := 1; trial <= window; trial++ {
			idx.runTrialSeeded(root, uint64(trial), &sMB)
		}
		trial := 0
		allocs := testing.AllocsPerRun(2*window, func() {
			trial = trial%window + 1
			idx.runTrialSeeded(root, uint64(trial), &sMB)
		})
		if allocs != 0 {
			t.Fatalf("%+v: OS kernel trial allocates %v times, want 0", opt, allocs)
		}
	}
}

// TestOSParallelLowAllocs pins the parallel executor's allocation
// behavior at steady state. Before the snapshot cache and kernel pool,
// every parallel chunk built a fresh ~1MB osIndex and the path paid ~40
// allocations (~25KB) per trial; with the cache warm, a whole run costs
// only its fixed orchestration allocations (goroutines, chunk
// bookkeeping, per-worker accumulators), so the per-trial share must stay
// far below one.
func TestOSParallelLowAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	g := randGraph(r, 40, 20, 300)
	const trials, workers = 512, 2
	run := func() {
		if _, err := OSParallel(g, OSOptions{Trials: trials, Seed: 33}, workers); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: build and calibrate the snapshot, pool the kernels
	allocs := testing.AllocsPerRun(10, run)
	if perTrial := allocs / trials; perTrial >= 1 {
		t.Fatalf("parallel OS allocates %.0f per run of %d trials (%.2f per trial), want well under 1 per trial",
			allocs, trials, perTrial)
	}
}

// TestOptimizedEstimatorTrialZeroAllocs measures the optimized
// estimator's marginal cost per trial: two runs differing by exactly
// extraTrials trials must allocate the same amount, i.e. everything the
// estimator allocates is per-run setup, not per-trial work.
func TestOptimizedEstimatorTrialZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	g := randDenseSmallGraph(r, 14)
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if cands.Len() == 0 {
		t.Skip("graph has no butterflies")
	}

	run := func(trials int) {
		if _, err := EstimateOptimized(cands, OptimizedOptions{Trials: trials, Seed: 17}); err != nil {
			t.Fatal(err)
		}
	}
	const base, extraTrials = 1000, 1000
	short := testing.AllocsPerRun(5, func() { run(base) })
	long := testing.AllocsPerRun(5, func() { run(base + extraTrials) })
	// The hits scratch slice may still grow once or twice late in the
	// longer run; anything beyond a stray amortized append means the trial
	// loop itself allocates.
	if extra := long - short; extra > 2 {
		t.Fatalf("optimized estimator: %v extra allocations for %d extra trials, want ~0 (short=%v long=%v)",
			extra, extraTrials, short, long)
	}
}

// TestKarpLubyTrialZeroAllocs pins the same marginal property for the
// Karp-Luby estimator's trial loop: scaling BaseTrials must not scale
// allocations (per-candidate setup — diff sets, alias tables — is
// unavoidable, but trials are pure sampling).
func TestKarpLubyTrialZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	g := randDenseSmallGraph(r, 14)
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if cands.Len() < 2 {
		t.Skip("graph has too few candidates")
	}

	run := func(baseTrials int) {
		if _, err := EstimateKarpLuby(cands, KLOptions{BaseTrials: baseTrials, Seed: 19}); err != nil {
			t.Fatal(err)
		}
	}
	const base, extraTrials = 1000, 1000
	short := testing.AllocsPerRun(5, func() { run(base) })
	long := testing.AllocsPerRun(5, func() { run(base + extraTrials) })
	if extra := long - short; extra > 2 {
		t.Fatalf("karp-luby estimator: %v extra allocations for %d extra trials, want ~0 (short=%v long=%v)",
			extra, extraTrials, short, long)
	}
}
