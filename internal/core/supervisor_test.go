package core

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/interval"
)

// angleStressGraph mirrors the statcheck corpus "angle-classes" case: a
// 2×5 graph engineered so that maximum butterflies often combine an A1
// and an A2 angle. Its exact MPMB leader has P ≈ 0.08, so a single
// preparing trial (PrepTrials=1) virtually never lists it — the
// under-prepared configuration the coverage audits exist to heal.
func angleStressGraph() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 5)
	type mid struct{ w0, w1, p0, p1 float64 }
	mids := []mid{
		{2.5, 2.5, 0.5, 0.6},
		{2, 3, 0.4, 0.5},
		{1.5, 1.5, 0.7, 0.3},
		{1, 2, 0.6, 0.4},
		{0.5, 0.5, 0.8, 0.7},
	}
	for v, m := range mids {
		b.MustAddEdge(0, bigraph.VertexID(v), m.w0, m.p0)
		b.MustAddEdge(1, bigraph.VertexID(v), m.w1, m.p1)
	}
	return b.Build()
}

func sameEstimates(t *testing.T, a, b []Estimate) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("estimate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("estimate %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// A supervised run with no adaptive pressure must reproduce the plain
// run bit-for-bit and report a completed stop.
func TestSuperviseCompleteMatchesPlain(t *testing.T) {
	g := figure1Graph()
	const seed, trials, prep = 7, 400, 30
	plainOS, err := OS(g, OSOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	plainMC, err := MCVP(g, MCVPOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	plainOLS, err := OLS(g, OLSOptions{PrepTrials: prep, Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	plainKL, err := OLS(g, OLSOptions{PrepTrials: prep, Trials: trials, Seed: seed, UseKarpLuby: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		method string
		want   *Result
	}{
		{"os", plainOS},
		{"mc-vp", plainMC},
		{"ols", plainOLS},
		{"ols-kl", plainKL},
	}
	for _, c := range cases {
		res, err := Supervise(g, SupervisorOptions{
			Method: c.method, Trials: trials, PrepTrials: prep, Seed: seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.method, err)
		}
		sameEstimates(t, res.Estimates, c.want.Estimates)
		if res.Adaptive == nil {
			t.Fatalf("%s: no adaptive report", c.method)
		}
		if res.Adaptive.StopReason != StopCompleted {
			t.Errorf("%s: stop reason %q, want completed", c.method, res.Adaptive.StopReason)
		}
		if res.Adaptive.FinalMethod != c.method {
			t.Errorf("%s: final method %q", c.method, res.Adaptive.FinalMethod)
		}
		if res.Partial {
			t.Errorf("%s: unexpected partial result", c.method)
		}
	}
}

// Audits on a well-prepared run find nothing, escalate nothing, and leave
// the estimates identical to the unsupervised run.
func TestSuperviseAuditsCleanRun(t *testing.T) {
	g := figure1Graph()
	const seed, trials, prep = 3, 600, 60
	plain, err := OLS(g, OLSOptions{PrepTrials: prep, Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Supervise(g, SupervisorOptions{
		Method: "ols", Trials: trials, PrepTrials: prep, Seed: seed,
		AuditEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, res.Estimates, plain.Estimates)
	if res.Adaptive.Audits == 0 {
		t.Error("audits enabled but none ran")
	}
	if res.Adaptive.Escalations != 0 || len(res.Adaptive.Transitions) != 0 {
		t.Errorf("clean run escalated: %+v", res.Adaptive)
	}
	if res.Adaptive.StopReason != StopCompleted {
		t.Errorf("stop reason %q", res.Adaptive.StopReason)
	}
}

// Under-prepared OLS (PrepTrials=1) misses the exact MPMB leader; audits
// must escalate the preparing phase until the leader is recovered and
// report every escalation.
func TestSuperviseAuditEscalationHealsCoverage(t *testing.T) {
	g := angleStressGraph()
	ex, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	exLeader := ex.Estimates[0]
	const seed = 4 // pinned: plain OLS misses the leader, audits recover it
	plain, err := OLS(g, OLSOptions{PrepTrials: 1, Trials: 2000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.Lookup(exLeader.B); ok {
		t.Fatalf("seed %d does not reproduce the under-prepared miss", seed)
	}
	res, err := Supervise(g, SupervisorOptions{
		Method: "ols", PrepTrials: 1, Trials: 2000, Seed: seed,
		AuditEvery: 200, MaxEscalations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Adaptive
	if rep.Escalations == 0 {
		t.Fatal("no escalation recorded")
	}
	if rep.FinalPrepTrials <= 1 {
		t.Errorf("prep target not escalated: %d", rep.FinalPrepTrials)
	}
	var sawEscalate bool
	for _, tr := range rep.Transitions {
		if tr.Reason == "escalate-prep" && tr.From == "ols" && tr.To == "ols" {
			sawEscalate = true
		}
	}
	if !sawEscalate {
		t.Errorf("transitions missing escalate-prep: %+v", rep.Transitions)
	}
	got, ok := res.Lookup(exLeader.B)
	if !ok {
		t.Fatal("healed run still misses the exact leader")
	}
	if diff := math.Abs(got.P - exLeader.P); diff > statTol(res.TrialsDone) {
		t.Errorf("healed leader estimate %.4f vs exact %.4f (diff %.4f > tol)", got.P, exLeader.P, diff)
	}
	if res.Adaptive.StopReason != StopCompleted {
		t.Errorf("stop reason %q", res.Adaptive.StopReason)
	}
}

// When the preparing phase is sabotaged so audits keep finding misses,
// the escalation budget runs out and the run falls down the ladder to a
// full OS run with the same seed and trial budget.
func TestSuperviseFallbackLadder(t *testing.T) {
	g := angleStressGraph()
	const seed, trials = 1, 2000
	res, err := Supervise(g, SupervisorOptions{
		Method: "ols", PrepTrials: 1, Trials: trials, Seed: seed,
		AuditEvery: 50, MaxEscalations: 1,
		OS: OSOptions{DropA2: true}, // prep stays blind, audits stay correct
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "os" {
		t.Fatalf("expected fallback to os, got %q", res.Method)
	}
	rep := res.Adaptive
	if rep.FinalMethod != "os" || rep.StopReason != StopCompleted {
		t.Errorf("report %+v", rep)
	}
	last := rep.Transitions[len(rep.Transitions)-1]
	if last.Reason != "max-escalations" || last.From != "ols" || last.To != "os" {
		t.Errorf("last transition %+v", last)
	}
	// The fallback inherits the run's OS knobs, seed and trials.
	want, err := OS(g, OSOptions{Trials: trials, Seed: seed, DropA2: true})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, res.Estimates, want.Estimates)
}

// Epsilon stops the run as soon as the leader's normal-approximation
// half-width reaches the target, and the reported half-width must agree
// with the interval package's arithmetic recomputed from the result.
func TestSuperviseEpsilonStopsEarly(t *testing.T) {
	g := figure1Graph()
	const seed, trials, eps = 11, 200000, 0.02
	res, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: trials, Seed: seed, Epsilon: eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Adaptive
	if rep.StopReason != StopEpsilon {
		t.Fatalf("stop reason %q, want epsilon", rep.StopReason)
	}
	if !res.Partial || res.TrialsDone >= trials {
		t.Fatalf("expected an early partial stop, TrialsDone=%d Partial=%v", res.TrialsDone, res.Partial)
	}
	if rep.HalfWidth <= 0 || rep.HalfWidth > eps {
		t.Errorf("achieved half-width %v outside (0, %v]", rep.HalfWidth, eps)
	}
	if rep.Z != defaultEpsilonZ {
		t.Errorf("z = %v, want default %v", rep.Z, defaultEpsilonZ)
	}
	x := int64(math.Round(res.Estimates[0].P * float64(res.TrialsDone)))
	want := interval.NormalHalfWidth(x, res.TrialsDone, rep.Z)
	if math.Abs(rep.HalfWidth-want) > 1e-15 {
		t.Errorf("half-width %v, interval math says %v", rep.HalfWidth, want)
	}
	// The partial is honest: its checkpoint finishes the run
	// bit-identically to an uninterrupted one.
	if res.Checkpoint == nil {
		t.Fatal("epsilon stop lost the checkpoint")
	}
	finished, err := OS(g, OSOptions{Trials: trials, Seed: seed, Resume: res.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := OS(g, OSOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, finished.Estimates, uninterrupted.Estimates)
}

// A tighter epsilon than the budget can reach completes normally.
func TestSuperviseEpsilonUnreachable(t *testing.T) {
	g := figure1Graph()
	res, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: 500, Seed: 11, Epsilon: 1e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Adaptive.StopReason != StopCompleted {
		t.Errorf("want a completed run, got %q partial=%v", res.Adaptive.StopReason, res.Partial)
	}
	if res.Adaptive.HalfWidth <= 1e-6 {
		t.Errorf("half-width %v should not have met epsilon", res.Adaptive.HalfWidth)
	}
}

// fakeClock advances a fixed step per reading, making deadline behaviour
// deterministic.
type fakeClock struct {
	mu   atomic.Int64
	t0   time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	n := c.mu.Add(1)
	return c.t0.Add(time.Duration(n) * c.step)
}

func TestSuperviseDeadlineReturnsPartial(t *testing.T) {
	g := figure1Graph()
	clock := &fakeClock{t0: time.Unix(1000, 0), step: time.Millisecond}
	res, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: 100000, Seed: 5,
		Deadline: clock.t0.Add(150 * time.Millisecond),
		Now:      clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.StopReason != StopDeadline {
		t.Fatalf("stop reason %q, want deadline", res.Adaptive.StopReason)
	}
	if !res.Partial || res.TrialsDone >= 100000 {
		t.Fatalf("expected a partial prefix, TrialsDone=%d", res.TrialsDone)
	}
	if res.Checkpoint == nil {
		t.Error("deadline stop lost the checkpoint")
	}
}

// A deadline that expires during the OLS preparing phase returns the
// prepare-phase checkpoint, honestly reporting zero sampling trials.
func TestSuperviseDeadlineDuringPrep(t *testing.T) {
	g := figure1Graph()
	clock := &fakeClock{t0: time.Unix(1000, 0), step: time.Millisecond}
	res, err := Supervise(g, SupervisorOptions{
		Method: "ols", Trials: 1000, PrepTrials: 100000, Seed: 5,
		Deadline: clock.t0.Add(50 * time.Millisecond),
		Now:      clock.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.StopReason != StopDeadline {
		t.Fatalf("stop reason %q, want deadline", res.Adaptive.StopReason)
	}
	if !res.Partial || res.TrialsDone != 0 {
		t.Fatalf("prep-phase stop should report 0 sampling trials, got %d", res.TrialsDone)
	}
	if res.Checkpoint == nil || !res.Checkpoint.Prepare {
		t.Fatalf("expected a prepare-phase checkpoint, got %+v", res.Checkpoint)
	}
}

// External cancellation wins over everything and keeps the resumable
// checkpoint contract.
func TestSuperviseCancelResume(t *testing.T) {
	g := figure1Graph()
	const seed, trials = 9, 50000
	var polls atomic.Int64
	res, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: trials, Seed: seed,
		Interrupt: func() bool { return polls.Add(1) > 500 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.StopReason != StopCancelled {
		t.Fatalf("stop reason %q, want cancelled", res.Adaptive.StopReason)
	}
	if !res.Partial || res.Checkpoint == nil {
		t.Fatal("cancelled run must return a resumable partial")
	}
	resumed, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: trials, Seed: seed, Resume: res.Checkpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := OS(g, OSOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, resumed.Estimates, want.Estimates)
	if resumed.Adaptive.StopReason != StopCompleted {
		t.Errorf("resumed run stop reason %q", resumed.Adaptive.StopReason)
	}
}

// A checkpoint written by a fallback run resumes the fallback method even
// when the options still name the original rung.
func TestSuperviseResumedFallback(t *testing.T) {
	g := figure1Graph()
	const seed, trials = 9, 50000
	var polls atomic.Int64
	cancelled, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: trials, Seed: seed,
		Interrupt: func() bool { return polls.Add(1) > 300 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Resume it through an OLS-configured supervisor, as a restarted
	// process that only knows its original flags would.
	resumed, err := Supervise(g, SupervisorOptions{
		Method: "ols", Trials: trials, PrepTrials: 100, Seed: seed,
		Resume: cancelled.Checkpoint,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Method != "os" {
		t.Fatalf("resumed method %q, want os", resumed.Method)
	}
	var sawResumeFallback bool
	for _, tr := range resumed.Adaptive.Transitions {
		if tr.Reason == "resumed-fallback" && tr.To == "os" {
			sawResumeFallback = true
		}
	}
	if !sawResumeFallback {
		t.Errorf("transitions %+v missing resumed-fallback", resumed.Adaptive.Transitions)
	}
	want, err := OS(g, OSOptions{Trials: trials, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, resumed.Estimates, want.Estimates)
}

// The watchdog surfaces a stalled run as a typed error instead of
// hanging.
func TestSuperviseWatchdogStall(t *testing.T) {
	g := figure1Graph()
	release := make(chan struct{})
	defer close(release) // lets the abandoned goroutine finish
	_, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: 1000, Seed: 2,
		StallTimeout: 30 * time.Millisecond,
		OS: OSOptions{OnTrial: func(trial int, _ *butterfly.MaxSet) {
			if trial == 2 {
				<-release // worker wedges mid-run
			}
		}},
	})
	if err == nil {
		t.Fatal("expected a stall error")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("error %v does not match ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *StallError", err)
	}
	if se.Method != "os" || se.Timeout != 30*time.Millisecond || se.Quiet < se.Timeout {
		t.Errorf("stall error fields %+v", se)
	}
}

// An armed watchdog must not disturb a healthy run.
func TestSuperviseWatchdogHealthyRun(t *testing.T) {
	g := figure1Graph()
	res, err := Supervise(g, SupervisorOptions{
		Method: "os", Trials: 500, Seed: 2,
		StallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Adaptive.StopReason != StopCompleted {
		t.Errorf("healthy run degraded: %+v", res.Adaptive)
	}
}

func TestSuperviseValidation(t *testing.T) {
	g := figure1Graph()
	cases := []struct {
		name string
		opt  SupervisorOptions
	}{
		{"unknown method", SupervisorOptions{Method: "exact", Trials: 10}},
		{"no trials", SupervisorOptions{Method: "os"}},
		{"ols without prep", SupervisorOptions{Method: "ols", Trials: 10}},
		{"audits on os", SupervisorOptions{Method: "os", Trials: 10, AuditEvery: 5}},
		{"epsilon on ols-kl", SupervisorOptions{Method: "ols-kl", Trials: 10, PrepTrials: 5, Epsilon: 0.1}},
		{"negative epsilon", SupervisorOptions{Method: "os", Trials: 10, Epsilon: -1}},
		{"negative stall", SupervisorOptions{Method: "os", Trials: 10, StallTimeout: -time.Second}},
		{"mc-vp workers", SupervisorOptions{Method: "mc-vp", Trials: 10, Workers: 2}},
		{"negative audits", SupervisorOptions{Method: "ols", Trials: 10, PrepTrials: 5, AuditEvery: -1}},
	}
	for _, c := range cases {
		if _, err := Supervise(g, c.opt); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// segGate unit behaviour: the budget counts polls exactly, the cut poll
// is refunded, and new segments extend from the consumed total.
func TestSegGateBudget(t *testing.T) {
	gate := &segGate{now: time.Now}
	gate.newSegment(3)
	for i := 0; i < 3; i++ {
		if gate.poll() {
			t.Fatalf("poll %d cut early", i)
		}
	}
	if !gate.poll() || !gate.poll() {
		t.Fatal("exhausted segment must keep cutting")
	}
	if got := gate.polls.Load(); got != 3 {
		t.Fatalf("consumed polls %d, want 3 (cut polls must be refunded)", got)
	}
	gate.newSegment(2)
	if gate.poll() || gate.poll() {
		t.Fatal("fresh segment cut early")
	}
	if !gate.poll() {
		t.Fatal("second segment must cut at its budget")
	}
	if got := gate.polls.Load(); got != 5 {
		t.Fatalf("consumed polls %d, want 5", got)
	}
}
