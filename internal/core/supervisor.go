package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/interval"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// StopReason classifies why a supervised run ended.
type StopReason string

// The supervisor's stop reasons.
const (
	// StopCompleted: the full trial budget ran and every enabled audit
	// passed.
	StopCompleted StopReason = "completed"
	// StopEpsilon: the leader's normal-approximation half-width dropped to
	// SupervisorOptions.Epsilon or below before the trial budget ran out.
	StopEpsilon StopReason = "epsilon"
	// StopDeadline: SupervisorOptions.Deadline expired; the Result is the
	// partial-but-honest prefix completed in time.
	StopDeadline StopReason = "deadline"
	// StopCancelled: the external Interrupt hook fired (context
	// cancellation, signal).
	StopCancelled StopReason = "cancelled"
)

// Transition records one degradation-ladder or escalation event of a
// supervised run: an OLS prep escalation keeps From == To (the method
// survives with a doubled preparing phase), while a fallback moves down
// the ladder (ols → os → mc-vp).
type Transition struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Reason is "escalate-prep" (audit found a maximum butterfly outside
	// C_MB), "max-escalations" (escalation budget exhausted, falling back
	// to OS), or "worker-panic" (a parallel worker died; the method
	// restarts one rung down).
	Reason string `json:"reason"`
	// AtTrial is the sampling-trial prefix completed when the transition
	// was decided (0 when unknown, e.g. after a worker panic).
	AtTrial int `json:"at_trial"`
}

// AdaptiveReport is the supervisor's bookkeeping, attached to
// Result.Adaptive by Supervise.
type AdaptiveReport struct {
	StopReason StopReason `json:"stop_reason"`
	// Epsilon / Z echo the stopping rule's parameters; HalfWidth is the
	// achieved leader half-width at stop time (0 when not applicable:
	// no estimates yet, or an ols-kl run, whose estimates are not
	// per-trial proportions).
	Epsilon   float64 `json:"epsilon,omitempty"`
	Z         float64 `json:"z,omitempty"`
	HalfWidth float64 `json:"half_width,omitempty"`
	// Audits counts the full-OS audit trials interleaved into the OLS
	// sampling phase; Escalations counts how many of them triggered a
	// preparing-phase escalation.
	Audits      int `json:"audits"`
	Escalations int `json:"escalations"`
	// FinalMethod / FinalPrepTrials describe the configuration that
	// produced the Result after any escalations and fallbacks.
	FinalMethod     string       `json:"final_method"`
	FinalPrepTrials int          `json:"final_prep_trials,omitempty"`
	Transitions     []Transition `json:"transitions,omitempty"`
	// PrepSizing records the adaptive prep-sizing pre-pass when the query
	// requested one (Query.AdaptivePrep); nil otherwise. It is attached
	// whether or not the run was otherwise supervised.
	PrepSizing *PrepSizing `json:"prep_sizing,omitempty"`
}

// ErrStalled reports a supervised run whose workers stopped making
// progress for longer than SupervisorOptions.StallTimeout. Match with
// errors.Is; the concrete *StallError carries the quiet duration.
var ErrStalled = errors.New("core: supervised run stalled")

// StallError is the typed error behind ErrStalled. The supervisor cannot
// preempt a stuck goroutine, so after returning this error the stalled
// run's goroutine is abandoned: it leaks until whatever blocked it
// (a user OnTrial hook, a pathological trial) returns. Callers should
// treat the search as failed.
type StallError struct {
	// Method is the method that was running when progress stopped.
	Method string
	// Quiet is how long the run went without polling its interrupt hook;
	// Timeout is the configured budget it exceeded.
	Quiet   time.Duration
	Timeout time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("core: %s run stalled: no progress for %v (stall timeout %v)", e.Method, e.Quiet, e.Timeout)
}

// Is makes errors.Is(err, ErrStalled) succeed for *StallError.
func (e *StallError) Is(target error) bool { return target == ErrStalled }

// Supervisor defaults.
const (
	// defaultMaxEscalations bounds audit-triggered prep escalations when
	// SupervisorOptions.MaxEscalations is zero.
	defaultMaxEscalations = 2
	// defaultCheckPolls is the segment length (in interrupt polls) between
	// ε-stopping checks when audits do not already segment the run.
	defaultCheckPolls = 512
	// defaultEpsilonZ is the 99% two-sided normal critical value.
	defaultEpsilonZ = 2.5758293035489004
	// auditSeedSalt derives the audit-trial random stream from the run
	// seed. It must differ from the sampling-phase offset (see
	// olsSampling) so audits never reuse a prep or sampling stream.
	auditSeedSalt = 0x5bd1e995c0ffee11
)

// SupervisorOptions configures Supervise.
type SupervisorOptions struct {
	// Method is "mc-vp", "os", "ols" or "ols-kl" (exact runs are bounded
	// and deterministic; they have nothing to supervise).
	Method string
	// Trials / PrepTrials / Seed / Workers follow the method's own option
	// struct semantics. Workers > 0 selects the parallel runners (os and
	// the OLS sampling phase only).
	Trials     int
	PrepTrials int
	Seed       uint64
	Workers    int

	// AuditEvery interleaves one full Ordering Sampling "audit" trial
	// after every AuditEvery OLS sampling trials (and one final audit
	// before a supervised OLS run is declared complete). An audit whose
	// maximum butterfly set leaves C_MB escalates: the missed butterflies
	// merge into the candidate tallies, the preparing phase re-runs with a
	// doubled trial target through the resume machinery, and sampling
	// restarts over the wider candidate list. 0 disables audits. OLS
	// methods only.
	AuditEvery int
	// MaxEscalations bounds audit escalations; when one more would be
	// needed the run falls down the degradation ladder to OS instead.
	// 0 means defaultMaxEscalations.
	MaxEscalations int

	// Epsilon > 0 stops the run early once the leader estimate's
	// normal-approximation half-width (interval.NormalHalfWidth at Z)
	// drops to Epsilon or below. Proportion methods only (mc-vp, os,
	// ols); ols-kl estimates are not per-trial proportions.
	Epsilon float64
	// Z is the critical value for the Epsilon rule; 0 means
	// defaultEpsilonZ (99%).
	Z float64
	// Deadline, when non-zero, stops the run at the first interrupt poll
	// at or past it, returning the partial-but-honest prefix.
	Deadline time.Time
	// StallTimeout > 0 arms a watchdog: if the run goes that long without
	// polling its interrupt hook, Supervise returns a *StallError instead
	// of hanging. The stuck goroutine is abandoned (see StallError).
	StallTimeout time.Duration

	// Probe, if non-nil, receives run telemetry from every phase the
	// supervisor drives: the underlying runners' trial flushes, audit
	// outcomes (under the "audit" phase label), and escalation /
	// degradation-ladder transitions as events.
	Probe *telemetry.Probe

	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Interrupt is the external cancellation hook (context, signal),
	// polled alongside the supervisor's own bookkeeping. Must be safe for
	// concurrent use when Workers > 0.
	Interrupt func() bool

	// OS carries Ordering Sampling knobs for the os method and the OLS
	// preparing phase (its Trials/Seed/Interrupt/Resume are overwritten;
	// OnTrial is honored only for sequential os runs). Audit trials always
	// run the pristine, un-ablated OS configuration — they are the
	// defense, so fault-injection knobs must not reach them.
	OS OSOptions
	// KL / Optimized carry estimator knobs for the OLS sampling phase,
	// with the same overwrite rules as OLSOptions.
	KL        KLOptions
	Optimized OptimizedOptions

	// Prepared supplies an already-listed candidate set (the Searcher's
	// cache). It must have been prepared with PrepDone == PrepTrials and
	// the same Seed/graph; ignored when Resume is set.
	Prepared *Candidates
	// Resume continues a checkpoint written by an earlier supervised (or
	// plain) run. A checkpoint whose PrepTrials exceeds the configured
	// target is adopted as the current escalation level; a checkpoint
	// whose Method sits further down the degradation ladder resumes that
	// method directly. Note that a sampling-phase checkpoint cut AFTER an
	// escalation can only resume in-process (the escalated candidate list
	// depends on audit state the checkpoint format does not carry); a
	// cold resume of such a checkpoint fails with a candidate-count
	// mismatch rather than resuming silently wrong.
	Resume *Checkpoint
}

func (o SupervisorOptions) mu() float64 {
	if o.Method == "ols-kl" {
		return o.KL.Mu
	}
	return 0
}

// Supervise wraps a sampling run with the three robustness mechanisms of
// the adaptive-run design: coverage audits with escalation and a
// degradation ladder (OLS → OS → MC-VP), accuracy-aware stopping
// (Epsilon/Deadline), and a progress watchdog (StallTimeout). The
// returned Result carries the normal method contract plus an
// AdaptiveReport describing what the supervisor did.
func Supervise(g *bigraph.Graph, opt SupervisorOptions) (*Result, error) {
	if err := validateSupervisor(opt); err != nil {
		return nil, err
	}
	now := opt.Now
	if now == nil {
		now = time.Now
	}
	z := opt.Z
	if z <= 0 {
		z = defaultEpsilonZ
	}
	s := &supervisor{
		g:   g,
		opt: opt,
		now: now,
		z:   z,
		rep: &AdaptiveReport{Epsilon: opt.Epsilon},
		gate: &segGate{
			external: opt.Interrupt,
			deadline: opt.Deadline,
			now:      now,
		},
	}
	if opt.Epsilon > 0 {
		s.rep.Z = z
	}
	return s.run()
}

func validateSupervisor(o SupervisorOptions) error {
	olsMethod := o.Method == "ols" || o.Method == "ols-kl"
	switch o.Method {
	case "mc-vp", "os", "ols", "ols-kl":
	default:
		return fmt.Errorf("core: Supervise does not support method %q", o.Method)
	}
	if o.Trials <= 0 {
		return fmt.Errorf("core: Supervise requires Trials > 0, got %d", o.Trials)
	}
	if olsMethod && o.PrepTrials <= 0 {
		return fmt.Errorf("core: supervised %s requires PrepTrials > 0, got %d", o.Method, o.PrepTrials)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative Workers (%d)", o.Workers)
	}
	if o.Workers > 0 && o.Method == "mc-vp" {
		return fmt.Errorf("core: mc-vp does not support parallel execution (Workers=%d)", o.Workers)
	}
	if o.AuditEvery < 0 || o.MaxEscalations < 0 {
		return fmt.Errorf("core: negative audit options (AuditEvery=%d, MaxEscalations=%d)", o.AuditEvery, o.MaxEscalations)
	}
	if o.AuditEvery > 0 && !olsMethod {
		return fmt.Errorf("core: coverage audits only apply to the OLS methods (method %q has no candidate truncation to audit)", o.Method)
	}
	if math.IsNaN(o.Epsilon) || o.Epsilon < 0 {
		return fmt.Errorf("core: Epsilon=%v must be >= 0", o.Epsilon)
	}
	if o.Epsilon > 0 && o.Method == "ols-kl" {
		return fmt.Errorf("core: the Epsilon stopping rule needs per-trial proportions; ols-kl estimates are Karp-Luby transforms (use ols, os or mc-vp)")
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("core: negative StallTimeout (%v)", o.StallTimeout)
	}
	return nil
}

// supervisor is the per-run state behind Supervise.
type supervisor struct {
	g    *bigraph.Graph
	opt  SupervisorOptions
	now  func() time.Time
	z    float64
	rep  *AdaptiveReport
	gate *segGate

	// Audit state: a dedicated OS index and random stream, lazily built.
	// The stream derives per-audit from (Seed ^ auditSeedSalt, audit
	// index), so audits are deterministic and independent of both the
	// preparing and the sampling streams.
	auditIdx  *osIndex
	auditRoot *randx.RNG
	auditN    int
}

func (s *supervisor) run() (*Result, error) {
	method := s.opt.Method
	if ck := s.opt.Resume; ck != nil && ck.Method != method && ladderBelow(ck.Method, method) {
		// A fallback run's checkpoint resumes the fallback method, not
		// the rung the options still name.
		s.transition(method, ck.Method, "resumed-fallback", ck.Done)
		return s.runCounting(ck.Method, ck)
	}
	switch method {
	case "ols", "ols-kl":
		return s.runOLS()
	default:
		return s.runCounting(method, s.opt.Resume)
	}
}

// ladderBelow reports whether method a sits strictly below b on the
// degradation ladder ols/ols-kl → os → mc-vp.
func ladderBelow(a, b string) bool {
	rank := func(m string) int {
		switch m {
		case "ols", "ols-kl":
			return 2
		case "os":
			return 1
		default:
			return 0
		}
	}
	return rank(a) < rank(b)
}

func (s *supervisor) maxEscalations() int {
	if s.opt.MaxEscalations > 0 {
		return s.opt.MaxEscalations
	}
	return defaultMaxEscalations
}

// segmentPolls is the interrupt-poll budget of one supervised segment: the
// audit cadence when audits are on, the ε-check cadence when only the
// stopping rule needs boundaries, otherwise unlimited (deadline and
// cancellation fire inside the poll hook and need no segmentation).
func (s *supervisor) segmentPolls(audits bool) int64 {
	if audits && s.opt.AuditEvery > 0 {
		return int64(s.opt.AuditEvery)
	}
	if s.opt.Epsilon > 0 {
		return defaultCheckPolls
	}
	return 0
}

func (s *supervisor) transition(from, to, reason string, atTrial int) {
	s.rep.Transitions = append(s.rep.Transitions, Transition{From: from, To: to, Reason: reason, AtTrial: atTrial})
	s.opt.Probe.Emit(telemetry.Event{
		Kind: telemetry.EventEscalation, Trial: atTrial,
		From: from, To: to, Detail: reason,
	})
}

// finish stamps the adaptive report onto the result.
func (s *supervisor) finish(res *Result, reason StopReason) *Result {
	s.rep.StopReason = reason
	s.rep.FinalMethod = res.Method
	s.rep.FinalPrepTrials = res.PrepTrials
	if res.Method != "ols-kl" {
		if hw, ok := s.leaderHalfWidth(res); ok {
			s.rep.HalfWidth = hw
		}
	}
	res.Adaptive = s.rep
	return res
}

// stopFor maps the gate's fired flags to a stop reason, preferring
// cancellation over deadline (both may have fired by the time a segment
// returns).
func (s *supervisor) stopFor() (StopReason, bool) {
	if s.gate.extFired.Load() {
		return StopCancelled, true
	}
	if s.gate.ddlFired.Load() {
		return StopDeadline, true
	}
	return "", false
}

// leaderHalfWidth computes the leader estimate's normal-approximation
// half-width. The proportion methods report P̂ = count/TrialsDone, so the
// leader count is recovered by rounding.
func (s *supervisor) leaderHalfWidth(res *Result) (float64, bool) {
	n := res.TrialsDone
	if n <= 0 || len(res.Estimates) == 0 {
		return 0, false
	}
	x := int64(math.Round(res.Estimates[0].P * float64(n)))
	return interval.NormalHalfWidth(x, n, s.z), true
}

func (s *supervisor) epsilonMet(res *Result) bool {
	if s.opt.Epsilon <= 0 || res.Method == "ols-kl" {
		return false
	}
	hw, ok := s.leaderHalfWidth(res)
	return ok && hw <= s.opt.Epsilon
}

// runCounting supervises the counting methods (os, mc-vp), including
// their role as fallback targets: segments of sampling punctuated by
// ε-checks, with a worker-panic rung down from os to mc-vp.
func (s *supervisor) runCounting(method string, ck *Checkpoint) (*Result, error) {
	for {
		s.gate.newSegment(s.segmentPolls(false))
		res, err := s.countingStep(method, ck)
		if err != nil {
			if method == "os" && errors.Is(err, ErrWorkerPanic) {
				s.transition("os", "mc-vp", "worker-panic", 0)
				method, ck = "mc-vp", nil
				continue
			}
			return nil, err
		}
		if reason, stop := s.stopFor(); stop {
			return s.finish(res, reason), nil
		}
		if s.epsilonMet(res) {
			return s.finish(res, StopEpsilon), nil
		}
		if !res.Partial {
			return s.finish(res, StopCompleted), nil
		}
		ck = res.Checkpoint
	}
}

func (s *supervisor) countingStep(method string, ck *Checkpoint) (*Result, error) {
	return s.withWatchdog(method, func() (*Result, error) {
		switch method {
		case "mc-vp":
			return MCVP(s.g, MCVPOptions{
				Trials:    s.opt.Trials,
				Seed:      s.opt.Seed,
				Interrupt: s.gate.poll,
				Resume:    ck,
				Probe:     s.opt.Probe,
			})
		default: // "os"
			o := s.opt.OS
			o.Trials = s.opt.Trials
			o.Seed = s.opt.Seed
			o.Interrupt = s.gate.poll
			o.Resume = ck
			o.Probe = s.opt.Probe
			if s.opt.Workers > 0 {
				o.OnTrial = nil // unsupported by the parallel runner
				return OSParallel(s.g, o, s.opt.Workers)
			}
			return OS(s.g, o)
		}
	})
}

// runOLS supervises the OLS methods: prepare (with escalation resume
// support), then sampling segments punctuated by coverage audits and
// ε-checks, falling down the ladder when the escalation budget runs out
// or a worker panics.
func (s *supervisor) runOLS() (*Result, error) {
	method := s.opt.Method
	prepTarget := s.opt.PrepTrials
	var prepResume []ButterflyCount
	prepStart := 0
	var samplingCk *Checkpoint
	if ck := s.opt.Resume; ck != nil {
		if ck.PrepTrials > prepTarget {
			// A checkpoint cut after an escalation carries the doubled
			// target; adopt it as the current escalation level.
			prepTarget = ck.PrepTrials
		}
		if err := ck.resumeCheck(method, s.opt.Seed, s.opt.Trials, prepTarget, s.opt.mu(), s.g); err != nil {
			return nil, err
		}
		if ck.Prepare {
			prepResume = ck.Counts
			prepStart = ck.Done
		} else {
			samplingCk = ck
		}
	}
	var cands *Candidates
	if p := s.opt.Prepared; p != nil && s.opt.Resume == nil && p.PrepDone == prepTarget {
		cands = p
	}
	escalations := 0
	for {
		if cands == nil {
			c, interrupted, err := prepareCandidates(s.g, prepTarget, s.opt.Seed, s.prepOS(), prepResume, prepStart)
			if err != nil {
				return nil, err
			}
			if interrupted {
				res := prepPartialResult(method, s.g, s.olsOpts(prepTarget, nil), c)
				reason, _ := s.stopFor()
				if reason == "" {
					reason = StopCancelled
				}
				return s.finish(res, reason), nil
			}
			cands = c
			prepResume, prepStart = nil, 0
		}
		s.gate.newSegment(s.segmentPolls(true))
		res, err := s.olsStep(cands, prepTarget, samplingCk)
		if err != nil {
			if errors.Is(err, ErrWorkerPanic) {
				s.transition(method, "os", "worker-panic", 0)
				return s.runCounting("os", nil)
			}
			return nil, err
		}
		if reason, stop := s.stopFor(); stop {
			return s.finish(res, reason), nil
		}
		if s.opt.AuditEvery > 0 {
			// Audit before trusting the segment: one audit per segment
			// boundary, topped up to the full Trials/AuditEvery quota
			// before a completed run is accepted — so even a run whose
			// sampling finishes instantly (an empty candidate set from a
			// prep phase that saw only empty worlds) pays its whole
			// audit schedule.
			missed := s.audit(cands)
			if len(missed) == 0 && !res.Partial {
				quota := (s.opt.Trials + s.opt.AuditEvery - 1) / s.opt.AuditEvery
				for len(missed) == 0 && s.rep.Audits < quota {
					missed = s.audit(cands)
				}
			}
			if len(missed) > 0 {
				if escalations >= s.maxEscalations() {
					s.transition(method, "os", "max-escalations", res.TrialsDone)
					return s.runCounting("os", nil)
				}
				escalations++
				s.rep.Escalations++
				s.opt.Probe.Add(0, telemetry.CounterEscalations, 1)
				s.transition(method, method, "escalate-prep", res.TrialsDone)
				// Merge the audit's missed butterflies into the prep
				// tallies (at zero hits — honest: prep never saw them)
				// and re-run preparation to the doubled target through
				// the resume machinery. Sampling restarts fresh: the
				// per-candidate counts are indexed by a list that no
				// longer exists.
				prepResume = append(cands.prepSnapshot(), missed...)
				prepStart = cands.PrepDone
				prepTarget *= 2
				cands = nil
				samplingCk = nil
				continue
			}
		}
		if s.epsilonMet(res) {
			return s.finish(res, StopEpsilon), nil
		}
		if !res.Partial {
			return s.finish(res, StopCompleted), nil
		}
		samplingCk = res.Checkpoint
	}
}

// prepOS is the preparing phase's OS configuration: the caller's pruning
// knobs with the supervisor's passive hook (external cancellation and
// deadline only — prep polls must not consume the sampling segment's
// budget).
func (s *supervisor) prepOS() OSOptions {
	o := s.opt.OS
	o.OnTrial = nil
	o.Resume = nil
	o.Interrupt = s.gate.passive
	o.Probe = s.opt.Probe // prepareCandidates rebinds it to the prep phase
	return o
}

func (s *supervisor) olsOpts(prepTarget int, ck *Checkpoint) OLSOptions {
	return OLSOptions{
		PrepTrials:  prepTarget,
		Trials:      s.opt.Trials,
		Seed:        s.opt.Seed,
		UseKarpLuby: s.opt.Method == "ols-kl",
		KL:          s.opt.KL,
		Optimized:   s.opt.Optimized,
		OS:          s.opt.OS,
		Interrupt:   s.gate.poll,
		Resume:      ck,
		Probe:       s.opt.Probe,
	}
}

func (s *supervisor) olsStep(cands *Candidates, prepTarget int, ck *Checkpoint) (*Result, error) {
	opt := s.olsOpts(prepTarget, ck)
	return s.withWatchdog(s.opt.Method, func() (*Result, error) {
		return OLSSamplingPhaseParallel(cands, opt, s.opt.Workers)
	})
}

// audit runs one full Ordering Sampling trial on a freshly sampled world
// and returns the maximum butterflies it found that are missing from
// C_MB (as zero-hit prep tallies, ready to merge). Audits always use the
// pristine OS configuration — no ablation or fault-injection knobs.
func (s *supervisor) audit(cands *Candidates) []ButterflyCount {
	s.rep.Audits++
	probe := s.opt.Probe.WithPhase(telemetry.PhaseAudit)
	probe.Add(0, telemetry.CounterAudits, 1)
	if s.auditIdx == nil {
		s.auditIdx = newOSIndex(s.g, OSOptions{})
		s.auditRoot = randx.New(s.opt.Seed ^ auditSeedSalt)
	}
	s.auditN++
	rng := s.auditRoot.Derive(uint64(s.auditN))
	var sMB butterfly.MaxSet
	s.auditIdx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
		return rng.Bernoulli(s.g.Edge(id).P)
	})
	if sMB.Empty() {
		return nil
	}
	in := make(map[butterfly.Butterfly]bool, cands.Len())
	for _, c := range cands.List {
		in[c.B] = true
	}
	var missed []ButterflyCount
	for _, b := range sMB.Set {
		if !in[b] {
			missed = append(missed, ButterflyCount{B: b, Count: 0, Weight: sMB.W})
			probe.Add(0, telemetry.CounterAuditMisses, 1)
			probe.Emit(telemetry.Event{
				Kind: telemetry.EventAuditMiss, Trial: s.auditN,
				B: probeButterfly(b), Weight: sMB.W,
			})
		}
	}
	return missed
}

// withWatchdog runs fn, monitoring the gate's last-poll timestamp when
// StallTimeout is armed. On a stall the run goroutine is abandoned (it
// cannot be preempted) and a *StallError is returned.
func (s *supervisor) withWatchdog(method string, fn func() (*Result, error)) (*Result, error) {
	if s.opt.StallTimeout <= 0 {
		return fn()
	}
	type outcome struct {
		res *Result
		err error
	}
	s.gate.touch() // the call itself counts as progress
	ch := make(chan outcome, 1)
	go func() {
		res, err := fn()
		ch <- outcome{res, err}
	}()
	period := s.opt.StallTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case o := <-ch:
			return o.res, o.err
		case <-ticker.C:
			quiet := time.Duration(s.now().UnixNano() - s.gate.lastPoll.Load())
			if quiet > s.opt.StallTimeout {
				return nil, &StallError{Method: method, Quiet: quiet, Timeout: s.opt.StallTimeout}
			}
		}
	}
}

// segGate is the supervisor's interrupt hook: it multiplexes external
// cancellation, the deadline, and a per-segment poll budget through the
// runners' existing Interrupt seam, so the unmodified partial-Result +
// Checkpoint machinery does the segmenting. All state is atomic — the
// parallel runners poll from every worker.
type segGate struct {
	external func() bool
	deadline time.Time
	now      func() time.Time

	polls    atomic.Int64
	limit    atomic.Int64
	lastPoll atomic.Int64 // UnixNano of the most recent poll (watchdog food)
	extFired atomic.Bool
	ddlFired atomic.Bool
}

// poll is the full hook handed to the runners' Interrupt seam.
func (g *segGate) poll() bool {
	if g.passive() {
		return true
	}
	if g.polls.Add(1) > g.limit.Load() {
		// The cut poll does not consume budget, so segment boundaries
		// do not drift: N segments of K polls execute exactly N·K
		// counted polls.
		g.polls.Add(-1)
		return true
	}
	return false
}

// passive checks external cancellation and the deadline without touching
// the segment budget — the preparing phase's hook.
func (g *segGate) passive() bool {
	g.touch()
	if g.external != nil && g.external() {
		g.extFired.Store(true)
		return true
	}
	if !g.deadline.IsZero() && !g.now().Before(g.deadline) {
		g.ddlFired.Store(true)
		return true
	}
	return false
}

func (g *segGate) touch() { g.lastPoll.Store(g.now().UnixNano()) }

// newSegment grants the next segment's poll budget; 0 or negative means
// unlimited.
func (g *segGate) newSegment(budget int64) {
	if budget <= 0 {
		g.limit.Store(math.MaxInt64)
		return
	}
	g.limit.Store(g.polls.Load() + budget)
}
