package core

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// AnchorKind selects which element of the graph an anchored query pins.
type AnchorKind uint8

const (
	// AnchorLeft restricts the search to butterflies containing the left
	// vertex Anchor.U.
	AnchorLeft AnchorKind = iota + 1
	// AnchorRight restricts the search to butterflies containing the right
	// vertex Anchor.V.
	AnchorRight
	// AnchorEdge restricts the search to butterflies containing the
	// backbone edge (Anchor.U, Anchor.V).
	AnchorEdge
)

// Anchor pins an anchored MPMB query to a vertex or a backbone edge: only
// butterflies containing the anchor compete for S_MB in each sampled
// world. The zero Anchor means "no anchor" (a global query).
type Anchor struct {
	Kind AnchorKind
	U    bigraph.VertexID // left vertex (AnchorLeft, AnchorEdge)
	V    bigraph.VertexID // right vertex (AnchorRight, AnchorEdge)
}

// Validate checks the anchor against the graph's vertex ranges and, for
// AnchorEdge, backbone membership.
func (a Anchor) Validate(g *bigraph.Graph) error {
	switch a.Kind {
	case AnchorLeft:
		if int(a.U) >= g.NumL() {
			return fmt.Errorf("core: anchor left vertex %d out of range [0,%d)", a.U, g.NumL())
		}
	case AnchorRight:
		if int(a.V) >= g.NumR() {
			return fmt.Errorf("core: anchor right vertex %d out of range [0,%d)", a.V, g.NumR())
		}
	case AnchorEdge:
		if int(a.U) >= g.NumL() {
			return fmt.Errorf("core: anchor edge left endpoint %d out of range [0,%d)", a.U, g.NumL())
		}
		if int(a.V) >= g.NumR() {
			return fmt.Errorf("core: anchor edge right endpoint %d out of range [0,%d)", a.V, g.NumR())
		}
		if _, ok := g.FindEdge(a.U, a.V); !ok {
			return fmt.Errorf("core: anchor edge (%d,%d) is not a backbone edge", a.U, a.V)
		}
	default:
		return fmt.Errorf("core: anchor kind unset")
	}
	return nil
}

func (a Anchor) String() string {
	switch a.Kind {
	case AnchorLeft:
		return fmt.Sprintf("L%d", a.U)
	case AnchorRight:
		return fmt.Sprintf("R%d", a.V)
	case AnchorEdge:
		return fmt.Sprintf("E(%d,%d)", a.U, a.V)
	}
	return "unanchored"
}

// anchorPartner is the per-partner angle record of the anchored trial
// scan, the anchor-restricted analogue of the OS kernel's angleEntry
// (Table II): for a partner vertex p on the anchor's side it tracks the
// best (w1) and second-best (w2) angle weight through the anchor, with
// the middle vertices attaining each. For AnchorEdge queries only wA (the
// forced angle through the anchored middle) and the w1 class are used.
type anchorPartner struct {
	gen   uint32
	wA    float64
	w1    float64
	mids1 []bigraph.VertexID
	w2    float64
	mids2 []bigraph.VertexID
}

// update folds one angle (anchor, mid, partner) of weight w into the
// Table II classes: new maximum, tie with the maximum, new second, tie
// with the second, or ignored.
func (e *anchorPartner) update(w float64, mid bigraph.VertexID) {
	switch {
	case w > e.w1:
		e.w2 = e.w1
		e.mids2 = append(e.mids2[:0], e.mids1...)
		e.w1 = w
		e.mids1 = append(e.mids1[:0], mid)
	case w == e.w1:
		e.mids1 = append(e.mids1, mid)
	case w > e.w2:
		e.w2 = w
		e.mids2 = append(e.mids2[:0], mid)
	case w == e.w2:
		e.mids2 = append(e.mids2, mid)
	}
}

// bestWeight is the weight of the best butterfly through (anchor,
// partner) formable from the recorded angles, or -Inf when fewer than two
// angles exist.
func (e *anchorPartner) bestWeight() float64 {
	if len(e.mids1) >= 2 {
		return 2 * e.w1
	}
	if len(e.mids1) == 1 && len(e.mids2) >= 1 {
		return e.w1 + e.w2
	}
	return math.Inf(-1)
}

// anchoredIndex runs anchor-restricted trials: instead of the global OS
// edge scan it enumerates only the anchor's two-hop neighbourhood,
// Bernoulli-sampling each touched edge lazily (at most once per trial,
// through the same precomputed thresholds as the optimized estimator).
// Distinct trials derive independent streams from the root seed, so the
// per-trial distribution of S_MB restricted to anchor-containing
// butterflies is exact even though untouched edges are never drawn.
type anchoredIndex struct {
	g          *bigraph.Graph
	anchor     Anchor
	anchorEdge bigraph.EdgeID // AnchorEdge only

	// Lazy per-trial edge presence, EstimateOptimized-style.
	thresh []uint64
	stamp  []int32
	val    []bool
	cur    int32
	rng    randx.RNG

	// Per-partner angle table with generation stamps, so a trial only
	// resets the entries it touches.
	ents    []anchorPartner
	gen     uint32
	touched []bigraph.VertexID
}

func newAnchoredIndex(g *bigraph.Graph, a Anchor) *anchoredIndex {
	x := &anchoredIndex{
		g:      g,
		anchor: a,
		thresh: edgeThresholds(g),
		stamp:  make([]int32, g.NumEdges()),
		val:    make([]bool, g.NumEdges()),
	}
	partners := g.NumL()
	if a.Kind == AnchorRight {
		partners = g.NumR()
	}
	x.ents = make([]anchorPartner, partners)
	if a.Kind == AnchorEdge {
		id, ok := g.FindEdge(a.U, a.V)
		if !ok {
			panic("core: anchoredIndex on non-backbone anchor edge")
		}
		x.anchorEdge = id
	}
	return x
}

// present lazily samples edge id for the current trial.
func (x *anchoredIndex) present(id bigraph.EdgeID) bool {
	if x.stamp[id] != x.cur {
		x.stamp[id] = x.cur
		x.val[id] = x.rng.BernoulliThresholded(x.thresh[id])
	}
	return x.val[id]
}

// entry returns the partner record, resetting it on first touch in the
// current trial.
func (x *anchoredIndex) entry(p bigraph.VertexID) *anchorPartner {
	e := &x.ents[p]
	if e.gen != x.gen {
		e.gen = x.gen
		e.wA = math.Inf(-1)
		e.w1 = math.Inf(-1)
		e.w2 = math.Inf(-1)
		e.mids1 = e.mids1[:0]
		e.mids2 = e.mids2[:0]
		x.touched = append(x.touched, p)
	}
	return e
}

// runTrialSeeded samples one world with the per-trial stream derived from
// root and fills sMB with the anchored maximum butterfly set.
func (x *anchoredIndex) runTrialSeeded(root *randx.RNG, id uint64, sMB *butterfly.MaxSet) {
	root.DeriveInto(id, &x.rng)
	x.cur++
	if x.cur == math.MaxInt32 {
		for i := range x.stamp {
			x.stamp[i] = 0
		}
		x.cur = 1
	}
	x.runTrial(sMB, x.present)
}

// runTrial computes S_MB restricted to butterflies containing the anchor
// under the given edge-presence oracle. present is consulted at most once
// per edge per trial by construction of the traversal plus (for the RNG
// path) the stamp table.
func (x *anchoredIndex) runTrial(sMB *butterfly.MaxSet, present func(bigraph.EdgeID) bool) {
	sMB.Reset()
	x.touched = x.touched[:0]
	x.gen++
	if x.gen == 0 {
		for i := range x.ents {
			x.ents[i].gen = 0
		}
		x.gen = 1
	}
	switch x.anchor.Kind {
	case AnchorLeft:
		x.vertexTrial(x.anchor.U, x.g.NeighborsL(x.anchor.U), x.g.NeighborsR, present, sMB)
	case AnchorRight:
		x.vertexTrial(x.anchor.V, x.g.NeighborsR(x.anchor.V), x.g.NeighborsL, present, sMB)
	case AnchorEdge:
		x.edgeTrial(present, sMB)
	}
}

// vertexTrial handles vertex anchors. outer is the anchor's adjacency
// (middles on the opposite side); inner maps a middle to its adjacency
// (partners on the anchor's side). Angles (anchor, mid, partner) feed the
// Table II classes keyed by partner; the anchored S_MB is then the union,
// over partners attaining the maximum bestWeight, of the butterflies
// formable from their top angle classes.
func (x *anchoredIndex) vertexTrial(anchor bigraph.VertexID, outer []bigraph.Half, inner func(bigraph.VertexID) []bigraph.Half, present func(bigraph.EdgeID) bool, sMB *butterfly.MaxSet) {
	g := x.g
	for _, h := range outer {
		if !present(h.E) {
			continue
		}
		mid := h.To
		wAnchor := g.Edge(h.E).W
		for _, h2 := range inner(mid) {
			p := h2.To
			if p == anchor || !present(h2.E) {
				continue
			}
			x.entry(p).update(wAnchor+g.Edge(h2.E).W, mid)
		}
	}
	wMax := math.Inf(-1)
	for _, p := range x.touched {
		if bw := x.ents[p].bestWeight(); bw > wMax {
			wMax = bw
		}
	}
	if math.IsInf(wMax, -1) {
		return
	}
	for _, p := range x.touched {
		e := &x.ents[p]
		if e.bestWeight() != wMax {
			continue
		}
		if len(e.mids1) >= 2 {
			for i := 0; i < len(e.mids1); i++ {
				for j := i + 1; j < len(e.mids1); j++ {
					x.emit(sMB, p, e.mids1[i], e.mids1[j], wMax)
				}
			}
		}
		if len(e.mids1) == 1 && e.w1+e.w2 == wMax {
			for _, m2 := range e.mids2 {
				x.emit(sMB, p, e.mids1[0], m2, wMax)
			}
		}
	}
}

// edgeTrial handles edge anchors (u,v): when the anchored edge is
// present, each partner p with (p,v) present contributes the forced angle
// wA(p) = w(u,v)+w(p,v), and the best co-angle (u,m,p) over middles m != v
// completes the butterfly B(u,p|v,m) of weight wA(p)+w(u,m)+w(p,m).
func (x *anchoredIndex) edgeTrial(present func(bigraph.EdgeID) bool, sMB *butterfly.MaxSet) {
	if !present(x.anchorEdge) {
		return
	}
	g := x.g
	u, v := x.anchor.U, x.anchor.V
	wuv := g.Edge(x.anchorEdge).W
	for _, h := range g.NeighborsR(v) {
		p := h.To
		if p == u || !present(h.E) {
			continue
		}
		x.entry(p).wA = wuv + g.Edge(h.E).W
	}
	for _, h := range g.NeighborsL(u) {
		mid := h.To
		if mid == v || !present(h.E) {
			continue
		}
		wum := g.Edge(h.E).W
		for _, h2 := range g.NeighborsR(mid) {
			p := h2.To
			if p == u || !present(h2.E) {
				continue
			}
			e := &x.ents[p]
			if e.gen != x.gen || math.IsInf(e.wA, -1) {
				continue // (p,v) absent: no butterfly through the anchor edge
			}
			w := wum + g.Edge(h2.E).W
			switch {
			case w > e.w1:
				e.w1 = w
				e.mids1 = append(e.mids1[:0], mid)
			case w == e.w1:
				e.mids1 = append(e.mids1, mid)
			}
		}
	}
	wMax := math.Inf(-1)
	for _, p := range x.touched {
		e := &x.ents[p]
		if len(e.mids1) == 0 {
			continue
		}
		if bw := e.wA + e.w1; bw > wMax {
			wMax = bw
		}
	}
	if math.IsInf(wMax, -1) {
		return
	}
	for _, p := range x.touched {
		e := &x.ents[p]
		if len(e.mids1) == 0 || e.wA+e.w1 != wMax {
			continue
		}
		for _, m := range e.mids1 {
			sMB.Add(butterfly.New(u, p, v, m), wMax)
		}
	}
}

// emit adds the butterfly formed by the anchor, partner p and middles m1,
// m2, orienting by the anchor's side.
func (x *anchoredIndex) emit(sMB *butterfly.MaxSet, p, m1, m2 bigraph.VertexID, w float64) {
	if x.anchor.Kind == AnchorRight {
		sMB.Add(butterfly.New(m1, m2, x.anchor.V, p), w)
		return
	}
	sMB.Add(butterfly.New(x.anchor.U, p, m1, m2), w)
}

// AnchoredOS runs anchor-restricted Ordering Sampling: opt.Trials worlds
// are sampled lazily around the anchor and each world's maximum
// anchor-containing butterfly set is credited, exactly like OS but with
// S_MB restricted to butterflies through the anchor. An anchor with zero
// butterfly support yields an empty Result. Resume, OnTrial and Executor
// are not supported for anchored runs; Interrupt yields a partial Result
// without a checkpoint.
func AnchoredOS(g *bigraph.Graph, a Anchor, opt OSOptions) (*Result, error) {
	if err := anchoredOSCheck(g, a, opt); err != nil {
		return nil, err
	}
	x := newAnchoredIndex(g, a)
	acc := newProbAccumulator()
	root := randx.New(opt.Seed)
	var sMB butterfly.MaxSet
	for trial := 1; trial <= opt.Trials; trial++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			res := acc.resultNorm("os", opt.Trials, trial-1)
			res.Partial = true
			probeFinish(opt.Probe, res)
			return res, nil
		}
		x.runTrialSeeded(root, uint64(trial), &sMB)
		if !sMB.Empty() {
			acc.addMaxSet(&sMB)
		}
	}
	res := acc.result("os", opt.Trials)
	probeFinish(opt.Probe, res)
	return res, nil
}

// AnchoredOSParallel is AnchoredOS with trials spread over workers
// goroutines (0 means GOMAXPROCS). Each worker derives the same per-trial
// streams from the shared seed, so results are identical to AnchoredOS.
func AnchoredOSParallel(g *bigraph.Graph, a Anchor, opt OSOptions, workers int) (*Result, error) {
	if err := anchoredOSCheck(g, a, opt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	if workers == 1 || opt.Trials < 2*parChunkTrials {
		return AnchoredOS(g, a, opt)
	}
	accs := make([]*probAccumulator, workers)
	done, err := parLoop(0, opt.Trials, workers, opt.Interrupt, func(w int) func(lo, hi int) {
		x := newAnchoredIndex(g, a)
		root := randx.New(opt.Seed)
		acc := newProbAccumulator()
		accs[w] = acc
		var sMB butterfly.MaxSet
		return func(lo, hi int) {
			for t := lo; t <= hi; t++ {
				x.runTrialSeeded(root, uint64(t), &sMB)
				if !sMB.Empty() {
					acc.addMaxSet(&sMB)
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	acc := newProbAccumulator()
	for _, a2 := range accs {
		if a2 != nil {
			acc.merge(a2)
		}
	}
	var res *Result
	if done < opt.Trials {
		res = acc.resultNorm("os", opt.Trials, done)
		res.Partial = true
	} else {
		res = acc.result("os", opt.Trials)
	}
	probeFinish(opt.Probe, res)
	return res, nil
}

func anchoredOSCheck(g *bigraph.Graph, a Anchor, opt OSOptions) error {
	if opt.Trials <= 0 {
		return fmt.Errorf("core: anchored OS requires Trials > 0, got %d", opt.Trials)
	}
	if opt.Resume != nil {
		return fmt.Errorf("core: anchored runs do not support Resume")
	}
	if opt.Executor != nil {
		return fmt.Errorf("core: anchored runs do not support an explicit Executor")
	}
	if opt.OnTrial != nil {
		return fmt.Errorf("core: anchored runs do not support OnTrial")
	}
	return a.Validate(g)
}

// PrepareAnchoredCandidates runs nPrep anchored trials and unions each
// trial's anchored S_MB into a candidate set, the anchor-restricted
// analogue of PrepareCandidates. Interrupt stops early: the returned set
// reports the completed prefix in PrepDone (no checkpoint).
func PrepareAnchoredCandidates(g *bigraph.Graph, a Anchor, nPrep int, seed uint64, interrupt func() bool) (*Candidates, error) {
	if nPrep <= 0 {
		return nil, fmt.Errorf("core: anchored preparing phase requires PrepTrials > 0, got %d", nPrep)
	}
	if err := a.Validate(g); err != nil {
		return nil, err
	}
	x := newAnchoredIndex(g, a)
	root := randx.New(seed)
	hits := make(map[butterfly.Butterfly]int)
	var sMB butterfly.MaxSet
	done := 0
	for trial := 1; trial <= nPrep; trial++ {
		if interrupt != nil && interrupt() {
			break
		}
		x.runTrialSeeded(root, uint64(trial), &sMB)
		for _, b := range sMB.Set {
			hits[b]++
		}
		done = trial
	}
	c, err := NewCandidates(g, hits)
	if err != nil {
		return nil, err
	}
	c.PrepDone = done
	return c, nil
}

// AnchoredOLS runs Ordering-Listing Sampling restricted to the anchor:
// the preparing phase unions anchored maximum sets into C_MB, then the
// unchanged shared-trial estimator (or Karp-Luby when opt.UseKarpLuby)
// prices exactly those candidates. workers 0 means a sequential sampling
// phase. Resume and Executor are not supported for anchored runs;
// Interrupt during preparation returns a partial Result with no
// estimates, during sampling a partial Result over the completed prefix
// (in both cases without a checkpoint).
func AnchoredOLS(g *bigraph.Graph, a Anchor, opt OLSOptions, workers int) (*Result, error) {
	method := opt.method()
	if opt.Resume != nil {
		return nil, fmt.Errorf("core: anchored runs do not support Resume")
	}
	if opt.Executor != nil {
		return nil, fmt.Errorf("core: anchored runs do not support an explicit Executor")
	}
	cands, err := PrepareAnchoredCandidates(g, a, opt.PrepTrials, opt.Seed, opt.Interrupt)
	if err != nil {
		return nil, err
	}
	if cands.PrepDone < opt.PrepTrials {
		return &Result{
			Method:     method,
			Trials:     opt.Trials,
			PrepTrials: opt.PrepTrials,
			Partial:    true,
		}, nil
	}
	return olsSampling(cands, opt, workers, nil)
}

// ExactAnchored enumerates every possible world (so the graph must have
// at most possible.MaxEnumerableEdges edges) and accumulates the exact
// probability of each butterfly being in the anchored maximum set — the
// brute-force oracle the statcheck harness certifies anchored estimators
// against. An anchor contained in no butterfly yields an empty Result.
func ExactAnchored(g *bigraph.Graph, a Anchor) (*Result, error) {
	if err := a.Validate(g); err != nil {
		return nil, err
	}
	x := newAnchoredIndex(g, a)
	probs := make(map[butterfly.Butterfly]float64)
	weights := make(map[butterfly.Butterfly]float64)
	var sMB butterfly.MaxSet
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		x.runTrial(&sMB, w.Has)
		for _, b := range sMB.Set {
			probs[b] += pr
			weights[b] = sMB.W
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	es := make([]Estimate, 0, len(probs))
	for b, p := range probs {
		es = append(es, Estimate{B: b, P: p, Weight: weights[b]})
	}
	sortEstimates(es)
	return &Result{Method: "exact", Estimates: es}, nil
}
