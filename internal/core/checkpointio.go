package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// CheckpointFS is the filesystem seam the retrying CheckpointStore writes
// through. The production implementation is the real OS filesystem; tests
// inject flaky implementations to exercise the retry path without
// touching real storage. The contract mirrors the atomic-save protocol of
// SaveCheckpoint: data goes to a temp file which is renamed over the
// destination only after a successful write+close, so a failure at any
// step never leaves a torn checkpoint at the destination path.
type CheckpointFS interface {
	// CreateTemp creates a scratch file in dir with the given name
	// pattern (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (CheckpointFile, error)
	// Rename atomically moves the finished temp file over the
	// destination.
	Rename(oldpath, newpath string) error
	// Remove deletes a leftover temp file after a failed attempt.
	Remove(name string) error
	// Open opens a checkpoint for reading.
	Open(name string) (io.ReadCloser, error)
}

// CheckpointFile is the writable scratch file CreateTemp returns.
type CheckpointFile interface {
	io.Writer
	io.Closer
	// Name reports the file's path, for the Rename step.
	Name() string
}

// osFS is the production CheckpointFS.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (CheckpointFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                { return os.Remove(name) }
func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// ErrRetriesExhausted reports that every attempt of a retried checkpoint
// operation failed. Match with errors.Is; the concrete
// *RetryExhaustedError carries the attempt count and the last error.
var ErrRetriesExhausted = errors.New("core: checkpoint retries exhausted")

// RetryExhaustedError is the typed error behind ErrRetriesExhausted.
type RetryExhaustedError struct {
	// Op is "save" or "load"; Path is the checkpoint file.
	Op   string
	Path string
	// Attempts is how many times the operation was tried before giving
	// up; Last is the final attempt's error (also the Unwrap target, so
	// the underlying cause stays inspectable).
	Attempts int
	Last     error
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("core: checkpoint %s %s failed after %d attempts: %v", e.Op, e.Path, e.Attempts, e.Last)
}

// Is makes errors.Is(err, ErrRetriesExhausted) succeed.
func (e *RetryExhaustedError) Is(target error) bool { return target == ErrRetriesExhausted }

// Unwrap exposes the last attempt's error to errors.Is/As chains.
func (e *RetryExhaustedError) Unwrap() error { return e.Last }

// RetryPolicy shapes the exponential backoff between checkpoint I/O
// attempts: attempt k (0-based) sleeps min(BaseDelay·2^k, MaxDelay),
// scaled by a uniform jitter factor in [0.5, 1) so a fleet of workers
// hitting the same flaky volume does not retry in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (the first try included).
	// Values below 1 behave as 1 — a single attempt, no retries.
	MaxAttempts int
	// BaseDelay is the pre-jitter sleep after the first failure; it
	// doubles per attempt up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth. 0 means no cap.
	MaxDelay time.Duration
	// Seed makes the jitter sequence deterministic (tests, reproducible
	// runs). The zero seed is a valid deterministic stream of its own.
	Seed uint64
	// Sleep overrides time.Sleep (tests record delays instead of
	// waiting). Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy matches transient-storage guidance: 4 attempts,
// 50 ms base, 2 s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
}

// backoff returns the post-jitter sleep before retry attempt k (0-based
// index of the attempt that just failed).
func (p RetryPolicy) backoff(k int, rng *randx.RNG) time.Duration {
	d := p.BaseDelay
	for i := 0; i < k && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	// Jitter in [0.5, 1): enough spread to de-synchronize, never more
	// than the nominal delay.
	return time.Duration((0.5 + 0.5*rng.Float64()) * float64(d))
}

// CheckpointStore saves and loads checkpoints through a CheckpointFS,
// retrying transient failures with exponential backoff and jitter. The
// zero value is NOT usable; construct with NewCheckpointStore.
type CheckpointStore struct {
	retry RetryPolicy
	fs    CheckpointFS
	sleep func(time.Duration)
	probe *telemetry.Probe
}

// SetProbe attaches run telemetry to the store: successful saves,
// retried attempts of either operation, and the corresponding events.
// A nil probe (the default) disables instrumentation.
func (s *CheckpointStore) SetProbe(p *telemetry.Probe) { s.probe = p }

// NewCheckpointStore builds a store over the real filesystem with the
// given retry policy (pass DefaultRetryPolicy() for the standard one).
func NewCheckpointStore(policy RetryPolicy) *CheckpointStore {
	return NewCheckpointStoreFS(policy, nil)
}

// NewCheckpointStoreFS is NewCheckpointStore with an injectable
// filesystem; fs nil means the real one. This is the fault-injection seam
// the retry tests (and any caller wrapping exotic storage) use.
func NewCheckpointStoreFS(policy RetryPolicy, fs CheckpointFS) *CheckpointStore {
	if fs == nil {
		fs = osFS{}
	}
	sleep := policy.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return &CheckpointStore{retry: policy, fs: fs, sleep: sleep}
}

// attempts returns the effective attempt budget.
func (s *CheckpointStore) attempts() int {
	if s.retry.MaxAttempts < 1 {
		return 1
	}
	return s.retry.MaxAttempts
}

// Save writes the checkpoint to path with the same atomic
// temp-file-then-rename protocol as SaveCheckpoint, retrying transient
// failures per the store's policy. Every attempt starts from a fresh temp
// file and the destination is only ever replaced by a complete, fsynced
// rename — an interrupted or failing save never tears an existing
// checkpoint at path. After the attempt budget the typed
// *RetryExhaustedError (errors.Is ErrRetriesExhausted) reports the last
// cause.
func (s *CheckpointStore) Save(path string, c *Checkpoint) error {
	// Validation errors are deterministic: retrying cannot fix an invalid
	// checkpoint, so surface them immediately.
	if err := c.validate(); err != nil {
		return fmt.Errorf("core: refusing to save invalid checkpoint: %w", err)
	}
	rng := randx.New(s.retry.Seed)
	var last error
	n := s.attempts()
	for k := 0; k < n; k++ {
		if k > 0 {
			s.sleep(s.retry.backoff(k-1, rng))
		}
		if err := s.saveOnce(path, c); err != nil {
			last = err
			s.probe.Add(0, telemetry.CounterCheckpointRetries, 1)
			s.probe.Emit(telemetry.Event{
				Kind: telemetry.EventCheckpointRetried, N: int64(k + 1),
				Detail: "save " + path + ": " + err.Error(),
			})
			continue
		}
		s.probe.Add(0, telemetry.CounterCheckpointSaves, 1)
		s.probe.Emit(telemetry.Event{
			Kind: telemetry.EventCheckpointSaved, Trial: c.Done, Detail: path,
		})
		return nil
	}
	return &RetryExhaustedError{Op: "save", Path: path, Attempts: n, Last: last}
}

func (s *CheckpointStore) saveOnce(path string, c *Checkpoint) error {
	dir, base := filepath.Split(path)
	f, err := s.fs.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := c.Encode(f); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a checkpoint from path, retrying failures per the store's
// policy. Decode failures retry too: saves are atomic, so a decode error
// on a flaky volume is far more likely a transiently failing read than a
// genuinely torn file, and a truly corrupt file just costs the small
// retry budget before surfacing its decode error as the Last cause.
func (s *CheckpointStore) Load(path string) (*Checkpoint, error) {
	rng := randx.New(s.retry.Seed)
	var last error
	n := s.attempts()
	for k := 0; k < n; k++ {
		if k > 0 {
			s.sleep(s.retry.backoff(k-1, rng))
		}
		c, err := s.loadOnce(path)
		if err != nil {
			last = err
			s.probe.Add(0, telemetry.CounterCheckpointRetries, 1)
			s.probe.Emit(telemetry.Event{
				Kind: telemetry.EventCheckpointRetried, N: int64(k + 1),
				Detail: "load " + path + ": " + err.Error(),
			})
			continue
		}
		return c, nil
	}
	return nil, &RetryExhaustedError{Op: "load", Path: path, Attempts: n, Last: last}
}

func (s *CheckpointStore) loadOnce(path string) (*Checkpoint, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	return c, nil
}
