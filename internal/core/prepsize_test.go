package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// refExpectedButterflies sums Π p(e) over all backbone butterflies,
// optionally restricted to an anchor — the exact expected butterfly
// count the exhaustive pre-pass must reproduce.
func refExpectedButterflies(g *bigraph.Graph, anchor *Anchor) float64 {
	var sum float64
	for _, bw := range butterfly.AllBackbone(g) {
		if anchor != nil && !anchorContains(bw.B, *anchor) {
			continue
		}
		ids, ok := bw.B.EdgeIDs(g)
		if !ok {
			continue
		}
		p := 1.0
		for _, id := range ids {
			p *= g.Edge(id).P
		}
		sum += p
	}
	return sum
}

// TestSizePrepExhaustiveExact: on graphs small enough for an exhaustive
// pre-pass, B̂ must equal the exact expected butterfly count, for global
// and for every anchored pool.
func TestSizePrepExhaustiveExact(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	graphs := []*bigraph.Graph{figure1Graph(), pendantGraph()}
	for i := 0; i < 20; i++ {
		graphs = append(graphs, randGraph(r, 5, 5, 14))
	}
	for gi, g := range graphs {
		s := SizePrep(g, nil, 1)
		if !s.Exhaustive {
			t.Fatalf("graph %d: expected exhaustive pre-pass", gi)
		}
		if want := refExpectedButterflies(g, nil); math.Abs(s.ExpectedButterflies-want) > 1e-9 {
			t.Fatalf("graph %d: B̂ = %v, want %v", gi, s.ExpectedButterflies, want)
		}
		for _, a := range allAnchors(g) {
			a := a
			s := SizePrep(g, &a, 1)
			if want := refExpectedButterflies(g, &a); math.Abs(s.ExpectedButterflies-want) > 1e-9 {
				t.Fatalf("graph %d anchor %v: B̂ = %v, want %v", gi, a, s.ExpectedButterflies, want)
			}
		}
	}
}

// TestSizePrepBudgets pins the budget policy: the paper default for
// modest graphs, a token budget for provably butterfly-free graphs, and
// the OS ladder entry only beyond the listing ceiling.
func TestSizePrepBudgets(t *testing.T) {
	s := SizePrep(figure1Graph(), nil, 1)
	if s.PrepTrials != prepSizeMinTrials || s.EntryMethod != "ols" {
		t.Fatalf("figure1 sizing: %+v", s)
	}
	// Butterfly-free graph, proven exhaustively.
	b := bigraph.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0.5)
	barren := b.Build()
	s = SizePrep(barren, nil, 1)
	if !s.Exhaustive || s.ExpectedButterflies != 0 || s.PrepTrials != prepSizeBarrenTrials {
		t.Fatalf("barren sizing: %+v", s)
	}
	// A zero-support anchor on a graph that does have butterflies.
	pg := pendantGraph()
	a := Anchor{Kind: AnchorLeft, U: 0}
	s = SizePrep(pg, &a, 1)
	if s.ExpectedButterflies != 0 || s.PrepTrials != prepSizeBarrenTrials {
		t.Fatalf("zero-support anchor sizing: %+v", s)
	}
	if got := sizePrepTrials(1e9, false); got != prepSizeMaxTrials {
		t.Fatalf("huge B̂ budget: %d", got)
	}
	if got := sizePrepTrials(0, false); got != prepSizeMinTrials {
		t.Fatalf("sampled zero budget: %d", got)
	}
}

// TestSizePrepDeterministic: same (g, anchor, seed) → same sizing, even
// on graphs large enough to force sampling.
func TestSizePrepDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	b := bigraph.NewBuilder(30, 30)
	seen := make(map[[2]int]bool)
	for i := 0; i < 200; i++ {
		u, v := r.Intn(30), r.Intn(30)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, 0.5)
	}
	g := b.Build()
	s1 := SizePrep(g, nil, 7)
	s2 := SizePrep(g, nil, 7)
	if s1 != s2 {
		t.Fatalf("non-deterministic sizing: %+v vs %+v", s1, s2)
	}
	if s1.Exhaustive || s1.SampledEdges != prepSizeSamples {
		t.Fatalf("expected sampled pre-pass: %+v", s1)
	}
	if s1.ExpectedButterflies <= 0 {
		t.Fatalf("dense graph sized at B̂ = %v", s1.ExpectedButterflies)
	}
}

// TestSizePrepNoEscalation is the acceptance gate: supervised OLS runs
// with the sized PrepTrials must never trigger a coverage-audit
// escalation on the oracle corpus graphs used in this package.
func TestSizePrepNoEscalation(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	graphs := []*bigraph.Graph{figure1Graph(), pendantGraph()}
	for i := 0; i < 6; i++ {
		graphs = append(graphs, randGraph(r, 4, 4, 12))
	}
	for gi, g := range graphs {
		s := SizePrep(g, nil, uint64(gi))
		res, err := Supervise(g, SupervisorOptions{
			Method:     "ols",
			Trials:     2000,
			PrepTrials: s.PrepTrials,
			Seed:       uint64(gi),
			AuditEvery: 500,
		})
		if err != nil {
			t.Fatalf("graph %d: %v", gi, err)
		}
		if res.Adaptive == nil {
			t.Fatalf("graph %d: no adaptive report", gi)
		}
		if res.Adaptive.Escalations != 0 {
			t.Fatalf("graph %d: sized PrepTrials=%d escalated %d times", gi, s.PrepTrials, res.Adaptive.Escalations)
		}
	}
}
