package core

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

// interruptAfter returns a concurrency-safe hook firing after n polls.
func interruptAfter(n int64) func() bool {
	var calls atomic.Int64
	return func() bool { return calls.Add(1) > n }
}

// reloadCheckpoint pushes a checkpoint through its binary serialization,
// so every resume test also exercises Encode/Decode round-tripping.
func reloadCheckpoint(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	if ck == nil {
		t.Fatal("partial result carries no checkpoint")
	}
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

// assertCompleteMatch requires a resumed result to be a complete run
// bit-identical to the uninterrupted reference.
func assertCompleteMatch(t *testing.T, resumed, full *Result) {
	t.Helper()
	if resumed.Partial {
		t.Fatalf("resumed run still partial: %d/%d", resumed.TrialsDone, resumed.Trials)
	}
	if resumed.TrialsDone != resumed.Trials {
		t.Fatalf("resumed TrialsDone = %d, want %d", resumed.TrialsDone, resumed.Trials)
	}
	assertSameEstimates(t, resumed.Estimates, full.Estimates)
}

// TestResumeBitIdentical is the checkpoint contract for every resumable
// sequential method: cancel at T trials, serialize the checkpoint, resume,
// and require the finished result to equal an uninterrupted run bit for
// bit.
func TestResumeBitIdentical(t *testing.T) {
	g := figure1Graph()
	const full, cut = 150, 41

	t.Run("mc-vp", func(t *testing.T) {
		ref, err := MCVP(g, MCVPOptions{Trials: full, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		part, err := MCVP(g, MCVPOptions{Trials: full, Seed: 9, Interrupt: interruptAfter(cut)})
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		resumed, err := MCVP(g, MCVPOptions{Trials: full, Seed: 9, Resume: reloadCheckpoint(t, part.Checkpoint)})
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})

	t.Run("os", func(t *testing.T) {
		ref, err := OS(g, OSOptions{Trials: full, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		part, err := OS(g, OSOptions{Trials: full, Seed: 9, Interrupt: interruptAfter(cut)})
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		resumed, err := OS(g, OSOptions{Trials: full, Seed: 9, Resume: reloadCheckpoint(t, part.Checkpoint)})
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})

	t.Run("ols-sampling", func(t *testing.T) {
		const prep = 25
		olsOpt := OLSOptions{PrepTrials: prep, Trials: full, Seed: 9}
		ref, err := OLS(g, olsOpt)
		if err != nil {
			t.Fatal(err)
		}
		cutOpt := olsOpt
		cutOpt.Interrupt = interruptAfter(prep + cut) // let the prep polls through
		part, err := OLS(g, cutOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		resOpt := olsOpt
		resOpt.Resume = reloadCheckpoint(t, part.Checkpoint)
		resumed, err := OLS(g, resOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})

	t.Run("ols-prepare", func(t *testing.T) {
		const prep = 25
		olsOpt := OLSOptions{PrepTrials: prep, Trials: full, Seed: 9}
		ref, err := OLS(g, olsOpt)
		if err != nil {
			t.Fatal(err)
		}
		cutOpt := olsOpt
		cutOpt.Interrupt = interruptAfter(7) // cancel inside the preparing phase
		part, err := OLS(g, cutOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != 0 {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial with no sampling trials", part.Partial, part.TrialsDone)
		}
		ck := reloadCheckpoint(t, part.Checkpoint)
		if !ck.Prepare || ck.Done != 7 {
			t.Fatalf("checkpoint Prepare=%v Done=%d, want preparing-phase at 7", ck.Prepare, ck.Done)
		}
		resOpt := olsOpt
		resOpt.Resume = ck
		resumed, err := OLS(g, resOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})

	t.Run("ols-kl", func(t *testing.T) {
		// Enough preparing trials that all of Figure 1's butterflies join
		// the candidate set, so a candidate-granular cut leaves real work
		// for the resume.
		dg := g
		const prep = 30
		olsOpt := OLSOptions{PrepTrials: prep, Trials: 80, Seed: 9, UseKarpLuby: true, KL: KLOptions{Mu: 0.1}}
		ref, err := OLS(dg, olsOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Estimates) < 2 {
			t.Fatalf("test graph produced %d candidates, want >= 2", len(ref.Estimates))
		}
		cutOpt := olsOpt
		cutOpt.Interrupt = interruptAfter(int64(prep) + 1) // price one candidate, then stop
		part, err := OLS(dg, cutOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != 1 {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial after 1 candidate", part.Partial, part.TrialsDone)
		}
		resOpt := olsOpt
		resOpt.Resume = reloadCheckpoint(t, part.Checkpoint)
		resumed, err := OLS(dg, resOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})
}

// TestResumeBitIdenticalParallel cancels parallel runs (nondeterministic
// stopping point, exact prefix guaranteed by chunked dispatch) and resumes
// them — in parallel — expecting bit-identity with an uninterrupted
// sequential run.
func TestResumeBitIdenticalParallel(t *testing.T) {
	g := figure1Graph()
	const full = 600

	t.Run("os", func(t *testing.T) {
		ref, err := OS(g, OSOptions{Trials: full, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		part, err := OSParallel(g, OSOptions{Trials: full, Seed: 11, Interrupt: interruptAfter(5)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial {
			t.Skipf("run finished before cancellation took effect (%d trials)", part.TrialsDone)
		}
		if part.TrialsDone >= full || part.TrialsDone < 0 {
			t.Fatalf("TrialsDone = %d outside [0,%d)", part.TrialsDone, full)
		}
		resumed, err := OSParallel(g, OSOptions{Trials: full, Seed: 11, Resume: reloadCheckpoint(t, part.Checkpoint)}, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})

	t.Run("ols", func(t *testing.T) {
		const prep = 25
		olsOpt := OLSOptions{PrepTrials: prep, Trials: full, Seed: 11}
		ref, err := OLS(g, olsOpt)
		if err != nil {
			t.Fatal(err)
		}
		cutOpt := olsOpt
		cutOpt.Interrupt = interruptAfter(prep + 5)
		part, err := OLSParallel(g, cutOpt, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial {
			t.Skipf("run finished before cancellation took effect (%d trials)", part.TrialsDone)
		}
		resOpt := olsOpt
		resOpt.Resume = reloadCheckpoint(t, part.Checkpoint)
		resumed, err := OLSParallel(g, resOpt, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, ref)
	})
}

// TestResumePropertyRandomGraphs is the property form of the contract:
// random graphs, random cut points, every resumable method — resume must
// always reproduce the uninterrupted run exactly.
func TestResumePropertyRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for iter := 0; iter < 20; iter++ {
		g := randDenseSmallGraph(r, 14)
		seed := r.Uint64()
		full := 40 + r.Intn(120)
		cut := 1 + r.Intn(full-1)

		refOS, err := OS(g, OSOptions{Trials: full, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		part, err := OS(g, OSOptions{Trials: full, Seed: seed, Interrupt: interruptAfter(int64(cut))})
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := OS(g, OSOptions{Trials: full, Seed: seed, Resume: reloadCheckpoint(t, part.Checkpoint)})
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumed, refOS)

		prep := 5 + r.Intn(20)
		olsOpt := OLSOptions{PrepTrials: prep, Trials: full, Seed: seed}
		refOLS, err := OLS(g, olsOpt)
		if err != nil {
			t.Fatal(err)
		}
		cutOpt := olsOpt
		cutOpt.Interrupt = interruptAfter(int64(r.Intn(prep + full)))
		partOLS, err := OLS(g, cutOpt)
		if err != nil {
			t.Fatal(err)
		}
		if !partOLS.Partial {
			continue // interrupt landed past the end; nothing to resume
		}
		resOpt := olsOpt
		resOpt.Resume = reloadCheckpoint(t, partOLS.Checkpoint)
		resumedOLS, err := OLS(g, resOpt)
		if err != nil {
			t.Fatal(err)
		}
		assertCompleteMatch(t, resumedOLS, refOLS)
	}
}

// TestResumeRejectsMismatchedRun ensures a checkpoint only resumes the
// run that wrote it.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	g := figure1Graph()
	part, err := OS(g, OSOptions{Trials: 100, Seed: 5, Interrupt: interruptAfter(10)})
	if err != nil {
		t.Fatal(err)
	}
	ck := part.Checkpoint

	cases := []struct {
		name string
		run  func() (*Result, error)
	}{
		{"wrong seed", func() (*Result, error) { return OS(g, OSOptions{Trials: 100, Seed: 6, Resume: ck}) }},
		{"wrong trials", func() (*Result, error) { return OS(g, OSOptions{Trials: 200, Seed: 5, Resume: ck}) }},
		{"wrong method", func() (*Result, error) { return MCVP(g, MCVPOptions{Trials: 100, Seed: 5, Resume: ck}) }},
		{"wrong graph", func() (*Result, error) {
			other := randDenseSmallGraph(rand.New(rand.NewSource(1)), 10)
			return OS(other, OSOptions{Trials: 100, Seed: 5, Resume: ck})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s: resume accepted", tc.name)
		}
	}
}

// TestWorkerPanicIsolated injects a panic into the parallel runners (via
// the concurrently polled Interrupt hook) and requires a wrapped
// ErrWorkerPanic instead of a crashed process or a bogus partial result.
func TestWorkerPanicIsolated(t *testing.T) {
	g := figure1Graph()
	// panicHook lets `after` polls through (so sibling workers are
	// mid-flight) and then panics on a worker goroutine.
	panicHook := func(after int64) func() bool {
		var calls atomic.Int64
		return func() bool {
			if calls.Add(1) > after {
				panic("injected failure")
			}
			return false
		}
	}

	if _, err := OSParallel(g, OSOptions{Trials: 500, Seed: 2, Interrupt: panicHook(3)}, 4); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("OSParallel: err = %v, want ErrWorkerPanic", err)
	}

	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateOptimizedParallel(cands, OptimizedOptions{Trials: 500, Seed: 2, Interrupt: panicHook(3)}, 4); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("EstimateOptimizedParallel: err = %v, want ErrWorkerPanic", err)
	}
	// Karp-Luby has only len(cands) dispatch polls; panic on the first.
	if _, err := EstimateKarpLubyParallel(cands, KLOptions{BaseTrials: 50, Seed: 2, Interrupt: panicHook(0)}, 2); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("EstimateKarpLubyParallel: err = %v, want ErrWorkerPanic", err)
	}
	// The sequential preparing phase polls once per prep trial (calls
	// 1..5, below the threshold), so the panic lands in a sampling-phase
	// worker; five prep trials are enough to give Figure 1 candidates.
	if _, err := OLSParallel(g, OLSOptions{PrepTrials: 5, Trials: 500, Seed: 2, Interrupt: panicHook(7)}, 4); !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("OLSParallel: err = %v, want ErrWorkerPanic", err)
	}
}

// TestWorkerPanicReportsChunkBounds pins the panic diagnostics: the
// wrapped ErrWorkerPanic must name the panicking trial's chunk bounds,
// so a crash deep in a long run points at a small reproducible window
// instead of "somewhere in N trials".
func TestWorkerPanicReportsChunkBounds(t *testing.T) {
	// Chunks are parChunkTrials wide starting at trial 1, so trial 20
	// lives in chunk 17..32; only the body claiming that chunk panics.
	_, err := parLoop(0, 100, 3, nil, func(w int) func(lo, hi int) {
		return func(lo, hi int) {
			if lo <= 20 && 20 <= hi {
				panic("injected failure at trial 20")
			}
		}
	})
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("err = %v, want ErrWorkerPanic", err)
	}
	if !strings.Contains(err.Error(), "trials 17..32") {
		t.Fatalf("panic error does not name the chunk bounds: %v", err)
	}
	if !strings.Contains(err.Error(), "injected failure at trial 20") {
		t.Fatalf("panic error dropped the panic value: %v", err)
	}
}
