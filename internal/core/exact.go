package core

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// Exact computes P(B) for every butterfly by exhaustively enumerating all
// 2^|E| possible worlds (Equation 4) and brute-force listing each world's
// maximum weighted butterfly set. It is the ground truth against which
// every sampler in this package is validated, and is limited to graphs
// with at most possible.MaxEnumerableEdges edges — the very intractability
// that motivates the paper's sampling algorithms.
func Exact(g *bigraph.Graph) (*Result, error) {
	probs := make(map[butterfly.Butterfly]float64)
	weights := make(map[butterfly.Butterfly]float64)
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		m := butterfly.MaxWeightSet(g, w)
		for _, b := range m.Set {
			probs[b] += pr
			weights[b] = m.W
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	es := make([]Estimate, 0, len(probs))
	for b, p := range probs {
		es = append(es, Estimate{B: b, Weight: weights[b], P: p})
	}
	sortEstimates(es)
	return &Result{Method: "exact", Estimates: es}, nil
}

// ExactProb computes P(B) for a single butterfly by world enumeration,
// subject to the same edge-count limit as Exact. A butterfly that is not
// part of the backbone has probability 0.
func ExactProb(g *bigraph.Graph, b butterfly.Butterfly) (float64, error) {
	if _, ok := b.EdgeIDs(g); !ok {
		return 0, nil
	}
	total := 0.0
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		m := butterfly.MaxWeightSet(g, w)
		for _, mb := range m.Set {
			if mb == b {
				total += pr
				break
			}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
