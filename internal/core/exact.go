package core

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// Exact computes P(B) for every butterfly by exhaustively enumerating all
// 2^|E| possible worlds (Equation 4) and brute-force listing each world's
// maximum weighted butterfly set. It is the ground truth against which
// every sampler in this package is validated, and is limited to graphs
// with at most possible.MaxEnumerableEdges edges — the very intractability
// that motivates the paper's sampling algorithms.
func Exact(g *bigraph.Graph) (*Result, error) {
	return ExactInterruptible(g, nil)
}

// ExactInterruptible is Exact with a cancellation hook, polled every few
// thousand enumerated worlds. A cancelled enumeration returns a partial
// Result whose estimates sum only the worlds visited so far — lower
// bounds on the true probabilities, NOT unbiased samples (worlds are
// enumerated in a fixed order, not drawn at random) — with TrialsDone
// reporting the visited world count. There is no checkpoint: re-running
// the enumeration is the only way to finish, and graphs small enough to
// enumerate restart cheaply.
func ExactInterruptible(g *bigraph.Graph, interrupt func() bool) (*Result, error) {
	probs := make(map[butterfly.Butterfly]float64)
	weights := make(map[butterfly.Butterfly]float64)
	worlds := 0
	interrupted := false
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		worlds++
		// Poll on the first world (so a pre-cancelled run stops immediately
		// even when the whole enumeration is under one batch) and then
		// every 4096 worlds.
		if worlds%4096 == 1 && interrupt != nil && interrupt() {
			interrupted = true
			return false
		}
		if pr == 0 {
			return true
		}
		m := butterfly.MaxWeightSet(g, w)
		for _, b := range m.Set {
			probs[b] += pr
			weights[b] = m.W
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	es := make([]Estimate, 0, len(probs))
	for b, p := range probs {
		es = append(es, Estimate{B: b, Weight: weights[b], P: p})
	}
	sortEstimates(es)
	res := &Result{Method: "exact", Estimates: es}
	if interrupted {
		res.Partial = true
		res.TrialsDone = worlds
	}
	return res, nil
}

// ExactProb computes P(B) for a single butterfly by world enumeration,
// subject to the same edge-count limit as Exact. A butterfly that is not
// part of the backbone has probability 0.
func ExactProb(g *bigraph.Graph, b butterfly.Butterfly) (float64, error) {
	if _, ok := b.EdgeIDs(g); !ok {
		return 0, nil
	}
	total := 0.0
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		m := butterfly.MaxWeightSet(g, w)
		for _, mb := range m.Set {
			if mb == b {
				total += pr
				break
			}
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return total, nil
}
