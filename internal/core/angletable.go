package core

// angleTable maps the canonical endpoint-pair key uint64(u1)<<32|u2 to an
// index into the kernel's angleEntry pool. It replaces the seed
// implementation's map[uint64]int32 with a generation-stamped
// open-addressing table (power-of-two capacity, linear probing):
//
//   - reset() is a generation bump — O(1) instead of clear(map)'s walk
//     over every bucket, which dominated short trials;
//   - a probe is one hash, a masked index and a short linear walk over a
//     single packed slot array — key, value and generation stamp share a
//     16-byte slot, so a probe touches one cache line where parallel
//     arrays would touch three.
//
// A slot is live only when its stamp equals the current generation, so
// stale entries from earlier trials terminate probes exactly like empty
// slots and never need clearing. The generation counter is 32-bit; on the
// (practically unreachable) wraparound the stamps are cleared once so a
// stale slot can never alias the new generation.
type angleTable struct {
	slots []atSlot
	cur   uint32
	mask  uint64
	live  int

	// tok, when non-nil, switches the table to Zobrist hashing: the key is
	// a packed pair of left-vertex ids and its hash is tok[hi]^tok[lo] —
	// two independent L1 loads and an XOR instead of mix64's serial
	// multiply chain. The kernel attaches the snapshot's per-vertex tokens
	// here so its manually inlined probe and the table's own probes (get,
	// put, grow) agree on slot positions.
	tok []uint64
}

// atSlot is one packed table slot: the canonical pair key, the pool index
// it maps to, and the generation stamp that says whether the mapping is
// current. 16 bytes, so probes stay within a cache line.
type atSlot struct {
	key uint64
	val int32
	gen uint32
}

// minAngleTableCap keeps the table from degenerate tiny sizes; growth is
// by doubling.
const minAngleTableCap = 64

func newAngleTable(hint int) angleTable {
	capacity := minAngleTableCap
	for capacity < 2*hint {
		capacity *= 2
	}
	return angleTable{
		slots: make([]atSlot, capacity),
		cur:   1,
		mask:  uint64(capacity - 1),
	}
}

// mix64 is the splitmix64 finalizer, a full-avalanche hash for the packed
// endpoint-pair key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash maps a key to its home slot. Every probe in this file (and the
// kernel's manually inlined copy in os.go) must route through the same
// function, or grow() would rehash live entries to positions later probes
// cannot find.
func (t *angleTable) hash(key uint64) uint64 {
	if t.tok != nil {
		return (t.tok[key>>32] ^ t.tok[key&0xffffffff]) & t.mask
	}
	return mix64(key) & t.mask
}

// reset invalidates every entry in O(1) by advancing the generation.
func (t *angleTable) reset() {
	t.live = 0
	t.cur++
	if t.cur == 0 { // generation wrapped: stale stamps could alias
		for i := range t.slots {
			t.slots[i].gen = 0
		}
		t.cur = 1
	}
}

// get returns the pool index stored under key in the current generation.
func (t *angleTable) get(key uint64) (int32, bool) {
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if s.gen != t.cur {
			return 0, false
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & t.mask
	}
}

// getOrPut returns the value stored under key in the current generation,
// or inserts val and returns it. One probe walk serves both the hit and
// the miss (the kernel's dominant operation is a miss — each endpoint
// pair's first angle — so re-probing after a failed get would double the
// hash work).
func (t *angleTable) getOrPut(key uint64, val int32) (int32, bool) {
	i := t.hash(key)
	for {
		s := &t.slots[i]
		if s.gen != t.cur {
			break
		}
		if s.key == key {
			return s.val, true
		}
		i = (i + 1) & t.mask
	}
	if (t.live+1)*4 > len(t.slots)*3 {
		t.grow()
		i = t.hash(key)
		for t.slots[i].gen == t.cur {
			i = (i + 1) & t.mask
		}
	}
	t.slots[i] = atSlot{key: key, val: val, gen: t.cur}
	t.live++
	return val, false
}

// put inserts key→val. The key must not already be present this
// generation (callers get() first). Growth keeps the load factor below
// 3/4 so probes stay short.
func (t *angleTable) put(key uint64, val int32) {
	if (t.live+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	i := t.hash(key)
	for t.slots[i].gen == t.cur {
		i = (i + 1) & t.mask
	}
	t.slots[i] = atSlot{key: key, val: val, gen: t.cur}
	t.live++
}

// grow doubles the capacity, re-inserting only the current generation's
// live entries (older generations are dead by construction).
func (t *angleTable) grow() {
	old, oldCur := t.slots, t.cur
	capacity := 2 * len(old)
	t.slots = make([]atSlot, capacity)
	t.mask = uint64(capacity - 1)
	t.cur = 1
	for _, s := range old {
		if s.gen != oldCur {
			continue
		}
		i := t.hash(s.key)
		for t.slots[i].gen == t.cur {
			i = (i + 1) & t.mask
		}
		t.slots[i] = atSlot{key: s.key, val: s.val, gen: t.cur}
	}
}
