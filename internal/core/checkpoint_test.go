package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// sampleCheckpoints returns one valid checkpoint per payload kind.
func sampleCheckpoints() map[string]*Checkpoint {
	counts := []ButterflyCount{
		{B: butterfly.New(0, 1, 0, 1), Count: 12, Weight: 10},
		{B: butterfly.New(0, 1, 0, 2), Count: 3, Weight: 7},
		{B: butterfly.New(0, 1, 1, 2), Count: 7, Weight: 7},
	}
	return map[string]*Checkpoint{
		"mc-vp": {
			Method: "mc-vp", Seed: 42, Trials: 100, Done: 12,
			GraphCRC: 0xdeadbeef, Counts: counts,
		},
		"os": {
			Method: "os", Seed: 7, Trials: 5000, Done: 4999,
			GraphCRC: 1, Counts: counts[:1],
		},
		"ols-prepare": {
			Method: "ols", Seed: 9, Trials: 20000, PrepTrials: 100,
			Prepare: true, Done: 55, GraphCRC: 3, Counts: counts,
		},
		"ols": {
			Method: "ols", Seed: 9, Trials: 200, PrepTrials: 100,
			Done: 150, GraphCRC: 3, CandCounts: []int64{150, 0, 75},
		},
		"ols-kl": {
			Method: "ols-kl", Seed: 9, Trials: 200, PrepTrials: 100, Mu: 0.05,
			Done: 2, GraphCRC: 3,
			CandProbs:  []float64{0.25, 0.125, 0},
			CandTrials: []int64{200, 400, 0},
		},
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	for name, ck := range sampleCheckpoints() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ck.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, ck) {
				t.Fatalf("roundtrip mismatch:\ngot  %+v\nwant %+v", got, ck)
			}
		})
	}
}

func TestCheckpointFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ck := sampleCheckpoints()["ols-kl"]
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("file roundtrip mismatch:\ngot  %+v\nwant %+v", got, ck)
	}
	// The atomic save must not leave its temporary file behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temporary file left behind: %s", e.Name())
		}
	}
}

// TestCheckpointDecodeRejectsDamage covers the robustness contract: every
// truncation must error, and so must single-byte corruption anywhere (the
// trailing CRC catches whatever field validation lets through).
func TestCheckpointDecodeRejectsDamage(t *testing.T) {
	ck := sampleCheckpoints()["mc-vp"]
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeCheckpoint(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(raw))
		}
	}
	for i := range raw {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			if _, err := DecodeCheckpoint(bytes.NewReader(mut)); err == nil {
				t.Fatalf("corrupting byte %d (xor %#x) decoded successfully", i, flip)
			}
		}
	}
}

func TestCheckpointDecodeRejectsVersionSkew(t *testing.T) {
	ck := sampleCheckpoints()["os"]
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Bump the version field (bytes 8..11) and re-stamp the trailing CRC so
	// only the version mismatch can be the reason for rejection.
	raw[8] = 2
	restampCRC(raw)
	_, err := DecodeCheckpoint(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skewed checkpoint: err = %v, want version error", err)
	}
}

// restampCRC rewrites the trailing IEEE CRC-32 to match the (possibly
// mutated) preceding bytes.
func restampCRC(raw []byte) {
	sum := crc32.ChecksumIEEE(raw[:len(raw)-4])
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], sum)
}

// TestCheckpointEncodeRejectsInvalid ensures structurally inconsistent
// checkpoints cannot be serialized in the first place.
func TestCheckpointEncodeRejectsInvalid(t *testing.T) {
	bad := []*Checkpoint{
		{Method: "bogus", Trials: 10, Done: 1},
		{Method: "os", Trials: 10, Done: 11},                                                                    // done past target
		{Method: "os", Trials: 10, Done: -1},                                                                    // negative prefix
		{Method: "os", Trials: 10, Done: 2, Counts: []ButterflyCount{{Count: 5}}},                               // count > done
		{Method: "ols", Trials: 10, PrepTrials: 5, Done: 2, CandCounts: []int64{-1}},                            // negative count
		{Method: "ols-kl", Trials: 10, PrepTrials: 5, Done: 1, CandProbs: []float64{2}, CandTrials: []int64{1}}, // prob > 1
		{Method: "os", Trials: 10, Done: 2, CandCounts: []int64{1}},                                             // wrong payload for method
	}
	for i, ck := range bad {
		var buf bytes.Buffer
		if err := ck.Encode(&buf); err == nil {
			t.Errorf("case %d: invalid checkpoint encoded successfully: %+v", i, ck)
		}
	}
}

// FuzzCheckpointDecode hammers the decoder with arbitrary bytes: it must
// error or succeed, never panic, and any checkpoint it accepts must
// re-encode to an equal value (decode∘encode is the identity on the
// accepted set).
func FuzzCheckpointDecode(f *testing.F) {
	for _, ck := range sampleCheckpoints() {
		var buf bytes.Buffer
		if err := ck.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
		mut := append([]byte(nil), buf.Bytes()...)
		if len(mut) > 20 {
			mut[20] ^= 0x40
		}
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("MPMBCKP1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := ck.Encode(&buf); err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		back, err := DecodeCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
		}
		if !reflect.DeepEqual(back, ck) {
			t.Fatalf("re-encode changed the checkpoint:\nfirst  %+v\nsecond %+v", ck, back)
		}
	})
}
