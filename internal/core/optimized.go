package core

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// EstimatorState reports how far an estimator ran, for partial results and
// checkpointing. An estimator fills the options' State pointer (when
// non-nil) whether the run completed or was cancelled.
type EstimatorState struct {
	// Partial is true when the run was cut short by the Interrupt hook.
	Partial bool
	// Done is the completed prefix: trials for the optimized estimator,
	// fully priced candidates for Karp-Luby.
	Done int
	// Counts is the optimized estimator's per-candidate hit tally at stop.
	Counts []int64
	// Probs / Trials are Karp-Luby's per-candidate estimates and executed
	// trial counts (entries at index >= Done are unpriced).
	Probs  []float64
	Trials []int
}

// OptimizedOptions configures the paper's optimized probability estimator
// (Algorithm 5), the sampling phase of OLS.
type OptimizedOptions struct {
	// Trials is N_op, the number of shared sampling trials. Must be > 0.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// EagerSampling samples every candidate-relevant edge at the start of
	// each trial instead of lazily on first touch. Ablation only; the
	// estimate distribution is identical.
	EagerSampling bool
	// DisableEarlyBreak keeps scanning candidates after the running
	// maximum weight exceeds the remaining candidates' weights (the
	// results are unchanged because such candidates can never join S_MB;
	// they are simply tested and discarded). Ablation only.
	DisableEarlyBreak bool
	// OnTrial, if non-nil, receives after each trial the 1-based trial
	// index and the candidate indices credited in that trial (the trial's
	// S_MB restricted to C_MB). The slice is reused; copy to retain.
	OnTrial func(trial int, hits []int)
	// Interrupt, if non-nil, is polled between trials; when it returns
	// true the run stops and the returned probabilities are normalized
	// over the completed trials (State reports how many). Parallel runners
	// poll the hook concurrently from every worker; it must be safe for
	// concurrent use there.
	Interrupt func() bool
	// State, if non-nil, receives the run's completion state — partial
	// flag, completed trials, and the raw counts needed to checkpoint.
	State *EstimatorState
	// ResumeCounts / ResumeDone seed the accumulator from an earlier
	// cancelled run: counts indexed like the candidate list, with
	// ResumeDone trials already folded in. The run continues at trial
	// ResumeDone+1 and finishes bit-identically to an uninterrupted one.
	ResumeCounts []int64
	ResumeDone   int
	// Probe, if non-nil, receives run telemetry: trial counts, the
	// candidate scanned/pruned split of the early break (Algorithm 3
	// lines 5-6), and running leader estimates. Nil costs one predictable
	// branch per trial.
	Probe *telemetry.Probe
	// Executor, if non-nil, replaces EstimateOptimizedParallel's default
	// in-process worker pool with an explicit TrialExecutor. Spec then
	// carries the run-level identity remote executors need; both are
	// ignored by the sequential EstimateOptimized.
	Executor TrialExecutor
	Spec     ExecSpec
}

// EstimateOptimized runs Algorithm 5 over a weight-sorted candidate set
// and returns P̂(B_i) for every candidate, indexed like c.List.
//
// All candidates share each trial: candidates are visited in descending
// weight order, each candidate's four edges are sampled lazily (an edge is
// Bernoulli-sampled at most once per trial no matter how many candidates
// contain it), the first existing candidate fixes w_max, candidates tied
// at w_max keep being collected, and the scan stops at the first candidate
// lighter than w_max. Each trial therefore costs O(|C_MB|) in the worst
// case and typically far less (Lemma VI.3).
func EstimateOptimized(c *Candidates, opt OptimizedOptions) ([]float64, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: optimized estimator requires Trials > 0, got %d", opt.Trials)
	}
	n := len(c.List)
	counts, start, err := optimizedResumeCounts(n, opt)
	if err != nil {
		return nil, err
	}
	g := c.G
	// Per-trial lazy sampling state over backbone edge ids. Presence draws
	// go through precomputed Bernoulli thresholds (one raw generator word
	// compared against thresh[id], draw-for-draw identical to
	// randx.Bernoulli) and the per-trial stream is derived in place, so the
	// steady-state trial allocates nothing.
	numE := g.NumEdges()
	stamp := make([]int32, numE)
	val := make([]bool, numE)
	thresh := edgeThresholds(g)
	var cur int32
	var rng randx.RNG

	// Union of candidate edges, for the eager ablation.
	var relevant []int
	if opt.EagerSampling {
		seen := make(map[int]struct{})
		for _, cand := range c.List {
			for _, id := range cand.Edges {
				if _, ok := seen[int(id)]; !ok {
					seen[int(id)] = struct{}{}
					relevant = append(relevant, int(id))
				}
			}
		}
	}

	root := randx.New(opt.Seed)
	var hits []int
	meter := newTrialMeter(opt.Probe, 0, n, true)
	for trial := start; trial <= opt.Trials; trial++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			meter.flush(trial - 1)
			return optimizedFinish(counts, trial-1, opt, true), nil
		}
		root.DeriveInto(uint64(trial), &rng)
		cur++
		if opt.EagerSampling {
			for _, id := range relevant {
				stamp[id] = cur
				val[id] = rng.BernoulliThresholded(thresh[id])
			}
		}
		wMax := math.Inf(-1)
		hits = hits[:0]
		examined := n
		for k := 0; k < n; k++ { // line 4: B_k in weight order
			cand := &c.List[k]
			if cand.Weight < wMax { // line 5
				if opt.DisableEarlyBreak {
					continue
				}
				examined = k
				break // line 6
			}
			exists := true
			for _, id := range cand.Edges { // line 7: lazy sampling
				if stamp[id] != cur {
					stamp[id] = cur
					val[id] = rng.BernoulliThresholded(thresh[id])
				}
				if !val[id] {
					exists = false
					break
				}
			}
			if exists { // lines 8–10
				counts[k]++
				hits = append(hits, k)
				wMax = cand.Weight
			}
		}
		if opt.OnTrial != nil {
			opt.OnTrial(trial, hits)
		}
		if meter.observe(trial, examined, false, len(hits) > 0) {
			probeOptimizedLeader(opt.Probe, c, counts, trial)
		}
	}
	meter.flush(opt.Trials)
	return optimizedFinish(counts, opt.Trials, opt, false), nil
}

// probeOptimizedLeader publishes the running argmax of the optimized
// estimator's count vector. Called at flush cadence only, so the O(n)
// scan is amortized over probeFlushEvery trials.
func probeOptimizedLeader(p *telemetry.Probe, c *Candidates, counts []int64, trial int) {
	if p == nil || len(counts) == 0 {
		return
	}
	lead := 0
	for k := 1; k < len(counts); k++ {
		if counts[k] > counts[lead] {
			lead = k
		}
	}
	probeEstimate(p, 0, counts[lead], trial, c.List[lead].B, c.List[lead].Weight)
}

// optimizedResumeCounts validates resume options and returns the starting
// accumulator plus the first trial to run.
func optimizedResumeCounts(n int, opt OptimizedOptions) ([]int64, int, error) {
	if opt.ResumeDone < 0 || opt.ResumeDone > opt.Trials {
		return nil, 0, fmt.Errorf("core: optimized resume at trial %d outside [0,%d]", opt.ResumeDone, opt.Trials)
	}
	counts := make([]int64, n)
	if opt.ResumeCounts != nil {
		if len(opt.ResumeCounts) != n {
			return nil, 0, fmt.Errorf("core: optimized resume has %d candidate counts, want %d", len(opt.ResumeCounts), n)
		}
		copy(counts, opt.ResumeCounts)
	} else if opt.ResumeDone != 0 {
		return nil, 0, fmt.Errorf("core: optimized resume at trial %d without counts", opt.ResumeDone)
	}
	return counts, opt.ResumeDone + 1, nil
}

// optimizedFinish converts counts into probabilities normalized over the
// done-trial prefix (lines 11–12) and reports the run state.
func optimizedFinish(counts []int64, done int, opt OptimizedOptions, partial bool) []float64 {
	probs := make([]float64, len(counts))
	if done > 0 {
		for i, cnt := range counts {
			probs[i] = float64(cnt) / float64(done)
		}
	}
	if opt.State != nil {
		*opt.State = EstimatorState{Partial: partial, Done: done, Counts: counts}
	}
	return probs
}
