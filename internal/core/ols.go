package core

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// OLSOptions configures Ordering-Listing Sampling (Algorithm 3).
type OLSOptions struct {
	// PrepTrials is N_os for the preparing phase (paper default: 100).
	PrepTrials int
	// Trials is the sampling-phase trial number: N_op for the optimized
	// estimator, or the BaseTrials reference for Karp-Luby.
	Trials int
	// Seed makes the run reproducible; the preparing and sampling phases
	// derive independent streams from it.
	Seed uint64
	// UseKarpLuby selects Algorithm 4 for the sampling phase instead of
	// the paper's optimized Algorithm 5, i.e. the OLS-KL configuration.
	UseKarpLuby bool
	// KL carries Karp-Luby-specific knobs. BaseTrials, Seed, Interrupt and
	// the resume/state plumbing are overwritten from this struct's fields.
	KL KLOptions
	// Optimized carries optimized-estimator knobs. Trials, Seed, Interrupt
	// and the resume/state plumbing are overwritten likewise.
	Optimized OptimizedOptions
	// OS configures the preparing phase's Ordering Sampling pruning
	// behaviour (its Trials, Seed, OnTrial and Interrupt fields are
	// ignored; cancellation uses the top-level Interrupt).
	OS OSOptions
	// Interrupt, if non-nil, is polled between preparing trials and inside
	// the sampling phase; when it returns true the run stops and returns a
	// partial Result with a resumable Checkpoint. Cancellation during the
	// preparing phase yields a prepare-phase checkpoint and no estimates
	// yet; during the sampling phase, estimates over the completed prefix.
	// Parallel runners poll the hook concurrently from every worker; it
	// must be safe for concurrent use there.
	Interrupt func() bool
	// Resume continues a cancelled run from its checkpoint. The options
	// must match the checkpointed run (method, seed, trial targets, Mu,
	// graph); the finished Result is bit-identical to an uninterrupted
	// run. Note the checkpoint does not record ablation knobs (the OS
	// pruning flags, KL.MaxTrials): resume them with the same values.
	Resume *Checkpoint
	// Probe, if non-nil, receives run telemetry from both phases: the
	// preparing phase flushes under the "prep" phase label (with candidate
	// promotions), the sampling phase under "sample". Nil is free.
	Probe *telemetry.Probe
	// Executor, if non-nil, runs the SAMPLING phase through an explicit
	// TrialExecutor instead of the in-process worker pool (the preparing
	// phase always runs locally: it is short, and its candidate set is
	// what remote workers rebuild deterministically from the seed).
	Executor TrialExecutor
}

// DefaultOLSOptions mirrors the paper's experimental defaults (Section
// VIII-B, Table IV): 100 preparing trials and 2×10⁴ sampling trials,
// matching μ=0.05, ε=δ=0.1 under Theorem IV.1.
func DefaultOLSOptions() OLSOptions {
	return OLSOptions{PrepTrials: 100, Trials: 20000}
}

func (o OLSOptions) method() string {
	if o.UseKarpLuby {
		return "ols-kl"
	}
	return "ols"
}

func (o OLSOptions) mu() float64 {
	if o.UseKarpLuby {
		return o.KL.Mu
	}
	return 0
}

// OLS is Ordering-Listing Sampling (Section VI, Algorithm 3). The
// preparing phase (lines 2–4) runs Ordering Sampling for PrepTrials
// rounds, unioning each round's maximum butterfly set into the candidate
// set C_MB; the sampling phase (line 5) then estimates P(B) for the
// candidates only — with the optimized shared-trial estimator (Algorithm
// 5) or, when UseKarpLuby is set, the Karp-Luby estimator (Algorithm 4).
//
// The returned Result contains an estimate for every candidate (zeros
// included) and reports both phases' trial counts. A graph that produced
// no candidate at all (no butterfly observed in any preparing trial)
// yields an empty Result rather than an error.
func OLS(g *bigraph.Graph, opt OLSOptions) (*Result, error) {
	return olsRun(g, opt, 0)
}

// OLSParallel is OLS with the sampling phase distributed over workers
// goroutines (0 means GOMAXPROCS); the short preparing phase stays
// sequential. Results are bit-identical to OLS with the same options.
func OLSParallel(g *bigraph.Graph, opt OLSOptions, workers int) (*Result, error) {
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	return olsRun(g, opt, workers)
}

// olsRun executes both OLS phases; workers 0 means a fully sequential
// sampling phase.
func olsRun(g *bigraph.Graph, opt OLSOptions, workers int) (*Result, error) {
	method := opt.method()
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck(method, opt.Seed, opt.Trials, opt.PrepTrials, opt.mu(), g); err != nil {
			return nil, err
		}
	}
	prepOpt := opt.OS
	prepOpt.Interrupt = opt.Interrupt
	prepOpt.Probe = opt.Probe // prepareCandidates rebinds it to the prep phase
	var resumeCounts []ButterflyCount
	start := 0
	if opt.Resume != nil && opt.Resume.Prepare {
		resumeCounts = opt.Resume.Counts
		start = opt.Resume.Done
	}
	cands, interrupted, err := prepareCandidates(g, opt.PrepTrials, opt.Seed, prepOpt, resumeCounts, start)
	if err != nil {
		return nil, err
	}
	if interrupted {
		return prepPartialResult(method, g, opt, cands), nil
	}
	samplingResume := opt.Resume
	if samplingResume != nil && samplingResume.Prepare {
		samplingResume = nil // the prepare checkpoint is consumed; sampling starts fresh
	}
	return olsSampling(cands, opt, workers, samplingResume)
}

// prepPartialResult wraps a cancelled preparing phase: no estimates yet,
// just the resumable hit tallies.
func prepPartialResult(method string, g *bigraph.Graph, opt OLSOptions, cands *Candidates) *Result {
	return &Result{
		Method:     method,
		Trials:     opt.Trials,
		PrepTrials: opt.PrepTrials,
		Partial:    true,
		TrialsDone: 0,
		Checkpoint: &Checkpoint{
			Method:     method,
			Seed:       opt.Seed,
			Trials:     opt.Trials,
			PrepTrials: opt.PrepTrials,
			Mu:         opt.mu(),
			GraphCRC:   g.Checksum(),
			Prepare:    true,
			Done:       cands.PrepDone,
			Counts:     cands.prepSnapshot(),
		},
	}
}

// OLSSamplingPhase runs only the sampling phase of Algorithm 3 over an
// already-prepared candidate set. The benchmark harness uses this to time
// the two phases separately (Fig. 8) and to sweep trial counts without
// re-listing candidates; the Searcher uses it to reuse cached candidates.
// opt.Resume must be nil or a sampling-phase checkpoint (prepare-phase
// checkpoints are consumed by OLS itself).
func OLSSamplingPhase(cands *Candidates, opt OLSOptions) (*Result, error) {
	return OLSSamplingPhaseParallel(cands, opt, 0)
}

// OLSSamplingPhaseParallel is OLSSamplingPhase with the estimator trials
// (or, for Karp-Luby, candidates) distributed over workers goroutines
// (0 means sequential). Results are bit-identical to the sequential phase.
func OLSSamplingPhaseParallel(cands *Candidates, opt OLSOptions, workers int) (*Result, error) {
	resume := opt.Resume
	if resume != nil {
		if err := resume.resumeCheck(opt.method(), opt.Seed, opt.Trials, opt.PrepTrials, opt.mu(), cands.G); err != nil {
			return nil, err
		}
		if resume.Prepare {
			return nil, fmt.Errorf("core: checkpoint is from the preparing phase; resume through OLS, not the sampling phase")
		}
	}
	return olsSampling(cands, opt, workers, resume)
}

// olsSampling prices the candidates and assembles the Result, threading
// cancellation, resume state, and partial-result bookkeeping through the
// selected estimator.
func olsSampling(cands *Candidates, opt OLSOptions, workers int, resume *Checkpoint) (*Result, error) {
	method := opt.method()
	g := cands.G
	if cands.Len() == 0 {
		return &Result{Method: method, Trials: opt.Trials, TrialsDone: opt.Trials, PrepTrials: opt.PrepTrials}, nil
	}
	// The sampling phase must not share a random stream with the
	// preparing phase; offset the seed deterministically.
	sampleSeed := opt.Seed ^ 0xa5a5a5a5deadbeef
	// The run-level identity an explicit executor may need to rebuild the
	// candidate set remotely: the RUN seed (the phase seed is derived from
	// it) plus the trial targets and Mu the checkpoint layer validates.
	spec := ExecSpec{Method: method, Seed: opt.Seed, Trials: opt.Trials, PrepTrials: opt.PrepTrials, Mu: opt.mu()}
	var st EstimatorState
	var probs []float64
	var err error
	if opt.UseKarpLuby {
		kl := opt.KL
		kl.BaseTrials = opt.Trials
		kl.Seed = sampleSeed
		kl.Interrupt = opt.Interrupt
		kl.State = &st
		kl.Probe = opt.Probe
		kl.Executor = opt.Executor
		kl.Spec = spec
		if resume != nil {
			if len(resume.CandProbs) != cands.Len() {
				return nil, fmt.Errorf("core: checkpoint has %d candidates, preparing phase produced %d (options mismatch?)", len(resume.CandProbs), cands.Len())
			}
			kl.ResumeProbs = resume.CandProbs
			kl.ResumeTrials = resume.CandTrials
			kl.ResumeDone = resume.Done
		}
		if workers > 1 || opt.Executor != nil {
			probs, err = EstimateKarpLubyParallel(cands, kl, workers)
		} else {
			probs, err = EstimateKarpLuby(cands, kl)
		}
	} else {
		op := opt.Optimized
		op.Trials = opt.Trials
		op.Seed = sampleSeed
		op.Interrupt = opt.Interrupt
		op.State = &st
		op.Probe = opt.Probe
		op.Executor = opt.Executor
		op.Spec = spec
		if resume != nil {
			if len(resume.CandCounts) != cands.Len() {
				return nil, fmt.Errorf("core: checkpoint has %d candidates, preparing phase produced %d (options mismatch?)", len(resume.CandCounts), cands.Len())
			}
			op.ResumeCounts = resume.CandCounts
			op.ResumeDone = resume.Done
		}
		if workers > 1 || opt.Executor != nil {
			probs, err = EstimateOptimizedParallel(cands, op, workers)
		} else {
			probs, err = EstimateOptimized(cands, op)
		}
	}
	if err != nil {
		return nil, err
	}
	res := cands.result(method, probs, opt.Trials, opt.PrepTrials)
	res.TrialsDone = opt.Trials
	if st.Partial {
		res.Partial = true
		res.TrialsDone = st.Done
		ck := &Checkpoint{
			Method:     method,
			Seed:       opt.Seed,
			Trials:     opt.Trials,
			PrepTrials: opt.PrepTrials,
			Mu:         opt.mu(),
			GraphCRC:   g.Checksum(),
			Done:       st.Done,
		}
		if opt.UseKarpLuby {
			ck.CandProbs = st.Probs
			ck.CandTrials = make([]int64, len(st.Trials))
			for i, t := range st.Trials {
				ck.CandTrials[i] = int64(t)
			}
		} else {
			ck.CandCounts = st.Counts
		}
		res.Checkpoint = ck
	}
	probeFinish(opt.Probe, res)
	return res, nil
}
