package core

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// OLSOptions configures Ordering-Listing Sampling (Algorithm 3).
type OLSOptions struct {
	// PrepTrials is N_os for the preparing phase (paper default: 100).
	PrepTrials int
	// Trials is the sampling-phase trial number: N_op for the optimized
	// estimator, or the BaseTrials reference for Karp-Luby.
	Trials int
	// Seed makes the run reproducible; the preparing and sampling phases
	// derive independent streams from it.
	Seed uint64
	// UseKarpLuby selects Algorithm 4 for the sampling phase instead of
	// the paper's optimized Algorithm 5, i.e. the OLS-KL configuration.
	UseKarpLuby bool
	// KL carries Karp-Luby-specific knobs. BaseTrials and Seed are
	// overwritten from Trials and Seed.
	KL KLOptions
	// Optimized carries optimized-estimator knobs. Trials and Seed are
	// overwritten from Trials and Seed.
	Optimized OptimizedOptions
	// OS configures the preparing phase's Ordering Sampling pruning
	// behaviour (its Trials, Seed and OnTrial fields are ignored).
	OS OSOptions
}

// DefaultOLSOptions mirrors the paper's experimental defaults (Section
// VIII-B, Table IV): 100 preparing trials and 2×10⁴ sampling trials,
// matching μ=0.05, ε=δ=0.1 under Theorem IV.1.
func DefaultOLSOptions() OLSOptions {
	return OLSOptions{PrepTrials: 100, Trials: 20000}
}

// OLS is Ordering-Listing Sampling (Section VI, Algorithm 3). The
// preparing phase (lines 2–4) runs Ordering Sampling for PrepTrials
// rounds, unioning each round's maximum butterfly set into the candidate
// set C_MB; the sampling phase (line 5) then estimates P(B) for the
// candidates only — with the optimized shared-trial estimator (Algorithm
// 5) or, when UseKarpLuby is set, the Karp-Luby estimator (Algorithm 4).
//
// The returned Result contains an estimate for every candidate (zeros
// included) and reports both phases' trial counts. A graph that produced
// no candidate at all (no butterfly observed in any preparing trial)
// yields an empty Result rather than an error.
func OLS(g *bigraph.Graph, opt OLSOptions) (*Result, error) {
	cands, err := PrepareCandidates(g, opt.PrepTrials, opt.Seed, opt.OS)
	if err != nil {
		return nil, err
	}
	return OLSSamplingPhase(cands, opt)
}

// OLSSamplingPhase runs only the sampling phase of Algorithm 3 over an
// already-prepared candidate set. The benchmark harness uses this to time
// the two phases separately (Fig. 8) and to sweep trial counts without
// re-listing candidates.
func OLSSamplingPhase(cands *Candidates, opt OLSOptions) (*Result, error) {
	method := "ols"
	if opt.UseKarpLuby {
		method = "ols-kl"
	}
	if cands.Len() == 0 {
		return &Result{Method: method, Trials: opt.Trials, PrepTrials: opt.PrepTrials}, nil
	}
	// The sampling phase must not share a random stream with the
	// preparing phase; offset the seed deterministically.
	sampleSeed := opt.Seed ^ 0xa5a5a5a5deadbeef
	var probs []float64
	var err error
	if opt.UseKarpLuby {
		kl := opt.KL
		kl.BaseTrials = opt.Trials
		kl.Seed = sampleSeed
		probs, err = EstimateKarpLuby(cands, kl)
	} else {
		op := opt.Optimized
		op.Trials = opt.Trials
		op.Seed = sampleSeed
		probs, err = EstimateOptimized(cands, op)
	}
	if err != nil {
		return nil, err
	}
	return cands.result(method, probs, opt.Trials, opt.PrepTrials), nil
}
