package core

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// These tests pin the batched-RNG draw schedule of the v2 kernel
// (snapshot.go: wordOf/ndraws, os.go: the block mask loop) against the
// frozen seed implementation at exactly the places a positional schedule
// can break: deterministic edges (p ∈ {0, 1} consume no draw), edge
// counts straddling the rngBlock boundary, and the calibrated prefix
// fallback.

// TestBatchRNGDeterministicBoundaries drives the kernel across
// probability patterns dominated by the p ∈ {0, 1} boundaries — where
// randx.Bernoulli consumes no generator word, so any off-by-one in the
// per-block draw schedule shifts every later draw and changes Results.
// The full Result must stay bit-identical to the frozen osref.go seed
// implementation.
func TestBatchRNGDeterministicBoundaries(t *testing.T) {
	cases := []struct {
		name string
		p    func(r *rand.Rand, i int) float64
	}{
		{"all_absent", func(r *rand.Rand, i int) float64 { return 0 }},
		{"all_present", func(r *rand.Rand, i int) float64 { return 1 }},
		{"alternating_01", func(r *rand.Rand, i int) float64 { return float64(i % 2) }},
		{"present_plus_random", func(r *rand.Rand, i int) float64 {
			if i%3 == 0 {
				return 1
			}
			return 0.2 + 0.6*r.Float64()
		}},
		{"absent_plus_random", func(r *rand.Rand, i int) float64 {
			if i%3 == 0 {
				return 0
			}
			return 0.2 + 0.6*r.Float64()
		}},
		{"boundary_heavy", func(r *rand.Rand, i int) float64 {
			switch x := r.Float64(); {
			case x < 0.4:
				return 0
			case x < 0.8:
				return 1
			default:
				return 0.1 + 0.8*r.Float64()
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(991))
			const numL, numR = 6, 5
			b := bigraph.NewBuilder(numL, numR)
			i := 0
			for u := 0; u < numL; u++ {
				for v := 0; v < numR; v++ {
					w := halfGrid[r.Intn(len(halfGrid))]
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, tc.p(r, i))
					i++
				}
			}
			g := b.Build()
			opt := OSOptions{Trials: 400, Seed: 77}
			ref, err := OSReference(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := OS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "batched RNG boundary "+tc.name, ref, got)
		})
	}
}

// TestBatchRNGBlockSizeEdgeCases sweeps edge counts that straddle the
// rngBlock=64 batching boundary (a final partial block, exactly one
// block, one block plus one edge, and multi-block counts) and requires
// bit-identical Results against the seed implementation. Probabilities
// come from probGrid, which includes the 0/1 endpoints, so partial
// blocks mix draw-consuming and deterministic positions.
func TestBatchRNGBlockSizeEdgeCases(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 130, 200} {
		r := rand.New(rand.NewSource(int64(1000 + n)))
		const numL, numR = 20, 10 // 200 possible pairs, enough for every n
		b := bigraph.NewBuilder(numL, numR)
		for i := 0; i < n; i++ {
			u, v := i%numL, (i/numL)%numR
			w := halfGrid[r.Intn(len(halfGrid))]
			p := probGrid[r.Intn(len(probGrid))]
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
		}
		g := b.Build()
		for _, seed := range []uint64{1, 42} {
			opt := OSOptions{Trials: 300, Seed: seed}
			ref, err := OSReference(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := OS(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "block-size edge case", ref, got)
		}
	}
}

// prefixVsFullTrials runs the same seeded trials through a kernel with a
// forced prefix boundary and one with the full scan, requiring identical
// stop positions and identical maximum sets trial for trial. The prefix
// crossing may only set the fellBack flag — it must never change where
// the scan stops or what it finds.
func prefixVsFullTrials(t *testing.T, g *bigraph.Graph, forcedPrefix, trials int) (fallbacks int) {
	t.Helper()
	full := newOSIndexFromSnapshot(g, OSOptions{}, newEdgeSnapshot(g))
	snapP := newEdgeSnapshot(g)
	snapP.prefixLen = forcedPrefix
	pref := newOSIndexFromSnapshot(g, OSOptions{}, snapP)
	rootA, rootB := randx.New(5), randx.New(5)
	var a, b butterfly.MaxSet
	for trial := 1; trial <= trials; trial++ {
		sA, fA := full.runTrialSeeded(rootA, uint64(trial), &a)
		sB, fB := pref.runTrialSeeded(rootB, uint64(trial), &b)
		if fA {
			t.Fatalf("trial %d: full-scan kernel reported a prefix fallback", trial)
		}
		if sA != sB {
			t.Fatalf("trial %d: scan stop differs: full %d, forced prefix %d", trial, sA, sB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: maximum sets differ:\nfull:   W=%v %v\nprefix: W=%v %v",
				trial, a.W, a.Set, b.W, b.Set)
		}
		if fB {
			fallbacks++
		}
	}
	return fallbacks
}

// TestPrefixFallbackExactness forces an absurdly short prefix (one
// rngBlock) on a corpus built so the Section V-B prune never stops the
// scan early — all weights equal, so w(e) + w̄ < w_max can never hold —
// which makes every trial cross the boundary and exercise the exact
// tail fallback.
func TestPrefixFallbackExactness(t *testing.T) {
	r := rand.New(rand.NewSource(313))
	const numL, numR, numE = 30, 10, 200
	b := bigraph.NewBuilder(numL, numR)
	seen := make(map[[2]int]bool)
	for added := 0; added < numE; {
		u, v := r.Intn(numL), r.Intn(numR)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 2, 0.5)
		added++
	}
	g := b.Build()
	const trials = 300
	fallbacks := prefixVsFullTrials(t, g, rngBlock, trials)
	if fallbacks == 0 {
		t.Fatal("no trial crossed the forced one-block prefix; the corpus does not exercise the fallback")
	}
}

// FuzzKernelVsSeed builds a small uncertain bipartite graph from raw
// fuzz bytes (weights on the exact-tie half grid, probabilities from the
// grid including the 0/1 endpoints) and cross-checks, per input: the v2
// kernel's full Result against the frozen seed implementation, and a
// forced-prefix kernel against the full scan trial for trial.
func FuzzKernelVsSeed(f *testing.F) {
	f.Add(uint64(1), []byte{0, 17, 34, 51, 68, 85, 102, 119, 136, 153})
	f.Add(uint64(9), []byte{255, 254, 3, 7, 11, 200, 100, 50})
	f.Add(uint64(42), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		if len(raw) == 0 {
			t.Skip()
		}
		if len(raw) > 25 {
			raw = raw[:25]
		}
		const numL, numR = 5, 5
		b := bigraph.NewBuilder(numL, numR)
		seen := make(map[int]bool)
		for i, by := range raw {
			slot := i % (numL * numR)
			if seen[slot] {
				continue
			}
			seen[slot] = true
			w := halfGrid[int(by)%len(halfGrid)]
			p := probGrid[int(by/16)%len(probGrid)]
			b.MustAddEdge(bigraph.VertexID(slot%numL), bigraph.VertexID(slot/numL), w, p)
		}
		g := b.Build()
		opt := OSOptions{Trials: 60, Seed: seed%1009 + 1}
		ref, err := OSReference(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := OS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "fuzz kernel vs seed", ref, got)
		// prefixLen=0 marks every trial as fallen back; the scan itself
		// must be untouched.
		prefixVsFullTrials(t, g, 0, 40)
	})
}
