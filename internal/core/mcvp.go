package core

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// MCVPOptions configures the Monte-Carlo with Vertex Priority baseline.
type MCVPOptions struct {
	// Trials is N_mc, the number of sampled possible worlds. Must be > 0.
	Trials int
	// Seed makes the run reproducible; per-trial streams are derived from
	// it, so results are independent of scheduling.
	Seed uint64
	// OnTrial, if non-nil, is invoked after every trial with the 1-based
	// trial index and that trial's maximum butterfly set (which may be
	// empty). The convergence experiments (Figs. 11–12) hook here. The
	// MaxSet is reused between trials; copy what must be retained.
	OnTrial func(trial int, sMB *butterfly.MaxSet)
	// Interrupt, if non-nil, is polled between trials and every few
	// thousand enumerated butterflies. When it returns true MCVP stops and
	// returns a partial Result over the completed trials (the current,
	// unfinished trial is discarded) with a resumable Checkpoint attached.
	// A single MC-VP trial enumerates every butterfly of a sampled world —
	// hundreds of millions on dense graphs — so long runs need a way out
	// mid-trial (the paper's MC-VP runs hit a 4-hour wall on the two large
	// datasets).
	Interrupt func() bool
	// Resume restores the accumulator from a checkpoint written by an
	// earlier cancelled run with identical options; the run continues at
	// trial Resume.Done+1 and the final Result is bit-identical to an
	// uninterrupted run.
	Resume *Checkpoint
	// CompletedTrials, if non-nil, receives the number of fully completed
	// trials (useful to extrapolate a per-trial lower bound after an
	// interrupt).
	CompletedTrials *int
	// Probe, if non-nil, receives run telemetry (trial counts and running
	// leader estimates; MC-VP has no ordered scan, so no prune split). Nil
	// costs one predictable branch per trial.
	Probe *telemetry.Probe
}

// MCVP is the baseline of Section IV (Algorithm 1): in each trial it
// samples a full possible world, enumerates every butterfly of that world
// with vertex-priority wedge generation (BFC-VP), accumulates the maximum
// weighted butterfly set S_MB, and credits each member with 1/N_mc
// probability mass.
func MCVP(g *bigraph.Graph, opt MCVPOptions) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: MCVP requires Trials > 0, got %d", opt.Trials)
	}
	order := g.PriorityOrder() // line 2 of Algorithm 1
	acc := newProbAccumulator()
	start := 1
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck("mc-vp", opt.Seed, opt.Trials, 0, 0, g); err != nil {
			return nil, err
		}
		acc = accumulatorFromCounts(opt.Resume.Counts)
		start = opt.Resume.Done + 1
	}
	root := randx.New(opt.Seed)
	world := possible.NewWorld(g.NumEdges())
	var sMB butterfly.MaxSet
	setCompleted := func(n int) {
		if opt.CompletedTrials != nil {
			*opt.CompletedTrials = n
		}
	}
	setCompleted(start - 1)
	meter := newTrialMeter(opt.Probe, 0, 0, false)
	for trial := start; trial <= opt.Trials; trial++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			meter.flush(trial - 1)
			res := acc.partialResult("mc-vp", g, opt.Seed, opt.Trials, trial-1)
			probeFinish(opt.Probe, res)
			return res, nil
		}
		rng := root.Derive(uint64(trial))
		possible.SampleInto(world, g, rng) // line 4
		sMB.Reset()
		interrupted := false
		enumerated := 0
		butterfly.ForEachInWorldVP(g, world, order, func(b butterfly.Butterfly, w float64) bool {
			sMB.Add(b, w) // lines 13–17
			enumerated++
			if enumerated%8192 == 0 && opt.Interrupt != nil && opt.Interrupt() {
				interrupted = true
				return false
			}
			return true
		})
		if interrupted {
			// The half-enumerated trial is discarded; the accumulator only
			// holds fully completed trials, so the prefix stays exact.
			meter.flush(trial - 1)
			res := acc.partialResult("mc-vp", g, opt.Seed, opt.Trials, trial-1)
			probeFinish(opt.Probe, res)
			return res, nil
		}
		hit := !sMB.Empty()
		if hit {
			acc.addMaxSet(&sMB) // lines 18–19
		}
		setCompleted(trial)
		if opt.OnTrial != nil {
			opt.OnTrial(trial, &sMB)
		}
		if meter.observe(trial, 0, false, hit) {
			probeEstimate(opt.Probe, 0, int64(acc.leadCount), trial, acc.leadB, acc.leadW)
		}
	}
	meter.flush(opt.Trials)
	res := acc.result("mc-vp", opt.Trials)
	probeFinish(opt.Probe, res)
	return res, nil
}
