package core

import (
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// TestTopKDisjoint exercises the vertex-disjoint top-k selection.
func TestTopKDisjoint(t *testing.T) {
	mk := func(u1, u2, v1, v2 uint32, p float64) Estimate {
		return Estimate{B: butterfly.New(u1, u2, v1, v2), Weight: 1, P: p}
	}
	res := &Result{Estimates: []Estimate{
		mk(0, 1, 0, 1, 0.9),
		mk(0, 2, 2, 3, 0.8), // shares u0 with #1
		mk(2, 3, 2, 3, 0.7), // disjoint from #1
		mk(4, 5, 4, 5, 0.6), // disjoint from everything before
		mk(6, 7, 4, 6, 0.5), // shares v4 with #4
	}}
	got := res.TopKDisjoint(10)
	if len(got) != 3 {
		t.Fatalf("selected %d butterflies, want 3: %+v", len(got), got)
	}
	want := []float64{0.9, 0.7, 0.6}
	for i, e := range got {
		if e.P != want[i] {
			t.Fatalf("selection %d has P=%v, want %v", i, e.P, want[i])
		}
	}
	if got := res.TopKDisjoint(2); len(got) != 2 {
		t.Fatalf("TopKDisjoint(2) returned %d", len(got))
	}
	if got := res.TopKDisjoint(0); got != nil {
		t.Fatalf("TopKDisjoint(0) = %v, want nil", got)
	}
}

// TestTopKDisjointSeparatesPartitions ensures left ids and right ids do
// not collide: a butterfly using left vertex 3 must not block one using
// right vertex 3.
func TestTopKDisjointSeparatesPartitions(t *testing.T) {
	res := &Result{Estimates: []Estimate{
		{B: butterfly.New(0, 1, 2, 3), P: 0.9},
		{B: butterfly.New(2, 3, 0, 1), P: 0.8}, // left {2,3} vs right {2,3} above
	}}
	got := res.TopKDisjoint(2)
	if len(got) != 2 {
		t.Fatalf("partition collision: selected %d, want 2", len(got))
	}
}

// TestResultLookupMissing covers the not-found path.
func TestResultLookupMissing(t *testing.T) {
	res := &Result{Estimates: []Estimate{{B: butterfly.New(0, 1, 0, 1), P: 0.5}}}
	if _, ok := res.Lookup(butterfly.New(5, 6, 5, 6)); ok {
		t.Fatal("Lookup found a missing butterfly")
	}
}

// TestConfidenceInterval checks the Wilson interval's basic guarantees:
// it contains the point estimate, tightens with more trials, and covers
// the exact value on the running example.
func TestConfidenceInterval(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := exact.Best()

	res, err := OS(g, OSOptions{Trials: 20000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := res.ConfidenceInterval(best.B, 2.58)
	if !ok {
		t.Fatal("no interval for the MPMB")
	}
	est, _ := res.Lookup(best.B)
	if lo > est.P || hi < est.P {
		t.Fatalf("interval [%v, %v] excludes the estimate %v", lo, hi, est.P)
	}
	if lo > best.P || hi < best.P {
		t.Fatalf("99%% interval [%v, %v] excludes the exact value %v", lo, hi, best.P)
	}

	small, err := OS(g, OSOptions{Trials: 500, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	slo, shi, ok := small.ConfidenceInterval(best.B, 2.58)
	if !ok {
		t.Fatal("no interval at 500 trials")
	}
	if shi-slo <= hi-lo {
		t.Fatalf("more trials did not tighten the interval: %v vs %v", shi-slo, hi-lo)
	}

	// Exact results degenerate to a point.
	elo, ehi, ok := exact.ConfidenceInterval(best.B, 1.96)
	if !ok || elo != best.P || ehi != best.P {
		t.Fatalf("exact interval = [%v, %v], want point %v", elo, ehi, best.P)
	}

	// Unknown butterfly, bad z, and KL method are rejected.
	if _, _, ok := res.ConfidenceInterval(butterfly.New(7, 8, 7, 8), 1.96); ok {
		t.Fatal("interval for an absent butterfly")
	}
	if _, _, ok := res.ConfidenceInterval(best.B, 0); ok {
		t.Fatal("interval with z=0")
	}
	klRes := &Result{Method: "ols-kl", Trials: 100, Estimates: res.Estimates}
	if _, _, ok := klRes.ConfidenceInterval(best.B, 1.96); ok {
		t.Fatal("interval for a non-binomial method")
	}
}
