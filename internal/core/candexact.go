package core

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// maxRelevantEdges caps the exact per-candidate enumeration: the union of
// competitor diff edges is enumerated exhaustively.
const maxRelevantEdges = 24

// ExactCandidateProbs computes, for every candidate B_i, the exact value
// of
//
//	Pr[E(B_i)] · Pr[ no j < L(i) with E(B_j \ B_i) ]
//
// — the probability that B_i exists and no strictly heavier *candidate*
// exists. When the candidate list contains every backbone butterfly this
// equals the true P(B_i) (it is the closed form behind Lemma VI.5's
// derivation); for a truncated C_MB it is exactly the quantity both OLS
// sampling-phase estimators (Algorithms 4 and 5) converge to, which makes
// it a noise-free oracle for estimator tests and for quantifying the
// Lemma VI.5 truncation bias.
//
// Each candidate's computation enumerates the union of its competitors'
// diff edges; candidates whose union exceeds 24 edges return an error
// (use the sampling estimators there — that blow-up is the point of the
// paper).
func ExactCandidateProbs(c *Candidates) ([]float64, error) {
	g := c.G
	probs := make([]float64, c.Len())
	for i := range c.List {
		li := c.LargerCount(i)
		if li == 0 {
			probs[i] = c.List[i].ExistProb
			continue
		}
		// Gather diff sets and the union of relevant edges.
		diffs := make([][]bigraph.EdgeID, li)
		union := make([]bigraph.EdgeID, 0, 4*li)
		pos := make(map[bigraph.EdgeID]int)
		for j := 0; j < li; j++ {
			diffs[j] = c.DiffEdges(j, i)
			for _, id := range diffs[j] {
				if _, ok := pos[id]; !ok {
					pos[id] = len(union)
					union = append(union, id)
				}
			}
		}
		if len(union) > maxRelevantEdges {
			return nil, fmt.Errorf("core: candidate %d has %d relevant edges (limit %d)", i, len(union), maxRelevantEdges)
		}
		// Masks of each diff set over the union bit positions.
		masks := make([]uint64, li)
		for j := 0; j < li; j++ {
			for _, id := range diffs[j] {
				masks[j] |= 1 << pos[id]
			}
		}
		// Enumerate assignments of the union edges; accumulate the
		// probability that no competitor's diff set is fully present.
		pEdge := make([]float64, len(union))
		for k, id := range union {
			pEdge[k] = g.Edge(id).P
		}
		noneProb := 0.0
		total := uint64(1) << len(union)
		for assign := uint64(0); assign < total; assign++ {
			hit := false
			for j := 0; j < li; j++ {
				if assign&masks[j] == masks[j] {
					hit = true
					break
				}
			}
			if hit {
				continue
			}
			pr := 1.0
			for k := range union {
				if assign&(1<<k) != 0 {
					pr *= pEdge[k]
				} else {
					pr *= 1 - pEdge[k]
				}
			}
			noneProb += pr
		}
		probs[i] = c.List[i].ExistProb * noneProb
	}
	return probs, nil
}
