package core

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// This file exposes narrow per-trial handles over the unexported trial
// kernels so the benchmark trajectory harness (internal/bench, `mpmb-bench
// perf`) can time single OS trials without replicating the samplers'
// run-loop plumbing. They are measurement hooks, not public API: nothing
// outside benchmarking should build on them.

// KernelBench drives single Ordering Sampling trials through the
// flat-memory kernel (the production path of OS/OSParallel), with the same
// per-trial stream derivation the samplers use.
type KernelBench struct {
	idx       *osIndex
	root      *randx.RNG
	sMB       butterfly.MaxSet
	fallbacks int64
}

// NewKernelBench prepares the kernel for g once (calibrated snapshot,
// thresholds, angle table) through the same acquire path the samplers
// use; subsequent Trial calls reuse that state exactly like a sampler's
// trial loop does.
func NewKernelBench(g *bigraph.Graph, opt OSOptions) *KernelBench {
	return &KernelBench{idx: acquireKernel(g, opt), root: randx.New(opt.Seed)}
}

// Trial runs the 1-based trial and reports how many snapshot positions
// the scan covered before the Section V-B prune stopped it.
func (k *KernelBench) Trial(trial int) (scanned int) {
	scanned, fellBack := k.idx.runTrialSeeded(k.root, uint64(trial), &k.sMB)
	if fellBack {
		k.fallbacks++
	}
	return scanned
}

// Fallbacks reports how many Trial calls crossed the snapshot's
// calibrated prefix boundary into the full-scan tail.
func (k *KernelBench) Fallbacks() int64 { return k.fallbacks }

// NumEdges returns the snapshot size, so callers can convert scanned
// positions into pruned positions.
func (k *KernelBench) NumEdges() int { return k.idx.snap.numEdges() }

// SeedBench drives single Ordering Sampling trials through the frozen
// seed implementation (osref.go) with the seed's per-trial Derive and
// float-math Bernoulli, providing the pre-kernel baseline the trajectory
// report records alongside the kernel's numbers.
type SeedBench struct {
	idx  *osRefIndex
	g    *bigraph.Graph
	root *randx.RNG
	sMB  butterfly.MaxSet
}

// NewSeedBench prepares the frozen seed index for g.
func NewSeedBench(g *bigraph.Graph, opt OSOptions) *SeedBench {
	return &SeedBench{idx: newOSRefIndex(g, opt), g: g, root: randx.New(opt.Seed)}
}

// Trial runs the 1-based trial exactly as the seed sampler did: one
// derived generator allocation plus a Bernoulli closure over the AoS edge
// table.
func (k *SeedBench) Trial(trial int) {
	rng := k.root.Derive(uint64(trial))
	g := k.g
	k.idx.runTrial(&k.sMB, func(id bigraph.EdgeID) bool {
		return rng.Bernoulli(g.Edge(id).P)
	})
}
