package core

import (
	"math/rand"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/interval"
)

// statTolAlpha is the per-comparison two-sided error probability the
// convergence tests accept, matching the internal/statcheck harness: at
// 1e-9 a failing comparison is an estimator bug, not seed luck, so the
// tests stay deterministic-given-seed without hand-tuned slack.
const statTolAlpha = 1e-9

// statTol returns the Hoeffding acceptance half-width for a binomial
// proportion estimated over the given trial count (the derivation lives
// in internal/interval).
func statTol(trials int) float64 { return interval.HoeffdingHalfWidth(trials, statTolAlpha) }

// statTolScaled is statTol for an estimate that is an affine transform of
// a binomial proportion with the given scale — the Karp-Luby estimator,
// whose estimate moves by Pr[E(B_i)]·S_i per unit of its underlying
// proportion. The 1e-9 floor covers the candidates Karp-Luby prices in
// closed form (L(i) = 0 or S_i = 0), which are exact up to float
// association.
func statTolScaled(scale float64, trials int) float64 {
	if eps := interval.ScaledHalfWidth(scale, trials, statTolAlpha); eps > 1e-9 {
		return eps
	}
	return 1e-9
}

// figure1Graph builds the running example of the paper's Figure 1:
// L = {u1, u2}, R = {v1, v2, v3} with the listed weights and
// probabilities. Vertex ids: u1=0, u2=1; v1=0, v2=1, v3=2.
func figure1Graph() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5) // (u1, v1)
	b.MustAddEdge(0, 1, 2, 0.6) // (u1, v2)
	b.MustAddEdge(0, 2, 1, 0.8) // (u1, v3)
	b.MustAddEdge(1, 0, 3, 0.3) // (u2, v1)
	b.MustAddEdge(1, 1, 3, 0.4) // (u2, v2)
	b.MustAddEdge(1, 2, 1, 0.7) // (u2, v3)
	return b.Build()
}

// halfGrid is the weight grid used by random test graphs: half-integer
// steps are exactly representable in float64, so weight ties are exact no
// matter the summation order and every algorithm agrees bit-for-bit.
var halfGrid = []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}

// probGrid includes the deterministic endpoints 0 and 1 to exercise
// forced-present and forced-absent edges.
var probGrid = []float64{0, 0.2, 0.35, 0.5, 0.75, 0.9, 1}

// randGraph generates a random uncertain bipartite graph with at most
// maxE edges (duplicates skipped) over partitions of size up to maxL and
// maxR, using the exact-tie-friendly grids above.
func randGraph(r *rand.Rand, maxL, maxR, maxE int) *bigraph.Graph {
	numL := 1 + r.Intn(maxL)
	numR := 1 + r.Intn(maxR)
	b := bigraph.NewBuilder(numL, numR)
	seen := make(map[[2]int]bool)
	n := r.Intn(maxE + 1)
	for i := 0; i < n; i++ {
		u := r.Intn(numL)
		v := r.Intn(numR)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		w := halfGrid[r.Intn(len(halfGrid))]
		p := probGrid[r.Intn(len(probGrid))]
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
	}
	return b.Build()
}

// randDenseSmallGraph generates graphs small enough for exact world
// enumeration (≤ maxEdges edges) but dense enough to contain butterflies
// frequently.
func randDenseSmallGraph(r *rand.Rand, maxEdges int) *bigraph.Graph {
	for {
		numL := 2 + r.Intn(2) // 2..3
		numR := 2 + r.Intn(2)
		b := bigraph.NewBuilder(numL, numR)
		edges := 0
		for u := 0; u < numL && edges < maxEdges; u++ {
			for v := 0; v < numR && edges < maxEdges; v++ {
				if r.Float64() < 0.8 {
					w := halfGrid[r.Intn(len(halfGrid))]
					p := 0.2 + 0.7*r.Float64()
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
					edges++
				}
			}
		}
		if b.NumEdges() >= 4 {
			return b.Build()
		}
	}
}

// bigraphBuilder1 returns a single-edge graph (no butterflies possible).
func bigraphBuilder1() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0.5)
	return b.Build()
}

// maxSetScratch wraps a reusable MaxSet for instrumentation tests.
type maxSetScratch struct {
	m butterfly.MaxSet
}
