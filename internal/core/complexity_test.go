package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// TestLemmaV1AngleWorkMatchesTheory verifies the Lemma V.1 complexity
// claim quantitatively: the expected number of angles an (unpruned) OS
// trial generates equals Σ_{v∈R} E[C(deg(v), 2)] = Σ_v Σ_{a<b} p_a·p_b —
// which is upper-bounded by Σ_v d̄²(v)/2, the quantity in the lemma. The
// test measures angle counts over many trials and compares the empirical
// mean against both the exact expectation and the lemma's bound.
func TestLemmaV1AngleWorkMatchesTheory(t *testing.T) {
	r := rand.New(rand.NewSource(171))
	for trial := 0; trial < 5; trial++ {
		numL, numR := 4+r.Intn(5), 4+r.Intn(5)
		b := bigraph.NewBuilder(numL, numR)
		for u := 0; u < numL; u++ {
			for v := 0; v < numR; v++ {
				if r.Float64() < 0.6 {
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1+r.Float64(), 0.1+0.8*r.Float64())
				}
			}
		}
		g := b.Build()

		const trials = 20000
		idx := newOSIndex(g, OSOptions{DisableEdgePrune: true})

		// The kernel centers angle formation on the side with the smaller
		// expected pair-work (edgeSnapshot.flip), which is exactly the
		// min(Σ_L, Σ_R) the lemma allows. Compute the exact expectation
		// and the lemma bound over the side the snapshot chose: Σ over
		// center vertices of Σ_{a<b} p_a·p_b, bounded by Σ d̄²/2 (the
		// squared expected degree includes the diagonal, so it dominates
		// the pair count).
		exact, bound := 0.0, 0.0
		numCtr := numR
		if idx.snap.flip {
			numCtr = numL
		}
		for c := 0; c < numCtr; c++ {
			var nbrs []bigraph.Half
			var dbar float64
			if idx.snap.flip {
				nbrs = g.NeighborsL(bigraph.VertexID(c))
				dbar = g.ExpectedSquaredDegreeL(bigraph.VertexID(c))
			} else {
				nbrs = g.NeighborsR(bigraph.VertexID(c))
				dbar = g.ExpectedSquaredDegreeR(bigraph.VertexID(c))
			}
			for a := 0; a < len(nbrs); a++ {
				pa := g.Edge(nbrs[a].E).P
				for bj := a + 1; bj < len(nbrs); bj++ {
					exact += pa * g.Edge(nbrs[bj].E).P
				}
			}
			bound += dbar
		}
		bound /= 2
		idx.instrumented = true
		root := randx.New(uint64(trial) + 5)
		var sMB maxSetScratch
		total := 0
		for i := 1; i <= trials; i++ {
			rng := root.Derive(uint64(i))
			idx.runTrial(&sMB.m, func(id bigraph.EdgeID) bool {
				return rng.Bernoulli(g.Edge(id).P)
			})
			total += idx.anglesGenerated
		}
		mean := float64(total) / trials
		if math.Abs(mean-exact) > 0.05*exact+0.5 {
			t.Fatalf("trial %d: mean angles %v, exact expectation %v", trial, mean, exact)
		}
		if mean > bound+1e-9 {
			t.Fatalf("trial %d: mean angles %v exceed the Lemma V.1 bound %v", trial, mean, bound)
		}
	}
}

// TestEdgePruneReducesAngleWork confirms the pruned trial does no more
// angle work than the unpruned one — the Section V-B speedup in the same
// unit the lemma counts.
func TestEdgePruneReducesAngleWork(t *testing.T) {
	r := rand.New(rand.NewSource(181))
	g := randDenseSmallGraph(r, 20)
	const trials = 2000
	count := func(disable bool) int {
		idx := newOSIndex(g, OSOptions{DisableEdgePrune: disable})
		idx.instrumented = true
		root := randx.New(7)
		var sMB maxSetScratch
		total := 0
		for i := 1; i <= trials; i++ {
			rng := root.Derive(uint64(i))
			idx.runTrial(&sMB.m, func(id bigraph.EdgeID) bool {
				return rng.Bernoulli(g.Edge(id).P)
			})
			total += idx.anglesGenerated
		}
		return total
	}
	pruned, unpruned := count(false), count(true)
	if pruned > unpruned {
		t.Fatalf("pruned trials generated MORE angles: %d vs %d", pruned, unpruned)
	}
}
