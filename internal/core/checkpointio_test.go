package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// makeCheckpoint produces a small valid checkpoint for I/O tests.
func makeCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	g := figure1Graph()
	var polls int
	res, err := OS(g, OSOptions{Trials: 100, Seed: 3, Interrupt: func() bool {
		polls++
		return polls > 40
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil {
		t.Fatal("expected a partial run with a checkpoint")
	}
	return res.Checkpoint
}

// flakyFS wraps the real filesystem seam and fails the first N operations
// of selected kinds with a transient error.
type flakyFS struct {
	real       osFS
	failCreate int
	failWrite  int
	failRename int
	failOpen   int
	failRead   int
	ops        []string // every attempted primitive, for assertions
}

var errTransient = errors.New("injected transient I/O failure")

func (f *flakyFS) CreateTemp(dir, pattern string) (CheckpointFile, error) {
	f.ops = append(f.ops, "create")
	if f.failCreate > 0 {
		f.failCreate--
		return nil, errTransient
	}
	file, err := f.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &flakyFile{CheckpointFile: file, fs: f}, nil
}

func (f *flakyFS) Rename(oldpath, newpath string) error {
	f.ops = append(f.ops, "rename")
	if f.failRename > 0 {
		f.failRename--
		return errTransient
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *flakyFS) Remove(name string) error {
	f.ops = append(f.ops, "remove")
	return f.real.Remove(name)
}

func (f *flakyFS) Open(name string) (io.ReadCloser, error) {
	f.ops = append(f.ops, "open")
	if f.failOpen > 0 {
		f.failOpen--
		return nil, errTransient
	}
	rc, err := f.real.Open(name)
	if err != nil {
		return nil, err
	}
	if f.failRead > 0 {
		f.failRead--
		rc.Close()
		// A reader that dies mid-stream: yields a prefix, then an error.
		return io.NopCloser(&failingReader{}), nil
	}
	return rc, nil
}

// flakyFile injects write failures into an otherwise real temp file.
type flakyFile struct {
	CheckpointFile
	fs *flakyFS
}

func (w *flakyFile) Write(p []byte) (int, error) {
	if w.fs.failWrite > 0 {
		w.fs.failWrite--
		return 0, errTransient
	}
	return w.CheckpointFile.Write(p)
}

// failingReader returns a few magic bytes then a transient error —
// a read that dies partway through the stream.
type failingReader struct{ n int }

func (r *failingReader) Read(p []byte) (int, error) {
	if r.n == 0 && len(p) >= 4 {
		r.n = 4
		return copy(p, ckptMagic[:4]), nil
	}
	return 0, errTransient
}

// recordedSleeps captures the backoff schedule instead of waiting.
func recordedSleeps(dst *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *dst = append(*dst, d) }
}

func TestCheckpointStoreSaveRetriesTransientFailures(t *testing.T) {
	ck := makeCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	var sleeps []time.Duration
	fs := &flakyFS{failCreate: 1, failRename: 1} // first two attempts fail
	store := NewCheckpointStoreFS(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Sleep:       recordedSleeps(&sleeps),
	}, fs)
	if err := store.Save(path, ck); err != nil {
		t.Fatalf("save should succeed on the third attempt: %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("expected 2 backoff sleeps, got %v", sleeps)
	}
	// Exponential with jitter in [0.5, 1): attempt k sleeps within
	// [base·2^k/2, base·2^k).
	base := 10 * time.Millisecond
	for k, d := range sleeps {
		nominal := base << k
		if d < nominal/2 || d >= nominal {
			t.Errorf("sleep %d = %v outside [%v, %v)", k, d, nominal/2, nominal)
		}
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("saved checkpoint does not load: %v", err)
	}
	if loaded.Done != ck.Done || loaded.Seed != ck.Seed {
		t.Errorf("loaded checkpoint differs: %+v vs %+v", loaded, ck)
	}
}

func TestCheckpointStoreSaveExhaustsBudgetTyped(t *testing.T) {
	ck := makeCheckpoint(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	var sleeps []time.Duration
	fs := &flakyFS{failCreate: 100} // never succeeds
	store := NewCheckpointStoreFS(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep:       recordedSleeps(&sleeps),
	}, fs)
	err := store.Save(path, ck)
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("error %v does not match ErrRetriesExhausted", err)
	}
	var re *RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not a *RetryExhaustedError", err)
	}
	if re.Op != "save" || re.Attempts != 3 || !errors.Is(re, errTransient) {
		t.Errorf("exhaustion fields %+v (last=%v)", re, re.Last)
	}
	if len(sleeps) != 2 {
		t.Errorf("3 attempts should sleep twice, got %v", sleeps)
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("failed save must not create the destination: %v", statErr)
	}
}

// A save whose write or rename fails must never tear an existing
// checkpoint: the destination keeps the previous valid bytes, and no temp
// litter survives.
func TestCheckpointStoreSaveNeverTears(t *testing.T) {
	ck := makeCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ck2 := makeCheckpoint(t)
	ck2.Done++ // any distinguishable mutation
	fs := &flakyFS{failWrite: 100, failRename: 100}
	store := NewCheckpointStoreFS(RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}, fs)
	if err := store.Save(path, ck2); err == nil {
		t.Fatal("expected the save to fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save modified the existing checkpoint")
	}
	if _, err := DecodeCheckpoint(bytes.NewReader(after)); err != nil {
		t.Errorf("existing checkpoint no longer decodes: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestCheckpointStoreLoadRetriesOpenAndRead(t *testing.T) {
	ck := makeCheckpoint(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	var sleeps []time.Duration
	fs := &flakyFS{failOpen: 1, failRead: 1} // fail once at open, once mid-read
	store := NewCheckpointStoreFS(RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		Sleep:       recordedSleeps(&sleeps),
	}, fs)
	got, err := store.Load(path)
	if err != nil {
		t.Fatalf("load should succeed after transient failures: %v", err)
	}
	if got.Done != ck.Done {
		t.Errorf("loaded Done=%d, want %d", got.Done, ck.Done)
	}
	if len(sleeps) != 2 {
		t.Errorf("expected 2 retry sleeps, got %v", sleeps)
	}
}

func TestCheckpointStoreLoadExhaustsBudgetTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing.ckpt")
	store := NewCheckpointStoreFS(RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}}, &flakyFS{})
	_, err := store.Load(path)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("error %v does not match ErrRetriesExhausted", err)
	}
	var re *RetryExhaustedError
	if !errors.As(err, &re) || re.Op != "load" || re.Attempts != 2 {
		t.Errorf("exhaustion fields %+v", re)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("underlying cause lost: %v", err)
	}
}

func TestCheckpointStoreDeterministicJitter(t *testing.T) {
	ck := makeCheckpoint(t)
	run := func() []time.Duration {
		var sleeps []time.Duration
		fs := &flakyFS{failCreate: 100}
		store := NewCheckpointStoreFS(RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   time.Millisecond,
			Seed:        42,
			Sleep:       recordedSleeps(&sleeps),
		}, fs)
		store.Save(filepath.Join(t.TempDir(), "x.ckpt"), ck)
		return sleeps
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("jitter not deterministic for a fixed seed: %v vs %v", a, b)
	}
}

func TestCheckpointStoreInvalidCheckpointNoRetry(t *testing.T) {
	var sleeps []time.Duration
	store := NewCheckpointStoreFS(RetryPolicy{MaxAttempts: 5, Sleep: recordedSleeps(&sleeps)}, &flakyFS{})
	err := store.Save(filepath.Join(t.TempDir(), "x.ckpt"), &Checkpoint{Method: "nope"})
	if err == nil {
		t.Fatal("invalid checkpoint must not save")
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Error("validation failure burned the retry budget")
	}
	if len(sleeps) != 0 {
		t.Errorf("validation failure slept: %v", sleeps)
	}
}

func TestCheckpointStoreRoundTripRealFS(t *testing.T) {
	ck := makeCheckpoint(t)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	store := NewCheckpointStore(DefaultRetryPolicy())
	if err := store.Save(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Resume through the loaded checkpoint and compare with the plain
	// single-attempt loader's result.
	g := figure1Graph()
	a, err := OS(g, OSOptions{Trials: 100, Seed: 3, Resume: got})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OS(g, OSOptions{Trials: 100, Seed: 3, Resume: plain})
	if err != nil {
		t.Fatal(err)
	}
	sameEstimates(t, a.Estimates, b.Estimates)
}
