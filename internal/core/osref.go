package core

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// This file freezes the SEED implementations of the OS trial loop and the
// two OLS estimators, exactly as they ran before the flat-memory kernel
// rewrite: map-keyed angle tables cleared per trial, per-trial Derive
// allocations, float-math Bernoulli per edge, per-right-vertex slice
// adjacency. They exist for two referees:
//
//   - the equivalence tests, which assert that the kernel's Results are
//     bit-identical to these references seed for seed; and
//   - the benchmark trajectory harness (internal/bench, `mpmb-bench
//     perf`), which records the reference's ns/trial as the pre-rewrite
//     baseline inside BENCH_core.json so every future PR can diff the
//     kernel against where it started.
//
// Do not "optimize" anything here — the whole point is that this code
// stays what the seed was.

// OSReference is the frozen seed implementation of Ordering Sampling. It
// supports only plain complete runs (no Interrupt/Resume/OnTrial); its
// Result must be bit-identical to OS with the same graph and options.
func OSReference(g *bigraph.Graph, opt OSOptions) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OSReference requires Trials > 0, got %d", opt.Trials)
	}
	idx := newOSRefIndex(g, opt)
	acc := newProbAccumulator()
	root := randx.New(opt.Seed)
	var sMB butterfly.MaxSet
	for trial := 1; trial <= opt.Trials; trial++ {
		rng := root.Derive(uint64(trial))
		idx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
			return rng.Bernoulli(g.Edge(id).P)
		})
		if !sMB.Empty() {
			acc.addMaxSet(&sMB)
		}
	}
	return acc.result("os", opt.Trials), nil
}

// OLSReference is the frozen seed implementation of Ordering-Listing
// Sampling: seed preparing phase over the reference OS index, then the
// reference optimized (or, with opt.UseKarpLuby, Karp-Luby) estimator.
// Plain complete runs only; bit-identical to OLS with the same options.
func OLSReference(g *bigraph.Graph, opt OLSOptions) (*Result, error) {
	method := opt.method()
	idx := newOSRefIndex(g, opt.OS)
	root := randx.New(opt.Seed)
	hits := make(map[butterfly.Butterfly]int)
	var sMB butterfly.MaxSet
	for trial := 1; trial <= opt.PrepTrials; trial++ {
		rng := root.Derive(uint64(trial))
		idx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
			return rng.Bernoulli(g.Edge(id).P)
		})
		for _, b := range sMB.Set {
			hits[b]++
		}
	}
	cands, err := NewCandidates(g, hits)
	if err != nil {
		return nil, err
	}
	cands.PrepDone = opt.PrepTrials
	if cands.Len() == 0 {
		return &Result{Method: method, Trials: opt.Trials, TrialsDone: opt.Trials, PrepTrials: opt.PrepTrials}, nil
	}
	sampleSeed := opt.Seed ^ 0xa5a5a5a5deadbeef
	var probs []float64
	if opt.UseKarpLuby {
		kl := opt.KL
		kl.BaseTrials = opt.Trials
		kl.Seed = sampleSeed
		probs, err = ReferenceEstimateKarpLuby(cands, kl)
	} else {
		op := opt.Optimized
		op.Trials = opt.Trials
		op.Seed = sampleSeed
		probs, err = ReferenceEstimateOptimized(cands, op)
	}
	if err != nil {
		return nil, err
	}
	res := cands.result(method, probs, opt.Trials, opt.PrepTrials)
	res.TrialsDone = opt.Trials
	return res, nil
}

// ReferenceEstimateOptimized is the frozen seed implementation of the
// optimized estimator's trial loop (Algorithm 5): per-trial Derive, lazy
// float-math Bernoulli per edge. Plain complete runs only.
func ReferenceEstimateOptimized(c *Candidates, opt OptimizedOptions) ([]float64, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: reference optimized estimator requires Trials > 0, got %d", opt.Trials)
	}
	n := len(c.List)
	counts := make([]int64, n)
	g := c.G
	numE := g.NumEdges()
	stamp := make([]int32, numE)
	val := make([]bool, numE)
	var cur int32
	root := randx.New(opt.Seed)
	for trial := 1; trial <= opt.Trials; trial++ {
		rng := root.Derive(uint64(trial))
		cur++
		wMax := math.Inf(-1)
		for k := 0; k < n; k++ {
			cand := &c.List[k]
			if cand.Weight < wMax {
				break
			}
			exists := true
			for _, id := range cand.Edges {
				if stamp[id] != cur {
					stamp[id] = cur
					val[id] = rng.Bernoulli(g.Edge(id).P)
				}
				if !val[id] {
					exists = false
					break
				}
			}
			if exists {
				counts[k]++
				wMax = cand.Weight
			}
		}
	}
	probs := make([]float64, n)
	for i, cnt := range counts {
		probs[i] = float64(cnt) / float64(opt.Trials)
	}
	return probs, nil
}

// ReferenceEstimateKarpLuby is the frozen seed implementation of the
// Karp-Luby estimator loop (Algorithm 4): per-candidate Derive, float-math
// Bernoulli per relevant edge. Plain complete runs only.
func ReferenceEstimateKarpLuby(c *Candidates, opt KLOptions) ([]float64, error) {
	if err := validateKL(opt); err != nil {
		return nil, err
	}
	n := len(c.List)
	g := c.G
	probs := make([]float64, n)
	numE := g.NumEdges()
	stamp := make([]int32, numE)
	val := make([]bool, numE)
	var cur int32
	maxTrials := opt.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 50 * opt.BaseTrials
	}
	root := randx.New(opt.Seed)
	for i := 0; i < n; i++ {
		cand := &c.List[i]
		li := c.LargerCount(i)
		if li == 0 {
			probs[i] = cand.ExistProb
			continue
		}
		diffs := make([][]bigraph.EdgeID, li)
		diffProbs := make([]float64, li)
		sI := 0.0
		for j := 0; j < li; j++ {
			diffs[j] = c.DiffEdges(j, i)
			diffProbs[j] = 1.0
			for _, id := range diffs[j] {
				diffProbs[j] *= g.Edge(id).P
			}
			sI += diffProbs[j]
		}
		if sI == 0 {
			probs[i] = cand.ExistProb
			continue
		}
		nTrials := opt.BaseTrials
		if opt.Mu > 0 {
			ratio := KLOpRatio(cand.ExistProb, sI, opt.Mu)
			nTrials = int(ratio*float64(opt.BaseTrials)) + 1
			if nTrials > maxTrials {
				nTrials = maxTrials
			}
		}
		alias := randx.NewAlias(diffProbs)
		rng := root.Derive(uint64(i) + 1)
		cnt := 0
		for t := 0; t < nTrials; t++ {
			cur++
			j := alias.Sample(rng)
			for _, id := range diffs[j] {
				stamp[id] = cur
				val[id] = true
			}
			minimal := true
			for k := 0; k < j && minimal; k++ {
				allPresent := true
				for _, id := range diffs[k] {
					if stamp[id] != cur {
						stamp[id] = cur
						val[id] = rng.Bernoulli(g.Edge(id).P)
					}
					if !val[id] {
						allPresent = false
						break
					}
				}
				if allPresent {
					minimal = false
				}
			}
			if minimal {
				cnt++
			}
		}
		p := (1 - float64(cnt)/float64(nTrials)*sI) * cand.ExistProb
		if p < 0 {
			p = 0
		}
		if p > cand.ExistProb {
			p = cand.ExistProb
		}
		probs[i] = p
	}
	return probs, nil
}

// osRefIndex is the seed implementation's per-graph state: sorted edge
// ids resolved through the AoS edge table, a map-keyed angle-entry index
// cleared per trial, and per-right-vertex adjacency slices.
type osRefIndex struct {
	g      *bigraph.Graph
	opt    OSOptions
	sorted []bigraph.EdgeID // edge ids by descending weight (line 1)
	wBar   float64          // w(e1)+w(e2)+w(e3) (line 2)

	// nE[v] is N̂_E(v): live, already-processed edges incident to right
	// vertex v, as (left endpoint, edge id) pairs.
	nE        [][]bigraph.Half
	nETouched []bigraph.VertexID

	// Angle tables A1/A2 keyed by the canonical left endpoint pair.
	entries map[uint64]int32
	pool    []angleEntry
	poolN   int
}

func newOSRefIndex(g *bigraph.Graph, opt OSOptions) *osRefIndex {
	return &osRefIndex{
		g:       g,
		opt:     opt,
		sorted:  g.EdgesByWeightDesc(),
		wBar:    g.TopWeightSum(3),
		nE:      make([][]bigraph.Half, g.NumR()),
		entries: make(map[uint64]int32),
	}
}

func (x *osRefIndex) resetTrial() {
	for _, v := range x.nETouched {
		x.nE[v] = x.nE[v][:0]
	}
	x.nETouched = x.nETouched[:0]
	clear(x.entries)
	x.poolN = 0
}

// entryFor returns the pool index of the (possibly new) angle entry for
// endpoint pair {a, b}. Like the kernel it hands out an index, not a
// pointer: the pool grows by append, and a pointer held across a call
// would dangle after a reallocation (the original seed returned pointers
// and survived only because no caller kept one across calls).
func (x *osRefIndex) entryFor(a, b bigraph.VertexID) int32 {
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(b)
	if i, ok := x.entries[key]; ok {
		return i
	}
	i := int32(x.poolN)
	if x.poolN == len(x.pool) {
		x.pool = append(x.pool, angleEntry{})
	}
	e := &x.pool[i]
	e.mids1 = e.mids1[:0]
	e.mids2 = e.mids2[:0]
	e.all = e.all[:0]
	e.u1, e.u2 = a, b
	e.w1, e.w2 = math.Inf(-1), math.Inf(-1)
	x.entries[key] = i
	x.poolN++
	return i
}

// runTrial is the seed trial loop, verbatim: AoS edge loads, map probes
// per angle, oracle call per edge.
func (x *osRefIndex) runTrial(sMB *butterfly.MaxSet, present func(bigraph.EdgeID) bool) {
	x.resetTrial()
	sMB.Reset()
	g := x.g
	wMax := math.Inf(-1)

	for _, eid := range x.sorted {
		e := g.Edge(eid)
		if !x.opt.DisableEdgePrune && e.W+x.wBar < wMax { // line 9
			break
		}
		if !present(eid) {
			continue
		}
		ui, vj := e.U, e.V
		for _, hb := range x.nE[vj] { // line 10: e_b = (v_j, u_k)
			uk := hb.To
			if uk == ui {
				continue
			}
			angleW := e.W + g.Edge(hb.E).W // line 11: ∠_new = e_a ⊕ e_b
			ei := x.entryFor(ui, uk)
			ent := &x.pool[ei]
			if x.opt.KeepAllAngles {
				ent.all = append(ent.all, midW{mid: vj, w: angleW})
			}
			if x.opt.DropA2 {
				ent.updateDropA2(angleW, vj)
			} else {
				ent.update(angleW, vj) // line 12, Table II
			}
			if bw := ent.bestWeight(); bw > wMax {
				wMax = bw // line 13
			}
		}
		if len(x.nE[vj]) == 0 {
			x.nETouched = append(x.nETouched, vj)
		}
		x.nE[vj] = append(x.nE[vj], bigraph.Half{To: ui, E: eid}) // line 14
	}

	if math.IsInf(wMax, -1) {
		return // no butterfly in this world
	}

	// Lines 15–20: materialize exactly the butterflies of weight w_max.
	for i := 0; i < x.poolN; i++ {
		ent := &x.pool[i]
		if x.opt.KeepAllAngles {
			for a := 0; a < len(ent.all); a++ {
				for b := a + 1; b < len(ent.all); b++ {
					if ent.all[a].mid == ent.all[b].mid {
						continue
					}
					if w := ent.all[a].w + ent.all[b].w; w == wMax {
						sMB.Add(butterfly.New(ent.u1, ent.u2, ent.all[a].mid, ent.all[b].mid), wMax)
					}
				}
			}
			continue
		}
		switch {
		case len(ent.mids1) >= 2 && 2*ent.w1 == wMax: // line 16
			for a := 0; a < len(ent.mids1); a++ {
				for b := a + 1; b < len(ent.mids1); b++ {
					sMB.Add(butterfly.New(ent.u1, ent.u2, ent.mids1[a], ent.mids1[b]), wMax)
				}
			}
		case len(ent.mids1) == 1 && len(ent.mids2) >= 1 && ent.w1+ent.w2 == wMax: // line 18
			for _, m2 := range ent.mids2 {
				sMB.Add(butterfly.New(ent.u1, ent.u2, ent.mids1[0], m2), wMax)
			}
		}
	}
}
