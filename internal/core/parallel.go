package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// OSParallel runs Ordering Sampling with trials distributed over workers
// goroutines (0 means GOMAXPROCS). Trials are independent and each trial's
// random stream is derived from (Seed, trial index), so the estimates are
// bit-identical to the sequential OS with the same options — parallelism
// changes wall-clock time, never results. The OnTrial hook is not
// supported here (trial completion order would be nondeterministic); use
// OS when tracing.
func OSParallel(g *bigraph.Graph, opt OSOptions, workers int) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OSParallel requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: OSParallel does not support OnTrial; use OS")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Trials {
		workers = opt.Trials
	}
	if workers == 1 {
		return OS(g, opt)
	}

	root := randx.New(opt.Seed)
	// Worker-local accumulators, merged at the end; no shared mutable
	// state during the run.
	accs := make([]*probAccumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		accs[w] = newProbAccumulator()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx := newOSIndex(g, opt)
			var sMB butterfly.MaxSet
			for trial := w + 1; trial <= opt.Trials; trial += workers {
				rng := root.Derive(uint64(trial))
				idx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
					return rng.Bernoulli(g.Edge(id).P)
				})
				if !sMB.Empty() {
					accs[w].addMaxSet(&sMB)
				}
			}
		}(w)
	}
	wg.Wait()

	merged := newProbAccumulator()
	for _, a := range accs {
		for b, c := range a.counts {
			merged.counts[b] += c
			merged.weights[b] = a.weights[b]
		}
	}
	return merged.result("os", opt.Trials), nil
}

// EstimateOptimizedParallel runs the Algorithm 5 estimator with trials
// distributed over workers goroutines (0 means GOMAXPROCS). Each worker
// owns private lazy-sampling scratch and a private count vector; per-trial
// streams are derived from (Seed, trial index), so the estimates are
// bit-identical to EstimateOptimized with the same options. The OnTrial
// hook is unsupported (trial completion order would be nondeterministic).
// The EagerSampling and DisableEarlyBreak ablations are likewise
// sequential-only knobs.
func EstimateOptimizedParallel(c *Candidates, opt OptimizedOptions, workers int) ([]float64, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: optimized estimator requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: EstimateOptimizedParallel does not support OnTrial; use EstimateOptimized")
	}
	if opt.EagerSampling || opt.DisableEarlyBreak {
		return nil, fmt.Errorf("core: ablation options are sequential-only; use EstimateOptimized")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Trials {
		workers = opt.Trials
	}
	if workers == 1 {
		return EstimateOptimized(c, opt)
	}

	g := c.G
	n := len(c.List)
	numE := g.NumEdges()
	root := randx.New(opt.Seed)
	countsPer := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		countsPer[w] = make([]int, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stamp := make([]int32, numE)
			val := make([]bool, numE)
			var cur int32
			counts := countsPer[w]
			for trial := w + 1; trial <= opt.Trials; trial += workers {
				rng := root.Derive(uint64(trial))
				cur++
				wMax := math.Inf(-1)
				for k := 0; k < n; k++ {
					cand := &c.List[k]
					if cand.Weight < wMax {
						break
					}
					exists := true
					for _, id := range cand.Edges {
						if stamp[id] != cur {
							stamp[id] = cur
							val[id] = rng.Bernoulli(g.Edge(id).P)
						}
						if !val[id] {
							exists = false
							break
						}
					}
					if exists {
						counts[k]++
						wMax = cand.Weight
					}
				}
			}
		}(w)
	}
	wg.Wait()

	probs := make([]float64, n)
	for _, counts := range countsPer {
		for i, cnt := range counts {
			probs[i] += float64(cnt)
		}
	}
	for i := range probs {
		probs[i] /= float64(opt.Trials)
	}
	return probs, nil
}

// EstimateKarpLubyParallel runs the Algorithm 4 estimator with candidates
// distributed over workers goroutines (0 means GOMAXPROCS). Unlike the
// trial-parallel runners, the natural axis here is the candidate: every
// candidate's estimation is independent (its random stream derives from
// (Seed, candidate index)), so per-candidate results are bit-identical to
// the sequential EstimateKarpLuby. The tracing and restriction hooks
// (OnCandidateTrial, OnlyCandidate, TrialsUsed pointer aside) are
// sequential-only; TrialsUsed is supported.
func EstimateKarpLubyParallel(c *Candidates, opt KLOptions, workers int) ([]float64, error) {
	if opt.BaseTrials <= 0 {
		return nil, fmt.Errorf("core: Karp-Luby estimator requires BaseTrials > 0, got %d", opt.BaseTrials)
	}
	if opt.OnCandidateTrial != nil || opt.OnlyCandidate != nil || opt.Interrupt != nil {
		return nil, fmt.Errorf("core: EstimateKarpLubyParallel does not support hooks; use EstimateKarpLuby")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(c.List)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return EstimateKarpLuby(c, opt)
	}

	probs := make([]float64, n)
	trialsUsed := make([]int, n)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				// Price candidate i alone; the per-candidate stream
				// derivation makes this identical to the sequential path.
				idx := i
				sub := opt
				sub.OnlyCandidate = &idx
				var used []int
				sub.TrialsUsed = &used
				res, err := EstimateKarpLuby(c, sub)
				if err != nil {
					errs[w] = err
					return
				}
				probs[i] = res[i]
				trialsUsed[i] = used[i]
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opt.TrialsUsed != nil {
		*opt.TrialsUsed = trialsUsed
	}
	return probs, nil
}
