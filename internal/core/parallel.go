package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// ErrWorkerPanic wraps a panic recovered inside a parallel runner's worker
// goroutine. The panic does not crash the process: the first panicking
// worker records its value, the remaining workers drain, and the runner
// returns this error (no partial result — an abandoned chunk would break
// the completed-prefix invariant that partial results rely on). When the
// panic struck inside a claimed chunk, the wrapped text names that chunk's
// trial bounds, so a distributed lease reissue (or a local bisection) can
// name the poisoned range.
var ErrWorkerPanic = errors.New("core: worker panicked")

// parChunkTrials is the dispatch granularity of the parallel runners. A
// worker claims one chunk of consecutive trials at a time and always
// finishes a claimed chunk, so on cancellation the completed trials form
// an exact prefix 1..done — exactly the state a sequential resume expects.
// Small enough that cancellation latency is a few chunk-lengths of work,
// large enough that the atomic claim is amortized away.
const parChunkTrials = 16

func parDefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parLoop runs trials start+1..end distributed over workers goroutines.
// newBody runs once on each worker's goroutine to set up worker-local
// scratch and returns the chunk function, which must execute trials
// lo..hi inclusive. Handing bodies a whole chunk (rather than one trial)
// lets them keep kernel state hot across the chunk and costs one indirect
// call per parChunkTrials trials instead of one per trial.
//
// Dispatch is chunked: a monotonic counter hands out chunks of
// parChunkTrials consecutive trials. Workers poll stop/interrupt only
// BETWEEN chunks and never abandon a claimed chunk, so every handed-out
// chunk is fully executed and the executed trials are exactly
// start+1..done for the returned done. A worker panic is recovered,
// cancels the siblings, and surfaces as an ErrWorkerPanic-wrapped error
// naming the claimed chunk's bounds; done is meaningless in that case
// because the panicking worker abandoned its chunk mid-flight.
func parLoop(start, end, workers int, interrupt func() bool, newBody func(w int) func(lo, hi int)) (done int, err error) {
	total := end - start
	nChunks := (total + parChunkTrials - 1) / parChunkTrials
	var next atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var panicMu sync.Mutex
	var panicErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The claimed chunk's bounds, for the panic report. curHi==0
			// means no chunk was claimed yet (trial bounds are 1-based), so
			// the panic came from newBody or the between-chunk bookkeeping.
			var curLo, curHi int
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicErr == nil {
						if curHi > 0 {
							panicErr = fmt.Errorf("%w: trials %d..%d: %v", ErrWorkerPanic, curLo, curHi, r)
						} else {
							panicErr = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
						}
					}
					panicMu.Unlock()
					halt()
				}
			}()
			body := newBody(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if interrupt != nil && interrupt() {
					halt()
					return
				}
				c := next.Add(1) - 1
				if c >= int64(nChunks) {
					return
				}
				lo := start + int(c)*parChunkTrials + 1
				hi := min(start+(int(c)+1)*parChunkTrials, end)
				curLo, curHi = lo, hi
				body(lo, hi)
			}
		}(w)
	}
	wg.Wait()
	if panicErr != nil {
		return 0, panicErr
	}
	handed := int(next.Load())
	if handed > nChunks {
		handed = nChunks
	}
	done = min(start+handed*parChunkTrials, end)
	return done, nil
}

// resolveExecutor picks the executor for a runner invocation. An explicit
// opt-level executor always wins (even for tiny remaining ranges — a
// distributed caller wants its fleet used, not silently bypassed). With
// none set, the historical behaviour is preserved exactly: clamp workers
// to the remaining units, fall back to the sequential runner for <=1, and
// otherwise use the in-process pool. seq reports whether the caller must
// take its sequential path.
func resolveExecutor(explicit TrialExecutor, workers, remaining int) (exec TrialExecutor, seq bool) {
	if explicit != nil {
		return explicit, false
	}
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	if workers > remaining {
		workers = remaining
	}
	if workers <= 1 {
		return nil, true
	}
	return &LocalExecutor{Workers: workers}, false
}

// OSParallel runs Ordering Sampling with trials distributed over workers
// goroutines (0 means GOMAXPROCS), or over opt.Executor when one is set.
// Trials are independent and each trial's random stream is derived from
// (Seed, trial index), so the estimates are bit-identical to the
// sequential OS with the same options — parallelism (local or
// distributed) changes wall-clock time, never results. Cancellation
// (opt.Interrupt, which every worker polls concurrently) yields the same
// partial-Result-plus-Checkpoint contract as OS, and opt.Resume continues
// such a checkpoint. The OnTrial hook is not supported here (trial
// completion order would be nondeterministic); use OS when tracing.
func OSParallel(g *bigraph.Graph, opt OSOptions, workers int) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OSParallel requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: OSParallel does not support OnTrial; use OS")
	}
	start := 0
	resumed := newProbAccumulator()
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck("os", opt.Seed, opt.Trials, 0, 0, g); err != nil {
			return nil, err
		}
		resumed = accumulatorFromCounts(opt.Resume.Counts)
		start = opt.Resume.Done
	}
	exec, seq := resolveExecutor(opt.Executor, workers, opt.Trials-start)
	if seq {
		return OS(g, opt)
	}
	r, err := exec.ExecuteTrials(&ExecJob{
		Kind:  ExecOS,
		Graph: g,
		Seed:  opt.Seed,
		Units: opt.Trials,
		Start: start,
		OS: OSOptions{
			DisableEdgePrune: opt.DisableEdgePrune,
			KeepAllAngles:    opt.KeepAllAngles,
			DropA2:           opt.DropA2,
		},
		Interrupt: opt.Interrupt,
		Probe:     opt.Probe,
		Workers:   workers,
		Spec:      ExecSpec{Method: "os", Seed: opt.Seed, Trials: opt.Trials},
	})
	if err != nil {
		return nil, err
	}
	r.foldCounts(resumed)
	var res *Result
	if r.Done < opt.Trials {
		res = resumed.partialResult("os", g, opt.Seed, opt.Trials, r.Done)
	} else {
		res = resumed.result("os", opt.Trials)
	}
	probeFinish(opt.Probe, res)
	return res, nil
}

// EstimateOptimizedParallel runs the Algorithm 5 estimator with trials
// distributed over workers goroutines (0 means GOMAXPROCS), or over
// opt.Executor when one is set. Per-trial streams are derived from
// (Seed, trial index), so the estimates are bit-identical to
// EstimateOptimized with the same options. Cancellation and resume follow
// the sequential contract (opt.Interrupt is polled from every worker;
// opt.State reports the completed prefix). The OnTrial hook is
// unsupported (trial completion order would be nondeterministic), and the
// EagerSampling/DisableEarlyBreak ablations are sequential-only knobs.
func EstimateOptimizedParallel(c *Candidates, opt OptimizedOptions, workers int) ([]float64, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: optimized estimator requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: EstimateOptimizedParallel does not support OnTrial; use EstimateOptimized")
	}
	if opt.EagerSampling || opt.DisableEarlyBreak {
		return nil, fmt.Errorf("core: ablation options are sequential-only; use EstimateOptimized")
	}
	n := len(c.List)
	counts, startTrial, err := optimizedResumeCounts(n, opt)
	if err != nil {
		return nil, err
	}
	start := startTrial - 1
	exec, seq := resolveExecutor(opt.Executor, workers, opt.Trials-start)
	if seq {
		return EstimateOptimized(c, opt)
	}
	r, err := exec.ExecuteTrials(&ExecJob{
		Kind:      ExecOptimized,
		Graph:     c.G,
		Cands:     c,
		Seed:      opt.Seed,
		Units:     opt.Trials,
		Start:     start,
		Interrupt: opt.Interrupt,
		Probe:     opt.Probe,
		Workers:   workers,
		Spec:      opt.Spec,
	})
	if err != nil {
		return nil, err
	}
	for i, cnt := range r.CandCounts {
		counts[i] += cnt
	}
	return optimizedFinish(counts, r.Done, opt, r.Done < opt.Trials), nil
}

// EstimateKarpLubyParallel runs the Algorithm 4 estimator with candidates
// distributed over workers goroutines (0 means GOMAXPROCS), or over
// opt.Executor when one is set. Unlike the trial-parallel runners, the
// natural axis here is the candidate: every candidate's estimation is
// independent (its random stream derives from (Seed, candidate index)),
// so per-candidate results are bit-identical to the sequential
// EstimateKarpLuby. Cancellation stops pricing at a candidate-prefix
// boundary and resume continues from it, like the sequential runner. The
// tracing and restriction hooks (OnCandidateTrial, OnlyCandidate) are
// sequential-only; TrialsUsed is supported.
func EstimateKarpLubyParallel(c *Candidates, opt KLOptions, workers int) ([]float64, error) {
	if err := validateKL(opt); err != nil {
		return nil, err
	}
	if opt.OnCandidateTrial != nil || opt.OnlyCandidate != nil {
		return nil, fmt.Errorf("core: EstimateKarpLubyParallel does not support tracing hooks; use EstimateKarpLuby")
	}
	n := len(c.List)
	probs := make([]float64, n)
	trialsUsed := make([]int, n)
	start, err := klResumeInit(n, opt, probs, trialsUsed)
	if err != nil {
		return nil, err
	}
	exec, seq := resolveExecutor(opt.Executor, workers, n-start)
	if seq {
		return EstimateKarpLuby(c, opt)
	}
	r, err := exec.ExecuteTrials(&ExecJob{
		Kind:  ExecKarpLuby,
		Graph: c.G,
		Cands: c,
		Seed:  opt.Seed,
		Units: n,
		Start: start,
		KL: KLOptions{
			BaseTrials: opt.BaseTrials,
			Mu:         opt.Mu,
			MaxTrials:  opt.MaxTrials,
		},
		Interrupt: opt.Interrupt,
		Probe:     opt.Probe,
		Workers:   workers,
		Spec:      opt.Spec,
	})
	if err != nil {
		return nil, err
	}
	copy(probs[start:r.Done], r.CandProbs[start:r.Done])
	copy(trialsUsed[start:r.Done], r.CandTrials[start:r.Done])
	done := r.Done
	if opt.TrialsUsed != nil {
		*opt.TrialsUsed = trialsUsed
	}
	if opt.State != nil {
		*opt.State = EstimatorState{Partial: done < n, Done: done, Probs: probs, Trials: trialsUsed}
	}
	return probs, nil
}
