package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// ErrWorkerPanic wraps a panic recovered inside a parallel runner's worker
// goroutine. The panic does not crash the process: the first panicking
// worker records its value, the remaining workers drain, and the runner
// returns this error (no partial result — an abandoned chunk would break
// the completed-prefix invariant that partial results rely on).
var ErrWorkerPanic = errors.New("core: worker panicked")

// parChunkTrials is the dispatch granularity of the parallel runners. A
// worker claims one chunk of consecutive trials at a time and always
// finishes a claimed chunk, so on cancellation the completed trials form
// an exact prefix 1..done — exactly the state a sequential resume expects.
// Small enough that cancellation latency is a few chunk-lengths of work,
// large enough that the atomic claim is amortized away.
const parChunkTrials = 16

func parDefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parLoop runs trials start+1..end distributed over workers goroutines.
// newBody runs once on each worker's goroutine to set up worker-local
// scratch and returns the chunk function, which must execute trials
// lo..hi inclusive. Handing bodies a whole chunk (rather than one trial)
// lets them keep kernel state hot across the chunk and costs one indirect
// call per parChunkTrials trials instead of one per trial.
//
// Dispatch is chunked: a monotonic counter hands out chunks of
// parChunkTrials consecutive trials. Workers poll stop/interrupt only
// BETWEEN chunks and never abandon a claimed chunk, so every handed-out
// chunk is fully executed and the executed trials are exactly
// start+1..done for the returned done. A worker panic is recovered,
// cancels the siblings, and surfaces as an ErrWorkerPanic-wrapped error;
// done is meaningless in that case because the panicking worker abandoned
// its chunk mid-flight.
func parLoop(start, end, workers int, interrupt func() bool, newBody func(w int) func(lo, hi int)) (done int, err error) {
	total := end - start
	nChunks := (total + parChunkTrials - 1) / parChunkTrials
	var next atomic.Int64
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var panicMu sync.Mutex
	var panicErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicErr == nil {
						panicErr = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
					}
					panicMu.Unlock()
					halt()
				}
			}()
			body := newBody(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if interrupt != nil && interrupt() {
					halt()
					return
				}
				c := next.Add(1) - 1
				if c >= int64(nChunks) {
					return
				}
				lo := start + int(c)*parChunkTrials + 1
				hi := min(start+(int(c)+1)*parChunkTrials, end)
				body(lo, hi)
			}
		}(w)
	}
	wg.Wait()
	if panicErr != nil {
		return 0, panicErr
	}
	handed := int(next.Load())
	if handed > nChunks {
		handed = nChunks
	}
	done = min(start+handed*parChunkTrials, end)
	return done, nil
}

// OSParallel runs Ordering Sampling with trials distributed over workers
// goroutines (0 means GOMAXPROCS). Trials are independent and each trial's
// random stream is derived from (Seed, trial index), so the estimates are
// bit-identical to the sequential OS with the same options — parallelism
// changes wall-clock time, never results. Cancellation (opt.Interrupt,
// which every worker polls concurrently) yields the same partial-Result-
// plus-Checkpoint contract as OS, and opt.Resume continues such a
// checkpoint. The OnTrial hook is not supported here (trial completion
// order would be nondeterministic); use OS when tracing.
func OSParallel(g *bigraph.Graph, opt OSOptions, workers int) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OSParallel requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: OSParallel does not support OnTrial; use OS")
	}
	start := 0
	resumed := newProbAccumulator()
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck("os", opt.Seed, opt.Trials, 0, 0, g); err != nil {
			return nil, err
		}
		resumed = accumulatorFromCounts(opt.Resume.Counts)
		start = opt.Resume.Done
	}
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	if workers > opt.Trials-start {
		workers = opt.Trials - start
	}
	if workers <= 1 {
		return OS(g, opt)
	}
	opt.Probe.EnsureWorkers(workers)

	root := randx.New(opt.Seed)
	// Worker-local accumulators and kernels, merged at the end; no shared
	// mutable state during the run (DeriveInto only reads root). Each
	// worker builds one flat kernel and reuses it for every trial of every
	// chunk it claims, so the steady-state per-trial cost is the kernel
	// scan alone — no per-trial closures, derives, or allocations.
	accs := make([]*probAccumulator, workers)
	done, err := parLoop(start, opt.Trials, workers, opt.Interrupt, func(w int) func(int, int) {
		acc := newProbAccumulator()
		accs[w] = acc
		idx := newOSIndex(g, opt)
		var sMB butterfly.MaxSet
		opt.Probe.LabelWorker(w)
		meter := newTrialMeter(opt.Probe, w, idx.snap.numEdges(), false)
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				scanned := idx.runTrialSeeded(root, uint64(trial), &sMB)
				hit := !sMB.Empty()
				if hit {
					acc.addMaxSet(&sMB)
				}
				meter.observe(trial, scanned, hit)
			}
			// Chunks are always fully executed, so flushing per chunk keeps
			// the registry's counters an exact function of the done-prefix —
			// identical totals to the sequential run over the same trials.
			meter.flush(hi)
		}
	})
	if err != nil {
		return nil, err
	}
	merged := resumed
	for _, a := range accs {
		if a != nil {
			merged.merge(a)
		}
	}
	var res *Result
	if done < opt.Trials {
		res = merged.partialResult("os", g, opt.Seed, opt.Trials, done)
	} else {
		res = merged.result("os", opt.Trials)
	}
	probeFinish(opt.Probe, res)
	return res, nil
}

// EstimateOptimizedParallel runs the Algorithm 5 estimator with trials
// distributed over workers goroutines (0 means GOMAXPROCS). Each worker
// owns private lazy-sampling scratch and a private count vector; per-trial
// streams are derived from (Seed, trial index), so the estimates are
// bit-identical to EstimateOptimized with the same options. Cancellation
// and resume follow the sequential contract (opt.Interrupt is polled from
// every worker; opt.State reports the completed prefix). The OnTrial hook
// is unsupported (trial completion order would be nondeterministic), and
// the EagerSampling/DisableEarlyBreak ablations are sequential-only knobs.
func EstimateOptimizedParallel(c *Candidates, opt OptimizedOptions, workers int) ([]float64, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: optimized estimator requires Trials > 0, got %d", opt.Trials)
	}
	if opt.OnTrial != nil {
		return nil, fmt.Errorf("core: EstimateOptimizedParallel does not support OnTrial; use EstimateOptimized")
	}
	if opt.EagerSampling || opt.DisableEarlyBreak {
		return nil, fmt.Errorf("core: ablation options are sequential-only; use EstimateOptimized")
	}
	n := len(c.List)
	counts, startTrial, err := optimizedResumeCounts(n, opt)
	if err != nil {
		return nil, err
	}
	start := startTrial - 1
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	if workers > opt.Trials-start {
		workers = opt.Trials - start
	}
	if workers <= 1 {
		return EstimateOptimized(c, opt)
	}
	opt.Probe.EnsureWorkers(workers)

	g := c.G
	numE := g.NumEdges()
	// One id-indexed threshold table, shared read-only by all workers.
	thresh := edgeThresholds(g)
	root := randx.New(opt.Seed)
	countsPer := make([][]int64, workers)
	done, err := parLoop(start, opt.Trials, workers, opt.Interrupt, func(w int) func(int, int) {
		cw := make([]int64, n)
		countsPer[w] = cw
		stamp := make([]int32, numE)
		val := make([]bool, numE)
		var cur int32
		var rng randx.RNG
		opt.Probe.LabelWorker(w)
		meter := newTrialMeter(opt.Probe, w, n, true)
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				root.DeriveInto(uint64(trial), &rng)
				cur++
				wMax := math.Inf(-1)
				examined := n
				for k := 0; k < n; k++ {
					cand := &c.List[k]
					if cand.Weight < wMax {
						examined = k
						break
					}
					exists := true
					for _, id := range cand.Edges {
						if stamp[id] != cur {
							stamp[id] = cur
							val[id] = rng.BernoulliThresholded(thresh[id])
						}
						if !val[id] {
							exists = false
							break
						}
					}
					if exists {
						cw[k]++
						wMax = cand.Weight
					}
				}
				meter.observe(trial, examined, !math.IsInf(wMax, -1))
			}
			meter.flush(hi)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, cw := range countsPer {
		if cw == nil {
			continue
		}
		for i, cnt := range cw {
			counts[i] += cnt
		}
	}
	return optimizedFinish(counts, done, opt, done < opt.Trials), nil
}

// EstimateKarpLubyParallel runs the Algorithm 4 estimator with candidates
// distributed over workers goroutines (0 means GOMAXPROCS). Unlike the
// trial-parallel runners, the natural axis here is the candidate: every
// candidate's estimation is independent (its random stream derives from
// (Seed, candidate index)), so per-candidate results are bit-identical to
// the sequential EstimateKarpLuby. Cancellation stops pricing at a
// candidate-prefix boundary and resume continues from it, like the
// sequential runner. The tracing and restriction hooks (OnCandidateTrial,
// OnlyCandidate) are sequential-only; TrialsUsed is supported.
func EstimateKarpLubyParallel(c *Candidates, opt KLOptions, workers int) ([]float64, error) {
	if err := validateKL(opt); err != nil {
		return nil, err
	}
	if opt.OnCandidateTrial != nil || opt.OnlyCandidate != nil {
		return nil, fmt.Errorf("core: EstimateKarpLubyParallel does not support tracing hooks; use EstimateKarpLuby")
	}
	n := len(c.List)
	probs := make([]float64, n)
	trialsUsed := make([]int, n)
	start, err := klResumeInit(n, opt, probs, trialsUsed)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = parDefaultWorkers()
	}
	if workers > n-start {
		workers = n - start
	}
	if workers <= 1 {
		return EstimateKarpLuby(c, opt)
	}

	opt.Probe.EnsureWorkers(workers)
	numE := c.G.NumEdges()
	thresh := edgeThresholds(c.G) // shared read-only by all workers
	root := randx.New(opt.Seed)
	// parLoop's 1-based "trials" start+1..n map to candidate indices
	// start..n-1. Writes into probs/trialsUsed are per-index disjoint.
	done, err := parLoop(start, n, workers, opt.Interrupt, func(w int) func(int, int) {
		scratch := newKLScratch(numE, thresh)
		opt.Probe.LabelWorker(w)
		lastT := time.Now()
		return func(lo, hi int) {
			for trial := lo; trial <= hi; trial++ {
				i := trial - 1
				probs[i], trialsUsed[i] = klPrice(c, i, opt, root, scratch)
				probeKLCandidate(opt.Probe, w, i, trialsUsed[i], &lastT)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if opt.TrialsUsed != nil {
		*opt.TrialsUsed = trialsUsed
	}
	if opt.State != nil {
		*opt.State = EstimatorState{Partial: done < n, Done: done, Probs: probs, Trials: trialsUsed}
	}
	return probs, nil
}
