// Package core implements the paper's MPMB algorithms: the exact solver
// (possible-world enumeration), the MC-VP baseline (Algorithm 1), Ordering
// Sampling (Algorithm 2), Ordering-Listing Sampling (Algorithm 3) with
// both the Karp-Luby (Algorithm 4) and the optimized (Algorithm 5)
// probability estimators, the top-k extension (Section VII), and the ε-δ
// trial-number theory (Theorem IV.1, Lemmas V.2 and VI.4, Equation 8).
package core

import (
	"math"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Estimate is one butterfly's estimated probability of being the maximum
// weighted butterfly, P(B) of Equation 4.
type Estimate struct {
	B      butterfly.Butterfly
	Weight float64 // w(B) on the backbone graph
	P      float64 // estimated (or exact) P(B)
}

// Result is the outcome of one MPMB computation.
type Result struct {
	// Method identifies the algorithm that produced the result:
	// "exact", "mc-vp", "os", "ols-kl" or "ols".
	Method string
	// Trials is the number of sampling-phase trials performed. For OLS it
	// excludes the preparing phase (reported separately as PrepTrials).
	Trials int
	// PrepTrials is the preparing-phase trial count (OLS only, else 0).
	PrepTrials int
	// Estimates holds every butterfly that received nonzero probability
	// mass (plus, for OLS, every candidate even at zero), sorted by
	// descending P, ties by descending weight, then canonical vertex
	// order.
	Estimates []Estimate
	// Partial marks a run cut short by cancellation. For the sampling
	// methods the estimates are then normalized over the TrialsDone
	// completed trials — still unbiased, because every trial's stream
	// derives from (Seed, trial index) and a prefix of i.i.d. trials is
	// itself a valid (lower-fidelity) sample. A partial EXACT run is
	// different: its estimates sum only the enumerated-world prefix, so
	// they are deterministic lower bounds on the true probabilities, not
	// unbiased samples (see TrialsDone).
	Partial bool
	// TrialsDone is the completed prefix the estimates are normalized
	// over. It equals Trials for a complete run. Units are sampling trials
	// for mc-vp/os/ols, fully priced candidates for a partial ols-kl run,
	// and enumerated worlds for a partial exact run (whose estimates are
	// then lower bounds, not unbiased samples).
	TrialsDone int
	// Checkpoint carries the resumable accumulator state of a cancelled
	// run (nil for complete runs and for methods without resume support).
	// Pass it back via the options' Resume field to finish the run
	// bit-identically to an uninterrupted one.
	Checkpoint *Checkpoint
	// Adaptive carries the run supervisor's bookkeeping — stop reason,
	// achieved half-width, audit escalations and degradation-ladder
	// transitions. It is nil unless the run went through Supervise.
	Adaptive *AdaptiveReport
	// Metrics is the observer's merged telemetry snapshot taken when the
	// run returned: trial counts, prune splits, supervisor health and the
	// terminal leader estimate. It is nil unless the run was invoked with
	// an observer attached.
	Metrics *telemetry.Metrics
	// Communities holds the per-community results of a community query, in
	// ascending community label order; the top-level Estimates then
	// concatenate each community's top-k. Nil for non-community queries.
	Communities []CommunityResult
}

// sortEstimates establishes the canonical result order.
func sortEstimates(es []Estimate) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.P != b.P {
			return a.P > b.P
		}
		if a.Weight != b.Weight {
			return a.Weight > b.Weight
		}
		return lessButterfly(a.B, b.B)
	})
}

func lessButterfly(a, b butterfly.Butterfly) bool {
	if a.U1 != b.U1 {
		return a.U1 < b.U1
	}
	if a.U2 != b.U2 {
		return a.U2 < b.U2
	}
	if a.V1 != b.V1 {
		return a.V1 < b.V1
	}
	return a.V2 < b.V2
}

// Best returns the most probable maximum weighted butterfly, i.e. the
// MPMB answer (Definition 5). ok is false when the graph admitted no
// butterfly in any sampled world.
func (r *Result) Best() (Estimate, bool) {
	if len(r.Estimates) == 0 {
		return Estimate{}, false
	}
	return r.Estimates[0], true
}

// TopK returns the k most probable maximum weighted butterflies (the
// top-k MPMB extension of Section VII), or all of them if fewer exist.
func (r *Result) TopK(k int) []Estimate {
	if k < 0 {
		k = 0
	}
	if k > len(r.Estimates) {
		k = len(r.Estimates)
	}
	out := make([]Estimate, k)
	copy(out, r.Estimates[:k])
	return out
}

// TopKDisjoint returns up to k estimates chosen greedily by descending
// probability such that no two share a vertex. The paper motivates MPMB
// with "scattered visualization" — a dense region contains many
// overlapping near-duplicate butterflies, and vertex-disjoint selection
// returns one representative per region (used by the brain-network use
// case to place its ten markers in distinct clusters).
func (r *Result) TopKDisjoint(k int) []Estimate {
	if k <= 0 {
		return nil
	}
	var out []Estimate
	usedL := make(map[uint32]bool)
	usedR := make(map[uint32]bool)
	for _, e := range r.Estimates {
		if len(out) == k {
			break
		}
		b := e.B
		if usedL[b.U1] || usedL[b.U2] || usedR[b.V1] || usedR[b.V2] {
			continue
		}
		usedL[b.U1], usedL[b.U2] = true, true
		usedR[b.V1], usedR[b.V2] = true, true
		out = append(out, e)
	}
	return out
}

// ConfidenceInterval returns a Wilson score interval for the estimated
// P(B) at the given z value (1.96 ≈ 95%, 2.58 ≈ 99%). It applies to the
// trial-counting methods (mc-vp, os, ols), whose estimates are binomial
// proportions over Result.Trials; for the exact method the interval
// degenerates to [P, P]. ok is false when the butterfly is absent from
// the result or the method's estimates are not binomial proportions
// (ols-kl transforms a different proportion through Equation line 10, so
// a per-butterfly interval needs its trial allocation — use the Lemma
// VI.4 machinery instead).
func (r *Result) ConfidenceInterval(b butterfly.Butterfly, z float64) (lo, hi float64, ok bool) {
	e, found := r.Lookup(b)
	if !found || z <= 0 {
		return 0, 0, false
	}
	switch r.Method {
	case "exact":
		return e.P, e.P, true
	case "mc-vp", "os", "ols":
		trials := r.Trials
		if r.Partial {
			trials = r.TrialsDone // partial estimates are normalized over the prefix
		}
		if trials <= 0 {
			return 0, 0, false
		}
		n := float64(trials)
		p := e.P
		denom := 1 + z*z/n
		center := (p + z*z/(2*n)) / denom
		half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
		lo, hi = center-half, center+half
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
		return lo, hi, true
	default:
		return 0, 0, false
	}
}

// Lookup returns the estimate for a specific butterfly, if present.
func (r *Result) Lookup(b butterfly.Butterfly) (Estimate, bool) {
	for _, e := range r.Estimates {
		if e.B == b {
			return e, true
		}
	}
	return Estimate{}, false
}

// probAccumulator tallies, per butterfly, how many trials reported it as a
// maximum weighted butterfly. It is the shared bookkeeping behind MC-VP
// and OS (lines 18–19 of Algorithm 1, 21–22 of Algorithm 2).
type probAccumulator struct {
	counts  map[butterfly.Butterfly]int
	weights map[butterfly.Butterfly]float64
	// Running leader (argmax of counts), maintained incrementally so
	// instrumented runners can publish a live estimate at each flush
	// without rescanning the maps. Telemetry-only: the Result order is
	// still established by sortEstimates.
	leadCount int
	leadB     butterfly.Butterfly
	leadW     float64
}

func newProbAccumulator() *probAccumulator {
	return &probAccumulator{
		counts:  make(map[butterfly.Butterfly]int),
		weights: make(map[butterfly.Butterfly]float64),
	}
}

// addMaxSet credits one trial's maximum set.
func (a *probAccumulator) addMaxSet(m *butterfly.MaxSet) {
	for _, b := range m.Set {
		a.counts[b]++
		a.weights[b] = m.W
		if c := a.counts[b]; c > a.leadCount {
			a.leadCount, a.leadB, a.leadW = c, b, m.W
		}
	}
}

// merge folds another accumulator's tallies into a (used to combine
// worker-local accumulators and resumed checkpoint state).
func (a *probAccumulator) merge(b *probAccumulator) {
	for bf, c := range b.counts {
		a.counts[bf] += c
		a.weights[bf] = b.weights[bf]
		if n := a.counts[bf]; n > a.leadCount {
			a.leadCount, a.leadB, a.leadW = n, bf, b.weights[bf]
		}
	}
}

// snapshot exports the accumulator as canonical-order checkpoint entries.
func (a *probAccumulator) snapshot() []ButterflyCount {
	return sortedCounts(a.counts, a.weights)
}

// accumulatorFromCounts rebuilds an accumulator from checkpoint entries.
func accumulatorFromCounts(entries []ButterflyCount) *probAccumulator {
	a := newProbAccumulator()
	for _, e := range entries {
		a.counts[e.B] = int(e.Count)
		a.weights[e.B] = e.Weight
		if c := int(e.Count); c > a.leadCount {
			a.leadCount, a.leadB, a.leadW = c, e.B, e.Weight
		}
	}
	return a
}

// result converts counts into probabilities P̂(B) = count/trials.
func (a *probAccumulator) result(method string, trials int) *Result {
	res := a.resultNorm(method, trials, trials)
	return res
}

// resultNorm normalizes counts over norm completed trials while reporting
// trials as the run's target — the partial-result path, where norm < trials.
func (a *probAccumulator) resultNorm(method string, trials, norm int) *Result {
	es := make([]Estimate, 0, len(a.counts))
	for b, c := range a.counts {
		es = append(es, Estimate{
			B:      b,
			Weight: a.weights[b],
			P:      float64(c) / float64(norm),
		})
	}
	sortEstimates(es)
	return &Result{Method: method, Trials: trials, TrialsDone: norm, Estimates: es}
}

// partialResult finalizes a cancelled counting run: estimates normalized
// over the done-trial prefix plus a resumable checkpoint.
func (a *probAccumulator) partialResult(method string, g *bigraph.Graph, seed uint64, trials, done int) *Result {
	res := a.resultNorm(method, trials, done)
	res.Partial = true
	res.Checkpoint = &Checkpoint{
		Method:   method,
		Seed:     seed,
		Trials:   trials,
		GraphCRC: g.Checksum(),
		Done:     done,
		Counts:   a.snapshot(),
	}
	return res
}
