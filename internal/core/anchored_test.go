package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// anchorContains reports whether b contains the anchor.
func anchorContains(b butterfly.Butterfly, a Anchor) bool {
	switch a.Kind {
	case AnchorLeft:
		return b.U1 == a.U || b.U2 == a.U
	case AnchorRight:
		return b.V1 == a.V || b.V2 == a.V
	case AnchorEdge:
		return (b.U1 == a.U || b.U2 == a.U) && (b.V1 == a.V || b.V2 == a.V)
	}
	return false
}

// refExactAnchored is an independent brute-force oracle: it enumerates
// worlds and lists every butterfly via the reference enumerator, keeping
// the max-weight set restricted to anchor-containing butterflies. It
// shares no traversal code with anchoredIndex.
func refExactAnchored(t *testing.T, g *bigraph.Graph, a Anchor) map[butterfly.Butterfly]float64 {
	t.Helper()
	probs := make(map[butterfly.Butterfly]float64)
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		var m butterfly.MaxSet
		butterfly.ForEachInWorld(g, w, func(b butterfly.Butterfly, wt float64) bool {
			if anchorContains(b, a) {
				m.Add(b, wt)
			}
			return true
		})
		for _, b := range m.Set {
			probs[b] += pr
		}
		return true
	})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	return probs
}

// allAnchors lists every valid anchor of g.
func allAnchors(g *bigraph.Graph) []Anchor {
	var as []Anchor
	for u := 0; u < g.NumL(); u++ {
		as = append(as, Anchor{Kind: AnchorLeft, U: bigraph.VertexID(u)})
	}
	for v := 0; v < g.NumR(); v++ {
		as = append(as, Anchor{Kind: AnchorRight, V: bigraph.VertexID(v)})
	}
	for _, e := range g.Edges() {
		as = append(as, Anchor{Kind: AnchorEdge, U: e.U, V: e.V})
	}
	return as
}

// TestExactAnchoredMatchesReference certifies the anchored trial
// traversal itself: ExactAnchored (which drives anchoredIndex.runTrial
// over every world) must agree exactly with the independent reference
// oracle for every anchor of every graph.
func TestExactAnchoredMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	graphs := []*bigraph.Graph{figure1Graph()}
	for i := 0; i < 25; i++ {
		graphs = append(graphs, randGraph(r, 4, 4, 12))
	}
	for gi, g := range graphs {
		for _, a := range allAnchors(g) {
			ref := refExactAnchored(t, g, a)
			res, err := ExactAnchored(g, a)
			if err != nil {
				t.Fatalf("graph %d anchor %v: %v", gi, a, err)
			}
			if len(res.Estimates) != len(ref) {
				t.Fatalf("graph %d anchor %v: got %d estimates, want %d", gi, a, len(res.Estimates), len(ref))
			}
			for _, e := range res.Estimates {
				if !anchorContains(e.B, a) {
					t.Fatalf("graph %d anchor %v: estimate %v does not contain anchor", gi, a, e.B)
				}
				if want := ref[e.B]; math.Abs(e.P-want) > 1e-12 {
					t.Fatalf("graph %d anchor %v: P(%v) = %v, want %v", gi, a, e.B, e.P, want)
				}
			}
		}
	}
}

// TestAnchoredOSMatchesExact checks the sampled anchored estimator
// against the exact anchored oracle within the Hoeffding band.
func TestAnchoredOSMatchesExact(t *testing.T) {
	const trials = 4000
	r := rand.New(rand.NewSource(72))
	graphs := []*bigraph.Graph{figure1Graph()}
	for i := 0; i < 4; i++ {
		graphs = append(graphs, randGraph(r, 4, 4, 12))
	}
	eps := statTol(trials)
	for gi, g := range graphs {
		for ai, a := range allAnchors(g) {
			exact, err := ExactAnchored(g, a)
			if err != nil {
				t.Fatal(err)
			}
			res, err := AnchoredOS(g, a, OSOptions{Trials: trials, Seed: uint64(1000*gi + ai)})
			if err != nil {
				t.Fatal(err)
			}
			checkAgainstExact(t, res, exact, eps)
		}
	}
}

// checkAgainstExact compares every estimated probability (and every
// exact butterfly missing from the estimate, at 0) within eps.
func checkAgainstExact(t *testing.T, res, exact *Result, eps float64) {
	t.Helper()
	seen := make(map[butterfly.Butterfly]bool)
	for _, e := range res.Estimates {
		want, ok := exact.Lookup(e.B)
		if !ok {
			t.Fatalf("estimated %v absent from exact oracle (P=%v)", e.B, e.P)
		}
		if math.Abs(e.P-want.P) > eps {
			t.Fatalf("P(%v) = %v, exact %v, tol %v", e.B, e.P, want.P, eps)
		}
		seen[e.B] = true
	}
	for _, e := range exact.Estimates {
		if !seen[e.B] && e.P > eps {
			t.Fatalf("exact butterfly %v (P=%v) never sampled, tol %v", e.B, e.P, eps)
		}
	}
}

// TestAnchoredOSParallelMatchesSequential: the parallel runner derives
// the same per-trial streams, so estimates must be identical.
func TestAnchoredOSParallelMatchesSequential(t *testing.T) {
	g := figure1Graph()
	for _, a := range allAnchors(g) {
		opt := OSOptions{Trials: 500, Seed: 9}
		seq, err := AnchoredOS(g, a, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := AnchoredOSParallel(g, a, opt, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Estimates) != len(par.Estimates) {
			t.Fatalf("anchor %v: %d vs %d estimates", a, len(seq.Estimates), len(par.Estimates))
		}
		for i := range seq.Estimates {
			if seq.Estimates[i] != par.Estimates[i] {
				t.Fatalf("anchor %v estimate %d: %+v vs %+v", a, i, seq.Estimates[i], par.Estimates[i])
			}
		}
	}
}

// TestAnchoredOLSMatchesCandidateOracle prices the anchored candidate
// set exactly (Lemma VI.5 restricted to C_MB) and checks the anchored
// OLS sampling phase against it.
func TestAnchoredOLSMatchesCandidateOracle(t *testing.T) {
	const trials, prep = 4000, 100
	g := figure1Graph()
	eps := statTol(trials)
	for ai, a := range allAnchors(g) {
		for _, kl := range []bool{false, true} {
			seed := uint64(100 + ai)
			cands, err := PrepareAnchoredCandidates(g, a, prep, seed, nil)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := ExactCandidateProbs(cands)
			if err != nil {
				t.Fatal(err)
			}
			opt := OLSOptions{Trials: trials, PrepTrials: prep, Seed: seed, UseKarpLuby: kl}
			if kl {
				opt.KL.Mu = 0.05
			}
			res, err := AnchoredOLS(g, a, opt, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Estimates) != cands.Len() {
				t.Fatalf("anchor %v kl=%v: %d estimates, %d candidates", a, kl, len(res.Estimates), cands.Len())
			}
			for _, e := range res.Estimates {
				if !anchorContains(e.B, a) {
					t.Fatalf("anchor %v: candidate %v does not contain anchor", a, e.B)
				}
			}
			for i, c := range cands.List {
				got, ok := res.Lookup(c.B)
				if !ok {
					t.Fatalf("anchor %v kl=%v: candidate %v missing from result", a, kl, c.B)
				}
				tol := eps
				if kl {
					tol = statTolScaled(c.ExistProb*float64(cands.Len()), trials)
					if tol < eps {
						tol = eps
					}
				}
				if math.Abs(got.P-oracle[i]) > tol {
					t.Fatalf("anchor %v kl=%v: P(%v) = %v, oracle %v, tol %v", a, kl, c.B, got.P, oracle[i], tol)
				}
			}
		}
	}
}

// pendantGraph has L0 as a zero-butterfly-support pendant (one edge to
// R0) next to a proper butterfly on {L1,L2}×{R1,R2}.
func pendantGraph() *bigraph.Graph {
	b := bigraph.NewBuilder(3, 3)
	b.MustAddEdge(0, 0, 5, 0.9) // pendant: L0 touches only R0
	b.MustAddEdge(1, 1, 2, 0.5)
	b.MustAddEdge(1, 2, 1, 0.6)
	b.MustAddEdge(2, 1, 3, 0.7)
	b.MustAddEdge(2, 2, 2, 0.8)
	return b.Build()
}

// TestAnchoredZeroSupport: a vertex (or edge) contained in no butterfly
// must yield an empty Result from every anchored runner.
func TestAnchoredZeroSupport(t *testing.T) {
	g := pendantGraph()
	anchors := []Anchor{
		{Kind: AnchorLeft, U: 0},
		{Kind: AnchorRight, V: 0},
		{Kind: AnchorEdge, U: 0, V: 0},
	}
	for _, a := range anchors {
		exact, err := ExactAnchored(g, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact.Estimates) != 0 {
			t.Fatalf("anchor %v: exact oracle found %d butterflies", a, len(exact.Estimates))
		}
		res, err := AnchoredOS(g, a, OSOptions{Trials: 200, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Estimates) != 0 {
			t.Fatalf("anchor %v: anchored OS returned %d estimates, want 0", a, len(res.Estimates))
		}
		ols, err := AnchoredOLS(g, a, OLSOptions{Trials: 200, PrepTrials: 50, Seed: 3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ols.Estimates) != 0 {
			t.Fatalf("anchor %v: anchored OLS returned %d estimates, want 0", a, len(ols.Estimates))
		}
	}
}

func TestAnchorValidate(t *testing.T) {
	g := figure1Graph()
	bad := []Anchor{
		{},
		{Kind: AnchorLeft, U: 2},
		{Kind: AnchorRight, V: 3},
		{Kind: AnchorEdge, U: 5, V: 0},
		{Kind: AnchorEdge, U: 0, V: 9},
	}
	for _, a := range bad {
		if err := a.Validate(g); err == nil {
			t.Fatalf("anchor %+v: expected validation error", a)
		}
	}
	// A missing backbone edge between in-range endpoints.
	pg := pendantGraph()
	if err := (Anchor{Kind: AnchorEdge, U: 0, V: 1}).Validate(pg); err == nil {
		t.Fatal("non-backbone anchor edge: expected validation error")
	}
	if err := (Anchor{Kind: AnchorLeft, U: 1}).Validate(g); err != nil {
		t.Fatalf("valid anchor rejected: %v", err)
	}
}

// TestAnchoredInterrupt: cancellation yields a partial Result without a
// checkpoint, and anchored runs reject the unsupported resume/executor
// options outright.
func TestAnchoredInterrupt(t *testing.T) {
	g := figure1Graph()
	a := Anchor{Kind: AnchorLeft, U: 0}
	calls := 0
	stopAfter := func(n int) func() bool {
		return func() bool { calls++; return calls > n }
	}
	calls = 0
	res, err := AnchoredOS(g, a, OSOptions{Trials: 1000, Seed: 1, Interrupt: stopAfter(10)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Checkpoint != nil {
		t.Fatalf("interrupted anchored OS: partial=%v checkpoint=%v", res.Partial, res.Checkpoint)
	}
	if res.TrialsDone >= 1000 || res.TrialsDone != 10 {
		t.Fatalf("interrupted anchored OS: TrialsDone=%d", res.TrialsDone)
	}
	calls = 0
	ols, err := AnchoredOLS(g, a, OLSOptions{Trials: 1000, PrepTrials: 100, Seed: 1, Interrupt: stopAfter(5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ols.Partial || ols.Checkpoint != nil {
		t.Fatalf("interrupted anchored OLS: partial=%v checkpoint=%v", ols.Partial, ols.Checkpoint)
	}
	if _, err := AnchoredOS(g, a, OSOptions{Trials: 10, Resume: &Checkpoint{}}); err == nil {
		t.Fatal("anchored OS with Resume: expected error")
	}
	if _, err := AnchoredOLS(g, a, OLSOptions{Trials: 10, PrepTrials: 5, Resume: &Checkpoint{}}, 0); err == nil {
		t.Fatal("anchored OLS with Resume: expected error")
	}
}
