package core

import (
	"fmt"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Candidate is one member of the candidate maximum butterfly set C_MB.
type Candidate struct {
	B         butterfly.Butterfly
	Weight    float64           // canonical backbone weight w(B)
	ExistProb float64           // Pr[E(B)], product of the four edge probabilities
	Edges     [4]bigraph.EdgeID // backbone edge ids in canonical order
	Hits      int               // how many preparing trials reported B maximum
}

// Candidates is C_MB: the candidate maximum weighted butterflies collected
// by the OLS preparing phase, sorted by descending weight (ties broken by
// canonical butterfly order so every run produces the same ordering).
// Index 0 is the heaviest candidate; the Karp-Luby index arithmetic
// (L(i), S_i) is defined over this order.
type Candidates struct {
	G    *bigraph.Graph
	List []Candidate
	// PrepDone is how many preparing trials produced List. It equals the
	// requested trial count unless the preparing phase was cancelled
	// through the OSOptions Interrupt hook, in which case List reflects
	// only the completed prefix of trials.
	PrepDone int
}

// PrepareCandidates runs the OLS preparing phase (lines 2–4 of Algorithm
// 3): nPrep Ordering Sampling trials whose per-trial maximum sets are
// unioned into C_MB. Per Lemma VI.1, a butterfly with true probability
// P(B) appears in C_MB with probability 1 − (1−P(B))^nPrep.
//
// If osOpt.Interrupt fires, the phase stops and the returned candidate
// set covers only the completed trials (PrepDone < nPrep); OLS converts
// that into a resumable prepare-phase checkpoint.
func PrepareCandidates(g *bigraph.Graph, nPrep int, seed uint64, osOpt OSOptions) (*Candidates, error) {
	c, _, err := prepareCandidates(g, nPrep, seed, osOpt, nil, 0)
	return c, err
}

// prepareCandidates is PrepareCandidates with resume support: it seeds the
// hit tallies from a prepare-phase checkpoint's entries and continues at
// trial start+1. The second return reports whether the phase was cut
// short by osOpt.Interrupt.
func prepareCandidates(g *bigraph.Graph, nPrep int, seed uint64, osOpt OSOptions, resume []ButterflyCount, start int) (*Candidates, bool, error) {
	if nPrep <= 0 {
		return nil, false, fmt.Errorf("core: preparing phase requires nPrep > 0, got %d", nPrep)
	}
	idx := acquireKernel(g, osOpt)
	defer releaseKernel(idx)
	root := randx.New(seed)
	hits := make(map[butterfly.Butterfly]int)
	for _, e := range resume {
		hits[e.B] = int(e.Count)
	}
	done := start
	interrupted := false
	var sMB butterfly.MaxSet
	probe := osOpt.Probe.WithPhase(telemetry.PhasePrep)
	meter := newTrialMeter(probe, 0, idx.snap.numEdges(), false)
	for trial := start + 1; trial <= nPrep; trial++ {
		if osOpt.Interrupt != nil && osOpt.Interrupt() {
			interrupted = true
			break
		}
		scanned, fellBack := idx.runTrialSeeded(root, uint64(trial), &sMB)
		for _, b := range sMB.Set {
			if probe != nil {
				if _, seen := hits[b]; !seen {
					probe.Add(0, telemetry.CounterCandidates, 1)
					probe.Emit(telemetry.Event{
						Kind: telemetry.EventCandidatePromoted, Trial: trial,
						B: probeButterfly(b), Weight: sMB.W,
					})
				}
			}
			hits[b]++
		}
		meter.observe(trial, scanned, fellBack, !sMB.Empty())
		done = trial
	}
	meter.flush(done)
	c, err := NewCandidates(g, hits)
	if err != nil {
		return nil, false, err
	}
	c.PrepDone = done
	return c, interrupted, nil
}

// NewCandidates builds a sorted candidate set from a butterfly→hit-count
// map, resolving canonical weights, existence probabilities and edge ids
// against g's backbone. Butterflies not present in the backbone are
// rejected with an error.
func NewCandidates(g *bigraph.Graph, hits map[butterfly.Butterfly]int) (*Candidates, error) {
	list := make([]Candidate, 0, len(hits))
	for b, h := range hits {
		ids, ok := b.EdgeIDs(g)
		if !ok {
			return nil, fmt.Errorf("core: candidate %v is not a backbone butterfly", b)
		}
		w, pr := 0.0, 1.0
		for _, id := range ids {
			w += g.Edge(id).W
			pr *= g.Edge(id).P
		}
		list = append(list, Candidate{B: b, Weight: w, ExistProb: pr, Edges: ids, Hits: h})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Weight != list[j].Weight {
			return list[i].Weight > list[j].Weight
		}
		return lessButterfly(list[i].B, list[j].B)
	})
	return &Candidates{G: g, List: list}, nil
}

// AllBackboneCandidates lists every backbone butterfly as a candidate set
// with zero hit counts. Useful for exact per-candidate computations and
// estimator tests that want a complete C_MB.
func AllBackboneCandidates(g *bigraph.Graph) (*Candidates, error) {
	all := butterfly.AllBackbone(g)
	hits := make(map[butterfly.Butterfly]int, len(all))
	for _, bw := range all {
		hits[bw.B] = 0
	}
	return NewCandidates(g, hits)
}

// Len returns |C_MB|.
func (c *Candidates) Len() int { return len(c.List) }

// prepSnapshot exports the preparing-phase hit tallies as canonical-order
// checkpoint entries, so a cancelled preparing phase can resume exactly.
func (c *Candidates) prepSnapshot() []ButterflyCount {
	out := make([]ButterflyCount, 0, len(c.List))
	for _, cand := range c.List {
		out = append(out, ButterflyCount{B: cand.B, Count: int64(cand.Hits), Weight: cand.Weight})
	}
	sort.Slice(out, func(i, j int) bool { return lessButterfly(out[i].B, out[j].B) })
	return out
}

// LargerCount returns L(i): the number of candidates whose weight is
// strictly larger than candidate i's — equivalently, the largest index
// j ≤ i such that all candidates before j outweigh candidate i. Because
// the list is weight-sorted descending, this is the start of i's weight
// tie-group.
func (c *Candidates) LargerCount(i int) int {
	w := c.List[i].Weight
	// Binary search for the first index whose weight equals w's group.
	lo, hi := 0, i
	for lo < hi {
		mid := (lo + hi) / 2
		if c.List[mid].Weight > w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DiffEdges returns the edge ids of B_j \ B_i: candidate j's backbone
// edges that are not edges of candidate i.
func (c *Candidates) DiffEdges(j, i int) []bigraph.EdgeID {
	var out []bigraph.EdgeID
	for _, ej := range c.List[j].Edges {
		shared := false
		for _, ei := range c.List[i].Edges {
			if ej == ei {
				shared = true
				break
			}
		}
		if !shared {
			out = append(out, ej)
		}
	}
	return out
}

// DiffProb returns Pr[E(B_j \ B_i)], the probability that every edge of
// candidate j that candidate i does not share is present.
func (c *Candidates) DiffProb(j, i int) float64 {
	p := 1.0
	for _, id := range c.DiffEdges(j, i) {
		p *= c.G.Edge(id).P
	}
	return p
}

// SI returns S_i = Σ_{j<L(i)} Pr[E(B_j\B_i)] (line 4 of Algorithm 4).
func (c *Candidates) SI(i int) float64 {
	s := 0.0
	for j := 0; j < c.LargerCount(i); j++ {
		s += c.DiffProb(j, i)
	}
	return s
}

// result assembles a Result from per-candidate probabilities.
func (c *Candidates) result(method string, probs []float64, trials, prepTrials int) *Result {
	es := make([]Estimate, len(c.List))
	for i, cand := range c.List {
		es[i] = Estimate{B: cand.B, Weight: cand.Weight, P: probs[i]}
	}
	sortEstimates(es)
	return &Result{Method: method, Trials: trials, PrepTrials: prepTrials, Estimates: es}
}
