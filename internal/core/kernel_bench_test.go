package core

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// benchGraph builds the fixed corpus the kernel benchmarks (and the CI
// benchstat job) run on: deterministic, butterfly-dense, large enough
// that a trial does real angle work but small enough for -short CI runs.
func benchGraph() *bigraph.Graph {
	r := rand.New(rand.NewSource(1009))
	const numL, numR, numE = 200, 200, 4000
	b := bigraph.NewBuilder(numL, numR)
	seen := make(map[[2]int]bool)
	for added := 0; added < numE; {
		u, v := r.Intn(numL), r.Intn(numR)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		w := halfGrid[r.Intn(len(halfGrid))]
		p := 0.05 + 0.9*r.Float64()
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
		added++
	}
	return b.Build()
}

// BenchmarkOSKernelTrial times one flat-kernel Ordering Sampling trial.
// This is the headline number of the benchmark trajectory; compare it
// against BenchmarkOSReferenceTrial for the kernel-vs-seed speedup.
func BenchmarkOSKernelTrial(b *testing.B) {
	g := benchGraph()
	// acquireKernel is the production entry point: it uses the cached,
	// calibrated snapshot (truncated prefix, support-sharpened budgets),
	// so this row measures the same code path OS and the parallel workers
	// run.
	idx := acquireKernel(g, OSOptions{})
	root := randx.New(42)
	var sMB butterfly.MaxSet
	for t := 1; t <= 128; t++ {
		idx.runTrialSeeded(root, uint64(t), &sMB) // steady-state warmup
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.runTrialSeeded(root, uint64(i)+1, &sMB)
	}
}

// BenchmarkOSReferenceTrial times one seed-implementation trial on the
// same corpus and seeds — the pre-rewrite baseline.
func BenchmarkOSReferenceTrial(b *testing.B) {
	g := benchGraph()
	idx := newOSRefIndex(g, OSOptions{})
	root := randx.New(42)
	var sMB butterfly.MaxSet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := root.Derive(uint64(i) + 1)
		idx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
			return rng.Bernoulli(g.Edge(id).P)
		})
	}
}

// BenchmarkOSParallelRun times a full parallel OS run (batched chunk
// dispatch, per-worker kernels) end to end.
func BenchmarkOSParallelRun(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OSParallel(g, OSOptions{Trials: 200, Seed: 42}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizedEstimatorTrial times one optimized-estimator trial
// over a prepared candidate set.
func BenchmarkOptimizedEstimatorTrial(b *testing.B) {
	g := benchGraph()
	cands, err := PrepareCandidates(g, 50, 42, OSOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if cands.Len() == 0 {
		b.Skip("bench graph produced no candidates")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateOptimized(cands, OptimizedOptions{Trials: 1, Seed: uint64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAngleTableResetAndFill isolates the open-addressing table:
// one generation-bump reset plus a typical fill, the operation the seed
// implementation paid a map clear and rehash for.
func BenchmarkAngleTableResetAndFill(b *testing.B) {
	tab := newAngleTable(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.reset()
		for k := 0; k < 200; k++ {
			key := uint64(k)*2654435761 + 1
			if _, ok := tab.get(key); !ok {
				tab.put(key, int32(k))
			}
		}
	}
}
