package core

import (
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// TestMCVPInterrupt verifies the interrupt hook: an immediate interrupt
// returns a partial result with zero completed trials; a counting
// interrupt lets a bounded number of trials through.
func TestMCVPInterrupt(t *testing.T) {
	g := figure1Graph()

	completed := -1
	res, err := MCVP(g, MCVPOptions{
		Trials:          100,
		Seed:            1,
		Interrupt:       func() bool { return true },
		CompletedTrials: &completed,
	})
	if err != nil {
		t.Fatalf("err = %v, want partial result", err)
	}
	if !res.Partial || res.TrialsDone != 0 {
		t.Fatalf("Partial=%v TrialsDone=%d, want partial 0", res.Partial, res.TrialsDone)
	}
	if completed != 0 {
		t.Fatalf("completed = %d, want 0", completed)
	}

	calls := 0
	completed = -1
	res, err = MCVP(g, MCVPOptions{
		Trials: 100,
		Seed:   1,
		Interrupt: func() bool {
			calls++
			return calls > 10
		},
		CompletedTrials: &completed,
	})
	if err != nil {
		t.Fatalf("err = %v, want partial result", err)
	}
	if !res.Partial || res.TrialsDone != completed {
		t.Fatalf("Partial=%v TrialsDone=%d completed=%d, want matching partial count", res.Partial, res.TrialsDone, completed)
	}
	if completed < 1 || completed >= 100 {
		t.Fatalf("completed = %d, want a partial count", completed)
	}

	// No interrupt: full run, CompletedTrials reaches Trials.
	completed = -1
	res, err = MCVP(g, MCVPOptions{Trials: 50, Seed: 1, CompletedTrials: &completed})
	if err != nil {
		t.Fatal(err)
	}
	if completed != 50 || res.Trials != 50 {
		t.Fatalf("completed = %d, res.Trials = %d, want 50", completed, res.Trials)
	}
}

// TestMCVPTrialHookSeesEmptyTrials ensures OnTrial fires even for worlds
// with no butterfly.
func TestMCVPTrialHookSeesEmptyTrials(t *testing.T) {
	// Single uncertain edge: no world has a butterfly.
	b := bigraphBuilder1()
	fired := 0
	_, err := MCVP(b, MCVPOptions{Trials: 20, Seed: 2, OnTrial: func(trial int, sMB *butterfly.MaxSet) {
		fired++
		if !sMB.Empty() {
			t.Fatal("butterfly reported on a butterfly-free graph")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 20 {
		t.Fatalf("OnTrial fired %d times, want 20", fired)
	}
}
