package core

import (
	"math"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// TestFigure1WorldProbability reproduces the possible world of Figure
// 1(b): edge (u1,v1) absent, all others present, probability 0.02016.
func TestFigure1WorldProbability(t *testing.T) {
	g := figure1Graph()
	w := possible.NewWorld(g.NumEdges())
	for i := 1; i < 6; i++ { // edge 0 is (u1,v1); leave it absent
		w.Set(bigraph.EdgeID(i))
	}
	got := possible.Prob(g, w)
	want := (1 - 0.5) * 0.6 * 0.8 * 0.3 * 0.4 * 0.7
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("world probability = %v, want %v", got, want)
	}
	if math.Abs(want-0.02016) > 1e-12 {
		t.Fatalf("paper constant drifted: %v != 0.02016", want)
	}
}

// TestFigure1ButterflyWeight checks the weight-7 butterfly
// B(u1,u2 | v2,v3) highlighted in Figure 1(b).
func TestFigure1ButterflyWeight(t *testing.T) {
	g := figure1Graph()
	b := butterfly.New(0, 1, 1, 2)
	w, ok := b.Weight(g)
	if !ok {
		t.Fatal("B(u1,u2|v2,v3) should be a backbone butterfly")
	}
	if w != 7 {
		t.Fatalf("w(B) = %v, want 7", w)
	}
}

// TestFigure1Exact checks the exact solver on the running example:
//   - the backbone has exactly three butterflies;
//   - the heaviest (weight 10) is maximum exactly when it exists, so
//     P = 0.5·0.6·0.3·0.4 = 0.036;
//   - probabilities are within [0,1] and sum to Pr[some butterfly exists].
func TestFigure1Exact(t *testing.T) {
	g := figure1Graph()
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 3 {
		t.Fatalf("got %d butterflies with P>0, want 3: %+v", len(res.Estimates), res.Estimates)
	}
	b10 := butterfly.New(0, 1, 0, 1)
	e, ok := res.Lookup(b10)
	if !ok {
		t.Fatalf("weight-10 butterfly missing from exact result")
	}
	if e.Weight != 10 {
		t.Fatalf("weight of %v = %v, want 10", b10, e.Weight)
	}
	want := 0.5 * 0.6 * 0.3 * 0.4
	if math.Abs(e.P-want) > 1e-12 {
		t.Fatalf("P(weight-10) = %v, want %v", e.P, want)
	}

	// The sum over butterflies of P(B) ≥ Pr[at least one butterfly
	// exists] (ties can credit several butterflies per world); verify the
	// sum against a direct world enumeration of that quantity computed
	// with per-world tie counts.
	sum := 0.0
	for _, est := range res.Estimates {
		sum += est.P
	}
	direct := 0.0
	err = possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		m := butterfly.MaxWeightSet(g, w)
		direct += pr * float64(len(m.Set))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-direct) > 1e-12 {
		t.Fatalf("Σ P(B) = %v, want %v", sum, direct)
	}
}

// TestExactProbMatchesExact cross-checks the single-butterfly path
// against the full enumeration on the running example.
func TestExactProbMatchesExact(t *testing.T) {
	g := figure1Graph()
	res, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range res.Estimates {
		p, err := ExactProb(g, est.B)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-est.P) > 1e-12 {
			t.Fatalf("ExactProb(%v) = %v, Exact gave %v", est.B, p, est.P)
		}
	}
	// A non-backbone butterfly has probability zero.
	if p, err := ExactProb(g, butterfly.Butterfly{U1: 0, U2: 1, V1: 0, V2: 4}); err != nil || p != 0 {
		t.Fatalf("ExactProb(non-backbone) = %v, %v; want 0, nil", p, err)
	}
}

// TestExactRefusesLargeGraphs ensures the exponential enumeration is
// guarded.
func TestExactRefusesLargeGraphs(t *testing.T) {
	b := bigraph.NewBuilder(6, 6)
	for u := 0; u < 6; u++ {
		for v := 0; v < 6; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, 0.5)
		}
	}
	if _, err := Exact(b.Build()); err == nil {
		t.Fatal("Exact accepted a 36-edge graph; want enumeration-limit error")
	}
}

// TestExactNoButterflies covers a graph that cannot contain a butterfly.
func TestExactNoButterflies(t *testing.T) {
	b := bigraph.NewBuilder(3, 3)
	b.MustAddEdge(0, 0, 1, 0.9)
	b.MustAddEdge(1, 1, 2, 0.9)
	b.MustAddEdge(2, 2, 3, 0.9)
	res, err := Exact(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 0 {
		t.Fatalf("expected no butterflies, got %+v", res.Estimates)
	}
	if _, ok := res.Best(); ok {
		t.Fatal("Best() should report no result")
	}
}
