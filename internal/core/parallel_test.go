package core

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// TestOSParallelMatchesSequential: with per-trial derived streams, the
// parallel runner must produce bit-identical estimates to sequential OS
// for any worker count.
func TestOSParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		g := randDenseSmallGraph(r, 14)
		opt := OSOptions{Trials: 500, Seed: uint64(trial) + 9}
		seq, err := OS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7} {
			par, err := OSParallel(g, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Estimates) != len(seq.Estimates) {
				t.Fatalf("workers=%d: %d estimates vs %d sequential",
					workers, len(par.Estimates), len(seq.Estimates))
			}
			for i := range par.Estimates {
				if par.Estimates[i] != seq.Estimates[i] {
					t.Fatalf("workers=%d: estimate %d differs: %+v vs %+v",
						workers, i, par.Estimates[i], seq.Estimates[i])
				}
			}
		}
	}
}

func TestOSParallelValidation(t *testing.T) {
	g := figure1Graph()
	if _, err := OSParallel(g, OSOptions{Trials: 0}, 2); err == nil {
		t.Fatal("OSParallel accepted Trials=0")
	}
	opt := OSOptions{Trials: 10, Seed: 1, OnTrial: func(int, *butterfly.MaxSet) {}}
	if _, err := OSParallel(g, opt, 2); err == nil {
		t.Fatal("OSParallel accepted an OnTrial hook")
	}
}

// TestEstimateOptimizedParallelMatchesSequential mirrors the OS check for
// the Algorithm 5 estimator.
func TestEstimateOptimizedParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 5; trial++ {
		g := randDenseSmallGraph(r, 14)
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() == 0 {
			continue
		}
		opt := OptimizedOptions{Trials: 1000, Seed: uint64(trial) + 17}
		seq, err := EstimateOptimized(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 5} {
			par, err := EstimateOptimizedParallel(cands, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("workers=%d cand %d: %v vs %v", workers, i, par[i], seq[i])
				}
			}
		}
	}
}

func TestEstimateOptimizedParallelValidation(t *testing.T) {
	g := figure1Graph()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateOptimizedParallel(cands, OptimizedOptions{Trials: 0}, 2); err == nil {
		t.Fatal("accepted Trials=0")
	}
	if _, err := EstimateOptimizedParallel(cands, OptimizedOptions{Trials: 10, EagerSampling: true}, 2); err == nil {
		t.Fatal("accepted an ablation option")
	}
	if _, err := EstimateOptimizedParallel(cands, OptimizedOptions{Trials: 10, OnTrial: func(int, []int) {}}, 2); err == nil {
		t.Fatal("accepted an OnTrial hook")
	}
}

// TestEstimateKarpLubyParallelMatchesSequential mirrors the other
// parallel-equivalence checks for the candidate-parallel Karp-Luby.
func TestEstimateKarpLubyParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 4; trial++ {
		g := randDenseSmallGraph(r, 14)
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() < 2 {
			continue
		}
		var seqUsed, parUsed []int
		opt := KLOptions{BaseTrials: 800, Seed: uint64(trial) + 29, Mu: 0.1, TrialsUsed: &seqUsed}
		seq, err := EstimateKarpLuby(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 4} {
			popt := opt
			popt.TrialsUsed = &parUsed
			par, err := EstimateKarpLubyParallel(cands, popt, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if par[i] != seq[i] {
					t.Fatalf("workers=%d cand %d: %v vs %v", workers, i, par[i], seq[i])
				}
				if parUsed[i] != seqUsed[i] {
					t.Fatalf("workers=%d cand %d: trials %d vs %d", workers, i, parUsed[i], seqUsed[i])
				}
			}
		}
	}
}

func TestEstimateKarpLubyParallelValidation(t *testing.T) {
	g := figure1Graph()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateKarpLubyParallel(cands, KLOptions{BaseTrials: 0}, 2); err == nil {
		t.Fatal("accepted BaseTrials=0")
	}
	idx := 0
	if _, err := EstimateKarpLubyParallel(cands, KLOptions{BaseTrials: 10, OnlyCandidate: &idx}, 2); err == nil {
		t.Fatal("accepted OnlyCandidate")
	}
}
