package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// TestPrepareCandidatesFindsAllLikelyButterflies checks Lemma VI.1
// empirically: with 100 preparing trials, every butterfly whose exact
// probability is noticeable must land in C_MB.
func TestPrepareCandidatesFindsAllLikelyButterflies(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := PrepareCandidates(g, 100, 7, OSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inCands := make(map[butterfly.Butterfly]bool)
	for _, c := range cands.List {
		inCands[c.B] = true
	}
	for _, e := range exact.Estimates {
		if e.P > 0.1 && !inCands[e.B] {
			t.Errorf("butterfly %v with exact P=%v missing from C_MB", e.B, e.P)
		}
	}
}

// TestCandidatesOrderingAndLargerCount validates the weight-descending
// invariant and the L(i) computation, including tie groups.
func TestCandidatesOrderingAndLargerCount(t *testing.T) {
	g := figure1Graph()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if cands.Len() != 3 {
		t.Fatalf("|C_MB| = %d, want 3", cands.Len())
	}
	for i := 1; i < cands.Len(); i++ {
		if cands.List[i].Weight > cands.List[i-1].Weight {
			t.Fatalf("candidates not weight-sorted at %d", i)
		}
	}
	// Figure 1 weights: 10, 7, 7.
	if cands.List[0].Weight != 10 || cands.List[1].Weight != 7 || cands.List[2].Weight != 7 {
		t.Fatalf("weights = %v,%v,%v; want 10,7,7",
			cands.List[0].Weight, cands.List[1].Weight, cands.List[2].Weight)
	}
	if got := cands.LargerCount(0); got != 0 {
		t.Fatalf("L(0) = %d, want 0", got)
	}
	if got := cands.LargerCount(1); got != 1 {
		t.Fatalf("L(1) = %d, want 1 (only the weight-10 butterfly)", got)
	}
	if got := cands.LargerCount(2); got != 1 {
		t.Fatalf("L(2) = %d, want 1 (tie group shares L)", got)
	}
}

// TestDiffEdgesAndProb checks B_j \ B_i arithmetic on the Figure 1
// example, where every butterfly pair shares exactly two edges.
func TestDiffEdgesAndProb(t *testing.T) {
	g := figure1Graph()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate 0 is B(u1,u2|v1,v2) (weight 10); candidate 1 and 2 are
	// the weight-7 butterflies. Each shares two edges with candidate 0,
	// so each diff has two edges.
	for i := 1; i < 3; i++ {
		d := cands.DiffEdges(0, i)
		if len(d) != 2 {
			t.Fatalf("|B_0\\B_%d| = %d, want 2", i, len(d))
		}
		p := cands.DiffProb(0, i)
		want := 1.0
		for _, id := range d {
			want *= g.Edge(id).P
		}
		if math.Abs(p-want) > 1e-15 {
			t.Fatalf("DiffProb(0,%d) = %v, want %v", i, p, want)
		}
	}
	// Self-diff is empty with probability 1.
	if d := cands.DiffEdges(1, 1); len(d) != 0 {
		t.Fatalf("self diff has %d edges, want 0", len(d))
	}
	if p := cands.DiffProb(1, 1); p != 1 {
		t.Fatalf("self DiffProb = %v, want 1", p)
	}
}

// TestSIMatchesDefinition verifies S_i = Σ_{j<L(i)} Pr[E(B_j\B_i)].
func TestSIMatchesDefinition(t *testing.T) {
	g := figure1Graph()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if s := cands.SI(0); s != 0 {
		t.Fatalf("S_0 = %v, want 0 (heaviest candidate)", s)
	}
	for i := 1; i < 3; i++ {
		want := cands.DiffProb(0, i)
		if s := cands.SI(i); math.Abs(s-want) > 1e-15 {
			t.Fatalf("S_%d = %v, want %v", i, s, want)
		}
	}
}

// TestOptimizedEstimatorMatchesExact gives the optimized estimator the
// complete backbone candidate set of small random graphs and requires
// statistical agreement with the exact solver. With the full candidate
// set there is no Lemma VI.5 bias, so the estimator must be unbiased.
func TestOptimizedEstimatorMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		g := randDenseSmallGraph(r, 12)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 40000
		probs, err := EstimateOptimized(cands, OptimizedOptions{Trials: trials, Seed: uint64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		// The optimized estimator's per-candidate count is binomial, so
		// the plain Hoeffding half-width is the acceptance band.
		tol := statTol(trials)
		for i, c := range cands.List {
			want := 0.0
			if e, ok := exact.Lookup(c.B); ok {
				want = e.P
			}
			if math.Abs(probs[i]-want) > tol {
				t.Errorf("trial %d: optimized P(%v) = %v, exact %v (tol %v)", trial, c.B, probs[i], want, tol)
			}
		}
	}
}

// TestKarpLubyEstimatorMatchesExact is the same unbiasedness check for
// Algorithm 4 with fixed per-candidate trials.
func TestKarpLubyEstimatorMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 6; trial++ {
		g := randDenseSmallGraph(r, 12)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 40000
		probs, err := EstimateKarpLuby(cands, KLOptions{BaseTrials: trials, Seed: uint64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		// Karp-Luby's estimate is an affine transform of a binomial
		// proportion with scale Pr[E(B_i)]·S_i, so its acceptance band is
		// the scaled Hoeffding half-width per candidate.
		for i, c := range cands.List {
			want := 0.0
			if e, ok := exact.Lookup(c.B); ok {
				want = e.P
			}
			tol := statTolScaled(c.ExistProb*cands.SI(i), trials)
			if math.Abs(probs[i]-want) > tol {
				t.Errorf("trial %d: karp-luby P(%v) = %v, exact %v (tol %v)", trial, c.B, probs[i], want, tol)
			}
		}
	}
}

// TestOptimizedAblationsUnbiased checks the eager-sampling and
// no-early-break ablations still estimate the same quantities.
func TestOptimizedAblationsUnbiased(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 40000
	tol := statTol(trials)
	for _, opt := range []OptimizedOptions{
		{Trials: trials, Seed: 5, EagerSampling: true},
		{Trials: trials, Seed: 6, DisableEarlyBreak: true},
	} {
		probs, err := EstimateOptimized(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cands.List {
			want := 0.0
			if e, ok := exact.Lookup(c.B); ok {
				want = e.P
			}
			if math.Abs(probs[i]-want) > tol {
				t.Errorf("opt %+v: P(%v) = %v, exact %v (tol %v)", opt, c.B, probs[i], want, tol)
			}
		}
	}
}

// TestOLSEndToEnd runs the full Algorithm 3 on the running example and
// validates the top result and trial accounting.
func TestOLSEndToEnd(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, useKL := range []bool{false, true} {
		const trials = 40000
		opt := OLSOptions{PrepTrials: 100, Trials: trials, Seed: 12, UseKarpLuby: useKL}
		res, err := OLS(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		wantMethod := "ols"
		if useKL {
			wantMethod = "ols-kl"
		}
		if res.Method != wantMethod {
			t.Fatalf("method = %q, want %q", res.Method, wantMethod)
		}
		if res.PrepTrials != 100 {
			t.Fatalf("PrepTrials = %d, want 100", res.PrepTrials)
		}
		best, ok := res.Best()
		if !ok {
			t.Fatal("OLS found nothing on the running example")
		}
		exactBest, _ := exact.Best()
		if math.Abs(best.P-exactBest.P) > statTol(trials) {
			t.Errorf("useKL=%v: best P = %v (%v), exact best %v (%v)",
				useKL, best.P, best.B, exactBest.P, exactBest.B)
		}
	}
}

// TestOLSAndKLAgreeOnRandomGraphs is the three-way integration check:
// both full Algorithm 3 variants must agree with the candidate-exact
// closed form for every candidate the preparing phase lists. Rebuilding
// the candidate set with PrepareCandidates at OLS's seed reproduces the
// set OLS uses internally, so ExactCandidateProbs is the truncation-aware
// oracle and the comparison needs no Lemma VI.5 slack — only the
// per-method Hoeffding band.
func TestOLSAndKLAgreeOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison is slow")
	}
	r := rand.New(rand.NewSource(41))
	const trials = 40000
	for trial := 0; trial < 4; trial++ {
		g := randDenseSmallGraph(r, 12)
		seed := uint64(trial)*13 + 5
		cands, err := PrepareCandidates(g, 200, seed, OSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() == 0 {
			continue
		}
		oracle, err := ExactCandidateProbs(cands)
		if err != nil {
			t.Fatal(err)
		}
		for _, useKL := range []bool{false, true} {
			res, err := OLS(g, OLSOptions{PrepTrials: 200, Trials: trials, Seed: seed, UseKarpLuby: useKL})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range cands.List {
				got := 0.0
				if e, ok := res.Lookup(c.B); ok {
					got = e.P
				}
				tol := statTol(trials)
				if useKL {
					tol = statTolScaled(c.ExistProb*cands.SI(i), trials)
				}
				if math.Abs(got-oracle[i]) > tol {
					t.Errorf("trial %d useKL=%v: P(%v)=%v, candidate-exact %v (tol %v)",
						trial, useKL, c.B, got, oracle[i], tol)
				}
			}
		}
	}
}

// TestOLSNoButterflies covers the empty-candidate path: a path-shaped
// graph cannot contain a butterfly, so OLS must return an empty result
// without error.
func TestOLSNoButterflies(t *testing.T) {
	b := bigraph.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0.9)
	b.MustAddEdge(0, 1, 2, 0.9)
	b.MustAddEdge(1, 1, 3, 0.9)
	res, err := OLS(b.Build(), OLSOptions{PrepTrials: 20, Trials: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 0 {
		t.Fatalf("expected empty result, got %+v", res.Estimates)
	}
}
