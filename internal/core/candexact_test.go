package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// TestExactCandidateProbsMatchesWorldEnumeration: with the complete
// backbone candidate set, the candidate-restricted closed form equals the
// world-enumeration exact solver — except on exact weight ties, where the
// closed form treats tied candidates as non-competitors (matching the OLS
// estimators' semantics) while world enumeration splits mass among tie
// co-members. Tie-free random graphs are used to compare apples to
// apples.
func TestExactCandidateProbsMatchesWorldEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	compared := 0
	for trial := 0; trial < 40 && compared < 15; trial++ {
		g := randUniqueWeightGraph(r)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() == 0 {
			continue
		}
		probs, err := ExactCandidateProbs(cands)
		if err != nil {
			t.Fatal(err)
		}
		compared++
		for i, c := range cands.List {
			want := 0.0
			if e, ok := exact.Lookup(c.B); ok {
				want = e.P
			}
			if math.Abs(probs[i]-want) > 1e-9 {
				t.Fatalf("trial %d: candidate %v exact-candidate %v, world-exact %v",
					trial, c.B, probs[i], want)
			}
		}
	}
	if compared < 10 {
		t.Fatalf("only %d graphs compared; generator too sparse", compared)
	}
}

// TestEstimatorsConvergeToCandidateExact: on a TRUNCATED candidate set,
// both sampling-phase estimators must converge to the candidate-exact
// value (not to the true P) — this isolates the estimators from the Lemma
// VI.5 truncation bias and pins down exactly what they estimate.
func TestEstimatorsConvergeToCandidateExact(t *testing.T) {
	r := rand.New(rand.NewSource(87))
	for trial := 0; trial < 5; trial++ {
		g := randUniqueWeightGraph(r)
		all, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if all.Len() < 3 {
			continue
		}
		// Truncate: keep every second candidate.
		hits := make(map[butterfly.Butterfly]int)
		for i := 0; i < all.Len(); i += 2 {
			hits[all.List[i].B] = 1
		}
		cands, err := NewCandidates(g, hits)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactCandidateProbs(cands)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 60000
		gotOpt, err := EstimateOptimized(cands, OptimizedOptions{Trials: trials, Seed: uint64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		gotKL, err := EstimateKarpLuby(cands, KLOptions{BaseTrials: trials, Seed: uint64(trial) + 2})
		if err != nil {
			t.Fatal(err)
		}
		// The optimized estimator counts binomially (plain Hoeffding band);
		// Karp-Luby rescales its proportion by Pr[E(B_i)]·S_i.
		optTol := statTol(trials)
		for i, c := range cands.List {
			if math.Abs(gotOpt[i]-want[i]) > optTol {
				t.Errorf("trial %d cand %d: optimized %v, candidate-exact %v (tol %v)",
					trial, i, gotOpt[i], want[i], optTol)
			}
			if klTol := statTolScaled(c.ExistProb*cands.SI(i), trials); math.Abs(gotKL[i]-want[i]) > klTol {
				t.Errorf("trial %d cand %d: karp-luby %v, candidate-exact %v (tol %v)",
					trial, i, gotKL[i], want[i], klTol)
			}
		}
	}
}

// TestExactCandidateProbsRefusesWideUnions guards the enumeration cap.
func TestExactCandidateProbsRefusesWideUnions(t *testing.T) {
	// A 2×15 near-complete graph: the lightest candidate has ~28
	// competitor diff edges.
	b := bigraph.NewBuilder(2, 16)
	w := 16.0
	for v := 0; v < 16; v++ {
		b.MustAddEdge(0, bigraph.VertexID(v), w, 0.5)
		b.MustAddEdge(1, bigraph.VertexID(v), w, 0.5)
		w-- // unique weights so every butterfly has many strict competitors
	}
	g := b.Build()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExactCandidateProbs(cands); err == nil {
		t.Fatal("expected a relevant-edge-limit error")
	}
}

// randUniqueWeightGraph builds a small random graph whose edge weights
// are all distinct powers-of-two multiples, so no two butterflies can tie.
func randUniqueWeightGraph(r *rand.Rand) *bigraph.Graph {
	for {
		numL := 2 + r.Intn(2)
		numR := 2 + r.Intn(2)
		b := bigraph.NewBuilder(numL, numR)
		w := 1.0
		edges := 0
		for u := 0; u < numL && edges < 12; u++ {
			for v := 0; v < numR && edges < 12; v++ {
				if r.Float64() < 0.8 {
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, 0.2+0.7*r.Float64())
					w *= 2 // distinct subset sums: no butterfly weight ties
					edges++
				}
			}
		}
		if b.NumEdges() >= 4 {
			return b.Build()
		}
	}
}
