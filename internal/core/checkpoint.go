package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

// Checkpoint is the resumable state of a cancelled sampling run. Because
// every trial's random stream is derived from (Seed, trial index) — and
// every Karp-Luby candidate's from (Seed, candidate index) — the
// accumulated counts after T completed units plus the next index are all
// the state a run owns: resuming from a checkpoint and finishing produces
// a Result bit-identical to an uninterrupted run with the same options.
//
// A cancelled run attaches its Checkpoint to the partial Result; encode it
// with Save (or Encode) and hand it back via the options' Resume field (or
// the CLI's -resume flag) to continue.
type Checkpoint struct {
	// Method is the algorithm that produced the state: "mc-vp", "os",
	// "ols" or "ols-kl". Resume refuses a mismatched method.
	Method string
	// Seed is the run's seed; resuming under a different seed would break
	// the prefix property, so it must match.
	Seed uint64
	// Trials is the run's target sampling trial count N.
	Trials int
	// PrepTrials is the OLS preparing-phase target (OLS methods only).
	PrepTrials int
	// Mu is the Karp-Luby Equation 8 target probability (ols-kl only); it
	// sizes per-candidate trial counts, so it must match on resume.
	Mu float64
	// GraphCRC fingerprints the graph the run was computed on (see
	// bigraph.Graph.Checksum). Resume refuses a different graph.
	GraphCRC uint32
	// Prepare marks a checkpoint cut during the OLS preparing phase; Done
	// then counts preparing trials and Counts holds the interim candidate
	// hit tallies.
	Prepare bool
	// Done is the completed prefix: sampling trials for mc-vp/os/ols (or
	// preparing trials when Prepare is set), and fully priced candidates
	// for ols-kl.
	Done int

	// Counts is the trial-hit accumulator of mc-vp, os, and the OLS
	// preparing phase: how many completed trials reported each butterfly
	// as a maximum, in canonical butterfly order.
	Counts []ButterflyCount
	// CandCounts is the optimized estimator's accumulator: per-candidate
	// hit counts indexed like the (deterministic) candidate list.
	CandCounts []int64
	// CandProbs / CandTrials are the Karp-Luby accumulator: estimates and
	// executed trial counts for the first Done candidates (later entries
	// are zero until priced).
	CandProbs  []float64
	CandTrials []int64
}

// ButterflyCount is one accumulator entry: a butterfly, the number of
// completed trials that reported it maximum, and its backbone weight.
type ButterflyCount struct {
	B      butterfly.Butterfly
	Count  int64
	Weight float64
}

// Checkpoint serialization:
//
//	magic   [8]byte  "MPMBCKP1"
//	version uint32   little endian (currently 1)
//	method  uint16 length + bytes
//	seed    uint64
//	trials  uint64
//	prep    uint64
//	mu      float64
//	crcG    uint32   graph fingerprint
//	flags   uint8    bit 0: prepare phase
//	done    uint64
//	kind    uint8    1 = Counts, 2 = CandCounts, 3 = CandProbs/CandTrials
//	n       uint64   entry count, then n records (layout per kind)
//	crc     uint32   IEEE CRC-32 over everything above
const (
	ckptVersion = 1

	ckptKindCounts     = 1
	ckptKindCandCounts = 2
	ckptKindKL         = 3

	// maxCheckpointEntries bounds decode-time allocation; a corrupted
	// header must not be able to demand gigabytes.
	maxCheckpointEntries = 1 << 26
)

var ckptMagic = [8]byte{'M', 'P', 'M', 'B', 'C', 'K', 'P', '1'}

// payloadKind returns the payload section a method's checkpoint carries.
func (c *Checkpoint) payloadKind() byte {
	if c.Prepare {
		return ckptKindCounts
	}
	switch c.Method {
	case "mc-vp", "os":
		return ckptKindCounts
	case "ols":
		return ckptKindCandCounts
	case "ols-kl":
		return ckptKindKL
	}
	return 0
}

// Encode writes the checkpoint in its versioned, checksummed binary form.
func (c *Checkpoint) Encode(w io.Writer) error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("core: refusing to encode invalid checkpoint: %w", err)
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	var scratch [8]byte
	writeU := func(v uint64, n int) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	if err := writeU(ckptVersion, 4); err != nil {
		return err
	}
	if err := writeU(uint64(len(c.Method)), 2); err != nil {
		return err
	}
	if _, err := bw.Write([]byte(c.Method)); err != nil {
		return err
	}
	for _, v := range []uint64{c.Seed, uint64(c.Trials), uint64(c.PrepTrials), math.Float64bits(c.Mu)} {
		if err := writeU(v, 8); err != nil {
			return err
		}
	}
	if err := writeU(uint64(c.GraphCRC), 4); err != nil {
		return err
	}
	var flags uint64
	if c.Prepare {
		flags |= 1
	}
	if err := writeU(flags, 1); err != nil {
		return err
	}
	if err := writeU(uint64(c.Done), 8); err != nil {
		return err
	}
	kind := c.payloadKind()
	if err := writeU(uint64(kind), 1); err != nil {
		return err
	}
	switch kind {
	case ckptKindCounts:
		if err := writeU(uint64(len(c.Counts)), 8); err != nil {
			return err
		}
		for _, e := range c.Counts {
			for _, v := range []uint64{uint64(e.B.U1), uint64(e.B.U2), uint64(e.B.V1), uint64(e.B.V2)} {
				if err := writeU(v, 4); err != nil {
					return err
				}
			}
			if err := writeU(uint64(e.Count), 8); err != nil {
				return err
			}
			if err := writeU(math.Float64bits(e.Weight), 8); err != nil {
				return err
			}
		}
	case ckptKindCandCounts:
		if err := writeU(uint64(len(c.CandCounts)), 8); err != nil {
			return err
		}
		for _, v := range c.CandCounts {
			if err := writeU(uint64(v), 8); err != nil {
				return err
			}
		}
	case ckptKindKL:
		if err := writeU(uint64(len(c.CandProbs)), 8); err != nil {
			return err
		}
		for i, p := range c.CandProbs {
			if err := writeU(math.Float64bits(p), 8); err != nil {
				return err
			}
			if err := writeU(uint64(c.CandTrials[i]), 8); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("core: checkpoint for unknown method %q", c.Method)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// DecodeCheckpoint parses and validates a checkpoint. Truncated,
// corrupted, or version-skewed input returns an error; it never panics
// and never yields a structurally inconsistent checkpoint.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	crc := crc32.NewIEEE()
	// Everything except the trailing checksum is read through the tee, so
	// the digest covers exactly the consumed bytes.
	tee := io.TeeReader(br, crc)
	var scratch [8]byte
	readU := func(n int) (uint64, error) {
		if _, err := io.ReadFull(tee, scratch[:n]); err != nil {
			return 0, fmt.Errorf("core: truncated checkpoint: %w", err)
		}
		var full [8]byte
		copy(full[:], scratch[:n])
		return binary.LittleEndian.Uint64(full[:]), nil
	}

	var magic [8]byte
	if _, err := io.ReadFull(tee, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return nil, fmt.Errorf("core: bad checkpoint magic %q", magic)
	}
	version, err := readU(4)
	if err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d (this build reads %d)", version, ckptVersion)
	}
	mlen, err := readU(2)
	if err != nil {
		return nil, err
	}
	if mlen > 32 {
		return nil, fmt.Errorf("core: checkpoint method name of %d bytes", mlen)
	}
	mbuf := make([]byte, mlen)
	if _, err := io.ReadFull(tee, mbuf); err != nil {
		return nil, fmt.Errorf("core: truncated checkpoint: %w", err)
	}
	c := &Checkpoint{Method: string(mbuf)}
	if c.Seed, err = readU(8); err != nil {
		return nil, err
	}
	trials, err := readU(8)
	if err != nil {
		return nil, err
	}
	prep, err := readU(8)
	if err != nil {
		return nil, err
	}
	muBits, err := readU(8)
	if err != nil {
		return nil, err
	}
	crcG, err := readU(4)
	if err != nil {
		return nil, err
	}
	flags, err := readU(1)
	if err != nil {
		return nil, err
	}
	done, err := readU(8)
	if err != nil {
		return nil, err
	}
	const maxInt = uint64(math.MaxInt64)
	if trials > maxInt || prep > maxInt || done > maxInt {
		return nil, fmt.Errorf("core: checkpoint counters overflow int")
	}
	c.Trials, c.PrepTrials, c.Done = int(trials), int(prep), int(done)
	c.Mu = math.Float64frombits(muBits)
	c.GraphCRC = uint32(crcG)
	if flags&^uint64(1) != 0 {
		return nil, fmt.Errorf("core: unknown checkpoint flags %#x", flags)
	}
	c.Prepare = flags&1 != 0

	kind, err := readU(1)
	if err != nil {
		return nil, err
	}
	if byte(kind) != c.payloadKind() {
		return nil, fmt.Errorf("core: checkpoint payload kind %d does not match method %q", kind, c.Method)
	}
	n, err := readU(8)
	if err != nil {
		return nil, err
	}
	if n > maxCheckpointEntries {
		return nil, fmt.Errorf("core: checkpoint declares %d entries (limit %d)", n, maxCheckpointEntries)
	}
	switch byte(kind) {
	case ckptKindCounts:
		c.Counts = make([]ButterflyCount, 0, n)
		for i := uint64(0); i < n; i++ {
			var vs [4]uint64
			for k := range vs {
				if vs[k], err = readU(4); err != nil {
					return nil, err
				}
			}
			cnt, err := readU(8)
			if err != nil {
				return nil, err
			}
			wBits, err := readU(8)
			if err != nil {
				return nil, err
			}
			c.Counts = append(c.Counts, ButterflyCount{
				B: butterfly.Butterfly{
					U1: bigraph.VertexID(vs[0]), U2: bigraph.VertexID(vs[1]),
					V1: bigraph.VertexID(vs[2]), V2: bigraph.VertexID(vs[3]),
				},
				Count:  int64(cnt),
				Weight: math.Float64frombits(wBits),
			})
		}
	case ckptKindCandCounts:
		c.CandCounts = make([]int64, 0, n)
		for i := uint64(0); i < n; i++ {
			v, err := readU(8)
			if err != nil {
				return nil, err
			}
			c.CandCounts = append(c.CandCounts, int64(v))
		}
	case ckptKindKL:
		c.CandProbs = make([]float64, 0, n)
		c.CandTrials = make([]int64, 0, n)
		for i := uint64(0); i < n; i++ {
			pBits, err := readU(8)
			if err != nil {
				return nil, err
			}
			t, err := readU(8)
			if err != nil {
				return nil, err
			}
			c.CandProbs = append(c.CandProbs, math.Float64frombits(pBits))
			c.CandTrials = append(c.CandTrials, int64(t))
		}
	}
	var tail [4]byte
	want := crc.Sum32() // CRC of everything consumed so far
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("core: truncated checkpoint checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("core: checkpoint checksum mismatch: file %08x, payload %08x", got, want)
	}
	if err := c.validate(); err != nil {
		return nil, fmt.Errorf("core: inconsistent checkpoint: %w", err)
	}
	return c, nil
}

// validate enforces the structural invariants every checkpoint must hold,
// independent of any particular graph or options.
func (c *Checkpoint) validate() error {
	switch c.Method {
	case "mc-vp", "os", "ols", "ols-kl":
	default:
		return fmt.Errorf("unknown method %q", c.Method)
	}
	if c.Prepare && c.Method != "ols" && c.Method != "ols-kl" {
		return fmt.Errorf("prepare-phase checkpoint for non-OLS method %q", c.Method)
	}
	if c.Trials < 0 || c.PrepTrials < 0 || c.Done < 0 {
		return fmt.Errorf("negative counters (Trials=%d PrepTrials=%d Done=%d)", c.Trials, c.PrepTrials, c.Done)
	}
	if c.Mu < 0 || c.Mu > 1 || math.IsNaN(c.Mu) {
		return fmt.Errorf("Mu=%v outside [0,1]", c.Mu)
	}
	limit := c.Trials
	if c.Prepare {
		limit = c.PrepTrials
	}
	switch c.payloadKind() {
	case ckptKindCounts:
		if c.Done > limit {
			return fmt.Errorf("Done=%d exceeds target %d", c.Done, limit)
		}
		if c.CandCounts != nil || c.CandProbs != nil || c.CandTrials != nil {
			return fmt.Errorf("count-accumulator checkpoint carries candidate payloads")
		}
		prev := butterfly.Butterfly{}
		for i, e := range c.Counts {
			if e.Count < 0 || e.Count > int64(c.Done) {
				return fmt.Errorf("entry %d: count %d outside [0,%d]", i, e.Count, c.Done)
			}
			if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
				return fmt.Errorf("entry %d: non-finite weight", i)
			}
			if e.B.U1 >= e.B.U2 || e.B.V1 >= e.B.V2 {
				return fmt.Errorf("entry %d: non-canonical butterfly %v", i, e.B)
			}
			if i > 0 && !lessButterfly(prev, e.B) {
				return fmt.Errorf("entry %d: butterflies out of canonical order", i)
			}
			prev = e.B
		}
	case ckptKindCandCounts:
		if c.Done > limit {
			return fmt.Errorf("Done=%d exceeds target %d", c.Done, limit)
		}
		if c.Counts != nil || c.CandProbs != nil || c.CandTrials != nil {
			return fmt.Errorf("ols checkpoint carries foreign payloads")
		}
		for i, v := range c.CandCounts {
			if v < 0 || v > int64(c.Done) {
				return fmt.Errorf("candidate %d: count %d outside [0,%d]", i, v, c.Done)
			}
		}
	case ckptKindKL:
		if len(c.CandProbs) != len(c.CandTrials) {
			return fmt.Errorf("ols-kl payload lengths differ (%d probs, %d trial counts)", len(c.CandProbs), len(c.CandTrials))
		}
		if c.Done > len(c.CandProbs) {
			return fmt.Errorf("Done=%d exceeds %d candidates", c.Done, len(c.CandProbs))
		}
		if c.Counts != nil || c.CandCounts != nil {
			return fmt.Errorf("ols-kl checkpoint carries foreign payloads")
		}
		for i, p := range c.CandProbs {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return fmt.Errorf("candidate %d: probability %v outside [0,1]", i, p)
			}
			if c.CandTrials[i] < 0 {
				return fmt.Errorf("candidate %d: negative trial count", i)
			}
		}
	}
	return nil
}

// resumeCheck verifies the checkpoint belongs to the run being resumed:
// same method, seed, targets, Karp-Luby sizing, and graph.
func (c *Checkpoint) resumeCheck(method string, seed uint64, trials, prepTrials int, mu float64, g *bigraph.Graph) error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("core: invalid resume checkpoint: %w", err)
	}
	if c.Method != method {
		return fmt.Errorf("core: checkpoint is for method %q, resuming %q", c.Method, method)
	}
	if c.Seed != seed {
		return fmt.Errorf("core: checkpoint seed %d does not match run seed %d", c.Seed, seed)
	}
	if c.Trials != trials {
		return fmt.Errorf("core: checkpoint targets %d trials, run wants %d", c.Trials, trials)
	}
	if c.PrepTrials != prepTrials {
		return fmt.Errorf("core: checkpoint targets %d preparing trials, run wants %d", c.PrepTrials, prepTrials)
	}
	if method == "ols-kl" && c.Mu != mu {
		return fmt.Errorf("core: checkpoint Mu=%v does not match run Mu=%v", c.Mu, mu)
	}
	if got := g.Checksum(); c.GraphCRC != got {
		return fmt.Errorf("core: checkpoint graph fingerprint %08x does not match graph %08x", c.GraphCRC, got)
	}
	return nil
}

// SaveCheckpoint writes the checkpoint to the named file, atomically: the
// data goes to a temporary file in the same directory which is renamed
// over path only after a successful write, so a crash mid-save never
// leaves a truncated checkpoint behind.
func SaveCheckpoint(path string, c *Checkpoint) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := c.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := DecodeCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint %s: %w", path, err)
	}
	return c, nil
}

// sortedCounts converts an accumulator snapshot into canonical-order
// checkpoint entries.
func sortedCounts(counts map[butterfly.Butterfly]int, weights map[butterfly.Butterfly]float64) []ButterflyCount {
	out := make([]ButterflyCount, 0, len(counts))
	for b, n := range counts {
		out = append(out, ButterflyCount{B: b, Count: int64(n), Weight: weights[b]})
	}
	sort.Slice(out, func(i, j int) bool { return lessButterfly(out[i].B, out[j].B) })
	return out
}
