package core

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// OSOptions configures Ordering Sampling (Algorithm 2).
type OSOptions struct {
	// Trials is N_os, the number of sampled possible worlds. Must be > 0.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DisableEdgePrune turns off the Edge Ordering prune of Section V-B
	// (break once w(e)+w̄ < w_max). Ablation only.
	DisableEdgePrune bool
	// KeepAllAngles stores every angle per endpoint pair instead of only
	// the top-2 weight classes of Section V-C (Table II). Ablation only;
	// results are identical, time and space are not.
	KeepAllAngles bool
	// DropA2 deliberately BREAKS the angle table: only the largest angle
	// weight class (A1) is maintained and the second class (A2) is
	// discarded, so butterflies formed from the top angle plus a strictly
	// lighter one are silently lost. This is NOT an ablation — it changes
	// results. It exists solely as fault injection for the statistical
	// conformance harness (internal/statcheck), which must demonstrably
	// fail when an estimator is biased. Never set it elsewhere.
	DropA2 bool
	// OnTrial, if non-nil, is invoked after every trial with the 1-based
	// trial index and that trial's maximum butterfly set. The MaxSet is
	// reused between trials; copy what must be retained.
	OnTrial func(trial int, sMB *butterfly.MaxSet)
	// Interrupt, if non-nil, is polled between trials; when it returns
	// true the run stops and returns a partial Result over the completed
	// trials with a resumable Checkpoint attached. OS trials are short, so
	// between-trial granularity suffices (unlike MC-VP's mid-trial hook).
	// Parallel runners poll the hook concurrently from every worker, so it
	// must be safe for concurrent use there (a context-derived hook is).
	Interrupt func() bool
	// Resume restores the accumulator from a checkpoint written by an
	// earlier cancelled run with identical options; the run continues at
	// trial Resume.Done+1 and the final Result is bit-identical to an
	// uninterrupted run.
	Resume *Checkpoint
}

// OS is Ordering Sampling (Section V, Algorithm 2). Like MC-VP it samples
// N_os possible worlds, but each trial searches for the maximum weighted
// butterflies directly:
//
//   - Edge Ordering (V-B): edges are processed in descending weight order
//     and the trial stops as soon as w(e) + w̄ < w_max, where w̄ is the sum
//     of the three globally largest edge weights — no later edge can
//     complete a butterfly beating w_max.
//   - Angle Ordering (V-C): per endpoint pair (u_i, u_k) only the largest
//     (A1) and second-largest (A2) angle weight classes are retained,
//     following the update cases of Table II.
//   - Fast Butterfly Creating (V-D): w_max is maintained online from
//     A1/A2, and only butterflies of weight exactly w_max are ever
//     materialized.
//
// Edges are Bernoulli-sampled lazily in weight order, which draws from
// exactly the same distribution as sampling the whole world up front
// (edges are independent) while never touching edges behind the prune.
func OS(g *bigraph.Graph, opt OSOptions) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OS requires Trials > 0, got %d", opt.Trials)
	}
	idx := newOSIndex(g, opt)
	acc := newProbAccumulator()
	start := 1
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck("os", opt.Seed, opt.Trials, 0, 0, g); err != nil {
			return nil, err
		}
		acc = accumulatorFromCounts(opt.Resume.Counts)
		start = opt.Resume.Done + 1
	}
	root := randx.New(opt.Seed)
	var sMB butterfly.MaxSet
	for trial := start; trial <= opt.Trials; trial++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			return acc.partialResult("os", g, opt.Seed, opt.Trials, trial-1), nil
		}
		rng := root.Derive(uint64(trial))
		idx.runTrial(&sMB, func(id bigraph.EdgeID) bool {
			return rng.Bernoulli(g.Edge(id).P)
		})
		if !sMB.Empty() {
			acc.addMaxSet(&sMB)
		}
		if opt.OnTrial != nil {
			opt.OnTrial(trial, &sMB)
		}
	}
	return acc.result("os", opt.Trials), nil
}

// OSOnWorld runs one deterministic Ordering Sampling pass over a concrete
// possible world and returns its maximum weighted butterfly set. This is
// the per-world search inside OS, exposed so tests can verify it against
// brute-force enumeration on the same world, which makes the OS pruning
// logic checkable without any statistics.
func OSOnWorld(g *bigraph.Graph, w *possible.World, opt OSOptions) butterfly.MaxSet {
	idx := newOSIndex(g, opt)
	var sMB butterfly.MaxSet
	idx.runTrial(&sMB, w.Has)
	return sMB
}

// osIndex holds the per-graph precomputation (sorted edges, w̄) and the
// per-trial scratch buffers of Ordering Sampling, so repeated trials do
// not reallocate.
type osIndex struct {
	g      *bigraph.Graph
	opt    OSOptions
	sorted []bigraph.EdgeID // edge ids by descending weight (line 1)
	wBar   float64          // w(e1)+w(e2)+w(e3) (line 2)

	// nE[v] is N̂_E(v): live, already-processed edges incident to right
	// vertex v, as (left endpoint, edge id) pairs.
	nE        [][]bigraph.Half
	nETouched []bigraph.VertexID

	// Angle tables A1/A2 keyed by the canonical left endpoint pair.
	entries map[uint64]int32
	pool    []angleEntry
	poolN   int

	// anglesGenerated counts the angles produced by the last runTrial —
	// instrumentation for verifying the Lemma V.1 per-trial complexity
	// (O(min(Σ_L d̄², Σ_R d̄²)) angle work) in tests.
	anglesGenerated int
}

// angleEntry is one endpoint pair's angle bookkeeping: the largest (w1,
// mids1) and second-largest (w2, mids2) angle weight classes, per Table
// II. With KeepAllAngles it additionally records every angle.
type angleEntry struct {
	u1, u2 bigraph.VertexID // endpoint pair, u1 < u2
	w1     float64
	mids1  []bigraph.VertexID
	w2     float64
	mids2  []bigraph.VertexID
	all    []midW // only with KeepAllAngles
}

type midW struct {
	mid bigraph.VertexID
	w   float64
}

func newOSIndex(g *bigraph.Graph, opt OSOptions) *osIndex {
	return &osIndex{
		g:       g,
		opt:     opt,
		sorted:  g.EdgesByWeightDesc(),
		wBar:    g.TopWeightSum(3),
		nE:      make([][]bigraph.Half, g.NumR()),
		entries: make(map[uint64]int32),
	}
}

func (x *osIndex) resetTrial() {
	for _, v := range x.nETouched {
		x.nE[v] = x.nE[v][:0]
	}
	x.nETouched = x.nETouched[:0]
	clear(x.entries)
	x.poolN = 0
	x.anglesGenerated = 0
}

// entryFor returns the (possibly new) angle entry for endpoint pair
// {a, b}, reusing pooled storage across trials.
func (x *osIndex) entryFor(a, b bigraph.VertexID) *angleEntry {
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(b)
	if i, ok := x.entries[key]; ok {
		return &x.pool[i]
	}
	var e *angleEntry
	if x.poolN < len(x.pool) {
		e = &x.pool[x.poolN]
		e.mids1 = e.mids1[:0]
		e.mids2 = e.mids2[:0]
		e.all = e.all[:0]
	} else {
		x.pool = append(x.pool, angleEntry{})
		e = &x.pool[len(x.pool)-1]
	}
	x.entries[key] = int32(x.poolN)
	x.poolN++
	e.u1, e.u2 = a, b
	e.w1, e.w2 = math.Inf(-1), math.Inf(-1)
	return e
}

// update applies the Table II cases for a new angle of weight w with
// middle mid.
func (e *angleEntry) update(w float64, mid bigraph.VertexID) {
	switch {
	case w > e.w1:
		// Promote: old A1 becomes A2.
		e.w2 = e.w1
		e.mids2 = append(e.mids2[:0], e.mids1...)
		e.w1 = w
		e.mids1 = append(e.mids1[:0], mid)
	case w == e.w1:
		e.mids1 = append(e.mids1, mid)
	case w > e.w2:
		e.w2 = w
		e.mids2 = append(e.mids2[:0], mid)
	case w == e.w2:
		e.mids2 = append(e.mids2, mid)
	default:
		// w < w2: ignored, it can never be part of a maximum butterfly
		// for this endpoint pair (Section V-C correctness argument).
	}
}

// updateDropA2 is the deliberately broken Table II update behind
// OSOptions.DropA2: it keeps only the A1 class, so bestWeight can never
// report an A1+A2 combination and those butterflies are lost. Kept as a
// separate method so the correct update's signature (exercised directly
// by angle-table tests) stays untouched.
func (e *angleEntry) updateDropA2(w float64, mid bigraph.VertexID) {
	switch {
	case w > e.w1:
		e.w1 = w
		e.mids1 = append(e.mids1[:0], mid)
	case w == e.w1:
		e.mids1 = append(e.mids1, mid)
	}
}

// bestWeight returns the largest butterfly weight this endpoint pair can
// currently produce, or -Inf if it cannot produce one (fewer than two
// angles retained).
func (e *angleEntry) bestWeight() float64 {
	if len(e.mids1) >= 2 {
		return 2 * e.w1
	}
	if len(e.mids1) == 1 && len(e.mids2) >= 1 {
		return e.w1 + e.w2
	}
	return math.Inf(-1)
}

// runTrial executes lines 4–20 of Algorithm 2 against the edge presence
// oracle (a lazy Bernoulli sampler for OS proper, or World.Has for the
// deterministic per-world variant), leaving the trial's maximum weighted
// butterfly set in sMB.
func (x *osIndex) runTrial(sMB *butterfly.MaxSet, present func(bigraph.EdgeID) bool) {
	x.resetTrial()
	sMB.Reset()
	g := x.g
	wMax := math.Inf(-1)

	for _, eid := range x.sorted {
		e := g.Edge(eid)
		if !x.opt.DisableEdgePrune && e.W+x.wBar < wMax { // line 9
			break
		}
		if !present(eid) {
			continue
		}
		ui, vj := e.U, e.V
		for _, hb := range x.nE[vj] { // line 10: e_b = (v_j, u_k)
			uk := hb.To
			if uk == ui {
				continue // cannot happen for simple graphs, but be safe
			}
			angleW := e.W + g.Edge(hb.E).W // line 11: ∠_new = e_a ⊕ e_b
			x.anglesGenerated++
			ent := x.entryFor(ui, uk)
			if x.opt.KeepAllAngles {
				ent.all = append(ent.all, midW{mid: vj, w: angleW})
			}
			if x.opt.DropA2 {
				ent.updateDropA2(angleW, vj) // fault injection: A2 lost
			} else {
				ent.update(angleW, vj) // line 12, Table II
			}
			if bw := ent.bestWeight(); bw > wMax {
				wMax = bw // line 13
			}
		}
		if len(x.nE[vj]) == 0 {
			x.nETouched = append(x.nETouched, vj)
		}
		x.nE[vj] = append(x.nE[vj], bigraph.Half{To: ui, E: eid}) // line 14
	}

	if math.IsInf(wMax, -1) {
		return // no butterfly in this world
	}

	// Lines 15–20: materialize exactly the butterflies of weight w_max.
	for i := 0; i < x.poolN; i++ {
		ent := &x.pool[i]
		if x.opt.KeepAllAngles {
			// Ablation path: derive the maxima from the full angle list,
			// which must agree with the A1/A2 path.
			for a := 0; a < len(ent.all); a++ {
				for b := a + 1; b < len(ent.all); b++ {
					if ent.all[a].mid == ent.all[b].mid {
						continue
					}
					if w := ent.all[a].w + ent.all[b].w; w == wMax {
						sMB.Add(butterfly.New(ent.u1, ent.u2, ent.all[a].mid, ent.all[b].mid), wMax)
					}
				}
			}
			continue
		}
		switch {
		case len(ent.mids1) >= 2 && 2*ent.w1 == wMax: // line 16
			for a := 0; a < len(ent.mids1); a++ {
				for b := a + 1; b < len(ent.mids1); b++ {
					sMB.Add(butterfly.New(ent.u1, ent.u2, ent.mids1[a], ent.mids1[b]), wMax)
				}
			}
		case len(ent.mids1) == 1 && len(ent.mids2) >= 1 && ent.w1+ent.w2 == wMax: // line 18
			for _, m2 := range ent.mids2 {
				sMB.Add(butterfly.New(ent.u1, ent.u2, ent.mids1[0], m2), wMax)
			}
		}
	}
}
