package core

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// OSOptions configures Ordering Sampling (Algorithm 2).
type OSOptions struct {
	// Trials is N_os, the number of sampled possible worlds. Must be > 0.
	Trials int
	// Seed makes the run reproducible.
	Seed uint64
	// DisableEdgePrune turns off the Edge Ordering prune of Section V-B
	// (break once w(e)+w̄ < w_max). Ablation only.
	DisableEdgePrune bool
	// KeepAllAngles stores every angle per endpoint pair instead of only
	// the top-2 weight classes of Section V-C (Table II). Ablation only;
	// results are identical, time and space are not.
	KeepAllAngles bool
	// DropA2 deliberately BREAKS the angle table: only the largest angle
	// weight class (A1) is maintained and the second class (A2) is
	// discarded, so butterflies formed from the top angle plus a strictly
	// lighter one are silently lost. This is NOT an ablation — it changes
	// results. It exists solely as fault injection for the statistical
	// conformance harness (internal/statcheck), which must demonstrably
	// fail when an estimator is biased. Never set it elsewhere.
	DropA2 bool
	// OnTrial, if non-nil, is invoked after every trial with the 1-based
	// trial index and that trial's maximum butterfly set. The MaxSet is
	// reused between trials; copy what must be retained.
	OnTrial func(trial int, sMB *butterfly.MaxSet)
	// Interrupt, if non-nil, is polled between trials; when it returns
	// true the run stops and returns a partial Result over the completed
	// trials with a resumable Checkpoint attached. OS trials are short, so
	// between-trial granularity suffices (unlike MC-VP's mid-trial hook).
	// Parallel runners poll the hook concurrently from every worker, so it
	// must be safe for concurrent use there (a context-derived hook is).
	Interrupt func() bool
	// Resume restores the accumulator from a checkpoint written by an
	// earlier cancelled run with identical options; the run continues at
	// trial Resume.Done+1 and the final Result is bit-identical to an
	// uninterrupted run.
	Resume *Checkpoint
	// Probe, if non-nil, receives run telemetry: trial counts, the edge
	// scanned/pruned split of the Section V-B prune, and running leader
	// estimates, batched at probeFlushEvery-trial (or per-chunk) cadence.
	// A nil Probe costs one predictable branch per trial and changes no
	// Result bit.
	Probe *telemetry.Probe
	// Executor, if non-nil, replaces OSParallel's default in-process
	// worker pool with an explicit TrialExecutor (e.g. a distributed
	// fan-out). Per-trial streams derive from (Seed, trial index), so any
	// conforming executor returns bit-identical results. Ignored by the
	// sequential OS.
	Executor TrialExecutor
}

// OS is Ordering Sampling (Section V, Algorithm 2). Like MC-VP it samples
// N_os possible worlds, but each trial searches for the maximum weighted
// butterflies directly:
//
//   - Edge Ordering (V-B): edges are processed in descending weight order
//     and the trial stops as soon as w(e) + w̄ < w_max, where w̄ is the sum
//     of the three globally largest edge weights — no later edge can
//     complete a butterfly beating w_max.
//   - Angle Ordering (V-C): per endpoint pair (u_i, u_k) only the largest
//     (A1) and second-largest (A2) angle weight classes are retained,
//     following the update cases of Table II.
//   - Fast Butterfly Creating (V-D): w_max is maintained online from
//     A1/A2, and only butterflies of weight exactly w_max are ever
//     materialized.
//
// Edges are Bernoulli-sampled lazily in weight order, which draws from
// exactly the same distribution as sampling the whole world up front
// (edges are independent) while never touching edges behind the prune.
//
// The trial loop runs on the flat-memory kernel (see osIndex): a SoA edge
// snapshot with precomputed Bernoulli thresholds, a generation-stamped
// open-addressing angle table, and a worker-local derived stream — all
// draw-for-draw identical to the frozen seed implementation in osref.go,
// which the equivalence tests compare against bit for bit.
func OS(g *bigraph.Graph, opt OSOptions) (*Result, error) {
	if opt.Trials <= 0 {
		return nil, fmt.Errorf("core: OS requires Trials > 0, got %d", opt.Trials)
	}
	idx := acquireKernel(g, opt)
	defer releaseKernel(idx)
	acc := newProbAccumulator()
	start := 1
	if opt.Resume != nil {
		if err := opt.Resume.resumeCheck("os", opt.Seed, opt.Trials, 0, 0, g); err != nil {
			return nil, err
		}
		acc = accumulatorFromCounts(opt.Resume.Counts)
		start = opt.Resume.Done + 1
	}
	root := randx.New(opt.Seed)
	var sMB butterfly.MaxSet
	meter := newTrialMeter(opt.Probe, 0, idx.snap.numEdges(), false)
	for trial := start; trial <= opt.Trials; trial++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			meter.flush(trial - 1)
			res := acc.partialResult("os", g, opt.Seed, opt.Trials, trial-1)
			probeFinish(opt.Probe, res)
			return res, nil
		}
		scanned, fellBack := idx.runTrialSeeded(root, uint64(trial), &sMB)
		hit := !sMB.Empty()
		if hit {
			acc.addMaxSet(&sMB)
		}
		if opt.OnTrial != nil {
			opt.OnTrial(trial, &sMB)
		}
		if meter.observe(trial, scanned, fellBack, hit) {
			probeEstimate(opt.Probe, 0, int64(acc.leadCount), trial, acc.leadB, acc.leadW)
		}
	}
	meter.flush(opt.Trials)
	res := acc.result("os", opt.Trials)
	probeFinish(opt.Probe, res)
	return res, nil
}

// OSOnWorld runs one deterministic Ordering Sampling pass over a concrete
// possible world and returns its maximum weighted butterfly set. This is
// the per-world search inside OS, exposed so tests can verify it against
// brute-force enumeration on the same world, which makes the OS pruning
// logic checkable without any statistics.
func OSOnWorld(g *bigraph.Graph, w *possible.World, opt OSOptions) butterfly.MaxSet {
	idx := acquireKernel(g, opt)
	defer releaseKernel(idx)
	var sMB butterfly.MaxSet
	idx.runTrial(&sMB, w.Has)
	return sMB
}

// osIndex is the flat-memory Ordering Sampling trial kernel: the
// per-graph precomputation (SoA edge snapshot, w̄) plus per-trial scratch
// laid out so a steady-state trial performs zero allocations.
//
//   - Edge presence is decided by comparing one raw generator word
//     against the snapshot's precomputed threshold (runTrialRNG), or by
//     an arbitrary oracle (runTrial) for the per-world variant and the
//     supervisor's audit trials.
//   - N̂_E(v) lives in one flat slice partitioned by the snapshot's CSR
//     offsets, each center vertex owning a region of capacity deg(v)
//     (the center side is chosen per graph by the snapshot; see
//     edgeSnapshot.flip).
//   - The angle tables A1/A2 are pool entries indexed through a
//     generation-stamped open-addressing table, so per-trial reset is a
//     generation bump.
type osIndex struct {
	g    *bigraph.Graph
	opt  OSOptions
	snap *edgeSnapshot

	// Flat N̂_E: center vertex v's live processed edges are
	// liveFlat[snap.liveOff[v] : snap.liveOff[v]+n] where n is live[v].n if
	// live[v].gen matches liveCur and 0 otherwise — the same
	// generation-stamp trick as the angle table, so per-trial reset of
	// every live list is one counter bump instead of a touched-vertex walk.
	liveFlat []liveEdge
	live     []liveMeta
	liveCur  uint32

	// Angle entry pool, indexed through tab. Callers hold POOL INDICES,
	// never *angleEntry pointers, across entryFor calls: the pool grows by
	// append, and a reallocation would leave an in-flight pointer aiming
	// at the stale backing array (the seed implementation returned
	// pointers and was safe only because no caller held one across a
	// call — a hazard, not a guarantee).
	tab   angleTable
	pool  []angleEntry
	poolN int

	// rng is the worker-local per-trial stream runTrialSeeded derives
	// into, so deriving costs no allocation.
	rng randx.RNG

	// maxList tracks the pool indices whose bestWeight equals the running
	// w_max, in ascending pool order, so the specialized path materializes
	// only those entries instead of rewalking the whole pool. maxGen
	// invalidates stale angleEntry.mark stamps in O(1) whenever w_max
	// rises (and across trials); it is monotone, so a stamp can never
	// alias a later generation.
	maxList []int32
	maxGen  uint64

	// anglesGenerated counts the angles produced by the last runTrial —
	// instrumentation for verifying the Lemma V.1 per-trial complexity
	// (O(min(Σ_L d̄², Σ_R d̄²)) angle work) in tests. It is maintained only
	// while instrumented is set (the complexity tests set it), so the hot
	// loop pays nothing for it in production runs.
	instrumented    bool
	anglesGenerated int
}

// angleEntry is one endpoint pair's angle bookkeeping: the largest (w1,
// mids1) and second-largest (w2, mids2) angle weight classes, per Table
// II. With KeepAllAngles it additionally records every angle. The pair
// vertices live on the snapshot's pairing side and the middles on its
// center side (left/right assignment depends on edgeSnapshot.flip).
type angleEntry struct {
	u1, u2 bigraph.VertexID // pairing-side endpoint pair, u1 < u2
	w1     float64
	mids1  []bigraph.VertexID
	w2     float64
	mids2  []bigraph.VertexID
	all    []midW // only with KeepAllAngles
	// mark stamps membership in osIndex.maxList for the current maxGen;
	// stale stamps are dead by monotonicity and never need clearing.
	mark uint64
}

type midW struct {
	mid bigraph.VertexID
	w   float64
}

// liveMeta is one center vertex's live-list length, valid only when its
// generation stamp matches osIndex.liveCur. Packed into 8 bytes so the
// hot path reads length and validity in a single load.
type liveMeta struct {
	n   int32
	gen uint32
}

func newOSIndex(g *bigraph.Graph, opt OSOptions) *osIndex {
	return newOSIndexFromSnapshot(g, opt, newEdgeSnapshot(g))
}

func newOSIndexFromSnapshot(g *bigraph.Graph, opt OSOptions, snap *edgeSnapshot) *osIndex {
	x := &osIndex{
		g:        g,
		opt:      opt,
		snap:     snap,
		liveFlat: make([]liveEdge, snap.numEdges()),
		live:     make([]liveMeta, len(snap.liveOff)-1),
		liveCur:  1,
		tab:      newAngleTable(minAngleTableCap),
	}
	x.tab.tok = snap.tok // Zobrist pair hashing, shared with the inlined probe
	return x
}

// acquireKernel returns a trial kernel over g's cached calibrated
// snapshot, reusing a previously released kernel when the snapshot's pool
// has one. This is how every production runner (sequential OS, parallel
// workers, candidate prep, the bench harness) obtains its kernel: repeat
// runs and parallel chunks over the same graph stop paying the ~1MB
// per-kernel build, which is what held the parallel path at ~40 allocs
// per trial.
func acquireKernel(g *bigraph.Graph, opt OSOptions) *osIndex {
	snap := snapshotFor(g)
	if k, ok := snap.kernels.Get().(*osIndex); ok && k != nil {
		k.opt = opt
		k.instrumented = false
		return k
	}
	return newOSIndexFromSnapshot(g, opt, snap)
}

// releaseKernel returns a kernel obtained from acquireKernel to its
// snapshot's pool. The options are cleared so a pooled kernel does not
// retain caller hooks (OnTrial/Interrupt/Probe closures) beyond its run.
func releaseKernel(x *osIndex) {
	x.opt = OSOptions{}
	x.snap.kernels.Put(x)
}

func (x *osIndex) resetTrial() {
	x.liveCur++
	if x.liveCur == 0 { // generation wrapped: stale stamps could alias
		for i := range x.live {
			x.live[i].gen = 0
		}
		x.liveCur = 1
	}
	x.tab.reset()
	x.poolN = 0
	x.anglesGenerated = 0
	x.maxList = x.maxList[:0]
	x.maxGen++
}

// entryFor returns the pool index of the (possibly new) angle entry for
// endpoint pair {a, b}, reusing pooled storage across trials. It returns
// an index rather than a pointer: the pool may reallocate on growth, and
// an index stays valid where a pointer would dangle.
func (x *osIndex) entryFor(a, b bigraph.VertexID) int32 {
	if a > b {
		a, b = b, a
	}
	key := uint64(a)<<32 | uint64(b)
	i, found := x.tab.getOrPut(key, int32(x.poolN))
	if found {
		return i
	}
	if x.poolN == len(x.pool) {
		x.pool = append(x.pool, angleEntry{})
	}
	e := &x.pool[i]
	e.mids1 = e.mids1[:0]
	e.mids2 = e.mids2[:0]
	e.all = e.all[:0]
	e.u1, e.u2 = a, b
	e.w1, e.w2 = math.Inf(-1), math.Inf(-1)
	x.poolN++
	return i
}

// update applies the Table II cases for a new angle of weight w with
// middle mid.
func (e *angleEntry) update(w float64, mid bigraph.VertexID) {
	switch {
	case w > e.w1:
		// Promote: old A1 becomes A2.
		e.w2 = e.w1
		e.mids2 = append(e.mids2[:0], e.mids1...)
		e.w1 = w
		e.mids1 = append(e.mids1[:0], mid)
	case w == e.w1:
		e.mids1 = append(e.mids1, mid)
	case w > e.w2:
		e.w2 = w
		e.mids2 = append(e.mids2[:0], mid)
	case w == e.w2:
		e.mids2 = append(e.mids2, mid)
	default:
		// w < w2: ignored, it can never be part of a maximum butterfly
		// for this endpoint pair (Section V-C correctness argument).
	}
}

// updateDropA2 is the deliberately broken Table II update behind
// OSOptions.DropA2: it keeps only the A1 class, so bestWeight can never
// report an A1+A2 combination and those butterflies are lost. Kept as a
// separate method so the correct update's signature (exercised directly
// by angle-table tests) stays untouched.
func (e *angleEntry) updateDropA2(w float64, mid bigraph.VertexID) {
	switch {
	case w > e.w1:
		e.w1 = w
		e.mids1 = append(e.mids1[:0], mid)
	case w == e.w1:
		e.mids1 = append(e.mids1, mid)
	}
}

// bestWeight returns the largest butterfly weight this endpoint pair can
// currently produce, or -Inf if it cannot produce one (fewer than two
// angles retained).
func (e *angleEntry) bestWeight() float64 {
	if len(e.mids1) >= 2 {
		return 2 * e.w1
	}
	if len(e.mids1) == 1 && len(e.mids2) >= 1 {
		return e.w1 + e.w2
	}
	return math.Inf(-1)
}

// runTrialSeeded derives the trial's stream from (root, id) into the
// kernel-local generator and runs the threshold-sampling trial. This is
// the production hot path: it performs zero allocations at steady state
// and its Result contribution is bit-identical to the seed
// implementation's rng.Bernoulli closure over a Derive(id) stream.
// fellBack reports that the trial crossed the snapshot's calibrated
// prefix boundary (the prefix-sufficiency check failed and the scan
// continued into the tail) — a telemetry signal, never a correctness
// one, since the tail scan is exact.
func (x *osIndex) runTrialSeeded(root *randx.RNG, id uint64, sMB *butterfly.MaxSet) (scanned int, fellBack bool) {
	root.DeriveInto(id, &x.rng)
	return x.runTrialRNG(sMB, &x.rng)
}

// runTrialRNG executes lines 4–20 of Algorithm 2 with edge presence
// decided by the snapshot's precomputed thresholds against rng's raw
// words, generated rngBlock positions at a time (see below). Draw
// consumption is positional — the k-th p ∈ (0,1) snapshot position of
// the trial compares against the k-th raw word, no draw for p ∈ {0,1} —
// which is the exact stream consumption of randx.Bernoulli, so Results
// are bit-identical to the seed implementation. It returns the snapshot
// position the scan stopped at (the benchmark harness reports the
// remainder as pruned) and whether the scan fell back past the
// calibrated prefix.
//
// The production configuration (no ablations, no instrumentation) runs
// the specialized v2 loop:
//
//   - Block RNG: the block's raw words are generated into a stack
//     buffer in one burst, then every position is tested branch-free
//     against its normalized admission threshold ((word>>11 − th) >> 63),
//     producing one presence bitmask per block; present positions are
//     visited via trailing-zero iteration. Zero-support and p=0 edges
//     have threshold 0 and never set a bit, but still consume their
//     word positionally, so the schedule matches randx.Bernoulli
//     draw for draw.
//   - Support-sharpened pruning: stops use wBarS (top-3 support-positive
//     weights) instead of the global wBar, and angle work is cut by the
//     wBar2S bounds — every skip is provably inert (the skipped work
//     could neither raise nor tie the final w_max; see
//     docs/ALGORITHMS.md), so Results stay bit-identical.
//   - Truncated prefix: the block-entry stop check at the calibrated
//     boundary prefixLen doubles as the prefix-sufficiency bound; when
//     it fails the scan simply continues into the tail (exact fallback)
//     and the trial is flagged fellBack for telemetry.
//
// The ablation and instrumentation paths share the generic admitEdge
// walk instead — identical Results; only the instruction stream differs.
func (x *osIndex) runTrialRNG(sMB *butterfly.MaxSet, rng *randx.RNG) (scanned int, fellBack bool) {
	if x.opt.KeepAllAngles || x.opt.DropA2 || x.instrumented {
		return x.runTrialRNGGeneric(sMB, rng), false
	}
	snap := x.snap
	if snap.barren {
		// No edge lies on any backbone butterfly: every possible world's
		// maximum set is empty, and no draws are needed (each trial
		// re-derives its stream, so skipping them is invisible).
		sMB.Reset()
		return 0, false
	}
	x.resetTrial()
	sMB.Reset()
	prune := !x.opt.DisableEdgePrune
	wBarS, wBar2S := snap.wBarS, snap.wBar2S
	wMax := math.Inf(-1)

	// Local generator copy: every draw is inlined register arithmetic.
	// The stream position after the trial is irrelevant (each trial
	// re-derives), so the copy never needs writing back. Pool and touched
	// bookkeeping likewise run on locals and are stored back once after
	// the scan.
	lr := *rng
	ws, pcs := snap.w, snap.pc
	admitTh, wordOf, ndraws := snap.admitTh, snap.wordOf, snap.ndraws
	liveFlat, live, liveOff := x.liveFlat, x.live, snap.liveOff
	liveCur := x.liveCur
	toks := snap.tok
	tb := &x.tab
	pool, poolN := x.pool, x.poolN
	negInf := math.Inf(-1)

	n := len(ws)
	limit := n
	if prune {
		limit = snap.prefixLen // block-aligned, or n
	}
	// words is the block draw buffer. Deterministic positions may index
	// one slot past the block's generated words (wordOf points at the
	// next undetermined position); the read is harmless garbage — their
	// sentinel thresholds (0 / 2^53) decide regardless of the word — so
	// the mask loop stays branch-free.
	var words [rngBlock]uint64
	scanned = n

scan:
	for b := 0; b < n; {
		if prune && ws[b]+wBarS < wMax { // line 9, block granularity
			scanned = b
			break
		}
		if b == limit {
			// The sufficiency check above did not stop the scan at the
			// calibrated boundary: this trial needs the tail. The scan
			// continues exactly as if no prefix existed.
			fellBack = true
		}
		be := b + rngBlock
		if be > n {
			be = n
		}
		nd := int(ndraws[b>>rngBlockShift])
		for k := 0; k < nd; k++ {
			words[k] = lr.Uint64()
		}
		// Branch-free batched threshold test: bit k of mask is set iff
		// position b+k is present. Both operands are < 2^63 (words are
		// 53-bit after the shift, thresholds normalized to ≤ 2^53), so
		// the sign of the subtraction is exactly the comparison.
		var mask uint64
		ath := admitTh[b:be]
		wof := wordOf[b:be]
		for k := 0; k < len(ath); k++ {
			u := words[wof[k]] >> 11
			mask |= ((u - ath[k]) >> 63) << uint(k)
		}
		for mask != 0 {
			k := bits.TrailingZeros64(mask)
			mask &= mask - 1
			i := b + k
			w := ws[i]
			if prune && w+wBarS < wMax { // line 9, exact position
				scanned = i
				break scan
			}
			// Lines 10–14, inlined from admitEdge/entryFor. ui is the
			// pairing endpoint, vj the center (middle) endpoint.
			uvp := pcs[i]
			ui, vj := bigraph.VertexID(uvp>>32), bigraph.VertexID(uvp&0xffffffff)
			base := liveOff[vj]
			lm := live[vj]
			nLive := lm.n
			if lm.gen != liveCur {
				nLive = 0
			}
			tu := toks[ui]
			for s := base; s < base+nLive; s++ {
				hb := &liveFlat[s]
				angleW := w + hb.w // line 11: ∠_new = e_a ⊕ e_b
				if angleW+wBar2S < wMax {
					// Live entries are appended in descending weight
					// order, so every later partner forms a lighter
					// angle; none can complete a butterfly at w_max
					// (the completing angle is bounded by wBar2S).
					break
				}
				uk := hb.to
				if uk == ui {
					continue
				}
				a, b := ui, uk
				if a > b {
					a, b = b, a
				}
				key := uint64(a)<<32 | uint64(b)
				// angleTable.getOrPut, manually inlined with the Zobrist
				// hash (symmetric in the pair, so it skips the canonical
				// ordering and the multiply chain of mix64; the partner's
				// token rides in the liveEdge). Must stay
				// position-compatible with angleTable.hash — grow()
				// re-probes through it.
				h := (tu ^ hb.tok) & tb.mask
				var ei int32
				for {
					sl := &tb.slots[h]
					if sl.gen != tb.cur {
						// Miss: claim the slot and a pool entry.
						ei = int32(poolN)
						if (tb.live+1)*4 > len(tb.slots)*3 {
							tb.grow()
							tb.put(key, ei)
						} else {
							*sl = atSlot{key: key, val: ei, gen: tb.cur}
							tb.live++
						}
						if poolN == len(pool) {
							pool = append(pool, angleEntry{})
						}
						e := &pool[ei]
						e.mids1 = e.mids1[:0]
						e.mids2 = e.mids2[:0]
						e.all = e.all[:0]
						e.u1, e.u2 = a, b
						e.w1, e.w2 = negInf, negInf
						poolN++
						break
					}
					if sl.key == key {
						ei = sl.val
						break
					}
					h = (h + 1) & tb.mask
				}
				ent := &pool[ei]
				ent.update(angleW, vj) // line 12, Table II
				if bw := ent.bestWeight(); bw > wMax {
					wMax = bw // line 13
					x.maxGen++
					x.maxList = append(x.maxList[:0], ei)
					ent.mark = x.maxGen
				} else if bw == wMax && bw != negInf && ent.mark != x.maxGen {
					// This pair ties the running maximum: record it once,
					// keeping maxList in ascending pool order so the
					// materialization order matches the seed's pool walk.
					ent.mark = x.maxGen
					ml := x.maxList
					j := len(ml)
					ml = append(ml, ei)
					for j > 0 && ml[j-1] > ei {
						ml[j] = ml[j-1]
						j--
					}
					ml[j] = ei
					x.maxList = ml
				}
			}
			if 2*w+wBar2S >= wMax {
				liveFlat[base+nLive] = liveEdge{to: ui, w: w, tok: tu} // line 14
				live[vj] = liveMeta{n: nLive + 1, gen: liveCur}
			}
			// else: every future angle through this edge is ≤ 2w (its
			// partner is no heavier) and completes to < w_max — the
			// entry could never contribute, so it is not recorded. The
			// region slot stays free for the next recorded edge.
		}
		b = be
	}
	x.pool, x.poolN = pool, poolN
	x.materializeList(sMB, wMax)
	return scanned, fellBack
}

// runTrialRNGGeneric is the unspecialized threshold trial: same
// algorithm, same Results, with angle admission routed through admitEdge
// so the ablation branches and the anglesGenerated instrumentation stay
// in one place.
func (x *osIndex) runTrialRNGGeneric(sMB *butterfly.MaxSet, rng *randx.RNG) (scanned int) {
	x.resetTrial()
	sMB.Reset()
	snap := x.snap
	prune := !x.opt.DisableEdgePrune
	wMax := math.Inf(-1)

	i := 0
	for ; i < len(snap.id); i++ {
		if prune && snap.w[i]+snap.wBar < wMax { // line 9
			break
		}
		th := snap.thresh[i]
		if th == randx.BernoulliNever {
			continue
		}
		if th != randx.BernoulliAlways && rng.Uint64()>>11 >= th {
			continue
		}
		wMax = x.admitEdge(i, wMax)
	}
	x.materialize(sMB, wMax)
	return i
}

// runTrial executes the same trial against an arbitrary edge presence
// oracle — World.Has for the deterministic per-world variant, or a
// Bernoulli closure for callers that manage their own streams (the
// supervisor's audit trials).
func (x *osIndex) runTrial(sMB *butterfly.MaxSet, present func(bigraph.EdgeID) bool) (scanned int) {
	x.resetTrial()
	sMB.Reset()
	snap := x.snap
	prune := !x.opt.DisableEdgePrune
	wMax := math.Inf(-1)

	i := 0
	for ; i < len(snap.id); i++ {
		if prune && snap.w[i]+snap.wBar < wMax { // line 9
			break
		}
		if !present(snap.id[i]) {
			continue
		}
		wMax = x.admitEdge(i, wMax)
	}
	x.materialize(sMB, wMax)
	return i
}

// admitEdge processes the live edge at snapshot position i (lines 10–14):
// form an angle with every live edge already recorded at its center
// endpoint, push each through the Table II update, lift w_max, and append
// the edge to its center vertex's flat N̂_E region.
func (x *osIndex) admitEdge(i int, wMax float64) float64 {
	snap := x.snap
	ui, vj, w := snap.prt[i], snap.ctr[i], snap.w[i]
	base := snap.liveOff[vj]
	lm := x.live[vj]
	n := lm.n
	if lm.gen != x.liveCur {
		n = 0
	}
	for _, hb := range x.liveFlat[base : base+n] { // line 10: e_b = (v_j, u_k)
		uk := hb.to
		if uk == ui {
			continue // cannot happen for simple graphs, but be safe
		}
		angleW := w + hb.w // line 11: ∠_new = e_a ⊕ e_b
		if x.instrumented {
			x.anglesGenerated++
		}
		ei := x.entryFor(ui, uk)
		ent := &x.pool[ei] // taken AFTER entryFor: the pool may have grown
		if x.opt.KeepAllAngles {
			ent.all = append(ent.all, midW{mid: vj, w: angleW})
		}
		if x.opt.DropA2 {
			ent.updateDropA2(angleW, vj) // fault injection: A2 lost
		} else {
			ent.update(angleW, vj) // line 12, Table II
		}
		if bw := ent.bestWeight(); bw > wMax {
			wMax = bw // line 13
		}
	}
	x.liveFlat[base+n] = liveEdge{to: ui, w: w, tok: snap.tok[ui]} // line 14
	x.live[vj] = liveMeta{n: n + 1, gen: x.liveCur}
	return wMax
}

// emit adds one maximum butterfly, mapping the kernel's pair/middle roles
// back to the graph's left/right sides: the pair vertices are left and
// the middles right unless the snapshot flipped the center side.
// butterfly.New canonicalizes within each side, so the emitted butterfly
// is identical to the unflipped (seed/oracle) orientation.
func (x *osIndex) emit(sMB *butterfly.MaxSet, ent *angleEntry, m1, m2 bigraph.VertexID, w float64) {
	if x.snap.flip {
		sMB.Add(butterfly.New(m1, m2, ent.u1, ent.u2), w)
		return
	}
	sMB.Add(butterfly.New(ent.u1, ent.u2, m1, m2), w)
}

// materializeList emits the butterflies of weight w_max from the
// specialized path's candidate list instead of rewalking the whole pool:
// maxList holds, in ascending pool order, exactly the entries whose
// bestWeight equals the final w_max (entries join when they set or tie
// the running maximum; the list is cleared whenever the maximum rises, so
// no stale entry survives). Emission per entry is identical to
// materialize, so the butterflies come out in the same order as the
// seed's pool walk.
func (x *osIndex) materializeList(sMB *butterfly.MaxSet, wMax float64) {
	if math.IsInf(wMax, -1) {
		return // no butterfly in this world
	}
	for _, ei := range x.maxList {
		ent := &x.pool[ei]
		switch {
		case len(ent.mids1) >= 2 && 2*ent.w1 == wMax: // line 16
			for a := 0; a < len(ent.mids1); a++ {
				for b := a + 1; b < len(ent.mids1); b++ {
					x.emit(sMB, ent, ent.mids1[a], ent.mids1[b], wMax)
				}
			}
		case len(ent.mids1) == 1 && len(ent.mids2) >= 1 && ent.w1+ent.w2 == wMax: // line 18
			for _, m2 := range ent.mids2 {
				x.emit(sMB, ent, ent.mids1[0], m2, wMax)
			}
		}
	}
}

// materialize emits exactly the butterflies of weight w_max (lines
// 15–20).
func (x *osIndex) materialize(sMB *butterfly.MaxSet, wMax float64) {
	if math.IsInf(wMax, -1) {
		return // no butterfly in this world
	}
	for i := 0; i < x.poolN; i++ {
		ent := &x.pool[i]
		if x.opt.KeepAllAngles {
			// Ablation path: derive the maxima from the full angle list,
			// which must agree with the A1/A2 path.
			for a := 0; a < len(ent.all); a++ {
				for b := a + 1; b < len(ent.all); b++ {
					if ent.all[a].mid == ent.all[b].mid {
						continue
					}
					if w := ent.all[a].w + ent.all[b].w; w == wMax {
						x.emit(sMB, ent, ent.all[a].mid, ent.all[b].mid, wMax)
					}
				}
			}
			continue
		}
		switch {
		case len(ent.mids1) >= 2 && 2*ent.w1 == wMax: // line 16
			for a := 0; a < len(ent.mids1); a++ {
				for b := a + 1; b < len(ent.mids1); b++ {
					x.emit(sMB, ent, ent.mids1[a], ent.mids1[b], wMax)
				}
			}
		case len(ent.mids1) == 1 && len(ent.mids2) >= 1 && ent.w1+ent.w2 == wMax: // line 18
			for _, m2 := range ent.mids2 {
				x.emit(sMB, ent, ent.mids1[0], m2, wMax)
			}
		}
	}
}
