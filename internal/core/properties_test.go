package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// TestExactMassEqualsExpectedTieCount: Σ_B P(B) equals the expected size
// of the maximum butterfly set E[|S_MB|] over worlds — the tie-aware
// generalization of "probabilities sum to Pr[a butterfly exists]".
// Property-checked over random graphs.
func TestExactMassEqualsExpectedTieCount(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 4, 4, 12)
		res, err := Exact(g)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, e := range res.Estimates {
			sum += e.P
		}
		expectedTies := 0.0
		if err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
			m := butterfly.MaxWeightSet(g, w)
			expectedTies += pr * float64(len(m.Set))
			return true
		}); err != nil {
			return false
		}
		return math.Abs(sum-expectedTies) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestExactBoundedByExistence: P(B) ≤ Pr[E(B)] for every butterfly —
// being maximum requires existing.
func TestExactBoundedByExistence(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 4, 4, 12)
		res, err := Exact(g)
		if err != nil {
			return false
		}
		for _, e := range res.Estimates {
			pr, ok := e.B.ExistProb(g)
			if !ok {
				return false
			}
			if e.P > pr+1e-12 {
				return false
			}
			if e.P < 0 || e.P > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateWeightsAreCanonical: every weight reported by the samplers
// must equal the butterfly's canonical backbone weight.
func TestEstimateWeightsAreCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		g := randDenseSmallGraph(r, 14)
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return OS(g, OSOptions{Trials: 500, Seed: uint64(trial)}) },
			func() (*Result, error) { return MCVP(g, MCVPOptions{Trials: 500, Seed: uint64(trial)}) },
			func() (*Result, error) {
				return OLS(g, OLSOptions{PrepTrials: 50, Trials: 500, Seed: uint64(trial)})
			},
		} {
			res, err := run()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range res.Estimates {
				want, ok := e.B.Weight(g)
				if !ok {
					t.Fatalf("%s reported non-backbone butterfly %v", res.Method, e.B)
				}
				if e.Weight != want {
					t.Fatalf("%s weight %v != canonical %v for %v", res.Method, e.Weight, want, e.B)
				}
			}
		}
	}
}

// TestDeterministicGraphDegeneratesToMaxSearch: with every probability 1
// there is a single possible world; the heaviest butterflies get P = 1
// (split across ties as co-members of S_MB) and everything else gets 0.
func TestDeterministicGraphDegeneratesToMaxSearch(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		g := randGraph(r, 4, 4, 12)
		// Rebuild with all probabilities forced to 1.
		all := butterfly.AllBackbone(g)
		if len(all) == 0 {
			continue
		}
		bldr := certainCopy(g)
		exact, err := Exact(bldr)
		if err != nil {
			t.Fatal(err)
		}
		full := possible.NewWorld(bldr.NumEdges())
		for i := 0; i < bldr.NumEdges(); i++ {
			full.Set(uint32(i))
		}
		want := butterfly.MaxWeightSet(bldr, full)
		if len(exact.Estimates) != len(want.Set) {
			t.Fatalf("deterministic graph: %d estimates, want %d maxima", len(exact.Estimates), len(want.Set))
		}
		for _, e := range exact.Estimates {
			if e.P != 1 {
				t.Fatalf("deterministic graph: P(%v) = %v, want 1", e.B, e.P)
			}
		}
		// OS on the deterministic graph must agree in a single trial.
		res, err := OS(bldr, OSOptions{Trials: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Estimates) != len(want.Set) {
			t.Fatalf("OS on deterministic graph: %d estimates, want %d", len(res.Estimates), len(want.Set))
		}
	}
}

// TestKLOnlyCandidateMatchesFullRun: restricting the Karp-Luby estimator
// to one candidate returns exactly the same value as the full run does
// for that candidate (identical per-candidate streams).
func TestKLOnlyCandidateMatchesFullRun(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		g := randDenseSmallGraph(r, 14)
		cands, err := AllBackboneCandidates(g)
		if err != nil {
			t.Fatal(err)
		}
		if cands.Len() < 2 {
			continue
		}
		opt := KLOptions{BaseTrials: 2000, Seed: uint64(trial) + 3}
		full, err := EstimateKarpLuby(cands, opt)
		if err != nil {
			t.Fatal(err)
		}
		idx := cands.Len() - 1 // the most constrained candidate
		only := opt
		only.OnlyCandidate = &idx
		restricted, err := EstimateKarpLuby(cands, only)
		if err != nil {
			t.Fatal(err)
		}
		if restricted[idx] != full[idx] {
			t.Fatalf("trial %d: restricted %v != full %v", trial, restricted[idx], full[idx])
		}
		for i, p := range restricted {
			if i != idx && p != 0 {
				t.Fatalf("trial %d: candidate %d priced despite OnlyCandidate", trial, i)
			}
		}
	}
}

// certainCopy rebuilds g with every edge probability set to 1.
func certainCopy(g *bigraph.Graph) *bigraph.Graph {
	b := bigraph.NewBuilder(g.NumL(), g.NumR())
	for _, e := range g.Edges() {
		b.MustAddEdge(e.U, e.V, e.W, 1)
	}
	return b.Build()
}
