package core

import (
	"math"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/interval"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// probeFlushEvery is the sequential runners' flush cadence: trial tallies
// accumulate in plain locals and fold into the registry's atomic shards
// only every this many trials, keeping atomics (and time.Now) off the
// per-trial hot path. Parallel runners flush per claimed chunk instead
// (parChunkTrials), so a completed chunk is always fully visible.
const probeFlushEvery = 64

// trialMeter batches one goroutine's trial telemetry between flushes.
// With a nil probe every method is a single predictable branch; the
// meter lives on the runner's stack and allocates nothing.
type trialMeter struct {
	p *telemetry.Probe
	w int
	// numE is the snapshot length the scanned/pruned split is measured
	// against (edges for OS-family kernels, candidates for the OLS
	// sampling phase; 0 when the method has no ordered scan, e.g. mc-vp).
	numE      int64
	cand      bool // route flushes to the candidate counters
	trials    int64
	hits      int64
	scanned   int64
	fallbacks int64 // trials that crossed the calibrated prefix boundary
	last      time.Time
}

func newTrialMeter(p *telemetry.Probe, w, numE int, cand bool) trialMeter {
	m := trialMeter{p: p, w: w, numE: int64(numE), cand: cand}
	if p != nil {
		m.last = time.Now()
	}
	return m
}

// observe accumulates one completed trial and flushes on the batch
// cadence. It reports whether it flushed, so sequential runners can emit
// running-estimate updates at the same cadence.
func (m *trialMeter) observe(trial, scanned int, fellBack, hit bool) bool {
	if m.p == nil {
		return false
	}
	m.trials++
	m.scanned += int64(scanned)
	if fellBack {
		m.fallbacks++
	}
	if hit {
		m.hits++
	}
	if m.trials >= probeFlushEvery {
		m.flush(trial)
		return true
	}
	return false
}

// flush folds the batch into the registry and emits one TrialDone event.
// lastTrial is the last completed 1-based trial index.
func (m *trialMeter) flush(lastTrial int) {
	if m.p == nil || m.trials == 0 {
		return
	}
	now := time.Now()
	ns := now.Sub(m.last).Nanoseconds()
	pruned := m.trials*m.numE - m.scanned
	if pruned < 0 {
		pruned = 0
	}
	if m.cand {
		m.p.FlushCandTrials(m.w, m.trials, m.hits, m.scanned, pruned, ns)
	} else {
		m.p.FlushEdgeTrials(m.w, m.trials, m.hits, m.scanned, pruned, m.fallbacks, ns)
	}
	m.p.Emit(telemetry.Event{Kind: telemetry.EventTrialDone, Worker: m.w, Trial: lastTrial, N: m.trials})
	m.trials, m.hits, m.scanned, m.fallbacks = 0, 0, 0, 0
	m.last = now
}

// probeKLCandidate credits one priced Karp-Luby candidate: its executed
// trials go to the candidate counters (no scan split — Karp-Luby has no
// ordered scan, and its trials are rejection samples, not hit/miss world
// trials) plus one TrialDone event carrying the candidate index. last is
// the worker-local timing anchor, advanced on every call.
func probeKLCandidate(p *telemetry.Probe, w, cand, used int, last *time.Time) {
	if p == nil {
		return
	}
	now := time.Now()
	ns := now.Sub(*last).Nanoseconds()
	*last = now
	if used == 0 {
		return // resolved analytically, no trials to credit
	}
	p.FlushCandTrials(w, int64(used), 0, 0, 0, ns)
	p.Emit(telemetry.Event{Kind: telemetry.EventTrialDone, Worker: w, Trial: cand + 1, N: int64(used)})
}

// probeButterfly packs a butterfly into the telemetry event form.
func probeButterfly(b butterfly.Butterfly) [4]uint32 {
	return [4]uint32{b.U1, b.U2, b.V1, b.V2}
}

// probeEstimate publishes the running leader estimate x/n with its
// Agresti-Coull half-width (the same interval.NormalHalfWidth the
// supervisor's Epsilon rule uses) as gauges plus an EstimateUpdated
// event.
func probeEstimate(p *telemetry.Probe, w int, x int64, n int, b butterfly.Butterfly, weight float64) {
	if p == nil || n <= 0 {
		return
	}
	pe := float64(x) / float64(n)
	hw := interval.NormalHalfWidth(x, n, defaultEpsilonZ)
	p.SetLeader(pe, hw)
	p.Emit(telemetry.Event{
		Kind: telemetry.EventEstimateUpdated, Worker: w, Trial: n,
		B: probeButterfly(b), Weight: weight, P: pe, HalfWidth: hw,
	})
}

// probeFinish publishes the final leader estimate of a finished (or
// partial) Result, so the terminal gauges match the Result exactly. The
// proportion methods recover the leader count by rounding (P = c/n is
// exact in float64 for any feasible c); ols-kl estimates are not
// per-trial proportions, so their half-width gauge is reported as 0.
func probeFinish(p *telemetry.Probe, res *Result) {
	if p == nil || res == nil || len(res.Estimates) == 0 {
		return
	}
	e := res.Estimates[0]
	n := res.TrialsDone
	if n <= 0 {
		return
	}
	if res.Method == "ols-kl" {
		p.SetLeader(e.P, 0)
		p.Emit(telemetry.Event{
			Kind: telemetry.EventEstimateUpdated, Trial: n,
			B: probeButterfly(e.B), Weight: e.Weight, P: e.P,
		})
		return
	}
	probeEstimate(p, 0, int64(math.Round(e.P*float64(n))), n, e.B, e.Weight)
}
