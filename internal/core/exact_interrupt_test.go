package core

import (
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// interrupt14EdgeGraph builds a deterministic 14-edge graph (2^14 worlds),
// large enough that the enumeration crosses the second cancellation poll.
func interrupt14EdgeGraph() *bigraph.Graph {
	b := bigraph.NewBuilder(4, 4)
	n := 0
	for u := 0; u < 4 && n < 14; u++ {
		for v := 0; v < 4 && n < 14; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), float64(n%5)*0.5+1, 0.5)
			n++
		}
	}
	return b.Build()
}

// TestExactInterruptiblePollsFirstWorld pins the polling cadence contract
// of ExactInterruptible: the hook is checked on the very first world (so
// a pre-cancelled run never does real work, even when the whole
// enumeration would fit in one polling batch) and the result is flagged
// Partial with TrialsDone reporting the single visited world.
func TestExactInterruptiblePollsFirstWorld(t *testing.T) {
	res, err := ExactInterruptible(figure1Graph(), func() bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("pre-cancelled run not flagged Partial")
	}
	if res.TrialsDone != 1 {
		t.Fatalf("pre-cancelled run visited %d worlds, want 1 (poll must fire on the first world)", res.TrialsDone)
	}
	if len(res.Estimates) != 0 {
		t.Fatalf("pre-cancelled run produced %d estimates, want none", len(res.Estimates))
	}
}

// TestExactInterruptiblePollCadence pins the worlds%4096 == 1 polling
// schedule: with the hook cancelling on its second call, a 2^14-world
// enumeration must stop exactly at world 4097 — and the partial
// estimates must be lower bounds on the true probabilities (they sum a
// prefix of the world enumeration; see Result.Partial).
func TestExactInterruptiblePollCadence(t *testing.T) {
	g := interrupt14EdgeGraph()
	calls := 0
	res, err := ExactInterruptible(g, func() bool {
		calls++
		return calls >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("cancelled run not flagged Partial")
	}
	if res.TrialsDone != 4097 {
		t.Fatalf("stopped at world %d, want 4097 (second poll of the %%4096 == 1 cadence)", res.TrialsDone)
	}

	full, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("uninterrupted run flagged Partial")
	}
	if len(res.Estimates) == 0 {
		t.Fatal("4096 enumerated worlds of a 0.5-probability graph produced no estimate")
	}
	for _, e := range res.Estimates {
		exact, ok := full.Lookup(e.B)
		if !ok {
			t.Fatalf("partial result contains %v, absent from the full enumeration", e.B)
		}
		if e.P > exact.P+1e-12 {
			t.Errorf("%v: partial estimate %v exceeds exact probability %v — not a lower bound", e.B, e.P, exact.P)
		}
	}
}

// TestExactInterruptibleNilHookCompletes: the nil-hook path is the plain
// Exact contract — complete, not Partial, TrialsDone untouched.
func TestExactInterruptibleNilHookCompletes(t *testing.T) {
	res, err := ExactInterruptible(figure1Graph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.TrialsDone != 0 {
		t.Fatalf("complete run has Partial=%v TrialsDone=%d", res.Partial, res.TrialsDone)
	}
	if len(res.Estimates) == 0 {
		t.Fatal("figure 1 enumeration produced no estimates")
	}
}
