package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

func sortedSet(bs []butterfly.Butterfly) []butterfly.Butterfly {
	out := append([]butterfly.Butterfly(nil), bs...)
	sort.Slice(out, func(i, j int) bool { return lessButterfly(out[i], out[j]) })
	return out
}

func sameMaxSet(t *testing.T, got, want butterfly.MaxSet, context string) {
	t.Helper()
	if got.Empty() != want.Empty() {
		t.Fatalf("%s: emptiness mismatch: got %v want %v", context, got.Empty(), want.Empty())
	}
	if got.Empty() {
		return
	}
	if got.W != want.W {
		t.Fatalf("%s: max weight %v, want %v", context, got.W, want.W)
	}
	g, w := sortedSet(got.Set), sortedSet(want.Set)
	if len(g) != len(w) {
		t.Fatalf("%s: |S_MB| = %d, want %d\n got: %v\nwant: %v", context, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: S_MB[%d] = %v, want %v", context, i, g[i], w[i])
		}
	}
}

// TestOSOnWorldMatchesBruteForce is the central determinism check for
// Ordering Sampling: on any concrete possible world, the per-trial search
// of Algorithm 2 (edge ordering + angle ordering + fast butterfly
// creation) must return exactly the brute-force maximum weighted
// butterfly set S_MB. Exercised across random graphs and random worlds
// with testing/quick.
func TestOSOnWorldMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 5, 5, 18)
		rng := randx.New(uint64(seed) * 2654435761)
		w := possible.Sample(g, rng)
		want := butterfly.MaxWeightSet(g, w)
		got := OSOnWorld(g, w, OSOptions{})
		if got.Empty() != want.Empty() {
			return false
		}
		if got.Empty() {
			return true
		}
		if got.W != want.W || len(got.Set) != len(want.Set) {
			return false
		}
		a, b := sortedSet(got.Set), sortedSet(want.Set)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOSOnWorldAblationsAgree verifies that disabling the edge prune or
// keeping all angles — both pure performance optimizations — never
// changes the per-world result.
func TestOSOnWorldAblationsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(r, 5, 5, 20)
		rng := randx.New(uint64(trial + 1))
		w := possible.Sample(g, rng)
		base := OSOnWorld(g, w, OSOptions{})
		noPrune := OSOnWorld(g, w, OSOptions{DisableEdgePrune: true})
		allAngles := OSOnWorld(g, w, OSOptions{KeepAllAngles: true})
		sameMaxSet(t, noPrune, base, "DisableEdgePrune")
		sameMaxSet(t, allAngles, base, "KeepAllAngles")
	}
}

// TestVPEnumerationMatchesReference checks that the vertex-priority
// enumerator lists exactly the same butterflies (with identical weights)
// as the common-neighbour reference on random worlds.
func TestVPEnumerationMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		g := randGraph(r, 6, 6, 24)
		order := g.PriorityOrder()
		rng := randx.New(uint64(trial + 101))
		w := possible.Sample(g, rng)

		ref := make(map[butterfly.Butterfly]float64)
		butterfly.ForEachInWorld(g, w, func(b butterfly.Butterfly, wt float64) bool {
			if _, dup := ref[b]; dup {
				t.Fatalf("reference enumerator duplicated %v", b)
			}
			ref[b] = wt
			return true
		})
		vp := make(map[butterfly.Butterfly]float64)
		butterfly.ForEachInWorldVP(g, w, order, func(b butterfly.Butterfly, wt float64) bool {
			if _, dup := vp[b]; dup {
				t.Fatalf("VP enumerator duplicated %v", b)
			}
			vp[b] = wt
			return true
		})
		if len(ref) != len(vp) {
			t.Fatalf("trial %d: reference found %d butterflies, VP found %d", trial, len(ref), len(vp))
		}
		for b, wt := range ref {
			if vp[b] != wt {
				t.Fatalf("trial %d: %v weight mismatch: ref %v vp %v", trial, b, wt, vp[b])
			}
		}
	}
}

// TestOSEstimateConvergesToExact runs OS with enough trials on the Figure
// 1 example and compares every estimate against the exact solver within
// the Hoeffding acceptance half-width (an unreported butterfly is an
// estimate of 0, held to the same band).
func TestOSEstimateConvergesToExact(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60000
	tol := statTol(trials)
	res, err := OS(g, OSOptions{Trials: trials, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range exact.Estimates {
		got, ok := res.Lookup(want.B)
		if !ok {
			if want.P > tol {
				t.Fatalf("OS never reported %v (exact P=%v)", want.B, want.P)
			}
			continue
		}
		if math.Abs(got.P-want.P) > tol {
			t.Errorf("OS P(%v) = %v, exact %v (tol %v)", want.B, got.P, want.P, tol)
		}
	}
}

// TestMCVPEstimateConvergesToExact mirrors the OS convergence test for
// the baseline.
func TestMCVPEstimateConvergesToExact(t *testing.T) {
	g := figure1Graph()
	exact, err := Exact(g)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 60000
	tol := statTol(trials)
	res, err := MCVP(g, MCVPOptions{Trials: trials, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range exact.Estimates {
		got, ok := res.Lookup(want.B)
		if !ok {
			if want.P > tol {
				t.Fatalf("MC-VP never reported %v (exact P=%v)", want.B, want.P)
			}
			continue
		}
		if math.Abs(got.P-want.P) > tol {
			t.Errorf("MC-VP P(%v) = %v, exact %v (tol %v)", want.B, got.P, want.P, tol)
		}
	}
}

// TestOSAgreesWithMCVPOnRandomGraphs compares the two samplers'
// estimates head-to-head on random exactly-enumerable graphs: both
// approximate the same exact distribution.
func TestOSAgreesWithMCVPOnRandomGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison is slow")
	}
	r := rand.New(rand.NewSource(23))
	const trials = 40000
	tol := statTol(trials)
	for trial := 0; trial < 5; trial++ {
		g := randDenseSmallGraph(r, 12)
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		osRes, err := OS(g, OSOptions{Trials: trials, Seed: uint64(trial)*7 + 1})
		if err != nil {
			t.Fatal(err)
		}
		mcRes, err := MCVP(g, MCVPOptions{Trials: trials, Seed: uint64(trial)*7 + 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range exact.Estimates {
			if want.P < tol {
				continue // inside the acceptance band of an unreported butterfly
			}
			for _, res := range []*Result{osRes, mcRes} {
				got, ok := res.Lookup(want.B)
				if !ok {
					t.Fatalf("trial %d: %s missed %v with exact P=%v", trial, res.Method, want.B, want.P)
				}
				if math.Abs(got.P-want.P) > tol {
					t.Errorf("trial %d: %s P(%v)=%v, exact %v (tol %v)", trial, res.Method, got.P, want.P, want.P, tol)
				}
			}
		}
	}
}

// TestOSTrialHook verifies the OnTrial callback fires once per trial with
// increasing indices.
func TestOSTrialHook(t *testing.T) {
	g := figure1Graph()
	last := 0
	_, err := OS(g, OSOptions{Trials: 50, Seed: 1, OnTrial: func(trial int, _ *butterfly.MaxSet) {
		if trial != last+1 {
			t.Fatalf("trial indices not consecutive: %d after %d", trial, last)
		}
		last = trial
	}})
	if err != nil {
		t.Fatal(err)
	}
	if last != 50 {
		t.Fatalf("OnTrial fired %d times, want 50", last)
	}
}

// TestOSRejectsBadOptions covers option validation.
func TestOSRejectsBadOptions(t *testing.T) {
	g := figure1Graph()
	if _, err := OS(g, OSOptions{Trials: 0}); err == nil {
		t.Fatal("OS accepted Trials=0")
	}
	if _, err := MCVP(g, MCVPOptions{Trials: -1}); err == nil {
		t.Fatal("MCVP accepted Trials=-1")
	}
}

// TestOSDeterministicGivenSeed ensures two runs with the same seed give
// identical results, and different seeds (almost surely) differ in
// per-butterfly counts on a graph with randomness.
func TestOSDeterministicGivenSeed(t *testing.T) {
	g := figure1Graph()
	a, err := OS(g, OSOptions{Trials: 2000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OS(g, OSOptions{Trials: 2000, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Estimates) != len(b.Estimates) {
		t.Fatalf("same seed, different estimate counts: %d vs %d", len(a.Estimates), len(b.Estimates))
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("same seed, different estimate %d: %+v vs %+v", i, a.Estimates[i], b.Estimates[i])
		}
	}
}

// TestOSEmptyGraph exercises a graph with vertices but no edges.
func TestOSEmptyGraph(t *testing.T) {
	g := bigraph.NewBuilder(3, 3).Build()
	res, err := OS(g, OSOptions{Trials: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 0 {
		t.Fatalf("empty graph produced estimates: %+v", res.Estimates)
	}
}
