package core

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// KLOptions configures the Karp-Luby probability estimator (Algorithm 4),
// the alternative OLS sampling phase the paper compares against.
type KLOptions struct {
	// BaseTrials is the reference trial number. With Mu == 0 every
	// candidate runs exactly BaseTrials trials; with Mu > 0 the
	// per-candidate count is derived from BaseTrials via Equation 8 (see
	// Mu). Must be > 0.
	BaseTrials int
	// Mu, when positive, enables the paper's dynamic trial allocation
	// (Section VIII-B, Table IV): candidate B_i runs
	// ceil(KLOpRatio(Pr[E(B_i)], S_i, Mu) · BaseTrials) trials, the count
	// that matches the optimized estimator's ε-δ guarantee at target
	// probability Mu per Lemma VI.4. The true P(B_i) is unknown a priori,
	// so — like the paper — a global target (default experiments use
	// 0.05 or 0.1) stands in for μ.
	Mu float64
	// MaxTrials caps the per-candidate dynamic count (the ratio diverges
	// as Pr[E(B_i)]/μ grows). 0 means 50× BaseTrials.
	MaxTrials int
	// Seed makes the run reproducible.
	Seed uint64
	// TrialsUsed, if non-nil, receives the per-candidate trial counts
	// actually executed (indexed like the candidate list).
	TrialsUsed *[]int
	// OnCandidateTrial, if non-nil, is invoked after every trial of every
	// candidate with the candidate index, the 1-based trial index, and
	// the running estimate P̂(B_i) as of that trial. The convergence
	// experiment (Fig. 11) hooks here. Candidates resolved without
	// sampling (L(i) = 0 or S_i = 0) fire once with trial 0.
	OnCandidateTrial func(cand, trial int, runningP float64)
	// OnlyCandidate, when non-nil, restricts estimation to the single
	// candidate with that index; every other probability is returned as
	// 0. Convergence traces of one butterfly use this to avoid pricing
	// thousands of irrelevant candidates.
	OnlyCandidate *int
	// Interrupt, if non-nil, is polled between candidates; when it
	// returns true the run aborts with ErrInterrupted.
	Interrupt func() bool
}

// EstimateKarpLuby runs Algorithm 4 over a weight-sorted candidate set and
// returns P̂(B_i) for every candidate.
//
// For candidate B_i the quantity to estimate is the probability that no
// strictly heavier candidate B_j (j < L(i)) exists once B_i's own edges
// are conditioned present:
//
//	P(B_i) = Pr[E(B_i)] · (1 − Pr[∪_{j<L(i)} E(B_j\B_i)])
//
// The union probability is estimated with Karp-Luby rejection sampling:
// pick j proportional to Pr[E(B_j\B_i)] (alias table), force B_j\B_i
// present, Bernoulli-sample the other relevant edges, and count the trial
// iff no smaller-index k has B_k\B_i fully present — so every world in the
// union is credited to exactly one j. The estimator is unbiased for the
// union probability; the returned P̂ is clamped into [0, Pr[E(B_i)]]
// (sampling noise can otherwise push it slightly outside).
//
// Note the estimate treats C_MB as the complete competitor set; butterflies
// missing from the candidate set bias P̂ upward by at most Σ P(B_missing)
// (Lemma VI.5).
func EstimateKarpLuby(c *Candidates, opt KLOptions) ([]float64, error) {
	if opt.BaseTrials <= 0 {
		return nil, fmt.Errorf("core: Karp-Luby estimator requires BaseTrials > 0, got %d", opt.BaseTrials)
	}
	if opt.Mu < 0 || opt.Mu > 1 {
		return nil, fmt.Errorf("core: Karp-Luby Mu=%v outside [0,1]", opt.Mu)
	}
	maxTrials := opt.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 50 * opt.BaseTrials
	}
	g := c.G
	n := len(c.List)
	probs := make([]float64, n)
	trialsUsed := make([]int, n)

	// Lazy per-trial edge sampling state, shared across candidates.
	numE := g.NumEdges()
	stamp := make([]int32, numE)
	val := make([]bool, numE)
	var cur int32

	root := randx.New(opt.Seed)
	for i := 0; i < n; i++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			return nil, ErrInterrupted
		}
		if opt.OnlyCandidate != nil && i != *opt.OnlyCandidate {
			continue
		}
		cand := &c.List[i]
		li := c.LargerCount(i) // line 3: L(i)
		if li == 0 {
			// No heavier candidate: B_i is maximum whenever it exists.
			probs[i] = cand.ExistProb
			if opt.OnCandidateTrial != nil {
				opt.OnCandidateTrial(i, 0, probs[i])
			}
			continue
		}
		// Per-competitor diff edge sets and probabilities (line 4).
		diffs := make([][]bigraph.EdgeID, li)
		diffProbs := make([]float64, li)
		sI := 0.0
		for j := 0; j < li; j++ {
			diffs[j] = c.DiffEdges(j, i)
			diffProbs[j] = 1.0
			for _, id := range diffs[j] {
				diffProbs[j] *= g.Edge(id).P
			}
			sI += diffProbs[j]
		}
		if sI == 0 {
			// Every competitor has an impossible diff set; the union is
			// empty and B_i is maximum exactly when it exists.
			probs[i] = cand.ExistProb
			if opt.OnCandidateTrial != nil {
				opt.OnCandidateTrial(i, 0, probs[i])
			}
			continue
		}

		nTrials := opt.BaseTrials
		if opt.Mu > 0 {
			ratio := KLOpRatio(cand.ExistProb, sI, opt.Mu)
			nTrials = int(ratio*float64(opt.BaseTrials)) + 1
			if nTrials > maxTrials {
				nTrials = maxTrials
			}
		}
		trialsUsed[i] = nTrials

		alias := randx.NewAlias(diffProbs)
		rng := root.Derive(uint64(i) + 1)
		cnt := 0
		for t := 0; t < nTrials; t++ {
			cur++
			j := alias.Sample(rng) // line 6
			// Line 7: sample a world with B_j\B_i forced present.
			for _, id := range diffs[j] {
				stamp[id] = cur
				val[id] = true
			}
			// Line 8: reject if any smaller-index competitor also exists.
			minimal := true
			for k := 0; k < j && minimal; k++ {
				allPresent := true
				for _, id := range diffs[k] {
					if stamp[id] != cur {
						stamp[id] = cur
						val[id] = rng.Bernoulli(g.Edge(id).P)
					}
					if !val[id] {
						allPresent = false
						break
					}
				}
				if allPresent {
					minimal = false
				}
			}
			if minimal {
				cnt++ // line 9
			}
			if opt.OnCandidateTrial != nil {
				running := (1 - float64(cnt)/float64(t+1)*sI) * cand.ExistProb
				if running < 0 {
					running = 0
				}
				opt.OnCandidateTrial(i, t+1, running)
			}
		}
		// Line 10.
		p := (1 - float64(cnt)/float64(nTrials)*sI) * cand.ExistProb
		if p < 0 {
			p = 0
		}
		if p > cand.ExistProb {
			p = cand.ExistProb
		}
		probs[i] = p
	}
	if opt.TrialsUsed != nil {
		*opt.TrialsUsed = trialsUsed
	}
	return probs, nil
}
