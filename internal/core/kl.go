package core

import (
	"fmt"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// KLOptions configures the Karp-Luby probability estimator (Algorithm 4),
// the alternative OLS sampling phase the paper compares against.
type KLOptions struct {
	// BaseTrials is the reference trial number. With Mu == 0 every
	// candidate runs exactly BaseTrials trials; with Mu > 0 the
	// per-candidate count is derived from BaseTrials via Equation 8 (see
	// Mu). Must be > 0.
	BaseTrials int
	// Mu, when positive, enables the paper's dynamic trial allocation
	// (Section VIII-B, Table IV): candidate B_i runs
	// ceil(KLOpRatio(Pr[E(B_i)], S_i, Mu) · BaseTrials) trials, the count
	// that matches the optimized estimator's ε-δ guarantee at target
	// probability Mu per Lemma VI.4. The true P(B_i) is unknown a priori,
	// so — like the paper — a global target (default experiments use
	// 0.05 or 0.1) stands in for μ.
	Mu float64
	// MaxTrials caps the per-candidate dynamic count (the ratio diverges
	// as Pr[E(B_i)]/μ grows). 0 means 50× BaseTrials.
	MaxTrials int
	// Seed makes the run reproducible.
	Seed uint64
	// TrialsUsed, if non-nil, receives the per-candidate trial counts
	// actually executed (indexed like the candidate list).
	TrialsUsed *[]int
	// OnCandidateTrial, if non-nil, is invoked after every trial of every
	// candidate with the candidate index, the 1-based trial index, and
	// the running estimate P̂(B_i) as of that trial. The convergence
	// experiment (Fig. 11) hooks here. Candidates resolved without
	// sampling (L(i) = 0 or S_i = 0) fire once with trial 0.
	OnCandidateTrial func(cand, trial int, runningP float64)
	// OnlyCandidate, when non-nil, restricts estimation to the single
	// candidate with that index; every other probability is returned as
	// 0. Convergence traces of one butterfly use this to avoid pricing
	// thousands of irrelevant candidates.
	OnlyCandidate *int
	// Interrupt, if non-nil, is polled between candidates; when it returns
	// true the run stops, leaving later candidates unpriced (State reports
	// how many were finished). Estimation is candidate-granular, so the
	// priced prefix is exact. Parallel runners poll the hook concurrently
	// from every worker; it must be safe for concurrent use there.
	Interrupt func() bool
	// State, if non-nil, receives the run's completion state — partial
	// flag, priced-candidate count, and per-candidate data for
	// checkpointing.
	State *EstimatorState
	// ResumeProbs / ResumeTrials / ResumeDone restore the first ResumeDone
	// candidates' estimates from an earlier cancelled run; pricing
	// continues at candidate ResumeDone and finishes bit-identically to an
	// uninterrupted run (per-candidate streams derive from (Seed,
	// candidate index)). Incompatible with OnlyCandidate.
	ResumeProbs  []float64
	ResumeTrials []int64
	ResumeDone   int
	// Probe, if non-nil, receives run telemetry: the per-candidate trial
	// counts actually executed, flushed once per priced candidate. Nil
	// costs one predictable branch per candidate.
	Probe *telemetry.Probe
	// Executor, if non-nil, replaces EstimateKarpLubyParallel's default
	// in-process worker pool with an explicit TrialExecutor. Spec then
	// carries the run-level identity remote executors need; both are
	// ignored by the sequential EstimateKarpLuby.
	Executor TrialExecutor
	Spec     ExecSpec
}

// klScratch is the reusable lazy edge-sampling state shared by all trials
// of all candidates priced by one goroutine: stamp/val lazy sampling
// slices, the id-indexed Bernoulli threshold table (shared read-only
// across goroutines), and an in-place derived per-candidate stream.
type klScratch struct {
	stamp  []int32
	val    []bool
	cur    int32
	thresh []uint64
	rng    randx.RNG
}

func newKLScratch(numE int, thresh []uint64) *klScratch {
	return &klScratch{stamp: make([]int32, numE), val: make([]bool, numE), thresh: thresh}
}

// EstimateKarpLuby runs Algorithm 4 over a weight-sorted candidate set and
// returns P̂(B_i) for every candidate.
//
// For candidate B_i the quantity to estimate is the probability that no
// strictly heavier candidate B_j (j < L(i)) exists once B_i's own edges
// are conditioned present:
//
//	P(B_i) = Pr[E(B_i)] · (1 − Pr[∪_{j<L(i)} E(B_j\B_i)])
//
// The union probability is estimated with Karp-Luby rejection sampling:
// pick j proportional to Pr[E(B_j\B_i)] (alias table), force B_j\B_i
// present, Bernoulli-sample the other relevant edges, and count the trial
// iff no smaller-index k has B_k\B_i fully present — so every world in the
// union is credited to exactly one j. The estimator is unbiased for the
// union probability; the returned P̂ is clamped into [0, Pr[E(B_i)]]
// (sampling noise can otherwise push it slightly outside).
//
// Note the estimate treats C_MB as the complete competitor set; butterflies
// missing from the candidate set bias P̂ upward by at most Σ P(B_missing)
// (Lemma VI.5).
func EstimateKarpLuby(c *Candidates, opt KLOptions) ([]float64, error) {
	if err := validateKL(opt); err != nil {
		return nil, err
	}
	n := len(c.List)
	probs := make([]float64, n)
	trialsUsed := make([]int, n)
	start, err := klResumeInit(n, opt, probs, trialsUsed)
	if err != nil {
		return nil, err
	}

	scratch := newKLScratch(c.G.NumEdges(), edgeThresholds(c.G))
	root := randx.New(opt.Seed)
	partial := false
	done := n
	var lastT time.Time
	if opt.Probe != nil {
		lastT = time.Now()
	}
	for i := start; i < n; i++ {
		if opt.Interrupt != nil && opt.Interrupt() {
			partial = true
			done = i
			break
		}
		if opt.OnlyCandidate != nil && i != *opt.OnlyCandidate {
			continue
		}
		probs[i], trialsUsed[i] = klPrice(c, i, opt, root, scratch)
		probeKLCandidate(opt.Probe, 0, i, trialsUsed[i], &lastT)
	}
	if opt.TrialsUsed != nil {
		*opt.TrialsUsed = trialsUsed
	}
	if opt.State != nil {
		*opt.State = EstimatorState{Partial: partial, Done: done, Probs: probs, Trials: trialsUsed}
	}
	return probs, nil
}

// klResumeInit validates the resume options and copies the already-priced
// prefix into probs/trialsUsed, returning the first candidate to price.
func klResumeInit(n int, opt KLOptions, probs []float64, trialsUsed []int) (int, error) {
	if opt.ResumeDone == 0 && opt.ResumeProbs == nil {
		return 0, nil
	}
	if opt.ResumeDone < 0 || opt.ResumeDone > n {
		return 0, fmt.Errorf("core: Karp-Luby resume at candidate %d outside [0,%d]", opt.ResumeDone, n)
	}
	if len(opt.ResumeProbs) != n || len(opt.ResumeTrials) != n {
		return 0, fmt.Errorf("core: Karp-Luby resume has %d/%d entries, want %d", len(opt.ResumeProbs), len(opt.ResumeTrials), n)
	}
	for i := 0; i < opt.ResumeDone; i++ {
		probs[i] = opt.ResumeProbs[i]
		trialsUsed[i] = int(opt.ResumeTrials[i])
	}
	return opt.ResumeDone, nil
}

// validateKL checks the option combinations shared by the sequential and
// parallel Karp-Luby runners.
func validateKL(opt KLOptions) error {
	if opt.BaseTrials <= 0 {
		return fmt.Errorf("core: Karp-Luby estimator requires BaseTrials > 0, got %d", opt.BaseTrials)
	}
	if opt.Mu < 0 || opt.Mu > 1 {
		return fmt.Errorf("core: Karp-Luby Mu=%v outside [0,1]", opt.Mu)
	}
	if opt.OnlyCandidate != nil && (opt.ResumeDone != 0 || opt.ResumeProbs != nil) {
		return fmt.Errorf("core: Karp-Luby resume is incompatible with OnlyCandidate")
	}
	return nil
}

// klPrice prices one candidate (lines 3–10 of Algorithm 4). Its random
// stream derives from (root, candidate index) only, so any subset of
// candidates can be priced in any order — or on any goroutine — with
// bit-identical results.
func klPrice(c *Candidates, i int, opt KLOptions, root *randx.RNG, scratch *klScratch) (prob float64, nTrials int) {
	maxTrials := opt.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 50 * opt.BaseTrials
	}
	g := c.G
	cand := &c.List[i]
	li := c.LargerCount(i) // line 3: L(i)
	if li == 0 {
		// No heavier candidate: B_i is maximum whenever it exists.
		if opt.OnCandidateTrial != nil {
			opt.OnCandidateTrial(i, 0, cand.ExistProb)
		}
		return cand.ExistProb, 0
	}
	// Per-competitor diff edge sets and probabilities (line 4).
	diffs := make([][]bigraph.EdgeID, li)
	diffProbs := make([]float64, li)
	sI := 0.0
	for j := 0; j < li; j++ {
		diffs[j] = c.DiffEdges(j, i)
		diffProbs[j] = 1.0
		for _, id := range diffs[j] {
			diffProbs[j] *= g.Edge(id).P
		}
		sI += diffProbs[j]
	}
	if sI == 0 {
		// Every competitor has an impossible diff set; the union is
		// empty and B_i is maximum exactly when it exists.
		if opt.OnCandidateTrial != nil {
			opt.OnCandidateTrial(i, 0, cand.ExistProb)
		}
		return cand.ExistProb, 0
	}

	nTrials = opt.BaseTrials
	if opt.Mu > 0 {
		ratio := KLOpRatio(cand.ExistProb, sI, opt.Mu)
		nTrials = int(ratio*float64(opt.BaseTrials)) + 1
		if nTrials > maxTrials {
			nTrials = maxTrials
		}
	}

	stamp, val := scratch.stamp, scratch.val
	alias := randx.NewAlias(diffProbs)
	root.DeriveInto(uint64(i)+1, &scratch.rng)
	rng := &scratch.rng
	cnt := 0
	for t := 0; t < nTrials; t++ {
		scratch.cur++
		cur := scratch.cur
		j := alias.Sample(rng) // line 6
		// Line 7: sample a world with B_j\B_i forced present.
		for _, id := range diffs[j] {
			stamp[id] = cur
			val[id] = true
		}
		// Line 8: reject if any smaller-index competitor also exists.
		minimal := true
		for k := 0; k < j && minimal; k++ {
			allPresent := true
			for _, id := range diffs[k] {
				if stamp[id] != cur {
					stamp[id] = cur
					val[id] = rng.BernoulliThresholded(scratch.thresh[id])
				}
				if !val[id] {
					allPresent = false
					break
				}
			}
			if allPresent {
				minimal = false
			}
		}
		if minimal {
			cnt++ // line 9
		}
		if opt.OnCandidateTrial != nil {
			running := (1 - float64(cnt)/float64(t+1)*sI) * cand.ExistProb
			if running < 0 {
				running = 0
			}
			opt.OnCandidateTrial(i, t+1, running)
		}
	}
	// Line 10.
	p := (1 - float64(cnt)/float64(nTrials)*sI) * cand.ExistProb
	if p < 0 {
		p = 0
	}
	if p > cand.ExistProb {
		p = cand.ExistProb
	}
	return p, nTrials
}
