package core

import (
	"testing"
)

// TestInterruptHooks verifies the cancellation path of every
// interrupt-capable runner: an immediate interrupt yields a partial,
// zero-trial result (not an error), and a nil hook leaves behaviour
// unchanged.
func TestInterruptHooks(t *testing.T) {
	g := figure1Graph()
	always := func() bool { return true }

	res, err := OS(g, OSOptions{Trials: 100, Seed: 1, Interrupt: always})
	if err != nil {
		t.Fatalf("OS interrupt: err = %v", err)
	}
	if !res.Partial || res.TrialsDone != 0 || res.Trials != 100 {
		t.Fatalf("OS interrupt: Partial=%v TrialsDone=%d Trials=%d, want partial 0/100", res.Partial, res.TrialsDone, res.Trials)
	}
	if res.Checkpoint == nil || res.Checkpoint.Method != "os" || res.Checkpoint.Done != 0 {
		t.Fatalf("OS interrupt: checkpoint = %+v", res.Checkpoint)
	}

	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	var st EstimatorState
	if _, err := EstimateOptimized(cands, OptimizedOptions{Trials: 100, Seed: 1, Interrupt: always, State: &st}); err != nil {
		t.Fatalf("optimized interrupt: err = %v", err)
	}
	if !st.Partial || st.Done != 0 {
		t.Fatalf("optimized interrupt: state = %+v, want partial at 0", st)
	}
	st = EstimatorState{}
	if _, err := EstimateKarpLuby(cands, KLOptions{BaseTrials: 100, Seed: 1, Interrupt: always, State: &st}); err != nil {
		t.Fatalf("karp-luby interrupt: err = %v", err)
	}
	if !st.Partial || st.Done != 0 {
		t.Fatalf("karp-luby interrupt: state = %+v, want partial at 0", st)
	}

	// A counting interrupt lets some work through and then stops; the
	// partial result is normalized over exactly the completed prefix.
	calls := 0
	res, err = OS(g, OSOptions{Trials: 100, Seed: 1, Interrupt: func() bool {
		calls++
		return calls > 5
	}})
	if err != nil {
		t.Fatalf("OS counting interrupt: err = %v", err)
	}
	if calls != 6 {
		t.Fatalf("OS polled interrupt %d times before stopping, want 6", calls)
	}
	if !res.Partial || res.TrialsDone != 5 {
		t.Fatalf("OS counting interrupt: Partial=%v TrialsDone=%d, want partial 5", res.Partial, res.TrialsDone)
	}
}

// TestPartialPrefixMatchesShortRun is the graceful-degradation contract:
// a run cancelled after T of N trials returns exactly the estimates a
// fresh run with Trials=T produces — the prefix is a valid sample, not a
// corrupted one.
func TestPartialPrefixMatchesShortRun(t *testing.T) {
	g := figure1Graph()
	const full, cut = 200, 37

	t.Run("os", func(t *testing.T) {
		calls := 0
		part, err := OS(g, OSOptions{Trials: full, Seed: 7, Interrupt: func() bool {
			calls++
			return calls > cut
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		short, err := OS(g, OSOptions{Trials: cut, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimates(t, part.Estimates, short.Estimates)
	})

	t.Run("mc-vp", func(t *testing.T) {
		calls := 0
		part, err := MCVP(g, MCVPOptions{Trials: full, Seed: 7, Interrupt: func() bool {
			calls++
			return calls > cut
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		short, err := MCVP(g, MCVPOptions{Trials: cut, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimates(t, part.Estimates, short.Estimates)
	})

	t.Run("ols", func(t *testing.T) {
		// Let the preparing phase (100 polls) pass, cut the sampling phase.
		prep := 20
		calls := 0
		part, err := OLS(g, OLSOptions{PrepTrials: prep, Trials: full, Seed: 7, Interrupt: func() bool {
			calls++
			return calls > prep+cut
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !part.Partial || part.TrialsDone != cut {
			t.Fatalf("Partial=%v TrialsDone=%d, want partial %d", part.Partial, part.TrialsDone, cut)
		}
		short, err := OLS(g, OLSOptions{PrepTrials: prep, Trials: cut, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		assertSameEstimates(t, part.Estimates, short.Estimates)
	})
}

// assertSameEstimates requires bit-identical estimate lists.
func assertSameEstimates(t *testing.T, got, want []Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("estimate counts differ: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("estimate %d differs: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
