package core

import (
	"testing"
)

// TestInterruptHooks verifies the cancellation path of every
// interrupt-capable runner: immediate interrupts abort with
// ErrInterrupted, and a nil hook leaves behaviour unchanged.
func TestInterruptHooks(t *testing.T) {
	g := figure1Graph()
	always := func() bool { return true }

	if _, err := OS(g, OSOptions{Trials: 100, Seed: 1, Interrupt: always}); err != ErrInterrupted {
		t.Fatalf("OS interrupt: err = %v", err)
	}

	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateOptimized(cands, OptimizedOptions{Trials: 100, Seed: 1, Interrupt: always}); err != ErrInterrupted {
		t.Fatalf("optimized interrupt: err = %v", err)
	}
	if _, err := EstimateKarpLuby(cands, KLOptions{BaseTrials: 100, Seed: 1, Interrupt: always}); err != ErrInterrupted {
		t.Fatalf("karp-luby interrupt: err = %v", err)
	}

	// A counting interrupt lets some work through and then stops.
	calls := 0
	_, err = OS(g, OSOptions{Trials: 100, Seed: 1, Interrupt: func() bool {
		calls++
		return calls > 5
	}})
	if err != ErrInterrupted {
		t.Fatalf("OS counting interrupt: err = %v", err)
	}
	if calls != 6 {
		t.Fatalf("OS polled interrupt %d times before aborting, want 6", calls)
	}
}
