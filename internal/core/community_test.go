package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// refExactCommunity computes, on the PARENT graph, the probability of
// each community-c butterfly being the maximum among community-c
// butterflies — the semantics CommunitySubgraphs + Exact must reproduce.
func refExactCommunity(t *testing.T, g *bigraph.Graph, sp CommunitySpec, c int) map[butterfly.Butterfly]float64 {
	t.Helper()
	probs := make(map[butterfly.Butterfly]float64)
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		if pr == 0 {
			return true
		}
		var m butterfly.MaxSet
		butterfly.ForEachInWorld(g, w, func(b butterfly.Butterfly, wt float64) bool {
			if sp.L[b.U1] == c && sp.L[b.U2] == c && sp.R[b.V1] == c && sp.R[b.V2] == c {
				m.Add(b, wt)
			}
			return true
		})
		for _, b := range m.Set {
			probs[b] += pr
		}
		return true
	})
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	return probs
}

// halfSplit labels vertices alternately into communities 0 and 1.
func halfSplit(g *bigraph.Graph) CommunitySpec {
	sp := CommunitySpec{L: make([]int, g.NumL()), R: make([]int, g.NumR())}
	for i := range sp.L {
		sp.L[i] = i % 2
	}
	for i := range sp.R {
		sp.R[i] = i % 2
	}
	return sp
}

// TestCommunitySubgraphExactMatchesReference: Exact on each community's
// induced subgraph, remapped to parent ids, must equal the parent-graph
// reference restricted to that community.
func TestCommunitySubgraphExactMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for gi := 0; gi < 20; gi++ {
		g := randGraph(r, 5, 5, 12)
		sp := halfSplit(g)
		subs, err := CommunitySubgraphs(g, sp)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range subs {
			ref := refExactCommunity(t, g, sp, cg.ID)
			res, err := Exact(cg.G)
			if err != nil {
				t.Fatal(err)
			}
			mapped := cg.RemapResult(res)
			if len(mapped.Estimates) != len(ref) {
				t.Fatalf("graph %d community %d: got %d estimates, want %d", gi, cg.ID, len(mapped.Estimates), len(ref))
			}
			for _, e := range mapped.Estimates {
				if want := ref[e.B]; math.Abs(e.P-want) > 1e-12 {
					t.Fatalf("graph %d community %d: P(%v) = %v, want %v", gi, cg.ID, e.B, e.P, want)
				}
			}
		}
	}
}

func TestCommunitySpecValidate(t *testing.T) {
	g := figure1Graph()
	if err := (CommunitySpec{L: []int{0}, R: []int{0, 0, 0}}).Validate(g); err == nil {
		t.Fatal("short L labels: expected error")
	}
	if err := (CommunitySpec{L: []int{0, 0}, R: []int{0, 0}}).Validate(g); err == nil {
		t.Fatal("short R labels: expected error")
	}
	if err := (CommunitySpec{L: []int{0, -2}, R: []int{0, 0, 0}}).Validate(g); err == nil {
		t.Fatal("label -2: expected error")
	}
	if err := (CommunitySpec{L: []int{0, -1}, R: []int{0, 0, 1}}).Validate(g); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestCommunityExclusion: label -1 keeps a vertex out of every
// community, and one-sided labels yield butterfly-free subgraphs rather
// than errors.
func TestCommunityExclusion(t *testing.T) {
	g := figure1Graph()
	sp := CommunitySpec{L: []int{0, -1}, R: []int{0, 0, 1}}
	subs, err := CommunitySubgraphs(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d communities, want 2", len(subs))
	}
	if subs[0].ID != 0 || subs[1].ID != 1 {
		t.Fatalf("community order: %d, %d", subs[0].ID, subs[1].ID)
	}
	// Community 0: L={u1}, R={v1,v2} — one left vertex, no butterfly.
	if subs[0].G.NumL() != 1 || subs[0].G.NumR() != 2 {
		t.Fatalf("community 0 dims: %dx%d", subs[0].G.NumL(), subs[0].G.NumR())
	}
	// Community 1: only v3, no left vertices at all.
	if subs[1].G.NumL() != 0 || subs[1].G.NumR() != 1 {
		t.Fatalf("community 1 dims: %dx%d", subs[1].G.NumL(), subs[1].G.NumR())
	}
	res, err := Exact(subs[0].G)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 0 {
		t.Fatal("butterfly-free community produced estimates")
	}
}

func TestAssembleCommunityResult(t *testing.T) {
	g := figure1Graph()
	sp := CommunitySpec{L: []int{0, 0}, R: []int{0, 0, 0}}
	subs, err := CommunitySubgraphs(g, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d communities", len(subs))
	}
	res, err := Exact(subs[0].G)
	if err != nil {
		t.Fatal(err)
	}
	parts := []CommunityResult{{Community: 0, Result: subs[0].RemapResult(res)}}
	out := AssembleCommunityResult("exact", 0, 0, 2, parts)
	if len(out.Communities) != 1 || out.Communities[0].Community != 0 {
		t.Fatalf("communities: %+v", out.Communities)
	}
	if len(out.Estimates) != 2 {
		t.Fatalf("top-2 concat: got %d estimates", len(out.Estimates))
	}
	if out.Partial {
		t.Fatal("complete parts marked partial")
	}
	// Partial propagation.
	parts[0].Result.Partial = true
	parts[0].Result.TrialsDone = 7
	out = AssembleCommunityResult("os", 100, 0, 1, parts)
	if !out.Partial || out.TrialsDone != 7 {
		t.Fatalf("partial propagation: partial=%v done=%d", out.Partial, out.TrialsDone)
	}
}
