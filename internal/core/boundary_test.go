package core

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// TestEdgePruneBoundaryIsStrict: the Section V-B prune breaks only when
// w(e) + w̄ is STRICTLY below w_max. On a graph where a butterfly
// completed by the lightest edges exactly ties the current maximum, the
// pruned search must still find both tied butterflies.
func TestEdgePruneBoundaryIsStrict(t *testing.T) {
	// Left 0,1; right 0..3. Butterfly A over (v0,v1) with all weights 3:
	// total 12. Butterfly B over (v2,v3) with all weights 3 as well, but
	// processed later under descending order with id tie-breaks. All
	// eight edges certain.
	b := bigraph.NewBuilder(2, 4)
	for v := 0; v < 4; v++ {
		b.MustAddEdge(0, bigraph.VertexID(v), 3, 1)
		b.MustAddEdge(1, bigraph.VertexID(v), 3, 1)
	}
	g := b.Build()
	full := possible.NewWorld(g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		full.Set(bigraph.EdgeID(i))
	}
	m := OSOnWorld(g, full, OSOptions{})
	// All C(2,2)·C(4,2) = 6 butterflies tie at weight 12; every one must
	// be found despite the prune being armed at w_max = 12 with
	// w(e)+w̄ = 3+9 = 12 (not < 12).
	if m.W != 12 || len(m.Set) != 6 {
		t.Fatalf("S_MB = %d butterflies at weight %v, want 6 at 12", len(m.Set), m.W)
	}
}

// TestEdgePruneActuallyCuts: with a dominant heavy butterfly and strictly
// lighter tail edges, the pruned trial must not even sample the tail.
// Verified by counting oracle calls through OSOnWorld's deterministic
// variant versus the lazy sampler's Bernoulli consumption.
func TestEdgePruneActuallyCuts(t *testing.T) {
	b := bigraph.NewBuilder(2, 12)
	// Heavy certain butterfly: weight 40.
	b.MustAddEdge(0, 0, 10, 1)
	b.MustAddEdge(0, 1, 10, 1)
	b.MustAddEdge(1, 0, 10, 1)
	b.MustAddEdge(1, 1, 10, 1)
	// Light tail: weight 1 edges. w(e)+w̄ = 1+30 = 31 < 40 → pruned.
	for v := 2; v < 12; v++ {
		b.MustAddEdge(0, bigraph.VertexID(v), 1, 1)
		b.MustAddEdge(1, bigraph.VertexID(v), 1, 1)
	}
	g := b.Build()
	full := possible.NewWorld(g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		full.Set(bigraph.EdgeID(i))
	}

	idx := newOSIndex(g, OSOptions{})
	touched := 0
	var max butterfly.MaxSet
	idx.runTrial(&max, func(id bigraph.EdgeID) bool {
		touched++
		return full.Has(id)
	})
	if max.W != 40 || len(max.Set) != 1 {
		t.Fatalf("S_MB = %v at %v, want the single weight-40 butterfly", max.Set, max.W)
	}
	// The four heavy edges plus at most a few tail probes before the
	// prune arms; certainly not all 24 edges.
	if touched >= g.NumEdges() {
		t.Fatalf("prune never cut: %d of %d edges probed", touched, g.NumEdges())
	}

	// Sanity: with the prune disabled every edge is probed.
	idxOff := newOSIndex(g, OSOptions{DisableEdgePrune: true})
	touched = 0
	idxOff.runTrial(&max, func(id bigraph.EdgeID) bool {
		touched++
		return full.Has(id)
	})
	if touched != g.NumEdges() {
		t.Fatalf("prune-off probed %d of %d edges", touched, g.NumEdges())
	}
}

// TestKLMaxTrialsCap: a candidate whose Equation 8 allocation explodes is
// clamped to MaxTrials.
func TestKLMaxTrialsCap(t *testing.T) {
	// Heaviest candidate nearly certain; second candidate also nearly
	// certain → huge Pr[E]/μ ratio at small μ.
	b := bigraph.NewBuilder(2, 4)
	for v := 0; v < 2; v++ {
		b.MustAddEdge(0, bigraph.VertexID(v), 5, 0.99)
		b.MustAddEdge(1, bigraph.VertexID(v), 5, 0.99)
	}
	for v := 2; v < 4; v++ {
		b.MustAddEdge(0, bigraph.VertexID(v), 4, 0.99)
		b.MustAddEdge(1, bigraph.VertexID(v), 4, 0.99)
	}
	g := b.Build()
	cands, err := AllBackboneCandidates(g)
	if err != nil {
		t.Fatal(err)
	}
	var used []int
	_, err = EstimateKarpLuby(cands, KLOptions{
		BaseTrials: 1000,
		Mu:         0.001, // forces an enormous Eq. 8 ratio
		MaxTrials:  1500,
		Seed:       3,
		TrialsUsed: &used,
	})
	if err != nil {
		t.Fatal(err)
	}
	capped := false
	for i, u := range used {
		if u > 1500 {
			t.Fatalf("candidate %d ran %d trials beyond the cap", i, u)
		}
		if u == 1500 {
			capped = true
		}
	}
	if !capped {
		t.Fatalf("no candidate hit the cap; trials used: %v", used)
	}
}

// TestOSAllEqualWeights: with every edge weight equal the prune can never
// fire (w(e)+w̄ always equals the best butterfly weight) and the result
// must still match brute force.
func TestOSAllEqualWeights(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		numL, numR := 2+r.Intn(3), 2+r.Intn(3)
		b := bigraph.NewBuilder(numL, numR)
		for u := 0; u < numL; u++ {
			for v := 0; v < numR; v++ {
				if r.Float64() < 0.7 {
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 2, r.Float64())
				}
			}
		}
		g := b.Build()
		w := possible.NewWorld(g.NumEdges())
		for i := 0; i < g.NumEdges(); i++ {
			if r.Float64() < 0.7 {
				w.Set(bigraph.EdgeID(i))
			}
		}
		got := OSOnWorld(g, w, OSOptions{})
		want := butterfly.MaxWeightSet(g, w)
		if got.Empty() != want.Empty() {
			t.Fatalf("trial %d: emptiness mismatch", trial)
		}
		if !got.Empty() && (got.W != want.W || len(got.Set) != len(want.Set)) {
			t.Fatalf("trial %d: got %d@%v want %d@%v", trial, len(got.Set), got.W, len(want.Set), want.W)
		}
	}
}

// TestOSNegativeWeights: the paper defines w: E → ℝ but its pseudocode
// initializes w_max to 0, silently assuming positive weights. This
// implementation initializes to -Inf, so worlds whose butterflies all
// have negative weight still produce a correct S_MB. Verified against
// brute force on random negative-weight graphs.
func TestOSNegativeWeights(t *testing.T) {
	r := rand.New(rand.NewSource(191))
	nonEmpty := 0
	for trial := 0; trial < 100; trial++ {
		numL, numR := 2+r.Intn(3), 2+r.Intn(3)
		b := bigraph.NewBuilder(numL, numR)
		for u := 0; u < numL; u++ {
			for v := 0; v < numR; v++ {
				if r.Float64() < 0.7 {
					w := -5 + float64(r.Intn(10))/2 // [-5, 0) half steps, some exactly 0
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, r.Float64())
				}
			}
		}
		g := b.Build()
		w := possible.NewWorld(g.NumEdges())
		for i := 0; i < g.NumEdges(); i++ {
			if r.Float64() < 0.8 {
				w.Set(bigraph.EdgeID(i))
			}
		}
		got := OSOnWorld(g, w, OSOptions{})
		want := butterfly.MaxWeightSet(g, w)
		if got.Empty() != want.Empty() {
			t.Fatalf("trial %d: emptiness mismatch", trial)
		}
		if got.Empty() {
			continue
		}
		nonEmpty++
		if got.W != want.W || len(got.Set) != len(want.Set) {
			t.Fatalf("trial %d: got %d@%v want %d@%v", trial, len(got.Set), got.W, len(want.Set), want.W)
		}
	}
	if nonEmpty < 10 {
		t.Fatalf("only %d non-empty worlds; test too weak", nonEmpty)
	}
}
