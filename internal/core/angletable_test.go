package core

import (
	"math"
	"testing"
)

// TestAngleTableUpdateCases reproduces Table II of the paper: the five
// updating cases of the A1/A2 angle classes when a new angle of weight
// w(∠_new) arrives.
func TestAngleTableUpdateCases(t *testing.T) {
	mk := func() *angleEntry {
		e := &angleEntry{u1: 0, u2: 1, w1: math.Inf(-1), w2: math.Inf(-1)}
		e.update(5, 10) // A1 = {∠(mid=10)} at weight 5
		e.update(3, 11) // A2 = {∠(mid=11)} at weight 3
		return e
	}

	t.Run("w>w(A1) promotes A1 to A2", func(t *testing.T) {
		e := mk()
		e.update(7, 12)
		if e.w1 != 7 || len(e.mids1) != 1 || e.mids1[0] != 12 {
			t.Fatalf("A1 = (%v, %v), want (7, [12])", e.w1, e.mids1)
		}
		if e.w2 != 5 || len(e.mids2) != 1 || e.mids2[0] != 10 {
			t.Fatalf("A2 = (%v, %v), want (5, [10])", e.w2, e.mids2)
		}
	})

	t.Run("w=w(A1) joins A1", func(t *testing.T) {
		e := mk()
		e.update(5, 12)
		if e.w1 != 5 || len(e.mids1) != 2 {
			t.Fatalf("A1 = (%v, %v), want weight 5 with 2 angles", e.w1, e.mids1)
		}
		if e.w2 != 3 || len(e.mids2) != 1 {
			t.Fatalf("A2 = (%v, %v), want unchanged (3, [11])", e.w2, e.mids2)
		}
	})

	t.Run("w(A2)<w<w(A1) replaces A2", func(t *testing.T) {
		e := mk()
		e.update(4, 12)
		if e.w1 != 5 || len(e.mids1) != 1 {
			t.Fatalf("A1 = (%v, %v), want unchanged", e.w1, e.mids1)
		}
		if e.w2 != 4 || len(e.mids2) != 1 || e.mids2[0] != 12 {
			t.Fatalf("A2 = (%v, %v), want (4, [12])", e.w2, e.mids2)
		}
	})

	t.Run("w=w(A2) joins A2", func(t *testing.T) {
		e := mk()
		e.update(3, 12)
		if e.w2 != 3 || len(e.mids2) != 2 {
			t.Fatalf("A2 = (%v, %v), want weight 3 with 2 angles", e.w2, e.mids2)
		}
	})

	t.Run("w<w(A2) is ignored", func(t *testing.T) {
		e := mk()
		e.update(2, 12)
		if e.w1 != 5 || len(e.mids1) != 1 || e.w2 != 3 || len(e.mids2) != 1 {
			t.Fatalf("entry changed on sub-A2 weight: A1=(%v,%v) A2=(%v,%v)", e.w1, e.mids1, e.w2, e.mids2)
		}
	})
}

// TestAngleTableOpenAddressing exercises the generation-stamped
// open-addressing index underneath the kernel: inserts, probes, growth
// past the load factor, and the O(1) generation-bump reset.
func TestAngleTableOpenAddressing(t *testing.T) {
	tab := newAngleTable(0)
	if len(tab.slots) != minAngleTableCap {
		t.Fatalf("empty hint capacity = %d, want %d", len(tab.slots), minAngleTableCap)
	}
	// Insert enough keys to force several growths.
	const n = 500
	key := func(i int) uint64 { return uint64(i)*2654435761 + 1 }
	for i := 0; i < n; i++ {
		if _, ok := tab.get(key(i)); ok {
			t.Fatalf("key %d present before insertion", i)
		}
		tab.put(key(i), int32(i))
	}
	for i := 0; i < n; i++ {
		v, ok := tab.get(key(i))
		if !ok || v != int32(i) {
			t.Fatalf("get(key %d) = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if 4*tab.live > 3*len(tab.slots) {
		t.Fatalf("load factor above 3/4: %d live in %d slots", tab.live, len(tab.slots))
	}

	// Reset invalidates everything without touching the slot arrays.
	capBefore := len(tab.slots)
	tab.reset()
	if tab.live != 0 || len(tab.slots) != capBefore {
		t.Fatalf("reset: live=%d cap=%d, want 0 and %d", tab.live, len(tab.slots), capBefore)
	}
	for i := 0; i < n; i++ {
		if _, ok := tab.get(key(i)); ok {
			t.Fatalf("key %d survived reset", i)
		}
	}

	// New generation reuses the stale slots transparently.
	tab.put(key(3), 77)
	if v, ok := tab.get(key(3)); !ok || v != 77 {
		t.Fatalf("post-reset get = (%d, %v), want (77, true)", v, ok)
	}
}

// TestAngleTableGenerationWraparound forces the 32-bit generation counter
// to wrap and checks that stale stamps cannot alias the fresh generation.
func TestAngleTableGenerationWraparound(t *testing.T) {
	tab := newAngleTable(0)
	tab.put(42, 1)
	tab.cur = ^uint32(0) // next reset wraps
	tab.reset()
	if tab.cur != 1 {
		t.Fatalf("wrapped generation = %d, want 1", tab.cur)
	}
	// The pre-wrap entry was stamped with generation 1 originally; after
	// the wrap-clear it must be gone even though cur is 1 again.
	if _, ok := tab.get(42); ok {
		t.Fatal("stale entry aliased the wrapped generation")
	}
	tab.put(42, 9)
	if v, ok := tab.get(42); !ok || v != 9 {
		t.Fatalf("post-wrap insert = (%d, %v), want (9, true)", v, ok)
	}
}

// TestAngleTableCollisions drives many keys into the same probe
// neighborhood (the table hashes, so use enough keys to guarantee
// clustering at minimum capacity) and checks linear probing resolves them.
func TestAngleTableCollisions(t *testing.T) {
	tab := newAngleTable(0)
	// More keys than minAngleTableCap/2 guarantees probe chains exist.
	for i := 0; i < minAngleTableCap/2+8; i++ {
		tab.put(uint64(i), int32(i))
	}
	for i := 0; i < minAngleTableCap/2+8; i++ {
		if v, ok := tab.get(uint64(i)); !ok || v != int32(i) {
			t.Fatalf("get(%d) = (%d, %v) under collisions", i, v, ok)
		}
	}
}

// TestAngleEntryBestWeight covers the fast-butterfly-creation weight
// calculus of Section V-D.
func TestAngleEntryBestWeight(t *testing.T) {
	e := &angleEntry{w1: math.Inf(-1), w2: math.Inf(-1)}
	if !math.IsInf(e.bestWeight(), -1) {
		t.Fatal("empty entry should produce -Inf")
	}
	e.update(5, 10)
	if !math.IsInf(e.bestWeight(), -1) {
		t.Fatal("single angle cannot form a butterfly")
	}
	e.update(3, 11)
	if got := e.bestWeight(); got != 8 {
		t.Fatalf("|A1|=1,|A2|=1: bestWeight = %v, want w1+w2 = 8", got)
	}
	e.update(5, 12)
	if got := e.bestWeight(); got != 10 {
		t.Fatalf("|A1|=2: bestWeight = %v, want 2·w1 = 10", got)
	}
}
