package core

import (
	"math"
	"testing"
)

// TestAngleTableUpdateCases reproduces Table II of the paper: the five
// updating cases of the A1/A2 angle classes when a new angle of weight
// w(∠_new) arrives.
func TestAngleTableUpdateCases(t *testing.T) {
	mk := func() *angleEntry {
		e := &angleEntry{u1: 0, u2: 1, w1: math.Inf(-1), w2: math.Inf(-1)}
		e.update(5, 10) // A1 = {∠(mid=10)} at weight 5
		e.update(3, 11) // A2 = {∠(mid=11)} at weight 3
		return e
	}

	t.Run("w>w(A1) promotes A1 to A2", func(t *testing.T) {
		e := mk()
		e.update(7, 12)
		if e.w1 != 7 || len(e.mids1) != 1 || e.mids1[0] != 12 {
			t.Fatalf("A1 = (%v, %v), want (7, [12])", e.w1, e.mids1)
		}
		if e.w2 != 5 || len(e.mids2) != 1 || e.mids2[0] != 10 {
			t.Fatalf("A2 = (%v, %v), want (5, [10])", e.w2, e.mids2)
		}
	})

	t.Run("w=w(A1) joins A1", func(t *testing.T) {
		e := mk()
		e.update(5, 12)
		if e.w1 != 5 || len(e.mids1) != 2 {
			t.Fatalf("A1 = (%v, %v), want weight 5 with 2 angles", e.w1, e.mids1)
		}
		if e.w2 != 3 || len(e.mids2) != 1 {
			t.Fatalf("A2 = (%v, %v), want unchanged (3, [11])", e.w2, e.mids2)
		}
	})

	t.Run("w(A2)<w<w(A1) replaces A2", func(t *testing.T) {
		e := mk()
		e.update(4, 12)
		if e.w1 != 5 || len(e.mids1) != 1 {
			t.Fatalf("A1 = (%v, %v), want unchanged", e.w1, e.mids1)
		}
		if e.w2 != 4 || len(e.mids2) != 1 || e.mids2[0] != 12 {
			t.Fatalf("A2 = (%v, %v), want (4, [12])", e.w2, e.mids2)
		}
	})

	t.Run("w=w(A2) joins A2", func(t *testing.T) {
		e := mk()
		e.update(3, 12)
		if e.w2 != 3 || len(e.mids2) != 2 {
			t.Fatalf("A2 = (%v, %v), want weight 3 with 2 angles", e.w2, e.mids2)
		}
	})

	t.Run("w<w(A2) is ignored", func(t *testing.T) {
		e := mk()
		e.update(2, 12)
		if e.w1 != 5 || len(e.mids1) != 1 || e.w2 != 3 || len(e.mids2) != 1 {
			t.Fatalf("entry changed on sub-A2 weight: A1=(%v,%v) A2=(%v,%v)", e.w1, e.mids1, e.w2, e.mids2)
		}
	})
}

// TestAngleEntryBestWeight covers the fast-butterfly-creation weight
// calculus of Section V-D.
func TestAngleEntryBestWeight(t *testing.T) {
	e := &angleEntry{w1: math.Inf(-1), w2: math.Inf(-1)}
	if !math.IsInf(e.bestWeight(), -1) {
		t.Fatal("empty entry should produce -Inf")
	}
	e.update(5, 10)
	if !math.IsInf(e.bestWeight(), -1) {
		t.Fatal("single angle cannot form a butterfly")
	}
	e.update(3, 11)
	if got := e.bestWeight(); got != 8 {
		t.Fatalf("|A1|=1,|A2|=1: bestWeight = %v, want w1+w2 = 8", got)
	}
	e.update(5, 12)
	if got := e.bestWeight(); got != 10 {
		t.Fatalf("|A1|=2: bestWeight = %v, want 2·w1 = 10", got)
	}
}
