package bench

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
)

// ConvergencePoint is one traced estimate: the running P̂(B) after Frac of
// the method's trial budget.
type ConvergencePoint struct {
	Frac float64
	P    float64
}

// ConvergenceResult is Fig. 11 for one dataset: the convergence trend of
// P̂(B) for a butterfly with P ≈ Mu, traced over twice the configured
// sampling trials for OS, OLS-KL and OLS.
type ConvergenceResult struct {
	Dataset string
	Target  butterfly.Butterfly
	// RefP is the reference probability (the OS estimate at 2N trials,
	// the method with the unconditional guarantee, as the paper argues).
	RefP float64
	// Band is the ±ε strip around RefP whose width the paper draws
	// (2ε·RefP absolute).
	Band [2]float64
	// Series holds the traced trend per method.
	Series map[Method][]ConvergencePoint
	// KLTargetTrials is the dynamic Karp-Luby trial count allocated to
	// the target butterfly by Equation 8.
	KLTargetTrials int
}

// tracePoints is how many points each convergence series keeps.
const tracePoints = 40

// RunSamplingConvergence reproduces Fig. 11: on each dataset it selects a
// candidate butterfly whose estimated probability is closest to
// Options.Mu (the paper traces one with P ≈ 0.05), then traces the
// running estimate over 2× SampleTrials for OS, OLS-KL and OLS.
func RunSamplingConvergence(opt Options) ([]ConvergenceResult, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	var out []ConvergenceResult
	for _, d := range ds {
		cands, err := core.PrepareCandidates(d.G, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return nil, err
		}
		if cands.Len() == 0 {
			continue
		}
		targetIdx, err := pickTarget(d.G, cands, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", d.Name, err)
		}
		target := cands.List[targetIdx].B
		trials2N := 2 * opt.SampleTrials
		res := ConvergenceResult{
			Dataset: d.Name,
			Target:  target,
			Series:  make(map[Method][]ConvergencePoint),
		}

		// OS trace: count how many trials report the target as maximum.
		hits := 0
		var osSeries []ConvergencePoint
		every := trials2N / tracePoints
		if every < 1 {
			every = 1
		}
		_, err = core.OS(d.G, core.OSOptions{
			Trials: trials2N,
			Seed:   opt.Seed + 101,
			OnTrial: func(trial int, sMB *butterfly.MaxSet) {
				for _, b := range sMB.Set {
					if b == target {
						hits++
						break
					}
				}
				if trial%every == 0 {
					osSeries = append(osSeries, ConvergencePoint{
						Frac: float64(trial) / float64(opt.SampleTrials),
						P:    float64(hits) / float64(trial),
					})
				}
			},
		})
		if err != nil {
			return nil, err
		}
		res.Series[OS] = osSeries
		res.RefP = osSeries[len(osSeries)-1].P
		res.Band = [2]float64{res.RefP * (1 - opt.Eps), res.RefP * (1 + opt.Eps)}

		// OLS (optimized estimator) trace.
		hits = 0
		var olsSeries []ConvergencePoint
		_, err = core.EstimateOptimized(cands, core.OptimizedOptions{
			Trials: trials2N,
			Seed:   opt.Seed + 202,
			OnTrial: func(trial int, hit []int) {
				for _, idx := range hit {
					if idx == targetIdx {
						hits++
						break
					}
				}
				if trial%every == 0 {
					olsSeries = append(olsSeries, ConvergencePoint{
						Frac: float64(trial) / float64(opt.SampleTrials),
						P:    float64(hits) / float64(trial),
					})
				}
			},
		})
		if err != nil {
			return nil, err
		}
		res.Series[OLS] = olsSeries

		// OLS-KL trace: the target candidate's running estimate over the
		// same 2N trial axis as the other methods (the figure plots all
		// three on one axis; the Eq. 8 dynamic count is reported
		// separately in KLTargetTrials).
		var klSeries []ConvergencePoint
		var trialsUsed []int
		_, err = core.EstimateKarpLuby(cands, core.KLOptions{
			BaseTrials:    trials2N,
			Seed:          opt.Seed + 303,
			TrialsUsed:    &trialsUsed,
			OnlyCandidate: &targetIdx,
			OnCandidateTrial: func(cand, trial int, runningP float64) {
				if cand != targetIdx {
					return
				}
				if trial == 0 {
					// Resolved without sampling (no heavier competitor):
					// the estimate is flat across the whole axis.
					klSeries = append(klSeries,
						ConvergencePoint{Frac: 0, P: runningP},
						ConvergencePoint{Frac: 2, P: runningP})
					return
				}
				if trial%every == 0 {
					klSeries = append(klSeries, ConvergencePoint{
						Frac: float64(trial) / float64(opt.SampleTrials),
						P:    runningP,
					})
				}
			},
		})
		if err != nil {
			return nil, err
		}
		res.Series[OLSKL] = klSeries
		// Report the Eq. 8 dynamic allocation for context.
		dynTrials, err := core.KLTrials(cands.List[targetIdx].ExistProb,
			cands.SI(targetIdx), math.Max(res.RefP, 1e-9), opt.Eps, opt.Delta)
		if err == nil {
			res.KLTargetTrials = dynTrials
		}

		out = append(out, res)
	}
	return out, nil
}

// pickTarget selects the candidate whose probability is closest to
// Options.Mu (the paper traces a butterfly with P ≈ 0.05), estimating
// with OS — the method carrying the unconditional Theorem IV.1 guarantee
// — rather than with an OLS estimator, whose candidate-set truncation can
// inflate mid-rank probabilities (Lemma VI.5) and would bias the choice.
// Candidates far below both Mu and the dataset's best probability are
// excluded: a too-rare target is frequently missing from independently
// prepared candidate sets, which would make the Fig. 11/12 traces
// vacuous.
func pickTarget(g *bigraph.Graph, cands *core.Candidates, opt Options) (int, error) {
	index := make(map[butterfly.Butterfly]int, cands.Len())
	for i, c := range cands.List {
		index[c.B] = i
	}
	hits := make([]int, cands.Len())
	_, err := core.OS(g, core.OSOptions{
		Trials: opt.SampleTrials,
		Seed:   opt.Seed + 7,
		OnTrial: func(_ int, sMB *butterfly.MaxSet) {
			for _, b := range sMB.Set {
				if i, ok := index[b]; ok {
					hits[i]++
				}
			}
		},
	})
	if err != nil {
		return 0, err
	}
	probs := make([]float64, len(hits))
	maxP := 0.0
	for i, h := range hits {
		probs[i] = float64(h) / float64(opt.SampleTrials)
		if probs[i] > maxP {
			maxP = probs[i]
		}
	}
	if maxP == 0 {
		return 0, fmt.Errorf("no candidate with nonzero probability")
	}
	floor := math.Min(opt.Mu/2, maxP/2)
	best, bestDiff := -1, math.Inf(1)
	for i, p := range probs {
		if p < floor {
			continue
		}
		if d := math.Abs(p - opt.Mu); d < bestDiff {
			best, bestDiff = i, d
		}
	}
	return best, nil
}

// PreparingPoint is one independent run of Fig. 12: OLS executed with a
// given preparing-phase trial count.
type PreparingPoint struct {
	PrepTrials   int
	P            float64
	InCandidates bool
}

// PreparingResult is Fig. 12 for one dataset.
type PreparingResult struct {
	Dataset string
	Target  butterfly.Butterfly
	RefP    float64
	Band    [2]float64
	Points  []PreparingPoint
}

// RunPreparingTrend reproduces Fig. 12: for preparing trial counts from
// 10% to 200% of the configured PrepTrials, run OLS end-to-end
// independently and record the target butterfly's estimate. Early points
// are expected to be 0 (target missed) or inflated (candidate set too
// small); they should stabilize into the ε-band well before 100%.
func RunPreparingTrend(opt Options) ([]PreparingResult, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	var out []PreparingResult
	for _, d := range ds {
		cands, err := core.PrepareCandidates(d.G, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return nil, err
		}
		if cands.Len() == 0 {
			continue
		}
		targetIdx, err := pickTarget(d.G, cands, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", d.Name, err)
		}
		target := cands.List[targetIdx].B
		res := PreparingResult{Dataset: d.Name, Target: target}

		// Reference estimate from OS over a doubled budget — immune to
		// candidate-set truncation, unlike an OLS reference run that can
		// miss the target altogether.
		refHits := 0
		_, err = core.OS(d.G, core.OSOptions{
			Trials: 2 * opt.SampleTrials,
			Seed:   opt.Seed + 11,
			OnTrial: func(_ int, sMB *butterfly.MaxSet) {
				for _, b := range sMB.Set {
					if b == target {
						refHits++
						break
					}
				}
			},
		})
		if err != nil {
			return nil, err
		}
		res.RefP = float64(refHits) / float64(2*opt.SampleTrials)
		res.Band = [2]float64{res.RefP * (1 - opt.Eps), res.RefP * (1 + opt.Eps)}

		for pct := 10; pct <= 200; pct += 10 {
			n := opt.PrepTrials * pct / 100
			if n < 1 {
				n = 1
			}
			run, err := core.OLS(d.G, core.OLSOptions{
				PrepTrials: n,
				Trials:     opt.SampleTrials,
				Seed:       opt.Seed + uint64(1000+pct), // independent runs
			})
			if err != nil {
				return nil, err
			}
			pt := PreparingPoint{PrepTrials: n}
			if e, ok := run.Lookup(target); ok {
				pt.P = e.P
				pt.InCandidates = true
			}
			res.Points = append(res.Points, pt)
		}
		out = append(out, res)
	}
	return out, nil
}
