package bench

import (
	"fmt"
	"io"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// TopKAgreement measures, per dataset, how closely the OLS estimators
// agree with OS on the butterflies OS ranks highest. Because rating-style
// datasets contain huge classes of butterflies tied at the maximum weight
// with near-identical probabilities, set-identity of top-k lists is
// meaningless there; the well-defined quantity is the per-butterfly
// probability gap. This experiment extends the paper's evaluation (its
// Section VII introduces top-k without evaluating it).
type TopKAgreement struct {
	Dataset string
	K       int
	// MeanAbsGapOLS / MeanAbsGapKL: mean |P̂_method(B) − P̂_OS(B)| over
	// OS's top-k butterflies.
	MeanAbsGapOLS float64
	MeanAbsGapKL  float64
	// MissingOLS / MissingKL: how many of OS's top-k the method has no
	// estimate for at all (not in its candidate set).
	MissingOLS int
	MissingKL  int
}

// RunTopKAgreement reproduces the top-k consistency experiment with
// k = 10 on every selected dataset.
func RunTopKAgreement(opt Options) ([]TopKAgreement, error) {
	const k = 10
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	var out []TopKAgreement
	for _, d := range ds {
		osRes, err := core.OS(d.G, core.OSOptions{Trials: opt.SampleTrials, Seed: opt.Seed})
		if err != nil {
			return nil, err
		}
		cands, err := core.PrepareCandidates(d.G, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return nil, err
		}
		olsRes, err := core.OLSSamplingPhase(cands, core.OLSOptions{
			PrepTrials: opt.PrepTrials, Trials: opt.SampleTrials, Seed: opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		klRes, err := core.OLSSamplingPhase(cands, core.OLSOptions{
			PrepTrials: opt.PrepTrials, Trials: opt.SampleTrials, Seed: opt.Seed,
			UseKarpLuby: true, KL: core.KLOptions{Mu: opt.Mu},
		})
		if err != nil {
			return nil, err
		}

		row := TopKAgreement{Dataset: d.Name, K: k}
		top := osRes.TopK(k)
		if len(top) == 0 {
			out = append(out, row)
			continue
		}
		nOLS, nKL := 0, 0
		for _, e := range top {
			if got, ok := olsRes.Lookup(e.B); ok {
				row.MeanAbsGapOLS += math.Abs(got.P - e.P)
				nOLS++
			} else {
				row.MissingOLS++
			}
			if got, ok := klRes.Lookup(e.B); ok {
				row.MeanAbsGapKL += math.Abs(got.P - e.P)
				nKL++
			} else {
				row.MissingKL++
			}
		}
		if nOLS > 0 {
			row.MeanAbsGapOLS /= float64(nOLS)
		}
		if nKL > 0 {
			row.MeanAbsGapKL /= float64(nKL)
		}
		out = append(out, row)
	}
	return out, nil
}

// PrintTopKAgreement renders the top-k agreement table.
func PrintTopKAgreement(w io.Writer, opt Options) error {
	rows, err := RunTopKAgreement(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Top-k agreement (extension): |P̂ − P̂_OS| over OS's top-%d, N=%d\n", 10, opt.SampleTrials)
	fmt.Fprintf(w, "%-10s %14s %12s %14s %12s\n", "dataset", "ols mean gap", "ols missing", "kl mean gap", "kl missing")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %14.4f %12d %14.4f %12d\n",
			r.Dataset, r.MeanAbsGapOLS, r.MissingOLS, r.MeanAbsGapKL, r.MissingKL)
	}
	return nil
}
