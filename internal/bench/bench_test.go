package bench

import (
	"testing"
	"time"
)

// tinyOptions keeps harness tests fast while exercising every code path.
func tinyOptions() Options {
	opt := DefaultOptions()
	opt.Scale = 0.05
	opt.SampleTrials = 60
	opt.PrepTrials = 20
	opt.TimeBudget = 10 * time.Second
	opt.Datasets = []string{"abide", "movielens"}
	return opt
}

func TestRunOverallStructure(t *testing.T) {
	opt := tinyOptions()
	res, err := RunOverall(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(opt.Datasets)*len(AllMethods) {
		t.Fatalf("got %d cells, want %d", len(res.Cells), len(opt.Datasets)*len(AllMethods))
	}
	for _, c := range res.Cells {
		if c.Total() <= 0 {
			t.Fatalf("cell %s/%s has non-positive total %v", c.Dataset, c.Method, c.Total())
		}
		if (c.Method == OLS || c.Method == OLSKL) && c.Prep <= 0 {
			t.Fatalf("OLS cell %s/%s missing prep time", c.Dataset, c.Method)
		}
	}
	rows := res.Speedups()
	if len(rows) != len(opt.Datasets) {
		t.Fatalf("got %d speedup rows, want %d", len(rows), len(opt.Datasets))
	}
	for _, r := range rows {
		if r.OSvsMCVP <= 0 {
			t.Fatalf("row %+v has non-positive OS-vs-MCVP speedup", r)
		}
	}
}

func TestRunOverallBudgetExtrapolates(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"movielens"}
	opt.Scale = 0.3
	opt.SampleTrials = 5000
	opt.TimeBudget = time.Millisecond // force extrapolation everywhere timed
	res, err := RunOverall(opt)
	if err != nil {
		t.Fatal(err)
	}
	sawExtrapolated := false
	for _, c := range res.Cells {
		if c.Method == MCVP && !c.Extrapolated {
			t.Fatalf("MC-VP cell not extrapolated under a 1ms budget: %+v", c)
		}
		if c.Extrapolated {
			sawExtrapolated = true
			if c.Trials >= opt.SampleTrials {
				t.Fatalf("extrapolated cell claims full trials: %+v", c)
			}
		}
	}
	if !sawExtrapolated {
		t.Fatal("budget never triggered extrapolation")
	}
}

func TestRunPhaseSweepStructure(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	pts, err := RunPhaseSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Per dataset: OS has 4 points, OLS-KL and OLS have 5 (incl. 0%).
	if len(pts) != 4+5+5 {
		t.Fatalf("got %d points, want 14", len(pts))
	}
	for _, p := range pts {
		if p.Frac == 0 {
			if p.Method == OS {
				t.Fatal("OS must not have a 0% point")
			}
			if p.Timing.Prep <= 0 {
				t.Fatalf("0%% point without prep time: %+v", p)
			}
			if p.Timing.Sampling != 0 {
				t.Fatalf("0%% point has sampling time: %+v", p)
			}
		}
	}
}

func TestRunScalabilityStructure(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	pts, err := RunScalability(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4*3 {
		t.Fatalf("got %d points, want 12", len(pts))
	}
	// Edge counts must be non-decreasing in the vertex fraction per
	// method (same shared subsample per fraction).
	edges := map[float64]int{}
	for _, p := range pts {
		if prev, ok := edges[p.VertexFr]; ok && prev != p.Edges {
			t.Fatalf("methods saw different subgraphs at frac %v: %d vs %d", p.VertexFr, prev, p.Edges)
		}
		edges[p.VertexFr] = p.Edges
	}
	if edges[0.25] > edges[1.0] {
		t.Fatalf("25%% sample has more edges than 100%%: %v", edges)
	}
}

func TestRunRatioMatrix(t *testing.T) {
	m := RunRatioMatrix()
	if len(m.Values) != len(m.Mus) {
		t.Fatalf("matrix rows %d != %d", len(m.Values), len(m.Mus))
	}
	for i, row := range m.Values {
		if len(row) != len(m.PrExists) {
			t.Fatalf("row %d has %d cols, want %d", i, len(row), len(m.PrExists))
		}
		// The ratio grows along Pr[E] (for fixed μ ≤ Pr[E]).
		for j := 1; j < len(row); j++ {
			if m.PrExists[j-1] >= m.Mus[i] && row[j] < row[j-1] {
				t.Fatalf("ratio not monotone in Pr[E] at row %d col %d", i, j)
			}
		}
	}
}

func TestRunTrialRatios(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	rs, err := RunTrialRatios(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.Candidates == 0 || len(r.Ratios) != r.Candidates {
		t.Fatalf("ratio count %d != candidates %d", len(r.Ratios), r.Candidates)
	}
	if r.Balance <= 0 || r.Balance > 1 {
		t.Fatalf("balance %v out of range", r.Balance)
	}
	qs := r.Quantiles(0, 0.5, 1)
	if qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("quantiles not monotone: %v", qs)
	}
}

func TestRunSamplingConvergence(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 400
	rs, err := RunSamplingConvergence(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if r.RefP <= 0 {
		t.Fatalf("reference probability %v not positive", r.RefP)
	}
	if r.Band[0] >= r.Band[1] {
		t.Fatalf("band %v inverted", r.Band)
	}
	for _, m := range []Method{OS, OLS, OLSKL} {
		series := r.Series[m]
		if len(series) == 0 {
			t.Fatalf("method %s has no series", m)
		}
		for _, pt := range series {
			if pt.P < 0 || pt.P > 1 {
				t.Fatalf("method %s traced P=%v", m, pt.P)
			}
		}
	}
	// OS and OLS run 2× the budget: their last point sits near frac 2.
	last := r.Series[OS][len(r.Series[OS])-1]
	if last.Frac < 1.9 || last.Frac > 2.05 {
		t.Fatalf("OS series ends at frac %v, want ≈ 2", last.Frac)
	}
}

func TestRunPreparingTrend(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 200
	rs, err := RunPreparingTrend(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results, want 1", len(rs))
	}
	r := rs[0]
	if len(r.Points) != 20 {
		t.Fatalf("got %d points, want 20 (10%%..200%%)", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].PrepTrials <= r.Points[i-1].PrepTrials {
			t.Fatalf("prep trial counts not increasing at %d", i)
		}
	}
}

func TestRunMemoryStructure(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	cells, err := RunMemory(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(AllMethods) {
		t.Fatalf("got %d cells, want %d", len(cells), len(AllMethods))
	}
	for _, c := range cells {
		if c.GraphBytes == 0 {
			t.Fatalf("cell %s/%s has zero graph bytes", c.Dataset, c.Method)
		}
	}
}

func TestTables(t *testing.T) {
	opt := tinyOptions()
	rows3, err := Table3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 2 {
		t.Fatalf("Table3 rows = %d, want 2", len(rows3))
	}
	rows4 := Table4(opt)
	if len(rows4) != 4 {
		t.Fatalf("Table4 rows = %d, want 4", len(rows4))
	}
	if rows4[2].Sampling == rows4[3].Sampling {
		t.Fatal("OLS-KL sampling column must be dynamic, OLS fixed")
	}
	n, err := TheoreticalTrials(opt)
	if err != nil {
		t.Fatal(err)
	}
	if n < 20000 || n > 25000 {
		t.Fatalf("theoretical trials = %d, want ≈ 2×10⁴ for paper defaults", n)
	}
}

func TestLoadDatasetsUnknown(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"bogus"}
	if _, err := RunOverall(opt); err == nil {
		t.Fatal("RunOverall accepted an unknown dataset")
	}
}

func TestRunAblations(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	cells, err := RunAblations(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 4 OS variants + 4 estimator variants on one dataset.
	if len(cells) != 8 {
		t.Fatalf("got %d ablation cells, want 8", len(cells))
	}
	choices := map[string]int{}
	for _, c := range cells {
		if c.Time <= 0 {
			t.Fatalf("cell %+v has non-positive time", c)
		}
		choices[c.Choice]++
	}
	for _, want := range []string{"edge-prune", "angle-ordering", "lazy-sampling", "early-break"} {
		if choices[want] != 2 {
			t.Fatalf("choice %q has %d variants, want 2", want, choices[want])
		}
	}
}

func TestRunTopKAgreement(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 300
	rows, err := RunTopKAgreement(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.K != 10 {
		t.Fatalf("K = %d", r.K)
	}
	if r.MeanAbsGapOLS < 0 || r.MeanAbsGapOLS > 1 {
		t.Fatalf("OLS gap %v out of range", r.MeanAbsGapOLS)
	}
	if r.MissingOLS < 0 || r.MissingOLS > 10 {
		t.Fatalf("missing count %d out of range", r.MissingOLS)
	}
}
