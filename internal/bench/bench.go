// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section VIII) on the synthetic
// dataset substitutes. Each Run* function corresponds to one figure or
// table — see DESIGN.md §5 for the full index — and returns structured
// results that the mpmb-bench command renders as text tables; the
// top-level bench_test.go exposes the same runners as testing.B
// benchmarks.
//
// Absolute times will not match the paper's C++ testbed; the harness
// exists to reproduce the paper's qualitative shape: which method wins on
// which dataset, by what rough factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/dataset"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// Method names a sampling algorithm in the paper's terminology.
type Method string

// The four methods of the evaluation (Table IV).
const (
	MCVP  Method = "mc-vp"
	OS    Method = "os"
	OLSKL Method = "ols-kl"
	OLS   Method = "ols"
)

// AllMethods lists the methods in paper order.
var AllMethods = []Method{MCVP, OS, OLSKL, OLS}

// Options configures a harness run. The zero value is NOT usable; call
// DefaultOptions and adjust.
type Options struct {
	// Seed drives dataset generation and every sampler.
	Seed uint64
	// Scale multiplies dataset sizes (see dataset.Config.Scale).
	Scale float64
	// SampleTrials is the sampling-phase N for MC-VP, OS and OLS, and the
	// BaseTrials reference for OLS-KL. The paper uses 2×10⁴; the harness
	// default is 2×10³ so a full sweep finishes in minutes.
	SampleTrials int
	// PrepTrials is N_os for the OLS preparing phase (paper: 100).
	PrepTrials int
	// Mu is the target probability for trial-number arithmetic
	// (Theorem IV.1, Equation 8). Paper default 0.05.
	Mu float64
	// Eps and Delta are the approximation parameters (paper: 0.1, 0.1).
	Eps, Delta float64
	// TimeBudget caps the measured wall-clock a single (method, dataset)
	// cell may consume in the timing experiments. When a pilot run
	// projects the full trial count beyond the budget, the harness runs
	// only the pilot and extrapolates, marking the cell Extrapolated —
	// the analogue of the paper's 4-hour limit that MC-VP exceeds on the
	// two large datasets.
	TimeBudget time.Duration
	// Datasets restricts which Table III datasets run (default: all).
	Datasets []string

	// AuditEvery > 0 turns the conformance experiment's self-healing
	// demonstration on in supervised mode: an under-prepared OLS run on
	// the angle-stressor graph whose coverage audits (one per AuditEvery
	// sampling trials) must recover the exact leader. 0 leaves the
	// demonstration off unless SelfHealing forces the unsupervised
	// (deliberately failing) variant.
	AuditEvery int
	// SelfHealing forces the conformance self-healing demonstration even
	// with AuditEvery == 0 — the plain variant, which fails by design
	// (used to verify the check's power).
	SelfHealing bool
	// Epsilon / Deadline forward accuracy-aware stopping to the
	// supervised conformance run (zero values = off).
	Epsilon  float64
	Deadline time.Time
}

// DefaultOptions mirrors the paper's Section VIII-B setup scaled to a
// laptop (see SampleTrials).
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		Scale:        1,
		SampleTrials: 2000,
		PrepTrials:   100,
		Mu:           0.05,
		Eps:          0.1,
		Delta:        0.1,
		TimeBudget:   30 * time.Second,
		Datasets:     append([]string(nil), dataset.Names...),
	}
}

// Timing is one cell of a timing experiment: a method's cost on one
// dataset, split into the OLS phases where applicable.
type Timing struct {
	Dataset string
	Method  Method
	// Prep is the preparing-phase time (OLS variants only, else 0).
	Prep time.Duration
	// Sampling is the sampling-phase time.
	Sampling time.Duration
	// Trials actually timed (before extrapolation).
	Trials int
	// Extrapolated marks cells whose Sampling was projected from a pilot
	// run because the full trial count would exceed Options.TimeBudget.
	Extrapolated bool
}

// Total returns Prep + Sampling.
func (t Timing) Total() time.Duration { return t.Prep + t.Sampling }

// subsampleRNG derives a deterministic generator for vertex subsampling
// from the seed, the dataset name and the fraction, so every method sees
// the same subgraph.
func subsampleRNG(seed uint64, name string, frac float64) *randx.RNG {
	h := seed
	for _, c := range name {
		h = h*31 + uint64(c)
	}
	return randx.New(h ^ uint64(frac*1024))
}

// loadDatasets materializes the selected datasets once per harness call.
func loadDatasets(opt Options) ([]*dataset.Dataset, error) {
	names := opt.Datasets
	if len(names) == 0 {
		names = dataset.Names
	}
	out := make([]*dataset.Dataset, 0, len(names))
	for _, n := range names {
		d, err := dataset.ByName(n, dataset.Config{Seed: opt.Seed, Scale: opt.Scale})
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// runMethodTimed executes one method on one graph under the time budget,
// returning the timing cell. Sampling-phase time is measured over the
// full trial count when it fits the budget, otherwise extrapolated from a
// pilot (pilotTrials trials).
func runMethodTimed(g *bigraph.Graph, name string, m Method, opt Options) (Timing, error) {
	cell := Timing{Dataset: name, Method: m}
	switch m {
	case MCVP:
		// MC-VP pilots under a hard deadline: one trial alone can exceed
		// any sensible budget (the paper's 4-hour DNF), and the interrupt
		// hook is the only way out mid-trial. An interrupted pilot yields
		// an extrapolated LOWER bound on the full cost.
		pilot := 5
		if opt.SampleTrials < pilot {
			pilot = opt.SampleTrials
		}
		deadline := time.Now().Add(opt.TimeBudget / 2)
		completed := 0
		t0 := time.Now()
		res, err := core.MCVP(g, core.MCVPOptions{
			Trials:          pilot,
			Seed:            opt.Seed,
			Interrupt:       func() bool { return time.Now().After(deadline) },
			CompletedTrials: &completed,
		})
		pilotTime := time.Since(t0)
		if err != nil {
			return cell, err
		}
		interrupted := res.Partial
		perTrial := pilotTime / time.Duration(completed+1)
		if !interrupted && completed > 0 {
			perTrial = pilotTime / time.Duration(completed)
		}
		projected := perTrial * time.Duration(opt.SampleTrials)
		if interrupted || projected > opt.TimeBudget {
			cell.Sampling = projected
			cell.Trials = completed
			cell.Extrapolated = true
			return cell, nil
		}
		t0 = time.Now()
		if _, err := core.MCVP(g, core.MCVPOptions{Trials: opt.SampleTrials, Seed: opt.Seed}); err != nil {
			return cell, err
		}
		cell.Sampling = time.Since(t0)
		cell.Trials = opt.SampleTrials
		return cell, nil

	case OS:
		pilot := 5
		if opt.SampleTrials < pilot {
			pilot = opt.SampleTrials
		}
		run := func(trials int) (time.Duration, error) {
			t0 := time.Now()
			_, err := core.OS(g, core.OSOptions{Trials: trials, Seed: opt.Seed})
			return time.Since(t0), err
		}
		pilotTime, err := run(pilot)
		if err != nil {
			return cell, err
		}
		perTrial := pilotTime / time.Duration(pilot)
		projected := perTrial * time.Duration(opt.SampleTrials)
		if projected > opt.TimeBudget {
			cell.Sampling = projected
			cell.Trials = pilot
			cell.Extrapolated = true
			return cell, nil
		}
		full, err := run(opt.SampleTrials)
		if err != nil {
			return cell, err
		}
		cell.Sampling = full
		cell.Trials = opt.SampleTrials
		return cell, nil

	case OLSKL, OLS:
		t0 := time.Now()
		cands, err := core.PrepareCandidates(g, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return cell, err
		}
		cell.Prep = time.Since(t0)
		olsOpt := core.OLSOptions{
			PrepTrials:  opt.PrepTrials,
			Trials:      opt.SampleTrials,
			Seed:        opt.Seed,
			UseKarpLuby: m == OLSKL,
			KL:          core.KLOptions{Mu: opt.Mu},
		}
		t0 = time.Now()
		if _, err := core.OLSSamplingPhase(cands, olsOpt); err != nil {
			return cell, err
		}
		cell.Sampling = time.Since(t0)
		cell.Trials = opt.SampleTrials
		return cell, nil
	}
	return cell, fmt.Errorf("bench: unknown method %q", m)
}
