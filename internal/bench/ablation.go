package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// AblationCell is one measured variant of an algorithmic design choice
// (DESIGN.md §6).
type AblationCell struct {
	Dataset string
	Choice  string // which design choice is being ablated
	Variant string // "on"/"off"-style variant label
	Time    time.Duration
}

// RunAblations measures the cost of disabling each of the paper's
// optimizations, isolating their individual contribution:
//
//   - edge-ordering prune (Section V-B) on vs off, in OS;
//   - top-2 angle classes (Section V-C, Table II) vs keeping all angles;
//   - Algorithm 5's lazy per-trial edge sampling vs eager; and its early
//     weight break vs scanning all candidates.
//
// Results are identical across variants by construction (tested in
// internal/core); only time differs.
func RunAblations(opt Options) ([]AblationCell, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	var out []AblationCell
	timeIt := func(fn func() error) (time.Duration, error) {
		t0 := time.Now()
		err := fn()
		return time.Since(t0), err
	}
	for _, d := range ds {
		g := d.G
		osVariants := []struct {
			choice, variant string
			o               core.OSOptions
		}{
			{"edge-prune", "on", core.OSOptions{}},
			{"edge-prune", "off", core.OSOptions{DisableEdgePrune: true}},
			{"angle-ordering", "top-2 classes", core.OSOptions{}},
			{"angle-ordering", "all angles", core.OSOptions{KeepAllAngles: true}},
		}
		for _, v := range osVariants {
			o := v.o
			o.Trials = opt.SampleTrials
			o.Seed = opt.Seed
			t, err := timeIt(func() error {
				_, err := core.OS(g, o)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %s/%s on %s: %w", v.choice, v.variant, d.Name, err)
			}
			out = append(out, AblationCell{Dataset: d.Name, Choice: v.choice, Variant: v.variant, Time: t})
		}

		cands, err := core.PrepareCandidates(g, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return nil, err
		}
		if cands.Len() == 0 {
			continue
		}
		optVariants := []struct {
			choice, variant string
			o               core.OptimizedOptions
		}{
			{"lazy-sampling", "lazy", core.OptimizedOptions{}},
			{"lazy-sampling", "eager", core.OptimizedOptions{EagerSampling: true}},
			{"early-break", "on", core.OptimizedOptions{}},
			{"early-break", "off", core.OptimizedOptions{DisableEarlyBreak: true}},
		}
		for _, v := range optVariants {
			o := v.o
			o.Trials = opt.SampleTrials
			o.Seed = opt.Seed
			t, err := timeIt(func() error {
				_, err := core.EstimateOptimized(cands, o)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %s/%s on %s: %w", v.choice, v.variant, d.Name, err)
			}
			out = append(out, AblationCell{Dataset: d.Name, Choice: v.choice, Variant: v.variant, Time: t})
		}
	}
	return out, nil
}

// PrintAblations renders the ablation table.
func PrintAblations(w io.Writer, opt Options) error {
	cells, err := RunAblations(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablations: cost of disabling each optimization (N=%d; results identical, time differs)\n", opt.SampleTrials)
	fmt.Fprintf(w, "%-10s %-16s %-14s %12s\n", "dataset", "design choice", "variant", "time")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-16s %-14s %12s\n", c.Dataset, c.Choice, c.Variant, fmtDur(c.Time, false))
	}
	return nil
}
