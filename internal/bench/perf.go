package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/randx"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// This file is the benchmark trajectory harness behind `mpmb-bench perf`
// and `make bench`: it times the flat-memory OS trial kernel and the OLS
// estimators on a pinned synthetic corpus, always alongside the frozen
// seed implementation (osref.go), and writes the numbers to
// BENCH_core.json. Because the corpus, the seeds and the baseline are all
// pinned, the JSON files from successive commits form a trajectory — each
// PR can state "the kernel is N× the seed on this machine" and diff
// itself against the file the previous PR committed.

// PerfCorpus pins the graph a perf run measures. All fields participate
// in the JSON report so a trajectory diff can prove two runs measured the
// same workload.
type PerfCorpus struct {
	NumL     int     `json:"num_l"`
	NumR     int     `json:"num_r"`
	NumEdges int     `json:"num_edges"`
	PLo      float64 `json:"p_lo"`
	PHi      float64 `json:"p_hi"`
	Seed     uint64  `json:"seed"`
	// WeightKind selects the weight distribution: WeightHalfGrid (the
	// default, also used when empty) draws from the half-integer grid
	// {0.5, 1.0, …, 5.0} so exact weight ties are common and the A1/A2
	// tie machinery stays hot; WeightUniform draws continuously from
	// [0.5, 10), making ties measure-zero so w_max rises often and the
	// prune and angle-table regimes differ sharply from the grid corpus.
	WeightKind string `json:"weight_kind,omitempty"`
}

// Weight distributions for PerfCorpus.WeightKind.
const (
	WeightHalfGrid = "halfgrid"
	WeightUniform  = "uniform"
)

// DefaultPerfCorpus is the pinned headline workload: a skewed bipartite
// graph (2000 left vertices sharing 100 right vertices, average right
// degree 200) like the paper's rating-network datasets, where a handful
// of popular right vertices concentrate most of the edges. The skew makes
// the trials angle-dense — long live lists, heavy angle-table traffic,
// an effective Section V-B prune — which is exactly the regime the
// flat-memory kernel rebuilds, so the speedup this corpus reports is the
// speedup of the code this PR actually changed rather than of the
// memory-bandwidth-bound edge scan around it.
var DefaultPerfCorpus = PerfCorpus{
	NumL: 2000, NumR: 100, NumEdges: 20000,
	PLo: 0.2, PHi: 0.8, Seed: 1009,
}

// SecondaryPerfCorpus is the pinned counterpoint workload
// (`mpmb-bench perf -secondary`): half the edge density budget of the
// graph is used (25000 of 50000 possible pairs), probabilities are high,
// and weights are continuous-uniform so exact ties are measure-zero.
// Where the headline corpus is tie-heavy (half-grid weights keep w_max
// flat and the angle classes full), this one raises w_max frequently and
// keeps the Section V-B prune biting early — the two corpora bracket the
// kernel's behavior regimes so a change that helps one but regresses the
// other shows up in the trajectory.
var SecondaryPerfCorpus = PerfCorpus{
	NumL: 500, NumR: 100, NumEdges: 25000,
	PLo: 0.5, PHi: 0.9, Seed: 2017, WeightKind: WeightUniform,
}

// Build materializes the corpus graph deterministically from its seed.
// Weights follow WeightKind: the half-integer grid (default) makes exact
// weight ties common so the A1/A2 angle classes stay populated, matching
// how the test corpora elsewhere in the repository are built; the uniform
// kind draws continuously so ties are measure-zero.
func (c PerfCorpus) Build() *bigraph.Graph {
	r := randx.New(c.Seed)
	b := bigraph.NewBuilder(c.NumL, c.NumR)
	seen := make(map[uint64]bool, c.NumEdges)
	for added := 0; added < c.NumEdges; {
		u, v := r.Intn(c.NumL), r.Intn(c.NumR)
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		var w float64
		switch c.WeightKind {
		case WeightUniform:
			w = 0.5 + 9.5*r.Float64()
		default: // WeightHalfGrid
			w = 0.5 * float64(1+r.Intn(10))
		}
		p := c.PLo + (c.PHi-c.PLo)*r.Float64()
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
		added++
	}
	return b.Build()
}

// PerfEntry is one timed row of the report. NsPerTrial is the headline
// number; the allocation columns come from the benchmark runtime's
// allocator statistics and should be ~0 for the kernel rows.
type PerfEntry struct {
	Name           string  `json:"name"`
	NsPerTrial     float64 `json:"ns_per_trial"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
	// EdgesScannedPerTrial / EdgesPrunedPerTrial split the snapshot between
	// positions the trial visited and positions the Section V-B prune
	// skipped (OS rows only).
	EdgesScannedPerTrial float64 `json:"edges_scanned_per_trial,omitempty"`
	EdgesPrunedPerTrial  float64 `json:"edges_pruned_per_trial,omitempty"`
	// PrefixFallbacksPerTrial is the fraction of trials that scanned past
	// the snapshot's calibrated edge-prefix boundary (OS rows only). The
	// calibration targets P(fallback) ≤ 1/(K+1) per trial, so this should
	// stay well under ~0.02.
	PrefixFallbacksPerTrial float64 `json:"prefix_fallbacks_per_trial,omitempty"`
	// TrialsTimed is how many trials the benchmark runtime settled on.
	TrialsTimed int `json:"trials_timed"`
}

// PerfReport is the BENCH_core.json document.
type PerfReport struct {
	GeneratedAt time.Time   `json:"generated_at"`
	GoOS        string      `json:"goos"`
	GoArch      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Corpus      PerfCorpus  `json:"corpus"`
	Entries     []PerfEntry `json:"entries"`
	// SpeedupOSKernelVsSeed is os_seed_baseline ns ÷ os_kernel ns: how many
	// times faster the flat-memory kernel runs one OS trial than the
	// pre-rewrite seed implementation, measured back to back on this
	// machine in this run.
	SpeedupOSKernelVsSeed float64 `json:"speedup_os_kernel_vs_seed"`
	// SecondaryCorpus/SecondaryEntries are the same rows measured on
	// SecondaryPerfCorpus when the run asked for it
	// (`mpmb-bench perf -secondary`); absent otherwise.
	SecondaryCorpus  *PerfCorpus `json:"secondary_corpus,omitempty"`
	SecondaryEntries []PerfEntry `json:"secondary_entries,omitempty"`
	// SecondarySpeedupOSKernelVsSeed is the kernel-vs-seed ratio on the
	// secondary corpus.
	SecondarySpeedupOSKernelVsSeed float64 `json:"secondary_speedup_os_kernel_vs_seed,omitempty"`
}

// perfEstimatorTrials is the inner trial count per benchmark op for the
// estimator rows; ns/trial divides the op time by it.
const perfEstimatorTrials = 200

// perfWarmupTrials runs untimed before the OS rows so entry pools and
// angle tables reach their steady-state capacities; the timed window then
// reflects the kernel's zero-allocation regime, which is what the
// alloc-regression tests pin down.
const perfWarmupTrials = 128

// DefaultPerfRounds is how many interleaved (kernel, seed) measurement
// rounds the OS comparison runs by default; each row reports its fastest
// round.
const DefaultPerfRounds = 3

// RunPerf times every row on the default corpus. The benchmark runtime
// (testing.Benchmark) picks trial counts so each row runs ~1s.
func RunPerf() (*PerfReport, error) {
	return RunPerfCorpus(DefaultPerfCorpus, DefaultPerfRounds)
}

// RunPerfCorpus times every row on the given corpus. rounds ≤ 0 means
// DefaultPerfRounds.
func RunPerfCorpus(corpus PerfCorpus, rounds int) (*PerfReport, error) {
	return RunPerfCorpusAnchor(corpus, rounds, nil)
}

// RunPerfCorpusAnchor is RunPerfCorpus with the anchored_os row's anchor
// pinned (`mpmb-bench perf -anchor-l/...`). nil picks the default: the
// heaviest edge's left endpoint — a popular vertex in the skewed
// corpus, so the anchored two-hop enumeration is a real workload rather
// than an empty scan.
func RunPerfCorpusAnchor(corpus PerfCorpus, rounds int, anchor *core.Anchor) (*PerfReport, error) {
	if rounds <= 0 {
		rounds = DefaultPerfRounds
	}
	g := corpus.Build()
	rep := &PerfReport{
		GeneratedAt: time.Now().UTC(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Corpus:      corpus,
	}

	// os_kernel vs os_seed_baseline: measured in interleaved rounds
	// (kernel, seed, kernel, seed, ...), each row keeping its
	// fastest-round time. A shared machine's frequency drift or a noisy
	// neighbor then biases both rows the same way instead of silently
	// inflating one side of the speedup ratio; the minimum over rounds is
	// the standard robust statistic for "how fast does this code actually
	// run".
	var kernelScanned, kernelFallbacks float64
	var kernelRes, seedRes testing.BenchmarkResult
	for round := 0; round < rounds; round++ {
		kr := testing.Benchmark(func(b *testing.B) {
			kb := core.NewKernelBench(g, core.OSOptions{Seed: 42})
			for t := 1; t <= perfWarmupTrials; t++ {
				kb.Trial(t) // grow pools to steady state before the timer
			}
			scanned := 0
			fb0 := kb.Fallbacks()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanned += kb.Trial(i + 1)
			}
			kernelScanned = float64(scanned) / float64(b.N)
			kernelFallbacks = float64(kb.Fallbacks()-fb0) / float64(b.N)
		})
		if round == 0 || kr.NsPerOp() < kernelRes.NsPerOp() {
			kernelRes = kr
		}
		sr := testing.Benchmark(func(b *testing.B) {
			sb := core.NewSeedBench(g, core.OSOptions{Seed: 42})
			for t := 1; t <= perfWarmupTrials; t++ {
				sb.Trial(t) // same warmup as the kernel row, for a fair diff
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.Trial(i + 1)
			}
		})
		if round == 0 || sr.NsPerOp() < seedRes.NsPerOp() {
			seedRes = sr
		}
	}
	kernel := entryFromResult("os_kernel", kernelRes, 1)
	kernel.EdgesScannedPerTrial = kernelScanned
	kernel.EdgesPrunedPerTrial = float64(g.NumEdges()) - kernelScanned
	kernel.PrefixFallbacksPerTrial = kernelFallbacks
	rep.Entries = append(rep.Entries, kernel)
	rep.Entries = append(rep.Entries, entryFromResult("os_seed_baseline", seedRes, 1))

	// os_parallel: the batched worker path, amortized per trial. A
	// registry-backed probe rides along so the row reports the same
	// scanned/pruned/fallback split as the sequential kernel row — the
	// workers' trial meters flush into it per chunk, and dividing the
	// accumulated counters by the accumulated trial count amortizes over
	// every benchmark iteration (the probe costs one predictable branch
	// per trial, so it does not distort the timing).
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	const parTrials = 512
	parReg := telemetry.NewRegistry()
	parRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			opts := core.OSOptions{Trials: parTrials, Seed: 42,
				Probe: &telemetry.Probe{Reg: parReg, Method: "os"}}
			if _, err := core.OSParallel(g, opts, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	par := entryFromResult(fmt.Sprintf("os_parallel_w%d", workers), parRes, parTrials)
	if pm := parReg.Snapshot(); pm.Trials > 0 {
		par.EdgesScannedPerTrial = float64(pm.EdgesScanned) / float64(pm.Trials)
		par.EdgesPrunedPerTrial = float64(pm.EdgesPruned) / float64(pm.Trials)
		par.PrefixFallbacksPerTrial = float64(pm.PrefixFallbacks) / float64(pm.Trials)
	}
	rep.Entries = append(rep.Entries, par)

	// optimized_estimator: Algorithm 5 over a prepared candidate set.
	cands, err := core.PrepareCandidates(g, 50, 42, core.OSOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: perf candidates: %w", err)
	}
	optRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.EstimateOptimized(cands, core.OptimizedOptions{
				Trials: perfEstimatorTrials, Seed: 42,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Entries = append(rep.Entries,
		entryFromResult("optimized_estimator", optRes, perfEstimatorTrials))

	// anchored_os: the anchored counting kernel, amortized per trial.
	// The anchored trial enumerates only the anchor's two-hop
	// neighbourhood with lazy edge draws, so its ns/trial against
	// os_kernel quantifies the locality win of the anchored query path.
	a := core.Anchor{}
	if anchor != nil {
		a = *anchor
	} else if ids := g.EdgesByWeightDesc(); len(ids) > 0 {
		a = core.Anchor{Kind: core.AnchorLeft, U: g.Edge(ids[0]).U}
	}
	if a.Kind != 0 {
		if err := a.Validate(g); err != nil {
			return nil, fmt.Errorf("bench: perf anchor: %w", err)
		}
		const anchoredTrials = 256
		anchRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.AnchoredOS(g, a, core.OSOptions{
					Trials: anchoredTrials, Seed: 42,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Entries = append(rep.Entries,
			entryFromResult("anchored_os", anchRes, anchoredTrials))
	}

	if seed, kern := rep.find("os_seed_baseline"), rep.find("os_kernel"); seed != nil && kern != nil && kern.NsPerTrial > 0 {
		rep.SpeedupOSKernelVsSeed = seed.NsPerTrial / kern.NsPerTrial
	}
	return rep, nil
}

// AttachSecondary measures the same rows on SecondaryPerfCorpus and
// embeds them in rep as the secondary block (`mpmb-bench perf
// -secondary`).
func AttachSecondary(rep *PerfReport, rounds int) error {
	sec, err := RunPerfCorpus(SecondaryPerfCorpus, rounds)
	if err != nil {
		return err
	}
	c := sec.Corpus
	rep.SecondaryCorpus = &c
	rep.SecondaryEntries = sec.Entries
	rep.SecondarySpeedupOSKernelVsSeed = sec.SpeedupOSKernelVsSeed
	return nil
}

// entryFromResult converts a benchmark result into a report row,
// amortizing over trialsPerOp inner trials per benchmark op.
func entryFromResult(name string, r testing.BenchmarkResult, trialsPerOp int) PerfEntry {
	ops := float64(trialsPerOp)
	return PerfEntry{
		Name:           name,
		NsPerTrial:     float64(r.NsPerOp()) / ops,
		AllocsPerTrial: float64(r.AllocsPerOp()) / ops,
		BytesPerTrial:  float64(r.AllocedBytesPerOp()) / ops,
		TrialsTimed:    r.N * trialsPerOp,
	}
}

func (r *PerfReport) find(name string) *PerfEntry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON (the BENCH_core.json
// format).
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintPerf renders the report as an aligned text table with the headline
// speedup underneath, followed by the secondary corpus block if present.
func PrintPerf(w io.Writer, r *PerfReport) {
	printPerfTable(w, "pinned corpus", r.Corpus, r.Entries, r.SpeedupOSKernelVsSeed,
		r.GoOS, r.GoArch, r.NumCPU)
	if r.SecondaryCorpus != nil {
		fmt.Fprintln(w)
		printPerfTable(w, "secondary corpus", *r.SecondaryCorpus, r.SecondaryEntries,
			r.SecondarySpeedupOSKernelVsSeed, r.GoOS, r.GoArch, r.NumCPU)
	}
}

func printPerfTable(w io.Writer, label string, c PerfCorpus, entries []PerfEntry, speedup float64, goos, goarch string, ncpu int) {
	kind := c.WeightKind
	if kind == "" {
		kind = WeightHalfGrid
	}
	fmt.Fprintf(w, "kernel performance on %s %dx%d |E|=%d p=[%.2f,%.2f] w=%s (%s/%s, %d cpus)\n",
		label, c.NumL, c.NumR, c.NumEdges, c.PLo, c.PHi, kind, goos, goarch, ncpu)
	fmt.Fprintf(w, "%-22s %14s %14s %14s %12s %12s %10s\n",
		"entry", "ns/trial", "allocs/trial", "B/trial", "scanned", "pruned", "fallback")
	for _, e := range entries {
		fmt.Fprintf(w, "%-22s %14.1f %14.3f %14.1f %12.1f %12.1f %10.4f\n",
			e.Name, e.NsPerTrial, e.AllocsPerTrial, e.BytesPerTrial,
			e.EdgesScannedPerTrial, e.EdgesPrunedPerTrial, e.PrefixFallbacksPerTrial)
	}
	fmt.Fprintf(w, "os kernel speedup vs seed baseline: %.2fx\n", speedup)
}
