package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// This file is the benchmark trajectory harness behind `mpmb-bench perf`
// and `make bench`: it times the flat-memory OS trial kernel and the OLS
// estimators on a pinned synthetic corpus, always alongside the frozen
// seed implementation (osref.go), and writes the numbers to
// BENCH_core.json. Because the corpus, the seeds and the baseline are all
// pinned, the JSON files from successive commits form a trajectory — each
// PR can state "the kernel is N× the seed on this machine" and diff
// itself against the file the previous PR committed.

// PerfCorpus pins the graph a perf run measures. All fields participate
// in the JSON report so a trajectory diff can prove two runs measured the
// same workload.
type PerfCorpus struct {
	NumL     int     `json:"num_l"`
	NumR     int     `json:"num_r"`
	NumEdges int     `json:"num_edges"`
	PLo      float64 `json:"p_lo"`
	PHi      float64 `json:"p_hi"`
	Seed     uint64  `json:"seed"`
}

// DefaultPerfCorpus is the pinned headline workload: a skewed bipartite
// graph (2000 left vertices sharing 100 right vertices, average right
// degree 200) like the paper's rating-network datasets, where a handful
// of popular right vertices concentrate most of the edges. The skew makes
// the trials angle-dense — long live lists, heavy angle-table traffic,
// an effective Section V-B prune — which is exactly the regime the
// flat-memory kernel rebuilds, so the speedup this corpus reports is the
// speedup of the code this PR actually changed rather than of the
// memory-bandwidth-bound edge scan around it.
var DefaultPerfCorpus = PerfCorpus{
	NumL: 2000, NumR: 100, NumEdges: 20000,
	PLo: 0.2, PHi: 0.8, Seed: 1009,
}

// Build materializes the corpus graph deterministically from its seed.
// Weights are drawn from a half-integer grid so exact weight ties occur
// and the A1/A2 angle classes stay populated, matching how the test
// corpora elsewhere in the repository are built.
func (c PerfCorpus) Build() *bigraph.Graph {
	r := randx.New(c.Seed)
	b := bigraph.NewBuilder(c.NumL, c.NumR)
	seen := make(map[uint64]bool, c.NumEdges)
	for added := 0; added < c.NumEdges; {
		u, v := r.Intn(c.NumL), r.Intn(c.NumR)
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		w := 0.5 * float64(1+r.Intn(10))
		p := c.PLo + (c.PHi-c.PLo)*r.Float64()
		b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), w, p)
		added++
	}
	return b.Build()
}

// PerfEntry is one timed row of the report. NsPerTrial is the headline
// number; the allocation columns come from the benchmark runtime's
// allocator statistics and should be ~0 for the kernel rows.
type PerfEntry struct {
	Name           string  `json:"name"`
	NsPerTrial     float64 `json:"ns_per_trial"`
	AllocsPerTrial float64 `json:"allocs_per_trial"`
	BytesPerTrial  float64 `json:"bytes_per_trial"`
	// EdgesScannedPerTrial / EdgesPrunedPerTrial split the snapshot between
	// positions the trial visited and positions the Section V-B prune
	// skipped (OS rows only).
	EdgesScannedPerTrial float64 `json:"edges_scanned_per_trial,omitempty"`
	EdgesPrunedPerTrial  float64 `json:"edges_pruned_per_trial,omitempty"`
	// TrialsTimed is how many trials the benchmark runtime settled on.
	TrialsTimed int `json:"trials_timed"`
}

// PerfReport is the BENCH_core.json document.
type PerfReport struct {
	GeneratedAt time.Time   `json:"generated_at"`
	GoOS        string      `json:"goos"`
	GoArch      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Corpus      PerfCorpus  `json:"corpus"`
	Entries     []PerfEntry `json:"entries"`
	// SpeedupOSKernelVsSeed is os_seed_baseline ns ÷ os_kernel ns: how many
	// times faster the flat-memory kernel runs one OS trial than the
	// pre-rewrite seed implementation, measured back to back on this
	// machine in this run.
	SpeedupOSKernelVsSeed float64 `json:"speedup_os_kernel_vs_seed"`
}

// perfEstimatorTrials is the inner trial count per benchmark op for the
// estimator rows; ns/trial divides the op time by it.
const perfEstimatorTrials = 200

// perfWarmupTrials runs untimed before the OS rows so entry pools and
// angle tables reach their steady-state capacities; the timed window then
// reflects the kernel's zero-allocation regime, which is what the
// alloc-regression tests pin down.
const perfWarmupTrials = 128

// DefaultPerfRounds is how many interleaved (kernel, seed) measurement
// rounds the OS comparison runs by default; each row reports its fastest
// round.
const DefaultPerfRounds = 3

// RunPerf times every row on the default corpus. The benchmark runtime
// (testing.Benchmark) picks trial counts so each row runs ~1s.
func RunPerf() (*PerfReport, error) {
	return RunPerfCorpus(DefaultPerfCorpus, DefaultPerfRounds)
}

// RunPerfCorpus times every row on the given corpus. rounds ≤ 0 means
// DefaultPerfRounds.
func RunPerfCorpus(corpus PerfCorpus, rounds int) (*PerfReport, error) {
	if rounds <= 0 {
		rounds = DefaultPerfRounds
	}
	g := corpus.Build()
	rep := &PerfReport{
		GeneratedAt: time.Now().UTC(),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Corpus:      corpus,
	}

	// os_kernel vs os_seed_baseline: measured in interleaved rounds
	// (kernel, seed, kernel, seed, ...), each row keeping its
	// fastest-round time. A shared machine's frequency drift or a noisy
	// neighbor then biases both rows the same way instead of silently
	// inflating one side of the speedup ratio; the minimum over rounds is
	// the standard robust statistic for "how fast does this code actually
	// run".
	var kernelScanned float64
	var kernelRes, seedRes testing.BenchmarkResult
	for round := 0; round < rounds; round++ {
		kr := testing.Benchmark(func(b *testing.B) {
			kb := core.NewKernelBench(g, core.OSOptions{Seed: 42})
			for t := 1; t <= perfWarmupTrials; t++ {
				kb.Trial(t) // grow pools to steady state before the timer
			}
			scanned := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scanned += kb.Trial(i + 1)
			}
			kernelScanned = float64(scanned) / float64(b.N)
		})
		if round == 0 || kr.NsPerOp() < kernelRes.NsPerOp() {
			kernelRes = kr
		}
		sr := testing.Benchmark(func(b *testing.B) {
			sb := core.NewSeedBench(g, core.OSOptions{Seed: 42})
			for t := 1; t <= perfWarmupTrials; t++ {
				sb.Trial(t) // same warmup as the kernel row, for a fair diff
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.Trial(i + 1)
			}
		})
		if round == 0 || sr.NsPerOp() < seedRes.NsPerOp() {
			seedRes = sr
		}
	}
	kernel := entryFromResult("os_kernel", kernelRes, 1)
	kernel.EdgesScannedPerTrial = kernelScanned
	kernel.EdgesPrunedPerTrial = float64(g.NumEdges()) - kernelScanned
	rep.Entries = append(rep.Entries, kernel)
	rep.Entries = append(rep.Entries, entryFromResult("os_seed_baseline", seedRes, 1))

	// os_parallel: the batched worker path, amortized per trial.
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	const parTrials = 512
	parRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.OSParallel(g, core.OSOptions{Trials: parTrials, Seed: 42}, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Entries = append(rep.Entries,
		entryFromResult(fmt.Sprintf("os_parallel_w%d", workers), parRes, parTrials))

	// optimized_estimator: Algorithm 5 over a prepared candidate set.
	cands, err := core.PrepareCandidates(g, 50, 42, core.OSOptions{})
	if err != nil {
		return nil, fmt.Errorf("bench: perf candidates: %w", err)
	}
	optRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.EstimateOptimized(cands, core.OptimizedOptions{
				Trials: perfEstimatorTrials, Seed: 42,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Entries = append(rep.Entries,
		entryFromResult("optimized_estimator", optRes, perfEstimatorTrials))

	if seed, kern := rep.find("os_seed_baseline"), rep.find("os_kernel"); seed != nil && kern != nil && kern.NsPerTrial > 0 {
		rep.SpeedupOSKernelVsSeed = seed.NsPerTrial / kern.NsPerTrial
	}
	return rep, nil
}

// entryFromResult converts a benchmark result into a report row,
// amortizing over trialsPerOp inner trials per benchmark op.
func entryFromResult(name string, r testing.BenchmarkResult, trialsPerOp int) PerfEntry {
	ops := float64(trialsPerOp)
	return PerfEntry{
		Name:           name,
		NsPerTrial:     float64(r.NsPerOp()) / ops,
		AllocsPerTrial: float64(r.AllocsPerOp()) / ops,
		BytesPerTrial:  float64(r.AllocedBytesPerOp()) / ops,
		TrialsTimed:    r.N * trialsPerOp,
	}
}

func (r *PerfReport) find(name string) *PerfEntry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// WriteJSON writes the report as indented JSON (the BENCH_core.json
// format).
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintPerf renders the report as an aligned text table with the headline
// speedup underneath.
func PrintPerf(w io.Writer, r *PerfReport) {
	fmt.Fprintf(w, "kernel performance on pinned corpus %dx%d |E|=%d p=[%.2f,%.2f] (%s/%s, %d cpus)\n",
		r.Corpus.NumL, r.Corpus.NumR, r.Corpus.NumEdges, r.Corpus.PLo, r.Corpus.PHi,
		r.GoOS, r.GoArch, r.NumCPU)
	fmt.Fprintf(w, "%-22s %14s %14s %14s %12s %12s\n",
		"entry", "ns/trial", "allocs/trial", "B/trial", "scanned", "pruned")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-22s %14.1f %14.3f %14.1f %12.1f %12.1f\n",
			e.Name, e.NsPerTrial, e.AllocsPerTrial, e.BytesPerTrial,
			e.EdgesScannedPerTrial, e.EdgesPrunedPerTrial)
	}
	fmt.Fprintf(w, "os kernel speedup vs seed baseline: %.2fx\n", r.SpeedupOSKernelVsSeed)
}
