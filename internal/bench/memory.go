package bench

import (
	"runtime"
	"sync"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// MemoryCell is Fig. 13 for one (dataset, method) pair: memory consumption
// split into the network itself and the method's working set.
type MemoryCell struct {
	Dataset string
	Method  Method
	// GraphBytes approximates the resident size of the input network
	// (edges plus both CSR indexes).
	GraphBytes uint64
	// PeakExtraBytes is the peak live-heap growth observed while the
	// method ran (sampled), i.e. the method's own working set.
	PeakExtraBytes uint64
}

// RunMemory reproduces Fig. 13: peak memory of each method on each
// dataset. MC-VP runs a reduced trial count (memory is per-trial cyclic,
// so a handful of trials reaches the peak), mirroring how the paper's
// figure includes MC-VP even where its full run timed out.
func RunMemory(opt Options) ([]MemoryCell, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	var out []MemoryCell
	for _, d := range ds {
		g := d.G
		graphBytes := uint64(g.NumEdges()) * (32 /*Edge*/ + 2*8 /*two CSR halves*/)
		for _, m := range AllMethods {
			var runErr error
			peak := measurePeakHeap(func() {
				switch m {
				case MCVP:
					// Memory peaks within the first trial; a deadline keeps
					// dense datasets from running for hours. An interrupted
					// run returns a partial result and still observed the
					// peak working set up to that point.
					deadline := time.Now().Add(opt.TimeBudget / 4)
					_, runErr = core.MCVP(g, core.MCVPOptions{
						Trials:    3,
						Seed:      opt.Seed,
						Interrupt: func() bool { return time.Now().After(deadline) },
					})
				case OS:
					trials := opt.SampleTrials
					if trials > 200 {
						trials = 200 // peak reached within a few trials
					}
					_, runErr = core.OS(g, core.OSOptions{Trials: trials, Seed: opt.Seed})
				case OLSKL:
					_, runErr = core.OLS(g, core.OLSOptions{
						PrepTrials: opt.PrepTrials, Trials: opt.SampleTrials,
						Seed: opt.Seed, UseKarpLuby: true,
						KL: core.KLOptions{Mu: opt.Mu},
					})
				case OLS:
					_, runErr = core.OLS(g, core.OLSOptions{
						PrepTrials: opt.PrepTrials, Trials: opt.SampleTrials,
						Seed: opt.Seed,
					})
				}
			})
			if runErr != nil {
				return nil, runErr
			}
			out = append(out, MemoryCell{
				Dataset:        d.Name,
				Method:         m,
				GraphBytes:     graphBytes,
				PeakExtraBytes: peak,
			})
		}
	}
	return out, nil
}

// measurePeakHeap runs fn while sampling the live heap and returns the
// peak growth over the pre-run baseline. The sampler polls HeapAlloc at a
// millisecond cadence; short-lived spikes between polls can be missed,
// which is acceptable for the comparative purpose of Fig. 13.
func measurePeakHeap(fn func()) uint64 {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var peak uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > base.HeapAlloc && ms.HeapAlloc-base.HeapAlloc > peak {
					peak = ms.HeapAlloc - base.HeapAlloc
				}
			}
		}
	}()
	fn()
	// One final reading after fn returns, before any GC.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > base.HeapAlloc && ms.HeapAlloc-base.HeapAlloc > peak {
		peak = ms.HeapAlloc - base.HeapAlloc
	}
	close(stop)
	wg.Wait()
	return peak
}
