package bench

import (
	"fmt"
	"io"

	"github.com/uncertain-graphs/mpmb/internal/statcheck"
)

// RunConformance executes the statistical conformance harness
// (internal/statcheck) over its short oracle corpus: every estimator
// against the exact oracles under Hoeffding acceptance intervals, plus
// the metamorphic invariants. Options.SampleTrials and PrepTrials
// override the harness trial counts so the CLI flags apply; everything
// else uses the statcheck defaults.
func RunConformance(opt Options) (*statcheck.Report, error) {
	cfg := statcheck.DefaultConfig(opt.Seed)
	if opt.SampleTrials > 0 {
		cfg.Trials = opt.SampleTrials
	}
	if opt.PrepTrials > 0 {
		cfg.PrepTrials = opt.PrepTrials
	}
	if opt.AuditEvery > 0 || opt.SelfHealing {
		cfg.SelfHealing = true
		cfg.AuditEvery = opt.AuditEvery
		cfg.Epsilon = opt.Epsilon
		cfg.Deadline = opt.Deadline
	}
	return statcheck.Run(cfg, statcheck.ShortCorpus())
}

// PrintConformance runs the conformance harness and writes the full JSON
// report — per-method max absolute error, coverage and
// trials-to-tolerance — followed by a one-line verdict. The JSON is the
// same document `mpmb-bench -json` embeds under "conformance".
func PrintConformance(w io.Writer, opt Options) error {
	rep, err := RunConformance(opt)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}
	verdict := "PASS"
	if !rep.Pass {
		verdict = "FAIL"
	}
	if sh := rep.SelfHealing; sh != nil {
		state := "healed"
		if !sh.Healed {
			state = "NOT healed"
		}
		fmt.Fprintf(w, "self-healing: %s (leader err %.4g vs band %.4g; audits=%d escalations=%d method=%s)\n",
			state, sh.AbsErr, sh.HalfWidth, sh.Audits, sh.Escalations, sh.Method)
	}
	fmt.Fprintf(w, "conformance: %s (%d interval violations, budget %d; %d metamorphic)\n",
		verdict, rep.Violations, rep.FailureBudget, rep.MetamorphicViolations)
	if !rep.Pass {
		return fmt.Errorf("conformance failed: %d violations against budget %d, %d metamorphic",
			rep.Violations, rep.FailureBudget, rep.MetamorphicViolations)
	}
	return nil
}
