package bench

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/dataset"
)

// OverallResult is Fig. 7: total executing time of every method on every
// dataset.
type OverallResult struct {
	Cells []Timing
}

// RunOverall reproduces Fig. 7. MC-VP cells on large datasets will come
// back Extrapolated, mirroring the paper's 4-hour DNF.
func RunOverall(opt Options) (*OverallResult, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	res := &OverallResult{}
	for _, d := range ds {
		for _, m := range AllMethods {
			cell, err := runMethodTimed(d.G, d.Name, m, opt)
			if err != nil {
				return nil, fmt.Errorf("bench: %s on %s: %w", m, d.Name, err)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Speedups summarizes the headline factors of Section VIII-F from an
// overall run: OS vs MC-VP, OLS vs OS, and OLS vs OLS-KL per dataset.
func (r *OverallResult) Speedups() []SpeedupRow {
	byKey := make(map[string]Timing)
	var names []string
	seen := make(map[string]bool)
	for _, c := range r.Cells {
		byKey[c.Dataset+"/"+string(c.Method)] = c
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			names = append(names, c.Dataset)
		}
	}
	var rows []SpeedupRow
	for _, n := range names {
		mc, os := byKey[n+"/mc-vp"], byKey[n+"/os"]
		kl, ols := byKey[n+"/ols-kl"], byKey[n+"/ols"]
		row := SpeedupRow{Dataset: n}
		if os.Total() > 0 {
			row.OSvsMCVP = float64(mc.Total()) / float64(os.Total())
		}
		if ols.Total() > 0 {
			row.OLSvsOS = float64(os.Total()) / float64(ols.Total())
		}
		if ols.Total() > 0 {
			row.OLSvsKL = float64(kl.Total()) / float64(ols.Total())
		}
		rows = append(rows, row)
	}
	return rows
}

// SpeedupRow holds the per-dataset speedup factors of Section VIII-F.
type SpeedupRow struct {
	Dataset  string
	OSvsMCVP float64 // paper: ≥ 10³
	OLSvsOS  float64 // paper: up to 180
	OLSvsKL  float64 // paper: ≈ 3–8 on the small datasets
}

// PhasePoint is one point of Fig. 8: a method's cumulative time with the
// sampling phase truncated to Frac of the full trial count (Frac = 0
// means preparing phase only).
type PhasePoint struct {
	Dataset string
	Method  Method
	Frac    float64
	Timing  Timing
}

// RunPhaseSweep reproduces Fig. 8: preparing time at N=0% (OLS variants)
// and sampling time at 25/50/75/100% of SampleTrials for OS, OLS-KL and
// OLS. MC-VP is excluded as in the paper's figure, where it already
// dominated Fig. 7.
func RunPhaseSweep(opt Options) ([]PhasePoint, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.25, 0.5, 0.75, 1}
	var out []PhasePoint
	for _, d := range ds {
		for _, m := range []Method{OS, OLSKL, OLS} {
			if m != OS {
				// The N=0% point: preparing phase only.
				zero := opt
				zero.SampleTrials = 1 // cheapest measurable sampling phase
				cell, err := runMethodTimed(d.G, d.Name, m, zero)
				if err != nil {
					return nil, err
				}
				cell.Sampling = 0
				cell.Trials = 0
				out = append(out, PhasePoint{Dataset: d.Name, Method: m, Frac: 0, Timing: cell})
			}
			for _, f := range fracs {
				sub := opt
				sub.SampleTrials = int(float64(opt.SampleTrials)*f + 0.5)
				if sub.SampleTrials < 1 {
					sub.SampleTrials = 1
				}
				cell, err := runMethodTimed(d.G, d.Name, m, sub)
				if err != nil {
					return nil, err
				}
				out = append(out, PhasePoint{Dataset: d.Name, Method: m, Frac: f, Timing: cell})
			}
		}
	}
	return out, nil
}

// ScalePoint is one point of Fig. 9: a method's total time on the
// subgraph induced by a fraction of the vertices.
type ScalePoint struct {
	Dataset  string
	Method   Method
	VertexFr float64
	Edges    int
	Timing   Timing
}

// RunScalability reproduces Fig. 9: each method on 25/50/75/100% vertex
// samples of each dataset. The same vertex sample (per dataset and
// fraction) is shared by all methods so the comparison is fair.
func RunScalability(opt Options) ([]ScalePoint, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.25, 0.5, 0.75, 1}
	var out []ScalePoint
	for _, d := range ds {
		for _, f := range fracs {
			sub := d.G
			if f < 1 {
				rng := subsampleRNG(opt.Seed, d.Name, f)
				var err error
				sub, err = d.G.VertexSample(f, rng)
				if err != nil {
					return nil, err
				}
			}
			for _, m := range []Method{OS, OLSKL, OLS} {
				cell, err := runMethodTimed(sub, d.Name, m, opt)
				if err != nil {
					return nil, err
				}
				out = append(out, ScalePoint{
					Dataset: d.Name, Method: m, VertexFr: f,
					Edges: sub.NumEdges(), Timing: cell,
				})
			}
		}
	}
	return out, nil
}

// Table4Row reports the Table IV trial configuration for one method.
type Table4Row struct {
	Method   Method
	Prep     string
	Sampling string
}

// Table4 reproduces Table IV for the configured trial numbers.
func Table4(opt Options) []Table4Row {
	n := fmt.Sprintf("%d", opt.SampleTrials)
	p := fmt.Sprintf("%d", opt.PrepTrials)
	return []Table4Row{
		{Method: MCVP, Prep: "-", Sampling: n},
		{Method: OS, Prep: "-", Sampling: n},
		{Method: OLSKL, Prep: p, Sampling: "dynamic (Eq. 8)"},
		{Method: OLS, Prep: p, Sampling: n},
	}
}

// Table3 reproduces Table III for the generated datasets.
func Table3(opt Options) ([]dataset.TableRow, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	return dataset.Table3(ds), nil
}

// TheoreticalTrials reports the Theorem IV.1 bound for the configured
// (Mu, Eps, Delta), for Table IV context.
func TheoreticalTrials(opt Options) (int, error) {
	return core.MonteCarloTrials(opt.Mu, opt.Eps, opt.Delta)
}
