package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestPrintTable3And4(t *testing.T) {
	opt := tinyOptions()
	var sb strings.Builder
	if err := PrintTable3(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table III", "abide", "movielens", "weight", "probability"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := PrintTable4(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	for _, want := range []string{"Table IV", "mc-vp", "dynamic (Eq. 8)", "23966"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintRatioMatrix(t *testing.T) {
	var sb strings.Builder
	PrintRatioMatrix(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "99.00") {
		t.Fatalf("Figure 6 output wrong:\n%s", out)
	}
}

func TestPrintTimingExperiments(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	var sb strings.Builder
	if err := PrintOverall(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 7", "speedups", "abide"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 7 output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := PrintPhaseSweep(&sb, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 8") {
		t.Fatalf("Figure 8 output wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := PrintScalability(&sb, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 9") {
		t.Fatalf("Figure 9 output wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := PrintTrialRatios(&sb, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 10") || !strings.Contains(sb.String(), "1/|C_MB|") {
		t.Fatalf("Figure 10 output wrong:\n%s", sb.String())
	}
}

func TestPrintConvergenceExperiments(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 300
	var sb strings.Builder
	if err := PrintSamplingConvergence(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 11", "reference P=", "ε-band"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 11 output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := PrintPreparingTrend(&sb, opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 12") || !strings.Contains(sb.String(), "prep=") {
		t.Fatalf("Figure 12 output wrong:\n%s", sb.String())
	}
}

func TestPrintMemory(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	var sb strings.Builder
	if err := PrintMemory(&sb, opt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 13") || !strings.Contains(out, "graph") {
		t.Fatalf("Figure 13 output wrong:\n%s", out)
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := fmtDur(1500*time.Microsecond, false); got != "1.5ms" {
		t.Fatalf("fmtDur = %q", got)
	}
	if got := fmtDur(2*time.Second, true); !strings.HasSuffix(got, "*") {
		t.Fatalf("extrapolated marker missing: %q", got)
	}
	cases := map[uint64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Fatalf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// TestExportJSONAllExperiments runs the JSON exporter across every
// experiment at tiny scale and validates the document structure.
func TestExportJSONAllExperiments(t *testing.T) {
	opt := tinyOptions()
	opt.Datasets = []string{"abide"}
	opt.SampleTrials = 50
	var sb strings.Builder
	if err := ExportJSON(&sb, opt, nil); err != nil {
		t.Fatal(err)
	}
	var report struct {
		SampleTrials int                        `json:"sample_trials"`
		Results      map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.SampleTrials != 50 {
		t.Fatalf("sample_trials = %d", report.SampleTrials)
	}
	for _, want := range []string{"table3", "table4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "ablation", "conformance"} {
		if _, ok := report.Results[want]; !ok {
			t.Fatalf("JSON report missing %q", want)
		}
	}

	// Selected subset only (reset the map: Unmarshal merges into
	// non-nil maps, which would keep the previous entries).
	sb.Reset()
	if err := ExportJSON(&sb, opt, []string{"fig6"}); err != nil {
		t.Fatal(err)
	}
	report.Results = nil
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 1 {
		t.Fatalf("selected export has %d results, want 1", len(report.Results))
	}

	// Unknown experiment rejected.
	if err := ExportJSON(&sb, opt, []string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
