package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// tinyPerfCorpus keeps RunPerfCorpus tests fast: each timed row still
// runs ~1s of benchmark wall clock, so the corpus only controls per-trial
// cost, not total test time — small keeps the trial counts sane.
var tinyPerfCorpus = PerfCorpus{
	NumL: 60, NumR: 12, NumEdges: 300,
	PLo: 0.2, PHi: 0.8, Seed: 7,
}

// TestPerfCorpusBuildDeterministic: the pinned corpus must be a pure
// function of its fields — the whole point of the trajectory is that two
// commits measured the same workload.
func TestPerfCorpusBuildDeterministic(t *testing.T) {
	g1 := tinyPerfCorpus.Build()
	g2 := tinyPerfCorpus.Build()
	if g1.NumEdges() != tinyPerfCorpus.NumEdges {
		t.Fatalf("built %d edges, want %d", g1.NumEdges(), tinyPerfCorpus.NumEdges)
	}
	for id := 0; id < g1.NumEdges(); id++ {
		e1, e2 := g1.Edge(bigraph.EdgeID(id)), g2.Edge(bigraph.EdgeID(id))
		if e1 != e2 {
			t.Fatalf("edge %d differs between builds: %+v vs %+v", id, e1, e2)
		}
		if e1.P < tinyPerfCorpus.PLo || e1.P > tinyPerfCorpus.PHi {
			t.Fatalf("edge %d probability %v outside [%v,%v]", id, e1.P, tinyPerfCorpus.PLo, tinyPerfCorpus.PHi)
		}
		// Weights sit on the half-integer grid so exact ties occur.
		if w := e1.W * 2; w != math.Trunc(w) || e1.W < 0.5 || e1.W > 5 {
			t.Fatalf("edge %d weight %v not on the 0.5..5 half-integer grid", id, e1.W)
		}
	}
}

// TestRunPerfCorpus runs the harness for real (one round, tiny corpus)
// and checks the report invariants the trajectory relies on.
func TestRunPerfCorpus(t *testing.T) {
	rep, err := RunPerfCorpus(tinyPerfCorpus, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corpus != tinyPerfCorpus {
		t.Fatalf("report corpus %+v, want %+v", rep.Corpus, tinyPerfCorpus)
	}
	kern, seed := rep.find("os_kernel"), rep.find("os_seed_baseline")
	if kern == nil || seed == nil {
		t.Fatalf("missing os rows in %+v", rep.Entries)
	}
	for _, e := range []*PerfEntry{kern, seed} {
		if e.NsPerTrial <= 0 || e.TrialsTimed <= 0 {
			t.Fatalf("row %s not measured: %+v", e.Name, e)
		}
	}
	// The kernel row's scan accounting must partition the snapshot.
	if got := kern.EdgesScannedPerTrial + kern.EdgesPrunedPerTrial; got != float64(tinyPerfCorpus.NumEdges) {
		t.Fatalf("scanned %v + pruned %v = %v, want %d edges",
			kern.EdgesScannedPerTrial, kern.EdgesPrunedPerTrial, got, tinyPerfCorpus.NumEdges)
	}
	// Zero-allocation steady state is separately pinned by the regression
	// tests in internal/core; here just require the report to agree.
	if kern.AllocsPerTrial >= 1 {
		t.Fatalf("kernel row allocates %v per trial, want < 1", kern.AllocsPerTrial)
	}
	if want := seed.NsPerTrial / kern.NsPerTrial; rep.SpeedupOSKernelVsSeed != want {
		t.Fatalf("speedup %v, want seed/kernel = %v", rep.SpeedupOSKernelVsSeed, want)
	}
	var haveParallel, haveOpt bool
	for i := range rep.Entries {
		e := &rep.Entries[i]
		if strings.HasPrefix(e.Name, "os_parallel_w") {
			haveParallel = true
			// The probe-backed parallel row must report the same scan
			// partition as the sequential kernel row.
			if got := e.EdgesScannedPerTrial + e.EdgesPrunedPerTrial; got != float64(tinyPerfCorpus.NumEdges) {
				t.Fatalf("parallel scanned %v + pruned %v = %v, want %d edges",
					e.EdgesScannedPerTrial, e.EdgesPrunedPerTrial, got, tinyPerfCorpus.NumEdges)
			}
		}
		if e.Name == "optimized_estimator" {
			haveOpt = true
		}
	}
	if !haveParallel || !haveOpt {
		t.Fatalf("missing parallel/estimator rows in %+v", rep.Entries)
	}
	// Prefix fallbacks are a per-trial probability; the calibration
	// targets ≤ 1/(K+1), so anything near 1 means the counter is wired
	// wrong.
	for _, e := range []*PerfEntry{kern, seed} {
		if e.PrefixFallbacksPerTrial < 0 || e.PrefixFallbacksPerTrial > 0.5 {
			t.Fatalf("row %s prefix fallbacks per trial = %v, want a small probability",
				e.Name, e.PrefixFallbacksPerTrial)
		}
	}

	// The JSON document must round-trip with the headline fields intact.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Corpus != rep.Corpus || back.SpeedupOSKernelVsSeed != rep.SpeedupOSKernelVsSeed ||
		len(back.Entries) != len(rep.Entries) {
		t.Fatalf("JSON round-trip mismatch:\n%s", buf.String())
	}

	// And the text table must name every row plus the headline ratio.
	var tbl bytes.Buffer
	PrintPerf(&tbl, rep)
	for _, e := range rep.Entries {
		if !strings.Contains(tbl.String(), e.Name) {
			t.Fatalf("table missing row %s:\n%s", e.Name, tbl.String())
		}
	}
	if !strings.Contains(tbl.String(), "speedup vs seed baseline") {
		t.Fatalf("table missing speedup line:\n%s", tbl.String())
	}
}

// TestPerfCorpusUniformWeights pins the secondary corpus's weight kind:
// deterministic builds, continuous weights in [0.5, 10) that do NOT sit
// on the half-integer grid (that's the point — exact ties become
// measure-zero).
func TestPerfCorpusUniformWeights(t *testing.T) {
	c := tinyPerfCorpus
	c.WeightKind = WeightUniform
	g1, g2 := c.Build(), c.Build()
	offGrid := 0
	for id := 0; id < g1.NumEdges(); id++ {
		e1, e2 := g1.Edge(bigraph.EdgeID(id)), g2.Edge(bigraph.EdgeID(id))
		if e1 != e2 {
			t.Fatalf("edge %d differs between builds: %+v vs %+v", id, e1, e2)
		}
		if e1.W < 0.5 || e1.W >= 10 {
			t.Fatalf("edge %d weight %v outside [0.5, 10)", id, e1.W)
		}
		if w := e1.W * 2; w != math.Trunc(w) {
			offGrid++
		}
	}
	if offGrid == 0 {
		t.Fatal("uniform corpus produced only half-grid weights")
	}
}

// TestPrintPerfSecondaryBlock renders a synthetic report with a secondary
// corpus attached and requires both tables plus both speedup lines — the
// measurement itself is covered by TestRunPerfCorpus, so this one stays
// cheap.
func TestPrintPerfSecondaryBlock(t *testing.T) {
	sec := SecondaryPerfCorpus
	rep := &PerfReport{
		Corpus:                         tinyPerfCorpus,
		Entries:                        []PerfEntry{{Name: "os_kernel", NsPerTrial: 10}},
		SpeedupOSKernelVsSeed:          2,
		SecondaryCorpus:                &sec,
		SecondaryEntries:               []PerfEntry{{Name: "os_kernel", NsPerTrial: 20}},
		SecondarySpeedupOSKernelVsSeed: 3,
	}
	var tbl bytes.Buffer
	PrintPerf(&tbl, rep)
	out := tbl.String()
	for _, want := range []string{"pinned corpus", "secondary corpus", "w=uniform", "w=halfgrid", "fallback"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "speedup vs seed baseline") != 2 {
		t.Fatalf("expected two speedup lines:\n%s", out)
	}
}
