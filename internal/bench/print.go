package bench

import (
	"fmt"
	"io"
	"time"
)

// This file renders every experiment result as aligned text, in the
// layout of the corresponding paper table or figure. The mpmb-bench
// command calls these; they are deliberately plain (no ANSI, no
// dependencies) so output can be diffed and committed to EXPERIMENTS.md.

func fmtDur(d time.Duration, extrapolated bool) string {
	s := d.Round(time.Microsecond).String()
	if d >= time.Second {
		s = d.Round(10 * time.Millisecond).String()
	}
	if extrapolated {
		return s + "*"
	}
	return s
}

// PrintTable3 renders the dataset summary (Table III).
func PrintTable3(w io.Writer, opt Options) error {
	rows, err := Table3(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table III: dataset details (synthetic analogues, scale=%.3g)\n", opt.Scale)
	fmt.Fprintf(w, "%-10s %10s %8s %8s  %-18s %s\n", "dataset", "|E|", "|L|", "|R|", "weight", "probability")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %8d %8d  %-18s %s\n", r.Name, r.Edges, r.L, r.R, r.Weight, r.Probability)
	}
	return nil
}

// PrintTable4 renders the trial-number configuration (Table IV).
func PrintTable4(w io.Writer, opt Options) error {
	n, err := TheoreticalTrials(Options{Mu: 0.05, Eps: 0.1, Delta: 0.1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table IV: trial numbers (paper bound for μ=0.05, ε=δ=0.1: %d ≈ 2×10⁴; this run uses N=%d)\n", n, opt.SampleTrials)
	fmt.Fprintf(w, "%-10s %-16s %s\n", "method", "preparing", "sampling")
	for _, r := range Table4(opt) {
		fmt.Fprintf(w, "%-10s %-16s %s\n", r.Method, r.Prep, r.Sampling)
	}
	return nil
}

// PrintRatioMatrix renders Fig. 6.
func PrintRatioMatrix(w io.Writer) {
	m := RunRatioMatrix()
	fmt.Fprintln(w, "Figure 6: trial ratio N_kl/N_op by Eq. 8 with S_i = 1 (rows: μ=P(B); cols: Pr[E(B)])")
	fmt.Fprintf(w, "%8s", "μ \\ PrE")
	for _, pe := range m.PrExists {
		fmt.Fprintf(w, " %8.2f", pe)
	}
	fmt.Fprintln(w)
	for i, mu := range m.Mus {
		fmt.Fprintf(w, "%8.2f", mu)
		for _, v := range m.Values[i] {
			fmt.Fprintf(w, " %8.2f", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintOverall renders Fig. 7 plus the Section VIII-F speedup summary.
func PrintOverall(w io.Writer, opt Options) error {
	res, err := RunOverall(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7: overall executing time (N=%d; * = extrapolated beyond the %v budget)\n",
		opt.SampleTrials, opt.TimeBudget)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "dataset", "mc-vp", "os", "ols-kl", "ols")
	byKey := make(map[string]Timing)
	var names []string
	seen := make(map[string]bool)
	for _, c := range res.Cells {
		byKey[c.Dataset+"/"+string(c.Method)] = c
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			names = append(names, c.Dataset)
		}
	}
	for _, n := range names {
		fmt.Fprintf(w, "%-10s", n)
		for _, m := range AllMethods {
			c := byKey[n+"/"+string(m)]
			fmt.Fprintf(w, " %12s", fmtDur(c.Total(), c.Extrapolated))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nSection VIII-F speedups (paper: OS ≥ 10³× MC-VP; OLS ≤ 180× OS; OLS ≈ 3–8× OLS-KL on small sets):")
	fmt.Fprintf(w, "%-10s %14s %12s %12s\n", "dataset", "os/mc-vp", "ols/os", "ols/ols-kl")
	for _, r := range res.Speedups() {
		fmt.Fprintf(w, "%-10s %13.1fx %11.1fx %11.2fx\n", r.Dataset, r.OSvsMCVP, r.OLSvsOS, r.OLSvsKL)
	}
	return nil
}

// PrintPhaseSweep renders Fig. 8.
func PrintPhaseSweep(w io.Writer, opt Options) error {
	pts, err := RunPhaseSweep(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8: executing time vs sampling-phase trials (N=%d; 0%% = preparing phase only)\n", opt.SampleTrials)
	fmt.Fprintf(w, "%-10s %-8s %10s %10s %10s %10s %10s\n", "dataset", "method", "0%", "25%", "50%", "75%", "100%")
	type key struct {
		d string
		m Method
	}
	series := make(map[key]map[float64]Timing)
	var order []key
	for _, p := range pts {
		k := key{p.Dataset, p.Method}
		if series[k] == nil {
			series[k] = make(map[float64]Timing)
			order = append(order, k)
		}
		series[k][p.Frac] = p.Timing
	}
	for _, k := range order {
		fmt.Fprintf(w, "%-10s %-8s", k.d, k.m)
		for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
			if t, ok := series[k][f]; ok {
				fmt.Fprintf(w, " %10s", fmtDur(t.Total(), t.Extrapolated))
			} else {
				fmt.Fprintf(w, " %10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// PrintScalability renders Fig. 9.
func PrintScalability(w io.Writer, opt Options) error {
	pts, err := RunScalability(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: executing time vs dataset scale (fraction of vertices kept)")
	fmt.Fprintf(w, "%-10s %-8s %12s %12s %12s %12s\n", "dataset", "method", "25%", "50%", "75%", "100%")
	type key struct {
		d string
		m Method
	}
	series := make(map[key]map[float64]Timing)
	var order []key
	for _, p := range pts {
		k := key{p.Dataset, p.Method}
		if series[k] == nil {
			series[k] = make(map[float64]Timing)
			order = append(order, k)
		}
		series[k][p.VertexFr] = p.Timing
	}
	for _, k := range order {
		fmt.Fprintf(w, "%-10s %-8s", k.d, k.m)
		for _, f := range []float64{0.25, 0.5, 0.75, 1} {
			t := series[k][f]
			fmt.Fprintf(w, " %12s", fmtDur(t.Total(), t.Extrapolated))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// PrintTrialRatios renders Fig. 10 (summarized; full series are too long
// to print for tens of thousands of candidates).
func PrintTrialRatios(w io.Writer, opt Options) error {
	rs, err := RunTrialRatios(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: per-candidate trial ratio N_kl/N_op (Eq. 8, μ=0.1) vs the balance line 1/|C_MB|")
	fmt.Fprintf(w, "%-10s %8s %12s %12s %12s %12s %12s %14s\n",
		"dataset", "|C_MB|", "1/|C_MB|", "min", "median", "max", "mean", "above line")
	for _, r := range rs {
		if r.Candidates == 0 {
			fmt.Fprintf(w, "%-10s %8d (no candidates)\n", r.Dataset, 0)
			continue
		}
		q := r.Quantiles(0, 0.5, 1)
		fmt.Fprintf(w, "%-10s %8d %12.2g %12.3g %12.3g %12.3g %12.3g %7d (%4.1f%%)\n",
			r.Dataset, r.Candidates, r.Balance, q[0], q[1], q[2], r.MeanRatio,
			r.AboveBalance, 100*float64(r.AboveBalance)/float64(r.Candidates))
	}
	return nil
}

// PrintSamplingConvergence renders Fig. 11.
func PrintSamplingConvergence(w io.Writer, opt Options) error {
	rs, err := RunSamplingConvergence(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 11: P̂(B) convergence over 2× the sampling budget (N=%d), target P ≈ %.2g\n",
		opt.SampleTrials, opt.Mu)
	for _, r := range rs {
		fmt.Fprintf(w, "\n%s: target %v, reference P=%.4f, ε-band [%.4f, %.4f], KL target trials %d\n",
			r.Dataset, r.Target, r.RefP, r.Band[0], r.Band[1], r.KLTargetTrials)
		for _, m := range []Method{OS, OLSKL, OLS} {
			fmt.Fprintf(w, "  %-7s", m)
			series := r.Series[m]
			// Print up to 10 evenly spaced points.
			step := len(series) / 10
			if step < 1 {
				step = 1
			}
			for i := step - 1; i < len(series); i += step {
				fmt.Fprintf(w, " %4.0f%%:%.4f", series[i].Frac*100, series[i].P)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// PrintPreparingTrend renders Fig. 12.
func PrintPreparingTrend(w io.Writer, opt Options) error {
	rs, err := RunPreparingTrend(opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 12: P̂(B) vs preparing-phase trials (independent runs; default N_os=%d)\n", opt.PrepTrials)
	for _, r := range rs {
		fmt.Fprintf(w, "\n%s: target %v, reference P=%.4f, ε-band [%.4f, %.4f]\n",
			r.Dataset, r.Target, r.RefP, r.Band[0], r.Band[1])
		for _, p := range r.Points {
			mark := " "
			if !p.InCandidates {
				mark = "∅" // target missed by the candidate set
			}
			fmt.Fprintf(w, "  prep=%4d  P̂=%.4f %s\n", p.PrepTrials, p.P, mark)
		}
	}
	return nil
}

// PrintMemory renders Fig. 13.
func PrintMemory(w io.Writer, opt Options) error {
	cells, err := RunMemory(opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 13: memory consumption (graph size + method peak working set)")
	fmt.Fprintf(w, "%-10s %-8s %14s %16s\n", "dataset", "method", "graph", "method peak")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-8s %14s %16s\n", c.Dataset, c.Method,
			fmtBytes(c.GraphBytes), fmtBytes(c.PeakExtraBytes))
	}
	return nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
