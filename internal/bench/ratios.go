package bench

import (
	"fmt"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// RatioMatrix is Fig. 6: the grid of trial-number ratios N_kl/N_op
// computed by Equation 8 at S_i = 1, over combinations of the MPMB
// probability μ = P(B_i) (rows) and the existence probability Pr[E(B_i)]
// (columns).
type RatioMatrix struct {
	Mus      []float64
	PrExists []float64
	// Values[i][j] = KLOpRatio(PrExists[j], 1, Mus[i]).
	Values [][]float64
}

// RunRatioMatrix reproduces Fig. 6 with the paper's S_i = 1 convention.
func RunRatioMatrix() *RatioMatrix {
	m := &RatioMatrix{
		Mus:      []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5},
		PrExists: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
	}
	m.Values = make([][]float64, len(m.Mus))
	for i, mu := range m.Mus {
		row := make([]float64, len(m.PrExists))
		for j, pe := range m.PrExists {
			row[j] = core.KLOpRatio(pe, 1, mu)
		}
		m.Values[i] = row
	}
	return m
}

// TrialRatioResult is Fig. 10 for one dataset: the per-candidate trial
// ratio N_kl/N_op (Equation 8 at μ = 0.1, the paper's setting for this
// figure) against the balance line 1/|C_MB| (Equation 9).
type TrialRatioResult struct {
	Dataset    string
	Candidates int
	// Ratios holds one Equation 8 value per candidate, in candidate
	// (weight-descending) order.
	Ratios []float64
	// Balance is the red line 1/|C_MB|.
	Balance float64
	// AboveBalance counts candidates whose ratio exceeds Balance — the
	// cases where the optimized estimator wins.
	AboveBalance int
	// MeanRatio is the average of Ratios.
	MeanRatio float64
}

// RunTrialRatios reproduces Fig. 10 on every selected dataset.
func RunTrialRatios(opt Options) ([]TrialRatioResult, error) {
	ds, err := loadDatasets(opt)
	if err != nil {
		return nil, err
	}
	const mu = 0.1 // the figure's stated setting
	var out []TrialRatioResult
	for _, d := range ds {
		cands, err := core.PrepareCandidates(d.G, opt.PrepTrials, opt.Seed, core.OSOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: preparing %s: %w", d.Name, err)
		}
		r := TrialRatioResult{Dataset: d.Name, Candidates: cands.Len()}
		if cands.Len() == 0 {
			out = append(out, r)
			continue
		}
		r.Balance = 1 / float64(cands.Len())
		sum := 0.0
		for i := 0; i < cands.Len(); i++ {
			ratio := core.KLOpRatio(cands.List[i].ExistProb, cands.SI(i), mu)
			r.Ratios = append(r.Ratios, ratio)
			sum += ratio
			if ratio > r.Balance {
				r.AboveBalance++
			}
		}
		r.MeanRatio = sum / float64(cands.Len())
		out = append(out, r)
	}
	return out, nil
}

// Quantiles returns the q-quantiles of the ratio series (for compact
// reporting of large candidate sets).
func (r *TrialRatioResult) Quantiles(qs ...float64) []float64 {
	if len(r.Ratios) == 0 {
		return make([]float64, len(qs))
	}
	sorted := append([]float64(nil), r.Ratios...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(len(sorted)-1))
		out[i] = sorted[idx]
	}
	return out
}
