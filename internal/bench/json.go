package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ExportJSON runs the selected experiments and writes one indented JSON
// document containing their structured results, for plotting pipelines
// that want the figures' data rather than the text tables. Durations are
// serialized in nanoseconds (Go's time.Duration encoding).
//
// Experiment names follow mpmb-bench: table3, table4, fig6..fig13,
// ablation. An empty selection means all of them.
func ExportJSON(w io.Writer, opt Options, experiments []string) error {
	want := make(map[string]bool, len(experiments))
	for _, e := range experiments {
		want[e] = true
	}
	all := len(want) == 0
	include := func(name string) bool { return all || want[name] }
	known := map[string]bool{
		"table3": true, "table4": true, "fig6": true, "fig7": true,
		"fig8": true, "fig9": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "ablation": true, "conformance": true,
	}
	for e := range want {
		if !known[e] {
			return fmt.Errorf("bench: unknown experiment %q", e)
		}
	}

	report := struct {
		GeneratedAt  time.Time      `json:"generated_at"`
		SampleTrials int            `json:"sample_trials"`
		PrepTrials   int            `json:"prep_trials"`
		Seed         uint64         `json:"seed"`
		Scale        float64        `json:"scale"`
		Mu           float64        `json:"mu"`
		Datasets     []string       `json:"datasets"`
		Results      map[string]any `json:"results"`
	}{
		GeneratedAt:  time.Now().UTC(),
		SampleTrials: opt.SampleTrials,
		PrepTrials:   opt.PrepTrials,
		Seed:         opt.Seed,
		Scale:        opt.Scale,
		Mu:           opt.Mu,
		Datasets:     opt.Datasets,
		Results:      make(map[string]any),
	}

	if include("table3") {
		rows, err := Table3(opt)
		if err != nil {
			return err
		}
		report.Results["table3"] = rows
	}
	if include("table4") {
		report.Results["table4"] = Table4(opt)
	}
	if include("fig6") {
		report.Results["fig6"] = RunRatioMatrix()
	}
	if include("fig7") {
		res, err := RunOverall(opt)
		if err != nil {
			return err
		}
		report.Results["fig7"] = map[string]any{
			"cells":    res.Cells,
			"speedups": res.Speedups(),
		}
	}
	if include("fig8") {
		pts, err := RunPhaseSweep(opt)
		if err != nil {
			return err
		}
		report.Results["fig8"] = pts
	}
	if include("fig9") {
		pts, err := RunScalability(opt)
		if err != nil {
			return err
		}
		report.Results["fig9"] = pts
	}
	if include("fig10") {
		rs, err := RunTrialRatios(opt)
		if err != nil {
			return err
		}
		report.Results["fig10"] = rs
	}
	if include("fig11") {
		rs, err := RunSamplingConvergence(opt)
		if err != nil {
			return err
		}
		report.Results["fig11"] = rs
	}
	if include("fig12") {
		rs, err := RunPreparingTrend(opt)
		if err != nil {
			return err
		}
		report.Results["fig12"] = rs
	}
	if include("fig13") {
		cells, err := RunMemory(opt)
		if err != nil {
			return err
		}
		report.Results["fig13"] = cells
	}
	if include("ablation") {
		cells, err := RunAblations(opt)
		if err != nil {
			return err
		}
		report.Results["ablation"] = cells
	}
	if include("conformance") {
		rep, err := RunConformance(opt)
		if err != nil {
			return err
		}
		report.Results["conformance"] = rep
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
