package dist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/chaos"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// chaosSeed resolves the fault-schedule seed. MPMB_CHAOS_SEED overrides
// the pinned default, so a failed soak reproduces exactly from the seed
// its run reported.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	if v := os.Getenv("MPMB_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("MPMB_CHAOS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 20250808
}

// reportSeed appends the failing subtest's schedule seed to the file
// named by MPMB_CHAOS_SEED_OUT, so CI can attach it as an artifact and a
// developer can replay the exact fault sequence.
func reportSeed(t *testing.T, seed uint64) {
	t.Helper()
	path := os.Getenv("MPMB_CHAOS_SEED_OUT")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("recording chaos seed: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s MPMB_CHAOS_SEED=%d\n", t.Name(), seed)
}

// chaosFleet stands up n workers whose every coordinator exchange passes
// through its own fault-injecting chaos transport, with a fast retry
// schedule so exhaustion (and the park/reconnect loop behind it) happens
// within test time. Returns the transports for vacuity checks.
func chaosFleet(t *testing.T, coord *Coordinator, n int, mk func(i int) chaos.Schedule) []*chaos.Transport {
	t.Helper()
	hs := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	cts := make([]*chaos.Transport, n)
	for i := 0; i < n; i++ {
		ct := chaos.NewTransport(mk(i))
		cts[i] = ct
		w := &Worker{
			Base:   hs.URL,
			Name:   fmt.Sprintf("c%d", i),
			Pool:   1,
			Client: &http.Client{Transport: ct, Timeout: 30 * time.Second},
			Transport: &Transport{
				RequestTimeout: 2 * time.Second,
				BaseDelay:      2 * time.Millisecond,
				MaxDelay:       20 * time.Millisecond,
				Seed:           uint64(i + 1),
			},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("chaos worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		hs.Close()
	})
	return cts
}

// chaosFaults are the five injected fault classes of the soak matrix.
// Each is nasty in a different way: latency stresses timeouts, dropped
// requests stress the retry loop, dropped responses stress idempotency
// (the server applied the request, the client must safely retransmit),
// 5xx stresses transient-status classification, and the partition
// stresses the park/reconnect loop.
var chaosFaults = []struct {
	name string
	mk   func(seed uint64) chaos.Schedule
}{
	{"latency", func(seed uint64) chaos.Schedule {
		return chaos.Schedule{Seed: seed, LatencyP: 0.5, LatencyMin: time.Millisecond, LatencyMax: 10 * time.Millisecond}
	}},
	{"drop-request", func(seed uint64) chaos.Schedule {
		return chaos.Schedule{Seed: seed, DropRequestP: 0.3}
	}},
	{"drop-response", func(seed uint64) chaos.Schedule {
		return chaos.Schedule{Seed: seed, DropResponseP: 0.3}
	}},
	{"err5xx", func(seed uint64) chaos.Schedule {
		return chaos.Schedule{Seed: seed, Err5xxP: 0.4}
	}},
	{"partition", func(seed uint64) chaos.Schedule {
		// From the transport's very first request, so even a fast run
		// provably crosses the window.
		return chaos.Schedule{Seed: seed, Partitions: []chaos.Window{{From: 0, Until: 150 * time.Millisecond}}}
	}},
}

// TestChaosMatrixBitIdentical is the network-chaos acceptance bar: every
// fault class crossed with every executor-capable method must still end
// in a Result bit-identical to the sequential run. -short trims the
// matrix to one method (the CI smoke job); the full matrix is the
// nightly soak.
func TestChaosMatrixBitIdentical(t *testing.T) {
	seed := chaosSeed(t)
	g := meshGraph(t)
	methods := distMethods
	if testing.Short() {
		methods = []mpmb.Method{mpmb.MethodOLS}
	}
	for _, method := range methods {
		seq, err := mpmb.Search(g, baseOptions(method))
		if err != nil {
			t.Fatalf("%s sequential: %v", method, err)
		}
		for fi, f := range chaosFaults {
			fi := fi
			f := f
			t.Run(fmt.Sprintf("%s/%s", f.name, method), func(t *testing.T) {
				t.Cleanup(func() {
					if t.Failed() {
						reportSeed(t, seed)
					}
				})
				coord := NewCoordinator()
				coord.LeaseUnits = 64
				// Short TTL: a lease granted whose grant reply was lost is
				// held by nobody and must reissue within test time.
				coord.LeaseTTL = 400 * time.Millisecond
				cts := chaosFleet(t, coord, 2, func(i int) chaos.Schedule {
					return f.mk(seed + uint64(fi*100+i))
				})
				opt := baseOptions(method)
				opt.Executor = &Executor{C: coord}
				got, err := mpmb.Search(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				var st chaos.Stats
				for _, ct := range cts {
					s := ct.Stats()
					st.Requests += s.Requests
					st.Delayed += s.Delayed
					st.DroppedRequests += s.DroppedRequests
					st.DroppedResponses += s.DroppedResponses
					st.Synth5xx += s.Synth5xx
					st.PartitionDrops += s.PartitionDrops
				}
				injected := st.Delayed + st.DroppedRequests + st.DroppedResponses + st.Synth5xx + st.PartitionDrops
				if injected == 0 {
					t.Fatalf("schedule %q injected nothing over %d requests; test is vacuous", f.name, st.Requests)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("Result under %s chaos diverges from sequential (%+v injected)\n got: %+v\nwant: %+v",
						f.name, st, got, seq)
				}
			})
		}
	}
}

// TestChaosPartitionReconnects partitions a mid-run fleet long enough
// that the worker's transport budget exhausts and it parks: the healed
// partition must end the parking spell (counted as a reconnect in the
// worker's telemetry) and the run must still finish bit-identical.
func TestChaosPartitionReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("partition soak")
	}
	seed := chaosSeed(t)
	t.Cleanup(func() {
		if t.Failed() {
			reportSeed(t, seed)
		}
	})
	g := meshGraph(t)
	opt := baseOptions(mpmb.MethodOS)
	opt.Trials = 60000 // long enough that the partition window lands mid-run
	seq, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator()
	coord.LeaseUnits = 2048
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()
	ct := chaos.NewTransport(chaos.Schedule{
		Seed:       seed,
		Partitions: []chaos.Window{{From: 30 * time.Millisecond, Until: 700 * time.Millisecond}},
	})
	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{
		Base:   hs.URL,
		Name:   "flaky",
		Pool:   1,
		Reg:    reg,
		Client: &http.Client{Transport: ct, Timeout: 30 * time.Second},
		// A tight budget so the partition exhausts it quickly and the
		// worker spends the window parked, not retrying.
		Transport: &Transport{
			RequestTimeout: time.Second,
			MaxAttempts:    2,
			BaseDelay:      time.Millisecond,
			MaxDelay:       4 * time.Millisecond,
			Seed:           1,
		},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	defer func() { cancel(); wg.Wait() }()

	dopt := baseOptions(mpmb.MethodOS)
	dopt.Trials = opt.Trials
	dopt.Executor = &Executor{C: coord}
	got, err := mpmb.Search(g, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if st := ct.Stats(); st.PartitionDrops == 0 {
		t.Fatalf("partition never bit (%d requests); test is vacuous", st.Requests)
	}
	if m := reg.Snapshot(); m.DistReconnects < 1 {
		t.Fatalf("worker recorded no reconnects after the healed partition: %+v", m)
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("Result across a partition diverges from sequential\n got: %+v\nwant: %+v", got, seq)
	}
}
