package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// TestChaosWorkerDeathMidLease kills a worker while it holds a lease and
// forces the TTL-expiry path (MaxGrants 1 disables stealing, so only
// expiry can reissue the abandoned range). The survivor must finish the
// run with a bit-identical Result and exact terminal counters — the
// abandoned lease is recomputed, never lost, never double-counted.
func TestChaosWorkerDeathMidLease(t *testing.T) {
	g := meshGraph(t)
	opt := baseOptions(mpmb.MethodOS)
	obs := mpmb.NewObserver(mpmb.ObserverConfig{})
	opt.Observer = obs
	seq, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	obs.Close()

	coord := NewCoordinator()
	coord.LeaseUnits = 64
	coord.LeaseTTL = 100 * time.Millisecond
	coord.MaxGrants = 1 // no stealing: death recovery must go through expiry
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	// The victim dies the moment its first lease is granted, abandoning it.
	victim := &Worker{Base: hs.URL, Name: "victim", Pool: 1,
		testFaults: &workerFaults{dieAfterLeases: 1}}
	// The survivor starts only after the victim is dead, so the victim's
	// range is provably held by a dead worker while the survivor works.
	survivor := &Worker{Base: hs.URL, Name: "survivor", Pool: 1}
	wg.Add(1)
	go func() {
		defer wg.Done()
		victim.Run(ctx)
		survivor.Run(ctx)
	}()
	defer func() { cancel(); wg.Wait() }()

	dopt := baseOptions(mpmb.MethodOS)
	dobs := mpmb.NewObserver(mpmb.ObserverConfig{})
	dopt.Observer = dobs
	dopt.Executor = &Executor{C: coord}
	got, err := mpmb.Search(g, dopt)
	if err != nil {
		t.Fatal(err)
	}
	dobs.Close()

	if !reflect.DeepEqual(got.TopK(10), seq.TopK(10)) {
		t.Fatalf("post-death Result diverges\n got: %+v\nwant: %+v", got.TopK(10), seq.TopK(10))
	}
	// Exact trial accounting: the abandoned range ran exactly once in the
	// merged prefix.
	if got.Metrics.Trials != seq.Metrics.Trials {
		t.Fatalf("Trials = %d, want %d (lost or double-counted range)", got.Metrics.Trials, seq.Metrics.Trials)
	}
	if got.Metrics.TrialHits != seq.Metrics.TrialHits {
		t.Fatalf("TrialHits = %d, want %d", got.Metrics.TrialHits, seq.Metrics.TrialHits)
	}
}

// TestChaosDroppedCompleteRecovers drops a completion message in flight.
// The range's lease stays outstanding, so the worker itself re-acquires
// it through straggler stealing and recomputes it; the run still ends
// bit-identical.
func TestChaosDroppedCompleteRecovers(t *testing.T) {
	g := meshGraph(t)
	seq, err := mpmb.Search(g, baseOptions(mpmb.MethodOLS))
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator()
	coord.LeaseUnits = 64
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var dropped atomic.Int32
	w := &Worker{Base: hs.URL, Name: "lossy", Pool: 1, testFaults: &workerFaults{
		// Drop the very first completion; deliver everything after.
		interceptComplete: func(*LeaseComplete) bool { return dropped.Add(1) != 1 },
	}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); w.Run(ctx) }()
	defer func() { cancel(); wg.Wait() }()

	opt := baseOptions(mpmb.MethodOLS)
	opt.Executor = &Executor{C: coord}
	got, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Load() < 2 {
		t.Fatal("fault seam never dropped a completion; test is vacuous")
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("post-drop Result diverges from sequential\n got: %+v\nwant: %+v", got, seq)
	}
}

// executeRange mimics a worker's execution of one leased range without
// HTTP: a fresh per-range registry, the LocalExecutor on the sub-range,
// and the terminal snapshot as the counter delta.
func executeRange(t *testing.T, job *core.ExecJob, lo, hi int) *LeaseComplete {
	t.Helper()
	reg := telemetry.NewRegistry()
	sub := &core.ExecJob{
		Kind:    job.Kind,
		Graph:   job.Graph,
		Cands:   job.Cands,
		Seed:    job.Seed,
		Units:   hi,
		Start:   lo - 1,
		OS:      job.OS,
		KL:      job.KL,
		Probe:   &telemetry.Probe{Reg: reg, Method: job.Spec.Method},
		Workers: 1,
	}
	res, err := (&core.LocalExecutor{Workers: 1}).ExecuteTrials(sub)
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Snapshot()
	return &LeaseComplete{
		V: Version, Worker: "replay", Lo: lo, Hi: hi,
		Payload: RangePayload{Counts: res.CountsSnapshot()},
		Counters: Counters{
			Trials: m.Trials, TrialHits: m.TrialHits,
			EdgesScanned: m.EdgesScanned, EdgesPruned: m.EdgesPruned,
			CandScanned: m.CandScanned, CandPruned: m.CandPruned,
		},
	}
}

// countMap folds a ButterflyCount slice into a map for order-insensitive
// but value-exact comparison.
func countMap(counts []core.ButterflyCount) map[mpmb.Butterfly][2]float64 {
	m := make(map[mpmb.Butterfly][2]float64, len(counts))
	for _, e := range counts {
		m[e.B] = [2]float64{float64(e.Count), e.Weight}
	}
	return m
}

// TestChaosReorderedAndDuplicatedCompletes drives the coordinator's
// merge directly: every range's completion is delivered in REVERSE
// order, then every message is delivered AGAIN. The merge must be
// idempotent (duplicates acked with Accepted=false) and order-blind
// (the collected aggregate equals a straight local run).
func TestChaosReorderedAndDuplicatedCompletes(t *testing.T) {
	g := meshGraph(t)
	const units = 160
	mk := func() *core.ExecJob {
		return &core.ExecJob{
			Kind: core.ExecOS, Graph: g, Seed: 7, Units: units, Start: 0,
			Spec: core.ExecSpec{Method: "os", Seed: 7, Trials: units},
		}
	}
	want, err := (&core.LocalExecutor{Workers: 1}).ExecuteTrials(mk())
	if err != nil {
		t.Fatal(err)
	}

	coord := NewCoordinator()
	coord.LeaseUnits = 32
	coord.MaxGrants = 1 // no stealing: each range is granted exactly once
	job := mk()
	id, done, err := coord.register(job)
	if err != nil {
		t.Fatal(err)
	}
	// Drain every fresh lease up front.
	var msgs []*LeaseComplete
	for {
		rep := coord.grant("replay")
		if rep.Status != LeaseGranted {
			break
		}
		msg := executeRange(t, job, rep.Lo, rep.Hi)
		msg.Job, msg.Lease = id, rep.Lease
		msgs = append(msgs, msg)
	}
	if len(msgs) != (units+31)/32 {
		t.Fatalf("granted %d leases, want %d", len(msgs), (units+31)/32)
	}

	// Deliver in reverse: nothing merges until the first range lands.
	for i := len(msgs) - 1; i >= 0; i-- {
		rep, err := coord.complete(msgs[i])
		if err != nil {
			t.Fatalf("complete %d..%d: %v", msgs[i].Lo, msgs[i].Hi, err)
		}
		if !rep.Accepted {
			t.Fatalf("first delivery of %d..%d not accepted", msgs[i].Lo, msgs[i].Hi)
		}
	}
	select {
	case <-done:
	default:
		t.Fatal("all ranges delivered but the job did not complete")
	}
	// Deliver everything again: every duplicate must be refused.
	for _, msg := range msgs {
		rep, err := coord.complete(msg)
		if err != nil {
			t.Fatalf("duplicate %d..%d: %v", msg.Lo, msg.Hi, err)
		}
		if rep.Accepted {
			t.Fatalf("duplicate of %d..%d was accepted: double merge", msg.Lo, msg.Hi)
		}
		if !rep.JobDone {
			t.Fatalf("duplicate ack of a finished job did not say JobDone")
		}
	}

	got, err := coord.collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Done != units {
		t.Fatalf("Done = %d, want %d", got.Done, units)
	}
	if !reflect.DeepEqual(countMap(got.Counts), countMap(want.CountsSnapshot())) {
		t.Fatalf("reordered+duplicated merge diverges from local run\n got: %v\nwant: %v",
			got.Counts, want.CountsSnapshot())
	}
}

// TestChaosLateCompletionOfReissuedLease exercises the raciest protocol
// corner: a lease expires, the range is reissued and completed by the
// new holder, and THEN the original holder's late completion arrives.
// The late message must be refused as a duplicate without disturbing the
// merged state.
func TestChaosLateCompletionOfReissuedLease(t *testing.T) {
	g := meshGraph(t)
	const units = 64
	job := &core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 3, Units: units, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 3, Trials: units},
	}
	coord := NewCoordinator()
	coord.LeaseUnits = 32
	coord.LeaseTTL = time.Nanosecond // every lease is instantly expirable
	id, _, err := coord.register(job)
	if err != nil {
		t.Fatal(err)
	}
	first := coord.grant("slow")
	if first.Status != LeaseGranted {
		t.Fatalf("no lease granted: %+v", first)
	}
	// TTL passes; the same range is reissued to a faster worker.
	time.Sleep(time.Millisecond)
	second := coord.grant("fast")
	if second.Status != LeaseGranted || second.Lo != first.Lo || second.Hi != first.Hi {
		t.Fatalf("expired range not reissued: first %d..%d, second %+v", first.Lo, first.Hi, second)
	}
	msg := executeRange(t, job, second.Lo, second.Hi)
	msg.Job, msg.Lease = id, second.Lease
	if rep, err := coord.complete(msg); err != nil || !rep.Accepted {
		t.Fatalf("fast completion refused: %+v, %v", rep, err)
	}
	// The slow worker's identical-range completion limps in afterwards.
	late := executeRange(t, job, first.Lo, first.Hi)
	late.Job, late.Lease = id, first.Lease
	rep, err := coord.complete(late)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("late completion of a reissued lease was double-merged")
	}
	res, err := coord.collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != first.Hi {
		t.Fatalf("prefix = %d, want %d", res.Done, first.Hi)
	}
}

// TestChaosMalformedCompletesRejected sends structurally plausible but
// arithmetically impossible completions; all must be refused with typed
// errors and leave the merge untouched.
func TestChaosMalformedCompletesRejected(t *testing.T) {
	g := meshGraph(t)
	job := &core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 3, Units: 100, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 3, Trials: 100},
	}
	coord := NewCoordinator()
	coord.LeaseUnits = 32
	id, _, err := coord.register(job)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name   string
		lo, hi int
	}{
		{"misaligned lo", 2, 33},
		{"short range", 1, 16},
		{"long range", 1, 64},
		{"past units", 97, 128},
		{"clip ignored", 97, 100 + 1},
	}
	for _, tc := range bad {
		msg := &LeaseComplete{V: Version, Job: id, Lo: tc.lo, Hi: tc.hi}
		if _, err := coord.complete(msg); err == nil {
			t.Errorf("%s (%d..%d): accepted", tc.name, tc.lo, tc.hi)
		}
	}
	// The one legal clipped tail range is 97..100.
	msg := executeRange(t, job, 97, 100)
	msg.Job = id
	if rep, err := coord.complete(msg); err != nil || !rep.Accepted {
		t.Fatalf("legal tail range refused: %+v, %v", rep, err)
	}
	res, err := coord.collect(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 0 {
		t.Fatalf("prefix moved to %d on an out-of-order tail; want 0", res.Done)
	}
	_ = fmt.Sprintf
}
