package dist

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// journalTestJob is the shared fixture: an OS job of 160 units split
// into 32-unit leases (5 spans).
func journalTestJob(t *testing.T) *core.ExecJob {
	g := meshGraph(t)
	return &core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 7, Units: 160, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 7, Trials: 160},
	}
}

// noSleep is a retry policy that never actually waits.
func noSleep() core.RetryPolicy {
	return core.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond, Sleep: func(time.Duration) {}}
}

// TestJournalReplayResumesRun is the crash-recovery bar in-process: a
// journaling coordinator grants every span and accepts a non-contiguous
// subset of completions, then "crashes" (is dropped); a fresh
// coordinator over the same journal directory, registering the identical
// job, must resume with the merged prefix intact, reissue exactly the
// uncompleted spans, absorb a stale duplicate from the dead epoch, and
// finish with an aggregate equal to a straight local run.
func TestJournalReplayResumesRun(t *testing.T) {
	dir := t.TempDir()
	job1 := journalTestJob(t)
	want, err := (&core.LocalExecutor{Workers: 1}).ExecuteTrials(journalTestJob(t))
	if err != nil {
		t.Fatal(err)
	}

	jl := &Journal{Dir: dir, Retry: noSleep()}
	epoch1 := NewCoordinator()
	epoch1.LeaseUnits = 32
	epoch1.MaxGrants = 1
	epoch1.Journal = jl
	id1, _, err := epoch1.register(job1)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []*LeaseComplete
	for {
		rep := epoch1.grant("doomed")
		if rep.Status != LeaseGranted {
			break
		}
		msg := executeRange(t, job1, rep.Lo, rep.Hi)
		msg.Job, msg.Lease = id1, rep.Lease
		msgs = append(msgs, msg)
	}
	if len(msgs) != 5 {
		t.Fatalf("granted %d spans, want 5", len(msgs))
	}
	// Complete spans 1..32 and 65..96 only: the prefix advances to 32,
	// 65..96 stays pending behind the 33..64 hole.
	for _, i := range []int{0, 2} {
		if rep, err := epoch1.complete(msgs[i]); err != nil || !rep.Accepted {
			t.Fatalf("completing %d..%d: %+v, %v", msgs[i].Lo, msgs[i].Hi, rep, err)
		}
	}
	if p := epoch1.prefix(id1); p != 32 {
		t.Fatalf("epoch-1 prefix = %d, want 32", p)
	}
	// epoch1 is never collected: the process died here.

	job2 := journalTestJob(t)
	epoch2 := NewCoordinator()
	epoch2.LeaseUnits = 32
	epoch2.MaxGrants = 1
	epoch2.Journal = jl
	id2, done, err := epoch2.register(job2)
	if err != nil {
		t.Fatal(err)
	}
	if p := epoch2.prefix(id2); p != 32 {
		t.Fatalf("replayed prefix = %d, want 32 (journaled completions lost)", p)
	}

	// The dead epoch's grants were journaled up to unit 160, so the
	// successor reissues exactly the three uncompleted spans — starting
	// with the hole that gates the merge — and grants nothing fresh.
	var regranted []int
	for {
		rep := epoch2.grant("successor")
		if rep.Status != LeaseGranted {
			break
		}
		regranted = append(regranted, rep.Lo)
		msg := executeRange(t, job2, rep.Lo, rep.Hi)
		msg.Job, msg.Lease = id2, rep.Lease
		if ack, err := epoch2.complete(msg); err != nil || !ack.Accepted {
			t.Fatalf("completing reissued %d..%d: %+v, %v", rep.Lo, rep.Hi, ack, err)
		}
	}
	if !reflect.DeepEqual(regranted, []int{33, 97, 129}) {
		t.Fatalf("reissued spans %v, want [33 97 129]", regranted)
	}
	select {
	case <-done:
	default:
		t.Fatal("all spans merged but the replayed job did not complete")
	}

	// A stale completion from the dead epoch limps in: same span, old
	// lease id. It must be absorbed as a duplicate, not double-merged.
	stale := msgs[0]
	stale.Job = id2
	if ack, err := epoch2.complete(stale); err != nil || ack.Accepted || !ack.JobDone {
		t.Fatalf("stale duplicate ack = %+v, %v; want refused on a done job", ack, err)
	}

	got, err := epoch2.collect(id2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Done != 160 {
		t.Fatalf("Done = %d, want 160", got.Done)
	}
	if !reflect.DeepEqual(countMap(got.Counts), countMap(want.CountsSnapshot())) {
		t.Fatalf("replayed aggregate diverges from local run\n got: %v\nwant: %v", got.Counts, want.CountsSnapshot())
	}
}

// flakyJournalFS wraps the real journal FS, failing CreateTemp calls:
// the first `failures` matching calls when failures > 0, or every
// matching call when failures < 0 (until healed).
type flakyJournalFS struct {
	mu       sync.Mutex
	failures int    // matching CreateTemp failures left (-1 = unbounded)
	match    string // only patterns containing this substring fail ("" = all)
	injected int
}

func (f *flakyJournalFS) CreateTemp(dir, pattern string) (core.CheckpointFile, error) {
	f.mu.Lock()
	bite := f.failures != 0 && (f.match == "" || strings.Contains(pattern, f.match))
	if bite {
		if f.failures > 0 {
			f.failures--
		}
		f.injected++
	}
	f.mu.Unlock()
	if bite {
		return nil, errors.New("flaky volume: EIO")
	}
	return osJournalFS.CreateTemp(dir, pattern)
}

func (f *flakyJournalFS) Rename(o, n string) error { return osJournalFS.Rename(o, n) }

func (f *flakyJournalFS) Remove(n string) error { return osJournalFS.Remove(n) }

func (f *flakyJournalFS) Open(n string) (io.ReadCloser, error) { return osJournalFS.Open(n) }

func (f *flakyJournalFS) bites() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func (f *flakyJournalFS) heal() {
	f.mu.Lock()
	f.failures = 0
	f.mu.Unlock()
}

// TestJournalFlakyFSRetries drives the journal through a volume that
// fails its first two writes outright: the retry policy must absorb the
// flakiness invisibly — registration and completion succeed — and the
// records written through the retries must replay in a successor.
func TestJournalFlakyFSRetries(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyJournalFS{failures: 2}
	jl := &Journal{Dir: dir, FS: fs, Retry: noSleep()}
	coord := NewCoordinator()
	coord.LeaseUnits = 32
	coord.MaxGrants = 1
	coord.Journal = jl
	job := journalTestJob(t)
	id, _, err := coord.register(job)
	if err != nil {
		t.Fatalf("register through a flaky volume: %v", err)
	}
	rep := coord.grant("w")
	if rep.Status != LeaseGranted {
		t.Fatalf("no lease: %+v", rep)
	}
	msg := executeRange(t, job, rep.Lo, rep.Hi)
	msg.Job, msg.Lease = id, rep.Lease
	if ack, err := coord.complete(msg); err != nil || !ack.Accepted {
		t.Fatalf("complete through a flaky volume: %+v, %v", ack, err)
	}
	if fs.bites() == 0 {
		t.Fatal("flaky FS injected nothing; test is vacuous")
	}
	if p := coord.prefix(id); p != rep.Hi {
		t.Fatalf("prefix = %d, want %d", p, rep.Hi)
	}

	coord2 := NewCoordinator()
	coord2.LeaseUnits = 32
	coord2.Journal = &Journal{Dir: dir, Retry: noSleep()}
	id2, _, err := coord2.register(journalTestJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if p := coord2.prefix(id2); p != rep.Hi {
		t.Fatalf("replayed prefix = %d, want %d", p, rep.Hi)
	}
}

// TestJournalExhaustedWriteLeavesLeaseIntact pins the write-ahead
// contract: when the completion record cannot be persisted at all,
// complete() must fail with the typed exhaustion error and leave BOTH
// the merge prefix and the lease untouched — the span is still covered
// by its TTL, so a healed volume resumes with no lost work.
func TestJournalExhaustedWriteLeavesLeaseIntact(t *testing.T) {
	dir := t.TempDir()
	fs := &flakyJournalFS{failures: -1, match: "complete-"} // completion records never land
	jl := &Journal{Dir: dir, FS: fs, Retry: core.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond, Sleep: func(time.Duration) {}}}
	coord := NewCoordinator()
	coord.LeaseUnits = 32
	coord.MaxGrants = 1
	coord.Journal = jl
	job := journalTestJob(t)
	id, _, err := coord.register(job)
	if err != nil {
		t.Fatal(err) // spec/grant records are unaffected by the match
	}
	rep := coord.grant("w")
	if rep.Status != LeaseGranted {
		t.Fatalf("no lease: %+v", rep)
	}
	msg := executeRange(t, job, rep.Lo, rep.Hi)
	msg.Job, msg.Lease = id, rep.Lease

	_, err = coord.complete(msg)
	if err == nil {
		t.Fatal("complete succeeded with an unwritable journal")
	}
	if !errors.Is(err, core.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want the checkpoint-store exhaustion error", err)
	}
	if p := coord.prefix(id); p != 0 {
		t.Fatalf("prefix advanced to %d past a failed write-ahead", p)
	}
	coord.mu.Lock()
	outstanding := len(coord.jobs[id].leases)
	coord.mu.Unlock()
	if outstanding != 1 {
		t.Fatalf("%d leases outstanding after the failed write, want 1 (TTL must still cover the span)", outstanding)
	}

	// The volume heals; the worker's retransmission now lands and merges.
	fs.heal()
	ack, err := coord.complete(msg)
	if err != nil || !ack.Accepted {
		t.Fatalf("retransmission after heal: %+v, %v", ack, err)
	}
	if p := coord.prefix(id); p != rep.Hi {
		t.Fatalf("prefix = %d after heal, want %d", p, rep.Hi)
	}
}
