package dist

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTransportStalledListenerBounded is the satellite acceptance test
// for the hung-coordinator case: a listener that accepts connections and
// never answers must cost the worker exactly its per-attempt timeouts,
// not an unbounded hang, and surface the typed exhaustion error.
func TestTransportStalledListenerBounded(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var conns []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			// Accept and go silent: the request is read by nobody.
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()

	tr := &Transport{
		RequestTimeout: 50 * time.Millisecond,
		MaxAttempts:    2,
		BaseDelay:      time.Millisecond,
		Sleep:          func(time.Duration) {},
	}
	start := time.Now()
	var rep LeaseReply
	err = tr.postJSON(context.Background(), "lease", "http://"+ln.Addr().String()+"/dist/v1/lease",
		&LeaseRequest{V: Version, Worker: "stalled"}, &rep)
	if !errors.Is(err, ErrTransportExhausted) {
		t.Fatalf("err = %v, want ErrTransportExhausted", err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T, want *TransportError", err)
	}
	if te.Op != "lease" || te.Attempts != 2 || te.Last == nil {
		t.Fatalf("TransportError = %+v, want op lease after 2 attempts with a cause", te)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("two 50ms attempts took %v; the per-attempt timeout is not bounding the exchange", elapsed)
	}
}

// TestWorkerDefaultClientBounded pins the last line of defense: the
// client a Worker falls back to when the caller supplies none must carry
// an overall timeout, so a hung socket can never block a worker forever
// even with the transport timeouts misconfigured away.
func TestWorkerDefaultClientBounded(t *testing.T) {
	if defaultWorkerClient.Timeout <= 0 {
		t.Fatal("defaultWorkerClient has no overall timeout")
	}
	w := &Worker{}
	if c := w.client(); c.Timeout <= 0 {
		t.Fatalf("Worker.client() timeout = %v, want > 0", c.Timeout)
	}
	// And the bound transport inherits it.
	if tr := w.transport(); tr.Client.Timeout <= 0 {
		t.Fatalf("bound transport client timeout = %v, want > 0", tr.Client.Timeout)
	}
}

// TestTransportRetriesTransient: 5xx replies are transient and must be
// retried until the attempt budget runs out — here two 503s then a 200,
// inside a budget of four.
func TestTransportRetriesTransient(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, &CompleteReply{V: Version, Accepted: true})
	}))
	defer hs.Close()

	var slept []time.Duration
	tr := &Transport{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	var rep CompleteReply
	if err := tr.postJSON(context.Background(), "complete", hs.URL, &LeaseComplete{V: Version}, &rep); err != nil {
		t.Fatalf("exchange failed despite a sufficient budget: %v", err)
	}
	if !rep.Accepted {
		t.Fatalf("reply = %+v, want the 200 body decoded", rep)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 503s + success)", got)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff sleeps, want 2", len(slept))
	}
}

// TestTransportFatal4xx: protocol errors (4xx other than 429) cannot be
// fixed by retrying and must surface immediately, without burning the
// budget.
func TestTransportFatal4xx(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer hs.Close()

	tr := &Transport{MaxAttempts: 4, BaseDelay: time.Millisecond, Sleep: func(time.Duration) {}}
	var rep CompleteReply
	err := tr.postJSON(context.Background(), "complete", hs.URL, &LeaseComplete{V: Version}, &rep)
	if err == nil {
		t.Fatal("404 exchange reported success")
	}
	if errors.Is(err, ErrTransportExhausted) {
		t.Fatalf("404 burned the retry budget: %v", err)
	}
	var se *statusError
	if !errors.As(err, &se) || se.code != http.StatusNotFound {
		t.Fatalf("err = %v, want the 404 statusError", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want exactly 1 (no retry of a protocol error)", got)
	}
}

// TestTransportBackoffDeterministic pins the seeded jitter: the same
// seed yields the same backoff sequence, a different seed a different
// one — a fleet behind one flaky switch must not retry in lockstep.
func TestTransportBackoffDeterministic(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		tr := &Transport{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: seed}
		var out []time.Duration
		for k := 0; k < 6; k++ {
			out = append(out, tr.backoff(k))
		}
		return out
	}
	a, b, c := seq(1), seq(1), seq(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, a[i], b[i])
		}
		lo := (10 * time.Millisecond) << uint(i)
		if lo > 80*time.Millisecond {
			lo = 80 * time.Millisecond
		}
		if a[i] < lo/2 || a[i] >= lo {
			t.Fatalf("backoff[%d] = %v outside [%v, %v)", i, a[i], lo/2, lo)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
