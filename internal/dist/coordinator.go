package dist

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Coordinator is the control plane of a distributed run: it owns the
// lease book of every registered job, grants ranges to workers, accepts
// (idempotently) their completions, and merges accepted ranges in prefix
// order. It executes no trials itself — a registered job makes no
// progress until at least one worker joins.
//
// Construct with NewCoordinator and mount Register's routes (or
// Handler()) on an HTTP server. All exported methods and the HTTP
// handlers are safe for concurrent use.
type Coordinator struct {
	// LeaseUnits is the fixed range width granted per lease (default
	// 256). Smaller leases spread short jobs across more workers and
	// shrink the recompute-on-death window; larger leases amortize the
	// per-lease candidate/kernel setup.
	LeaseUnits int
	// LeaseTTL is how long a granted lease may stay uncompleted before
	// the range is reissued to another worker (default 10s).
	LeaseTTL time.Duration
	// MaxGrants caps how many workers may hold the SAME range
	// concurrently via straggler stealing (default 2: the original
	// holder plus one thief).
	MaxGrants int
	// WaitHint is the poll delay handed to workers when nothing is
	// grantable (default 25ms).
	WaitHint time.Duration
	// Journal, when non-nil, write-ahead persists every job's lease
	// grants and accepted span completions; a restarted coordinator
	// registering the identical job replays the records and resumes the
	// run exactly where its predecessor crashed. See Journal.
	Journal *Journal

	// now is the clock, injectable by fault tests.
	now func() time.Time

	// lastWorker is the unixnano of the most recent worker HTTP
	// exchange — fleet liveness for the executor's degraded-mode
	// fallback. Only the HTTP handlers touch it: in-process fallback
	// traffic must not count as fleet contact.
	lastWorker atomic.Int64

	mu        sync.Mutex
	jobs      map[uint64]*distJob
	order     []uint64 // active job ids, registration order (grant fairness)
	nextJob   uint64
	nextLease uint64
}

// NewCoordinator returns a coordinator with default tuning.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		LeaseUnits: 256,
		LeaseTTL:   10 * time.Second,
		MaxGrants:  2,
		WaitHint:   25 * time.Millisecond,
		now:        time.Now,
		jobs:       make(map[uint64]*distJob),
	}
}

// span is one leased range of absolute 1-based trial units, inclusive.
type span struct{ lo, hi int }

// lease is one outstanding grant of a span to a worker.
type lease struct {
	id       uint64
	span     span
	worker   string
	deadline time.Time
}

// pendingRange is an accepted completion waiting for the merge prefix
// to reach it.
type pendingRange struct {
	span     span
	payload  RangePayload
	counters Counters
}

// countW is one butterfly's merged tally.
type countW struct {
	count  int64
	weight float64
}

// distJob is the lease book and merge state of one registered job.
type distJob struct {
	id    uint64
	spec  JobSpec
	job   *core.ExecJob
	graph []byte // binary graph served to workers

	nCands int // candidate vector width (ExecOptimized)

	nextLo    int               // next fresh range start
	freed     []span            // expired ranges awaiting regrant, sorted by lo
	leases    map[uint64]*lease // outstanding grants
	completed map[int]int       // accepted ranges: lo → hi
	pending   map[int]*pendingRange

	// prefix is the merged prefix in absolute units: trials
	// spec.Start+1..prefix are folded into the aggregate below, and
	// their counters are flushed to the job's probe. The aggregate is,
	// at every instant, bit-identical to a sequential run of exactly
	// that prefix.
	prefix     int
	osCounts   map[butterfly.Butterfly]countW
	candCounts []int64
	candProbs  []float64
	candTrials []int

	draining bool          // frontier frozen: no fresh grants, in-flight work may still land
	halted   bool          // no further grants (interrupted or collected)
	done     chan struct{} // closed when prefix == spec.Units

	// Journal bookkeeping (zero unless the coordinator journals).
	jdir    string       // this job's journal directory
	granted map[int]bool // spans with a persisted grant record, by lo
}

// register installs a job and returns its id and completion signal.
func (c *Coordinator) register(job *core.ExecJob) (uint64, chan struct{}, error) {
	if job.Spec.Method == "" {
		return 0, nil, fmt.Errorf("dist: job carries no ExecSpec run identity; distributed execution requires one")
	}
	var buf bytes.Buffer
	if err := bigraph.WriteBinary(&buf, job.Graph); err != nil {
		return 0, nil, fmt.Errorf("dist: encoding graph: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	id := c.nextJob
	j := &distJob{
		id:  id,
		job: job,
		spec: JobSpec{
			V:                Version,
			Job:              id,
			Kind:             uint8(job.Kind),
			Method:           job.Spec.Method,
			RunSeed:          job.Spec.Seed,
			PhaseSeed:        job.Seed,
			Units:            job.Units,
			Trials:           job.Spec.Trials,
			PrepTrials:       job.Spec.PrepTrials,
			Mu:               job.Spec.Mu,
			Start:            job.Start,
			KLBaseTrials:     job.KL.BaseTrials,
			KLMu:             job.KL.Mu,
			KLMaxTrials:      job.KL.MaxTrials,
			DisableEdgePrune: job.OS.DisableEdgePrune,
			KeepAllAngles:    job.OS.KeepAllAngles,
			DropA2:           job.OS.DropA2,
			GraphCRC:         job.Graph.Checksum(),
			LeaseUnits:       c.leaseUnits(),
		},
		graph:     buf.Bytes(),
		nextLo:    job.Start + 1,
		leases:    make(map[uint64]*lease),
		completed: make(map[int]int),
		pending:   make(map[int]*pendingRange),
		prefix:    job.Start,
		done:      make(chan struct{}),
	}
	switch job.Kind {
	case core.ExecOS:
		j.osCounts = make(map[butterfly.Butterfly]countW)
	case core.ExecOptimized:
		j.nCands = len(job.Cands.List)
		j.candCounts = make([]int64, j.nCands)
	case core.ExecKarpLuby:
		j.candProbs = make([]float64, job.Units)
		j.candTrials = make([]int, job.Units)
	default:
		return 0, nil, fmt.Errorf("dist: unknown job kind %v", job.Kind)
	}
	if c.Journal != nil {
		// Adopt any journal a crashed predecessor left for this exact
		// identity before the job is published: the merged prefix,
		// probe counters and grant frontier come back, and the crashed
		// epoch's uncompleted spans queue for immediate reissue.
		if err := c.adoptLocked(j); err != nil {
			return 0, nil, err
		}
	}
	c.jobs[id] = j
	c.order = append(c.order, id)
	return id, j.done, nil
}

// collect snapshots a job's merged prefix as a core.ExecResult and
// removes the job from the book. Late completions of removed jobs are
// acknowledged and dropped.
func (c *Coordinator) collect(id uint64) (*core.ExecResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return nil, fmt.Errorf("dist: job %d is not registered", id)
	}
	j.halted = true
	delete(c.jobs, id)
	for i, v := range c.order {
		if v == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if c.Journal != nil {
		c.Journal.discard(j.jdir)
	}
	res := &core.ExecResult{Done: j.prefix}
	switch j.job.Kind {
	case core.ExecOS:
		counts := make([]core.ButterflyCount, 0, len(j.osCounts))
		for b, cw := range j.osCounts {
			counts = append(counts, core.ButterflyCount{B: b, Count: cw.count, Weight: cw.weight})
		}
		sort.Slice(counts, func(x, y int) bool { return lessB(counts[x].B, counts[y].B) })
		res.Counts = counts
	case core.ExecOptimized:
		res.CandCounts = j.candCounts
	case core.ExecKarpLuby:
		res.CandProbs = j.candProbs
		res.CandTrials = j.candTrials
	}
	return res, nil
}

// drain freezes a job's fresh-range frontier. An interrupted executor
// calls this before collecting so no NEW work is granted, while expired
// ranges can still be reissued and outstanding ranges stolen: work a
// worker has already claimed is given the chance to land and merge,
// mirroring the local pool's contract that a claimed chunk is never
// abandoned. Without it, any interrupt cadence shorter than one lease's
// execution time (e.g. a daemon's checkpoint slices) would discard
// every in-flight lease and the run would livelock at zero progress.
func (c *Coordinator) drain(id uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j := c.jobs[id]; j != nil {
		j.draining = true
	}
}

// settled reports whether a draining job has no in-flight work left to
// wait for: every granted lease has been settled by a completion and no
// expired span is awaiting regrant. A collected or never-registered id
// is trivially settled.
func (c *Coordinator) settled(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return true
	}
	c.expireLocked(j, c.now())
	return len(j.leases) == 0 && len(j.freed) == 0
}

func lessB(a, b butterfly.Butterfly) bool {
	if a.U1 != b.U1 {
		return a.U1 < b.U1
	}
	if a.U2 != b.U2 {
		return a.U2 < b.U2
	}
	if a.V1 != b.V1 {
		return a.V1 < b.V1
	}
	return a.V2 < b.V2
}

func (c *Coordinator) leaseUnits() int {
	if c.LeaseUnits > 0 {
		return c.LeaseUnits
	}
	return 256
}

func (c *Coordinator) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 10 * time.Second
}

func (c *Coordinator) maxGrants() int {
	if c.MaxGrants > 0 {
		return c.MaxGrants
	}
	return 2
}

func (c *Coordinator) waitHint() time.Duration {
	if c.WaitHint > 0 {
		return c.WaitHint
	}
	return 25 * time.Millisecond
}

// grant picks a range for a worker: first job in registration order
// with grantable work. Priority inside a job: expired (freed) ranges,
// then fresh ranges, then straggler stealing (duplicate grant of an
// outstanding range, capped at MaxGrants holders).
func (c *Coordinator) grant(worker string) *LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for _, id := range c.order {
		if rep, ok := c.grantFromLocked(c.jobs[id], worker, now); ok {
			return rep
		}
	}
	return &LeaseReply{V: Version, Status: LeaseWait, WaitMs: int(c.waitHint() / time.Millisecond)}
}

// grantJob is grant restricted to a single job: the executor's
// in-process fallback worker leases through it so it can never steal
// another job's spans from the fleet.
func (c *Coordinator) grantJob(worker string, id uint64) *LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rep, ok := c.grantFromLocked(c.jobs[id], worker, c.now()); ok {
		return rep
	}
	return &LeaseReply{V: Version, Status: LeaseWait, WaitMs: int(c.waitHint() / time.Millisecond)}
}

// grantFromLocked tries to lease one span of j to worker.
func (c *Coordinator) grantFromLocked(j *distJob, worker string, now time.Time) (*LeaseReply, bool) {
	if j == nil || j.halted {
		return nil, false
	}
	c.expireLocked(j, now)
	sp, ok := c.pickLocked(j)
	if !ok {
		return nil, false
	}
	c.nextLease++
	l := &lease{id: c.nextLease, span: sp, worker: worker, deadline: now.Add(c.leaseTTL())}
	j.leases[l.id] = l
	c.journalGrantLocked(j, sp)
	spec := j.spec
	return &LeaseReply{V: Version, Status: LeaseGranted, Job: &spec, Lease: l.id, Lo: sp.lo, Hi: sp.hi}, true
}

// prefix reports a job's merged prefix (0 once collected or unknown).
func (c *Coordinator) prefix(id uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j := c.jobs[id]; j != nil {
		return j.prefix
	}
	return 0
}

// expireLocked reissues dead workers' ranges: every lease past its
// deadline is dropped and, unless the range was completed by another
// holder meanwhile, its span joins the freed list for regrant.
func (c *Coordinator) expireLocked(j *distJob, now time.Time) {
	for id, l := range j.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(j.leases, id)
		if _, done := j.completed[l.span.lo]; done {
			continue
		}
		if !j.spanOutstandingLocked(l.span) && !j.spanFreed(l.span) {
			j.freed = append(j.freed, l.span)
			sort.Slice(j.freed, func(x, y int) bool { return j.freed[x].lo < j.freed[y].lo })
		}
	}
}

func (j *distJob) spanOutstandingLocked(sp span) bool {
	for _, l := range j.leases {
		if l.span == sp {
			return true
		}
	}
	return false
}

func (j *distJob) spanFreed(sp span) bool {
	for _, f := range j.freed {
		if f == sp {
			return true
		}
	}
	return false
}

// pickLocked selects the next span to grant for a job.
func (c *Coordinator) pickLocked(j *distJob) (span, bool) {
	// Freed (expired) ranges first — they gate the merge prefix.
	if len(j.freed) > 0 {
		sp := j.freed[0]
		j.freed = j.freed[1:]
		return sp, true
	}
	// Fresh ranges next — unless the job is draining, in which case the
	// frontier is frozen so outstanding leases can land and be merged
	// before the interrupted executor collects.
	if !j.draining && j.nextLo <= j.spec.Units {
		hi := j.nextLo + j.spec.LeaseUnits - 1
		if hi > j.spec.Units {
			hi = j.spec.Units
		}
		sp := span{lo: j.nextLo, hi: hi}
		j.nextLo = hi + 1
		return sp, true
	}
	// Straggler stealing: regrant the outstanding range closest to the
	// prefix (it gates the merge) with the fewest current holders.
	grants := make(map[span]int)
	for _, l := range j.leases {
		grants[l.span]++
	}
	best, found := span{}, false
	for sp, n := range grants {
		if n >= c.maxGrants() {
			continue
		}
		if _, done := j.completed[sp.lo]; done {
			continue
		}
		if !found || sp.lo < best.lo {
			best, found = sp, true
		}
	}
	return best, found
}

// complete applies one LeaseComplete. Duplicate completions of an
// already-accepted range (and completions for vanished jobs) are
// acknowledged with Accepted=false — the merge is keyed by range, so
// dropped, duplicated, or reordered messages cannot corrupt it.
func (c *Coordinator) complete(msg *LeaseComplete) (*CompleteReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[msg.Job]
	if !ok {
		// The job was collected (interrupt) or never existed: the range's
		// work is obsolete, not wrong. Tell the worker to move on.
		return &CompleteReply{V: Version, Accepted: false, JobDone: true}, nil
	}
	if err := j.checkRange(msg.Lo, msg.Hi); err != nil {
		return nil, err
	}
	if err := j.checkPayload(msg); err != nil {
		return nil, err
	}
	if _, dup := j.completed[msg.Lo]; dup {
		// The lease(s) covering this span are settled regardless of
		// which holder reported first.
		for id, l := range j.leases {
			if l.span.lo == msg.Lo {
				delete(j.leases, id)
			}
		}
		return &CompleteReply{V: Version, Accepted: false, JobDone: j.prefix == j.spec.Units}, nil
	}
	// Write-ahead: the journal record must land before any state
	// mutation (including lease settlement — a failed write leaves the
	// lease intact so its TTL can still reissue the span). The handler
	// turns a journal failure into a 500 the worker's transport retries.
	if err := c.journalCompleteLocked(j, msg); err != nil {
		return nil, err
	}
	for id, l := range j.leases {
		if l.span.lo == msg.Lo {
			delete(j.leases, id)
		}
	}
	j.completed[msg.Lo] = msg.Hi
	j.pending[msg.Lo] = &pendingRange{span: span{msg.Lo, msg.Hi}, payload: msg.Payload, counters: msg.Counters}
	j.advanceLocked()
	done := j.prefix == j.spec.Units
	if done && !j.halted {
		j.halted = true
		close(j.done)
	}
	return &CompleteReply{V: Version, Accepted: true, JobDone: done}, nil
}

// checkRange validates a reported range against the job's fixed lease
// arithmetic: ranges are aligned to Start on LeaseUnits boundaries and
// clipped at Units, so exactly one shape is legal per lo.
func (j *distJob) checkRange(lo, hi int) error {
	lu := j.spec.LeaseUnits
	if lo < j.spec.Start+1 || hi > j.spec.Units || hi < lo {
		return fmt.Errorf("%w: %d..%d outside %d..%d", ErrBadRange, lo, hi, j.spec.Start+1, j.spec.Units)
	}
	if (lo-j.spec.Start-1)%lu != 0 {
		return fmt.Errorf("%w: %d..%d not aligned to lease width %d", ErrBadRange, lo, hi, lu)
	}
	want := lo + lu - 1
	if want > j.spec.Units {
		want = j.spec.Units
	}
	if hi != want {
		return fmt.Errorf("%w: %d..%d does not match issued range %d..%d", ErrBadRange, lo, hi, lo, want)
	}
	return nil
}

// checkPayload validates the payload kind and width against the job.
func (j *distJob) checkPayload(msg *LeaseComplete) error {
	p := &msg.Payload
	switch j.job.Kind {
	case core.ExecOS:
		if p.CandCounts != nil || p.CandProbs != nil || p.CandTrials != nil {
			return fmt.Errorf("%w: OS job with candidate payload", ErrBadPayload)
		}
	case core.ExecOptimized:
		if p.Counts != nil || p.CandProbs != nil || p.CandTrials != nil {
			return fmt.Errorf("%w: optimized job with non-count payload", ErrBadPayload)
		}
		if len(p.CandCounts) != j.nCands {
			return fmt.Errorf("%w: %d candidate counts for a %d-candidate job", ErrBadPayload, len(p.CandCounts), j.nCands)
		}
	case core.ExecKarpLuby:
		if p.Counts != nil || p.CandCounts != nil {
			return fmt.Errorf("%w: KL job with count payload", ErrBadPayload)
		}
		if width := msg.Hi - msg.Lo + 1; len(p.CandProbs) != width || len(p.CandTrials) != width {
			return fmt.Errorf("%w: KL vectors of %d/%d entries for a %d-unit range",
				ErrBadPayload, len(p.CandProbs), len(p.CandTrials), width)
		}
	}
	return nil
}

// advanceLocked merges pending ranges while they extend the prefix.
// Counters flush to the job's probe here — at merge time, not arrival
// time — so the probe's totals are always an exact function of the
// merged prefix, mirroring the local runners' chunk-flush invariant.
func (j *distJob) advanceLocked() {
	for {
		pr, ok := j.pending[j.prefix+1]
		if !ok {
			return
		}
		delete(j.pending, j.prefix+1)
		switch j.job.Kind {
		case core.ExecOS:
			for _, e := range pr.payload.Counts {
				cw := j.osCounts[e.B]
				cw.count += e.Count
				cw.weight = e.Weight
				j.osCounts[e.B] = cw
			}
		case core.ExecOptimized:
			for i, v := range pr.payload.CandCounts {
				j.candCounts[i] += v
			}
		case core.ExecKarpLuby:
			copy(j.candProbs[pr.span.lo-1:pr.span.hi], pr.payload.CandProbs)
			copy(j.candTrials[pr.span.lo-1:pr.span.hi], pr.payload.CandTrials)
		}
		p := j.job.Probe
		ctr := pr.counters
		p.Add(0, telemetry.CounterTrials, ctr.Trials)
		p.Add(0, telemetry.CounterTrialHits, ctr.TrialHits)
		p.Add(0, telemetry.CounterEdgesScanned, ctr.EdgesScanned)
		p.Add(0, telemetry.CounterEdgesPruned, ctr.EdgesPruned)
		p.Add(0, telemetry.CounterCandScanned, ctr.CandScanned)
		p.Add(0, telemetry.CounterCandPruned, ctr.CandPruned)
		p.Add(0, telemetry.CounterPrefixFallbacks, ctr.PrefixFallbacks)
		j.prefix = pr.span.hi
	}
}

// Register mounts the coordinator's protocol routes on mux.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /dist/v1/lease", c.handleLease)
	mux.HandleFunc("POST /dist/v1/complete", c.handleComplete)
	mux.HandleFunc("GET /dist/v1/graph", c.handleGraph)
}

// Handler returns a standalone handler serving the protocol routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// hasLiveLease reports whether the job still has an outstanding lease
// inside its TTL. The degraded-mode fallback uses it as the liveness
// signal for workers that are mid-span and therefore off the wire.
func (c *Coordinator) hasLiveLease(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return false
	}
	now := c.now()
	for _, l := range j.leases {
		if now.Before(l.deadline) {
			return true
		}
	}
	return false
}

// touchWorker records fleet contact; see lastWorker.
func (c *Coordinator) touchWorker() { c.lastWorker.Store(time.Now().UnixNano()) }

// lastWorkerContact reports the most recent worker HTTP exchange (zero
// time if no worker has ever connected).
func (c *Coordinator) lastWorkerContact() time.Time {
	ns := c.lastWorker.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	c.touchWorker()
	var req LeaseRequest
	if err := readMessage(r.Body, &req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.V != Version {
		http.Error(w, fmt.Sprintf("%v: got v%d, want v%d", ErrVersionSkew, req.V, Version), http.StatusBadRequest)
		return
	}
	writeJSON(w, c.grant(req.Worker))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	c.touchWorker()
	data, err := readAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	msg, err := DecodeLeaseComplete(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rep, err := c.complete(msg)
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, ErrBadRange) && !errors.Is(err, ErrBadPayload) && !errors.Is(err, ErrVersionSkew) {
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, rep)
}

func (c *Coordinator) handleGraph(w http.ResponseWriter, r *http.Request) {
	c.touchWorker()
	id, err := strconv.ParseUint(r.URL.Query().Get("job"), 10, 64)
	if err != nil {
		http.Error(w, "bad job id", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(j.graph)
}
