package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/core"
)

// FuzzLeaseDecode throws arbitrary bytes at the wire decoder. The
// contract under fuzz: DecodeLeaseComplete either returns a message
// that satisfies every invariant the coordinator relies on, or one of
// the three typed errors — never a panic, never an untyped rejection,
// never an invariant-violating message.
func FuzzLeaseDecode(f *testing.F) {
	valid := func(msg LeaseComplete) []byte {
		data, err := json.Marshal(&msg)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(valid(LeaseComplete{V: Version, Worker: "w0", Job: 1, Lease: 1, Lo: 1, Hi: 16,
		Payload: RangePayload{Counts: []core.ButterflyCount{{Count: 3, Weight: 1.5}}}}))
	f.Add(valid(LeaseComplete{V: Version, Job: 2, Lease: 9, Lo: 17, Hi: 32,
		Payload: RangePayload{CandCounts: []int64{0, 16, 7}}}))
	f.Add(valid(LeaseComplete{V: Version, Job: 3, Lease: 2, Lo: 1, Hi: 4,
		Payload: RangePayload{CandProbs: []float64{0, 0.5, 1, 0.25}, CandTrials: []int{4, 4, 4, 4}}}))
	f.Add(valid(LeaseComplete{V: Version + 1, Lo: 1, Hi: 16})) // version skew
	f.Add(valid(LeaseComplete{V: Version, Lo: 0, Hi: 16}))     // lo below first trial
	f.Add(valid(LeaseComplete{V: Version, Lo: 17, Hi: 16}))    // inverted range
	f.Add(valid(LeaseComplete{V: Version, Lo: 1, Hi: 2,        // KL width mismatch
		Payload: RangePayload{CandProbs: []float64{0.5}, CandTrials: []int{1}}}))
	f.Add(valid(LeaseComplete{V: Version, Lo: 1, Hi: 16, // mixed payload kinds
		Payload: RangePayload{CandCounts: []int64{1}, Counts: []core.ButterflyCount{{Count: 1}}}}))
	f.Add(valid(LeaseComplete{V: Version, Lo: 1, Hi: 16, Counters: Counters{Trials: -1}}))
	f.Add([]byte(`{"v":1,"lo":1,"hi":16,"payload":{"counts":[{"count":-2}]}}`))
	f.Add([]byte(`{"v":1,"lo":1,"hi":16,"payload":{"cand_probs":`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"v":1e309}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeLeaseComplete(data)
		if err != nil {
			if !errors.Is(err, ErrVersionSkew) && !errors.Is(err, ErrBadRange) && !errors.Is(err, ErrBadPayload) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if msg.V != Version {
			t.Fatalf("decoded message with v=%d", msg.V)
		}
		if msg.Lo < 1 || msg.Hi < msg.Lo {
			t.Fatalf("decoded message with bad range %d..%d", msg.Lo, msg.Hi)
		}
		width := msg.Hi - msg.Lo + 1
		if n := len(msg.Payload.CandProbs); n != 0 && n != width {
			t.Fatalf("decoded KL payload width %d for range width %d", n, width)
		}
		if msg.Counters.Trials < 0 || msg.Counters.TrialHits < 0 {
			t.Fatalf("decoded negative counters: %+v", msg.Counters)
		}
	})
}

// fuzzMergeGraph is a tiny fixed fixture; FuzzCheckpointMerge rebuilds
// it each run so the expected aggregate is a constant of the corpus.
func fuzzMergeGraph(tb testing.TB) *mpmb.Graph {
	tb.Helper()
	b := mpmb.NewBuilder(4, 4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			b.AddEdge(uint32(u), uint32(v), float64(1+u+v), 0.7)
		}
	}
	return b.Build()
}

// FuzzCheckpointMerge feeds the coordinator's merge arbitrary
// (lo, hi, version) completion triples — overlapping, misaligned,
// duplicated, version-skewed — and checks the structural invariants
// that keep distributed runs exact: the merged prefix only ever grows,
// never passes Units, a span merges at most once, and the done signal
// fires exactly when the prefix covers the job.
func FuzzCheckpointMerge(f *testing.F) {
	triples := func(ts ...int64) []byte {
		buf := make([]byte, 0, len(ts)*8)
		for _, v := range ts {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
		return buf
	}
	// Legal lease shape for Units=40, LeaseUnits=8: lo ∈ {1,9,17,25,33},
	// hi = lo+7. Triples are (lo, hi, v).
	f.Add(triples(1, 8, 1, 9, 16, 1, 17, 24, 1, 25, 32, 1, 33, 40, 1)) // clean in-order run
	f.Add(triples(33, 40, 1, 25, 32, 1, 17, 24, 1, 9, 16, 1, 1, 8, 1)) // fully reversed
	f.Add(triples(1, 8, 1, 1, 8, 1, 1, 8, 1))                          // duplicated head
	f.Add(triples(1, 8, 2, 1, 8, 1))                                   // version skew then legal
	f.Add(triples(2, 9, 1, 0, 7, 1, 1, 40, 1, 9, 8, 1))                // misaligned, inverted
	f.Add(triples(1, 8, 1, 5, 12, 1, 9, 16, 1))                        // overlapping lease
	f.Add(triples())

	g := fuzzMergeGraph(f)
	const units, leaseUnits = 40, 8
	// Precompute each legal span's payload once; the fuzz body replays
	// from this table so a run costs merges, not trials.
	payloads := map[int]RangePayload{}
	baseJob := func() *core.ExecJob {
		return &core.ExecJob{
			Kind: core.ExecOS, Graph: g, Seed: 11, Units: units, Start: 0,
			Spec: core.ExecSpec{Method: "os", Seed: 11, Trials: units},
		}
	}
	for lo := 1; lo <= units; lo += leaseUnits {
		res, err := (&core.LocalExecutor{Workers: 1}).ExecuteTrials(&core.ExecJob{
			Kind: core.ExecOS, Graph: g, Seed: 11, Units: lo + leaseUnits - 1, Start: lo - 1,
		})
		if err != nil {
			f.Fatal(err)
		}
		payloads[lo] = RangePayload{Counts: res.CountsSnapshot()}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		coord := NewCoordinator()
		coord.LeaseUnits = leaseUnits
		id, done, err := coord.register(baseJob())
		if err != nil {
			t.Fatal(err)
		}
		merged := map[int]bool{}
		prevPrefix := 0
		for off := 0; off+24 <= len(data); off += 24 {
			lo := int(int64(binary.LittleEndian.Uint64(data[off:])))
			hi := int(int64(binary.LittleEndian.Uint64(data[off+8:])))
			v := int(int64(binary.LittleEndian.Uint64(data[off+16:])))
			msg := &LeaseComplete{V: Version, Job: id, Lo: lo, Hi: hi}
			if p, ok := payloads[lo]; ok && hi == lo+leaseUnits-1 {
				msg.Payload = p
			}
			// Route through the real wire decoder so version skew and
			// malformed ranges are rejected exactly where HTTP rejects them.
			msg.V = v
			raw, err := json.Marshal(msg)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeLeaseComplete(raw)
			if err != nil {
				if !errors.Is(err, ErrVersionSkew) && !errors.Is(err, ErrBadRange) && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("untyped decode error for (%d,%d,%d): %v", lo, hi, v, err)
				}
				continue
			}
			rep, err := coord.complete(decoded)
			if err != nil {
				if !errors.Is(err, ErrBadRange) && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("untyped merge error for (%d,%d): %v", lo, hi, err)
				}
				continue
			}
			if rep.Accepted {
				if merged[lo] {
					t.Fatalf("span at lo=%d merged twice", lo)
				}
				merged[lo] = true
			}
			prefix, _, ok := coordProgress(coord)
			if !ok {
				t.Fatal("job vanished mid-merge")
			}
			if prefix < prevPrefix {
				t.Fatalf("merged prefix regressed %d -> %d", prevPrefix, prefix)
			}
			if prefix > units {
				t.Fatalf("merged prefix %d exceeds units %d", prefix, units)
			}
			prevPrefix = prefix
		}
		complete := len(merged) == units/leaseUnits
		select {
		case <-done:
			if !complete {
				t.Fatalf("done fired with only %d/%d spans merged", len(merged), units/leaseUnits)
			}
		default:
			if complete {
				t.Fatal("all spans merged but done never fired")
			}
		}
		if complete {
			res, err := coord.collect(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Done != units {
				t.Fatalf("collected Done=%d, want %d", res.Done, units)
			}
		}
	})
}
