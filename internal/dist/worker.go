package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// defaultWorkerClient is the client used when a caller supplies none.
// It carries a bounded overall timeout as a last line of defense: a
// hung coordinator socket must never block a worker forever, even if
// the per-attempt transport timeout is misconfigured away.
var defaultWorkerClient = &http.Client{Timeout: 30 * time.Second}

// Worker executes leased ranges for a coordinator. It is stateless from
// the coordinator's point of view — everything it needs arrives in the
// JobSpec (graph by fetch-and-verify, candidate set by deterministic
// re-preparation from the run seed), so workers can join, die and
// rejoin at any point of a run without coordination.
//
// All coordinator exchanges go through a retrying Transport; when a
// coordinator the worker has already talked to becomes unreachable past
// the transport's budget, the worker parks in a reconnect loop for up
// to ReconnectMax instead of exiting, so a coordinator restart (crash
// recovery) or a healed partition resumes the run with the same fleet.
type Worker struct {
	// Base is the coordinator's base URL (e.g. "http://host:port").
	Base string
	// Name identifies the worker in leases (default "host:pid").
	Name string
	// Client is the HTTP client (default: a client with a bounded
	// overall timeout).
	Client *http.Client
	// Pool sizes the local worker pool each lease runs on (0 =
	// GOMAXPROCS).
	Pool int
	// Transport, when non-nil, tunes the retrying exchange layer
	// (timeouts, attempt budget, backoff). Nil applies the defaults.
	Transport *Transport
	// ReconnectMax bounds how long the worker keeps trying to reach an
	// unreachable coordinator it had already exchanged with before
	// giving up and ending the run (default 30s; negative gives up on
	// the first exhausted exchange).
	ReconnectMax time.Duration
	// Reg, when non-nil, receives the worker's telemetry: lease-loop
	// errors by kind and reconnect counts.
	Reg *telemetry.Registry

	// testFaults, if non-nil, injects chaos for the fault-tolerance
	// tests; see workerFaults.
	testFaults *workerFaults

	connected bool
	parked    bool
	parkedAt  time.Time
	leases    int
	graphs    map[uint32]*workerGraph
}

// workerFaults is the injectable fault seam used by chaos tests.
type workerFaults struct {
	// dieAfterLeases, when > 0, makes Run return (simulating an abrupt
	// death: the lease is never completed) after that many leases have
	// been GRANTED — the fatal lease is abandoned mid-flight.
	dieAfterLeases int
	// interceptComplete, when non-nil, sees every LeaseComplete before
	// it is sent; returning false drops the message (the worker proceeds
	// as if it were sent).
	interceptComplete func(*LeaseComplete) bool
}

// workerGraph is one verified graph plus its derived candidate sets,
// cached across leases by graph fingerprint.
type workerGraph struct {
	g     *bigraph.Graph
	cands map[candKey]*core.Candidates
}

// candKey identifies a deterministic candidate preparation.
type candKey struct {
	prep  int
	seed  uint64
	flags uint8
}

// Run leases and executes ranges until ctx is cancelled or the
// coordinator stays away longer than ReconnectMax. A connection failure
// before the first successful exchange is retried indefinitely (the
// worker may start before the coordinator listens); after one, the
// worker parks in its reconnect loop — completions in hand are
// retransmitted verbatim once the coordinator returns, which is safe
// because the merge is idempotent by span. Only when the coordinator
// stays unreachable past ReconnectMax does Run conclude the run is over
// and return nil.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		host, _ := os.Hostname()
		w.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.graphs == nil {
		w.graphs = make(map[uint32]*workerGraph)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		rep, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.count(telemetry.CounterDistLeaseErrors)
			if !w.connected {
				// The coordinator may not be listening yet.
				if !w.pause(ctx, 100*time.Millisecond) {
					return nil
				}
				continue
			}
			if !errors.Is(err, ErrTransportExhausted) {
				return err // protocol error: retrying cannot fix it
			}
			if !w.park(ctx) {
				return nil // coordinator gone past ReconnectMax; run over
			}
			continue
		}
		w.arrived()
		switch rep.Status {
		case LeaseWait:
			wait := time.Duration(rep.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 25 * time.Millisecond
			}
			if !w.pause(ctx, wait) {
				return nil
			}
		case LeaseGranted:
			w.leases++
			if f := w.testFaults; f != nil && f.dieAfterLeases > 0 && w.leases >= f.dieAfterLeases {
				return nil // chaos: die holding the lease
			}
			msg, err := w.execute(ctx, rep)
			if err != nil {
				if ctx.Err() != nil {
					return nil
				}
				if errors.Is(err, ErrTransportExhausted) {
					// The graph fetch died with the coordinator: abandon
					// the lease (the TTL reissues it) and park.
					w.count(telemetry.CounterDistGraphErrors)
					if !w.park(ctx) {
						return nil
					}
					continue
				}
				w.count(telemetry.CounterDistExecErrors)
				return fmt.Errorf("dist: worker executing lease %d (%d..%d): %w", rep.Lease, rep.Lo, rep.Hi, err)
			}
			if f := w.testFaults; f != nil && f.interceptComplete != nil && !f.interceptComplete(msg) {
				continue // chaos: complete dropped in flight
			}
			if err := w.deliver(ctx, msg); err != nil {
				return err
			}
		default:
			return fmt.Errorf("dist: coordinator replied with unknown status %q", rep.Status)
		}
	}
}

// deliver retransmits one completion until it is acknowledged, the
// reconnect window closes, or ctx ends. Retransmission is safe: the
// coordinator's merge is keyed by span, so a completion whose first
// acknowledgement was lost in flight is simply re-acknowledged with
// Accepted=false. Returning nil without an acknowledgement means the
// coordinator is gone and the run is over.
func (w *Worker) deliver(ctx context.Context, msg *LeaseComplete) error {
	for {
		err := w.sendComplete(ctx, msg)
		if err == nil {
			w.arrived()
			return nil
		}
		if ctx.Err() != nil {
			return nil
		}
		w.count(telemetry.CounterDistCompleteErrors)
		if !errors.Is(err, ErrTransportExhausted) {
			return err
		}
		if !w.park(ctx) {
			return nil
		}
	}
}

// park records an unreachable-coordinator beat: it starts (or extends)
// the current parking spell and sleeps one reconnect interval. It
// returns false when the spell has outlived ReconnectMax or ctx ended —
// the worker should stop trying.
func (w *Worker) park(ctx context.Context) bool {
	now := time.Now()
	if !w.parked {
		w.parked = true
		w.parkedAt = now
	}
	maxWait := w.reconnectMax()
	if maxWait <= 0 || now.Sub(w.parkedAt) >= maxWait {
		return false
	}
	return w.pause(ctx, 500*time.Millisecond)
}

// arrived records a successful exchange, ending any parking spell.
func (w *Worker) arrived() {
	if w.parked {
		w.parked = false
		w.count(telemetry.CounterDistReconnects)
	}
	w.connected = true
}

func (w *Worker) reconnectMax() time.Duration {
	if w.ReconnectMax != 0 {
		return w.ReconnectMax
	}
	return 30 * time.Second
}

// pause sleeps d, returning false if ctx ended first.
func (w *Worker) pause(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// count bumps one worker telemetry counter, if a registry is attached.
func (w *Worker) count(c telemetry.Counter) {
	if w.Reg != nil {
		w.Reg.Add(0, c, 1)
	}
}

// lease requests a range.
func (w *Worker) lease(ctx context.Context) (*LeaseReply, error) {
	var rep LeaseReply
	if err := w.transport().postJSON(ctx, "lease", w.Base+"/dist/v1/lease", &LeaseRequest{V: Version, Worker: w.Name}, &rep); err != nil {
		return nil, err
	}
	if rep.V != Version {
		return nil, fmt.Errorf("%w: coordinator speaks v%d, worker v%d", ErrVersionSkew, rep.V, Version)
	}
	return &rep, nil
}

// execute runs one leased range through the in-process LocalExecutor
// and assembles its completion message. The range's telemetry flows
// into a fresh per-lease registry whose terminal snapshot becomes the
// exact counter delta shipped with the payload.
func (w *Worker) execute(ctx context.Context, rep *LeaseReply) (*LeaseComplete, error) {
	spec := rep.Job
	if spec == nil {
		return nil, fmt.Errorf("%w: lease %d granted without a job spec", ErrBadPayload, rep.Lease)
	}
	if spec.V != Version {
		return nil, fmt.Errorf("%w: job spec v%d", ErrVersionSkew, spec.V)
	}
	wg, err := w.graph(ctx, spec)
	if err != nil {
		return nil, err
	}
	kind := core.ExecKind(spec.Kind)
	osOpt := core.OSOptions{
		DisableEdgePrune: spec.DisableEdgePrune,
		KeepAllAngles:    spec.KeepAllAngles,
		DropA2:           spec.DropA2,
	}
	var cands *core.Candidates
	if kind != core.ExecOS {
		cands, err = w.candidates(wg, spec, osOpt)
		if err != nil {
			return nil, err
		}
	}
	reg := telemetry.NewRegistry()
	probe := &telemetry.Probe{Reg: reg, Method: spec.Method}
	job := &core.ExecJob{
		Kind:  kind,
		Graph: wg.g,
		Cands: cands,
		Seed:  spec.PhaseSeed,
		Units: rep.Hi,     // run exactly the leased range:
		Start: rep.Lo - 1, // units Start+1..Units = lo..hi
		OS:    osOpt,
		KL: core.KLOptions{
			BaseTrials: spec.KLBaseTrials,
			Mu:         spec.KLMu,
			MaxTrials:  spec.KLMaxTrials,
		},
		Probe:   probe,
		Workers: w.Pool,
	}
	res, err := (&core.LocalExecutor{Workers: w.Pool}).ExecuteTrials(job)
	if err != nil {
		return nil, err
	}
	if res.Done != rep.Hi {
		return nil, fmt.Errorf("dist: range %d..%d stopped at %d without an interrupt", rep.Lo, rep.Hi, res.Done)
	}
	var payload RangePayload
	switch kind {
	case core.ExecOS:
		payload.Counts = res.CountsSnapshot()
	case core.ExecOptimized:
		payload.CandCounts = res.CandCounts
	case core.ExecKarpLuby:
		payload.CandProbs = res.CandProbs[rep.Lo-1 : rep.Hi]
		payload.CandTrials = res.CandTrials[rep.Lo-1 : rep.Hi]
	default:
		return nil, fmt.Errorf("%w: unknown job kind %d", ErrBadPayload, spec.Kind)
	}
	m := reg.Snapshot()
	return &LeaseComplete{
		V:       Version,
		Worker:  w.Name,
		Job:     spec.Job,
		Lease:   rep.Lease,
		Lo:      rep.Lo,
		Hi:      rep.Hi,
		Payload: payload,
		Counters: Counters{
			Trials:          m.Trials,
			TrialHits:       m.TrialHits,
			EdgesScanned:    m.EdgesScanned,
			EdgesPruned:     m.EdgesPruned,
			CandScanned:     m.CandScanned,
			CandPruned:      m.CandPruned,
			PrefixFallbacks: m.PrefixFallbacks,
		},
	}, nil
}

// graph returns the verified graph for a spec, fetching it once per
// fingerprint. A torn response body (the fetch died mid-stream) is
// retried by the transport like any other transient fault.
func (w *Worker) graph(ctx context.Context, spec *JobSpec) (*workerGraph, error) {
	if wg, ok := w.graphs[spec.GraphCRC]; ok {
		return wg, nil
	}
	var g *bigraph.Graph
	url := fmt.Sprintf("%s/dist/v1/graph?job=%d", w.Base, spec.Job)
	err := w.transport().get(ctx, "graph", url, func(resp *http.Response) error {
		decoded, err := bigraph.ReadBinary(resp.Body)
		if err != nil {
			return fmt.Errorf("dist: decoding graph for job %d: %w", spec.Job, err)
		}
		g = decoded
		return nil
	})
	if err != nil {
		return nil, err
	}
	if crc := g.Checksum(); crc != spec.GraphCRC {
		return nil, fmt.Errorf("dist: graph checksum %08x does not match job spec %08x", crc, spec.GraphCRC)
	}
	wg := &workerGraph{g: g, cands: make(map[candKey]*core.Candidates)}
	w.graphs[spec.GraphCRC] = wg
	return wg, nil
}

// candidates rebuilds (or returns the cached) candidate set for a spec.
// Re-preparation is deterministic in (run seed, prep trials, kernel
// flags), so every worker derives the exact candidate list the
// coordinator's own preparing phase produced.
func (w *Worker) candidates(wg *workerGraph, spec *JobSpec, osOpt core.OSOptions) (*core.Candidates, error) {
	var flags uint8
	if spec.DisableEdgePrune {
		flags |= 1
	}
	if spec.KeepAllAngles {
		flags |= 2
	}
	if spec.DropA2 {
		flags |= 4
	}
	key := candKey{prep: spec.PrepTrials, seed: spec.RunSeed, flags: flags}
	if c, ok := wg.cands[key]; ok {
		return c, nil
	}
	c, err := core.PrepareCandidates(wg.g, spec.PrepTrials, spec.RunSeed, osOpt)
	if err != nil {
		return nil, fmt.Errorf("dist: re-preparing candidates: %w", err)
	}
	wg.cands[key] = c
	return c, nil
}

// sendComplete posts a completion and interprets the acknowledgement.
func (w *Worker) sendComplete(ctx context.Context, msg *LeaseComplete) error {
	var rep CompleteReply
	// Accepted=false (duplicate or vanished job) is a normal outcome.
	return w.transport().postJSON(ctx, "complete", w.Base+"/dist/v1/complete", msg, &rep)
}

// client returns the base HTTP client, always with a bounded timeout.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return defaultWorkerClient
}

// transport returns the worker's exchange layer, binding the default
// transport to the worker's client on first use.
func (w *Worker) transport() *Transport {
	if w.Transport == nil {
		w.Transport = &Transport{}
	}
	if w.Transport.Client == nil {
		w.Transport.Client = w.client()
	}
	return w.Transport
}
