package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Worker executes leased ranges for a coordinator. It is stateless from
// the coordinator's point of view — everything it needs arrives in the
// JobSpec (graph by fetch-and-verify, candidate set by deterministic
// re-preparation from the run seed), so workers can join, die and
// rejoin at any point of a run without coordination.
type Worker struct {
	// Base is the coordinator's base URL (e.g. "http://host:port").
	Base string
	// Name identifies the worker in leases (default "host:pid").
	Name string
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Pool sizes the local worker pool each lease runs on (0 =
	// GOMAXPROCS).
	Pool int

	// testFaults, if non-nil, injects chaos for the fault-tolerance
	// tests; see workerFaults.
	testFaults *workerFaults

	connected bool
	leases    int
	graphs    map[uint32]*workerGraph
}

// workerFaults is the injectable fault seam used by chaos tests.
type workerFaults struct {
	// dieAfterLeases, when > 0, makes Run return (simulating an abrupt
	// death: the lease is never completed) after that many leases have
	// been GRANTED — the fatal lease is abandoned mid-flight.
	dieAfterLeases int
	// interceptComplete, when non-nil, sees every LeaseComplete before
	// it is sent; returning false drops the message (the worker proceeds
	// as if it were sent).
	interceptComplete func(*LeaseComplete) bool
}

// workerGraph is one verified graph plus its derived candidate sets,
// cached across leases by graph fingerprint.
type workerGraph struct {
	g     *bigraph.Graph
	cands map[candKey]*core.Candidates
}

// candKey identifies a deterministic candidate preparation.
type candKey struct {
	prep  int
	seed  uint64
	flags uint8
}

// Run leases and executes ranges until ctx is cancelled or the
// coordinator goes away. A connection failure before the first
// successful exchange is retried (the worker may start before the
// coordinator listens); after one, it means the coordinator exited —
// normal end of a run — and Run returns nil.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		host, _ := os.Hostname()
		w.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.graphs == nil {
		w.graphs = make(map[uint32]*workerGraph)
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		rep, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if w.connected {
				return nil // coordinator exited; the run is over
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		w.connected = true
		switch rep.Status {
		case LeaseWait:
			wait := time.Duration(rep.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 25 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(wait):
			}
		case LeaseGranted:
			w.leases++
			if f := w.testFaults; f != nil && f.dieAfterLeases > 0 && w.leases >= f.dieAfterLeases {
				return nil // chaos: die holding the lease
			}
			msg, err := w.execute(ctx, rep)
			if err != nil {
				return fmt.Errorf("dist: worker executing lease %d (%d..%d): %w", rep.Lease, rep.Lo, rep.Hi, err)
			}
			if f := w.testFaults; f != nil && f.interceptComplete != nil && !f.interceptComplete(msg) {
				continue // chaos: complete dropped in flight
			}
			if err := w.sendComplete(ctx, msg); err != nil {
				if w.connected {
					return nil // coordinator exited mid-run
				}
				return err
			}
		default:
			return fmt.Errorf("dist: coordinator replied with unknown status %q", rep.Status)
		}
	}
}

// lease requests a range.
func (w *Worker) lease(ctx context.Context) (*LeaseReply, error) {
	var rep LeaseReply
	if err := w.post(ctx, "/dist/v1/lease", &LeaseRequest{V: Version, Worker: w.Name}, &rep); err != nil {
		return nil, err
	}
	if rep.V != Version {
		return nil, fmt.Errorf("%w: coordinator speaks v%d, worker v%d", ErrVersionSkew, rep.V, Version)
	}
	return &rep, nil
}

// execute runs one leased range through the in-process LocalExecutor
// and assembles its completion message. The range's telemetry flows
// into a fresh per-lease registry whose terminal snapshot becomes the
// exact counter delta shipped with the payload.
func (w *Worker) execute(ctx context.Context, rep *LeaseReply) (*LeaseComplete, error) {
	spec := rep.Job
	if spec == nil {
		return nil, fmt.Errorf("%w: lease %d granted without a job spec", ErrBadPayload, rep.Lease)
	}
	if spec.V != Version {
		return nil, fmt.Errorf("%w: job spec v%d", ErrVersionSkew, spec.V)
	}
	wg, err := w.graph(ctx, spec)
	if err != nil {
		return nil, err
	}
	kind := core.ExecKind(spec.Kind)
	osOpt := core.OSOptions{
		DisableEdgePrune: spec.DisableEdgePrune,
		KeepAllAngles:    spec.KeepAllAngles,
		DropA2:           spec.DropA2,
	}
	var cands *core.Candidates
	if kind != core.ExecOS {
		cands, err = w.candidates(wg, spec, osOpt)
		if err != nil {
			return nil, err
		}
	}
	reg := telemetry.NewRegistry()
	probe := &telemetry.Probe{Reg: reg, Method: spec.Method}
	job := &core.ExecJob{
		Kind:  kind,
		Graph: wg.g,
		Cands: cands,
		Seed:  spec.PhaseSeed,
		Units: rep.Hi,     // run exactly the leased range:
		Start: rep.Lo - 1, // units Start+1..Units = lo..hi
		OS:    osOpt,
		KL: core.KLOptions{
			BaseTrials: spec.KLBaseTrials,
			Mu:         spec.KLMu,
			MaxTrials:  spec.KLMaxTrials,
		},
		Probe:   probe,
		Workers: w.Pool,
	}
	res, err := (&core.LocalExecutor{Workers: w.Pool}).ExecuteTrials(job)
	if err != nil {
		return nil, err
	}
	if res.Done != rep.Hi {
		return nil, fmt.Errorf("dist: range %d..%d stopped at %d without an interrupt", rep.Lo, rep.Hi, res.Done)
	}
	var payload RangePayload
	switch kind {
	case core.ExecOS:
		payload.Counts = res.CountsSnapshot()
	case core.ExecOptimized:
		payload.CandCounts = res.CandCounts
	case core.ExecKarpLuby:
		payload.CandProbs = res.CandProbs[rep.Lo-1 : rep.Hi]
		payload.CandTrials = res.CandTrials[rep.Lo-1 : rep.Hi]
	default:
		return nil, fmt.Errorf("%w: unknown job kind %d", ErrBadPayload, spec.Kind)
	}
	m := reg.Snapshot()
	return &LeaseComplete{
		V:       Version,
		Worker:  w.Name,
		Job:     spec.Job,
		Lease:   rep.Lease,
		Lo:      rep.Lo,
		Hi:      rep.Hi,
		Payload: payload,
		Counters: Counters{
			Trials:       m.Trials,
			TrialHits:    m.TrialHits,
			EdgesScanned: m.EdgesScanned,
			EdgesPruned:  m.EdgesPruned,
			CandScanned:  m.CandScanned,
			CandPruned:   m.CandPruned,
		},
	}, nil
}

// graph returns the verified graph for a spec, fetching it once per
// fingerprint.
func (w *Worker) graph(ctx context.Context, spec *JobSpec) (*workerGraph, error) {
	if wg, ok := w.graphs[spec.GraphCRC]; ok {
		return wg, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/dist/v1/graph?job=%d", w.Base, spec.Job), nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("dist: fetching graph for job %d: %s: %s", spec.Job, resp.Status, bytes.TrimSpace(body))
	}
	g, err := bigraph.ReadBinary(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: decoding graph for job %d: %w", spec.Job, err)
	}
	if crc := g.Checksum(); crc != spec.GraphCRC {
		return nil, fmt.Errorf("dist: graph checksum %08x does not match job spec %08x", crc, spec.GraphCRC)
	}
	wg := &workerGraph{g: g, cands: make(map[candKey]*core.Candidates)}
	w.graphs[spec.GraphCRC] = wg
	return wg, nil
}

// candidates rebuilds (or returns the cached) candidate set for a spec.
// Re-preparation is deterministic in (run seed, prep trials, kernel
// flags), so every worker derives the exact candidate list the
// coordinator's own preparing phase produced.
func (w *Worker) candidates(wg *workerGraph, spec *JobSpec, osOpt core.OSOptions) (*core.Candidates, error) {
	var flags uint8
	if spec.DisableEdgePrune {
		flags |= 1
	}
	if spec.KeepAllAngles {
		flags |= 2
	}
	if spec.DropA2 {
		flags |= 4
	}
	key := candKey{prep: spec.PrepTrials, seed: spec.RunSeed, flags: flags}
	if c, ok := wg.cands[key]; ok {
		return c, nil
	}
	c, err := core.PrepareCandidates(wg.g, spec.PrepTrials, spec.RunSeed, osOpt)
	if err != nil {
		return nil, fmt.Errorf("dist: re-preparing candidates: %w", err)
	}
	wg.cands[key] = c
	return c, nil
}

// sendComplete posts a completion and interprets the acknowledgement.
func (w *Worker) sendComplete(ctx context.Context, msg *LeaseComplete) error {
	var rep CompleteReply
	if err := w.post(ctx, "/dist/v1/complete", msg, &rep); err != nil {
		return err
	}
	// Accepted=false (duplicate or vanished job) is a normal outcome.
	return nil
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends a JSON request and decodes the JSON reply.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := encodeJSON(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		errBody, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("dist: %s: %s: %s", path, resp.Status, bytes.TrimSpace(errBody))
	}
	return readMessage(resp.Body, out)
}
