package dist

import (
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// drainOutcome carries an ExecuteTrials return across the test goroutine.
type drainOutcome struct {
	res *core.ExecResult
	err error
}

// startExecutor runs e.ExecuteTrials(job) in a goroutine and returns the
// channel its outcome lands on.
func startExecutor(e *Executor, job *core.ExecJob) chan drainOutcome {
	resc := make(chan drainOutcome, 1)
	go func() {
		r, err := e.ExecuteTrials(job)
		resc <- drainOutcome{r, err}
	}()
	return resc
}

// grantPoll claims a lease as a hand-driven worker, polling until the
// executor goroutine has registered its job.
func grantPoll(t *testing.T, coord *Coordinator, worker string) *LeaseReply {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := coord.grant(worker)
		if rep.Status == LeaseGranted {
			return rep
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted; executor never registered its job")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainCommitsInFlightLease is the anti-livelock regression: an
// interrupt that fires while a worker holds a lease must not abandon
// that lease. The executor drains — the coordinator freezes fresh
// grants but keeps accepting completions — so the in-flight range
// merges into the collected prefix. Before the drain existed, any
// interrupt cadence shorter than one lease's execution time (e.g.
// mpmb-serve's checkpoint slices on a large graph) collected an
// unchanged prefix every slice and the job livelocked at zero progress.
func TestDrainCommitsInFlightLease(t *testing.T) {
	g := meshGraph(t)
	const units = 96
	job := &core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 7, Units: units, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 7, Trials: units},
	}
	var interrupted atomic.Bool
	job.Interrupt = func() bool { return interrupted.Load() }

	coord := NewCoordinator()
	coord.LeaseUnits = 32
	coord.MaxGrants = 1 // no stealing: the lease book stays single-holder
	resc := startExecutor(&Executor{C: coord, Poll: time.Millisecond}, job)
	rep := grantPoll(t, coord, "w")

	// Interrupt with the lease in flight. The executor must drain, not
	// return: fresh ranges are frozen, but the claimed one is still owed.
	interrupted.Store(true)
	time.Sleep(30 * time.Millisecond)
	select {
	case out := <-resc:
		t.Fatalf("executor returned mid-drain with an outstanding lease (res %+v, err %v)", out.res, out.err)
	default:
	}
	if got := coord.grant("other"); got.Status != LeaseWait {
		t.Fatalf("draining job granted a fresh range %d..%d", got.Lo, got.Hi)
	}

	// The worker lands its completion; the drain settles and the executor
	// collects a prefix that includes the formerly in-flight range.
	msg := executeRange(t, job, rep.Lo, rep.Hi)
	msg.Job, msg.Lease = rep.Job.Job, rep.Lease
	if crep, err := coord.complete(msg); err != nil || !crep.Accepted {
		t.Fatalf("completion during drain refused: %+v, %v", crep, err)
	}
	var out drainOutcome
	select {
	case out = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("executor did not return after the drain settled")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Done != rep.Hi {
		t.Fatalf("Done = %d, want %d: in-flight lease was abandoned on interrupt", out.res.Done, rep.Hi)
	}
	want, err := (&core.LocalExecutor{Workers: 1}).ExecuteTrials(&core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 7, Units: rep.Hi, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 7, Trials: units},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(countMap(out.res.Counts), countMap(want.CountsSnapshot())) {
		t.Fatalf("drained prefix diverges from a local run of the same prefix\n got: %v\nwant: %v",
			out.res.Counts, want.CountsSnapshot())
	}
}

// TestDrainDeadlineBoundsDeadHolder: when the lease holder died, the
// drain can never settle — DrainWait bounds the wait so an interrupted
// run still returns promptly, with the honest (here: empty) prefix.
func TestDrainDeadlineBoundsDeadHolder(t *testing.T) {
	g := meshGraph(t)
	job := &core.ExecJob{
		Kind: core.ExecOS, Graph: g, Seed: 7, Units: 64, Start: 0,
		Spec: core.ExecSpec{Method: "os", Seed: 7, Trials: 64},
	}
	var interrupted atomic.Bool
	job.Interrupt = func() bool { return interrupted.Load() }

	coord := NewCoordinator()
	coord.LeaseUnits = 32
	resc := startExecutor(&Executor{C: coord, Poll: time.Millisecond, DrainWait: 50 * time.Millisecond}, job)
	grantPoll(t, coord, "doomed") // claimed, never completed

	start := time.Now()
	interrupted.Store(true)
	var out drainOutcome
	select {
	case out = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("executor never gave up on the dead holder's lease")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Done != 0 {
		t.Fatalf("Done = %d, want 0: nothing ever completed", out.res.Done)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drain took %v; DrainWait=50ms did not bound it", elapsed)
	}
}
