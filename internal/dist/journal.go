package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// Journal is the coordinator's write-ahead record of a run: every lease
// grant and every accepted span completion is persisted as its own
// atomically-renamed file before the in-memory state advances, so a
// coordinator killed at ANY instant can be restarted and re-derive its
// frontier, merged prefix and outstanding spans exactly. Replay rides
// the same idempotent merge the live protocol uses — a record applied
// twice, out of order, or past a crash mid-write is absorbed, not
// corrupting.
//
// Records are written through the same retrying core.CheckpointFS seam
// as checkpoints: a flaky volume gets the checkpoint store's
// exponential-backoff treatment, and exhaustion surfaces as the typed
// *core.RetryExhaustedError, which the completion handler turns into a
// 500 the worker's transport retries.
//
// Layout: Dir/<identity-hash>/spec.json (the job's identity),
// grant-<lo>.json (frontier bookkeeping, one per span, best-effort) and
// complete-<lo>.json (the full LeaseComplete, write-ahead of the merge).
// The per-job directory is removed when the job is collected.
type Journal struct {
	// Dir is the journal root. One subdirectory per journaled job,
	// keyed by a hash of the job's identity (spec minus the ephemeral
	// job id), so a restarted coordinator registering the identical job
	// finds its predecessor's records.
	Dir string
	// FS is the filesystem records are written through (nil = the real
	// one). Directory scans and removal during replay use the real
	// filesystem regardless — only record I/O is injectable.
	FS core.CheckpointFS
	// Retry shapes the per-record retry loop (zero value =
	// core.DefaultRetryPolicy()).
	Retry core.RetryPolicy
}

func (jl *Journal) fs() core.CheckpointFS {
	if jl.FS != nil {
		return jl.FS
	}
	return osJournalFS
}

// osJournalFS adapts the journal's default record I/O to the real
// filesystem with checkpoint semantics.
var osJournalFS core.CheckpointFS = realFS{}

type realFS struct{}

func (realFS) CreateTemp(dir, pattern string) (core.CheckpointFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (realFS) Rename(oldpath, newpath string) error    { return os.Rename(oldpath, newpath) }
func (realFS) Remove(name string) error                { return os.Remove(name) }
func (realFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (jl *Journal) retry() core.RetryPolicy {
	p := jl.Retry
	if p.MaxAttempts == 0 && p.BaseDelay == 0 && p.MaxDelay == 0 {
		d := core.DefaultRetryPolicy()
		d.Seed = p.Seed
		d.Sleep = p.Sleep
		p = d
	}
	return p
}

// jobKey hashes a job's identity: everything in the spec except the
// ephemeral per-process job id. Two registrations of the same logical
// run — a crashed coordinator's and its successor's — land on the same
// key and therefore the same journal directory.
func jobKey(spec JobSpec) string {
	spec.Job = 0
	data, err := json.Marshal(spec)
	if err != nil {
		// JobSpec is a plain value struct; this cannot fail.
		panic(fmt.Sprintf("dist: encoding job identity: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// sameIdentity reports whether two specs describe the same logical run,
// ignoring the ephemeral job id.
func sameIdentity(a, b JobSpec) bool {
	a.Job, b.Job = 0, 0
	return a == b
}

// grantRecord is the journal's frontier bookkeeping for one span.
type grantRecord struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// writeRecord atomically persists one record (temp file + rename),
// retrying transient failures per the journal's policy.
func (jl *Journal) writeRecord(dir, name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("dist: encoding journal record %s: %w", name, err)
	}
	p := jl.retry()
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	rng := randx.New(p.Seed)
	var last error
	for k := 0; k < attempts; k++ {
		if k > 0 {
			sleep(retryBackoff(p, k-1, rng))
		}
		if err := jl.writeOnce(dir, name, data); err != nil {
			last = err
			continue
		}
		return nil
	}
	return &core.RetryExhaustedError{Op: "journal", Path: filepath.Join(dir, name), Attempts: attempts, Last: last}
}

// retryBackoff mirrors the checkpoint store's backoff: attempt k
// (0-based) sleeps min(BaseDelay·2^k, MaxDelay) scaled by a uniform
// jitter factor in [0.5, 1).
func retryBackoff(p core.RetryPolicy, k int, rng *randx.RNG) time.Duration {
	d := p.BaseDelay
	for i := 0; i < k && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	return time.Duration((0.5 + 0.5*rng.Float64()) * float64(d))
}

func (jl *Journal) writeOnce(dir, name string, data []byte) error {
	f, err := jl.fs().CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		jl.fs().Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		jl.fs().Remove(tmp)
		return err
	}
	if err := jl.fs().Rename(tmp, filepath.Join(dir, name)); err != nil {
		jl.fs().Remove(tmp)
		return err
	}
	return nil
}

// readRecord loads and decodes one record through the FS seam.
func (jl *Journal) readRecord(path string, v any) error {
	f, err := jl.fs().Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

// adoptLocked hooks a freshly registered job up to its journal. If a
// prior epoch left records for the same identity, they are replayed:
// completions feed the standard validation + idempotent merge (so the
// prefix, aggregate and probe counters come back exactly), and every
// granted-but-uncompleted span below the recovered frontier is queued
// for immediate reissue — the crashed epoch's leases died with it.
// Otherwise the directory is (re)initialized with the job's identity.
// Called with the coordinator lock held, before the job is published.
func (c *Coordinator) adoptLocked(j *distJob) error {
	jl := c.Journal
	dir := filepath.Join(jl.Dir, jobKey(j.spec))
	j.jdir = dir
	j.granted = make(map[int]bool)
	var prior JobSpec
	if err := jl.readRecord(filepath.Join(dir, "spec.json"), &prior); err == nil && sameIdentity(prior, j.spec) {
		jl.replayLocked(j, dir)
		return nil
	}
	// No usable prior epoch (first run, or a stale identity collision):
	// start the journal fresh.
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("dist: resetting journal %s: %w", dir, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: creating journal %s: %w", dir, err)
	}
	if err := jl.writeRecord(dir, "spec.json", j.spec); err != nil {
		return fmt.Errorf("dist: journaling job identity: %w", err)
	}
	return nil
}

// replayLocked applies a prior epoch's records to a fresh job. Corrupt
// or torn records are skipped, never fatal: a lost completion just
// recomputes bit-identically, a lost grant just shrinks the recovered
// frontier.
func (jl *Journal) replayLocked(j *distJob, dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	frontier := j.spec.Start
	var completes []*LeaseComplete
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "grant-") && strings.HasSuffix(name, ".json"):
			var g grantRecord
			if err := jl.readRecord(filepath.Join(dir, name), &g); err != nil {
				continue
			}
			j.granted[g.Lo] = true
			if g.Hi > frontier {
				frontier = g.Hi
			}
		case strings.HasPrefix(name, "complete-") && strings.HasSuffix(name, ".json"):
			var msg LeaseComplete
			if err := jl.readRecord(filepath.Join(dir, name), &msg); err != nil {
				continue
			}
			completes = append(completes, &msg)
		}
	}
	sort.Slice(completes, func(x, y int) bool { return completes[x].Lo < completes[y].Lo })
	for _, msg := range completes {
		// The record was validated when first accepted; re-validate
		// anyway so a corrupted file cannot poison the merge.
		if j.checkRange(msg.Lo, msg.Hi) != nil || j.checkPayload(msg) != nil {
			continue
		}
		if _, dup := j.completed[msg.Lo]; dup {
			continue
		}
		j.completed[msg.Lo] = msg.Hi
		j.pending[msg.Lo] = &pendingRange{span: span{msg.Lo, msg.Hi}, payload: msg.Payload, counters: msg.Counters}
		if msg.Hi > frontier {
			frontier = msg.Hi
		}
	}
	j.advanceLocked()
	// Re-derive the grant frontier: fresh grants resume past the highest
	// journaled span, and every uncompleted span below it is reissued
	// immediately.
	j.nextLo = frontier + 1
	for lo := j.spec.Start + 1; lo <= frontier; lo += j.spec.LeaseUnits {
		if _, done := j.completed[lo]; done {
			continue
		}
		hi := lo + j.spec.LeaseUnits - 1
		if hi > j.spec.Units {
			hi = j.spec.Units
		}
		j.freed = append(j.freed, span{lo: lo, hi: hi})
	}
	sort.Slice(j.freed, func(x, y int) bool { return j.freed[x].lo < j.freed[y].lo })
	if j.prefix == j.spec.Units && !j.halted {
		j.halted = true
		close(j.done)
	}
}

// journalGrantLocked persists frontier bookkeeping for a fresh or
// reissued span, once per span. Best-effort: a lost grant record only
// shrinks the recovered frontier, costing recomputation, never
// correctness.
func (c *Coordinator) journalGrantLocked(j *distJob, sp span) {
	if c.Journal == nil || j.jdir == "" || j.granted[sp.lo] {
		return
	}
	j.granted[sp.lo] = true
	c.Journal.writeRecord(j.jdir, fmt.Sprintf("grant-%010d.json", sp.lo), grantRecord{Lo: sp.lo, Hi: sp.hi})
}

// journalCompleteLocked write-ahead persists an accepted completion.
// Unlike grants this MUST land before the merge advances: the reply to
// the worker promises the span is durable. Failure surfaces to the
// completion handler as a 500 the worker's transport retries.
func (c *Coordinator) journalCompleteLocked(j *distJob, msg *LeaseComplete) error {
	if c.Journal == nil || j.jdir == "" {
		return nil
	}
	return c.Journal.writeRecord(j.jdir, fmt.Sprintf("complete-%010d.json", msg.Lo), msg)
}

// discard removes a collected job's journal: the run's result has been
// handed to the caller, so the records have nothing left to protect.
func (jl *Journal) discard(dir string) {
	if dir != "" {
		os.RemoveAll(dir)
	}
}
