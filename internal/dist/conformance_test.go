package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// meshGraph is a deterministic dense-ish fixture: big enough that every
// method finds butterflies and a run spans many leases, small enough to
// stay fast under -race.
func meshGraph(t testing.TB) *mpmb.Graph {
	t.Helper()
	const nl, nr = 24, 24
	b := mpmb.NewBuilder(nl, nr)
	for u := 0; u < nl; u++ {
		for k := 0; k < 8; k++ {
			v := (u*7 + k*5) % nr
			w := float64(1 + (u*13+v*29)%50)
			p := 0.2 + 0.6*float64((u*31+v*17)%100)/100
			b.AddEdge(uint32(u), uint32(v), w, p)
		}
	}
	return b.Build()
}

// fleet stands up a coordinator behind a real HTTP server plus n
// in-process workers, torn down with the test.
func fleet(t testing.TB, coord *Coordinator, n int) {
	t.Helper()
	hs := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{Base: hs.URL, Name: fmt.Sprintf("w%d", i), Pool: 1}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		hs.Close()
	})
}

// distMethods are the executor-capable search methods.
var distMethods = []mpmb.Method{mpmb.MethodOS, mpmb.MethodOLS, mpmb.MethodOLSKL}

func baseOptions(method mpmb.Method) mpmb.Options {
	return mpmb.Options{
		Method:     method,
		Trials:     1500,
		PrepTrials: 40,
		Seed:       7,
		Mu:         0.05,
	}
}

// TestConformanceBitIdentical is the core acceptance bar: a coordinator
// plus {1,2,4} workers must return a Result that is bit-identical —
// reflect.DeepEqual over the whole struct, exact float64 estimates
// included — to the sequential run with the same options.
func TestConformanceBitIdentical(t *testing.T) {
	g := meshGraph(t)
	for _, method := range distMethods {
		seq, err := mpmb.Search(g, baseOptions(method))
		if err != nil {
			t.Fatalf("%s sequential: %v", method, err)
		}
		if _, ok := seq.Best(); !ok {
			t.Fatalf("%s sequential found nothing; fixture too sparse", method)
		}
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%dw", method, workers), func(t *testing.T) {
				coord := NewCoordinator()
				coord.LeaseUnits = 64 // force many leases per run
				fleet(t, coord, workers)
				opt := baseOptions(method)
				opt.Executor = &Executor{C: coord}
				got, err := mpmb.Search(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("distributed Result diverges from sequential\n got: %+v\nwant: %+v", got, seq)
				}
			})
		}
	}
}

// TestConformanceCounters checks terminal counter identity: the
// deterministic counters — exact functions of which trials ran, not of
// where or how fast — must match the sequential observer's exactly.
// Time-derived telemetry (TrialNs, Workers, leader gauges) is excluded
// by construction: only the deterministic fields are compared.
func TestConformanceCounters(t *testing.T) {
	g := meshGraph(t)
	type deterministic struct {
		Trials, TrialHits, PrepTrials                      int64
		EdgesScanned, EdgesPruned, CandScanned, CandPruned int64
		Candidates                                         int64
	}
	pick := func(m *mpmb.Metrics) deterministic {
		return deterministic{
			Trials: m.Trials, TrialHits: m.TrialHits, PrepTrials: m.PrepTrials,
			EdgesScanned: m.EdgesScanned, EdgesPruned: m.EdgesPruned,
			CandScanned: m.CandScanned, CandPruned: m.CandPruned,
			Candidates: m.Candidates,
		}
	}
	for _, method := range distMethods {
		t.Run(string(method), func(t *testing.T) {
			opt := baseOptions(method)
			obs := mpmb.NewObserver(mpmb.ObserverConfig{})
			opt.Observer = obs
			seq, err := mpmb.Search(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			obs.Close()
			want := pick(seq.Metrics)
			if want.Trials == 0 {
				t.Fatal("sequential run recorded no trials; observer broken")
			}

			coord := NewCoordinator()
			coord.LeaseUnits = 64
			fleet(t, coord, 3)
			dopt := baseOptions(method)
			dobs := mpmb.NewObserver(mpmb.ObserverConfig{})
			dopt.Observer = dobs
			dopt.Executor = &Executor{C: coord}
			dres, err := mpmb.Search(g, dopt)
			if err != nil {
				t.Fatal(err)
			}
			dobs.Close()
			if got := pick(dres.Metrics); got != want {
				t.Fatalf("distributed counters diverge\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// coordProgress reports the merged prefix and registered start of the
// single active job, if any.
func coordProgress(c *Coordinator) (prefix, start int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, j := range c.jobs {
		return j.prefix, j.spec.Start, true
	}
	return 0, 0, false
}

// TestConformanceMidRunResume cancels a distributed run once the
// coordinator has merged a strict prefix, checkpoints the partial
// Result, then finishes it — again distributed — and requires the final
// Result bit-identical to the never-interrupted sequential run.
func TestConformanceMidRunResume(t *testing.T) {
	g := meshGraph(t)
	for _, method := range distMethods {
		t.Run(string(method), func(t *testing.T) {
			seq, err := mpmb.Search(g, baseOptions(method))
			if err != nil {
				t.Fatal(err)
			}

			// Narrow leases: ols-kl's units are candidates (far fewer than
			// trials), and the interrupt must land between leases. A single
			// worker with an injected hold makes the interruption
			// deterministic: it completes the first range, then parks its
			// second completion until the search has been cancelled — so the
			// coordinator's merged prefix is a strict, non-empty prefix when
			// the executor collects it.
			coord := NewCoordinator()
			coord.LeaseUnits = 4
			hs := httptest.NewServer(coord.Handler())
			defer hs.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cancelled := make(chan struct{})
			var completes int32
			w := &Worker{Base: hs.URL, Pool: 1, testFaults: &workerFaults{
				interceptComplete: func(*LeaseComplete) bool {
					if atomic.AddInt32(&completes, 1) == 2 {
						select {
						case <-cancelled:
						case <-time.After(5 * time.Second):
						}
					}
					return true
				},
			}}
			workerCtx, stopWorker := context.WithCancel(context.Background())
			var wwg sync.WaitGroup
			wwg.Add(1)
			go func() { defer wwg.Done(); w.Run(workerCtx) }()
			defer func() { stopWorker(); wwg.Wait() }()
			// Cancel as soon as the sampling-phase job has merged at least
			// one range; the held second completion guarantees it is not all
			// of them.
			go func() {
				for {
					if prefix, start, ok := coordProgress(coord); ok && prefix > start {
						cancel()
						close(cancelled)
						return
					}
					select {
					case <-ctx.Done():
						return
					case <-time.After(100 * time.Microsecond):
					}
				}
			}()
			opt := baseOptions(method)
			opt.Executor = &Executor{C: coord, Poll: time.Millisecond}
			partial, err := mpmb.SearchContext(ctx, g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !partial.Partial {
				t.Fatal("run completed despite the held completion; expected a partial result")
			}
			if partial.Checkpoint == nil {
				t.Fatal("partial distributed run carried no checkpoint")
			}
			if partial.TrialsDone <= 0 || partial.TrialsDone >= opt.Trials {
				t.Fatalf("TrialsDone = %d, want a strict prefix of %d", partial.TrialsDone, opt.Trials)
			}

			// Finish the run through a fresh coordinator and fleet.
			coord2 := NewCoordinator()
			coord2.LeaseUnits = 4
			fleet(t, coord2, 4)
			ropt := baseOptions(method)
			ropt.Resume = partial.Checkpoint
			ropt.Executor = &Executor{C: coord2}
			final, err := mpmb.Search(g, ropt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(final, seq) {
				t.Fatalf("resumed distributed Result diverges from sequential\n got: %+v\nwant: %+v", final, seq)
			}
		})
	}
}

// TestExecutorRejectsAdaptive pins the Options contract: adaptive
// supervision cannot ride an explicit executor, and non-sampling
// methods reject it outright.
func TestExecutorRejectsAdaptive(t *testing.T) {
	g := meshGraph(t)
	coord := NewCoordinator()
	opt := baseOptions(mpmb.MethodOLS)
	opt.Executor = &Executor{C: coord}
	opt.AuditEvery = 100
	if _, err := mpmb.Search(g, opt); err == nil {
		t.Fatal("adaptive options accepted alongside an explicit Executor")
	}
	opt = baseOptions(mpmb.MethodExact)
	opt.Trials, opt.PrepTrials = 0, 0
	opt.Executor = &Executor{C: coord}
	if _, err := mpmb.Search(g, opt); err == nil {
		t.Fatal("exact method accepted an Executor")
	}
}
