package dist

import (
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// Executor is the distributed core.TrialExecutor: ExecuteTrials
// registers the job with a Coordinator and blocks until the worker
// fleet completes it (or the job's Interrupt fires, in which case
// in-flight leases are drained first), then returns the coordinator's
// prefix-merged aggregate. Because every unit's stream
// derives from (phase seed, unit index) and the coordinator merges in
// prefix order, the returned ExecResult — and therefore the runner's
// Result — is bit-identical to local execution, regardless of fleet
// size, lease order, duplicated grants, or mid-run worker deaths.
//
// The coordinator is a pure control plane: a run through this executor
// makes no progress until at least one worker joins it.
type Executor struct {
	// C is the coordinator the job registers with.
	C *Coordinator
	// Poll is the Interrupt poll cadence while waiting (default 5ms).
	Poll time.Duration
	// DrainWait bounds how long an interrupted run waits for in-flight
	// leases to land before collecting (default 5s). The wait ends as
	// soon as every outstanding lease settles, so with a healthy fleet
	// it lasts roughly one lease's remaining execution time; the bound
	// only bites when a worker died holding a lease.
	DrainWait time.Duration
}

// ExecuteTrials implements core.TrialExecutor.
func (e *Executor) ExecuteTrials(job *core.ExecJob) (*core.ExecResult, error) {
	if job.Start >= job.Units {
		return &core.ExecResult{Done: job.Units}, nil
	}
	id, done, err := e.C.register(job)
	if err != nil {
		return nil, err
	}
	poll := e.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			// Fleet finished the whole range: collect the full aggregate.
			return e.C.collect(id)
		case <-ticker.C:
			if job.Interrupt != nil && job.Interrupt() {
				return e.drainAndCollect(id, done)
			}
		}
	}
}

// drainAndCollect honors the local pool's contract on the distributed
// path: a claimed chunk is never abandoned. On interrupt the
// coordinator freezes the job's fresh-range frontier and the executor
// waits — bounded by DrainWait — for outstanding leases to settle, so
// work the fleet already claimed merges into the returned prefix
// instead of being discarded. Without this, an interrupt cadence
// shorter than one lease's execution time (a daemon's checkpoint
// slices, say) would collect an unchanged prefix every slice and the
// job would livelock at zero progress. Ranges completed beyond the
// merged prefix are still discarded — a resume recomputes them
// bit-identically, so nothing is lost and nothing double-counted.
func (e *Executor) drainAndCollect(id uint64, done <-chan struct{}) (*core.ExecResult, error) {
	e.C.drain(id)
	wait := e.DrainWait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	poll := e.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return e.C.collect(id)
		case <-deadline.C:
			// A worker died holding a lease (or none ever joined its
			// reissue): stop waiting and collect the merged prefix.
			return e.C.collect(id)
		case <-ticker.C:
			if e.C.settled(id) {
				return e.C.collect(id)
			}
		}
	}
}
