package dist

import (
	"fmt"
	"sync"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/telemetry"
)

// Executor is the distributed core.TrialExecutor: ExecuteTrials
// registers the job with a Coordinator and blocks until the worker
// fleet completes it (or the job's Interrupt fires, in which case
// in-flight leases are drained first), then returns the coordinator's
// prefix-merged aggregate. Because every unit's stream
// derives from (phase seed, unit index) and the coordinator merges in
// prefix order, the returned ExecResult — and therefore the runner's
// Result — is bit-identical to local execution, regardless of fleet
// size, lease order, duplicated grants, or mid-run worker deaths.
//
// The coordinator is a pure control plane: a run through this executor
// makes no progress until at least one worker joins it — unless a
// Fallback is configured, in which case a fleet silent past FleetGrace
// degrades the run to an in-process fallback worker that leases and
// completes spans through the exact same merge, preserving bit-identity
// with zero live workers. Workers that come (back) mid-run simply share
// the lease book with the fallback worker.
type Executor struct {
	// C is the coordinator the job registers with.
	C *Coordinator
	// Poll is the Interrupt poll cadence while waiting (default 5ms).
	Poll time.Duration
	// DrainWait bounds how long an interrupted run waits for in-flight
	// leases to land before collecting (default 5s). The wait ends as
	// soon as every outstanding lease settles, so with a healthy fleet
	// it lasts roughly one lease's remaining execution time; the bound
	// only bites when a worker died holding a lease.
	DrainWait time.Duration
	// Fallback, when non-nil, is the degraded-mode escape hatch: the
	// local executor spans run on when the fleet stays silent past
	// FleetGrace. Nil keeps the pure control-plane behavior (no
	// progress without workers).
	Fallback *core.LocalExecutor
	// FleetGrace is how long the fleet may stay silent — no worker HTTP
	// exchange on the coordinator — before Fallback engages (default
	// 15s).
	FleetGrace time.Duration

	// Degradation record of the most recent ExecuteTrials, read after
	// it returns via FellBack.
	fellBack   bool
	fellBackAt int
}

// FellBack reports whether the most recent ExecuteTrials engaged the
// degraded-mode fallback, and the merged-prefix trial count at that
// moment. Callers use it to record the dist→local transition.
func (e *Executor) FellBack() (bool, int) { return e.fellBack, e.fellBackAt }

func (e *Executor) fleetGrace() time.Duration {
	if e.FleetGrace > 0 {
		return e.FleetGrace
	}
	return 15 * time.Second
}

// ExecuteTrials implements core.TrialExecutor.
func (e *Executor) ExecuteTrials(job *core.ExecJob) (*core.ExecResult, error) {
	if job.Start >= job.Units {
		return &core.ExecResult{Done: job.Units}, nil
	}
	e.fellBack, e.fellBackAt = false, 0
	id, done, err := e.C.register(job)
	if err != nil {
		return nil, err
	}
	poll := e.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	start := time.Now()
	stop := make(chan struct{})
	var fb sync.WaitGroup
	defer fb.Wait()   // the fallback worker finishes its claimed span
	defer close(stop) // ... after being told the run is over
	for {
		select {
		case <-done:
			// Fleet finished the whole range: collect the full aggregate.
			return e.C.collect(id)
		case <-ticker.C:
			if job.Interrupt != nil && job.Interrupt() {
				return e.drainAndCollect(id, done)
			}
			if e.Fallback != nil && !e.fellBack && e.fleetSilent(id, start) {
				e.fellBack = true
				e.fellBackAt = e.C.prefix(id)
				fb.Add(1)
				go func() {
					defer fb.Done()
					e.runFallback(stop, id, job)
				}()
			}
		}
	}
}

// fleetSilent reports whether no worker has contacted the coordinator
// for FleetGrace, measured from the later of the run's start and the
// fleet's last exchange (a fleet that was alive and vanished gets the
// same grace as one that never joined). A worker crunching a long
// span makes no HTTP calls at all, so wire silence alone is not
// death: as long as the job holds a lease inside its TTL the fleet
// counts as live, and a holder that really died hands the decision
// back here when its lease expires.
func (e *Executor) fleetSilent(id uint64, start time.Time) bool {
	ref := e.C.lastWorkerContact()
	if ref.Before(start) {
		ref = start
	}
	if time.Since(ref) < e.fleetGrace() {
		return false
	}
	return !e.C.hasLiveLease(id)
}

// runFallback is the in-process fallback worker: it leases spans of
// exactly this job and completes them through the coordinator's
// standard idempotent merge, so remote workers rejoining mid-run and
// the fallback worker compose without coordination. It stops when the
// job is done, the executor returns, or a span fails.
func (e *Executor) runFallback(stop <-chan struct{}, id uint64, job *core.ExecJob) {
	pool := 0
	if e.Fallback != nil {
		pool = e.Fallback.Workers
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		rep := e.C.grantJob("local-fallback", id)
		switch rep.Status {
		case LeaseGranted:
			msg, err := executeSpan(job, id, rep.Lease, rep.Lo, rep.Hi, pool)
			if err != nil {
				return
			}
			ack, err := e.C.complete(msg)
			if err != nil {
				return
			}
			if ack.JobDone {
				return
			}
		case LeaseWait:
			wait := time.Duration(rep.WaitMs) * time.Millisecond
			if wait <= 0 {
				wait = 25 * time.Millisecond
			}
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		default:
			return
		}
	}
}

// executeSpan runs one leased span of job through a fresh LocalExecutor
// and assembles its completion message — the in-process mirror of the
// remote worker's execute, sharing its payload and counter contract.
func executeSpan(job *core.ExecJob, jobID, leaseID uint64, lo, hi, pool int) (*LeaseComplete, error) {
	reg := telemetry.NewRegistry()
	sub := &core.ExecJob{
		Kind:    job.Kind,
		Graph:   job.Graph,
		Cands:   job.Cands,
		Seed:    job.Seed,
		Units:   hi,     // run exactly the leased range:
		Start:   lo - 1, // units Start+1..Units = lo..hi
		OS:      job.OS,
		KL:      job.KL,
		Probe:   &telemetry.Probe{Reg: reg, Method: job.Spec.Method},
		Workers: pool,
	}
	res, err := (&core.LocalExecutor{Workers: pool}).ExecuteTrials(sub)
	if err != nil {
		return nil, err
	}
	if res.Done != hi {
		return nil, fmt.Errorf("dist: fallback range %d..%d stopped at %d without an interrupt", lo, hi, res.Done)
	}
	var payload RangePayload
	switch job.Kind {
	case core.ExecOS:
		payload.Counts = res.CountsSnapshot()
	case core.ExecOptimized:
		payload.CandCounts = res.CandCounts
	case core.ExecKarpLuby:
		payload.CandProbs = res.CandProbs[lo-1 : hi]
		payload.CandTrials = res.CandTrials[lo-1 : hi]
	default:
		return nil, fmt.Errorf("%w: unknown job kind %d", ErrBadPayload, job.Kind)
	}
	m := reg.Snapshot()
	return &LeaseComplete{
		V:       Version,
		Worker:  "local-fallback",
		Job:     jobID,
		Lease:   leaseID,
		Lo:      lo,
		Hi:      hi,
		Payload: payload,
		Counters: Counters{
			Trials:          m.Trials,
			TrialHits:       m.TrialHits,
			EdgesScanned:    m.EdgesScanned,
			EdgesPruned:     m.EdgesPruned,
			CandScanned:     m.CandScanned,
			CandPruned:      m.CandPruned,
			PrefixFallbacks: m.PrefixFallbacks,
		},
	}, nil
}

// drainAndCollect honors the local pool's contract on the distributed
// path: a claimed chunk is never abandoned. On interrupt the
// coordinator freezes the job's fresh-range frontier and the executor
// waits — bounded by DrainWait — for outstanding leases to settle, so
// work the fleet already claimed merges into the returned prefix
// instead of being discarded. Without this, an interrupt cadence
// shorter than one lease's execution time (a daemon's checkpoint
// slices, say) would collect an unchanged prefix every slice and the
// job would livelock at zero progress. Ranges completed beyond the
// merged prefix are still discarded — a resume recomputes them
// bit-identically, so nothing is lost and nothing double-counted.
func (e *Executor) drainAndCollect(id uint64, done <-chan struct{}) (*core.ExecResult, error) {
	e.C.drain(id)
	wait := e.DrainWait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	poll := e.Poll
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return e.C.collect(id)
		case <-deadline.C:
			// A worker died holding a lease (or none ever joined its
			// reissue): stop waiting and collect the merged prefix.
			return e.C.collect(id)
		case <-ticker.C:
			if e.C.settled(id) {
				return e.C.collect(id)
			}
		}
	}
}
