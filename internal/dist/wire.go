// Package dist fans the engine's independent trial units out across
// processes: a coordinator leases contiguous trial ranges to workers
// over a small HTTP/JSON protocol, workers execute the ranges with the
// in-process LocalExecutor and report additive range payloads back, and
// the coordinator merges accepted ranges in prefix order into exactly
// the state the core runners expect from any TrialExecutor.
//
// The whole design leans on one engine property: every trial unit's
// random stream is derived from (phase seed, unit index), so WHERE a
// range runs cannot change a single result bit. That makes the
// fault-tolerance story simple arithmetic instead of consensus:
//
//   - Leases carry a TTL. A worker that dies mid-lease simply never
//     completes it; the coordinator reissues the expired range to the
//     next worker, which recomputes the identical payload.
//   - Range completion is idempotent. Ranges are validated against the
//     job's fixed lease arithmetic, and a duplicate (or late, or
//     reordered) completion of an already-accepted range is acknowledged
//     and dropped — merging is keyed by range, not by message.
//   - Work stealing is duplicate granting. When no fresh or freed work
//     remains, outstanding ranges are granted again to idle workers;
//     whichever copy completes first wins, the rest are dropped as
//     duplicates.
//
// Merging in prefix order keeps the coordinator's aggregate equal, at
// every instant, to a sequential run of trials 1..prefix — so a
// mid-run interruption yields the engine's standard resumable
// checkpoint, and terminal counters are exact.
package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"github.com/uncertain-graphs/mpmb/internal/core"
)

// Version is the wire protocol version. Every message carries it; a
// mismatch is rejected with ErrVersionSkew before anything is trusted.
const Version = 1

// maxMessageBytes bounds a decoded protocol message. Payload sizes are
// bounded by candidate-set width and distinct-butterfly counts, both of
// which sit far below this in practice; the bound exists so a confused
// (or malicious) peer cannot balloon coordinator memory.
const maxMessageBytes = 64 << 20

// Typed protocol errors. Handlers wrap them with context; callers and
// tests match with errors.Is.
var (
	// ErrVersionSkew rejects a message whose version field does not match
	// this binary's Version.
	ErrVersionSkew = errors.New("dist: protocol version skew")
	// ErrBadRange rejects a lease range that the coordinator's fixed
	// lease arithmetic can never have issued (inverted, out of bounds,
	// misaligned, or overlapping a differently-shaped range).
	ErrBadRange = errors.New("dist: bad lease range")
	// ErrBadPayload rejects a range payload whose shape does not match
	// the job's kind and range width.
	ErrBadPayload = errors.New("dist: bad range payload")
)

// JobSpec is the run identity the coordinator hands to workers: every
// input a worker needs to rebuild the job state locally (graph by
// checksum, candidate set by deterministic re-preparation) and execute
// any leased range bit-identically.
type JobSpec struct {
	V    int    `json:"v"`
	Job  uint64 `json:"job"`
	Kind uint8  `json:"kind"` // core.ExecKind

	// Method / RunSeed / Trials / PrepTrials / Mu mirror core.ExecSpec —
	// the run-level identity (RunSeed drives candidate re-preparation;
	// PhaseSeed drives the leased units themselves).
	Method     string  `json:"method"`
	RunSeed    uint64  `json:"run_seed"`
	PhaseSeed  uint64  `json:"phase_seed"`
	Units      int     `json:"units"`
	Trials     int     `json:"trials"`
	PrepTrials int     `json:"prep_trials,omitempty"`
	Mu         float64 `json:"mu,omitempty"`

	// Start is the job's completed prefix at registration (a resumed
	// run); leases cover Start+1..Units and are aligned to Start.
	Start int `json:"start,omitempty"`

	// Karp-Luby sizing knobs (ExecKarpLuby only).
	KLBaseTrials int     `json:"kl_base_trials,omitempty"`
	KLMu         float64 `json:"kl_mu,omitempty"`
	KLMaxTrials  int     `json:"kl_max_trials,omitempty"`

	// Ordering Sampling kernel knobs (ExecOS execution and candidate
	// re-preparation both).
	DisableEdgePrune bool `json:"disable_edge_prune,omitempty"`
	KeepAllAngles    bool `json:"keep_all_angles,omitempty"`
	DropA2           bool `json:"drop_a2,omitempty"`

	// GraphCRC fingerprints the graph; workers verify the fetched bytes
	// against it before executing anything.
	GraphCRC uint32 `json:"graph_crc"`
	// LeaseUnits is the job's fixed lease width; all range validation is
	// arithmetic over it.
	LeaseUnits int `json:"lease_units"`
}

// LeaseRequest asks the coordinator for work.
type LeaseRequest struct {
	V      int    `json:"v"`
	Worker string `json:"worker"`
}

// LeaseReply statuses.
const (
	// LeaseGranted carries a job spec and a range to execute.
	LeaseGranted = "lease"
	// LeaseWait means no range is currently grantable (no active job, or
	// every range is leased out); poll again after WaitMs.
	LeaseWait = "wait"
)

// LeaseReply answers a LeaseRequest.
type LeaseReply struct {
	V      int      `json:"v"`
	Status string   `json:"status"`
	Job    *JobSpec `json:"job,omitempty"`
	Lease  uint64   `json:"lease,omitempty"`
	Lo     int      `json:"lo,omitempty"`
	Hi     int      `json:"hi,omitempty"`
	WaitMs int      `json:"wait_ms,omitempty"`
}

// RangePayload is the additive result of one executed range. Exactly
// one group is populated, matching the job's kind (the same shapes as
// core.ExecResult, restricted to the range):
//
//   - ExecOS: Counts, the per-butterfly maximum tallies of the range's
//     trials (counts add across ranges).
//   - ExecOptimized: CandCounts, a full-candidate-width hit vector
//     summed over the range's trials (vectors add across ranges).
//   - ExecKarpLuby: CandProbs and CandTrials of exactly the range's
//     candidates, i.e. length hi-lo+1 (ranges concatenate).
//
// encoding/json round-trips float64 exactly (shortest-representation
// encoding), so shipping payloads as JSON preserves bit-identity; the
// values are finite by construction (NaN/Inf are not representable and
// are rejected at decode).
type RangePayload struct {
	Counts     []core.ButterflyCount `json:"counts,omitempty"`
	CandCounts []int64               `json:"cand_counts,omitempty"`
	CandProbs  []float64             `json:"cand_probs,omitempty"`
	CandTrials []int                 `json:"cand_trials,omitempty"`
}

// Counters are the deterministic telemetry deltas of one executed
// range — exact functions of which trials ran, so summing accepted
// ranges' counters in prefix order reproduces a local run's terminal
// counters exactly. Time-based telemetry (latency histograms) is
// deliberately absent: it is not a function of the trial set.
type Counters struct {
	Trials       int64 `json:"trials"`
	TrialHits    int64 `json:"trial_hits"`
	EdgesScanned int64 `json:"edges_scanned"`
	EdgesPruned  int64 `json:"edges_pruned"`
	CandScanned  int64 `json:"cand_scanned"`
	CandPruned   int64 `json:"cand_pruned"`
	// PrefixFallbacks counts trials of the range that crossed the kernel
	// snapshot's calibrated prefix boundary. Deterministic per trial set
	// (the boundary is a pure function of the graph), so it merges like
	// the scan counters. Omitted from old workers' payloads and decoded
	// as 0, which only undercounts telemetry — never results.
	PrefixFallbacks int64 `json:"prefix_fallbacks,omitempty"`
}

// LeaseComplete reports an executed range. Lo/Hi are repeated from the
// lease (and validated against the job's lease arithmetic) so that a
// reissued lease's late original completion still merges correctly.
type LeaseComplete struct {
	V        int          `json:"v"`
	Worker   string       `json:"worker"`
	Job      uint64       `json:"job"`
	Lease    uint64       `json:"lease"`
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
	Payload  RangePayload `json:"payload"`
	Counters Counters     `json:"counters"`
}

// CompleteReply acknowledges a LeaseComplete. Accepted is false for
// duplicates and for completions of vanished jobs — both are normal
// protocol outcomes, not errors. JobDone tells the worker the job needs
// no further leases.
type CompleteReply struct {
	V        int  `json:"v"`
	Accepted bool `json:"accepted"`
	JobDone  bool `json:"job_done"`
}

// DecodeLeaseComplete parses and structurally validates a LeaseComplete:
// protocol version, range sanity, and payload shape purity (exactly the
// fields of one payload kind, finite floats, consistent lengths).
// Job-contextual validation — lease-arithmetic alignment, candidate
// widths — happens in the coordinator, which knows the job.
func DecodeLeaseComplete(data []byte) (*LeaseComplete, error) {
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("%w: message of %d bytes exceeds limit", ErrBadPayload, len(data))
	}
	var msg LeaseComplete
	if err := json.Unmarshal(data, &msg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if msg.V != Version {
		return nil, fmt.Errorf("%w: got v%d, want v%d", ErrVersionSkew, msg.V, Version)
	}
	if msg.Lo < 1 || msg.Hi < msg.Lo {
		return nil, fmt.Errorf("%w: range %d..%d", ErrBadRange, msg.Lo, msg.Hi)
	}
	if err := msg.Payload.check(msg.Hi - msg.Lo + 1); err != nil {
		return nil, err
	}
	for _, c := range msg.Counters.slice() {
		if c < 0 {
			return nil, fmt.Errorf("%w: negative counter", ErrBadPayload)
		}
	}
	return &msg, nil
}

func (c Counters) slice() [7]int64 {
	return [7]int64{c.Trials, c.TrialHits, c.EdgesScanned, c.EdgesPruned, c.CandScanned, c.CandPruned, c.PrefixFallbacks}
}

// check validates a payload's internal consistency for a range of the
// given width: at most one kind's fields populated, finite floats,
// non-negative counts, and KL vectors of exactly the range width.
func (p *RangePayload) check(width int) error {
	kinds := 0
	if p.Counts != nil {
		kinds++
	}
	if p.CandCounts != nil {
		kinds++
	}
	if p.CandProbs != nil || p.CandTrials != nil {
		kinds++
	}
	if kinds > 1 {
		return fmt.Errorf("%w: payload mixes kinds", ErrBadPayload)
	}
	for _, e := range p.Counts {
		if e.Count <= 0 || int(e.Count) > width {
			return fmt.Errorf("%w: butterfly count %d outside 1..%d", ErrBadPayload, e.Count, width)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return fmt.Errorf("%w: non-finite butterfly weight", ErrBadPayload)
		}
	}
	for _, v := range p.CandCounts {
		if v < 0 || int(v) > width {
			return fmt.Errorf("%w: candidate count %d outside 0..%d", ErrBadPayload, v, width)
		}
	}
	if p.CandProbs != nil || p.CandTrials != nil {
		if len(p.CandProbs) != width || len(p.CandTrials) != width {
			return fmt.Errorf("%w: KL vectors of %d/%d entries for a %d-unit range",
				ErrBadPayload, len(p.CandProbs), len(p.CandTrials), width)
		}
		for _, v := range p.CandProbs {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
				return fmt.Errorf("%w: candidate probability outside [0,1]", ErrBadPayload)
			}
		}
		for _, t := range p.CandTrials {
			if t < 0 {
				return fmt.Errorf("%w: negative candidate trial count", ErrBadPayload)
			}
		}
	}
	return nil
}

// readAll reads a message body under the size bound.
func readAll(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxMessageBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("%w: message exceeds %d bytes", ErrBadPayload, maxMessageBytes)
	}
	return data, nil
}

// readMessage decodes a JSON message from a size-bounded reader.
func readMessage(r io.Reader, v any) error {
	data, err := readAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// encodeJSON marshals a message under the size bound.
func encodeJSON(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(data) > maxMessageBytes {
		return nil, fmt.Errorf("%w: message exceeds %d bytes", ErrBadPayload, maxMessageBytes)
	}
	return data, nil
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
