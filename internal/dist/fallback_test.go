package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
	"github.com/uncertain-graphs/mpmb/internal/core"
)

// TestExecutorFallbackNoWorkers: with zero workers joined and a Fallback
// configured, the executor must degrade to the in-process fallback
// worker after FleetGrace, finish the run bit-identically, and report
// the degradation through FellBack.
func TestExecutorFallbackNoWorkers(t *testing.T) {
	g := meshGraph(t)
	for _, method := range distMethods {
		t.Run(string(method), func(t *testing.T) {
			seq, err := mpmb.Search(g, baseOptions(method))
			if err != nil {
				t.Fatal(err)
			}
			coord := NewCoordinator()
			coord.LeaseUnits = 64
			ex := &Executor{
				C:          coord,
				Poll:       time.Millisecond,
				Fallback:   &core.LocalExecutor{Workers: 2},
				FleetGrace: 30 * time.Millisecond,
			}
			opt := baseOptions(method)
			opt.Executor = ex
			got, err := mpmb.Search(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if fb, _ := ex.FellBack(); !fb {
				t.Fatal("fallback never engaged with zero workers")
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("degraded Result diverges from sequential\n got: %+v\nwant: %+v", got, seq)
			}
		})
	}
}

// TestExecutorNoFallbackWithLiveFleet: a fleet that is actually talking
// to the coordinator must keep the fallback disengaged, however small
// the job.
func TestExecutorNoFallbackWithLiveFleet(t *testing.T) {
	g := meshGraph(t)
	seq, err := mpmb.Search(g, baseOptions(mpmb.MethodOS))
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator()
	coord.LeaseUnits = 64
	fleet(t, coord, 2)
	ex := &Executor{
		C:          coord,
		Fallback:   &core.LocalExecutor{Workers: 2},
		FleetGrace: 2 * time.Second,
	}
	opt := baseOptions(mpmb.MethodOS)
	opt.Executor = ex
	got, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fb, _ := ex.FellBack(); fb {
		t.Fatal("fallback engaged despite a live fleet")
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("Result diverges from sequential\n got: %+v\nwant: %+v", got, seq)
	}
}

// TestExecutorNoFallbackWhileLeaseHeld: a worker crunching a long span
// makes no HTTP calls, so the wire goes quiet for longer than
// FleetGrace while work is very much in progress. An unexpired lease
// must count as fleet liveness — the fallback stays out and the run
// completes on the slow worker alone.
func TestExecutorNoFallbackWhileLeaseHeld(t *testing.T) {
	g := meshGraph(t)
	opt := baseOptions(mpmb.MethodOS)
	seq, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator()
	coord.LeaseUnits = 512 // few, long-held leases
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()
	ex := &Executor{
		C:          coord,
		Poll:       time.Millisecond,
		Fallback:   &core.LocalExecutor{Workers: 2},
		FleetGrace: 30 * time.Millisecond,
	}

	// A deliberately slow worker: it leases over HTTP like a real one,
	// then sits silent well past the grace before completing each span.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tr := &Transport{}
		for ctx.Err() == nil {
			var rep LeaseReply
			err := tr.postJSON(ctx, "lease", hs.URL+"/dist/v1/lease",
				&LeaseRequest{V: Version, Worker: "molasses"}, &rep)
			if err != nil || rep.Status != LeaseGranted {
				select {
				case <-ctx.Done():
				case <-time.After(time.Millisecond):
				}
				continue
			}
			select { // wire-silent, lease held: 3x the grace
			case <-ctx.Done():
				return
			case <-time.After(90 * time.Millisecond):
			}
			msg := executeRange(t, &core.ExecJob{
				Kind: core.ExecKind(rep.Job.Kind), Graph: g, Seed: rep.Job.PhaseSeed,
				Spec: core.ExecSpec{Method: rep.Job.Method},
			}, rep.Lo, rep.Hi)
			msg.Job, msg.Lease = rep.Job.Job, rep.Lease
			var ack CompleteReply
			if err := tr.postJSON(ctx, "complete", hs.URL+"/dist/v1/complete", msg, &ack); err != nil {
				return
			}
		}
	}()
	defer func() { cancel(); wg.Wait() }()

	dopt := baseOptions(mpmb.MethodOS)
	dopt.Executor = ex
	got, err := mpmb.Search(g, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if fb, _ := ex.FellBack(); fb {
		t.Fatal("fallback engaged while a worker held an unexpired lease")
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("Result diverges from sequential\n got: %+v\nwant: %+v", got, seq)
	}
}

// TestExecutorFallbackComposesWithRejoiningFleet: workers that join
// AFTER the fallback engaged share the lease book with the in-process
// fallback worker — the composed run must still be bit-identical.
func TestExecutorFallbackComposesWithRejoiningFleet(t *testing.T) {
	g := meshGraph(t)
	opt := baseOptions(mpmb.MethodOS)
	opt.Trials = 20000 // long enough that the late fleet joins mid-run
	seq, err := mpmb.Search(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator()
	coord.LeaseUnits = 256
	ex := &Executor{
		C:          coord,
		Poll:       time.Millisecond,
		Fallback:   &core.LocalExecutor{Workers: 1},
		FleetGrace: 20 * time.Millisecond,
	}
	// The fleet arrives late: by then the fallback worker is already
	// leasing spans. Both lease from the same book; the merge does not
	// care who computed a span.
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{Base: hs.URL, Name: fmt.Sprintf("late%d", i), Pool: 1}
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-ctx.Done():
				return
			case <-time.After(60 * time.Millisecond):
			}
			w.Run(ctx)
		}()
	}
	defer func() { cancel(); wg.Wait() }()

	dopt := baseOptions(mpmb.MethodOS)
	dopt.Trials = opt.Trials
	dopt.Executor = ex
	got, err := mpmb.Search(g, dopt)
	if err != nil {
		t.Fatal(err)
	}
	if fb, _ := ex.FellBack(); !fb {
		t.Skip("run finished before the grace elapsed; composition not exercised")
	}
	if !reflect.DeepEqual(got, seq) {
		t.Fatalf("fallback+fleet composition diverges from sequential\n got: %+v\nwant: %+v", got, seq)
	}
}
