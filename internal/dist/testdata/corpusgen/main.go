// Command corpusgen regenerates the checked-in fuzz seed corpora under
// internal/dist/testdata/fuzz/. Run from the repository root:
//
//	go run ./internal/dist/testdata/corpusgen
//
// The files duplicate the in-code f.Add seeds on purpose: the checked-in
// corpus is what CI's -fuzztime smoke run mutates from, and pinning it
// keeps that job's coverage (and runtime) stable across Go versions.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

func write(dir, name string, data []byte) {
	body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		panic(err)
	}
}

func triples(ts ...int64) []byte {
	buf := make([]byte, 0, len(ts)*8)
	for _, v := range ts {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

func main() {
	root := "internal/dist/testdata/fuzz"

	dec := filepath.Join(root, "FuzzLeaseDecode")
	if err := os.MkdirAll(dec, 0o755); err != nil {
		panic(err)
	}
	decSeeds := map[string]string{
		"valid-os":         `{"v":1,"worker":"w0","job":1,"lease":1,"lo":1,"hi":16,"payload":{"counts":[{"b":{"u1":0,"v1":1,"u2":2,"v2":3},"count":3,"weight":1.5}]},"counters":{"trials":16,"trial_hits":3,"edges_scanned":64,"edges_pruned":0,"cand_scanned":0,"cand_pruned":0}}`,
		"valid-optimized":  `{"v":1,"job":2,"lease":9,"lo":17,"hi":32,"payload":{"cand_counts":[0,16,7]}}`,
		"valid-kl":         `{"v":1,"job":3,"lease":2,"lo":1,"hi":4,"payload":{"cand_probs":[0,0.5,1,0.25],"cand_trials":[4,4,4,4]}}`,
		"version-skew":     `{"v":2,"lo":1,"hi":16}`,
		"lo-zero":          `{"v":1,"lo":0,"hi":16}`,
		"inverted-range":   `{"v":1,"lo":17,"hi":16}`,
		"kl-width-skew":    `{"v":1,"lo":1,"hi":2,"payload":{"cand_probs":[0.5],"cand_trials":[1]}}`,
		"mixed-kinds":      `{"v":1,"lo":1,"hi":16,"payload":{"counts":[{"count":1}],"cand_counts":[1]}}`,
		"negative-counter": `{"v":1,"lo":1,"hi":16,"counters":{"trials":-1}}`,
		"negative-count":   `{"v":1,"lo":1,"hi":16,"payload":{"counts":[{"count":-2}]}}`,
		"truncated-json":   `{"v":1,"lo":1,"hi":16,"payload":{"cand_probs":`,
		"not-json":         `not json at all`,
		"huge-version":     `{"v":1e309}`,
	}
	for name, body := range decSeeds {
		write(dec, name, []byte(body))
	}

	mrg := filepath.Join(root, "FuzzCheckpointMerge")
	if err := os.MkdirAll(mrg, 0o755); err != nil {
		panic(err)
	}
	mrgSeeds := map[string][]byte{
		"in-order":        triples(1, 8, 1, 9, 16, 1, 17, 24, 1, 25, 32, 1, 33, 40, 1),
		"reversed":        triples(33, 40, 1, 25, 32, 1, 17, 24, 1, 9, 16, 1, 1, 8, 1),
		"duplicated-head": triples(1, 8, 1, 1, 8, 1, 1, 8, 1),
		"version-skew":    triples(1, 8, 2, 1, 8, 1),
		"misaligned":      triples(2, 9, 1, 0, 7, 1, 1, 40, 1, 9, 8, 1),
		"overlapping":     triples(1, 8, 1, 5, 12, 1, 9, 16, 1),
		"empty":           triples(),
	}
	for name, body := range mrgSeeds {
		write(mrg, name, body)
	}
	fmt.Printf("wrote %d + %d corpus files under %s\n", len(decSeeds), len(mrgSeeds), root)
}
