package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// ErrTransportExhausted reports that every attempt of a retried
// coordinator exchange failed. Match with errors.Is; the concrete
// *TransportError carries the operation, attempt count and last cause.
var ErrTransportExhausted = errors.New("dist: transport retries exhausted")

// TransportError is the typed error behind ErrTransportExhausted: one
// coordinator exchange that burned its whole retry budget.
type TransportError struct {
	// Op is the protocol operation ("lease", "complete", "graph").
	Op string
	// URL is the request target.
	URL string
	// Attempts is how many times the exchange was tried before giving
	// up; Last is the final attempt's error (also the Unwrap target).
	Attempts int
	Last     error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("dist: %s %s failed after %d attempts: %v", e.Op, e.URL, e.Attempts, e.Last)
}

// Is makes errors.Is(err, ErrTransportExhausted) succeed.
func (e *TransportError) Is(target error) bool { return target == ErrTransportExhausted }

// Unwrap exposes the last attempt's error to errors.Is/As chains.
func (e *TransportError) Unwrap() error { return e.Last }

// statusError is a non-2xx reply. 5xx (and 429) replies are transient —
// the coordinator or an intermediary hiccuped — and retried; other 4xx
// replies are protocol errors that no retry can fix and surface
// immediately.
type statusError struct {
	op     string
	status string
	code   int
	body   string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("dist: %s: %s: %s", e.op, e.status, e.body)
}

func (e *statusError) transient() bool {
	return e.code >= 500 || e.code == http.StatusTooManyRequests
}

// Transport is the resilient HTTP layer between a worker and its
// coordinator: every exchange gets a per-attempt timeout and transient
// failures (connection errors, torn response bodies, 5xx replies) are
// retried with seeded-jitter exponential backoff until the attempt
// budget runs out, at which point the typed *TransportError surfaces.
//
// Retrying is safe by construction: leases are idempotent grants,
// completions are idempotent by-span (a duplicate is acknowledged with
// Accepted=false), and the graph fetch is a read — so the transport can
// retransmit any of them without coordination, including the nasty
// "request applied but reply lost" case.
//
// The zero value is usable and applies the documented defaults.
type Transport struct {
	// Client is the underlying HTTP client (default: a client with a
	// bounded overall timeout; see Worker.client).
	Client *http.Client
	// RequestTimeout bounds each individual attempt (default 10s).
	RequestTimeout time.Duration
	// MaxAttempts is the total attempt budget per exchange, first try
	// included (default 4; values below 1 behave as 1).
	MaxAttempts int
	// BaseDelay is the pre-jitter sleep after the first failure,
	// doubling per attempt up to MaxDelay (defaults 50ms, 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed makes the jitter sequence deterministic. The zero seed is a
	// valid deterministic stream of its own.
	Seed uint64
	// Sleep overrides the inter-attempt sleep (tests). Nil = real sleep
	// honoring ctx cancellation.
	Sleep func(time.Duration)

	mu  sync.Mutex
	rng *randx.RNG
}

func (t *Transport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return defaultWorkerClient
}

func (t *Transport) requestTimeout() time.Duration {
	if t.RequestTimeout > 0 {
		return t.RequestTimeout
	}
	return 10 * time.Second
}

func (t *Transport) attempts() int {
	if t.MaxAttempts < 1 {
		return 4
	}
	return t.MaxAttempts
}

// backoff returns the post-jitter sleep before retry k (0-based index
// of the attempt that just failed): min(BaseDelay·2^k, MaxDelay) scaled
// by a uniform factor in [0.5, 1) so a fleet behind the same flaky
// switch does not retry in lockstep.
func (t *Transport) backoff(k int) time.Duration {
	base := t.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := t.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base
	for i := 0; i < k && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	t.mu.Lock()
	if t.rng == nil {
		t.rng = randx.New(t.Seed)
	}
	f := t.rng.Float64()
	t.mu.Unlock()
	return time.Duration((0.5 + 0.5*f) * float64(d))
}

func (t *Transport) sleep(ctx context.Context, d time.Duration) error {
	if t.Sleep != nil {
		t.Sleep(d)
		return ctx.Err()
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// do runs one exchange with retries. build constructs a fresh request
// per attempt (bodies are consumed); handle consumes a 200 response
// body. Transient failures retry; context cancellation and
// non-transient HTTP errors surface immediately.
func (t *Transport) do(ctx context.Context, op, url string, build func(ctx context.Context) (*http.Request, error), handle func(*http.Response) error) error {
	var last error
	n := t.attempts()
	for k := 0; k < n; k++ {
		if k > 0 {
			if err := t.sleep(ctx, t.backoff(k-1)); err != nil {
				return err
			}
		}
		err := t.doOnce(ctx, op, build, handle)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var se *statusError
		if errors.As(err, &se) && !se.transient() {
			return err
		}
		last = err
	}
	return &TransportError{Op: op, URL: url, Attempts: n, Last: last}
}

func (t *Transport) doOnce(ctx context.Context, op string, build func(ctx context.Context) (*http.Request, error), handle func(*http.Response) error) error {
	actx, cancel := context.WithTimeout(ctx, t.requestTimeout())
	defer cancel()
	req, err := build(actx)
	if err != nil {
		return err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &statusError{op: op, status: resp.Status, code: resp.StatusCode, body: string(bytes.TrimSpace(body))}
	}
	return handle(resp)
}

// postJSON posts a JSON message and decodes the JSON reply, retrying
// transient failures. The request body is re-encoded once and replayed
// per attempt.
func (t *Transport) postJSON(ctx context.Context, op, url string, in, out any) error {
	body, err := encodeJSON(in)
	if err != nil {
		return err
	}
	return t.do(ctx, op, url,
		func(actx context.Context) (*http.Request, error) {
			req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		},
		func(resp *http.Response) error {
			return readMessage(resp.Body, out)
		})
}

// get fetches url and hands the 200 response to handle, retrying
// transient failures.
func (t *Transport) get(ctx context.Context, op, url string, handle func(*http.Response) error) error {
	return t.do(ctx, op, url,
		func(actx context.Context) (*http.Request, error) {
			return http.NewRequestWithContext(actx, http.MethodGet, url, nil)
		},
		handle)
}
