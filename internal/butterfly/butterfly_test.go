package butterfly

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

func figure1(t testing.TB) *bigraph.Graph {
	t.Helper()
	b := bigraph.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	return b.Build()
}

func randGraph(r *rand.Rand, maxL, maxR int, density float64) *bigraph.Graph {
	numL, numR := 1+r.Intn(maxL), 1+r.Intn(maxR)
	b := bigraph.NewBuilder(numL, numR)
	for u := 0; u < numL; u++ {
		for v := 0; v < numR; v++ {
			if r.Float64() < density {
				b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), math.Floor(r.Float64()*10)/2, r.Float64())
			}
		}
	}
	return b.Build()
}

func fullWorld(g *bigraph.Graph) *possible.World {
	w := possible.NewWorld(g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		w.Set(bigraph.EdgeID(i))
	}
	return w
}

func TestNewCanonicalization(t *testing.T) {
	b := New(3, 1, 7, 2)
	if b.U1 != 1 || b.U2 != 3 || b.V1 != 2 || b.V2 != 7 {
		t.Fatalf("canonical form wrong: %+v", b)
	}
	if b != New(1, 3, 2, 7) {
		t.Fatal("canonicalization not stable across argument orders")
	}
	if s := b.String(); s != "B(1,3|2,7)" {
		t.Fatalf("String = %q", s)
	}
}

func TestNewPanicsOnDegenerate(t *testing.T) {
	for _, args := range [][4]bigraph.VertexID{{1, 1, 2, 3}, {1, 2, 3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", args)
				}
			}()
			New(args[0], args[1], args[2], args[3])
		}()
	}
}

func TestEdgeIDsWeightExistProb(t *testing.T) {
	g := figure1(t)
	b := New(0, 1, 1, 2) // B(u1,u2 | v2,v3)
	ids, ok := b.EdgeIDs(g)
	if !ok {
		t.Fatal("backbone butterfly not resolved")
	}
	wantIDs := [4]bigraph.EdgeID{1, 2, 4, 5} // (u1,v2),(u1,v3),(u2,v2),(u2,v3)
	if ids != wantIDs {
		t.Fatalf("EdgeIDs = %v, want %v", ids, wantIDs)
	}
	if w, _ := b.Weight(g); w != 7 {
		t.Fatalf("Weight = %v, want 7", w)
	}
	pr, _ := b.ExistProb(g)
	want := 0.6 * 0.8 * 0.4 * 0.7
	if math.Abs(pr-want) > 1e-12 {
		t.Fatalf("ExistProb = %v, want %v", pr, want)
	}
	// Non-backbone butterfly.
	nb := Butterfly{U1: 0, U2: 1, V1: 0, V2: 9}
	if _, ok := nb.EdgeIDs(g); ok {
		t.Fatal("resolved a butterfly with a missing edge")
	}
	if _, ok := nb.Weight(g); ok {
		t.Fatal("Weight ok for non-backbone butterfly")
	}
	if _, ok := nb.ExistProb(g); ok {
		t.Fatal("ExistProb ok for non-backbone butterfly")
	}
}

func TestExistsIn(t *testing.T) {
	g := figure1(t)
	b := New(0, 1, 1, 2)
	w := fullWorld(g)
	if !b.ExistsIn(g, w) {
		t.Fatal("butterfly absent from the full world")
	}
	w.Clear(4) // remove (u2, v2)
	if b.ExistsIn(g, w) {
		t.Fatal("butterfly exists despite a missing edge")
	}
}

func TestContainsGlobal(t *testing.T) {
	g := figure1(t)
	b := New(0, 1, 1, 2)
	for gid := 0; gid < g.NumVertices(); gid++ {
		side, v := g.SplitGlobalID(gid)
		want := (side == bigraph.SideL && (v == 0 || v == 1)) ||
			(side == bigraph.SideR && (v == 1 || v == 2))
		if got := b.ContainsGlobal(g, gid); got != want {
			t.Fatalf("ContainsGlobal(%d) = %v, want %v", gid, got, want)
		}
	}
}

func TestAllBackboneFigure1(t *testing.T) {
	g := figure1(t)
	all := AllBackbone(g)
	if len(all) != 3 {
		t.Fatalf("backbone has %d butterflies, want 3", len(all))
	}
	weights := []float64{all[0].W, all[1].W, all[2].W}
	sort.Float64s(weights)
	if weights[0] != 7 || weights[1] != 7 || weights[2] != 10 {
		t.Fatalf("weights = %v, want [7 7 10]", weights)
	}
}

// TestReferenceEnumerationCountsMatchFormula cross-checks the enumerator
// against the combinatorial count Σ over right-vertex pairs of
// C(common, 2) on complete bipartite graphs, where every pair of left
// vertices and right pair forms a butterfly: count = C(|L|,2)·C(|R|,2).
func TestReferenceEnumerationCountsMatchFormula(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 3}, {2, 5}} {
		numL, numR := dims[0], dims[1]
		b := bigraph.NewBuilder(numL, numR)
		for u := 0; u < numL; u++ {
			for v := 0; v < numR; v++ {
				b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, 1)
			}
		}
		g := b.Build()
		count := 0
		ForEachInWorld(g, fullWorld(g), func(Butterfly, float64) bool {
			count++
			return true
		})
		want := numL * (numL - 1) / 2 * (numR * (numR - 1) / 2)
		if count != want {
			t.Fatalf("K(%d,%d): %d butterflies, want %d", numL, numR, count, want)
		}
	}
}

// TestEnumerationNoDuplicates uses testing/quick over random graphs and
// worlds: the reference enumerator must produce each butterfly at most
// once and every butterfly it reports must actually exist in the world.
func TestEnumerationNoDuplicates(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 6, 6, 0.5)
		rng := randx.New(uint64(seed) + 99)
		w := possible.Sample(g, rng)
		seen := make(map[Butterfly]bool)
		ok := true
		ForEachInWorld(g, w, func(b Butterfly, wt float64) bool {
			if seen[b] || !b.ExistsIn(g, w) {
				ok = false
				return false
			}
			cw, exists := b.Weight(g)
			if !exists || cw != wt {
				ok = false
				return false
			}
			seen[b] = true
			return true
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerationEarlyStop(t *testing.T) {
	g := figure1(t)
	visits := 0
	ForEachInWorld(g, fullWorld(g), func(Butterfly, float64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("enumeration continued after stop: %d visits", visits)
	}
	visits = 0
	order := g.PriorityOrder()
	ForEachInWorldVP(g, fullWorld(g), order, func(Butterfly, float64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("VP enumeration continued after stop: %d visits", visits)
	}
}

func TestMaxSetSemantics(t *testing.T) {
	var m MaxSet
	if !m.Empty() {
		t.Fatal("zero MaxSet not empty")
	}
	b1, b2, b3 := New(0, 1, 0, 1), New(0, 1, 0, 2), New(0, 1, 1, 2)
	m.Add(b1, 5)
	m.Add(b2, 5)
	if m.W != 5 || len(m.Set) != 2 {
		t.Fatalf("after two weight-5 adds: W=%v |Set|=%d", m.W, len(m.Set))
	}
	m.Add(b3, 7)
	if m.W != 7 || len(m.Set) != 1 || m.Set[0] != b3 {
		t.Fatalf("heavier add did not reset: W=%v Set=%v", m.W, m.Set)
	}
	m.Add(b1, 3)
	if m.W != 7 || len(m.Set) != 1 {
		t.Fatal("lighter add changed the set")
	}
	m.Reset()
	if !m.Empty() {
		t.Fatal("Reset did not empty the set")
	}
	// Negative and zero weights are legitimate maxima.
	m.Add(b1, -2)
	if m.Empty() || m.W != -2 {
		t.Fatalf("negative-weight butterfly not tracked: %+v", m)
	}
}

func TestCountInWorldVP(t *testing.T) {
	g := figure1(t)
	order := g.PriorityOrder()
	if got := CountInWorldVP(g, fullWorld(g), order); got != 3 {
		t.Fatalf("CountInWorldVP = %d, want 3", got)
	}
	empty := possible.NewWorld(g.NumEdges())
	if got := CountInWorldVP(g, empty, order); got != 0 {
		t.Fatalf("CountInWorldVP on empty world = %d, want 0", got)
	}
}

func TestMaxWeightSetFigure1(t *testing.T) {
	g := figure1(t)
	m := MaxWeightSet(g, fullWorld(g))
	if m.W != 10 || len(m.Set) != 1 || m.Set[0] != New(0, 1, 0, 1) {
		t.Fatalf("backbone S_MB = %+v, want single weight-10 butterfly", m)
	}
}

// completeBipartite builds K(m,n) with uniform probability p.
func completeBipartite(m, n int, p float64) *bigraph.Graph {
	b := bigraph.NewBuilder(m, n)
	for u := 0; u < m; u++ {
		for v := 0; v < n; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, p)
		}
	}
	return b.Build()
}
