package butterfly

import (
	"math/rand"
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// benchSetup builds a reproducible graph and a sampled world sized so one
// enumeration pass is a meaningful unit of work.
func benchSetup() (*bigraph.Graph, *possible.World, []int) {
	r := rand.New(rand.NewSource(1))
	b := bigraph.NewBuilder(200, 200)
	for b.NumEdges() < 6000 {
		_ = b.AddEdge(bigraph.VertexID(r.Intn(200)), bigraph.VertexID(r.Intn(200)), r.Float64()*10, 0.2+0.6*r.Float64())
	}
	g := b.Build()
	w := possible.Sample(g, randx.New(2))
	return g, w, g.PriorityOrder()
}

func BenchmarkEnumerateReference(b *testing.B) {
	g, w, _ := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEachInWorld(g, w, func(Butterfly, float64) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no butterflies")
		}
	}
}

func BenchmarkEnumerateVP(b *testing.B) {
	g, w, order := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if CountInWorldVP(g, w, order) == 0 {
			b.Fatal("no butterflies")
		}
	}
}

func BenchmarkMaxWeightSet(b *testing.B) {
	g, w, _ := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MaxWeightSet(g, w)
		if m.Empty() {
			b.Fatal("no maximum")
		}
	}
}

func BenchmarkExpectedCount(b *testing.B) {
	g, _, _ := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ExpectedCount(g) <= 0 {
			b.Fatal("no expectation")
		}
	}
}

func BenchmarkEnumerateThreshold(b *testing.B) {
	g, _, _ := benchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EnumerateThreshold(g, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}
