package butterfly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// TestCountBackboneMatchesEnumeration: the closed-form count must equal
// the number of butterflies the reference enumerator lists.
func TestCountBackboneMatchesEnumeration(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 7, 7, 0.5)
		want := uint64(len(AllBackbone(g)))
		return CountBackbone(g) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCountBackboneCompleteBipartite: K_{m,n} has C(m,2)·C(n,2)
// butterflies.
func TestCountBackboneCompleteBipartite(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 4}, {5, 5}} {
		m, n := dims[0], dims[1]
		b := bigraph.NewBuilder(m, n)
		for u := 0; u < m; u++ {
			for v := 0; v < n; v++ {
				b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, 0.5)
			}
		}
		want := uint64(m*(m-1)/2) * uint64(n*(n-1)/2)
		if got := CountBackbone(b.Build()); got != want {
			t.Fatalf("K(%d,%d): count = %d, want %d", m, n, got, want)
		}
	}
}

// TestExpectedCountMatchesDefinition: E[#butterflies] = Σ_B Pr[E(B)],
// cross-checked against explicit per-butterfly products.
func TestExpectedCountMatchesDefinition(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 6, 6, 0.6)
		want := 0.0
		for _, bw := range AllBackbone(g) {
			pr, ok := bw.B.ExistProb(g)
			if !ok {
				return false
			}
			want += pr
		}
		got := ExpectedCount(g)
		return math.Abs(got-want) < 1e-9*(1+want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestExpectedCountDeterministicEqualsBackboneCount: with all
// probabilities 1 the expectation is the plain count.
func TestExpectedCountDeterministicEqualsBackboneCount(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randGraph(r, 6, 6, 1.0) // density 1 but random probs; rebuild certain
	b := bigraph.NewBuilder(g.NumL(), g.NumR())
	for _, e := range g.Edges() {
		b.MustAddEdge(e.U, e.V, e.W, 1)
	}
	cg := b.Build()
	if got, want := ExpectedCount(cg), float64(CountBackbone(cg)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedCount = %v, CountBackbone = %v", got, want)
	}
}

// TestEstimateExpectedCountConverges: the Monte-Carlo estimate approaches
// the closed form.
func TestEstimateExpectedCountConverges(t *testing.T) {
	g := figure1(t)
	want := ExpectedCount(g)
	got := EstimateExpectedCount(g, 60000, 9)
	if math.Abs(got-want) > 0.02*(1+want) {
		t.Fatalf("estimate %v, exact %v", got, want)
	}
	if EstimateExpectedCount(g, 0, 1) != 0 {
		t.Fatal("zero trials should estimate 0")
	}
}
