// Package butterfly provides the deterministic butterfly machinery that
// the MPMB samplers are built on: angle (wedge) and butterfly types,
// canonicalization, weight and existence-probability computation, and two
// enumeration strategies over a possible world — a simple common-neighbour
// reference enumerator and the vertex-priority (BFC-VP style) enumerator
// the MC-VP baseline uses.
//
// A butterfly B(u1,u2,v1,v2) is a (2,2)-biclique of the bipartite graph:
// u1,u2 ∈ L, v1,v2 ∈ R, with all four edges present (Definition 4). Its
// weight is the sum of its four edge weights (Equation 2). An angle
// ∠(a, m, b) is a 3-vertex path with middle m on the opposite side of its
// endpoints a, b (Definition 3); two angles with the same endpoints and
// different middles combine into a butterfly.
package butterfly

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// Butterfly identifies a (2,2)-biclique in canonical form: U1 < U2 and
// V1 < V2. The zero value is a valid (if usually nonexistent) butterfly,
// and the type is comparable, so it can key maps directly.
type Butterfly struct {
	U1, U2 bigraph.VertexID // left vertices, U1 < U2
	V1, V2 bigraph.VertexID // right vertices, V1 < V2
}

// New returns the canonical Butterfly on the given vertices, swapping
// within each side as needed. It panics if u1 == u2 or v1 == v2, which
// never denotes a butterfly.
func New(u1, u2, v1, v2 bigraph.VertexID) Butterfly {
	if u1 == u2 || v1 == v2 {
		panic(fmt.Sprintf("butterfly: degenerate vertices (%d,%d,%d,%d)", u1, u2, v1, v2))
	}
	if u1 > u2 {
		u1, u2 = u2, u1
	}
	if v1 > v2 {
		v1, v2 = v2, v1
	}
	return Butterfly{U1: u1, U2: u2, V1: v1, V2: v2}
}

// String renders the butterfly as B(u1,u2 | v1,v2).
func (b Butterfly) String() string {
	return fmt.Sprintf("B(%d,%d|%d,%d)", b.U1, b.U2, b.V1, b.V2)
}

// EdgeIDs resolves the four edges of b in g's backbone, in the fixed order
// (U1,V1), (U1,V2), (U2,V1), (U2,V2). ok is false if any edge is missing
// from the backbone, in which case b is not a butterfly of g at all.
func (b Butterfly) EdgeIDs(g *bigraph.Graph) (ids [4]bigraph.EdgeID, ok bool) {
	pairs := [4][2]bigraph.VertexID{
		{b.U1, b.V1}, {b.U1, b.V2}, {b.U2, b.V1}, {b.U2, b.V2},
	}
	for i, pr := range pairs {
		id, found := g.FindEdge(pr[0], pr[1])
		if !found {
			return ids, false
		}
		ids[i] = id
	}
	return ids, true
}

// Weight returns w(B) = Σ of the four edge weights (Equation 2), always
// summing in canonical edge order so equal butterflies produce bit-equal
// weights. ok is false if b is not a butterfly of g's backbone.
func (b Butterfly) Weight(g *bigraph.Graph) (float64, bool) {
	ids, ok := b.EdgeIDs(g)
	if !ok {
		return 0, false
	}
	w := 0.0
	for _, id := range ids {
		w += g.Edge(id).W
	}
	return w, true
}

// ExistProb returns Pr[E(B)] = Π of the four edge probabilities, the
// probability that all of b's edges appear in a possible world. ok is
// false if b is not a butterfly of g's backbone.
func (b Butterfly) ExistProb(g *bigraph.Graph) (float64, bool) {
	ids, ok := b.EdgeIDs(g)
	if !ok {
		return 0, false
	}
	p := 1.0
	for _, id := range ids {
		p *= g.Edge(id).P
	}
	return p, true
}

// ExistsIn reports whether all four of b's edges are present in world w.
// It returns false if b is not even a backbone butterfly.
func (b Butterfly) ExistsIn(g *bigraph.Graph, w *possible.World) bool {
	ids, ok := b.EdgeIDs(g)
	if !ok {
		return false
	}
	for _, id := range ids {
		if !w.Has(id) {
			return false
		}
	}
	return true
}

// Vertices reports whether gid (a Graph.GlobalID) is one of b's vertices.
func (b Butterfly) ContainsGlobal(g *bigraph.Graph, gid int) bool {
	side, v := g.SplitGlobalID(gid)
	if side == bigraph.SideL {
		return v == b.U1 || v == b.U2
	}
	return v == b.V1 || v == b.V2
}

// ForEachInWorld enumerates every butterfly present in world w exactly
// once, calling fn with the butterfly and its weight. Enumeration is the
// straightforward common-neighbour method: for each right-vertex pair
// (v1 < v2), every pair of common live neighbours forms a butterfly. This
// is the reference implementation used for ground truth in tests and by
// the exact solver; the MC-VP baseline uses the vertex-priority enumerator
// in vp.go instead. fn returning false stops the enumeration early.
func ForEachInWorld(g *bigraph.Graph, w *possible.World, fn func(b Butterfly, weight float64) bool) {
	// commonWeight[u] accumulates, for the current v1, the weight of the
	// live edge (u, v1); presence is tracked via stamp to avoid clearing.
	numL := g.NumL()
	edgeW := make([]float64, numL)
	stamp := make([]int, numL)
	cur := 0
	for v1 := 0; v1 < g.NumR(); v1++ {
		cur++
		live1 := liveNeighbors(g, w, bigraph.VertexID(v1))
		if len(live1) < 2 {
			continue
		}
		for _, h := range live1 {
			stamp[h.To] = cur
			edgeW[h.To] = g.Edge(h.E).W
		}
		for v2 := v1 + 1; v2 < g.NumR(); v2++ {
			live2 := liveNeighbors(g, w, bigraph.VertexID(v2))
			// Collect common neighbours of v1 and v2.
			var common []bigraph.Half
			for _, h := range live2 {
				if stamp[h.To] == cur {
					common = append(common, h)
				}
			}
			for i := 0; i < len(common); i++ {
				for j := i + 1; j < len(common); j++ {
					u1, u2 := common[i].To, common[j].To
					b := New(u1, u2, bigraph.VertexID(v1), bigraph.VertexID(v2))
					wt, _ := b.Weight(g)
					if !fn(b, wt) {
						return
					}
				}
			}
		}
	}
}

// liveNeighbors returns v's adjacency entries whose edge is present in w.
func liveNeighbors(g *bigraph.Graph, w *possible.World, v bigraph.VertexID) []bigraph.Half {
	var live []bigraph.Half
	for _, h := range g.NeighborsR(v) {
		if w.Has(h.E) {
			live = append(live, h)
		}
	}
	return live
}

// AllBackbone returns every butterfly of the backbone graph (the possible
// world containing all edges), with weights, sorted implicitly by
// enumeration order. Intended for small graphs and tests; the number of
// butterflies can be Θ(|E|²) in dense graphs.
func AllBackbone(g *bigraph.Graph) []WithWeight {
	full := possible.NewWorld(g.NumEdges())
	for i := 0; i < g.NumEdges(); i++ {
		full.Set(bigraph.EdgeID(i))
	}
	var out []WithWeight
	ForEachInWorld(g, full, func(b Butterfly, wt float64) bool {
		out = append(out, WithWeight{B: b, W: wt})
		return true
	})
	return out
}

// WithWeight pairs a butterfly with its (backbone) weight.
type WithWeight struct {
	B Butterfly
	W float64
}

// MaxSet accumulates the set of maximum-weight butterflies S_MB of a
// world (Equation 3): Add keeps only butterflies attaining the running
// maximum weight. The zero value is ready to use.
type MaxSet struct {
	W   float64
	Set []Butterfly
	any bool
}

// Reset empties the set, retaining capacity.
func (m *MaxSet) Reset() {
	m.W = 0
	m.Set = m.Set[:0]
	m.any = false
}

// Add offers a butterfly with the given weight.
func (m *MaxSet) Add(b Butterfly, w float64) {
	switch {
	case !m.any || w > m.W:
		m.W = w
		m.Set = append(m.Set[:0], b)
		m.any = true
	case w == m.W:
		m.Set = append(m.Set, b)
	}
}

// Empty reports whether no butterfly has been added.
func (m *MaxSet) Empty() bool { return !m.any }

// MaxWeightSet computes S_MB(w) by reference enumeration.
func MaxWeightSet(g *bigraph.Graph, w *possible.World) MaxSet {
	var m MaxSet
	ForEachInWorld(g, w, func(b Butterfly, wt float64) bool {
		m.Add(b, wt)
		return true
	})
	return m
}
