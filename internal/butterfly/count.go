package butterfly

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// CountBackbone returns the number of butterflies in the backbone graph
// without materializing any of them: for every left-vertex pair the
// wedges through common right neighbours contribute C(wedges, 2)
// butterflies. This is the counting (rather than enumeration) form of
// BFC-VP, and the deterministic primitive the uncertain counting work the
// paper cites (Zhou et al., "Butterfly counting on uncertain bipartite
// graphs") builds on.
func CountBackbone(g *bigraph.Graph) uint64 {
	// Count wedges grouped by left endpoint pair, middle on the right.
	// Iterate right vertices; for each, every pair of its neighbours is
	// one wedge for that left pair.
	counts := make(map[uint64]uint64)
	for v := 0; v < g.NumR(); v++ {
		nbrs := g.NeighborsR(bigraph.VertexID(v))
		for a := 0; a < len(nbrs); a++ {
			for b := a + 1; b < len(nbrs); b++ {
				u1, u2 := nbrs[a].To, nbrs[b].To
				if u1 > u2 {
					u1, u2 = u2, u1
				}
				counts[uint64(u1)<<32|uint64(u2)]++
			}
		}
	}
	var total uint64
	for _, w := range counts {
		total += w * (w - 1) / 2
	}
	return total
}

// ExpectedCount returns the exact expected number of butterflies over all
// possible worlds, E[#butterflies] = Σ_B Pr[E(B)]. By linearity of
// expectation this needs no world enumeration: for a left pair with
// common middles m having per-wedge existence probability
// q_m = p(u1,m)·p(u2,m), the pair contributes Σ_{m<m'} q_m·q_m'
// = ((Σq)² − Σq²)/2.
func ExpectedCount(g *bigraph.Graph) float64 {
	type acc struct{ s, s2 float64 }
	sums := make(map[uint64]acc)
	for v := 0; v < g.NumR(); v++ {
		nbrs := g.NeighborsR(bigraph.VertexID(v))
		for a := 0; a < len(nbrs); a++ {
			pa := g.Edge(nbrs[a].E).P
			for b := a + 1; b < len(nbrs); b++ {
				u1, u2 := nbrs[a].To, nbrs[b].To
				if u1 > u2 {
					u1, u2 = u2, u1
				}
				q := pa * g.Edge(nbrs[b].E).P
				k := uint64(u1)<<32 | uint64(u2)
				e := sums[k]
				e.s += q
				e.s2 += q * q
				sums[k] = e
			}
		}
	}
	total := 0.0
	for _, e := range sums {
		total += (e.s*e.s - e.s2) / 2
	}
	return total
}

// EstimateExpectedCount Monte-Carlo-estimates E[#butterflies] by counting
// butterflies in sampled worlds with the vertex-priority enumerator. It
// exists to cross-validate ExpectedCount (and as the building block a
// distribution-based analysis would extend); prefer ExpectedCount, which
// is exact and usually faster.
func EstimateExpectedCount(g *bigraph.Graph, trials int, seed uint64) float64 {
	if trials <= 0 {
		return 0
	}
	order := g.PriorityOrder()
	root := randx.New(seed)
	world := possible.NewWorld(g.NumEdges())
	var total uint64
	for t := 1; t <= trials; t++ {
		possible.SampleInto(world, g, root.Derive(uint64(t)))
		total += uint64(CountInWorldVP(g, world, order))
	}
	return float64(total) / float64(trials)
}
