package butterfly

import (
	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
)

// Angle is a materialized wedge ∠(A, Mid, B): endpoints A and B on one
// side, middle Mid on the other (Definition 3). W is the summed weight of
// its two edges.
type Angle struct {
	A, B bigraph.VertexID // endpoints, same side
	Mid  bigraph.VertexID // middle vertex, opposite side
	Side bigraph.Side     // side of the endpoints
	W    float64
}

// ForEachInWorldVP enumerates every butterfly present in world w exactly
// once using vertex-priority wedge generation, the strategy of BFC-VP that
// Algorithm 1 (MC-VP) adopts.
//
// order must be a priority ranking indexed by Graph.GlobalID, normally
// Graph.PriorityOrder(). For each start vertex u_i, wedges are generated
// through live middles u_j with o(u_i) > o(u_j) to live endpoints u_k with
// o(u_i) > o(u_k); two wedges sharing the endpoint pair (u_i, u_k) but
// with different middles combine into a butterfly. Because each butterfly
// is produced from its unique highest-priority vertex, no duplicates
// arise. Butterfly weights are recomputed in canonical edge order so they
// are bit-identical to the reference enumerator's. fn returning false
// stops enumeration early.
func ForEachInWorldVP(g *bigraph.Graph, w *possible.World, order []int, fn func(b Butterfly, weight float64) bool) {
	type wedge struct {
		mid bigraph.VertexID
	}
	// Angle lists keyed by endpoint vertex id; reset per start vertex via
	// the touched list, avoiding a map clear per vertex.
	maxSide := g.NumL()
	if g.NumR() > maxSide {
		maxSide = g.NumR()
	}
	angles := make([][]wedge, maxSide)
	var touched []bigraph.VertexID

	neighborsOf := func(side bigraph.Side, v bigraph.VertexID) []bigraph.Half {
		if side == bigraph.SideL {
			return g.NeighborsL(v)
		}
		return g.NeighborsR(v)
	}
	opposite := func(side bigraph.Side) bigraph.Side {
		if side == bigraph.SideL {
			return bigraph.SideR
		}
		return bigraph.SideL
	}

	n := g.NumVertices()
	for gid := 0; gid < n; gid++ {
		side, start := g.SplitGlobalID(gid)
		oStart := order[gid]
		midSide := opposite(side)
		for _, h1 := range neighborsOf(side, start) {
			if !w.Has(h1.E) {
				continue
			}
			mid := h1.To
			if order[g.GlobalID(midSide, mid)] >= oStart {
				continue
			}
			for _, h2 := range neighborsOf(midSide, mid) {
				if !w.Has(h2.E) {
					continue
				}
				end := h2.To
				if end == start {
					continue
				}
				if order[g.GlobalID(side, end)] >= oStart {
					continue
				}
				if len(angles[end]) == 0 {
					touched = append(touched, end)
				}
				angles[end] = append(angles[end], wedge{mid: mid})
			}
		}
		// Combine wedge pairs per endpoint into butterflies.
		stop := false
		for _, end := range touched {
			list := angles[end]
			if !stop && len(list) >= 2 {
				for i := 0; i < len(list) && !stop; i++ {
					for j := i + 1; j < len(list) && !stop; j++ {
						var b Butterfly
						if side == bigraph.SideL {
							b = New(start, end, list[i].mid, list[j].mid)
						} else {
							b = New(list[i].mid, list[j].mid, start, end)
						}
						wt, ok := b.Weight(g)
						if !ok {
							// Impossible by construction: all four edges
							// were just observed live in the world.
							panic("butterfly: VP wedge produced non-backbone butterfly")
						}
						if !fn(b, wt) {
							stop = true
						}
					}
				}
			}
			angles[end] = angles[end][:0]
		}
		touched = touched[:0]
		if stop {
			return
		}
	}
}

// CountInWorldVP returns the number of butterflies in world w, counted by
// the vertex-priority enumerator. Exposed mainly for tests and tooling.
func CountInWorldVP(g *bigraph.Graph, w *possible.World, order []int) int {
	c := 0
	ForEachInWorldVP(g, w, order, func(Butterfly, float64) bool {
		c++
		return true
	})
	return c
}
