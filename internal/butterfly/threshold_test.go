package butterfly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// TestEnumerateThresholdMatchesBruteForce: the pruned enumeration returns
// exactly the backbone butterflies whose existence probability reaches
// the threshold.
func TestEnumerateThresholdMatchesBruteForce(t *testing.T) {
	check := func(seed int64, tRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 6, 6, 0.6)
		threshold := float64(tRaw) / 255
		got, err := EnumerateThreshold(g, threshold)
		if err != nil {
			return false
		}
		want := make(map[Butterfly]float64)
		for _, bw := range AllBackbone(g) {
			pr, _ := bw.B.ExistProb(g)
			if pr >= threshold {
				want[bw.B] = pr
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, wp := range got {
			pr, ok := want[wp.B]
			if !ok || math.Abs(pr-wp.P) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateThresholdSortedAndBounds(t *testing.T) {
	g := figure1(t)
	list, err := EnumerateThreshold(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("threshold 0 returned %d butterflies, want all 3", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].P > list[i-1].P {
			t.Fatalf("not sorted by probability at %d", i)
		}
	}
	// Figure 1 existence probabilities: max is 0.1344 (the weight-7
	// B(u1,u2|v2,v3)); a threshold above it returns nothing.
	high, err := EnumerateThreshold(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(high) != 0 {
		t.Fatalf("threshold 0.2 returned %d butterflies, want 0", len(high))
	}
	n, err := CountThreshold(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("CountThreshold(0.1) = %d, want 1", n)
	}
	if _, err := EnumerateThreshold(g, -0.1); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := EnumerateThreshold(g, 1.5); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
}

// TestThresholdWedgePruneSafe: pruning at the wedge level never loses a
// qualifying butterfly even when one wedge is far weaker than its mate.
func TestThresholdWedgePruneSafe(t *testing.T) {
	// Butterfly with wedge probs 0.9·0.9 = 0.81 and 0.5·0.5 = 0.25;
	// total 0.2025. A threshold of 0.2 must keep it: both wedges clear
	// the per-wedge bound (0.81 ≥ 0.2, 0.25 ≥ 0.2).
	bld := bigraph.NewBuilder(2, 2)
	bld.MustAddEdge(0, 0, 1, 0.9)
	bld.MustAddEdge(1, 0, 1, 0.9) // wedge through v0: 0.81
	bld.MustAddEdge(0, 1, 1, 0.5)
	bld.MustAddEdge(1, 1, 1, 0.5) // wedge through v1: 0.25
	g := bld.Build()
	list, err := EnumerateThreshold(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || math.Abs(list[0].P-0.2025) > 1e-12 {
		t.Fatalf("got %v, want the single 0.2025 butterfly", list)
	}
	// At 0.26 the weak wedge itself fails and the butterfly disappears.
	list, err = EnumerateThreshold(g, 0.26)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("threshold 0.26 kept %v", list)
	}
}
