package butterfly

import (
	"fmt"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
)

// This file implements the threshold-based analysis of the paper's
// related work (Section II): enumerate every butterfly whose existence
// probability reaches a threshold t, discarding low-probability instances
// early — the general backbone-then-filter framework of UBFC-style
// algorithms, with wedge-level pruning.

// WithProb pairs a butterfly with its weight and existence probability.
type WithProb struct {
	B Butterfly
	W float64
	P float64 // Pr[E(B)] = product of the four edge probabilities
}

// EnumerateThreshold lists every backbone butterfly with
// Pr[E(B)] ≥ t, sorted by descending probability (ties by descending
// weight, then canonical order). Wedges are pruned early: a wedge whose
// two-edge probability product is already below t cannot be part of a
// qualifying butterfly, because the remaining two edges contribute a
// factor ≤ 1 — the same early-discarding idea the threshold literature
// applies during listing.
func EnumerateThreshold(g *bigraph.Graph, t float64) ([]WithProb, error) {
	if t < 0 || t > 1 {
		return nil, fmt.Errorf("butterfly: threshold %v outside [0,1]", t)
	}
	// Wedge accumulation keyed by left endpoint pair, like ExpectedCount,
	// but retaining the qualifying wedges per pair.
	type wedge struct {
		mid bigraph.VertexID
		p   float64 // product of the wedge's two edge probabilities
		w   float64 // sum of the wedge's two edge weights
	}
	wedges := make(map[uint64][]wedge)
	for v := 0; v < g.NumR(); v++ {
		nbrs := g.NeighborsR(bigraph.VertexID(v))
		for a := 0; a < len(nbrs); a++ {
			ea := g.Edge(nbrs[a].E)
			for b := a + 1; b < len(nbrs); b++ {
				eb := g.Edge(nbrs[b].E)
				p := ea.P * eb.P
				if p < t {
					continue // wedge prune: no completion can recover
				}
				u1, u2 := nbrs[a].To, nbrs[b].To
				if u1 > u2 {
					u1, u2 = u2, u1
				}
				key := uint64(u1)<<32 | uint64(u2)
				wedges[key] = append(wedges[key], wedge{
					mid: bigraph.VertexID(v),
					p:   p,
					w:   ea.W + eb.W,
				})
			}
		}
	}
	var out []WithProb
	for key, list := range wedges {
		u1 := bigraph.VertexID(key >> 32)
		u2 := bigraph.VertexID(key & 0xffffffff)
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				p := list[i].p * list[j].p
				if p < t {
					continue
				}
				b := New(u1, u2, list[i].mid, list[j].mid)
				w, ok := b.Weight(g) // canonical summation order
				if !ok {
					panic("butterfly: threshold wedge pair lost its edges")
				}
				out = append(out, WithProb{B: b, W: w, P: p})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		if out[i].W != out[j].W {
			return out[i].W > out[j].W
		}
		a, b := out[i].B, out[j].B
		if a.U1 != b.U1 {
			return a.U1 < b.U1
		}
		if a.U2 != b.U2 {
			return a.U2 < b.U2
		}
		if a.V1 != b.V1 {
			return a.V1 < b.V1
		}
		return a.V2 < b.V2
	})
	return out, nil
}

// CountThreshold returns the number of butterflies with Pr[E(B)] ≥ t
// without materializing them beyond per-pair wedge lists.
func CountThreshold(g *bigraph.Graph, t float64) (int, error) {
	list, err := EnumerateThreshold(g, t)
	if err != nil {
		return 0, err
	}
	return len(list), nil
}
