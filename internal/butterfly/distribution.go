package butterfly

import (
	"fmt"
	"sort"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// This file implements the distribution-based analyses of the paper's
// related work (Section II): instead of a single threshold or a single
// most-probable instance, characterize the butterfly count as a random
// variable over possible worlds — its mean (ExpectedCount in count.go),
// its variance, and its probability mass function.

// CountVarianceExact returns Var[#butterflies] over possible worlds,
// computed exactly from pairwise joint existence probabilities:
//
//	Var = Σ_i Σ_j ( Pr[E(B_i) ∧ E(B_j)] − Pr[E(B_i)]·Pr[E(B_j)] )
//
// where the joint probability is the product of edge probabilities over
// the union of the two butterflies' edges (butterflies sharing edges are
// positively correlated). The computation is quadratic in the number of
// backbone butterflies and refuses graphs with more than maxVarButterflies
// of them.
func CountVarianceExact(g *bigraph.Graph) (float64, error) {
	const maxVarButterflies = 3000
	all := AllBackbone(g)
	if len(all) > maxVarButterflies {
		return 0, fmt.Errorf("butterfly: %d backbone butterflies exceed the exact-variance limit %d", len(all), maxVarButterflies)
	}
	n := len(all)
	ids := make([][4]bigraph.EdgeID, n)
	exist := make([]float64, n)
	for i, bw := range all {
		e, ok := bw.B.EdgeIDs(g)
		if !ok {
			return 0, fmt.Errorf("butterfly: backbone butterfly %v lost its edges", bw.B)
		}
		ids[i] = e
		pr, _ := bw.B.ExistProb(g)
		exist[i] = pr
	}
	variance := 0.0
	for i := 0; i < n; i++ {
		// Diagonal: Var of a Bernoulli.
		variance += exist[i] * (1 - exist[i])
		for j := i + 1; j < n; j++ {
			joint := jointExistProb(g, ids[i], ids[j])
			variance += 2 * (joint - exist[i]*exist[j])
		}
	}
	return variance, nil
}

// jointExistProb multiplies edge probabilities over the union of two
// 4-edge sets.
func jointExistProb(g *bigraph.Graph, a, b [4]bigraph.EdgeID) float64 {
	p := 1.0
	for _, id := range a {
		p *= g.Edge(id).P
	}
	for _, id := range b {
		shared := false
		for _, ia := range a {
			if id == ia {
				shared = true
				break
			}
		}
		if !shared {
			p *= g.Edge(id).P
		}
	}
	return p
}

// CountPMF is an empirical probability mass function of the per-world
// butterfly count.
type CountPMF struct {
	// Counts holds the distinct observed counts in increasing order.
	Counts []int
	// Mass[i] is the estimated probability of Counts[i].
	Mass []float64
	// Trials is the number of sampled worlds behind the estimate.
	Trials int
}

// Mean returns the PMF's mean.
func (p *CountPMF) Mean() float64 {
	m := 0.0
	for i, c := range p.Counts {
		m += float64(c) * p.Mass[i]
	}
	return m
}

// Variance returns the PMF's variance.
func (p *CountPMF) Variance() float64 {
	mean := p.Mean()
	v := 0.0
	for i, c := range p.Counts {
		d := float64(c) - mean
		v += d * d * p.Mass[i]
	}
	return v
}

// Prob returns the estimated probability of observing exactly count
// butterflies in a world.
func (p *CountPMF) Prob(count int) float64 {
	i := sort.SearchInts(p.Counts, count)
	if i < len(p.Counts) && p.Counts[i] == count {
		return p.Mass[i]
	}
	return 0
}

// EstimateCountPMF samples trials possible worlds and tallies the
// butterfly count of each into an empirical PMF — the sampling estimator
// of the LINC-style distribution analyses the related work describes.
func EstimateCountPMF(g *bigraph.Graph, trials int, seed uint64) (*CountPMF, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("butterfly: EstimateCountPMF requires trials > 0, got %d", trials)
	}
	order := g.PriorityOrder()
	root := randx.New(seed)
	world := possible.NewWorld(g.NumEdges())
	tally := make(map[int]int)
	for t := 1; t <= trials; t++ {
		possible.SampleInto(world, g, root.Derive(uint64(t)))
		tally[CountInWorldVP(g, world, order)]++
	}
	counts := make([]int, 0, len(tally))
	for c := range tally {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	pmf := &CountPMF{Counts: counts, Mass: make([]float64, len(counts)), Trials: trials}
	for i, c := range counts {
		pmf.Mass[i] = float64(tally[c]) / float64(trials)
	}
	return pmf, nil
}

// ExactCountPMF enumerates all possible worlds (subject to the
// possible.MaxEnumerableEdges limit) and returns the exact distribution
// of the butterfly count.
func ExactCountPMF(g *bigraph.Graph) (*CountPMF, error) {
	order := g.PriorityOrder()
	tally := make(map[int]float64)
	err := possible.Enumerate(g, func(w *possible.World, pr float64) bool {
		tally[CountInWorldVP(g, w, order)] += pr
		return true
	})
	if err != nil {
		return nil, err
	}
	counts := make([]int, 0, len(tally))
	for c := range tally {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	pmf := &CountPMF{Counts: counts, Mass: make([]float64, len(counts))}
	for i, c := range counts {
		pmf.Mass[i] = tally[c]
	}
	return pmf, nil
}
