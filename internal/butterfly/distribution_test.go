package butterfly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestExactCountPMFIsDistribution: mass sums to 1 and mean equals the
// closed-form expected count, over random graphs.
func TestExactCountPMFIsDistribution(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randGraph(r, 4, 4, 0.7)
		if g.NumEdges() > 16 {
			return true // keep enumeration cheap
		}
		pmf, err := ExactCountPMF(g)
		if err != nil {
			return false
		}
		total := 0.0
		for _, m := range pmf.Mass {
			if m < 0 {
				return false
			}
			total += m
		}
		if math.Abs(total-1) > 1e-9 {
			return false
		}
		return math.Abs(pmf.Mean()-ExpectedCount(g)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCountVarianceExactMatchesPMF: the pairwise-covariance variance
// equals the variance of the exact PMF.
func TestCountVarianceExactMatchesPMF(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	verified := 0
	for trial := 0; trial < 60 && verified < 20; trial++ {
		g := randGraph(r, 4, 4, 0.7)
		if g.NumEdges() > 16 {
			continue
		}
		pmf, err := ExactCountPMF(g)
		if err != nil {
			t.Fatal(err)
		}
		v, err := CountVarianceExact(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-pmf.Variance()) > 1e-9*(1+v) {
			t.Fatalf("trial %d: pairwise variance %v, PMF variance %v", trial, v, pmf.Variance())
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d graphs verified", verified)
	}
}

// TestEstimateCountPMFConverges: the sampled PMF approaches the exact one
// on the Figure 1 graph.
func TestEstimateCountPMFConverges(t *testing.T) {
	g := figure1(t)
	exact, err := ExactCountPMF(g)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCountPMF(g, 60000, 21)
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 60000 {
		t.Fatalf("Trials = %d", est.Trials)
	}
	for i, c := range exact.Counts {
		if math.Abs(est.Prob(c)-exact.Mass[i]) > 0.01 {
			t.Fatalf("P(#B=%d): estimated %v, exact %v", c, est.Prob(c), exact.Mass[i])
		}
	}
	if math.Abs(est.Mean()-exact.Mean()) > 0.01 {
		t.Fatalf("mean: estimated %v, exact %v", est.Mean(), exact.Mean())
	}
	if est.Prob(999) != 0 {
		t.Fatal("unobserved count has nonzero probability")
	}
}

func TestEstimateCountPMFValidation(t *testing.T) {
	g := figure1(t)
	if _, err := EstimateCountPMF(g, 0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestCountVarianceExactLimit guards the quadratic blow-up.
func TestCountVarianceExactLimit(t *testing.T) {
	// K(12,12) has C(12,2)² = 4356 butterflies > 3000.
	g := completeBipartite(12, 12, 0.5)
	if _, err := CountVarianceExact(g); err == nil {
		t.Fatal("expected the butterfly-count limit error")
	}
}
