package possible

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

func smallGraph(t testing.TB) *bigraph.Graph {
	t.Helper()
	b := bigraph.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	return b.Build()
}

func TestWorldBitsetOps(t *testing.T) {
	w := NewWorld(130) // spans three uint64 words
	if w.Count() != 0 {
		t.Fatal("fresh world not empty")
	}
	for _, id := range []bigraph.EdgeID{0, 63, 64, 129} {
		if w.Has(id) {
			t.Fatalf("edge %d present before Set", id)
		}
		w.Set(id)
		if !w.Has(id) {
			t.Fatalf("edge %d absent after Set", id)
		}
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d, want 4", w.Count())
	}
	w.Clear(64)
	if w.Has(64) || w.Count() != 3 {
		t.Fatal("Clear failed")
	}
	c := w.Clone()
	if !c.Equal(w) {
		t.Fatal("clone not equal")
	}
	c.Set(5)
	if c.Equal(w) {
		t.Fatal("clone aliases original")
	}
	w.Reset()
	if w.Count() != 0 {
		t.Fatal("Reset failed")
	}
	if w.NumBackboneEdges() != 130 {
		t.Fatalf("NumBackboneEdges = %d", w.NumBackboneEdges())
	}
	if w.Equal(NewWorld(10)) {
		t.Fatal("worlds over different universes compared equal")
	}
}

// TestEnumerateProbabilitiesSumToOne: the probabilities of all possible
// worlds form a distribution (property over random graphs).
func TestEnumerateProbabilitiesSumToOne(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		b := bigraph.NewBuilder(n, n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if r.Float64() < 0.7 {
					b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, r.Float64())
				}
			}
		}
		g := b.Build()
		total := 0.0
		worlds := 0
		if err := Enumerate(g, func(w *World, pr float64) bool {
			total += pr
			worlds++
			return true
		}); err != nil {
			return false
		}
		return worlds == 1<<g.NumEdges() && math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumerateProbMatchesProb: the probability passed by Enumerate equals
// Prob() recomputed from the world bitset.
func TestEnumerateProbMatchesProb(t *testing.T) {
	g := smallGraph(t)
	if err := Enumerate(g, func(w *World, pr float64) bool {
		if math.Abs(pr-Prob(g, w)) > 1e-12 {
			t.Fatalf("enumerated prob %v != Prob %v", pr, Prob(g, w))
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLogProbConsistent(t *testing.T) {
	g := smallGraph(t)
	rng := randx.New(3)
	for i := 0; i < 50; i++ {
		w := Sample(g, rng)
		p := Prob(g, w)
		lp := LogProb(g, w)
		if math.Abs(math.Exp(lp)-p) > 1e-12 {
			t.Fatalf("exp(LogProb) = %v, Prob = %v", math.Exp(lp), p)
		}
	}
	// A forced-absent edge makes a world containing it impossible.
	b := bigraph.NewBuilder(1, 1)
	b.MustAddEdge(0, 0, 1, 0)
	g0 := b.Build()
	w := NewWorld(1)
	w.Set(0)
	if Prob(g0, w) != 0 {
		t.Fatal("impossible world has nonzero probability")
	}
	if !math.IsInf(LogProb(g0, w), -1) {
		t.Fatal("impossible world has finite log probability")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := smallGraph(t)
	visits := 0
	if err := Enumerate(g, func(w *World, pr float64) bool {
		visits++
		return visits < 5
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 5 {
		t.Fatalf("enumeration visited %d worlds after stop, want 5", visits)
	}
}

func TestEnumerateLimit(t *testing.T) {
	b := bigraph.NewBuilder(5, 5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, 0.5)
		}
	}
	if err := Enumerate(b.Build(), func(*World, float64) bool { return true }); err == nil {
		t.Fatal("Enumerate accepted 25 edges")
	}
}

// TestSampleFrequencies: each edge's empirical presence rate matches its
// probability, and deterministic edges (p=0 or 1) behave exactly.
func TestSampleFrequencies(t *testing.T) {
	b := bigraph.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0)
	b.MustAddEdge(0, 1, 1, 1)
	b.MustAddEdge(1, 0, 1, 0.3)
	b.MustAddEdge(1, 1, 1, 0.8)
	g := b.Build()
	rng := randx.New(17)
	const trials = 100000
	counts := make([]int, 4)
	w := NewWorld(4)
	for i := 0; i < trials; i++ {
		SampleInto(w, g, rng)
		for id := 0; id < 4; id++ {
			if w.Has(bigraph.EdgeID(id)) {
				counts[id]++
			}
		}
	}
	if counts[0] != 0 {
		t.Fatalf("p=0 edge sampled %d times", counts[0])
	}
	if counts[1] != trials {
		t.Fatalf("p=1 edge sampled %d times, want %d", counts[1], trials)
	}
	for id, want := range map[int]float64{2: 0.3, 3: 0.8} {
		rate := float64(counts[id]) / trials
		if math.Abs(rate-want) > 0.01 {
			t.Fatalf("edge %d rate %v, want ≈ %v", id, rate, want)
		}
	}
}

func TestSampleIntoPanicsOnSizeMismatch(t *testing.T) {
	g := smallGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInto accepted a mis-sized world")
		}
	}()
	SampleInto(NewWorld(3), g, randx.New(1))
}
