// Package possible implements possible worlds of an uncertain bipartite
// network (Definition 2 in the paper).
//
// A possible world keeps the vertex set of the backbone graph and retains
// each edge e independently with probability p(e). The package offers
//
//   - World: a compact edge bitset with O(1) membership tests;
//   - Sample: Bernoulli sampling of one world from a Graph;
//   - Enumerate: exhaustive enumeration of all 2^|E| worlds together with
//     their probabilities, used as ground truth in tests and by the exact
//     MPMB solver on small inputs;
//   - Prob: the probability of a concrete world under the graph's edge
//     distribution (Equation 1).
package possible

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// World is a set of edge ids, stored as a bitset indexed by EdgeID.
type World struct {
	bits []uint64
	n    int // number of edges in the backbone graph
}

// NewWorld returns an empty world over a backbone graph with numEdges
// edges.
func NewWorld(numEdges int) *World {
	return &World{bits: make([]uint64, (numEdges+63)/64), n: numEdges}
}

// NumBackboneEdges returns the size of the edge universe.
func (w *World) NumBackboneEdges() int { return w.n }

// Has reports whether edge id is present.
func (w *World) Has(id bigraph.EdgeID) bool {
	return w.bits[id/64]&(1<<(id%64)) != 0
}

// Set adds edge id to the world.
func (w *World) Set(id bigraph.EdgeID) {
	w.bits[id/64] |= 1 << (id % 64)
}

// Clear removes edge id from the world.
func (w *World) Clear(id bigraph.EdgeID) {
	w.bits[id/64] &^= 1 << (id % 64)
}

// Reset empties the world in place.
func (w *World) Reset() {
	for i := range w.bits {
		w.bits[i] = 0
	}
}

// Count returns the number of edges present.
func (w *World) Count() int {
	c := 0
	for _, b := range w.bits {
		c += popcount(b)
	}
	return c
}

func popcount(x uint64) int {
	// Kernighan would be slower; use the SWAR popcount.
	x = x - ((x >> 1) & 0x5555555555555555)
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Clone returns an independent copy of the world.
func (w *World) Clone() *World {
	c := &World{bits: make([]uint64, len(w.bits)), n: w.n}
	copy(c.bits, w.bits)
	return c
}

// Equal reports whether two worlds over the same universe hold the same
// edges.
func (w *World) Equal(o *World) bool {
	if w.n != o.n {
		return false
	}
	for i := range w.bits {
		if w.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// SampleInto fills dst with a fresh Bernoulli sample of g's edges using
// rng, reusing dst's storage. dst must have been created for g's edge
// count.
func SampleInto(dst *World, g *bigraph.Graph, rng *randx.RNG) {
	if dst.n != g.NumEdges() {
		panic(fmt.Sprintf("possible: world sized for %d edges, graph has %d", dst.n, g.NumEdges()))
	}
	dst.Reset()
	for id, e := range g.Edges() {
		if rng.Bernoulli(e.P) {
			dst.Set(bigraph.EdgeID(id))
		}
	}
}

// Sample draws one possible world of g.
func Sample(g *bigraph.Graph, rng *randx.RNG) *World {
	w := NewWorld(g.NumEdges())
	SampleInto(w, g, rng)
	return w
}

// Prob returns the probability of the concrete world w under g's edge
// distribution: Π_{e∈w} p(e) · Π_{e∉w} (1−p(e)) (Equation 1).
func Prob(g *bigraph.Graph, w *World) float64 {
	p := 1.0
	for id, e := range g.Edges() {
		if w.Has(bigraph.EdgeID(id)) {
			p *= e.P
		} else {
			p *= 1 - e.P
		}
	}
	return p
}

// LogProb returns ln Prob(g, w), safe for graphs whose world probabilities
// underflow float64. Worlds with probability zero return -Inf.
func LogProb(g *bigraph.Graph, w *World) float64 {
	lp := 0.0
	for id, e := range g.Edges() {
		if w.Has(bigraph.EdgeID(id)) {
			lp += math.Log(e.P)
		} else {
			lp += math.Log1p(-e.P)
		}
	}
	return lp
}

// MaxEnumerableEdges bounds Enumerate: 2^24 worlds is already ~16M
// iterations; anything above is almost certainly a mistake.
const MaxEnumerableEdges = 24

// Enumerate calls fn for every possible world of g along with its
// probability. The World passed to fn is reused between calls; clone it if
// it must outlive the callback. fn returning false stops the enumeration.
// Enumerate returns an error if the graph has more than
// MaxEnumerableEdges edges.
//
// Worlds with probability exactly zero are still visited (their
// contribution to any aggregate is zero), keeping the iteration count
// predictable at exactly 2^|E|.
func Enumerate(g *bigraph.Graph, fn func(w *World, prob float64) bool) error {
	m := g.NumEdges()
	if m > MaxEnumerableEdges {
		return fmt.Errorf("possible: refusing to enumerate 2^%d worlds (limit 2^%d)", m, MaxEnumerableEdges)
	}
	w := NewWorld(m)
	edges := g.Edges()
	var rec func(i int, prob float64) bool
	rec = func(i int, prob float64) bool {
		if i == m {
			return fn(w, prob)
		}
		p := edges[i].P
		// Branch: edge absent.
		if !rec(i+1, prob*(1-p)) {
			return false
		}
		// Branch: edge present.
		w.Set(bigraph.EdgeID(i))
		ok := rec(i+1, prob*p)
		w.Clear(bigraph.EdgeID(i))
		return ok
	}
	rec(0, 1.0)
	return nil
}
