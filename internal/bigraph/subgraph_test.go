package bigraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uncertain-graphs/mpmb/internal/randx"
)

func TestInducedSubgraphBasics(t *testing.T) {
	g := buildFigure1(t)
	sub, err := g.InducedSubgraph([]VertexID{0, 1}, []VertexID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumL() != 2 || sub.NumR() != 2 {
		t.Fatalf("subgraph is %dx%d, want 2x2", sub.NumL(), sub.NumR())
	}
	// Edges touching v1 (id 0 on the right) must be gone: 4 remain.
	if sub.NumEdges() != 4 {
		t.Fatalf("subgraph has %d edges, want 4", sub.NumEdges())
	}
	// Renumbering: old v2 (id 1) is new id 0; (u1,v2) had w=2, p=0.6.
	id, ok := sub.FindEdge(0, 0)
	if !ok {
		t.Fatal("edge (u1, v2) missing from subgraph")
	}
	if e := sub.Edge(id); e.W != 2 || e.P != 0.6 {
		t.Fatalf("renumbered edge = %+v, want w=2 p=0.6", e)
	}
}

func TestInducedSubgraphValidation(t *testing.T) {
	g := buildFigure1(t)
	if _, err := g.InducedSubgraph([]VertexID{0, 0}, nil); err == nil {
		t.Fatal("duplicate left vertex accepted")
	}
	if _, err := g.InducedSubgraph(nil, []VertexID{1, 1}); err == nil {
		t.Fatal("duplicate right vertex accepted")
	}
	if _, err := g.InducedSubgraph([]VertexID{9}, nil); err == nil {
		t.Fatal("out-of-range left vertex accepted")
	}
	if _, err := g.InducedSubgraph(nil, []VertexID{9}); err == nil {
		t.Fatal("out-of-range right vertex accepted")
	}
}

func TestVertexSampleFractions(t *testing.T) {
	g := buildFigure1(t)
	rng := randx.New(5)
	full, err := g.VertexSample(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if full.NumL() != g.NumL() || full.NumR() != g.NumR() || full.NumEdges() != g.NumEdges() {
		t.Fatal("VertexSample(1) must keep everything")
	}
	none, err := g.VertexSample(0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if none.NumL() != 0 || none.NumR() != 0 || none.NumEdges() != 0 {
		t.Fatal("VertexSample(0) must keep nothing")
	}
	half, err := g.VertexSample(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumL() != 1 || half.NumR() != 1 {
		t.Fatalf("VertexSample(0.5) kept %dx%d, want 1x1", half.NumL(), half.NumR())
	}
	if _, err := g.VertexSample(1.5, rng); err == nil {
		t.Fatal("fraction out of range accepted")
	}
	if _, err := g.VertexSample(-0.1, rng); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

// TestVertexSampleProperty checks, under testing/quick, that every edge
// of the sample maps back to an edge of the original with identical
// weight and probability.
func TestVertexSampleProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numL, numR := 2+r.Intn(10), 2+r.Intn(10)
		b := NewBuilder(numL, numR)
		for i := 0; i < 3*numL; i++ {
			_ = b.AddEdge(VertexID(r.Intn(numL)), VertexID(r.Intn(numR)), math.Floor(r.Float64()*10)/2, r.Float64())
		}
		g := b.Build()
		rng := randx.New(uint64(seed)*31 + 7)
		frac := []float64{0.25, 0.5, 0.75}[r.Intn(3)]
		sub, err := g.VertexSample(frac, rng)
		if err != nil {
			return false
		}
		// The sample's (w, p) multiset must be a subset of the original's.
		type wp struct{ w, p float64 }
		avail := make(map[wp]int)
		for _, e := range g.Edges() {
			avail[wp{e.W, e.P}]++
		}
		for _, e := range sub.Edges() {
			k := wp{e.W, e.P}
			if avail[k] == 0 {
				return false
			}
			avail[k]--
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestInducedSubgraphBoundaries walks the degenerate inputs table-driven:
// empty graphs, empty keep sets, and single-edge graphs where the edge's
// survival hinges on exactly one endpoint.
func TestInducedSubgraphBoundaries(t *testing.T) {
	empty := NewBuilder(0, 0).Build()
	single := func() *Graph {
		b := NewBuilder(2, 2)
		b.MustAddEdge(0, 1, 2.5, 0.5)
		return b.Build()
	}()

	cases := []struct {
		name         string
		g            *Graph
		keepL, keepR []VertexID
		wantL, wantR int
		wantEdges    int
	}{
		{"empty graph, empty keeps", empty, nil, nil, 0, 0, 0},
		{"empty keeps on non-empty graph", single, nil, nil, 0, 0, 0},
		{"single edge, both endpoints kept", single, []VertexID{0}, []VertexID{1}, 1, 1, 1},
		{"single edge, left endpoint dropped", single, []VertexID{1}, []VertexID{1}, 1, 1, 0},
		{"single edge, right endpoint dropped", single, []VertexID{0}, []VertexID{0}, 1, 1, 0},
		{"isolated vertices kept", single, []VertexID{1}, []VertexID{0}, 1, 1, 0},
		{"full keep is identity-sized", single, []VertexID{0, 1}, []VertexID{0, 1}, 2, 2, 1},
	}
	for _, c := range cases {
		sub, err := c.g.InducedSubgraph(c.keepL, c.keepR)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if sub.NumL() != c.wantL || sub.NumR() != c.wantR || sub.NumEdges() != c.wantEdges {
			t.Errorf("%s: got %dx%d with %d edges, want %dx%d with %d",
				c.name, sub.NumL(), sub.NumR(), sub.NumEdges(), c.wantL, c.wantR, c.wantEdges)
		}
	}
}

// TestVertexSampleBoundaries: sampling an empty graph is legal at every
// fraction, and a single-edge graph at frac just above zero keeps the
// guaranteed one vertex per side.
func TestVertexSampleBoundaries(t *testing.T) {
	empty := NewBuilder(0, 0).Build()
	for _, frac := range []float64{0, 0.5, 1} {
		sub, err := empty.VertexSample(frac, randx.New(1))
		if err != nil {
			t.Fatalf("frac %v on empty graph: %v", frac, err)
		}
		if sub.NumL() != 0 || sub.NumR() != 0 || sub.NumEdges() != 0 {
			t.Fatalf("frac %v on empty graph kept %dx%d/%d", frac, sub.NumL(), sub.NumR(), sub.NumEdges())
		}
	}

	b := NewBuilder(1, 1)
	b.MustAddEdge(0, 0, 1, 0.5)
	single := b.Build()
	sub, err := single.VertexSample(0.01, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// frac > 0 guarantees at least one vertex per non-empty side — here
	// that forces the full graph.
	if sub.NumL() != 1 || sub.NumR() != 1 || sub.NumEdges() != 1 {
		t.Fatalf("tiny fraction on 1x1 graph kept %dx%d/%d, want 1x1/1", sub.NumL(), sub.NumR(), sub.NumEdges())
	}
}

func TestComputeStats(t *testing.T) {
	g := buildFigure1(t)
	s := g.ComputeStats()
	if s.NumL != 2 || s.NumR != 3 || s.NumEdges != 6 {
		t.Fatalf("counts = %+v", s)
	}
	if s.MinWeight != 1 || s.MaxWeight != 3 {
		t.Fatalf("weights = [%v, %v], want [1, 3]", s.MinWeight, s.MaxWeight)
	}
	if s.MinProb != 0.3 || s.MaxProb != 0.8 {
		t.Fatalf("probs = [%v, %v], want [0.3, 0.8]", s.MinProb, s.MaxProb)
	}
	if math.Abs(s.MeanWeight-2) > 1e-12 {
		t.Fatalf("mean weight = %v, want 2", s.MeanWeight)
	}
	if math.Abs(s.ExpectedEdges-3.3) > 1e-12 {
		t.Fatalf("expected edges = %v, want 3.3", s.ExpectedEdges)
	}
	if s.MaxDegreeL != 3 || s.MaxDegreeR != 2 {
		t.Fatalf("max degrees = %d,%d, want 3,2", s.MaxDegreeL, s.MaxDegreeR)
	}
	empty := NewBuilder(0, 0).Build()
	es := empty.ComputeStats()
	if es.NumEdges != 0 || es.MaxWeight != 0 {
		t.Fatalf("empty stats = %+v", es)
	}
}
