package bigraph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numL, numR := 1+r.Intn(10), 1+r.Intn(10)
		b := NewBuilder(numL, numR)
		for i := 0; i < r.Intn(40); i++ {
			_ = b.AddEdge(VertexID(r.Intn(numL)), VertexID(r.Intn(numR)), r.Float64()*10, r.Float64())
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g2.NumL() != g.NumL() || g2.NumR() != g.NumR() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryCorruptionDetected(t *testing.T) {
	g := buildFigure1(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip one probability byte in an edge record (offset into payload:
	// 8 magic + 16 header + first record's p field at +16).
	corrupt := append([]byte(nil), data...)
	corrupt[8+16+16] ^= 0x01
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupted edge accepted")
	}

	// Flip one weight byte: the value stays a valid float, so only the
	// checksum catches it.
	corrupt = append([]byte(nil), data...)
	corrupt[8+16+8] ^= 0x01
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("checksum mismatch accepted")
	}

	// Truncations at every boundary.
	for _, cut := range []int{0, 4, 8, 20, len(data) - 2} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	// Bad magic.
	corrupt = append([]byte(nil), data...)
	corrupt[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Absurd edge count.
	corrupt = append([]byte(nil), data...)
	for i := 16; i < 24; i++ {
		corrupt[i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("absurd edge count accepted")
	}
}

func TestLoadAutoDetectsFormat(t *testing.T) {
	g := buildFigure1(t)
	dir := t.TempDir()

	textPath := filepath.Join(dir, "fig1.graph")
	if err := Save(textPath, g); err != nil {
		t.Fatal(err)
	}
	binPath := filepath.Join(dir, "fig1.bgraph")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{textPath, binPath} {
		got, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if got.NumEdges() != g.NumEdges() {
			t.Fatalf("Load(%s) lost edges", path)
		}
		for i := 0; i < g.NumEdges(); i++ {
			if got.Edge(EdgeID(i)) != g.Edge(EdgeID(i)) {
				t.Fatalf("Load(%s) edge %d differs", path, i)
			}
		}
	}
}

func TestSaveBinaryBadPath(t *testing.T) {
	g := buildFigure1(t)
	if err := SaveBinary(filepath.Join(t.TempDir(), "no", "dir", "x.bgraph"), g); err == nil {
		t.Fatal("SaveBinary succeeded on an invalid path")
	}
}
