package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text interchange format is line-oriented:
//
//	# free-form comment lines start with '#'
//	mpmb-bigraph <numL> <numR> <numEdges>
//	<u> <v> <weight> <probability>
//	...
//
// The header line is mandatory and must come before any edge line. The
// declared edge count is validated against the number of edge lines.

const formatMagic = "mpmb-bigraph"

// maxVerticesPerSide bounds parsed partition sizes: a graph claiming more
// vertices per side than this is rejected before any allocation, so a
// malformed or hostile header cannot exhaust memory or stall parsing
// (each vertex costs CSR index space even with zero edges; fuzzing found
// a header-only file that burned ~1 GiB and ~50 s under a larger cap).
// 2²⁴ is ~90× the largest evaluation dataset's side.
const maxVerticesPerSide = 1 << 24

// maxTextEdges bounds the declared edge count of a text header, matching
// ReadBinary's limit: a header claiming more edges than any real dataset
// is hostile or corrupt, and rejecting it up front keeps the declared
// count safe to use for preallocation.
const maxTextEdges = 1 << 33

// Write serializes g in the text interchange format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "%s %d %d %d\n", formatMagic, g.numL, g.numR, len(g.edges)); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", e.U, e.V, e.W, e.P); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Save writes g to the named file, creating or truncating it.
func Save(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return fmt.Errorf("bigraph: writing %s: %w", path, err)
	}
	return f.Close()
}

// Read parses a graph from the text interchange format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	var b *Builder
	declared := -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			if len(fields) != 4 || fields[0] != formatMagic {
				return nil, fmt.Errorf("bigraph: line %d: expected header %q <numL> <numR> <numEdges>", lineNo, formatMagic)
			}
			numL, err := strconv.Atoi(fields[1])
			if err != nil || numL < 0 || numL > maxVerticesPerSide {
				return nil, fmt.Errorf("bigraph: line %d: bad numL %q (limit %d)", lineNo, fields[1], maxVerticesPerSide)
			}
			numR, err := strconv.Atoi(fields[2])
			if err != nil || numR < 0 || numR > maxVerticesPerSide {
				return nil, fmt.Errorf("bigraph: line %d: bad numR %q (limit %d)", lineNo, fields[2], maxVerticesPerSide)
			}
			declared, err = strconv.Atoi(fields[3])
			if err != nil || declared < 0 || int64(declared) > maxTextEdges {
				return nil, fmt.Errorf("bigraph: line %d: bad edge count %q (limit %d)", lineNo, fields[3], int64(maxTextEdges))
			}
			// A bipartite simple graph has at most numL·numR edges; a
			// header declaring more can never validate, so reject it
			// before parsing (and potentially buffering) the edge lines.
			if int64(declared) > int64(numL)*int64(numR) {
				return nil, fmt.Errorf("bigraph: line %d: header declares %d edges but a %d x %d graph holds at most %d",
					lineNo, declared, numL, numR, int64(numL)*int64(numR))
			}
			b = NewBuilder(numL, numR)
			// Preallocate from the vetted declared count, capped so the
			// allocation stays bounded by actual input rather than by a
			// header's claim — a lying header costs at most ~2 MiB before
			// the trailing count check rejects it.
			if prealloc := declared; prealloc > 0 {
				if prealloc > 1<<16 {
					prealloc = 1 << 16
				}
				b.edges = make([]Edge, 0, prealloc)
			}
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("bigraph: line %d: expected '<u> <v> <w> <p>', got %d fields", lineNo, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad left vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad right vertex %q: %v", lineNo, fields[1], err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad weight %q: %v", lineNo, fields[2], err)
		}
		p, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad probability %q: %v", lineNo, fields[3], err)
		}
		if err := b.AddEdge(VertexID(u), VertexID(v), w, p); err != nil {
			return nil, fmt.Errorf("bigraph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("bigraph: missing header line")
	}
	if b.NumEdges() != declared {
		return nil, fmt.Errorf("bigraph: header declares %d edges but file contains %d", declared, b.NumEdges())
	}
	return b.Build(), nil
}

// Load reads a graph from the named file, auto-detecting the text or
// binary interchange format by its leading bytes.
func Load(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == string(binaryMagic[:]) {
		g, err := ReadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("bigraph: loading %s: %w", path, err)
		}
		return g, nil
	}
	g, err := Read(br)
	if err != nil {
		return nil, fmt.Errorf("bigraph: loading %s: %w", path, err)
	}
	return g, nil
}
