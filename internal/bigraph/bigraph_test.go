package bigraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildFigure1(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5)
	b.MustAddEdge(0, 1, 2, 0.6)
	b.MustAddEdge(0, 2, 1, 0.8)
	b.MustAddEdge(1, 0, 3, 0.3)
	b.MustAddEdge(1, 1, 3, 0.4)
	b.MustAddEdge(1, 2, 1, 0.7)
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder(2, 2)
	cases := []struct {
		u, v VertexID
		w, p float64
	}{
		{2, 0, 1, 0.5},           // left out of range
		{0, 2, 1, 0.5},           // right out of range
		{0, 0, math.NaN(), 0.5},  // NaN weight
		{0, 0, math.Inf(1), 0.5}, // infinite weight
		{0, 0, 1, -0.1},          // negative probability
		{0, 0, 1, 1.1},           // probability > 1
		{0, 0, 1, math.NaN()},    // NaN probability
	}
	for _, c := range cases {
		if err := b.AddEdge(c.u, c.v, c.w, c.p); err == nil {
			t.Errorf("AddEdge(%d,%d,%v,%v) accepted invalid input", c.u, c.v, c.w, c.p)
		}
	}
	if err := b.AddEdge(0, 0, 1, 0.5); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(0, 0, 2, 0.7); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestCSRAdjacencyConsistency(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numL, numR := 1+r.Intn(8), 1+r.Intn(8)
		b := NewBuilder(numL, numR)
		for i := 0; i < 20; i++ {
			u, v := VertexID(r.Intn(numL)), VertexID(r.Intn(numR))
			_ = b.AddEdge(u, v, r.Float64()*5, r.Float64()) // dups rejected silently
		}
		g := b.Build()
		// Every edge appears exactly once in each side's adjacency;
		// degrees sum to |E| on both sides.
		sumL, sumR := 0, 0
		for u := 0; u < numL; u++ {
			row := g.NeighborsL(VertexID(u))
			sumL += len(row)
			for i, h := range row {
				e := g.Edge(h.E)
				if e.U != VertexID(u) || e.V != h.To {
					return false
				}
				if i > 0 && row[i-1].To >= h.To {
					return false // rows must be strictly sorted
				}
			}
		}
		for v := 0; v < numR; v++ {
			row := g.NeighborsR(VertexID(v))
			sumR += len(row)
			for i, h := range row {
				e := g.Edge(h.E)
				if e.V != VertexID(v) || e.U != h.To {
					return false
				}
				if i > 0 && row[i-1].To >= h.To {
					return false
				}
			}
		}
		return sumL == g.NumEdges() && sumR == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFindEdge(t *testing.T) {
	g := buildFigure1(t)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(EdgeID(id))
		got, ok := g.FindEdge(e.U, e.V)
		if !ok || got != EdgeID(id) {
			t.Fatalf("FindEdge(%d,%d) = %d,%v; want %d,true", e.U, e.V, got, ok, id)
		}
	}
	if _, ok := g.FindEdge(0, 5); ok {
		t.Fatal("FindEdge found a right vertex out of range")
	}
	if _, ok := g.FindEdge(7, 0); ok {
		t.Fatal("FindEdge found a left vertex out of range")
	}
	// Missing pair within range.
	b := NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 1)
	g2 := b.Build()
	if _, ok := g2.FindEdge(1, 1); ok {
		t.Fatal("FindEdge found a nonexistent edge")
	}
}

func TestDegreesAndExpectedDegrees(t *testing.T) {
	g := buildFigure1(t)
	if g.DegreeL(0) != 3 || g.DegreeL(1) != 3 {
		t.Fatalf("left degrees = %d,%d, want 3,3", g.DegreeL(0), g.DegreeL(1))
	}
	for v := 0; v < 3; v++ {
		if g.DegreeR(VertexID(v)) != 2 {
			t.Fatalf("right degree of %d = %d, want 2", v, g.DegreeR(VertexID(v)))
		}
	}
	// d̄(u1) = 0.5+0.6+0.8 = 1.9.
	if got := g.ExpectedDegreeL(0); math.Abs(got-1.9) > 1e-12 {
		t.Fatalf("expected degree of u1 = %v, want 1.9", got)
	}
	// d̄(v1) = 0.5+0.3 = 0.8.
	if got := g.ExpectedDegreeR(0); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("expected degree of v1 = %v, want 0.8", got)
	}
	// E[deg²(v1)] = Var + mean² = (0.25+0.21) + 0.64 = 1.1.
	if got := g.ExpectedSquaredDegreeR(0); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("expected squared degree of v1 = %v, want 1.1", got)
	}
	// Same quantity on the left: Var = .25+.24+.16=0.65, mean²=3.61.
	if got := g.ExpectedSquaredDegreeL(0); math.Abs(got-4.26) > 1e-12 {
		t.Fatalf("expected squared degree of u1 = %v, want 4.26", got)
	}
}

func TestEdgesByWeightDescAndTopWeightSum(t *testing.T) {
	g := buildFigure1(t)
	order := g.EdgesByWeightDesc()
	if len(order) != 6 {
		t.Fatalf("order has %d edges, want 6", len(order))
	}
	for i := 1; i < len(order); i++ {
		if g.Edge(order[i]).W > g.Edge(order[i-1]).W {
			t.Fatalf("weights not descending at %d", i)
		}
	}
	// Top-3 weights are 3, 3, 2.
	if got := g.TopWeightSum(3); got != 8 {
		t.Fatalf("TopWeightSum(3) = %v, want 8", got)
	}
	if got := g.TopWeightSum(100); math.Abs(got-12) > 1e-12 {
		t.Fatalf("TopWeightSum(100) = %v, want total 12", got)
	}
	if got := g.TopWeightSum(0); got != 0 {
		t.Fatalf("TopWeightSum(0) = %v, want 0", got)
	}
}

func TestTopWeightSumProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		b := NewBuilder(n, n)
		ws := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			w := math.Floor(r.Float64()*20) / 2
			ws = append(ws, w)
			b.MustAddEdge(VertexID(i), VertexID(i), w, 0.5)
		}
		g := b.Build()
		k := 1 + r.Intn(5)
		// Reference: sort and take k largest.
		sorted := append([]float64(nil), ws...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		want := 0.0
		for i := 0; i < k && i < len(sorted); i++ {
			want += sorted[i]
		}
		return math.Abs(g.TopWeightSum(k)-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrderIsDegreeMonotone(t *testing.T) {
	g := buildFigure1(t)
	order := g.PriorityOrder()
	if len(order) != 5 {
		t.Fatalf("order covers %d vertices, want 5", len(order))
	}
	// Ranks must be a permutation of 0..4.
	seen := make([]bool, 5)
	for _, rk := range order {
		if rk < 0 || rk >= 5 || seen[rk] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[rk] = true
	}
	// Degree-3 left vertices must outrank degree-2 right vertices.
	for u := 0; u < 2; u++ {
		for v := 0; v < 3; v++ {
			if order[g.GlobalID(SideL, VertexID(u))] <= order[g.GlobalID(SideR, VertexID(v))] {
				t.Fatalf("degree-3 u%d does not outrank degree-2 v%d", u+1, v+1)
			}
		}
	}
}

func TestGlobalIDRoundTrip(t *testing.T) {
	g := buildFigure1(t)
	for gid := 0; gid < g.NumVertices(); gid++ {
		side, v := g.SplitGlobalID(gid)
		if got := g.GlobalID(side, v); got != gid {
			t.Fatalf("GlobalID round trip failed for %d: got %d", gid, got)
		}
	}
}

func TestMaxWeightAndExpectedEdges(t *testing.T) {
	g := buildFigure1(t)
	if g.MaxWeight() != 3 {
		t.Fatalf("MaxWeight = %v, want 3", g.MaxWeight())
	}
	if got := g.TotalExpectedEdges(); math.Abs(got-3.3) > 1e-12 {
		t.Fatalf("TotalExpectedEdges = %v, want 3.3", got)
	}
	empty := NewBuilder(1, 1).Build()
	if empty.MaxWeight() != 0 {
		t.Fatalf("empty MaxWeight = %v, want 0", empty.MaxWeight())
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(2, 2, []Edge{{U: 0, V: 0, W: 1, P: 0.5}, {U: 1, V: 1, W: 2, P: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if _, err := FromEdges(1, 1, []Edge{{U: 5, V: 0, W: 1, P: 0.5}}); err == nil {
		t.Fatal("FromEdges accepted an out-of-range edge")
	}
}
