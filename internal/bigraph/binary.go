package bigraph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary interchange format, for datasets where the text format's parse
// cost matters (the Protein analogue is ~1M edges):
//
//	magic   [8]byte  "MPMBBIN1"
//	numL    uint32   little endian
//	numR    uint32
//	numE    uint64
//	edges   numE × { u uint32, v uint32, w float64, p float64 }
//	crc     uint32   IEEE CRC-32 over everything above
//
// Load sniffs the magic, so one loader handles both formats.

var binaryMagic = [8]byte{'M', 'P', 'M', 'B', 'B', 'I', 'N', '1'}

const edgeRecordSize = 4 + 4 + 8 + 8

// WriteBinary serializes g in the binary interchange format.
func WriteBinary(w io.Writer, g *Graph) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<16)
	// The CRC must cover exactly the bytes written; writing through the
	// MultiWriter via the buffer keeps them in lockstep because the
	// buffer flushes to both sinks together.
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.numL))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.numR))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [edgeRecordSize]byte
	for _, e := range g.edges {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(e.P))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// ReadBinary parses a graph from the binary interchange format,
// validating every edge and the trailing checksum (recomputed from the
// parsed content, which is byte-equivalent to the canonical payload).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("bigraph: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("bigraph: bad binary magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("bigraph: reading binary header: %w", err)
	}
	numL := binary.LittleEndian.Uint32(hdr[0:])
	numR := binary.LittleEndian.Uint32(hdr[4:])
	numE := binary.LittleEndian.Uint64(hdr[8:])
	const maxEdges = 1 << 33 // refuse absurd headers before allocating
	if numE > maxEdges {
		return nil, fmt.Errorf("bigraph: binary header declares %d edges (limit %d)", numE, uint64(maxEdges))
	}
	if numL > maxVerticesPerSide || numR > maxVerticesPerSide {
		return nil, fmt.Errorf("bigraph: binary header declares %d×%d vertices (limit %d per side)", numL, numR, maxVerticesPerSide)
	}
	b := NewBuilder(int(numL), int(numR))
	var rec [edgeRecordSize]byte
	for i := uint64(0); i < numE; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("bigraph: reading edge %d: %w", i, err)
		}
		u := binary.LittleEndian.Uint32(rec[0:])
		v := binary.LittleEndian.Uint32(rec[4:])
		w := math.Float64frombits(binary.LittleEndian.Uint64(rec[8:]))
		p := math.Float64frombits(binary.LittleEndian.Uint64(rec[16:]))
		if err := b.AddEdge(u, v, w, p); err != nil {
			return nil, fmt.Errorf("bigraph: edge %d: %w", i, err)
		}
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("bigraph: reading checksum: %w", err)
	}
	g := b.Build()
	if got, want := binary.LittleEndian.Uint32(tail[:]), payloadCRC(g); got != want {
		return nil, fmt.Errorf("bigraph: checksum mismatch: file %08x, payload %08x", got, want)
	}
	return g, nil
}

// payloadCRC computes the CRC-32 of g's canonical binary payload (magic,
// header, edge records) without materializing it.
func payloadCRC(g *Graph) uint32 {
	crc := crc32.NewIEEE()
	crc.Write(binaryMagic[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.numL))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(g.numR))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(g.edges)))
	crc.Write(hdr[:])
	var rec [edgeRecordSize]byte
	for _, e := range g.edges {
		binary.LittleEndian.PutUint32(rec[0:], e.U)
		binary.LittleEndian.PutUint32(rec[4:], e.V)
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(e.W))
		binary.LittleEndian.PutUint64(rec[16:], math.Float64bits(e.P))
		crc.Write(rec[:])
	}
	return crc.Sum32()
}

// Checksum returns the CRC-32 of g's canonical binary payload — a cheap
// fingerprint that identifies the graph's exact content (partitions,
// edges, weights, probabilities). Run checkpoints embed it so that a
// resume against a different graph is refused instead of silently
// producing garbage.
func (g *Graph) Checksum() uint32 { return payloadCRC(g) }

// SaveBinary writes g to the named file in the binary format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return fmt.Errorf("bigraph: writing %s: %w", path, err)
	}
	return f.Close()
}
