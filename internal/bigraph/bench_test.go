package bigraph

import (
	"bytes"
	"math/rand"
	"testing"
)

// benchGraph builds a reproducible mid-sized graph for the IO and CSR
// micro-benchmarks.
func benchGraph(numL, numR, numEdges int) *Graph {
	r := rand.New(rand.NewSource(1))
	b := NewBuilder(numL, numR)
	for b.NumEdges() < numEdges {
		_ = b.AddEdge(VertexID(r.Intn(numL)), VertexID(r.Intn(numR)), r.Float64()*10, r.Float64())
	}
	return b.Build()
}

func BenchmarkBuildCSR(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	edges := make([]Edge, 0, 50000)
	seen := make(map[uint64]bool)
	for len(edges) < 50000 {
		u, v := uint32(r.Intn(2000)), uint32(r.Intn(2000))
		k := uint64(u)<<32 | uint64(v)
		if seen[k] {
			continue
		}
		seen[k] = true
		edges = append(edges, Edge{U: u, V: v, W: r.Float64() * 10, P: r.Float64()})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := FromEdges(2000, 2000, edges)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumEdges() != 50000 {
			b.Fatal("lost edges")
		}
	}
}

func BenchmarkFindEdge(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	r := rand.New(rand.NewSource(2))
	queries := make([][2]VertexID, 1024)
	for i := range queries {
		e := g.Edge(EdgeID(r.Intn(g.NumEdges())))
		queries[i] = [2]VertexID{e.U, e.V}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, ok := g.FindEdge(q[0], q[1]); !ok {
			b.Fatal("edge lost")
		}
	}
}

func BenchmarkPriorityOrder(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.PriorityOrder()) != 4000 {
			b.Fatal("bad order")
		}
	}
}

func BenchmarkWriteText(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadText(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBinary(b *testing.B) {
	g := benchGraph(2000, 2000, 50000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
