package bigraph

import "sort"

// Side distinguishes the two vertex partitions when a single ordering must
// range over all of V = L ∪ R.
type Side uint8

const (
	// SideL marks a vertex of the left partition.
	SideL Side = iota
	// SideR marks a vertex of the right partition.
	SideR
)

// GlobalID maps a (side, vertex) pair to a dense index over V = L ∪ R:
// left vertices occupy [0, |L|) and right vertices [|L|, |L|+|R|).
func (g *Graph) GlobalID(side Side, v VertexID) int {
	if side == SideL {
		return int(v)
	}
	return g.numL + int(v)
}

// SplitGlobalID is the inverse of GlobalID.
func (g *Graph) SplitGlobalID(gid int) (Side, VertexID) {
	if gid < g.numL {
		return SideL, VertexID(gid)
	}
	return SideR, VertexID(gid - g.numL)
}

// NumVertices returns |L| + |R|.
func (g *Graph) NumVertices() int { return g.numL + g.numR }

// PriorityOrder computes the vertex-priority order o(·) used by the MC-VP
// baseline (Section IV): a vertex with larger degree receives a larger
// priority rank; ties break by global id so the order is total and
// deterministic, matching the convention of BFC-VP.
//
// The returned slice is indexed by GlobalID and holds each vertex's rank
// in [0, |V|): order[gid_a] > order[gid_b] means a has higher priority.
func (g *Graph) PriorityOrder() []int {
	n := g.NumVertices()
	gids := make([]int, n)
	for i := range gids {
		gids[i] = i
	}
	deg := func(gid int) int {
		side, v := g.SplitGlobalID(gid)
		if side == SideL {
			return g.DegreeL(v)
		}
		return g.DegreeR(v)
	}
	sort.Slice(gids, func(a, b int) bool {
		da, db := deg(gids[a]), deg(gids[b])
		if da != db {
			return da < db
		}
		return gids[a] < gids[b]
	})
	order := make([]int, n)
	for rank, gid := range gids {
		order[gid] = rank
	}
	return order
}
