package bigraph

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestIORoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numL, numR := 1+r.Intn(10), 1+r.Intn(10)
		b := NewBuilder(numL, numR)
		for i := 0; i < r.Intn(30); i++ {
			_ = b.AddEdge(VertexID(r.Intn(numL)), VertexID(r.Intn(numR)), r.Float64()*10, r.Float64())
		}
		g := b.Build()
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			return false
		}
		g2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if g2.NumL() != g.NumL() || g2.NumR() != g.NumR() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := buildFigure1(t)
	path := filepath.Join(t.TempDir(), "fig1.graph")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("reloaded graph has %d edges, want %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.graph")); err == nil {
		t.Fatal("Load succeeded on a missing file")
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty":              "",
		"comments only":      "# hello\n\n",
		"bad magic":          "wrong 1 1 0\n",
		"missing header":     "0 0 1 0.5\n",
		"negative counts":    "mpmb-bigraph -1 2 0\n",
		"bad numR":           "mpmb-bigraph 1 x 0\n",
		"bad edge count":     "mpmb-bigraph 1 1 zz\n",
		"short edge line":    "mpmb-bigraph 1 1 1\n0 0 1\n",
		"bad left vertex":    "mpmb-bigraph 1 1 1\nx 0 1 0.5\n",
		"bad right vertex":   "mpmb-bigraph 1 1 1\n0 x 1 0.5\n",
		"bad weight":         "mpmb-bigraph 1 1 1\n0 0 x 0.5\n",
		"bad probability":    "mpmb-bigraph 1 1 1\n0 0 1 x\n",
		"probability > 1":    "mpmb-bigraph 1 1 1\n0 0 1 1.5\n",
		"vertex overflow":    "mpmb-bigraph 1 1 1\n5 0 1 0.5\n",
		"edge count too low": "mpmb-bigraph 1 1 0\n0 0 1 0.5\n",
		"edge count too big": "mpmb-bigraph 1 1 3\n0 0 1 0.5\n",
		"duplicate edge":     "mpmb-bigraph 1 1 2\n0 0 1 0.5\n0 0 2 0.6\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted %q", name, in)
		}
	}
}

// TestReadRejectsOversizedHeaders: the text parser enforces the same
// declared-edge-count discipline as ReadBinary — a header claiming more
// edges than the global limit (or than the graph can bipartitely hold)
// is rejected up front, before any header-sized allocation or edge-line
// parsing.
func TestReadRejectsOversizedHeaders(t *testing.T) {
	cases := map[string]string{
		"past global limit":      "mpmb-bigraph 16777216 16777216 8589934593\n",
		"int overflow":           "mpmb-bigraph 2 2 99999999999999999999\n",
		"past bipartite cap":     "mpmb-bigraph 2 2 5\n",
		"cap with pending edges": "mpmb-bigraph 3 3 10\n0 0 1 0.5\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted %q", name, in)
		}
	}
	// At the exact capacity the header is honest and must still parse.
	ok := "mpmb-bigraph 2 2 4\n0 0 1 0.5\n0 1 1 0.5\n1 0 1 0.5\n1 1 1 0.5\n"
	g, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("full bipartite graph rejected: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("parsed %d edges, want 4", g.NumEdges())
	}
}

func TestReadAcceptsCommentsAndBlankLines(t *testing.T) {
	in := "# a comment\n\nmpmb-bigraph 2 2 1\n# another\n0 1 2.5 0.25\n\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Edge(0).W != 2.5 || g.Edge(0).P != 0.25 {
		t.Fatalf("parsed graph wrong: %+v", g.Edge(0))
	}
}

func TestSaveFailsOnBadPath(t *testing.T) {
	g := buildFigure1(t)
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.graph"), g); err == nil {
		t.Fatal("Save succeeded on an invalid path")
	}
	if _, err := os.Stat(filepath.Join(t.TempDir(), "x.graph")); err == nil {
		t.Fatal("unexpected file created")
	}
}
