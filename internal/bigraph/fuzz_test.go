package bigraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the text parser: arbitrary input must either parse
// into a graph that re-serializes losslessly or fail cleanly — never
// panic.
func FuzzRead(f *testing.F) {
	f.Add("mpmb-bigraph 2 3 1\n0 1 2.5 0.5\n")
	f.Add("mpmb-bigraph 0 0 0\n")
	f.Add("# comment\nmpmb-bigraph 1 1 1\n0 0 1 1\n")
	f.Add("mpmb-bigraph 1 1 2\n0 0 1 1\n")
	f.Add("garbage\n")
	f.Add("mpmb-bigraph 4294967295 1 0\n")
	// Oversized-header seeds: edge counts past the global limit, past the
	// bipartite capacity, and just inside both — the parser must reject
	// (or handle) each without allocating header-sized buffers.
	f.Add("mpmb-bigraph 2 2 8589934593\n")            // > maxTextEdges
	f.Add("mpmb-bigraph 2 2 999999999999999999999\n") // overflows int
	f.Add("mpmb-bigraph 2 2 5\n")                     // > numL*numR capacity
	f.Add("mpmb-bigraph 16777216 16777216 8589934592\n")
	f.Add("mpmb-bigraph 3 3 9\n0 0 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatalf("parsed graph failed to serialize: %v", err)
		}
		g2, err := Read(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if g2.NumL() != g.NumL() || g2.NumR() != g.NumR() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed dimensions")
		}
	})
}

// FuzzReadBinary hardens the binary parser the same way.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and some prefixes of it.
	b := NewBuilder(2, 2)
	b.MustAddEdge(0, 1, 2.5, 0.75)
	b.MustAddEdge(1, 0, 1.5, 0.25)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("MPMBBIN1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, g); err != nil {
			t.Fatalf("parsed graph failed to serialize: %v", err)
		}
		// A successfully parsed file must re-serialize byte-identically
		// up to its own length (the canonical encoding is unique).
		if !bytes.Equal(out.Bytes(), in[:len(out.Bytes())]) && len(in) == out.Len() {
			t.Fatal("binary round trip not canonical")
		}
	})
}
