package bigraph

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/randx"
)

// InducedSubgraph returns the subgraph induced by the given vertex subsets
// (keepL over L, keepR over R), with vertices renumbered densely in the
// order they appear in the keep slices. Edges survive iff both endpoints
// are kept. Duplicate ids in a keep slice are an error.
func (g *Graph) InducedSubgraph(keepL, keepR []VertexID) (*Graph, error) {
	mapL := make(map[VertexID]VertexID, len(keepL))
	for i, u := range keepL {
		if int(u) >= g.numL {
			return nil, fmt.Errorf("bigraph: induced subgraph: left vertex %d out of range", u)
		}
		if _, dup := mapL[u]; dup {
			return nil, fmt.Errorf("bigraph: induced subgraph: duplicate left vertex %d", u)
		}
		mapL[u] = VertexID(i)
	}
	mapR := make(map[VertexID]VertexID, len(keepR))
	for i, v := range keepR {
		if int(v) >= g.numR {
			return nil, fmt.Errorf("bigraph: induced subgraph: right vertex %d out of range", v)
		}
		if _, dup := mapR[v]; dup {
			return nil, fmt.Errorf("bigraph: induced subgraph: duplicate right vertex %d", v)
		}
		mapR[v] = VertexID(i)
	}
	var edges []Edge
	for _, e := range g.edges {
		nu, okU := mapL[e.U]
		nv, okV := mapR[e.V]
		if okU && okV {
			edges = append(edges, Edge{U: nu, V: nv, W: e.W, P: e.P})
		}
	}
	return newGraph(len(keepL), len(keepR), edges), nil
}

// VertexSample returns the subgraph induced by a uniformly random fraction
// of vertices on each side (at least one vertex per non-empty side when
// frac > 0). This is the workload transformation behind the scalability
// experiment (Fig. 9), which evaluates each method on 25%, 50%, 75% and
// 100% of the vertices.
func (g *Graph) VertexSample(frac float64, rng *randx.RNG) (*Graph, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("bigraph: vertex sample fraction %v outside [0,1]", frac)
	}
	pick := func(n int) []VertexID {
		k := int(float64(n) * frac)
		if k == 0 && n > 0 && frac > 0 {
			k = 1
		}
		perm := rng.Perm(n)
		ids := make([]VertexID, k)
		for i := 0; i < k; i++ {
			ids[i] = VertexID(perm[i])
		}
		return ids
	}
	return g.InducedSubgraph(pick(g.numL), pick(g.numR))
}

// Stats summarizes a graph for reporting (Table III of the paper).
type Stats struct {
	NumL, NumR, NumEdges int
	MinWeight, MaxWeight float64
	MeanWeight           float64
	MinProb, MaxProb     float64
	MeanProb             float64
	ExpectedEdges        float64 // Σ p(e)
	MaxDegreeL           int
	MaxDegreeR           int
}

// ComputeStats scans the graph once and returns its summary statistics.
func (g *Graph) ComputeStats() Stats {
	s := Stats{NumL: g.numL, NumR: g.numR, NumEdges: len(g.edges)}
	if len(g.edges) == 0 {
		return s
	}
	s.MinWeight, s.MaxWeight = g.edges[0].W, g.edges[0].W
	s.MinProb, s.MaxProb = g.edges[0].P, g.edges[0].P
	var wSum, pSum float64
	for _, e := range g.edges {
		if e.W < s.MinWeight {
			s.MinWeight = e.W
		}
		if e.W > s.MaxWeight {
			s.MaxWeight = e.W
		}
		if e.P < s.MinProb {
			s.MinProb = e.P
		}
		if e.P > s.MaxProb {
			s.MaxProb = e.P
		}
		wSum += e.W
		pSum += e.P
	}
	s.MeanWeight = wSum / float64(len(g.edges))
	s.MeanProb = pSum / float64(len(g.edges))
	s.ExpectedEdges = pSum
	for u := 0; u < g.numL; u++ {
		if d := g.DegreeL(VertexID(u)); d > s.MaxDegreeL {
			s.MaxDegreeL = d
		}
	}
	for v := 0; v < g.numR; v++ {
		if d := g.DegreeR(VertexID(v)); d > s.MaxDegreeR {
			s.MaxDegreeR = d
		}
	}
	return s
}
