// Package bigraph implements the uncertain bipartite weighted network that
// every MPMB algorithm in this repository operates on.
//
// A graph G = (V=(L,R), E, p, w) has two disjoint vertex partitions L and
// R, and every edge (u, v) with u ∈ L, v ∈ R carries a weight w(e) ∈ ℝ and
// an existence probability p(e) ∈ [0, 1] (Definition 1 in the paper).
// Vertices on each side are identified by dense indices 0..|L|-1 and
// 0..|R|-1; the two index spaces are independent.
//
// The package provides:
//
//   - a Builder for incremental, validated construction;
//   - an immutable Graph with CSR adjacency on both sides, so wedge
//     (angle) generation can walk neighbourhoods without allocation;
//   - degree statistics: plain, expected (Σp), and expected-squared
//     degrees, which drive the complexity bounds of Lemmas IV.1 and V.1;
//   - the global vertex-priority order used by the MC-VP baseline;
//   - edge ordering by weight, used by Ordering Sampling;
//   - induced subgraph extraction for the scalability experiment (Fig. 9);
//   - a plain-text interchange format (io.go).
package bigraph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID indexes a vertex within its own partition (L or R).
type VertexID = uint32

// EdgeID indexes an edge in Graph.Edges order.
type EdgeID = uint32

// Edge is a single uncertain weighted edge between U ∈ L and V ∈ R.
type Edge struct {
	U VertexID // left endpoint
	V VertexID // right endpoint
	W float64  // weight
	P float64  // existence probability in [0, 1]
}

// Half is one adjacency entry: the opposite endpoint and the edge it
// belongs to.
type Half struct {
	To VertexID
	E  EdgeID
}

// Graph is an immutable uncertain bipartite weighted network.
// Construct one with a Builder, Load, or FromEdges.
type Graph struct {
	numL, numR int
	edges      []Edge

	lOff []int32 // CSR offsets for the L side, len numL+1
	lAdj []Half
	rOff []int32 // CSR offsets for the R side, len numR+1
	rAdj []Half
}

// Builder accumulates edges and produces a Graph. The zero value is not
// usable; call NewBuilder.
type Builder struct {
	numL, numR int
	edges      []Edge
	seen       map[uint64]struct{}
}

// NewBuilder returns a Builder for a graph with the given partition sizes.
func NewBuilder(numL, numR int) *Builder {
	return &Builder{
		numL: numL,
		numR: numR,
		seen: make(map[uint64]struct{}),
	}
}

func pairKey(u, v VertexID) uint64 { return uint64(u)<<32 | uint64(v) }

// AddEdge appends the edge (u, v) with weight w and probability p.
// It returns an error if either endpoint is out of range, p is outside
// [0, 1], w is NaN or infinite, or the pair (u, v) was already added.
func (b *Builder) AddEdge(u, v VertexID, w, p float64) error {
	if int(u) >= b.numL {
		return fmt.Errorf("bigraph: left vertex %d out of range [0,%d)", u, b.numL)
	}
	if int(v) >= b.numR {
		return fmt.Errorf("bigraph: right vertex %d out of range [0,%d)", v, b.numR)
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("bigraph: edge (%d,%d) has non-finite weight %v", u, v, w)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("bigraph: edge (%d,%d) has probability %v outside [0,1]", u, v, p)
	}
	k := pairKey(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("bigraph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[k] = struct{}{}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w, P: p})
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// hand-written example graphs.
func (b *Builder) MustAddEdge(u, v VertexID, w, p float64) {
	if err := b.AddEdge(u, v, w, p); err != nil {
		panic(err)
	}
}

// NumEdges reports how many edges have been added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph. The Builder remains usable (further AddEdge
// calls affect only future Build results).
func (b *Builder) Build() *Graph {
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	return newGraph(b.numL, b.numR, edges)
}

// FromEdges constructs a graph directly from an edge slice, applying the
// same validation as Builder.AddEdge. The slice is copied.
func FromEdges(numL, numR int, edges []Edge) (*Graph, error) {
	b := NewBuilder(numL, numR)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V, e.W, e.P); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// newGraph builds the CSR indexes. edges is owned by the new Graph.
func newGraph(numL, numR int, edges []Edge) *Graph {
	g := &Graph{
		numL:  numL,
		numR:  numR,
		edges: edges,
		lOff:  make([]int32, numL+1),
		rOff:  make([]int32, numR+1),
	}
	for _, e := range edges {
		g.lOff[e.U+1]++
		g.rOff[e.V+1]++
	}
	for i := 0; i < numL; i++ {
		g.lOff[i+1] += g.lOff[i]
	}
	for i := 0; i < numR; i++ {
		g.rOff[i+1] += g.rOff[i]
	}
	g.lAdj = make([]Half, len(edges))
	g.rAdj = make([]Half, len(edges))
	lNext := make([]int32, numL)
	rNext := make([]int32, numR)
	copy(lNext, g.lOff[:numL])
	copy(rNext, g.rOff[:numR])
	for id, e := range edges {
		g.lAdj[lNext[e.U]] = Half{To: e.V, E: EdgeID(id)}
		lNext[e.U]++
		g.rAdj[rNext[e.V]] = Half{To: e.U, E: EdgeID(id)}
		rNext[e.V]++
	}
	// Sort each adjacency row by opposite endpoint so FindEdge can binary
	// search and iteration order is deterministic regardless of insertion
	// order.
	for u := 0; u < numL; u++ {
		row := g.lAdj[g.lOff[u]:g.lOff[u+1]]
		sort.Slice(row, func(a, b int) bool { return row[a].To < row[b].To })
	}
	for v := 0; v < numR; v++ {
		row := g.rAdj[g.rOff[v]:g.rOff[v+1]]
		sort.Slice(row, func(a, b int) bool { return row[a].To < row[b].To })
	}
	return g
}

// FindEdge returns the id of the edge (u, v) if it exists in the backbone
// graph. It binary-searches the shorter endpoint's adjacency row.
func (g *Graph) FindEdge(u, v VertexID) (EdgeID, bool) {
	if int(u) >= g.numL || int(v) >= g.numR {
		return 0, false
	}
	var row []Half
	var want VertexID
	if g.DegreeL(u) <= g.DegreeR(v) {
		row, want = g.NeighborsL(u), v
	} else {
		row, want = g.NeighborsR(v), u
	}
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid].To < want {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo].To == want {
		return row[lo].E, true
	}
	return 0, false
}

// NumL returns |L|.
func (g *Graph) NumL() int { return g.numL }

// NumR returns |R|.
func (g *Graph) NumR() int { return g.numR }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the underlying edge slice. Callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// NeighborsL returns the adjacency list of left vertex u. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) NeighborsL(u VertexID) []Half {
	return g.lAdj[g.lOff[u]:g.lOff[u+1]]
}

// NeighborsR returns the adjacency list of right vertex v. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) NeighborsR(v VertexID) []Half {
	return g.rAdj[g.rOff[v]:g.rOff[v+1]]
}

// DegreeL returns deg(u) for u ∈ L.
func (g *Graph) DegreeL(u VertexID) int { return int(g.lOff[u+1] - g.lOff[u]) }

// DegreeR returns deg(v) for v ∈ R.
func (g *Graph) DegreeR(v VertexID) int { return int(g.rOff[v+1] - g.rOff[v]) }

// ExpectedDegreeL returns d̄(u) = Σ_{e=(u,·)} p(e), the expected degree of
// left vertex u over possible worlds.
func (g *Graph) ExpectedDegreeL(u VertexID) float64 {
	s := 0.0
	for _, h := range g.NeighborsL(u) {
		s += g.edges[h.E].P
	}
	return s
}

// ExpectedDegreeR returns d̄(v) for v ∈ R.
func (g *Graph) ExpectedDegreeR(v VertexID) float64 {
	s := 0.0
	for _, h := range g.NeighborsR(v) {
		s += g.edges[h.E].P
	}
	return s
}

// ExpectedSquaredDegreeL returns E[deg(u)²] for left vertex u, where
// deg(u) is the Binomial-like sum of independent edge indicators:
// E[d²] = Var + (E[d])² = Σ p(1-p) + (Σ p)². This quantity appears in the
// per-trial complexity of Ordering Sampling (Lemma V.1).
func (g *Graph) ExpectedSquaredDegreeL(u VertexID) float64 {
	mean, vr := 0.0, 0.0
	for _, h := range g.NeighborsL(u) {
		p := g.edges[h.E].P
		mean += p
		vr += p * (1 - p)
	}
	return vr + mean*mean
}

// ExpectedSquaredDegreeR returns E[deg(v)²] for right vertex v.
func (g *Graph) ExpectedSquaredDegreeR(v VertexID) float64 {
	mean, vr := 0.0, 0.0
	for _, h := range g.NeighborsR(v) {
		p := g.edges[h.E].P
		mean += p
		vr += p * (1 - p)
	}
	return vr + mean*mean
}

// EdgesByWeightDesc returns edge ids sorted by descending weight, breaking
// ties by ascending id so the order is deterministic. This is the edge
// ordering of Algorithm 2 line 1.
func (g *Graph) EdgesByWeightDesc() []EdgeID {
	ids := make([]EdgeID, len(g.edges))
	for i := range ids {
		ids[i] = EdgeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		wa, wb := g.edges[ids[a]].W, g.edges[ids[b]].W
		if wa != wb {
			return wa > wb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// TopWeightSum returns the sum of the k largest edge weights, or the sum
// of all weights if the graph has fewer than k edges. Ordering Sampling
// uses k=3: w̄ = w(e₁)+w(e₂)+w(e₃) bounds how much any angle-plus-edge can
// still add to a butterfly (Section V-B).
func (g *Graph) TopWeightSum(k int) float64 {
	if k <= 0 {
		return 0
	}
	top := make([]float64, 0, k)
	for _, e := range g.edges {
		if len(top) < k {
			top = append(top, e.W)
			if len(top) == k {
				sort.Float64s(top)
			}
			continue
		}
		if e.W > top[0] {
			top[0] = e.W
			// Re-sift the smallest slot; k is tiny (3), a scan is fine.
			for i := 1; i < k && top[i] < top[i-1]; i++ {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	s := 0.0
	for _, w := range top {
		s += w
	}
	return s
}

// TotalExpectedEdges returns Σ_e p(e), the expected number of edges in a
// possible world.
func (g *Graph) TotalExpectedEdges() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.P
	}
	return s
}

// MaxWeight returns the largest edge weight, or 0 for an empty graph.
func (g *Graph) MaxWeight() float64 {
	m := math.Inf(-1)
	for _, e := range g.edges {
		if e.W > m {
			m = e.W
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}
