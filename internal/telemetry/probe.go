package telemetry

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// Phase names used on probes, events and pprof labels.
const (
	PhasePrep   = "prep"
	PhaseSample = "sample"
	PhaseAudit  = "audit"
)

// Probe is the handle internal/core instruments against. A nil *Probe is
// the disabled state: every method is nil-safe and returns immediately,
// so kernels guard a single pointer and pay nothing else when telemetry
// is off.
type Probe struct {
	Reg    *Registry
	Hub    *Hub
	Method string
	// Phase routes trial flushes: PhasePrep credits CounterPrepTrials,
	// anything else credits CounterTrials. Empty means PhaseSample.
	Phase string
}

// WithPhase returns a copy of the probe bound to the given phase.
func (p *Probe) WithPhase(phase string) *Probe {
	if p == nil {
		return nil
	}
	q := *p
	q.Phase = phase
	return &q
}

func (p *Probe) phase() string {
	if p.Phase == "" {
		return PhaseSample
	}
	return p.Phase
}

// EnsureWorkers sizes the registry's shard array for a run with n
// workers. Runners call it before the workers start flushing.
func (p *Probe) EnsureWorkers(n int) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.EnsureWorkers(n)
}

// FlushEdgeTrials folds a batch of OS-family trial tallies accumulated
// in worker-local variables into worker w's shard. scanned/pruned split
// the per-trial edge scan (Algorithm 2 line 7); fallbacks counts trials
// that crossed the snapshot's calibrated prefix boundary; the probe's
// phase routes the trial count to CounterPrepTrials or CounterTrials.
// totalNs <= 0 skips the latency histogram.
func (p *Probe) FlushEdgeTrials(w int, trials, hits, scanned, pruned, fallbacks, totalNs int64) {
	if p == nil || p.Reg == nil || trials == 0 {
		return
	}
	r := p.Reg
	if p.Phase == PhasePrep {
		r.Add(w, CounterPrepTrials, trials)
	} else {
		r.Add(w, CounterTrials, trials)
	}
	r.Add(w, CounterTrialHits, hits)
	r.Add(w, CounterEdgesScanned, scanned)
	r.Add(w, CounterEdgesPruned, pruned)
	r.Add(w, CounterPrefixFallbacks, fallbacks)
	if totalNs > 0 {
		r.RecordTrialNs(w, trials, totalNs)
	}
}

// FlushCandTrials folds a batch of OLS sampling-phase trial tallies:
// scanned/pruned split the per-trial candidate scan (Algorithm 3 early
// break). Always credits CounterTrials.
func (p *Probe) FlushCandTrials(w int, trials, hits, scanned, pruned, totalNs int64) {
	if p == nil || p.Reg == nil || trials == 0 {
		return
	}
	r := p.Reg
	r.Add(w, CounterTrials, trials)
	r.Add(w, CounterTrialHits, hits)
	r.Add(w, CounterCandScanned, scanned)
	r.Add(w, CounterCandPruned, pruned)
	if totalNs > 0 {
		r.RecordTrialNs(w, trials, totalNs)
	}
}

// Add increments a single counter on worker w's shard.
func (p *Probe) Add(w int, c Counter, delta int64) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.Add(w, c, delta)
}

// SetLeader records the running leading-estimate gauges.
func (p *Probe) SetLeader(prob, halfWidth float64) {
	if p == nil || p.Reg == nil {
		return
	}
	p.Reg.SetLeader(prob, halfWidth)
}

// Emit offers an event to the ring, stamping the probe's method and
// phase when the event leaves them empty. Never blocks.
func (p *Probe) Emit(e Event) {
	if p == nil || p.Hub == nil {
		return
	}
	if e.Method == "" {
		e.Method = p.Method
	}
	if e.Phase == "" {
		e.Phase = p.phase()
	}
	p.Hub.Emit(e)
}

// LabelWorker applies pprof labels (method, phase, worker) to the
// calling goroutine, so CPU profiles of a parallel run attribute samples
// per worker and per phase.
func (p *Probe) LabelWorker(w int) {
	if p == nil {
		return
	}
	ctx := pprof.WithLabels(context.Background(), pprof.Labels(
		"method", p.Method,
		"phase", p.phase(),
		"worker", strconv.Itoa(w),
	))
	pprof.SetGoroutineLabels(ctx)
}
