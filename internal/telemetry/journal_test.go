package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// flakyWriter fails (optionally with partial progress) on selected
// writes, standing in for a full disk or a closed file.
type flakyWriter struct {
	buf      bytes.Buffer
	failFrom int // 0-based write index the failures start at; -1 = never
	partial  int // bytes to land before failing (torn record)
	failErr  error
	writes   int
	healAt   int // write index the destination recovers at; 0 = never
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	i := w.writes
	w.writes++
	failing := w.failFrom >= 0 && i >= w.failFrom && (w.healAt == 0 || i < w.healAt)
	if !failing {
		return w.buf.Write(p)
	}
	if w.partial > 0 && w.partial < len(p) {
		w.buf.Write(p[:w.partial])
		return w.partial, w.failErr
	}
	return 0, w.failErr
}

func TestJournalWriterCleanStream(t *testing.T) {
	w := &flakyWriter{failFrom: -1}
	j := NewJournalWriter(w)
	for i := 0; i < 10; i++ {
		j.Write(Event{Kind: EventTrialDone, Trial: i, N: 64})
	}
	if err := j.Err(); err != nil {
		t.Fatalf("clean journal reports error: %v", err)
	}
	if j.Dropped() != 0 {
		t.Fatalf("clean journal dropped %d", j.Dropped())
	}
	sc := bufio.NewScanner(&w.buf)
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d unparsable: %v", lines, err)
		}
		if e.Trial != lines {
			t.Fatalf("line %d: trial %d (out of order)", lines, e.Trial)
		}
		lines++
	}
	if lines != 10 {
		t.Fatalf("journal has %d lines, want 10", lines)
	}
}

// A clean failure (no bytes landed) drops the event and counts it; the
// journal keeps accepting events and recovers when the destination does.
func TestJournalWriterDropsAndRecovers(t *testing.T) {
	cause := errors.New("disk full")
	w := &flakyWriter{failFrom: 1, healAt: 3, failErr: cause}
	j := NewJournalWriter(w)
	for i := 0; i < 5; i++ {
		j.Write(Event{Kind: EventTrialDone, Trial: i})
	}
	if got := j.Dropped(); got != 2 {
		t.Fatalf("dropped %d, want 2 (writes 1 and 2)", got)
	}
	err := j.Err()
	if err == nil || !errors.Is(err, cause) {
		t.Fatalf("Err() = %v, want wrap of %v", err, cause)
	}
	var je *JournalError
	if !errors.As(err, &je) || je.Dropped != 2 {
		t.Fatalf("Err() = %#v, want *JournalError with Dropped=2", err)
	}
	// Surviving lines (0, 3, 4) must all be whole records.
	var trials []int
	sc := bufio.NewScanner(&w.buf)
	for sc.Scan() {
		var e Event
		if uerr := json.Unmarshal(sc.Bytes(), &e); uerr != nil {
			t.Fatalf("torn record in journal: %q", sc.Text())
		}
		trials = append(trials, e.Trial)
	}
	if fmt.Sprint(trials) != "[0 3 4]" {
		t.Fatalf("surviving trials %v, want [0 3 4]", trials)
	}
}

// A partial write tears the current record; the journal must poison
// itself so nothing is ever appended onto the stump.
func TestJournalWriterPoisonsAfterTornRecord(t *testing.T) {
	cause := errors.New("input/output error")
	w := &flakyWriter{failFrom: 2, partial: 7, failErr: cause}
	j := NewJournalWriter(w)
	for i := 0; i < 6; i++ {
		j.Write(Event{Kind: EventTrialDone, Trial: i})
	}
	if got := j.Dropped(); got != 4 {
		t.Fatalf("dropped %d, want 4 (the torn write and everything after)", got)
	}
	if w.writes != 3 {
		t.Fatalf("underlying writer saw %d writes, want 3 (poisoned journal must stop writing)", w.writes)
	}
	out := w.buf.String()
	lines := strings.Split(out, "\n")
	// Two whole records, then the 7-byte stump with no trailing newline and
	// nothing after it.
	if len(lines) != 3 {
		t.Fatalf("journal has %d segments, want 3:\n%q", len(lines), out)
	}
	for i := 0; i < 2; i++ {
		var e Event
		if err := json.Unmarshal([]byte(lines[i]), &e); err != nil {
			t.Fatalf("line %d unparsable: %v", i, err)
		}
	}
	if len(lines[2]) != 7 {
		t.Fatalf("stump is %d bytes, want exactly the 7 partial bytes: %q", len(lines[2]), lines[2])
	}
	if err := j.Err(); err == nil || !errors.Is(err, cause) {
		t.Fatalf("Err() = %v, want wrap of %v", err, cause)
	}
}

// A short write without an error is still a torn record.
func TestJournalWriterShortWrite(t *testing.T) {
	j := NewJournalWriter(shortWriter{})
	j.Write(Event{Kind: EventTrialDone})
	j.Write(Event{Kind: EventTrialDone})
	if j.Dropped() != 2 {
		t.Fatalf("dropped %d, want 2", j.Dropped())
	}
	if err := j.Err(); err == nil || !errors.Is(err, errShortTest) {
		t.Fatalf("Err() = %v, want io.ErrShortWrite", err)
	}
}

var errShortTest = errors.New("short write")

type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) / 2, errShortTest }
