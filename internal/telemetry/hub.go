package telemetry

import (
	"sync/atomic"
	"time"
)

// DefaultEventBuffer is the ring capacity used when the caller does not
// choose one.
const DefaultEventBuffer = 1024

// Hub delivers events from the engine to a single observer callback
// through a bounded ring. The send side never blocks: when the ring is
// full the event is dropped and counted, so a slow (or stuck) observer
// cannot stall sampling.
type Hub struct {
	ch      chan Event
	quit    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Int64
}

// NewHub starts a hub draining into cb from a dedicated goroutine. A nil
// cb yields a metrics-only hub that discards events without counting
// them as drops. buffer <= 0 selects DefaultEventBuffer.
func NewHub(buffer int, cb func(Event)) *Hub {
	h := &Hub{
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cb == nil {
		close(h.done)
		return h
	}
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	h.ch = make(chan Event, buffer)
	go h.drain(cb)
	return h
}

// Emit offers e to the ring without blocking. Missing timestamps are
// stamped here so engine hot paths only pay for time.Now when an event
// is actually produced.
func (h *Hub) Emit(e Event) {
	if h == nil || h.ch == nil || h.closed.Load() {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	select {
	case h.ch <- e:
	default:
		h.dropped.Add(1)
	}
}

// Dropped reports how many events were discarded because the ring was
// full.
func (h *Hub) Dropped() int64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// Close stops accepting events, drains whatever is already buffered into
// the callback, and waits for delivery to finish. Idempotent.
func (h *Hub) Close() {
	if h == nil || !h.closed.CompareAndSwap(false, true) {
		return
	}
	close(h.quit)
	<-h.done
}

func (h *Hub) drain(cb func(Event)) {
	defer close(h.done)
	for {
		select {
		case e := <-h.ch:
			cb(e)
		case <-h.quit:
			for {
				select {
				case e := <-h.ch:
					cb(e)
				default:
					return
				}
			}
		}
	}
}
