package telemetry

import (
	"fmt"
	"io"
	"math"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counter values are monotone across sequential
// runs sharing one registry, so scrapes behave like ordinary process
// counters.
func WritePrometheus(w io.Writer, m Metrics) error {
	counters := []struct {
		name, help string
		value      int64
	}{
		{"mpmb_trials_total", "Sampling-phase trials executed.", m.Trials},
		{"mpmb_trial_hits_total", "Trials observing at least one maximum butterfly.", m.TrialHits},
		{"mpmb_prep_trials_total", "OLS preparing-phase trials executed.", m.PrepTrials},
		{"mpmb_edges_scanned_total", "Edge positions scanned by the OS kernel.", m.EdgesScanned},
		{"mpmb_edges_pruned_total", "Edge positions skipped by the descending-weight prune.", m.EdgesPruned},
		{"mpmb_core_prefix_fallbacks_total", "OS kernel trials that fell back past the calibrated edge-prefix boundary.", m.PrefixFallbacks},
		{"mpmb_candidates_scanned_total", "Candidate positions scanned by the OLS sampling phase.", m.CandScanned},
		{"mpmb_candidates_pruned_total", "Candidate positions skipped by the OLS early break.", m.CandPruned},
		{"mpmb_candidates_promoted_total", "Butterflies promoted into the candidate set C_MB.", m.Candidates},
		{"mpmb_audits_total", "Supervisor coverage audits run.", m.Audits},
		{"mpmb_audit_misses_total", "Maximum butterflies audits found missing from C_MB.", m.AuditMisses},
		{"mpmb_escalations_total", "Audit-triggered prep escalations.", m.Escalations},
		{"mpmb_checkpoint_saves_total", "Successful checkpoint saves.", m.CheckpointSaves},
		{"mpmb_checkpoint_retries_total", "Retried checkpoint save/load attempts.", m.CheckpointRetries},
		{"mpmb_events_dropped_total", "Observer events dropped because the ring was full.", m.EventsDropped},
		{"mpmb_dist_worker_reconnects_total", "Coordinator connections re-established after an unreachable spell.", m.DistReconnects},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.value); err != nil {
			return err
		}
	}

	const distErrs = "mpmb_dist_worker_errors_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Distributed worker lease-loop failures by kind.\n# TYPE %s counter\n", distErrs, distErrs); err != nil {
		return err
	}
	for _, kv := range []struct {
		kind  string
		value int64
	}{
		{"lease", m.DistLeaseErrors},
		{"complete", m.DistCompleteErrors},
		{"graph", m.DistGraphErrors},
		{"exec", m.DistExecErrors},
	} {
		if _, err := fmt.Fprintf(w, "%s{kind=%q} %d\n", distErrs, kv.kind, kv.value); err != nil {
			return err
		}
	}

	gauges := []struct {
		name, help string
		value      float64
	}{
		{"mpmb_workers", "Worker shard count of the most recent run.", float64(m.Workers)},
		{"mpmb_leader_p", "Running leading estimate of the maximum-butterfly probability.", m.LeaderP},
		{"mpmb_leader_half_width", "Agresti-Coull half-width of the leading estimate.", m.LeaderHalfWidth},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n",
			g.name, g.help, g.name, g.name, g.value); err != nil {
			return err
		}
	}

	const hist = "mpmb_trial_duration_nanoseconds"
	if _, err := fmt.Fprintf(w, "# HELP %s Per-trial latency (credited per flushed batch mean).\n# TYPE %s histogram\n", hist, hist); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		if i < len(m.TrialNs.Counts) {
			cum += m.TrialNs.Counts[i]
		}
		bound := HistBucketBound(i)
		le := "+Inf"
		if bound != math.MaxInt64 {
			le = fmt.Sprintf("%d", bound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hist, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", hist, m.TrialNs.SumNs, hist, m.TrialNs.Count)
	return err
}
