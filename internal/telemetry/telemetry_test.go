package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryShardMerge(t *testing.T) {
	r := NewRegistry()
	r.EnsureWorkers(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(w, CounterTrials, 2)
				r.Add(w, CounterEdgesScanned, 3)
				r.RecordTrialNs(w, 2, 256)
			}
		}(w)
	}
	wg.Wait()
	m := r.Snapshot()
	if m.Trials != 4*100*2 {
		t.Errorf("Trials = %d, want %d", m.Trials, 800)
	}
	if m.EdgesScanned != 4*100*3 {
		t.Errorf("EdgesScanned = %d, want %d", m.EdgesScanned, 1200)
	}
	if m.TrialNs.Count != 800 || m.TrialNs.SumNs != 4*100*256 {
		t.Errorf("hist count/sum = %d/%d", m.TrialNs.Count, m.TrialNs.SumNs)
	}
	if m.Workers != 4 {
		t.Errorf("Workers = %d, want 4", m.Workers)
	}
}

func TestRegistryMonotoneAcrossResize(t *testing.T) {
	r := NewRegistry()
	r.Add(0, CounterTrials, 10)
	r.RecordTrialNs(0, 10, 1000)
	r.EnsureWorkers(8) // folds shard 0 into base
	r.Add(7, CounterTrials, 5)
	m := r.Snapshot()
	if m.Trials != 15 {
		t.Errorf("Trials after resize = %d, want 15 (monotone)", m.Trials)
	}
	if m.TrialNs.Count != 10 {
		t.Errorf("hist count after resize = %d, want 10", m.TrialNs.Count)
	}
	// Shrinking never happens: a smaller run reuses the wide array.
	r.EnsureWorkers(2)
	if got := len(*r.shards.Load()); got != 8 {
		t.Errorf("shard count after EnsureWorkers(2) = %d, want 8", got)
	}
}

func TestHistBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{{0, 0}, {63, 0}, {64, 1}, {127, 1}, {128, 2}, {1 << 40, histBuckets - 1}}
	for _, c := range cases {
		if got := histBucket(c.ns); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if HistBucketBound(histBuckets-1) != math.MaxInt64 {
		t.Error("last bucket bound must be +Inf sentinel")
	}
	if HistBucketBound(1) != 127 {
		t.Errorf("bound(1) = %d, want 127", HistBucketBound(1))
	}
}

func TestHubDeliversInOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	h := NewHub(64, func(e Event) {
		mu.Lock()
		got = append(got, e.Trial)
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		h.Emit(Event{Kind: EventTrialDone, Trial: i})
	}
	h.Close()
	if len(got) != 10 {
		t.Fatalf("delivered %d events, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event %d out of order: got trial %d", i, v)
		}
	}
	if h.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", h.Dropped())
	}
}

func TestHubDropsNotBlocks(t *testing.T) {
	block := make(chan struct{})
	h := NewHub(4, func(e Event) { <-block })
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			h.Emit(Event{Kind: EventTrialDone, Trial: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stuck observer")
	}
	if h.Dropped() == 0 {
		t.Error("expected drops with a stuck observer and a tiny ring")
	}
	close(block)
	h.Close()
}

func TestHubNilCallbackAndNilHub(t *testing.T) {
	h := NewHub(0, nil)
	h.Emit(Event{Kind: EventTrialDone})
	if h.Dropped() != 0 {
		t.Error("metrics-only hub must not count drops")
	}
	h.Close()
	h.Close() // idempotent

	var nilHub *Hub
	nilHub.Emit(Event{})
	nilHub.Close()
	if nilHub.Dropped() != 0 {
		t.Error("nil hub Dropped != 0")
	}
}

func TestNilProbeIsNoOp(t *testing.T) {
	var p *Probe
	p.FlushEdgeTrials(0, 1, 1, 1, 1, 0, 1)
	p.FlushCandTrials(0, 1, 1, 1, 1, 1)
	p.Add(0, CounterAudits, 1)
	p.SetLeader(0.5, 0.01)
	p.Emit(Event{Kind: EventTrialDone})
	p.LabelWorker(0)
	if q := p.WithPhase(PhasePrep); q != nil {
		t.Error("nil probe WithPhase must stay nil")
	}
}

func TestProbePhaseRouting(t *testing.T) {
	r := NewRegistry()
	p := &Probe{Reg: r, Method: "ols"}
	p.WithPhase(PhasePrep).FlushEdgeTrials(0, 10, 4, 100, 50, 0, 0)
	p.FlushEdgeTrials(0, 20, 8, 200, 100, 3, 0)
	p.FlushCandTrials(0, 30, 9, 60, 40, 0)
	m := r.Snapshot()
	if m.PrepTrials != 10 || m.Trials != 50 {
		t.Errorf("prep/sample split = %d/%d, want 10/50", m.PrepTrials, m.Trials)
	}
	if m.EdgesScanned != 300 || m.EdgesPruned != 150 {
		t.Errorf("edge split = %d/%d, want 300/150", m.EdgesScanned, m.EdgesPruned)
	}
	if m.PrefixFallbacks != 3 {
		t.Errorf("PrefixFallbacks = %d, want 3", m.PrefixFallbacks)
	}
	if m.CandScanned != 60 || m.CandPruned != 40 {
		t.Errorf("cand split = %d/%d, want 60/40", m.CandScanned, m.CandPruned)
	}
	if got := m.CandPruneRate(); got != 0.4 {
		t.Errorf("CandPruneRate = %v, want 0.4", got)
	}
}

func TestEventKindJSONRoundTrip(t *testing.T) {
	e := Event{Kind: EventEstimateUpdated, Method: "ols", Trial: 42, P: 0.25, HalfWidth: 0.01}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"estimate_updated"`) {
		t.Fatalf("kind not marshaled as name: %s", b)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != EventEstimateUpdated || back.Trial != 42 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestWritePrometheusAndHTTP(t *testing.T) {
	r := NewRegistry()
	r.Add(0, CounterTrials, 123)
	r.SetLeader(0.5, 0.01)
	r.RecordTrialNs(0, 64, 6400)

	var sb strings.Builder
	m := r.Snapshot()
	m.EventsDropped = 7
	if err := WritePrometheus(&sb, m); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"mpmb_trials_total 123",
		"mpmb_events_dropped_total 7",
		"mpmb_leader_p 0.5",
		`mpmb_trial_duration_nanoseconds_bucket{le="+Inf"} 64`,
		"mpmb_trial_duration_nanoseconds_count 64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q", want)
		}
	}

	srv := httptest.NewServer(HTTPHandler(func() Metrics { return r.Snapshot() }))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}
