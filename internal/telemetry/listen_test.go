package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestListenAndServeServes(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	})
	s, err := ListenAndServe("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean shutdown returned %v", err)
	}
}

// A bind failure must be synchronous and name the address — the whole
// point of the helper is that the error cannot escape into a goroutine.
func TestListenAndServeBindFailureIsFailFast(t *testing.T) {
	s, err := ListenAndServe("127.0.0.1:0", http.NotFoundHandler())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	taken := s.Addr()
	dup, err := ListenAndServe(taken, http.NotFoundHandler())
	if err == nil {
		dup.Close()
		t.Fatalf("second bind of %s succeeded", taken)
	}
	if !strings.Contains(err.Error(), taken) {
		t.Fatalf("bind error %q does not name the address %s", err, taken)
	}
}
