package telemetry

// Metrics is a merged point-in-time snapshot of the registry. It is a
// plain value: safe to copy, compare, and marshal (the CLI JSON output
// and the /debug/vars expvar both serialize it directly).
type Metrics struct {
	// Workers is the shard count of the most recent run (1 for
	// sequential runs).
	Workers int `json:"workers"`

	// Trials counts executed sampling-phase trials; TrialHits the subset
	// that observed at least one maximum butterfly / live candidate.
	Trials    int64 `json:"trials"`
	TrialHits int64 `json:"trial_hits"`
	// PrepTrials counts OLS preparing-phase trials.
	PrepTrials int64 `json:"prep_trials"`

	// EdgesScanned/EdgesPruned split the OS kernel's per-trial edge scan;
	// CandScanned/CandPruned split the OLS sampling-phase candidate scan.
	EdgesScanned int64 `json:"edges_scanned"`
	EdgesPruned  int64 `json:"edges_pruned"`
	CandScanned  int64 `json:"cand_scanned"`
	CandPruned   int64 `json:"cand_pruned"`
	// PrefixFallbacks counts OS kernel trials that crossed the calibrated
	// truncated-prefix boundary into the full-scan tail.
	PrefixFallbacks int64 `json:"prefix_fallbacks"`

	// Candidates counts butterflies promoted into C_MB.
	Candidates int64 `json:"candidates"`

	// Supervisor health.
	Audits      int64 `json:"audits"`
	AuditMisses int64 `json:"audit_misses"`
	Escalations int64 `json:"escalations"`

	// Checkpoint store health.
	CheckpointSaves   int64 `json:"checkpoint_saves"`
	CheckpointRetries int64 `json:"checkpoint_retries"`

	// Distributed-worker health: lease-loop failures split by kind and
	// coordinator reconnections after an unreachable spell.
	DistLeaseErrors    int64 `json:"dist_lease_errors"`
	DistCompleteErrors int64 `json:"dist_complete_errors"`
	DistGraphErrors    int64 `json:"dist_graph_errors"`
	DistExecErrors     int64 `json:"dist_exec_errors"`
	DistReconnects     int64 `json:"dist_reconnects"`

	// EventsDropped counts events discarded because the observer ring
	// was full (filled in by the Observer wrapper, not the registry).
	EventsDropped int64 `json:"events_dropped"`

	// LeaderP / LeaderHalfWidth are the running leading estimate and its
	// Agresti-Coull half-width.
	LeaderP         float64 `json:"leader_p"`
	LeaderHalfWidth float64 `json:"leader_half_width"`

	// TrialNs is the per-trial latency histogram (power-of-two ns
	// buckets, credited per batch mean).
	TrialNs HistogramSnapshot `json:"trial_ns"`
}

// HistogramSnapshot is a merged histogram: Counts[i] trials landed in
// bucket i (upper bound HistBucketBound(i)), SumNs is total measured
// time, Count total trials recorded.
type HistogramSnapshot struct {
	Counts []int64 `json:"counts"`
	SumNs  int64   `json:"sum_ns"`
	Count  int64   `json:"count"`
}

// EdgePruneRate is the fraction of edge positions the OS kernel skipped.
func (m Metrics) EdgePruneRate() float64 {
	tot := m.EdgesScanned + m.EdgesPruned
	if tot == 0 {
		return 0
	}
	return float64(m.EdgesPruned) / float64(tot)
}

// CandPruneRate is the fraction of candidate positions the OLS sampling
// phase skipped via the early break.
func (m Metrics) CandPruneRate() float64 {
	tot := m.CandScanned + m.CandPruned
	if tot == 0 {
		return 0
	}
	return float64(m.CandPruned) / float64(tot)
}

// MeanTrialNs is the mean measured per-trial latency in nanoseconds.
func (m Metrics) MeanTrialNs() float64 {
	if m.TrialNs.Count == 0 {
		return 0
	}
	return float64(m.TrialNs.SumNs) / float64(m.TrialNs.Count)
}
