package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JournalWriter appends events to a JSONL journal, hardened against a
// failing destination (disk full, closed file, dead pipe). Each event is
// marshalled into a private buffer first and handed to the underlying
// writer as ONE Write call of a complete "<json>\n" record, so a healthy
// writer never interleaves or splits records. When a write fails the
// event is dropped and counted instead of panicking or aborting the run;
// if the failed write landed partial bytes (a torn record), the journal
// is poisoned and every later event is dropped too — appending after a
// torn record would corrupt the line framing for replay tools.
//
// Err reports the terminal note for the run: nil while the journal is
// clean, otherwise one error summarizing the drop count and first cause.
// A JournalWriter is safe for concurrent use, though the observer hub
// delivers events from a single goroutine in practice.
type JournalWriter struct {
	mu       sync.Mutex
	w        io.Writer
	buf      []byte
	dropped  int64
	cause    error
	poisoned bool
}

// NewJournalWriter wraps w, which the caller keeps ownership of (the
// writer never closes it).
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: w}
}

// Write appends one event as a JSON line, dropping (and counting) it on
// any failure instead of returning an error: journal health must never
// decide a search's fate mid-run. Read the damage report with Err.
func (j *JournalWriter) Write(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned {
		j.dropped++
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		// Unreachable for the Event type (plain data), but a marshal
		// failure is still a clean drop: nothing reached the file.
		j.drop(err)
		return
	}
	j.buf = append(j.buf[:0], line...)
	j.buf = append(j.buf, '\n')
	n, err := j.w.Write(j.buf)
	if err == nil && n == len(j.buf) {
		return
	}
	if err == nil {
		err = io.ErrShortWrite
	}
	j.drop(err)
	if n > 0 {
		// Partial bytes hit the file: the current line is torn, so any
		// further append would produce a record glued onto the stump.
		j.poisoned = true
	}
}

// drop counts a lost event, keeping the first cause as the terminal note.
func (j *JournalWriter) drop(err error) {
	j.dropped++
	if j.cause == nil {
		j.cause = err
	}
}

// Dropped reports how many events were lost to write failures.
func (j *JournalWriter) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Err returns nil while every event reached the journal, otherwise a
// terminal note carrying the drop count and the first underlying cause
// (which stays available to errors.Is/As via Unwrap).
func (j *JournalWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dropped == 0 {
		return nil
	}
	return &JournalError{Dropped: j.dropped, Cause: j.cause}
}

// JournalError is the terminal damage report of a JournalWriter whose
// destination failed mid-run.
type JournalError struct {
	// Dropped is the number of events that never reached the journal.
	Dropped int64
	// Cause is the first write error.
	Cause error
}

func (e *JournalError) Error() string {
	return fmt.Sprintf("telemetry: journal dropped %d events (first error: %v)", e.Dropped, e.Cause)
}

// Unwrap exposes the first write error to errors.Is/As chains.
func (e *JournalError) Unwrap() error { return e.Cause }
