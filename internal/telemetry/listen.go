package telemetry

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// HTTPServer is an HTTP endpoint whose listener is bound synchronously:
// construction fails fast, with the requested address in the message,
// instead of a background goroutine discovering (and losing) the bind
// error after the caller has moved on. Both mpmb-search's -metrics-addr
// endpoint and the mpmb-serve daemon front their listeners with it.
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	serveErr error
	done     chan struct{}
}

// ListenAndServe binds addr, then serves h in the background. A bind
// failure returns immediately as `listen on <addr>: ...`; an
// asynchronous Serve failure is captured and reported by Close, never
// silently dropped.
func ListenAndServe(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen on %s: %w", addr, err)
	}
	s := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr reports the bound address — useful with ":0" listeners, whose
// real port only exists after the bind.
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, waits for the serve loop to exit, and
// returns any asynchronous serve failure that was captured (nil on a
// clean shutdown). In-flight handlers are aborted, not awaited; callers
// needing a graceful connection drain should front their own
// http.Server instead.
func (s *HTTPServer) Close() error {
	_ = s.srv.Close()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serveErr
}
