package telemetry

import (
	"fmt"
	"time"
)

// EventKind identifies the type of an Event.
type EventKind uint8

const (
	// EventTrialDone reports a batch of completed sampling trials:
	// Trial is the last completed trial index, N the batch size.
	EventTrialDone EventKind = iota + 1
	// EventCandidatePromoted reports a butterfly entering the candidate
	// set C_MB during the preparing phase (B, Weight, Trial).
	EventCandidatePromoted
	// EventAuditMiss reports a maximum butterfly a supervisor coverage
	// audit found missing from C_MB (B, Weight, Trial = audit trial).
	EventAuditMiss
	// EventEscalation reports a supervisor method/prep transition
	// (From, To, Detail = reason, Trial = transition trial).
	EventEscalation
	// EventCheckpointSaved reports a successful checkpoint save
	// (Detail = path, N = attempts used).
	EventCheckpointSaved
	// EventCheckpointRetried reports a failed checkpoint save/load
	// attempt that will be retried (Detail = error, N = attempt number).
	EventCheckpointRetried
	// EventEstimateUpdated reports the running leading estimate: P is
	// the estimated probability, HalfWidth its Agresti-Coull half-width,
	// Trial the number of estimation trials it is based on.
	EventEstimateUpdated
)

var eventKindNames = map[EventKind]string{
	EventTrialDone:         "trial_done",
	EventCandidatePromoted: "candidate_promoted",
	EventAuditMiss:         "audit_miss",
	EventEscalation:        "escalation",
	EventCheckpointSaved:   "checkpoint_saved",
	EventCheckpointRetried: "checkpoint_retried",
	EventEstimateUpdated:   "estimate_updated",
}

// String returns the snake_case name used in journals and logs.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// MarshalText encodes the kind as its snake_case name (JSONL journals).
func (k EventKind) MarshalText() ([]byte, error) {
	return []byte(k.String()), nil
}

// UnmarshalText decodes a snake_case kind name (journal replay).
func (k *EventKind) UnmarshalText(b []byte) error {
	s := string(b)
	for kind, name := range eventKindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one typed record on the observability stream. It is a plain
// value — emitting one performs no allocation beyond the ring slot. The
// butterfly is carried as raw vertex ids ([U1, U2, V1, V2]) so this
// package stays import-free of the graph types.
type Event struct {
	Kind   EventKind `json:"kind"`
	Time   time.Time `json:"time"`
	Method string    `json:"method,omitempty"`
	Phase  string    `json:"phase,omitempty"`
	Worker int       `json:"worker"`

	// Trial is the trial index the event is anchored to; N is a count
	// whose meaning depends on Kind (batch size, attempt number, ...).
	Trial int   `json:"trial,omitempty"`
	N     int64 `json:"n,omitempty"`

	// B is the butterfly [U1, U2, V1, V2] for candidate/audit/estimate
	// events; Weight its total edge weight.
	B      [4]uint32 `json:"b,omitempty"`
	Weight float64   `json:"weight,omitempty"`

	// P and HalfWidth carry the running estimate for EstimateUpdated.
	P         float64 `json:"p,omitempty"`
	HalfWidth float64 `json:"half_width,omitempty"`

	// From/To name supervisor transitions; Detail is free-form context
	// (escalation reason, checkpoint path or error text).
	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Detail string `json:"detail,omitempty"`
}
