// Package telemetry is the run-observability layer of the MPMB engine:
// a sharded counter/gauge/histogram registry plus a typed event stream.
//
// Design constraints (see ISSUE 5):
//
//   - Zero overhead when disabled. Every hook in internal/core is guarded
//     by a nil *Probe check; kernels accumulate plain stack-local tallies
//     and flush them into the registry only at batch boundaries, so the
//     per-trial hot path performs no atomic operations and no allocations
//     whether or not telemetry is enabled.
//   - Live snapshots. Each worker owns one cache-line-padded shard of
//     atomic counters; Snapshot merges the shards with atomic loads, so a
//     concurrent HTTP scrape or progress printer always sees a consistent
//     monotone view while sampling proceeds.
//   - A slow observer can never stall sampling. Events go through a
//     bounded ring (a buffered channel) with a non-blocking send; when
//     the ring is full the event is counted as dropped, never waited on.
//
// An Observer (the public wrapper in the root package) must not be shared
// by two *concurrent* runs: the registry reconfigures its shard array at
// run start. Sequential reuse across runs is supported and keeps counters
// monotone, which is what Prometheus scrapes expect.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter identifies one engine-wide monotone counter.
type Counter int

const (
	// CounterTrials counts sampling-phase trials executed (OS/MC-VP world
	// trials, OLS estimation trials, and Karp-Luby pricing trials).
	CounterTrials Counter = iota
	// CounterTrialHits counts sampling trials in which at least one
	// maximum butterfly (or live candidate) was observed.
	CounterTrialHits
	// CounterPrepTrials counts OLS preparing-phase trials (including
	// supervisor re-preparation after an audit escalation).
	CounterPrepTrials
	// CounterEdgesScanned / CounterEdgesPruned split the per-trial edge
	// scan of the OS kernel: scanned positions vs positions skipped by
	// the descending-weight prune (Algorithm 2 line 7).
	CounterEdgesScanned
	CounterEdgesPruned
	// CounterCandScanned / CounterCandPruned split the OLS sampling-phase
	// candidate scan: candidates examined per trial vs candidates skipped
	// by the early break (Algorithm 3 lines 5-6).
	CounterCandScanned
	CounterCandPruned
	// CounterCandidates counts butterflies promoted into the candidate
	// set C_MB during preparation (Lemma VI.5 candidates).
	CounterCandidates
	// CounterAudits counts supervisor coverage audits; CounterAuditMisses
	// counts maximum butterflies an audit found missing from C_MB.
	CounterAudits
	CounterAuditMisses
	// CounterEscalations counts audit-triggered prep escalations.
	CounterEscalations
	// CounterCheckpointSaves / CounterCheckpointRetries count successful
	// checkpoint store operations and retried attempts.
	CounterCheckpointSaves
	CounterCheckpointRetries
	// CounterDistLeaseErrors / CounterDistCompleteErrors /
	// CounterDistGraphErrors / CounterDistExecErrors split a distributed
	// worker's lease-loop failures by kind (transport faults on the
	// lease, complete and graph exchanges vs local execution faults), so
	// fleet dashboards can tell a sick network from a sick kernel.
	CounterDistLeaseErrors
	CounterDistCompleteErrors
	CounterDistGraphErrors
	CounterDistExecErrors
	// CounterDistReconnects counts re-established coordinator
	// connections after an unreachable spell (the worker parked in its
	// reconnect loop and the coordinator came back).
	CounterDistReconnects
	// CounterPrefixFallbacks counts OS kernel trials whose scan crossed
	// the snapshot's calibrated truncated-prefix boundary into the
	// full-scan tail (the prefix-sufficiency bound failed to stop the
	// trial early). Fallbacks are exact, just slower; a high rate means
	// the calibration underestimated the workload's scan depth.
	CounterPrefixFallbacks

	numCounters
)

// histBuckets is the number of trial-latency histogram buckets. Bucket 0
// holds trials faster than 64ns; bucket i>0 holds [2^(5+i), 2^(6+i)) ns;
// the last bucket is the overflow.
const histBuckets = 20

// HistBucketBound returns the inclusive ns/trial upper bound of bucket i,
// or math.MaxInt64 for the overflow bucket.
func HistBucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<(6+uint(i)) - 1
}

func histBucket(nsPerTrial int64) int {
	if nsPerTrial < 64 {
		return 0
	}
	b := bits.Len64(uint64(nsPerTrial)) - 6
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// shard is one worker's slice of the registry. Padded so two workers
// flushing concurrently never contend on the same cache line.
type shard struct {
	counters [numCounters]atomic.Int64
	hist     [histBuckets]atomic.Int64
	histSum  atomic.Int64 // total ns across recorded batches
	histN    atomic.Int64 // total trials recorded into hist
	_        [64]byte
}

// Registry aggregates counters from per-worker shards. The zero value is
// not usable; use NewRegistry.
type Registry struct {
	mu     sync.Mutex
	shards atomic.Pointer[[]shard]

	// base holds totals folded out of retired shard arrays when the
	// registry is resized for a run with more workers, keeping Snapshot
	// monotone across runs. Guarded by mu.
	base     [numCounters]int64
	baseHist [histBuckets]int64
	baseSum  int64
	baseN    int64

	// Gauges (not sharded: written rarely, from one goroutine at a time).
	leaderP  atomic.Uint64 // float64 bits
	leaderHW atomic.Uint64 // float64 bits
	workers  atomic.Int64
}

// NewRegistry returns a registry with a single shard.
func NewRegistry() *Registry {
	r := &Registry{}
	s := make([]shard, 1)
	r.shards.Store(&s)
	return r
}

// EnsureWorkers grows the shard array to at least n shards. Must be
// called before the run's workers start flushing; a grow folds existing
// shard totals into the base so Snapshot stays monotone.
func (r *Registry) EnsureWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workers.Store(int64(n))
	cur := *r.shards.Load()
	if len(cur) >= n {
		return
	}
	for i := range cur {
		s := &cur[i]
		for c := 0; c < int(numCounters); c++ {
			r.base[c] += s.counters[c].Load()
		}
		for b := 0; b < histBuckets; b++ {
			r.baseHist[b] += s.hist[b].Load()
		}
		r.baseSum += s.histSum.Load()
		r.baseN += s.histN.Load()
	}
	next := make([]shard, n)
	r.shards.Store(&next)
}

// Shard returns worker w's shard, clamping w into range defensively.
func (r *Registry) Shard(w int) *shard {
	s := *r.shards.Load()
	if w < 0 || w >= len(s) {
		w = 0
	}
	return &s[w]
}

// Add adds delta to counter c on worker w's shard.
func (r *Registry) Add(w int, c Counter, delta int64) {
	if delta == 0 {
		return
	}
	r.Shard(w).counters[c].Add(delta)
}

// RecordTrialNs records a batch of trials that together took totalNs:
// the histogram credits all trials of the batch to the mean-ns bucket.
func (r *Registry) RecordTrialNs(w int, trials, totalNs int64) {
	if trials <= 0 || totalNs < 0 {
		return
	}
	s := r.Shard(w)
	s.hist[histBucket(totalNs/trials)].Add(trials)
	s.histSum.Add(totalNs)
	s.histN.Add(trials)
}

// SetLeader records the current leading estimate and its Agresti-Coull
// half-width as gauges.
func (r *Registry) SetLeader(p, halfWidth float64) {
	r.leaderP.Store(math.Float64bits(p))
	r.leaderHW.Store(math.Float64bits(halfWidth))
}

// Snapshot merges base totals and all shards into a Metrics value. Safe
// to call concurrently with flushes.
func (r *Registry) Snapshot() Metrics {
	r.mu.Lock()
	shards := *r.shards.Load()
	var tot [numCounters]int64
	copy(tot[:], r.base[:])
	var hist [histBuckets]int64
	copy(hist[:], r.baseHist[:])
	sum, n := r.baseSum, r.baseN
	r.mu.Unlock()

	for i := range shards {
		s := &shards[i]
		for c := 0; c < int(numCounters); c++ {
			tot[c] += s.counters[c].Load()
		}
		for b := 0; b < histBuckets; b++ {
			hist[b] += s.hist[b].Load()
		}
		sum += s.histSum.Load()
		n += s.histN.Load()
	}

	m := Metrics{
		Workers:            int(r.workers.Load()),
		Trials:             tot[CounterTrials],
		TrialHits:          tot[CounterTrialHits],
		PrepTrials:         tot[CounterPrepTrials],
		EdgesScanned:       tot[CounterEdgesScanned],
		EdgesPruned:        tot[CounterEdgesPruned],
		PrefixFallbacks:    tot[CounterPrefixFallbacks],
		CandScanned:        tot[CounterCandScanned],
		CandPruned:         tot[CounterCandPruned],
		Candidates:         tot[CounterCandidates],
		Audits:             tot[CounterAudits],
		AuditMisses:        tot[CounterAuditMisses],
		Escalations:        tot[CounterEscalations],
		CheckpointSaves:    tot[CounterCheckpointSaves],
		CheckpointRetries:  tot[CounterCheckpointRetries],
		DistLeaseErrors:    tot[CounterDistLeaseErrors],
		DistCompleteErrors: tot[CounterDistCompleteErrors],
		DistGraphErrors:    tot[CounterDistGraphErrors],
		DistExecErrors:     tot[CounterDistExecErrors],
		DistReconnects:     tot[CounterDistReconnects],
		LeaderP:            math.Float64frombits(r.leaderP.Load()),
		LeaderHalfWidth:    math.Float64frombits(r.leaderHW.Load()),
	}
	m.TrialNs.Counts = hist[:]
	m.TrialNs.SumNs = sum
	m.TrialNs.Count = n
	return m
}
