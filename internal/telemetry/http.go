package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarSnap backs the process-wide "mpmb" expvar. expvar.Publish panics
// on duplicate names, so the variable is published once and re-pointed
// at the latest snapshot function on each HTTPHandler call.
var expvarSnap struct {
	once sync.Once
	fn   atomic.Value // func() Metrics
}

func publishExpvar(snapshot func() Metrics) {
	expvarSnap.fn.Store(snapshot)
	expvarSnap.once.Do(func() {
		expvar.Publish("mpmb", expvar.Func(func() any {
			if f, ok := expvarSnap.fn.Load().(func() Metrics); ok && f != nil {
				return f()
			}
			return nil
		}))
	})
}

// HTTPHandler serves the observability endpoints for one process:
//
//	/metrics        Prometheus text exposition of the snapshot
//	/debug/vars     expvar JSON (includes the "mpmb" Metrics snapshot)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// snapshot is called per scrape; it must be safe for concurrent use
// (Registry.Snapshot is).
func HTTPHandler(snapshot func() Metrics) http.Handler {
	publishExpvar(snapshot)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mpmb telemetry\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}
