package statcheck

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestShortCorpusPassesAcrossSeeds is the headline conformance gate:
// every estimator stays inside its acceptance interval on every corpus
// case, for several distinct harness seeds. With Alpha = 1e-9 a false
// alarm over the whole corpus has probability ~1e-6 per seed, so a
// failure here is an estimator bug, not noise.
func TestShortCorpusPassesAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rep, err := Run(DefaultConfig(seed), ShortCorpus())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Pass {
			t.Errorf("seed %d: conformance failed (%d violations, %d metamorphic):\n%s",
				seed, rep.Violations, rep.MetamorphicViolations, detailDump(rep))
		}
		if rep.MetamorphicViolations != 0 {
			t.Errorf("seed %d: %d metamorphic violations (budget is always 0)", seed, rep.MetamorphicViolations)
		}
	}
}

// TestRunIsDeterministic: the report is a pure function of (config,
// corpus) — two runs with the same seed must serialize identically.
func TestRunIsDeterministic(t *testing.T) {
	r1, err := Run(DefaultConfig(42), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(DefaultConfig(42), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("two runs with the same seed produced different reports")
	}
}

// TestDropA2SabotageIsDetected proves the harness has power against a
// real systematic bias: dropping the A2 angle class from Ordering
// Sampling must fail the suite both deterministically (per-world OS
// conformance) and statistically (os interval violations).
func TestDropA2SabotageIsDetected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Sabotage.DropA2 = true
	rep, err := Run(cfg, ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("suite passed with the A2 angle class dropped")
	}
	if rep.MetamorphicViolations == 0 {
		t.Error("per-world OS conformance did not catch the dropped A2 class")
	}
	if v := methodViolations(rep, "os"); v == 0 {
		t.Error("os acceptance intervals did not catch the dropped A2 class")
	}
	if v := methodViolations(rep, "mc-vp"); v != 0 {
		t.Errorf("mc-vp does not use the angle table but recorded %d violations", v)
	}
}

// TestScaleSabotageIsDetected: a flat miscalibration (all estimates
// halved) must trip every method's intervals — the all-certain corpus
// case alone guarantees a confidently-known candidate per method.
func TestScaleSabotageIsDetected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Sabotage.ScaleEstimates = 0.5
	rep, err := Run(cfg, ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("suite passed with every estimate halved")
	}
	if rep.Violations <= cfg.FailureBudget {
		t.Errorf("violations %d within budget %d", rep.Violations, cfg.FailureBudget)
	}
	for _, m := range []string{"mc-vp", "os", "ols", "ols-kl"} {
		if methodViolations(rep, m) == 0 {
			t.Errorf("%s: no violation recorded for halved estimates", m)
		}
	}
}

// TestReportJSONRoundTrip: the emitted document parses back into an
// equivalent report (the mpmb-bench conformance consumer contract).
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(DefaultConfig(7), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Seed != rep.Seed || back.Pass != rep.Pass ||
		back.Violations != rep.Violations || len(back.Cases) != len(rep.Cases) ||
		len(back.Methods) != len(rep.Methods) {
		t.Error("round-tripped report lost fields")
	}
	for i, m := range back.Methods {
		if m != rep.Methods[i] {
			t.Errorf("method summary %d changed in round trip", i)
		}
	}
}

// TestRunRejectsInvalidConfig: harness misconfiguration is an error,
// never a silently-passing report.
func TestRunRejectsInvalidConfig(t *testing.T) {
	bad := []Config{
		{Seed: 1, Trials: 0, PrepTrials: 10, Alpha: 1e-9},
		{Seed: 1, Trials: 100, PrepTrials: 0, Alpha: 1e-9},
		{Seed: 1, Trials: 100, PrepTrials: 10, Alpha: 0},
		{Seed: 1, Trials: 100, PrepTrials: 10, Alpha: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, ShortCorpus()); err == nil {
			t.Errorf("config %d: Run accepted invalid configuration", i)
		}
	}
}

// TestMethodSummariesAreComplete: the report carries estimator-quality
// stats for all four methods with sane ranges.
func TestMethodSummariesAreComplete(t *testing.T) {
	rep, err := Run(DefaultConfig(3), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"mc-vp": true, "os": true, "ols": true, "ols-kl": true,
		"anchored-os": true, "anchored-ols": true, "community": true,
	}
	for _, m := range rep.Methods {
		if !want[m.Method] {
			t.Errorf("unexpected method %q", m.Method)
		}
		delete(want, m.Method)
		if m.Comparisons == 0 {
			t.Errorf("%s: no comparisons recorded", m.Method)
		}
		if m.Coverage < 0 || m.Coverage > 1 {
			t.Errorf("%s: coverage %v outside [0, 1]", m.Method, m.Coverage)
		}
		if m.MaxAbsErr < 0 || m.MaxAbsErrVsExact < m.MaxAbsErr-1e-15 &&
			m.Method != "ols" && m.Method != "ols-kl" && m.Method != "anchored-ols" {
			t.Errorf("%s: inconsistent error stats (max=%v vsExact=%v)", m.Method, m.MaxAbsErr, m.MaxAbsErrVsExact)
		}
		if m.TrialsToTolerance <= 0 {
			t.Errorf("%s: TrialsToTolerance = %d", m.Method, m.TrialsToTolerance)
		}
	}
	for m := range want {
		t.Errorf("method %q missing from report", m)
	}
}

// TestVariantMethodsAreExercised: the query-variant conformance rows
// must record real comparisons on the short corpus — the anchored
// kernels on every anchorable case and the community split wherever the
// half-split leaves butterflies.
func TestVariantMethodsAreExercised(t *testing.T) {
	rep, err := Run(DefaultConfig(9), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"anchored-os", "anchored-ols", "community"} {
		found := false
		for _, ms := range rep.Methods {
			if ms.Method == m {
				found = true
				if ms.Comparisons == 0 {
					t.Errorf("%s: no comparisons recorded", m)
				}
			}
		}
		if !found {
			t.Errorf("method %q missing from report", m)
		}
	}
	if !rep.Pass {
		t.Errorf("conformance failed with variants enabled:\n%s", detailDump(rep))
	}
}

func methodViolations(rep *Report, method string) int {
	for _, m := range rep.Methods {
		if m.Method == method {
			return m.Violations
		}
	}
	return -1
}

func detailDump(rep *Report) string {
	var buf bytes.Buffer
	for _, d := range rep.Details {
		buf.WriteString("  ")
		buf.WriteString(d)
		buf.WriteByte('\n')
	}
	return buf.String()
}
