package statcheck

// Metamorphic invariants: properties that must hold deterministically
// (not just in distribution), so a single run either proves them for
// this corpus or exposes a real bug. Each check exploits a designed
// coupling:
//
//   - per-world conformance: one OS trial on a fixed world must equal
//     the brute-force maximum butterfly set of that world, bit for bit;
//   - relabeling / side-swap invariance: permuting vertex labels (or
//     swapping the L and R sides) while preserving edge insertion order
//     keeps every edge id — and therefore every Bernoulli draw — the
//     same, so exact, mc-vp and os results must be identical modulo the
//     label mapping. OLS is excluded: its candidate ordering breaks
//     weight ties by vertex id, which a relabeling legitimately changes.
//   - monotonicity: raising the edge probabilities of the heaviest
//     backbone butterfly B0 can only increase P(B0). For the exact
//     solver that is a theorem; for mc-vp it holds per trial because
//     SampleInto consumes one uniform draw per edge iff 0 < p < 1, and
//     the boost p' = p + (1-p)/2 keeps every probability inside (0, 1),
//     so the very same draws produce a superset of B0-present trials.
//     (OS draws lazily and prunes, so its draw alignment shifts — it is
//     checked in distribution by the main harness instead.)

import (
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/possible"
	"github.com/uncertain-graphs/mpmb/internal/randx"
)

const (
	// enumerateEdgeCap: check OSOnWorld against every world up to 2^14;
	// sample beyond that.
	enumerateEdgeCap = 14
	sampledWorlds    = 1024
	// weightTol absorbs float association differences in butterfly
	// weights whose four addends are summed in a labeling-dependent
	// canonical order.
	weightTol = 1e-9
	// exactIdentityTol bounds |exact P(B0) − Pr[E(B0)]| for a butterfly
	// in the top backbone weight group, and the slack allowed in the
	// exact monotonicity comparison. The identity is exact in real
	// arithmetic, but the enumerator accumulates up to 2^18 world
	// probabilities, so rounding can reach ~1e-10.
	exactIdentityTol = 1e-9
)

func (h *harness) runMetamorphic(ci int, cs *CaseReport, g *bigraph.Graph, exactP map[butterfly.Butterfly]float64) error {
	h.checkOSWorldConformance(cs, g)
	if err := h.checkRelabelInvariance(ci, cs, g); err != nil {
		return err
	}
	if err := h.checkSwapInvariance(ci, cs, g); err != nil {
		return err
	}
	return h.checkMonotonicity(ci, cs, g, exactP)
}

// checkOSWorldConformance compares OSOnWorld (one Ordering Sampling
// trial on a fixed world, with any injected fault) against the
// brute-force butterfly.MaxWeightSet on the same world.
func (h *harness) checkOSWorldConformance(cs *CaseReport, g *bigraph.Graph) {
	opt := core.OSOptions{DropA2: h.cfg.Sabotage.DropA2}
	mismatches := 0
	check := func(w *possible.World) {
		got := core.OSOnWorld(g, w, opt)
		want := butterfly.MaxWeightSet(g, w)
		if !sameMaxSet(got, want) {
			mismatches++
		}
	}
	if g.NumEdges() <= enumerateEdgeCap {
		// The error only fires past MaxEnumerableEdges; the cap is below it.
		_ = possible.Enumerate(g, func(w *possible.World, pr float64) bool {
			check(w)
			return true
		})
	} else {
		rng := randx.New(h.cfg.Seed ^ 0x05f0)
		for t := 0; t < sampledWorlds; t++ {
			check(possible.Sample(g, rng.Derive(uint64(t))))
		}
	}
	if mismatches > 0 {
		h.metaViolation(cs, "%s: OSOnWorld disagrees with brute-force MaxWeightSet on %d world(s)",
			cs.Name, mismatches)
	}
}

func sameMaxSet(a, b butterfly.MaxSet) bool {
	if a.Empty() != b.Empty() {
		return false
	}
	if a.Empty() {
		return true
	}
	// OS computes a butterfly's weight as the sum of its two angle
	// weights, the brute force as a sequential four-edge sum: on weights
	// that are not exactly representable sums the two associate
	// differently, so W may differ by an ulp even when the sets agree.
	if math.Abs(a.W-b.W) > weightTol || len(a.Set) != len(b.Set) {
		return false
	}
	in := make(map[butterfly.Butterfly]bool, len(b.Set))
	for _, x := range b.Set {
		in[x] = true
	}
	for _, x := range a.Set {
		if !in[x] {
			return false
		}
	}
	return true
}

// checkRelabelInvariance permutes the left and right vertex labels while
// preserving edge insertion order (hence edge ids and random streams)
// and demands bit-identical results from exact, mc-vp and os modulo the
// permutation.
func (h *harness) checkRelabelInvariance(ci int, cs *CaseReport, g *bigraph.Graph) error {
	rng := randx.New(h.cfg.Seed ^ 0x51ab)
	permL := rng.Perm(g.NumL())
	permR := rng.Perm(g.NumR())
	b := bigraph.NewBuilder(g.NumL(), g.NumR())
	for _, e := range g.Edges() {
		b.MustAddEdge(bigraph.VertexID(permL[e.U]), bigraph.VertexID(permR[e.V]), e.W, e.P)
	}
	mapB := func(x butterfly.Butterfly) butterfly.Butterfly {
		return butterfly.New(
			bigraph.VertexID(permL[x.U1]), bigraph.VertexID(permL[x.U2]),
			bigraph.VertexID(permR[x.V1]), bigraph.VertexID(permR[x.V2]))
	}
	return h.checkMappedInvariance(ci, cs, "relabel", g, b.Build(), mapB, 8)
}

// checkSwapInvariance mirrors the graph across its bipartition (left
// vertices become right and vice versa), again preserving edge ids.
func (h *harness) checkSwapInvariance(ci int, cs *CaseReport, g *bigraph.Graph) error {
	b := bigraph.NewBuilder(g.NumR(), g.NumL())
	for _, e := range g.Edges() {
		b.MustAddEdge(e.V, e.U, e.W, e.P)
	}
	mapB := func(x butterfly.Butterfly) butterfly.Butterfly {
		return butterfly.New(x.V1, x.V2, x.U1, x.U2)
	}
	return h.checkMappedInvariance(ci, cs, "lr-swap", g, b.Build(), mapB, 12)
}

func (h *harness) checkMappedInvariance(ci int, cs *CaseReport, name string, g, g2 *bigraph.Graph, mapB func(butterfly.Butterfly) butterfly.Butterfly, slotBase int) error {
	type runner struct {
		method string
		run    func(*bigraph.Graph, uint64) (*core.Result, error)
	}
	runners := []runner{
		{"exact", func(gr *bigraph.Graph, _ uint64) (*core.Result, error) { return core.Exact(gr) }},
		{"mc-vp", func(gr *bigraph.Graph, seed uint64) (*core.Result, error) {
			return core.MCVP(gr, core.MCVPOptions{Trials: metaTrials, Seed: seed})
		}},
		{"os", func(gr *bigraph.Graph, seed uint64) (*core.Result, error) {
			return core.OS(gr, core.OSOptions{Trials: metaTrials, Seed: seed, DropA2: h.cfg.Sabotage.DropA2})
		}},
	}
	for i, r := range runners {
		seed := h.seedFor(ci, slotBase+i)
		res1, err := r.run(g, seed)
		if err != nil {
			return err
		}
		res2, err := r.run(g2, seed)
		if err != nil {
			return err
		}
		if diff := compareMapped(res1, res2, mapB); diff != "" {
			h.metaViolation(cs, "%s: %s not invariant under %s: %s", cs.Name, r.method, name, diff)
		}
	}
	return nil
}

// compareMapped demands the two results agree butterfly-for-butterfly
// under the mapping: identical P (bit-exact — same trials, same draws)
// and equal weight up to float association.
func compareMapped(a, b *core.Result, mapB func(butterfly.Butterfly) butterfly.Butterfly) string {
	if len(a.Estimates) != len(b.Estimates) {
		return "estimate counts differ"
	}
	bm := make(map[butterfly.Butterfly]core.Estimate, len(b.Estimates))
	for _, e := range b.Estimates {
		bm[e.B] = e
	}
	for _, e := range a.Estimates {
		mb := mapB(e.B)
		other, ok := bm[mb]
		if !ok {
			return e.B.String() + " has no counterpart " + mb.String()
		}
		if other.P != e.P {
			return e.B.String() + ": P differs under mapping"
		}
		if math.Abs(other.Weight-e.Weight) > weightTol {
			return e.B.String() + ": weight differs under mapping"
		}
	}
	return ""
}

// checkMonotonicity boosts the edge probabilities of the heaviest
// backbone butterfly B0 and verifies (a) exact P(B0) equals Pr[E(B0)]
// before the boost (B0 is in the top weight group: whenever it exists it
// is maximal), (b) exact P(B0) does not decrease, and (c) the coupled
// mc-vp trial count of B0 does not decrease.
func (h *harness) checkMonotonicity(ci int, cs *CaseReport, g *bigraph.Graph, exactP map[butterfly.Butterfly]float64) error {
	all := butterfly.AllBackbone(g)
	if len(all) == 0 {
		return nil
	}
	b0 := all[0]
	for _, bw := range all[1:] {
		if bw.W > b0.W || (bw.W == b0.W && lessButterfly(bw.B, b0.B)) {
			b0 = bw
		}
	}
	ep, _ := b0.B.ExistProb(g)
	if math.Abs(exactP[b0.B]-ep) > exactIdentityTol {
		h.metaViolation(cs, "%s: exact P(B0)=%v but Pr[E(B0)]=%v for top-weight butterfly %v",
			cs.Name, exactP[b0.B], ep, b0.B)
	}

	ids, _ := b0.B.EdgeIDs(g)
	boost := make(map[bigraph.EdgeID]bool, 4)
	for _, id := range ids {
		boost[id] = true
	}
	bld := bigraph.NewBuilder(g.NumL(), g.NumR())
	for i, e := range g.Edges() {
		p := e.P
		if boost[bigraph.EdgeID(i)] && p > 0 && p < 1 {
			p += (1 - p) / 2
		}
		bld.MustAddEdge(e.U, e.V, e.W, p)
	}
	g2 := bld.Build()

	p2, err := core.ExactProb(g2, b0.B)
	if err != nil {
		return err
	}
	if p2 < exactP[b0.B]-exactIdentityTol {
		h.metaViolation(cs, "%s: exact P(B0) dropped from %v to %v after boosting its edges",
			cs.Name, exactP[b0.B], p2)
	}

	seed := h.seedFor(ci, 15)
	m1, err := core.MCVP(g, core.MCVPOptions{Trials: metaTrials, Seed: seed})
	if err != nil {
		return err
	}
	m2, err := core.MCVP(g2, core.MCVPOptions{Trials: metaTrials, Seed: seed})
	if err != nil {
		return err
	}
	if estOf(m2, b0.B) < estOf(m1, b0.B) {
		h.metaViolation(cs, "%s: coupled mc-vp estimate of B0 dropped from %v to %v after boosting its edges",
			cs.Name, estOf(m1, b0.B), estOf(m2, b0.B))
	}
	return nil
}

func estOf(r *core.Result, b butterfly.Butterfly) float64 {
	for _, e := range r.Estimates {
		if e.B == b {
			return e.P
		}
	}
	return 0
}
