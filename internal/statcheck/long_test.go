//go:build statlong

package statcheck

// The nightly long-corpus conformance run: larger graphs (up to 2^18
// worlds), more trials, several seeds. Excluded from the default build
// by the statlong tag; CI runs it as
//
//	go test -race -tags statlong ./internal/statcheck/
//
// (see .github/workflows/nightly.yml).

import "testing"

func TestLongCorpusConformance(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Trials = 20000
		rep, err := Run(cfg, LongCorpus())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Pass {
			t.Errorf("seed %d: long conformance failed (%d violations, %d metamorphic):\n%s",
				seed, rep.Violations, rep.MetamorphicViolations, detailDump(rep))
		}
	}
}

// TestLongCorpusSabotageDetected re-proves detection power at the long
// corpus scale.
func TestLongCorpusSabotageDetected(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Trials = 20000
	cfg.Sabotage.DropA2 = true
	rep, err := Run(cfg, LongCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("long corpus passed with the A2 angle class dropped")
	}
}
