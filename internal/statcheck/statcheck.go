// Package statcheck is the statistical conformance harness: it runs
// every estimator in internal/core (MC-VP, OS, OLS, OLS-KL) against the
// exact oracles on a corpus of small enumerable graphs and checks the
// results with distribution-free acceptance intervals plus deterministic
// metamorphic invariants.
//
// The statistical contract: each estimator's per-butterfly estimate is a
// binomial proportion (or a fixed affine transform of one) over
// Config.Trials trials, so the Hoeffding half-width of
// internal/interval bounds its deviation from the method's
// oracle with per-comparison error probability Config.Alpha. At the
// default Alpha = 1e-9 the whole corpus (a few thousand comparisons)
// produces a false alarm with probability ~1e-6, which makes the suite
// deterministic-given-seed in practice; Config.FailureBudget adds slack
// on top. The oracles differ per method: mc-vp and os estimate the true
// P(B) (core.Exact); the OLS sampling phases estimate the
// candidate-restricted value (core.ExactCandidateProbs) — on a truncated
// C_MB they converge to that, not to P(B) (Lemma VI.5), so comparing
// them against core.Exact directly would be testing the wrong contract.
//
// The harness must also demonstrably FAIL when an estimator is broken;
// Config.Sabotage injects known faults (dropping the A2 angle class,
// scaling estimates) and the package tests assert the suite rejects
// them.
package statcheck

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/interval"
)

// Sabotage injects deliberate estimator faults so the harness's power —
// its ability to detect a broken estimator — is itself testable. All
// fields zero means no sabotage (the normal conformance run).
type Sabotage struct {
	// DropA2 runs Ordering Sampling (and the OLS preparing phase) with
	// the second angle weight class discarded (OSOptions.DropA2): a real
	// systematic bias that loses every butterfly formed from the top
	// angle plus a strictly lighter one.
	DropA2 bool
	// ScaleEstimates multiplies every method's estimates by this factor
	// after the run (0 and 1 mean off), emulating a miscalibrated
	// estimator. Any case with a confidently-estimated candidate turns
	// this into interval violations.
	ScaleEstimates float64
}

// Config parameterizes a conformance run. Results are a pure function of
// the Config and the corpus: same inputs, same Report, bit for bit.
type Config struct {
	// Seed drives every estimator run (corpus graphs are fixed and do
	// not depend on it).
	Seed uint64
	// Trials is the sampling-phase trial count per estimator. Must be > 0.
	Trials int
	// PrepTrials is the OLS preparing-phase trial count. Must be > 0.
	PrepTrials int
	// Alpha is the per-comparison two-sided error probability of the
	// acceptance intervals. Must be in (0, 1).
	Alpha float64
	// FailureBudget is the corpus-wide number of interval violations
	// tolerated before the run fails. Metamorphic violations are never
	// budgeted — they indicate deterministic bugs.
	FailureBudget int
	// MissThreshold: a butterfly with exact P(B) at or above this value
	// must appear in the OLS candidate set, or the run records a
	// violation. Per Lemma VI.1 the miss probability is
	// (1−P(B))^PrepTrials — at the defaults (0.15, 100) that is 8.7e-8,
	// comfortably inside the false-alarm budget. 0 means the 0.15
	// default.
	MissThreshold float64
	// Sabotage injects deliberate faults (see Sabotage).
	Sabotage Sabotage

	// SelfHealing enables the under-prepared OLS demonstration: a
	// deliberately starved preparing phase (a single trial) on the
	// angle-stressor graph, whose exact leader (P ≈ 0.08) the plain
	// optimized estimator then misses — an error the ordinary
	// candidate-restricted oracle and the Lemma VI.1 gate (MissThreshold
	// 0.15) cannot see, because the truncated candidate set is internally
	// consistent. The check therefore compares the leader's estimate
	// against the TRUE exact probability with a plain Hoeffding band.
	// With AuditEvery == 0 the demonstration runs unsupervised and fails
	// the report; with AuditEvery > 0 it runs through the adaptive
	// supervisor, whose coverage audits widen the candidate set until the
	// leader estimate is admissible again.
	SelfHealing bool
	// AuditEvery is the supervised audit cadence of the self-healing
	// check (0 = plain, unsupervised run).
	AuditEvery int
	// Epsilon forwards accuracy-aware stopping to the supervised
	// self-healing run (0 = off).
	Epsilon float64
	// Deadline forwards a wall-clock bound to the supervised self-healing
	// run (zero = off). A deadline makes the run time-dependent, trading
	// the harness's pure-function-of-Config property for boundedness.
	Deadline time.Time
}

// DefaultConfig returns the configuration used by `go test
// ./internal/statcheck` and `mpmb-bench conformance`.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		Trials:        4000,
		PrepTrials:    100,
		Alpha:         1e-9,
		FailureBudget: 2,
		MissThreshold: 0.15,
	}
}

const (
	// exactEqTol absorbs float association differences when comparing
	// two ways of computing the same closed-form product (for candidates
	// the Karp-Luby estimator prices without sampling).
	exactEqTol = 1e-9
	// maxDetails caps the violation descriptions carried in the Report.
	maxDetails = 25
	// metaTrials is the trial count of the bit-identity metamorphic runs
	// (any count works — identity does not depend on convergence).
	metaTrials = 300
	// selfHealMaxEscalations is the escalation budget of the supervised
	// self-healing run. The one-trial prep starts so far behind that a
	// handful of doublings (1 → 2 → 4 → ...) is needed before the
	// candidate set covers every co-maximal butterfly.
	selfHealMaxEscalations = 8
	// reportTolerance is the half-width target that TrialsToTolerance is
	// quoted for.
	reportTolerance = 0.01
)

// methodAcc accumulates one estimator's corpus-wide statistics.
type methodAcc struct {
	comparisons int
	violations  int
	sumAbsErr   float64
	maxAbsErr   float64
	maxVsExact  float64
	maxKLScale  float64
}

type harness struct {
	cfg Config
	rep *Report
	acc map[string]*methodAcc
}

var methodOrder = []string{"mc-vp", "os", "ols", "ols-kl", "anchored-os", "anchored-ols", "community"}

// Run executes the conformance harness over the corpus and returns the
// report. An error means the harness itself could not run (oracle
// failure, invalid config) — estimator disagreement is reported through
// Report.Pass, never through the error.
func Run(cfg Config, corpus []Case) (*Report, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("statcheck: Trials must be > 0, got %d", cfg.Trials)
	}
	if cfg.PrepTrials <= 0 {
		return nil, fmt.Errorf("statcheck: PrepTrials must be > 0, got %d", cfg.PrepTrials)
	}
	if !(cfg.Alpha > 0 && cfg.Alpha < 1) {
		return nil, fmt.Errorf("statcheck: Alpha %v outside (0, 1)", cfg.Alpha)
	}
	if cfg.MissThreshold == 0 {
		cfg.MissThreshold = 0.15
	}
	h := &harness{
		cfg: cfg,
		rep: &Report{
			Seed:          cfg.Seed,
			Trials:        cfg.Trials,
			PrepTrials:    cfg.PrepTrials,
			Alpha:         cfg.Alpha,
			FailureBudget: cfg.FailureBudget,
		},
		acc: make(map[string]*methodAcc),
	}
	for _, m := range methodOrder {
		h.acc[m] = &methodAcc{}
	}
	for ci, c := range corpus {
		if err := h.runCase(ci, c); err != nil {
			return nil, fmt.Errorf("statcheck: case %q: %w", c.Name, err)
		}
	}
	if cfg.SelfHealing {
		if err := h.runSelfHealing(); err != nil {
			return nil, fmt.Errorf("statcheck: self-healing check: %w", err)
		}
	}
	h.summarize()
	return h.rep, nil
}

// selfHealPrepTrials is the deliberately starved preparing phase of the
// self-healing demonstration: one trial lists at most one world's maxima.
const selfHealPrepTrials = 1

// runSelfHealing executes the under-prepared OLS demonstration (see
// Config.SelfHealing): plain OLS with a one-trial preparing phase on the
// angle-stressor graph misses the exact leader, and only the supervised
// run's coverage audits recover it.
func (h *harness) runSelfHealing() error {
	g := angleClasses()
	exact, err := core.Exact(g)
	if err != nil {
		return err
	}
	leader, ok := exact.Best()
	if !ok {
		return fmt.Errorf("angle-stressor graph has no butterflies")
	}
	var res *core.Result
	if h.cfg.AuditEvery > 0 {
		res, err = core.Supervise(g, core.SupervisorOptions{
			Method:         "ols",
			Trials:         h.cfg.Trials,
			PrepTrials:     selfHealPrepTrials,
			Seed:           h.cfg.Seed,
			AuditEvery:     h.cfg.AuditEvery,
			MaxEscalations: selfHealMaxEscalations,
			Epsilon:        h.cfg.Epsilon,
			Deadline:       h.cfg.Deadline,
		})
	} else {
		res, err = core.OLS(g, core.OLSOptions{
			PrepTrials: selfHealPrepTrials,
			Trials:     h.cfg.Trials,
			Seed:       h.cfg.Seed,
		})
	}
	if err != nil {
		return err
	}
	est := 0.0
	if e, found := res.Lookup(leader.B); found {
		est = e.P
	}
	n := res.TrialsDone
	if n <= 0 {
		n = h.cfg.Trials
	}
	// The healed estimate converges to the TRUE P(B*): once the audits
	// have merged every co-maximal butterfly into the candidate set the
	// leader's count is Bin(n, P(B*)), so the plain Hoeffding band
	// applies. An unhealed run leaves the leader out entirely (estimate
	// 0, error ≈ 0.08 — far outside the band at any realistic n).
	eps := interval.HoeffdingHalfWidth(n, h.cfg.Alpha)
	sh := &SelfHealingReport{
		Case:       "angle-classes",
		PrepTrials: selfHealPrepTrials,
		AuditEvery: h.cfg.AuditEvery,
		Method:     res.Method,
		ExactP:     leader.P,
		Estimate:   est,
		AbsErr:     math.Abs(est - leader.P),
		HalfWidth:  eps,
		Trials:     n,
	}
	if res.Adaptive != nil {
		sh.Audits = res.Adaptive.Audits
		sh.Escalations = res.Adaptive.Escalations
		sh.StopReason = string(res.Adaptive.StopReason)
	}
	sh.Healed = sh.AbsErr <= eps
	if !sh.Healed {
		h.detail("self-healing/%s: leader %v estimate %.4g vs exact %.4g: error %.3g exceeds Hoeffding band %.3g (prep trials %d, audit cadence %d)",
			sh.Case, leader.B, est, leader.P, sh.AbsErr, eps, selfHealPrepTrials, h.cfg.AuditEvery)
	}
	h.rep.SelfHealing = sh
	return nil
}

// seedFor derives a distinct estimator seed per (case, slot) so no two
// runs share a random stream.
func (h *harness) seedFor(ci, slot int) uint64 {
	return h.cfg.Seed ^ uint64(ci*16+slot+1)*0x9e3779b97f4a7c15
}

// sabotaged applies the ScaleEstimates fault to a raw estimate.
func (h *harness) sabotaged(p float64) float64 {
	if s := h.cfg.Sabotage.ScaleEstimates; s != 0 && s != 1 {
		return p * s
	}
	return p
}

func (h *harness) runCase(ci int, c Case) error {
	g := c.G
	exact, err := core.Exact(g)
	if err != nil {
		return err
	}
	exactP := make(map[butterfly.Butterfly]float64, len(exact.Estimates))
	for _, e := range exact.Estimates {
		exactP[e.B] = e.P
	}
	cs := CaseReport{
		Name:        c.Name,
		NumEdges:    g.NumEdges(),
		Butterflies: len(butterfly.AllBackbone(g)),
	}

	mres, err := core.MCVP(g, core.MCVPOptions{Trials: h.cfg.Trials, Seed: h.seedFor(ci, 0)})
	if err != nil {
		return err
	}
	h.compareCounting(&cs, "mc-vp", mres, exact, exactP)

	ores, err := core.OS(g, core.OSOptions{
		Trials: h.cfg.Trials,
		Seed:   h.seedFor(ci, 1),
		DropA2: h.cfg.Sabotage.DropA2,
	})
	if err != nil {
		return err
	}
	h.compareCounting(&cs, "os", ores, exact, exactP)

	if err := h.runOLS(ci, &cs, g, exactP, false); err != nil {
		return err
	}
	if err := h.runOLS(ci, &cs, g, exactP, true); err != nil {
		return err
	}

	if err := h.runMetamorphic(ci, &cs, g, exactP); err != nil {
		return err
	}

	if err := h.runVariants(ci, &cs, g); err != nil {
		return err
	}

	h.rep.Cases = append(h.rep.Cases, cs)
	return nil
}

// compareCounting checks a world-sampling method (mc-vp, os) against the
// exact P(B): per-butterfly counts over Trials worlds are Bin(N, P(B)),
// so the plain Hoeffding half-width applies. A butterfly the method
// never reported counts as estimate 0; a reported butterfly absent from
// the exact result is compared against 0.
func (h *harness) compareCounting(cs *CaseReport, method string, res *core.Result, exact *core.Result, exactP map[butterfly.Butterfly]float64) {
	eps := interval.HoeffdingHalfWidth(h.cfg.Trials, h.cfg.Alpha)
	got := make(map[butterfly.Butterfly]float64, len(res.Estimates))
	for _, e := range res.Estimates {
		got[e.B] = h.sabotaged(e.P)
	}
	// Exact estimates first (deterministic order), then extras.
	for _, e := range exact.Estimates {
		p := got[e.B]
		h.record(cs, method, e.B.String(), p, e.P, eps, math.Abs(p-e.P))
		delete(got, e.B)
	}
	for _, e := range res.Estimates {
		if p, extra := got[e.B]; extra {
			h.record(cs, method, e.B.String(), p, 0, eps, p)
		}
	}
}

// runOLS checks one OLS configuration (optimized or Karp-Luby sampling
// phase) against the candidate-restricted exact oracle, plus the Lemma
// VI.1 candidate-coverage gate against the true exact probabilities.
func (h *harness) runOLS(ci int, cs *CaseReport, g *bigraph.Graph, exactP map[butterfly.Butterfly]float64, useKL bool) error {
	method, slot := "ols", 2
	if useKL {
		method, slot = "ols-kl", 3
	}
	seed := h.seedFor(ci, slot)

	cands, err := core.PrepareCandidates(g, h.cfg.PrepTrials, seed,
		core.OSOptions{DropA2: h.cfg.Sabotage.DropA2})
	if err != nil {
		return err
	}

	// Candidate-coverage gate (Lemma VI.1): a butterfly with exact
	// probability at or above MissThreshold missing from C_MB is a
	// violation — either the preparing phase is broken or we hit the
	// ~1e-7 miss probability. This must run even when the (possibly
	// sabotaged) preparing phase produced no candidates at all.
	inCands := make(map[butterfly.Butterfly]bool, cands.Len())
	for _, cand := range cands.List {
		inCands[cand.B] = true
	}
	for _, e := range h.exactOrder(exactP) {
		if exactP[e] >= h.cfg.MissThreshold && !inCands[e] {
			h.missViolation(cs, method, e, exactP[e])
		}
	}
	if cands.Len() == 0 {
		return nil
	}

	oracle, err := core.ExactCandidateProbs(cands)
	if err != nil {
		return err
	}
	res, err := core.OLSSamplingPhase(cands, core.OLSOptions{
		PrepTrials:  h.cfg.PrepTrials,
		Trials:      h.cfg.Trials,
		Seed:        seed,
		UseKarpLuby: useKL,
	})
	if err != nil {
		return err
	}
	est := make(map[butterfly.Butterfly]float64, len(res.Estimates))
	for _, e := range res.Estimates {
		est[e.B] = h.sabotaged(e.P)
	}

	a := h.acc[method]
	for i, cand := range cands.List {
		got, ok := est[cand.B]
		if !ok {
			return fmt.Errorf("%s: candidate %v has no estimate", method, cand.B)
		}
		want := oracle[i]
		vsExact := math.Abs(got - exactP[cand.B])
		var eps float64
		switch {
		case useKL && (cands.LargerCount(i) == 0 || cands.SI(i) == 0):
			// Karp-Luby prices these candidates in closed form (no
			// sampling): the estimate must equal the oracle exactly,
			// modulo float association.
			eps = exactEqTol
		case useKL:
			// The KL estimate is ExistProb·(1 − S_i·proportion): an
			// affine transform of a binomial proportion with scale
			// ExistProb·S_i.
			scale := cand.ExistProb * cands.SI(i)
			if scale > a.maxKLScale {
				a.maxKLScale = scale
			}
			eps = interval.ScaledHalfWidth(scale, h.cfg.Trials, h.cfg.Alpha)
		default:
			// The optimized estimator's per-candidate count is
			// Bin(Trials, oracle value): plain Hoeffding applies.
			eps = interval.HoeffdingHalfWidth(h.cfg.Trials, h.cfg.Alpha)
		}
		h.record(cs, method, cand.B.String(), got, want, eps, vsExact)
	}
	return nil
}

// exactOrder returns the butterflies of an exact-probability map in
// canonical deterministic order, so violation details and detail-cap
// truncation never depend on map iteration order.
func (h *harness) exactOrder(exactP map[butterfly.Butterfly]float64) []butterfly.Butterfly {
	out := make([]butterfly.Butterfly, 0, len(exactP))
	for b := range exactP {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return lessButterfly(out[i], out[j]) })
	return out
}

func lessButterfly(a, b butterfly.Butterfly) bool {
	switch {
	case a.U1 != b.U1:
		return a.U1 < b.U1
	case a.U2 != b.U2:
		return a.U2 < b.U2
	case a.V1 != b.V1:
		return a.V1 < b.V1
	default:
		return a.V2 < b.V2
	}
}

func (h *harness) record(cs *CaseReport, method, what string, got, want, eps, vsExact float64) {
	a := h.acc[method]
	err := math.Abs(got - want)
	a.comparisons++
	cs.Comparisons++
	a.sumAbsErr += err
	if err > a.maxAbsErr {
		a.maxAbsErr = err
	}
	if err > cs.MaxAbsErr {
		cs.MaxAbsErr = err
	}
	if vsExact > a.maxVsExact {
		a.maxVsExact = vsExact
	}
	if err > eps {
		a.violations++
		cs.Violations++
		h.rep.Violations++
		h.detail("%s/%s: %s: |%.6g - %.6g| = %.3g exceeds acceptance half-width %.3g",
			cs.Name, method, what, got, want, err, eps)
	}
}

// missViolation records a candidate-coverage failure (a heavy butterfly
// absent from C_MB) as an interval violation of the OLS method.
func (h *harness) missViolation(cs *CaseReport, method string, b butterfly.Butterfly, p float64) {
	a := h.acc[method]
	a.comparisons++
	cs.Comparisons++
	a.violations++
	cs.Violations++
	h.rep.Violations++
	if p > a.maxAbsErr {
		a.maxAbsErr = p
	}
	if p > a.maxVsExact {
		a.maxVsExact = p
	}
	a.sumAbsErr += p
	h.detail("%s/%s: heavy butterfly %v (exact P=%.4g >= %.2g) missing from the candidate set after %d preparing trials",
		cs.Name, method, b, p, h.cfg.MissThreshold, h.cfg.PrepTrials)
}

func (h *harness) detail(format string, args ...any) {
	if len(h.rep.Details) < maxDetails {
		h.rep.Details = append(h.rep.Details, fmt.Sprintf(format, args...))
	}
}

func (h *harness) metaViolation(cs *CaseReport, format string, args ...any) {
	cs.Metamorphic++
	h.rep.MetamorphicViolations++
	h.detail("metamorphic: "+format, args...)
}

func (h *harness) summarize() {
	for _, m := range methodOrder {
		a := h.acc[m]
		ms := MethodSummary{
			Method:           m,
			Comparisons:      a.comparisons,
			Violations:       a.violations,
			MaxAbsErr:        a.maxAbsErr,
			MaxAbsErrVsExact: a.maxVsExact,
			Coverage:         1,
			Trials:           h.cfg.Trials,
		}
		if a.comparisons > 0 {
			ms.MeanAbsErr = a.sumAbsErr / float64(a.comparisons)
			ms.Coverage = 1 - float64(a.violations)/float64(a.comparisons)
		}
		if m == "ols-kl" {
			// The KL estimate moves by Pr[E(B_i)]·S_i per unit of its
			// underlying proportion; quote the trial count for the worst
			// scale seen in this corpus.
			if a.maxKLScale > 0 {
				ms.TrialsToTolerance = interval.TrialsForHalfWidth(reportTolerance/a.maxKLScale, h.cfg.Alpha)
			}
		} else {
			ms.TrialsToTolerance = interval.TrialsForHalfWidth(reportTolerance, h.cfg.Alpha)
		}
		h.rep.Methods = append(h.rep.Methods, ms)
	}
	h.rep.Pass = h.rep.Violations <= h.cfg.FailureBudget && h.rep.MetamorphicViolations == 0 &&
		(h.rep.SelfHealing == nil || h.rep.SelfHealing.Healed)
}
