package statcheck

import (
	"fmt"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/dataset"
)

// Case is one oracle-corpus entry: a named graph small enough for exact
// possible-world enumeration. Corpus graphs are fixed — they do not
// depend on the harness Config.Seed — so that a violation on a case is
// attributable to the estimator seed alone.
type Case struct {
	Name string
	G    *bigraph.Graph
}

// ShortCorpus returns the default conformance corpus: the paper's running
// example plus hand-built adversarial cases (exact weight ties at the
// maximum, zero- and one-probability edges, duplicate angle weights
// exercising the A1/A2 classes of Table II, butterfly-free graphs) and a
// few deterministic synthetic generator outputs. Every graph has at most
// 14 edges, so exact enumeration visits at most 2^14 worlds and the whole
// corpus runs in seconds.
func ShortCorpus() []Case {
	return []Case{
		{Name: "figure1", G: figure1()},
		{Name: "tied-max", G: tiedMax()},
		{Name: "zero-one-prob", G: zeroOneProb()},
		{Name: "all-certain", G: allCertain()},
		{Name: "angle-classes", G: angleClasses()},
		{Name: "single-edge", G: singleEdge()},
		{Name: "pendant", G: pendant()},
		{Name: "no-edges", G: bigraph.NewBuilder(2, 2).Build()},
		{Name: "synth-halfstep", G: synthetic(dataset.SyntheticConfig{
			Seed: 11, NumL: 3, NumR: 3, NumEdges: 8,
			Weights: dataset.WeightHalfStep,
		})},
		{Name: "synth-uniform", G: synthetic(dataset.SyntheticConfig{
			Seed: 12, NumL: 3, NumR: 4, NumEdges: 10,
			Probs: dataset.ProbNormal,
		})},
		{Name: "synth-fixedp", G: synthetic(dataset.SyntheticConfig{
			Seed: 13, NumL: 4, NumR: 3, NumEdges: 12, DegreeSkew: 1.2,
			Weights: dataset.WeightHalfStep, Probs: dataset.ProbFixed, ProbMean: 0.5,
		})},
	}
}

// LongCorpus extends ShortCorpus with larger (up to 18 edges, 2^18
// worlds) and more varied synthetic graphs for the nightly run.
func LongCorpus() []Case {
	long := ShortCorpus()
	for seed := uint64(21); seed <= 26; seed++ {
		long = append(long, Case{
			Name: fmt.Sprintf("synth-long-%d", seed),
			G: synthetic(dataset.SyntheticConfig{
				Seed: seed, NumL: 4, NumR: 5, NumEdges: 18,
				DegreeSkew: float64(seed%3) * 0.8,
				Weights:    []dataset.WeightDist{dataset.WeightUniform, dataset.WeightHalfStep, dataset.WeightNormal}[seed%3],
				Probs:      []dataset.ProbDist{dataset.ProbUniform, dataset.ProbNormal, dataset.ProbFixed}[seed%3],
				ProbMean:   0.4,
			}),
		})
	}
	return long
}

// figure1 is the paper's Figure 1 running example (2×3): the graph every
// algorithm test in internal/core is anchored on.
func figure1() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 0.5) // (u1, v1)
	b.MustAddEdge(0, 1, 2, 0.6) // (u1, v2)
	b.MustAddEdge(0, 2, 1, 0.8) // (u1, v3)
	b.MustAddEdge(1, 0, 3, 0.3) // (u2, v1)
	b.MustAddEdge(1, 1, 3, 0.4) // (u2, v2)
	b.MustAddEdge(1, 2, 1, 0.7) // (u2, v3)
	return b.Build()
}

// tiedMax: a complete 2×3 graph with every weight equal, so all three
// butterflies tie at the maximum weight in every world where they exist —
// the S_MB-is-a-set semantics under maximal stress.
func tiedMax() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 3)
	probs := []float64{0.5, 0.6, 0.7, 0.4, 0.8, 0.3}
	i := 0
	for u := 0; u < 2; u++ {
		for v := 0; v < 3; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), 1, probs[i])
			i++
		}
	}
	return b.Build()
}

// zeroOneProb mixes deterministic edges (p = 0 and p = 1) with uncertain
// ones: butterflies through the p=0 edge must get exactly zero mass and
// the p=1 edges must behave as certainties in every sampler.
func zeroOneProb() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 3)
	b.MustAddEdge(0, 0, 2, 1) // certain
	b.MustAddEdge(0, 1, 2, 0) // impossible
	b.MustAddEdge(0, 2, 1, 0.5)
	b.MustAddEdge(1, 0, 3, 1) // certain
	b.MustAddEdge(1, 1, 3, 0.5)
	b.MustAddEdge(1, 2, 1, 0.5)
	return b.Build()
}

// allCertain: a single possible world; the maximum butterflies must get
// P = 1 from every method after any number of trials.
func allCertain() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 3)
	weights := []float64{2, 2, 1, 3, 3, 1}
	i := 0
	for u := 0; u < 2; u++ {
		for v := 0; v < 3; v++ {
			b.MustAddEdge(bigraph.VertexID(u), bigraph.VertexID(v), weights[i], 1)
			i++
		}
	}
	return b.Build()
}

// angleClasses engineers duplicate angle weights per endpoint pair: the
// pair (u0, u1) sees two angles of weight 5 (via v0, v1), two of weight 3
// (via v2, v3) and one of weight 1 (via v4), so the Table II update hits
// the equal-to-A1, equal-to-A2 and below-A2 cases, and worlds where only
// one weight-5 angle survives need the A1+A2 combination — the exact
// butterflies the DropA2 fault loses.
func angleClasses() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 5)
	// Per middle vertex v: w(u0,v) + w(u1,v) is the angle weight.
	type mid struct{ w0, w1, p0, p1 float64 }
	mids := []mid{
		{2.5, 2.5, 0.5, 0.6}, // angle weight 5
		{2, 3, 0.4, 0.5},     // angle weight 5 (different split)
		{1.5, 1.5, 0.7, 0.3}, // angle weight 3
		{1, 2, 0.6, 0.4},     // angle weight 3
		{0.5, 0.5, 0.8, 0.7}, // angle weight 1
	}
	for v, m := range mids {
		b.MustAddEdge(0, bigraph.VertexID(v), m.w0, m.p0)
		b.MustAddEdge(1, bigraph.VertexID(v), m.w1, m.p1)
	}
	return b.Build()
}

// pendant holds a real butterfly on {u1,u2}×{v1,v2} while u0 and v0
// touch only the pendant edge (u0, v0): anchoring on u0, v0 or that edge
// has zero butterfly support, so every anchored run must return exactly
// no estimates. The pendant edge carries the heaviest weight so the
// variant harness's heaviest-edge anchor lands on it.
func pendant() *bigraph.Graph {
	b := bigraph.NewBuilder(3, 3)
	b.MustAddEdge(0, 0, 5, 0.9)
	b.MustAddEdge(1, 1, 2, 0.5)
	b.MustAddEdge(1, 2, 3, 0.6)
	b.MustAddEdge(2, 1, 1, 0.7)
	b.MustAddEdge(2, 2, 2, 0.8)
	return b.Build()
}

// singleEdge admits no butterfly in any world: every method must return
// an empty estimate set.
func singleEdge() *bigraph.Graph {
	b := bigraph.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0.5)
	return b.Build()
}

// synthetic materializes a generator config, panicking on configuration
// errors — corpus configs are compile-time constants, so an error is a
// bug in this file, not a runtime condition.
func synthetic(cfg dataset.SyntheticConfig) *bigraph.Graph {
	d, err := dataset.Synthetic(cfg)
	if err != nil {
		panic(fmt.Sprintf("statcheck: bad corpus config: %v", err))
	}
	return d.G
}
