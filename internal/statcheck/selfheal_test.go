package statcheck

import (
	"testing"
	"time"
)

// TestSelfHealingPlainFails: the under-prepared demonstration must FAIL
// conformance for plain OLS — a one-trial preparing phase on the
// angle-stressor graph leaves the exact leader (P ≈ 0.08) out of the
// candidate set, an error the ordinary candidate-restricted oracle and
// the Lemma VI.1 gate cannot see.
func TestSelfHealingPlainFails(t *testing.T) {
	for _, seed := range []uint64{1, 7, 13} {
		cfg := DefaultConfig(seed)
		cfg.SelfHealing = true
		rep, err := Run(cfg, ShortCorpus())
		if err != nil {
			t.Fatal(err)
		}
		sh := rep.SelfHealing
		if sh == nil {
			t.Fatal("self-healing check did not run")
		}
		if sh.Healed {
			t.Errorf("seed %d: plain under-prepared OLS passed (err=%v, band=%v) — the demonstration lost its power",
				seed, sh.AbsErr, sh.HalfWidth)
		}
		if rep.Pass {
			t.Errorf("seed %d: report passed despite an unhealed run (violations=%d, budget=%d)",
				seed, rep.Violations, rep.FailureBudget)
		}
		if sh.AbsErr <= sh.HalfWidth {
			t.Errorf("seed %d: verdict inconsistent with its own numbers: err=%v band=%v", seed, sh.AbsErr, sh.HalfWidth)
		}
		// The plain run misses the leader entirely: estimate 0, error =
		// the leader's exact probability.
		if sh.Estimate != 0 || sh.ExactP < 0.05 {
			t.Errorf("seed %d: unexpected plain-run numbers: estimate=%v exactP=%v", seed, sh.Estimate, sh.ExactP)
		}
	}
}

// TestSelfHealingAuditsHeal: the same demonstration PASSES when the run
// goes through the adaptive supervisor — coverage audits escalate the
// preparing phase until the candidate set covers the leader.
func TestSelfHealingAuditsHeal(t *testing.T) {
	for _, seed := range []uint64{1, 7, 13} {
		cfg := DefaultConfig(seed)
		cfg.SelfHealing = true
		cfg.AuditEvery = 100
		rep, err := Run(cfg, ShortCorpus())
		if err != nil {
			t.Fatal(err)
		}
		sh := rep.SelfHealing
		if sh == nil {
			t.Fatal("self-healing check did not run")
		}
		if !sh.Healed {
			t.Errorf("seed %d: supervised run did not heal: err=%v band=%v (audits=%d, escalations=%d, method=%s)",
				seed, sh.AbsErr, sh.HalfWidth, sh.Audits, sh.Escalations, sh.Method)
		}
		if !rep.Pass {
			t.Errorf("seed %d: healed run failed conformance (violations=%d, metamorphic=%d)\n%s",
				seed, rep.Violations, rep.MetamorphicViolations, detailDump(rep))
		}
		if sh.Escalations == 0 || sh.Audits == 0 {
			t.Errorf("seed %d: healing left no trace (audits=%d, escalations=%d) — was the run actually supervised?",
				seed, sh.Audits, sh.Escalations)
		}
		if sh.Method != "ols" {
			t.Errorf("seed %d: healed run fell back to %q; expected escalation to keep it on ols", seed, sh.Method)
		}
	}
}

// TestSelfHealingDeterministic: same config, same SelfHealingReport.
func TestSelfHealingDeterministic(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.SelfHealing = true
	cfg.AuditEvery = 100
	a, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *a.SelfHealing != *b.SelfHealing {
		t.Errorf("self-healing report not deterministic:\n%+v\n%+v", *a.SelfHealing, *b.SelfHealing)
	}
}

// TestSelfHealingDeadline: a deadline already in the past bounds the
// supervised run — it stops immediately and honestly reports itself
// unhealed rather than blocking.
func TestSelfHealingDeadline(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SelfHealing = true
	cfg.AuditEvery = 100
	cfg.Deadline = time.Now().Add(-time.Second)
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := rep.SelfHealing
	if sh == nil {
		t.Fatal("self-healing check did not run")
	}
	if sh.StopReason != "deadline" {
		t.Errorf("stop reason %q, want deadline", sh.StopReason)
	}
	if sh.Healed || rep.Pass {
		t.Error("a run cut off before any sampling must not report itself healed")
	}
}

// TestSelfHealingOffByDefault: the default config does not run the check,
// so the standard conformance gate is unchanged.
func TestSelfHealingOffByDefault(t *testing.T) {
	rep, err := Run(DefaultConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SelfHealing != nil {
		t.Error("self-healing ran without Config.SelfHealing")
	}
	if !rep.Pass {
		t.Error("empty-corpus default run failed")
	}
}
