package statcheck

import (
	"testing"

	"github.com/uncertain-graphs/mpmb/internal/butterfly"
)

func TestSameMaxSet(t *testing.T) {
	mk := func(w float64, bs ...butterfly.Butterfly) butterfly.MaxSet {
		var m butterfly.MaxSet
		for _, b := range bs {
			m.Add(b, w)
		}
		return m
	}
	b1 := butterfly.New(0, 1, 0, 1)
	b2 := butterfly.New(0, 1, 0, 2)

	if !sameMaxSet(mk(3, b1, b2), mk(3, b2, b1)) {
		t.Error("order must not matter")
	}
	if !sameMaxSet(butterfly.MaxSet{}, butterfly.MaxSet{}) {
		t.Error("two empty sets must match")
	}
	if sameMaxSet(mk(3, b1), butterfly.MaxSet{}) {
		t.Error("empty vs non-empty must differ")
	}
	if sameMaxSet(mk(3, b1), mk(3, b1, b2)) {
		t.Error("differing cardinality must differ")
	}
	if sameMaxSet(mk(3, b1), mk(3, b2)) {
		t.Error("differing members must differ")
	}
	if sameMaxSet(mk(3, b1), mk(4, b1)) {
		t.Error("weights beyond tolerance must differ")
	}
	// An ulp-scale weight difference (float association) is tolerated.
	var a, b butterfly.MaxSet
	a.Add(b1, 3.0000000000000004)
	b.Add(b1, 3)
	if !sameMaxSet(a, b) {
		t.Error("ulp-scale weight difference must be tolerated")
	}
}

// TestMetamorphicChecksRunOnEveryCase: every corpus case reports zero
// metamorphic violations under the default config — and the per-case
// counters exist (they were exercised), which guards against the checks
// silently short-circuiting.
func TestMetamorphicChecksRunOnEveryCase(t *testing.T) {
	rep, err := Run(DefaultConfig(9), ShortCorpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != len(ShortCorpus()) {
		t.Fatalf("report has %d cases, corpus has %d", len(rep.Cases), len(ShortCorpus()))
	}
	for _, c := range rep.Cases {
		if c.Metamorphic != 0 {
			t.Errorf("%s: %d metamorphic violations", c.Name, c.Metamorphic)
		}
	}
}

// TestCorpusShape pins the corpus invariants the harness and docs rely
// on: unique names, exact-enumerable sizes, and the presence of the
// adversarial archetypes (ties at the max, degenerate probabilities, a
// single possible world, butterfly-free graphs).
func TestCorpusShape(t *testing.T) {
	short := ShortCorpus()
	long := LongCorpus()
	if len(long) <= len(short) {
		t.Error("long corpus must extend the short corpus")
	}
	for i, c := range long[:len(short)] {
		if c.Name != short[i].Name {
			t.Fatalf("long corpus does not start with the short corpus (index %d)", i)
		}
	}

	seen := map[string]bool{}
	withoutButterflies := 0
	for _, c := range long {
		if seen[c.Name] {
			t.Errorf("duplicate corpus case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.G == nil {
			t.Fatalf("%s: nil graph", c.Name)
		}
		if c.G.NumEdges() > 18 {
			t.Errorf("%s: %d edges exceeds the exact-enumeration budget", c.Name, c.G.NumEdges())
		}
		if len(butterfly.AllBackbone(c.G)) == 0 {
			withoutButterflies++
		}
	}
	for _, name := range []string{"figure1", "tied-max", "zero-one-prob", "all-certain", "angle-classes", "no-edges"} {
		if !seen[name] {
			t.Errorf("corpus lost the %q case", name)
		}
	}
	if withoutButterflies < 2 {
		t.Errorf("corpus must keep butterfly-free cases (found %d)", withoutButterflies)
	}
}

// TestShortCorpusIsQuick: the short corpus must stay inside the
// per-world enumeration cap so `go test ./internal/statcheck` checks
// OSOnWorld on EVERY world of every case.
func TestShortCorpusIsQuick(t *testing.T) {
	for _, c := range ShortCorpus() {
		if c.G.NumEdges() > enumerateEdgeCap {
			t.Errorf("%s: %d edges exceeds the short-corpus cap %d", c.Name, c.G.NumEdges(), enumerateEdgeCap)
		}
	}
}
