package statcheck

import (
	"fmt"
	"math"

	"github.com/uncertain-graphs/mpmb/internal/bigraph"
	"github.com/uncertain-graphs/mpmb/internal/butterfly"
	"github.com/uncertain-graphs/mpmb/internal/core"
	"github.com/uncertain-graphs/mpmb/internal/interval"
)

// This file extends the conformance harness to the query variants: the
// anchored kernels (vertex- and edge-anchored OS and OLS) and the
// per-community split. Each variant is checked against its own exact
// brute-force oracle — core.ExactAnchored for the anchored runs (itself
// certified in internal/core against an independent possible-world
// reference) and per-subgraph core.Exact for the community split — with
// the same Hoeffding acceptance intervals as the global methods.

// Seed slots of the variant runs (slots 0..3 belong to the global
// estimators, 8..15 to the metamorphic checks).
const (
	slotAnchoredOS  = 4
	slotAnchoredOLS = 5
	slotCommunity   = 6
)

// caseAnchors picks the anchors exercised on every corpus case: the
// first left vertex, the last right vertex and the heaviest backbone
// edge. Together they cover both vertex sides, the forced-angle edge
// path, and (on the pendant case) a zero-support anchor.
func caseAnchors(g *bigraph.Graph) []core.Anchor {
	var out []core.Anchor
	if g.NumL() > 0 {
		out = append(out, core.Anchor{Kind: core.AnchorLeft, U: 0})
	}
	if g.NumR() > 0 {
		out = append(out, core.Anchor{Kind: core.AnchorRight, V: bigraph.VertexID(g.NumR() - 1)})
	}
	if ids := g.EdgesByWeightDesc(); len(ids) > 0 {
		e := g.Edge(ids[0])
		out = append(out, core.Anchor{Kind: core.AnchorEdge, U: e.U, V: e.V})
	}
	return out
}

// anchorMix folds an anchor into a seed so each anchor of a case gets a
// distinct random stream within its slot.
func anchorMix(seed uint64, a core.Anchor) uint64 {
	return seed ^ (uint64(a.Kind)<<40|uint64(a.U)<<20|uint64(a.V)+1)*0x9e3779b97f4a7c15
}

// runVariants executes the anchored and community conformance checks of
// one corpus case.
func (h *harness) runVariants(ci int, cs *CaseReport, g *bigraph.Graph) error {
	for _, a := range caseAnchors(g) {
		if err := h.runAnchored(ci, cs, g, a); err != nil {
			return fmt.Errorf("anchor %v: %w", a, err)
		}
	}
	return h.runCommunity(ci, cs, g)
}

// runAnchored checks the anchored OS kernel against the anchored exact
// oracle and the anchored OLS sampling phase against its
// candidate-restricted oracle, plus the Lemma VI.1 coverage gate
// transposed to the anchored candidate set. A zero-support anchor is a
// deterministic contract: every anchored run must return exactly no
// estimates, checked as a metamorphic (unbudgeted) invariant.
func (h *harness) runAnchored(ci int, cs *CaseReport, g *bigraph.Graph, a core.Anchor) error {
	exact, err := core.ExactAnchored(g, a)
	if err != nil {
		return err
	}
	exactP := make(map[butterfly.Butterfly]float64, len(exact.Estimates))
	for _, e := range exact.Estimates {
		exactP[e.B] = e.P
	}

	osRes, err := core.AnchoredOS(g, a, core.OSOptions{
		Trials: h.cfg.Trials,
		Seed:   anchorMix(h.seedFor(ci, slotAnchoredOS), a),
	})
	if err != nil {
		return err
	}
	h.compareCounting(cs, "anchored-os", osRes, exact, exactP)
	if len(exact.Estimates) == 0 && len(osRes.Estimates) != 0 {
		h.metaViolation(cs, "%s: zero-support anchor %v produced %d anchored-os estimates",
			cs.Name, a, len(osRes.Estimates))
	}

	seed := anchorMix(h.seedFor(ci, slotAnchoredOLS), a)
	cands, err := core.PrepareAnchoredCandidates(g, a, h.cfg.PrepTrials, seed, nil)
	if err != nil {
		return err
	}
	inCands := make(map[butterfly.Butterfly]bool, cands.Len())
	for _, cand := range cands.List {
		inCands[cand.B] = true
	}
	for _, b := range h.exactOrder(exactP) {
		if exactP[b] >= h.cfg.MissThreshold && !inCands[b] {
			h.missViolation(cs, "anchored-ols", b, exactP[b])
		}
	}
	if len(exact.Estimates) == 0 && cands.Len() != 0 {
		h.metaViolation(cs, "%s: zero-support anchor %v listed %d anchored candidates",
			cs.Name, a, cands.Len())
	}
	if cands.Len() == 0 {
		return nil
	}

	oracle, err := core.ExactCandidateProbs(cands)
	if err != nil {
		return err
	}
	res, err := core.OLSSamplingPhase(cands, core.OLSOptions{
		PrepTrials: h.cfg.PrepTrials,
		Trials:     h.cfg.Trials,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	est := make(map[butterfly.Butterfly]float64, len(res.Estimates))
	for _, e := range res.Estimates {
		est[e.B] = h.sabotaged(e.P)
	}
	eps := interval.HoeffdingHalfWidth(h.cfg.Trials, h.cfg.Alpha)
	for i, cand := range cands.List {
		got, ok := est[cand.B]
		if !ok {
			return fmt.Errorf("anchored-ols: candidate %v has no estimate", cand.B)
		}
		h.record(cs, "anchored-ols", "anchored "+cand.B.String(), got, oracle[i], eps,
			math.Abs(got-exactP[cand.B]))
	}
	return nil
}

// runCommunity splits the case graph down the middle of each side and
// checks a per-community sampled run (OS on each induced subgraph,
// remapped to parent ids) against the per-community exact oracle (exact
// enumeration of each induced subgraph, remapped the same way).
func (h *harness) runCommunity(ci int, cs *CaseReport, g *bigraph.Graph) error {
	spec := halfSplitSpec(g)
	subs, err := core.CommunitySubgraphs(g, spec)
	if err != nil {
		return err
	}
	exactMerged := &core.Result{}
	sampledMerged := &core.Result{}
	for _, cg := range subs {
		ex, err := core.Exact(cg.G)
		if err != nil {
			return err
		}
		exactMerged.Estimates = append(exactMerged.Estimates, cg.RemapResult(ex).Estimates...)
		os, err := core.OS(cg.G, core.OSOptions{
			Trials: h.cfg.Trials,
			Seed:   h.seedFor(ci, slotCommunity) ^ (uint64(cg.ID)+1)*0x9e3779b97f4a7c15,
		})
		if err != nil {
			return err
		}
		sampledMerged.Estimates = append(sampledMerged.Estimates, cg.RemapResult(os).Estimates...)
	}
	exactP := make(map[butterfly.Butterfly]float64, len(exactMerged.Estimates))
	for _, e := range exactMerged.Estimates {
		exactP[e.B] = e.P
	}
	h.compareCounting(cs, "community", sampledMerged, exactMerged, exactP)
	return nil
}

// halfSplitSpec labels the first half of each vertex side community 0
// and the rest community 1 — communities are induced per label, so
// cross-half butterflies are out of scope by definition.
func halfSplitSpec(g *bigraph.Graph) core.CommunitySpec {
	spec := core.CommunitySpec{L: make([]int, g.NumL()), R: make([]int, g.NumR())}
	for i := range spec.L {
		if i >= g.NumL()/2 {
			spec.L[i] = 1
		}
	}
	for i := range spec.R {
		if i >= g.NumR()/2 {
			spec.R[i] = 1
		}
	}
	return spec
}
