package statcheck

import (
	"encoding/json"
	"io"
)

// Report is the outcome of one conformance run: per-case and per-method
// aggregates plus the overall verdict. It serializes to the JSON document
// emitted by `mpmb-bench conformance`.
type Report struct {
	Seed          uint64  `json:"seed"`
	Trials        int     `json:"trials"`
	PrepTrials    int     `json:"prep_trials"`
	Alpha         float64 `json:"alpha"`
	FailureBudget int     `json:"failure_budget"`

	Cases   []CaseReport    `json:"cases"`
	Methods []MethodSummary `json:"methods"`

	// Violations is the corpus-wide count of acceptance-interval
	// violations (all methods, all cases). The run passes when it stays
	// within FailureBudget AND no metamorphic invariant broke.
	Violations int `json:"violations"`
	// MetamorphicViolations counts broken metamorphic invariants —
	// relabeling/swap variance, per-world OS mismatches, monotonicity
	// breaks. These are deterministic properties: the budget for them is
	// always zero.
	MetamorphicViolations int  `json:"metamorphic_violations"`
	Pass                  bool `json:"pass"`

	// SelfHealing is the under-prepared OLS demonstration's outcome
	// (Config.SelfHealing); nil when the check did not run. A run with
	// SelfHealing.Healed == false fails regardless of FailureBudget — the
	// check exists precisely to catch an error the budgeted intervals
	// cannot see.
	SelfHealing *SelfHealingReport `json:"self_healing,omitempty"`

	// Details lists human-readable descriptions of the first violations
	// encountered (capped), for debugging a failed run.
	Details []string `json:"details,omitempty"`
}

// SelfHealingReport is the outcome of the under-prepared OLS
// demonstration: how far the exact leader's estimate landed from its true
// probability, and what the adaptive supervisor did to close the gap.
type SelfHealingReport struct {
	Case       string `json:"case"`
	PrepTrials int    `json:"prep_trials"`
	AuditEvery int    `json:"audit_every"`
	// Method is the method that produced the final estimates ("ols", or
	// "os" after a degradation-ladder fallback).
	Method string `json:"method"`
	// ExactP is the leader's true probability; Estimate is what the run
	// reported for it (0 when it was missing entirely); AbsErr is their
	// distance, checked against the Hoeffding HalfWidth at Trials.
	ExactP    float64 `json:"exact_p"`
	Estimate  float64 `json:"estimate"`
	AbsErr    float64 `json:"abs_err"`
	HalfWidth float64 `json:"half_width"`
	Trials    int     `json:"trials"`
	// Audits / Escalations / StopReason echo the supervised run's
	// AdaptiveReport (zero values for the plain, unsupervised run).
	Audits      int    `json:"audits,omitempty"`
	Escalations int    `json:"escalations,omitempty"`
	StopReason  string `json:"stop_reason,omitempty"`
	// Healed is the verdict: the leader estimate landed inside the band.
	Healed bool `json:"healed"`
}

// CaseReport aggregates one corpus graph.
type CaseReport struct {
	Name        string `json:"name"`
	NumEdges    int    `json:"num_edges"`
	Butterflies int    `json:"butterflies"` // backbone butterflies
	Comparisons int    `json:"comparisons"`
	Violations  int    `json:"violations"`
	// Metamorphic counts this case's broken invariants.
	Metamorphic int     `json:"metamorphic_violations"`
	MaxAbsErr   float64 `json:"max_abs_err"`
}

// MethodSummary aggregates one estimator across the corpus.
type MethodSummary struct {
	Method      string `json:"method"`
	Comparisons int    `json:"comparisons"`
	Violations  int    `json:"violations"`
	// MaxAbsErr / MeanAbsErr measure distance from the method's oracle:
	// the exact P(B) for mc-vp and os, the candidate-restricted exact
	// value for ols and ols-kl (what those estimators converge to on a
	// truncated C_MB, per Lemma VI.5).
	MaxAbsErr  float64 `json:"max_abs_err"`
	MeanAbsErr float64 `json:"mean_abs_err"`
	// MaxAbsErrVsExact is the distance from the true exact P(B),
	// including the OLS truncation bias (equals MaxAbsErr for mc-vp/os).
	MaxAbsErrVsExact float64 `json:"max_abs_err_vs_exact"`
	// Coverage is the fraction of comparisons inside their acceptance
	// interval: 1 − Violations/Comparisons (1 when there were none).
	Coverage float64 `json:"coverage"`
	// Trials is the per-comparison sample size the run used.
	Trials int `json:"trials"`
	// TrialsToTolerance is the trial count this method would need for a
	// ±0.01 acceptance half-width at the report's Alpha, given the
	// worst-case estimate scale observed in the corpus (1 for plain
	// binomial methods, max Pr[E(B_i)]·S_i for ols-kl).
	TrialsToTolerance int `json:"trials_to_tolerance"`
}

// WriteJSON writes the report as an indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
