package cliflags

import (
	"errors"
	"strings"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// TestAliasSharesValue: both spellings set the same variable, in either
// order, and the last one parsed wins like any repeated flag.
func TestAliasSharesValue(t *testing.T) {
	for _, args := range [][]string{
		{"-prep-trials", "42"},
		{"-prep", "42"},
		{"-prep", "7", "-prep-trials", "42"},
	} {
		g := New("test")
		prep := g.Int("prep-trials", 1000, "preparing-phase trials")
		g.Alias("prep", "prep-trials")
		if err := g.Parse(args); err != nil {
			t.Fatalf("Parse(%q): %v", args, err)
		}
		if *prep != 42 {
			t.Errorf("Parse(%q): prep-trials = %d, want 42", args, *prep)
		}
	}
}

// TestAliasOfUnregisteredFlagPanics pins the registration-order
// contract: Alias must follow the canonical flag.
func TestAliasOfUnregisteredFlagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alias of an unregistered flag did not panic")
		}
	}()
	New("test").Alias("prep", "prep-trials")
}

// TestUsageHidesAliases: -help advertises only canonical spellings.
func TestUsageHidesAliases(t *testing.T) {
	g := New("test")
	g.Int("prep-trials", 1000, "preparing-phase trials")
	g.Alias("prep", "prep-trials")
	g.Bool("progress", false, "live progress")
	var sb strings.Builder
	g.SetOutput(&sb)
	g.Usage()
	out := sb.String()
	if !strings.Contains(out, "-prep-trials") {
		t.Errorf("usage omits the canonical flag:\n%s", out)
	}
	if strings.Contains(out, "-prep ") || strings.Contains(out, "-prep\n") {
		t.Errorf("usage advertises the hidden alias:\n%s", out)
	}
	if !strings.Contains(out, "(default 1000)") {
		t.Errorf("usage omits a non-zero default:\n%s", out)
	}
	if strings.Contains(out, "(default false)") {
		t.Errorf("usage prints a zero-value default:\n%s", out)
	}
}

// TestDecorateError maps an OptionError's field back to the flag the
// user typed, and leaves everything else untouched.
func TestDecorateError(t *testing.T) {
	g := New("test")
	g.Int("trials", 0, "sampling trials")
	g.Field("Trials", "trials")

	oe := &mpmb.OptionError{Field: "Trials", Value: -1, Reason: "must be non-negative"}
	got := g.DecorateError(oe)
	if !strings.HasPrefix(got.Error(), "flag -trials: ") {
		t.Errorf("decorated error = %q, want a \"flag -trials:\" prefix", got)
	}
	var unwrapped *mpmb.OptionError
	if !errors.As(got, &unwrapped) || unwrapped != oe {
		t.Error("decoration lost the underlying *OptionError")
	}

	// Unattributed field: pass through.
	other := &mpmb.OptionError{Field: "Mu", Value: 2.0, Reason: "out of range"}
	if got := g.DecorateError(other); got != error(other) {
		t.Errorf("unattributed OptionError changed: %v", got)
	}
	// Non-OptionError and nil: pass through.
	plain := errors.New("disk on fire")
	if got := g.DecorateError(plain); got != plain {
		t.Errorf("plain error changed: %v", got)
	}
	if got := g.DecorateError(nil); got != nil {
		t.Errorf("nil error changed: %v", got)
	}
}

// TestTelemetryEnabled: any of -progress/-metrics-addr/-journal turns
// telemetry on; -metrics-hold alone does not.
func TestTelemetryEnabled(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"-metrics-hold", "5s"}, false},
		{[]string{"-progress"}, true},
		{[]string{"-metrics-addr", ":9090"}, true},
		{[]string{"-journal", "run.jsonl"}, true},
	}
	for _, tc := range cases {
		g := New("test")
		tele := g.TelemetryFlags()
		if err := g.Parse(tc.args); err != nil {
			t.Fatalf("Parse(%q): %v", tc.args, err)
		}
		if got := tele.Enabled(); got != tc.want {
			t.Errorf("Enabled() after %q = %v, want %v", tc.args, got, tc.want)
		}
	}
}
