// Package cliflags is the shared flag plumbing of the mpmb commands:
// one registration helper so the three CLIs spell common options the
// same way, hidden aliases that keep old flag spellings parsing without
// advertising them, and attribution of Options validation errors back
// to the flag that caused them.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// Group wraps a flag.FlagSet with alias and error-attribution support.
// Register flags through the embedded FlagSet as usual, then declare
// alternate spellings with Alias and field attributions with Field.
type Group struct {
	*flag.FlagSet
	// aliases maps a hidden alternate spelling to its canonical flag.
	aliases map[string]string
	// fields maps an Options field name to the flag that sets it.
	fields map[string]string
}

// New returns a group over a ContinueOnError flag set whose usage output
// hides alias spellings.
func New(name string) *Group {
	g := &Group{
		FlagSet: flag.NewFlagSet(name, flag.ContinueOnError),
		aliases: make(map[string]string),
		fields:  make(map[string]string),
	}
	g.FlagSet.Usage = g.usage
	return g
}

// Alias registers alias as a hidden alternate spelling of the already
// registered canonical flag. Both spellings share one flag.Value, so
// whichever the user passes sets the same variable; only the canonical
// spelling appears in -help output.
func (g *Group) Alias(alias, canonical string) {
	f := g.Lookup(canonical)
	if f == nil {
		panic(fmt.Sprintf("cliflags: alias %q of unregistered flag %q", alias, canonical))
	}
	g.Var(f.Value, alias, f.Usage)
	g.aliases[alias] = canonical
}

// Field records that the named Options field is set by flagName, for
// DecorateError attribution.
func (g *Group) Field(field, flagName string) {
	g.fields[field] = flagName
}

// DecorateError prefixes a *mpmb.OptionError with the flag that set the
// offending field, so a CLI user sees the spelling they typed rather
// than a Go struct field. Errors of any other type pass through
// unchanged.
func (g *Group) DecorateError(err error) error {
	var oe *mpmb.OptionError
	if err == nil || !errors.As(err, &oe) {
		return err
	}
	if fl, ok := g.fields[oe.Field]; ok {
		return fmt.Errorf("flag -%s: %w", fl, err)
	}
	return err
}

// usage is PrintDefaults with alias spellings suppressed.
func (g *Group) usage() {
	w := g.Output()
	fmt.Fprintf(w, "Usage of %s:\n", g.Name())
	g.VisitAll(func(f *flag.Flag) {
		if _, isAlias := g.aliases[f.Name]; isAlias {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "  -%s", f.Name)
		name, usage := flag.UnquoteUsage(f)
		if len(name) > 0 {
			b.WriteString(" ")
			b.WriteString(name)
		}
		// One-letter flags fit on one line; everything else wraps like
		// flag.PrintDefaults.
		if b.Len() <= 4 {
			b.WriteString("\t")
		} else {
			b.WriteString("\n    \t")
		}
		b.WriteString(strings.ReplaceAll(usage, "\n", "\n    \t"))
		if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" && f.DefValue != "0s" {
			fmt.Fprintf(&b, " (default %v)", f.DefValue)
		}
		fmt.Fprint(w, b.String(), "\n")
	})
}

// Profiling registers the pprof capture flags every command shares.
func (g *Group) Profiling() (cpuProfile, memProfile *string) {
	cpuProfile = g.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile = g.String("memprofile", "", "write a pprof heap profile at end of run to this file")
	return cpuProfile, memProfile
}

// Telemetry holds the parsed observability flag block of a
// search-running command.
type Telemetry struct {
	// Progress enables a live one-line progress report on stderr.
	Progress *bool
	// MetricsAddr serves /metrics, /debug/vars and /debug/pprof/ on this
	// address for the duration of the run.
	MetricsAddr *string
	// MetricsHold keeps the metrics server (and its final snapshot) up
	// this long after the run finishes, so scrapers can collect it.
	MetricsHold *time.Duration
	// Journal streams the run's events as JSON lines to this file.
	Journal *string
}

// TelemetryFlags registers the observability flags.
func (g *Group) TelemetryFlags() *Telemetry {
	return &Telemetry{
		Progress:    g.Bool("progress", false, "print a live progress line to stderr while searching"),
		MetricsAddr: g.String("metrics-addr", "", "serve Prometheus /metrics, expvar and pprof on this address (e.g. :9090) during the run"),
		MetricsHold: g.Duration("metrics-hold", 0, "keep the metrics server up this long after the run finishes"),
		Journal:     g.String("journal", "", "append the run's telemetry events as JSON lines to this file"),
	}
}

// Enabled reports whether any telemetry flag asks for an Observer.
func (t *Telemetry) Enabled() bool {
	return *t.Progress || *t.MetricsAddr != "" || *t.Journal != ""
}
