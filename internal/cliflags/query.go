package cliflags

import (
	"fmt"
	"strconv"
	"strings"

	mpmb "github.com/uncertain-graphs/mpmb"
)

// QueryValues holds the parsed query-variant flag block shared by the
// search-running commands (mpmb-search, mpmb-bench, mpmb-serve spell the
// variants identically through it).
type QueryValues struct {
	// AnchorL / AnchorR anchor the query on a vertex; -1 means unset.
	AnchorL *int
	AnchorR *int
	// AnchorEdge anchors the query on the backbone edge "u:v".
	AnchorEdge *string
	// Communities is the per-community label spec: left labels, a "/",
	// then right labels, comma-separated, -1 excluding a vertex.
	Communities *string
	// CommunityTopK is each community's contribution to the merged top-k.
	CommunityTopK *int
	// AdaptivePrep sizes the OLS preparing phase from a butterfly-count
	// pre-pass.
	AdaptivePrep *bool
}

// QueryFlags registers the canonical query-variant flags and their
// Options-field attributions.
func (g *Group) QueryFlags() *QueryValues {
	q := &QueryValues{
		AnchorL:       g.Int("anchor-l", -1, "restrict the search to butterflies containing this left vertex"),
		AnchorR:       g.Int("anchor-r", -1, "restrict the search to butterflies containing this right vertex"),
		AnchorEdge:    g.String("anchor-edge", "", "restrict the search to butterflies containing the backbone edge `u:v`"),
		Communities:   g.String("communities", "", "per-community top-k: left labels, '/', right labels, comma-separated (`0,0,1/0,1,1`; -1 excludes a vertex)"),
		CommunityTopK: g.Int("community-topk", 0, "estimates each community contributes to the merged top-k (0 means 1)"),
		AdaptivePrep:  g.Bool("adaptive-prep", false, "size the OLS preparing phase from an approximate butterfly-count pre-pass"),
	}
	g.Field("Query.AnchorL", "anchor-l")
	g.Field("Query.AnchorR", "anchor-r")
	g.Field("Query.AnchorEdge", "anchor-edge")
	g.Field("Query.Community", "communities")
	g.Field("Query.AdaptivePrep", "adaptive-prep")
	return q
}

// Build assembles the *mpmb.Query the flags describe. It returns (nil,
// nil) when no query flag was used, so callers can leave Options.Query
// unset for the global query.
func (q *QueryValues) Build() (*mpmb.Query, error) {
	out := &mpmb.Query{}
	set := false
	if *q.AnchorL != -1 {
		if *q.AnchorL < 0 {
			return nil, fmt.Errorf("flag -anchor-l: vertex id %d cannot be negative", *q.AnchorL)
		}
		v := mpmb.VertexID(*q.AnchorL)
		out.AnchorL = &v
		set = true
	}
	if *q.AnchorR != -1 {
		if *q.AnchorR < 0 {
			return nil, fmt.Errorf("flag -anchor-r: vertex id %d cannot be negative", *q.AnchorR)
		}
		v := mpmb.VertexID(*q.AnchorR)
		out.AnchorR = &v
		set = true
	}
	if *q.AnchorEdge != "" {
		e, err := ParseEdgeAnchor(*q.AnchorEdge)
		if err != nil {
			return nil, fmt.Errorf("flag -anchor-edge: %w", err)
		}
		out.AnchorEdge = e
		set = true
	}
	if *q.Communities != "" {
		c, err := ParseCommunities(*q.Communities)
		if err != nil {
			return nil, fmt.Errorf("flag -communities: %w", err)
		}
		c.TopK = *q.CommunityTopK
		out.Community = c
		set = true
	} else if *q.CommunityTopK != 0 {
		return nil, fmt.Errorf("flag -community-topk: requires -communities")
	}
	if *q.AdaptivePrep {
		out.AdaptivePrep = true
		set = true
	}
	if !set {
		return nil, nil
	}
	return out, nil
}

// ParseEdgeAnchor parses the "u:v" spelling of an edge anchor.
func ParseEdgeAnchor(s string) (*mpmb.EdgeAnchor, error) {
	u, v, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("%q is not of the form u:v", s)
	}
	ui, err := strconv.Atoi(strings.TrimSpace(u))
	if err != nil || ui < 0 {
		return nil, fmt.Errorf("left endpoint %q is not a vertex id", u)
	}
	vi, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || vi < 0 {
		return nil, fmt.Errorf("right endpoint %q is not a vertex id", v)
	}
	return &mpmb.EdgeAnchor{U: mpmb.VertexID(ui), V: mpmb.VertexID(vi)}, nil
}

// ParseCommunities parses the "l0,l1,.../r0,r1,..." label spec.
func ParseCommunities(s string) (*mpmb.Communities, error) {
	l, r, ok := strings.Cut(s, "/")
	if !ok {
		return nil, fmt.Errorf("%q lacks the '/' between left and right labels", s)
	}
	parse := func(side, what string) ([]int, error) {
		parts := strings.Split(side, ",")
		out := make([]int, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			n, err := strconv.Atoi(p)
			if err != nil {
				return nil, fmt.Errorf("%s label %q is not an integer", what, p)
			}
			if n < -1 {
				return nil, fmt.Errorf("%s label %d below -1 (which means excluded)", what, n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	lv, err := parse(l, "left")
	if err != nil {
		return nil, err
	}
	rv, err := parse(r, "right")
	if err != nil {
		return nil, err
	}
	return &mpmb.Communities{L: lv, R: rv}, nil
}
