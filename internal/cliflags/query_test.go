package cliflags

import (
	"strings"
	"testing"

	mpmb "github.com/uncertain-graphs/mpmb"
)

func parseQuery(t *testing.T, args ...string) (*Group, *QueryValues) {
	t.Helper()
	g := New("test")
	q := g.QueryFlags()
	if err := g.Parse(args); err != nil {
		t.Fatalf("Parse(%q): %v", args, err)
	}
	return g, q
}

func TestQueryFlagsBuild(t *testing.T) {
	_, q := parseQuery(t)
	built, err := q.Build()
	if err != nil || built != nil {
		t.Fatalf("no flags: Build() = %+v, %v; want nil, nil", built, err)
	}

	_, q = parseQuery(t, "-anchor-l", "3")
	built, err = q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.AnchorL == nil || *built.AnchorL != 3 || built.AnchorR != nil {
		t.Fatalf("anchor-l build: %+v", built)
	}

	_, q = parseQuery(t, "-anchor-edge", "2:5", "-adaptive-prep")
	built, err = q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if built.AnchorEdge == nil || *built.AnchorEdge != (mpmb.EdgeAnchor{U: 2, V: 5}) || !built.AdaptivePrep {
		t.Fatalf("anchor-edge build: %+v", built)
	}

	_, q = parseQuery(t, "-communities", "0,0,1/0,-1,1", "-community-topk", "3")
	built, err = q.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := built.Community
	if c == nil || c.TopK != 3 || len(c.L) != 3 || len(c.R) != 3 || c.R[1] != -1 {
		t.Fatalf("communities build: %+v", c)
	}
}

func TestQueryFlagsBuildErrors(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-anchor-l", "-7"}, "-anchor-l"},
		{[]string{"-anchor-edge", "12"}, "u:v"},
		{[]string{"-anchor-edge", "a:2"}, "left endpoint"},
		{[]string{"-anchor-edge", "2:-1"}, "right endpoint"},
		{[]string{"-communities", "0,0,1"}, "'/'"},
		{[]string{"-communities", "0,x/1"}, "not an integer"},
		{[]string{"-communities", "0,-2/1"}, "below -1"},
		{[]string{"-community-topk", "2"}, "requires -communities"},
	} {
		_, q := parseQuery(t, tc.args...)
		if _, err := q.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Build(%q) = %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

// TestQueryFlagAttribution: a query OptionError out of the library comes
// back pointing at the flag spelling the user typed.
func TestQueryFlagAttribution(t *testing.T) {
	b := mpmb.NewBuilder(2, 2)
	b.MustAddEdge(0, 0, 1, 0.5)
	b.MustAddEdge(0, 1, 1, 0.5)
	b.MustAddEdge(1, 0, 1, 0.5)
	b.MustAddEdge(1, 1, 1, 0.5)
	g := b.Build()

	for _, tc := range []struct {
		args []string
		flag string
	}{
		{[]string{"-anchor-l", "9"}, "flag -anchor-l:"},
		{[]string{"-anchor-r", "9"}, "flag -anchor-r:"},
		{[]string{"-anchor-edge", "9:0"}, "flag -anchor-edge:"},
		{[]string{"-communities", "0/0,0"}, "flag -communities:"},
	} {
		grp, q := parseQuery(t, tc.args...)
		query, err := q.Build()
		if err != nil {
			t.Fatalf("Build(%q): %v", tc.args, err)
		}
		opt := mpmb.DefaultOptions()
		opt.Trials = 100
		opt.Query = query
		_, err = mpmb.Search(g, opt)
		if err == nil {
			t.Fatalf("Search(%q) accepted an out-of-range query", tc.args)
		}
		dec := grp.DecorateError(err)
		if !strings.Contains(dec.Error(), tc.flag) {
			t.Errorf("DecorateError(%q) = %q, want prefix %q", tc.args, dec, tc.flag)
		}
	}

	// AdaptivePrep on a method with no preparing phase attributes to its
	// flag too.
	grp, q := parseQuery(t, "-adaptive-prep")
	query, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	opt := mpmb.DefaultOptions()
	opt.Method = mpmb.MethodOS
	opt.Trials = 100
	opt.Query = query
	if err := opt.Validate(); err == nil {
		t.Fatal("Validate accepted adaptive prep on os")
	} else if dec := grp.DecorateError(err); !strings.Contains(dec.Error(), "flag -adaptive-prep:") {
		t.Errorf("DecorateError = %q, want -adaptive-prep attribution", dec)
	}
}
