package interval

import (
	"math"
	"testing"
)

func TestHoeffdingHalfWidthValues(t *testing.T) {
	// t = sqrt(ln(2/alpha)/(2n)), hand-computed reference points.
	cases := []struct {
		n     int
		alpha float64
		want  float64
	}{
		{1, 1e-2, math.Sqrt(math.Log(200) / 2)},
		{60000, 1e-9, math.Sqrt(math.Log(2e9) / 120000)},
		{4000, 1e-9, math.Sqrt(math.Log(2e9) / 8000)},
	}
	for _, c := range cases {
		got := HoeffdingHalfWidth(c.n, c.alpha)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HoeffdingHalfWidth(%d, %v) = %v, want %v", c.n, c.alpha, got, c.want)
		}
	}
	// Monotonicity: more trials or a looser alpha shrink the band.
	if HoeffdingHalfWidth(1000, 1e-9) <= HoeffdingHalfWidth(2000, 1e-9) {
		t.Error("half-width must shrink with more trials")
	}
	if HoeffdingHalfWidth(1000, 1e-3) >= HoeffdingHalfWidth(1000, 1e-9) {
		t.Error("half-width must grow as alpha tightens")
	}
}

func TestTrialsForHalfWidthInvertsHalfWidth(t *testing.T) {
	for _, eps := range []float64{0.001, 0.01, 0.05, 0.2} {
		for _, alpha := range []float64{1e-3, 1e-6, 1e-9} {
			n := TrialsForHalfWidth(eps, alpha)
			if got := HoeffdingHalfWidth(n, alpha); got > eps {
				t.Errorf("TrialsForHalfWidth(%v, %v) = %d but half-width %v > eps", eps, alpha, n, got)
			}
			if n > 1 {
				if got := HoeffdingHalfWidth(n-1, alpha); got <= eps {
					t.Errorf("TrialsForHalfWidth(%v, %v) = %d is not minimal (n-1 gives %v)", eps, alpha, n, got)
				}
			}
		}
	}
}

func TestScaledHalfWidth(t *testing.T) {
	base := HoeffdingHalfWidth(500, 1e-6)
	if got := ScaledHalfWidth(0.25, 500, 1e-6); math.Abs(got-0.25*base) > 1e-15 {
		t.Errorf("ScaledHalfWidth = %v, want %v", got, 0.25*base)
	}
	if got := ScaledHalfWidth(0, 500, 1e-6); got != 0 {
		t.Errorf("zero scale must give zero width, got %v", got)
	}
	if got := ScaledHalfWidth(-1, 500, 1e-6); got != 0 {
		t.Errorf("negative scale must give zero width, got %v", got)
	}
}

func TestNormalHalfWidth(t *testing.T) {
	// Hand-computed Agresti–Coull reference: x=50, n=100, z=2.
	// ñ = 104, p̃ = (50+2)/104 = 0.5, t = 2·sqrt(0.25/104).
	if got, want := NormalHalfWidth(50, 100, 2), 2*math.Sqrt(0.25/104); math.Abs(got-want) > 1e-12 {
		t.Errorf("NormalHalfWidth(50, 100, 2) = %v, want %v", got, want)
	}
	// Unanimous outcomes must NOT collapse to zero width (the adjustment
	// is the point: no premature ε-stop after a few certain trials).
	if got := NormalHalfWidth(0, 10, 1.96); got <= 0 {
		t.Errorf("width at x=0 is %v, want > 0", got)
	}
	if got := NormalHalfWidth(10, 10, 1.96); got <= 0 {
		t.Errorf("width at x=n is %v, want > 0", got)
	}
	// Monotone in n: more trials shrink the width at a fixed proportion.
	if NormalHalfWidth(500, 1000, 2.58) >= NormalHalfWidth(50, 100, 2.58) {
		t.Error("width must shrink as trials grow")
	}
	// Bounded by the certain-outcome width: p̃(1−p̃) ≤ 1/4.
	if got, cap := NormalHalfWidth(700, 1000, 2), 2*math.Sqrt(0.25/1004); got > cap+1e-15 {
		t.Errorf("width %v exceeds the p=1/2 bound %v", got, cap)
	}
	// A confident leader stops earlier than Hoeffding would allow: at
	// p̂ = 0.95 the normal width is far below the distribution-free band.
	if NormalHalfWidth(950, 1000, 2.58) >= HoeffdingHalfWidth(1000, 1e-2) {
		t.Error("normal-approximation width is not tighter than Hoeffding for a confident proportion")
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("n=0", func() { HoeffdingHalfWidth(0, 0.5) })
	mustPanic("alpha=0", func() { HoeffdingHalfWidth(10, 0) })
	mustPanic("alpha=1", func() { HoeffdingHalfWidth(10, 1) })
	mustPanic("eps=0", func() { TrialsForHalfWidth(0, 0.5) })
	mustPanic("bad alpha", func() { TrialsForHalfWidth(0.1, 2) })
	mustPanic("normal n=0", func() { NormalHalfWidth(0, 0, 2) })
	mustPanic("normal z=0", func() { NormalHalfWidth(1, 10, 0) })
}
